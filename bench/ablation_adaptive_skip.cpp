// Ablation A4: adaptive skip_poll (paper §6 future work) vs fixed values.
//
// Workload: bursty TCP traffic.  A remote context alternates dense bursts
// of TCP RSRs with long silences, while a local MPL ping-pong runs
// throughout.  A fixed small skip serves the bursts promptly but taxes the
// MPL program during silences; a fixed large skip does the opposite.  The
// adaptive policy (double the skip after consecutive misses, reset on a
// hit) should track both regimes.
#include <cstdio>
#include <functional>

#include "bench_util.hpp"

using namespace nexus;

namespace {

struct BurstyResult {
  double mpl_us = 0.0;       // MPL ping-pong one-way
  double tcp_lat_ms = 0.0;   // mean burst-message delivery latency
};

BurstyResult bursty(const std::function<void(Context&)>& tune) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::two_partitions(2, 1);
  opts.modules = {"local", "mpl", "tcp"};
  Runtime rt(opts);

  constexpr int kBursts = 5;
  constexpr int kPerBurst = 10;
  constexpr int kMplRounds = 400;
  BurstyResult result;
  double latency_sum_ms = 0.0;
  std::uint64_t burst_msgs = 0;

  rt.run(std::vector<std::function<void(Context&)>>{
      // ctx0: runs the MPL ping-pong responder AND receives the bursts.
      [&](Context& ctx) {
        tune(ctx);
        Startpoint reply;
        std::uint64_t stops = 0;
        ctx.register_handler("setup", [&](Context& c, Endpoint&,
                                          util::UnpackBuffer& ub) {
          reply = c.unpack_startpoint(ub);
        });
        ctx.register_handler("ping", [&](Context& c, Endpoint&,
                                         util::UnpackBuffer&) {
          c.rsr(reply, "pong");
        });
        ctx.register_handler("burst", [&](Context& c, Endpoint&,
                                          util::UnpackBuffer& ub) {
          const Time sent = ub.get_i64();
          latency_sum_ms += simnet::to_ms(c.now() - sent);
          ++burst_msgs;
        });
        ctx.register_handler("stop", [&](Context&, Endpoint&,
                                         util::UnpackBuffer&) { ++stops; });
        ctx.wait_count(stops, 2);
      },
      // ctx1: MPL driver.
      [&](Context& ctx) {
        tune(ctx);
        std::uint64_t got = 0;
        ctx.register_handler("pong", [&](Context&, Endpoint&,
                                         util::UnpackBuffer&) { ++got; });
        Startpoint to0 = ctx.world_startpoint(0);
        {
          Startpoint back = ctx.startpoint_to(ctx.root_endpoint());
          util::PackBuffer pb;
          ctx.pack_startpoint(pb, back);
          ctx.rsr(to0, "setup", pb);
        }
        const Time t0 = ctx.now();
        for (int r = 0; r < kMplRounds; ++r) {
          ctx.rsr(to0, "ping");
          ctx.wait_count(got, static_cast<std::uint64_t>(r) + 1);
        }
        result.mpl_us = simnet::to_us(ctx.now() - t0) / (2.0 * kMplRounds);
        ctx.rsr(to0, "stop");
      },
      // ctx2: bursty TCP source.
      [&](Context& ctx) {
        tune(ctx);
        Startpoint to0 = ctx.world_startpoint(0);
        for (int b = 0; b < kBursts; ++b) {
          for (int m = 0; m < kPerBurst; ++m) {
            util::PackBuffer pb;
            pb.put_i64(ctx.now());
            ctx.rsr(to0, "burst", pb);
            ctx.compute(simnet::kMs);
          }
          ctx.compute(40 * simnet::kMs);  // silence between bursts
        }
        ctx.rsr(to0, "stop");
      }});

  result.tcp_lat_ms =
      burst_msgs > 0 ? latency_sum_ms / static_cast<double>(burst_msgs) : 0.0;
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation A4: adaptive skip_poll vs fixed, bursty TCP traffic\n"
      "metrics: concurrent MPL one-way time AND burst delivery latency");

  std::printf("%-22s %18s %22s\n", "policy", "MPL one-way (us)",
              "burst latency (ms)");
  for (std::uint64_t skip : {1ull, 20ull, 200ull}) {
    BurstyResult r =
        bursty([skip](Context& c) { c.set_skip_poll("tcp", skip); });
    std::printf("fixed skip %-11llu %18.1f %22.2f\n",
                static_cast<unsigned long long>(skip), r.mpl_us,
                r.tcp_lat_ms);
  }
  BurstyResult a = bursty([](Context& c) {
    c.set_adaptive_poll("tcp", true, /*miss_threshold=*/8, /*max_skip=*/256);
  });
  std::printf("%-22s %18.1f %22.2f\n", "adaptive (x2/256)", a.mpl_us,
              a.tcp_lat_ms);

  std::printf(
      "\nExpected: adaptive approaches the large-skip MPL column during "
      "silences while\nkeeping burst latency near the skip=1 column (after "
      "the first message of each\nburst resets the schedule).\n");
  return 0;
}
