// Ablation A3: blocking-thread poller vs skip_poll (paper §3.3, AIX 4.1
// discussion).
//
// A method serviced by a dedicated blocking thread leaves only a cheap
// readiness check in the unified poll loop.  The paper's preliminary
// experiments showed TCP could then be detected "without significant
// impact on MPL performance" -- i.e., the blocking poller should match the
// best MPL time of the skip sweep while keeping the TCP time of skip=1.
// We rerun the Figure 6 dual ping-pong under both mechanisms.
#include <cstdio>
#include <functional>

#include "bench_util.hpp"

using namespace nexus;

namespace {

struct DualResult {
  double mpl_us = 0.0;
  double tcp_us = 0.0;
};

/// Same topology and protocol as fig6_skip_poll, parameterized by a
/// per-context tuning hook.
DualResult dual(const std::function<void(Context&)>& tune, int mpl_rounds) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::two_partitions(2, 1);
  opts.modules = {"local", "mpl", "tcp"};
  Runtime rt(opts);
  DualResult result;

  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        tune(ctx);
        Startpoint reply1, reply2;
        std::uint64_t stops = 0;
        ctx.register_handler("setup1", [&](Context& c, Endpoint&,
                                           util::UnpackBuffer& ub) {
          reply1 = c.unpack_startpoint(ub);
        });
        ctx.register_handler("setup2", [&](Context& c, Endpoint&,
                                           util::UnpackBuffer& ub) {
          reply2 = c.unpack_startpoint(ub);
        });
        ctx.register_handler("ping1", [&](Context& c, Endpoint&,
                                          util::UnpackBuffer&) {
          c.rsr(reply1, "pong");
        });
        ctx.register_handler("ping2", [&](Context& c, Endpoint&,
                                          util::UnpackBuffer&) {
          c.rsr(reply2, "pong");
        });
        ctx.register_handler("stop", [&](Context&, Endpoint&,
                                         util::UnpackBuffer&) { ++stops; });
        ctx.wait_count(stops, 2);
      },
      [&](Context& ctx) {
        tune(ctx);
        std::uint64_t got = 0;
        ctx.register_handler("pong", [&](Context&, Endpoint&,
                                         util::UnpackBuffer&) { ++got; });
        Startpoint to0 = ctx.world_startpoint(0);
        {
          Startpoint back = ctx.startpoint_to(ctx.root_endpoint());
          util::PackBuffer pb;
          ctx.pack_startpoint(pb, back);
          ctx.rsr(to0, "setup1", pb);
        }
        const Time t0 = ctx.now();
        for (int r = 0; r < mpl_rounds; ++r) {
          ctx.rsr(to0, "ping1");
          ctx.wait_count(got, static_cast<std::uint64_t>(r) + 1);
        }
        result.mpl_us = simnet::to_us(ctx.now() - t0) / (2.0 * mpl_rounds);
        Startpoint to2 = ctx.world_startpoint(2);
        ctx.rsr(to2, "halt");
        ctx.rsr(to0, "stop");
      },
      [&](Context& ctx) {
        tune(ctx);
        std::uint64_t got = 0;
        bool halted = false;
        ctx.register_handler("pong", [&](Context&, Endpoint&,
                                         util::UnpackBuffer&) { ++got; });
        ctx.register_handler("halt", [&](Context&, Endpoint&,
                                         util::UnpackBuffer&) {
          halted = true;
        });
        Startpoint to0 = ctx.world_startpoint(0);
        {
          Startpoint back = ctx.startpoint_to(ctx.root_endpoint());
          util::PackBuffer pb;
          ctx.pack_startpoint(pb, back);
          ctx.rsr(to0, "setup2", pb);
        }
        const Time t0 = ctx.now();
        std::uint64_t rounds = 0;
        while (!halted) {
          ctx.rsr(to0, "ping2");
          ctx.wait_count(got, rounds + 1);
          ++rounds;
        }
        result.tcp_us = simnet::to_us(ctx.now() - t0) /
                        (2.0 * static_cast<double>(rounds));
        ctx.rsr(to0, "stop");
      }});
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation A3: blocking poller vs skip_poll on the Figure 6 workload");

  std::printf("%-22s %18s %18s\n", "mechanism", "MPL one-way (us)",
              "TCP one-way (us)");
  for (std::uint64_t skip : {1ull, 20ull, 100ull}) {
    DualResult r = dual(
        [skip](Context& c) { c.set_skip_poll("tcp", skip); }, 300);
    std::printf("skip_poll %-12llu %18.1f %18.1f\n",
                static_cast<unsigned long long>(skip), r.mpl_us, r.tcp_us);
  }
  DualResult b =
      dual([](Context& c) { c.set_blocking_poller("tcp", true); }, 300);
  std::printf("%-22s %18.1f %18.1f\n", "blocking poller", b.mpl_us, b.tcp_us);

  std::printf(
      "\nExpected: the blocking poller matches (or beats) the best MPL "
      "column while keeping\nTCP detection as prompt as skip_poll=1 -- the "
      "best of both ends of the sweep.\n");
  return 0;
}
