// Ablation A1: forwarding node vs skip-polling (paper §3.3/§4).
//
// The paper found polling (with a tuned skip) beats a forwarding node when
// nodes have good TCP connectivity, because the forwarder adds a hop and
// its own overhead.  Forwarding should win back when the per-node poll is
// very expensive and cannot be throttled (latency constraints cap the
// usable skip).  We sweep the TCP poll cost and report both strategies on
// a reduced coupled-model run.
#include <cstdio>

#include "bench_util.hpp"
#include "climate/coupled.hpp"

using namespace climate;

namespace {
CoupledConfig small_config() {
  CoupledConfig cfg;
  cfg.atmo_ranks = 8;
  cfg.ocean_ranks = 4;
  cfg.timesteps = 4;
  cfg.atmosphere.nx = 64;
  cfg.atmosphere.ny = 32;
  cfg.atmosphere.step_compute = 20 * nexus::simnet::kSec;
  cfg.atmosphere.polls_per_step = 8000;
  cfg.atmosphere.transpose_phases = 4;
  cfg.atmosphere.transpose_bytes = 16'000;
  cfg.ocean.nx = 48;
  cfg.ocean.ny = 16;
  cfg.ocean.step_compute = 17 * nexus::simnet::kSec;
  cfg.ocean.polls_per_step = 8000;
  cfg.ocean.transpose_phases = 1;
  cfg.ocean.transpose_bytes = 8'000;
  return cfg;
}
}  // namespace

int main() {
  bench::print_header(
      "Ablation A1: forwarding vs skip-polling as TCP poll cost grows\n"
      "(reduced coupled model: 8+4 ranks, 20 s steps, 8000 polls/step)");

  std::printf("%16s %12s %12s %12s %12s %12s\n", "tcp poll cost",
              "fwd s/st", "dedfwd s/st", "skip1 s/st", "skip100 s/st",
              "skip4k s/st");
  // NOTE: the skip policy must keep intermodel latency acceptable; in a
  // latency-constrained application the usable skip is bounded, which is
  // where forwarding wins.
  for (nexus::Time poll_cost :
       {110 * nexus::simnet::kUs, 500 * nexus::simnet::kUs,
        2 * nexus::simnet::kMs, 8 * nexus::simnet::kMs}) {
    CoupledConfig cfg = small_config();
    // run_coupled builds its own runtime; poll cost is threaded through a
    // config knob on the cost params (see run_coupled_with_costs below).
    auto run = [&](Policy p, std::uint64_t skip) {
      // Patch the global default costs for this run via the config hook.
      CoupledConfig c = cfg;
      c.tcp_poll_cost_override = poll_cost;
      return run_coupled(c, p, skip).seconds_per_step;
    };
    std::printf("%13.0f us %12.2f %12.2f %12.2f %12.2f %12.2f\n",
                nexus::simnet::to_us(poll_cost), run(Policy::Forwarding, 1),
                run(Policy::ForwardingDedicated, 1),
                run(Policy::SkipPoll, 1), run(Policy::SkipPoll, 100),
                run(Policy::SkipPoll, 4000));
  }
  std::printf(
      "\nExpected shape: at 110 us (the paper's SP2), tuned skip-polling "
      "beats embedded forwarding\n(the forwarder is also a compute rank, "
      "as in Table 1); as the per-poll cost grows,\nevery polling column "
      "inflates while the *dedicated* forwarder -- paper §3.3's\n"
      "\"dedicated forwarding processor\" -- stays at the compute floor "
      "and wins.\n");
  return 0;
}
