// Ablation A6: cost of layering MPI on Nexus (paper §4: "This layering
// adds an execution time overhead of about 6 percent when compared with
// MPICH running on top of MPL").
//
// We compare a minimpi ping-pong against the equivalent raw-RSR ping-pong
// for a communication/compute mix resembling the climate model's inner
// loop, and report the layering overhead for pure communication and for
// the mixed workload.
#include <cstdio>

#include "bench_util.hpp"
#include "minimpi/mpi.hpp"

using namespace nexus;

namespace {

RuntimeOptions two_ranks() {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(2);
  opts.modules = {"local", "mpl", "tcp"};
  return opts;
}

/// minimpi ping-pong one-way time plus optional per-round compute.
double mpi_pingpong_us(std::size_t payload, int rounds, Time compute) {
  Runtime rt(two_ranks());
  double one_way = 0.0;
  rt.run([&](Context& ctx) {
    minimpi::World mpi(ctx);
    minimpi::Comm& comm = mpi.comm();
    const util::Bytes data(payload, 0x44);
    if (comm.rank() == 0) {
      for (int r = 0; r < rounds; ++r) {
        comm.recv(1, 7);
        comm.send(data, 1, 8);
      }
    } else {
      const Time t0 = ctx.now();
      for (int r = 0; r < rounds; ++r) {
        comm.send(data, 0, 7);
        if (compute > 0) ctx.compute(compute);
        comm.recv(0, 8);
      }
      one_way = simnet::to_us(ctx.now() - t0) / (2.0 * rounds);
    }
  });
  return one_way;
}

/// Equivalent raw-RSR ping-pong (the "MPICH on MPL" stand-in: no tag
/// matching, no envelopes, no MPI layer costs).
double rsr_pingpong_us(std::size_t payload, int rounds, Time compute) {
  Runtime rt(two_ranks());
  double one_way = 0.0;
  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        Startpoint reply;
        std::uint64_t served = 0;
        ctx.register_handler("setup", [&](Context& c, Endpoint&,
                                          util::UnpackBuffer& ub) {
          reply = c.unpack_startpoint(ub);
        });
        ctx.register_handler("ping", [&](Context& c, Endpoint&,
                                         util::UnpackBuffer& ub) {
          c.rsr(reply, "pong", ub.get_bytes());
          ++served;
        });
        ctx.wait_count(served, static_cast<std::uint64_t>(rounds));
      },
      [&](Context& ctx) {
        std::uint64_t got = 0;
        ctx.register_handler("pong", [&](Context&, Endpoint&,
                                         util::UnpackBuffer&) { ++got; });
        Startpoint to0 = ctx.world_startpoint(0);
        {
          Startpoint back = ctx.startpoint_to(ctx.root_endpoint());
          util::PackBuffer pb;
          ctx.pack_startpoint(pb, back);
          ctx.rsr(to0, "setup", pb);
        }
        util::PackBuffer pb;
        pb.put_bytes(util::Bytes(payload, 0x44));
        const Time t0 = ctx.now();
        for (int r = 0; r < rounds; ++r) {
          ctx.rsr(to0, "ping", pb);
          if (compute > 0) ctx.compute(compute);
          ctx.wait_count(got, static_cast<std::uint64_t>(r) + 1);
        }
        one_way = simnet::to_us(ctx.now() - t0) / (2.0 * rounds);
      }});
  return one_way;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation A6: minimpi-on-Nexus layering overhead (paper: ~6%)");

  std::printf("%10s %10s %14s %14s %10s\n", "bytes", "compute", "raw RSR us",
              "minimpi us", "overhead");
  for (auto [payload, compute] :
       {std::pair<std::size_t, Time>{0, 0},
        {1024, 0},
        {16384, 0},
        {1024, 500 * simnet::kUs},
        {16384, 2 * simnet::kMs}}) {
    const double raw = rsr_pingpong_us(payload, 300, compute);
    const double mpi = mpi_pingpong_us(payload, 300, compute);
    std::printf("%10zu %8.1fms %14.1f %14.1f %9.1f%%\n", payload,
                simnet::to_ms(compute), raw, mpi,
                100.0 * (mpi - raw) / raw);
  }
  std::printf(
      "\nPure communication shows the envelope+matching tax; the mixed "
      "rows dilute it\ntoward the paper's ~6%% application-level figure.\n");
  return 0;
}
