// Ablation A5: selection policies (paper §3.2 + §6 "more sophisticated
// heuristics").
//
// Workload: a client scatters RSR batches to servers spread across two
// partitions, with descriptor tables deliberately ordered slowest-first.
// first-applicable obeys the bad table order; qos ranks by method speed
// regardless of order; qos with a load penalty diverts traffic off a
// backlogged method.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"

using namespace nexus;

namespace {

double scatter_run(const std::function<void(Context&)>& configure,
                   bool shuffle_tables) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::two_partitions(4, 2);
  opts.modules = {"local", "mpl", "tcp"};
  Runtime rt(opts);
  double elapsed_ms = 0.0;
  constexpr int kBatches = 40;

  rt.run([&](Context& ctx) {
    if (ctx.id() != 0) {
      std::uint64_t got = 0;
      ctx.register_handler("work", [&](Context&, Endpoint&,
                                       util::UnpackBuffer&) { ++got; });
      ctx.wait_count(got, kBatches);
      return;
    }
    configure(ctx);
    std::vector<Startpoint> servers;
    for (ContextId t = 1; t < ctx.world_size(); ++t) {
      Startpoint sp = ctx.world_startpoint(t);
      if (shuffle_tables) {
        sp.table().prioritize("tcp");  // slowest-first ordering
        sp.invalidate_selection();
      }
      servers.push_back(std::move(sp));
    }
    const util::Bytes payload(2048, 0x3c);
    const Time t0 = ctx.now();
    std::uint64_t acks = 0;
    (void)acks;
    for (int b = 0; b < kBatches; ++b) {
      for (auto& sp : servers) ctx.rsr(sp, "work", payload);
    }
    elapsed_ms = simnet::to_ms(ctx.now() - t0);
  });
  return elapsed_ms;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation A5: selection policy under adversarial table order\n"
      "(40 batches x 5 servers, 2 KB payloads, tables ordered slowest-first)");

  std::printf("%-36s %16s\n", "policy", "send time (ms)");

  const double first_good = scatter_run([](Context&) {}, false);
  std::printf("%-36s %16.2f\n", "first-applicable, fastest-first table",
              first_good);

  const double first_bad = scatter_run([](Context&) {}, true);
  std::printf("%-36s %16.2f\n", "first-applicable, slowest-first table",
              first_bad);

  const double qos = scatter_run(
      [](Context& c) { c.set_selector(std::make_unique<QosSelector>()); },
      true);
  std::printf("%-36s %16.2f\n", "qos (speed-ranked), slowest-first table",
              qos);

  std::printf(
      "\nExpected: first-applicable is only as good as the table order "
      "(paper: ordered\nscan gives fastest-first *if* tables are ordered); "
      "qos recovers the fast path\nfrom a hostile order, at the price of "
      "inspecting every entry.\n");
  return 0;
}
