// Ablation A2: startpoint weight (paper §3.1, final paragraph).
//
// Startpoints carry a descriptor table, making them "rather heavyweight
// entities"; when a link's table equals the runtime's default table for the
// target context, the serialized form omits it.  We measure the serialized
// size and the virtual pack+transfer cost of shipping startpoints in the
// heavyweight and lightweight forms, including multi-link (multicast)
// startpoints.
#include <cstdio>

#include "bench_util.hpp"

using namespace nexus;

namespace {

struct Weight {
  std::size_t bytes = 0;
  double pack_us = 0.0;
};

Weight measure(Context& ctx, const Startpoint& sp) {
  util::PackBuffer pb;
  const Time t0 = ctx.now();
  ctx.pack_startpoint(pb, sp);
  return Weight{pb.size(), simnet::to_us(ctx.now() - t0)};
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation A2: serialized startpoint weight\n"
      "lightweight = link table matches the runtime default for the target");

  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(8);
  opts.modules = {"local", "mpl", "tcp", "udp", "myrinet"};
  Runtime rt(opts);

  rt.run([&](Context& ctx) {
    if (ctx.id() != 0) return;

    std::printf("%-34s %10s %12s\n", "startpoint form", "bytes", "pack us");

    Startpoint light = ctx.world_startpoint(1);
    Weight wl = measure(ctx, light);
    std::printf("%-34s %10zu %12.2f\n", "1 link, default table (light)",
                wl.bytes, wl.pack_us);

    Startpoint heavy = ctx.world_startpoint(1);
    heavy.table().prioritize("tcp");  // any edit forces the full form
    Weight wh = measure(ctx, heavy);
    std::printf("%-34s %10zu %12.2f\n", "1 link, edited table (full)",
                wh.bytes, wh.pack_us);

    Startpoint multi;
    for (ContextId t = 1; t <= 6; ++t) {
      Startpoint one = ctx.world_startpoint(t);
      multi.links().push_back(one.link(0));
    }
    Weight wm = measure(ctx, multi);
    std::printf("%-34s %10zu %12.2f\n", "6 links, default tables (light)",
                wm.bytes, wm.pack_us);

    Startpoint multi_heavy = multi;
    for (std::size_t i = 0; i < multi_heavy.link_count(); ++i) {
      multi_heavy.table(i).prioritize("udp");
    }
    Weight wmh = measure(ctx, multi_heavy);
    std::printf("%-34s %10zu %12.2f\n", "6 links, edited tables (full)",
                wmh.bytes, wmh.pack_us);

    std::printf(
        "\nfull/light byte ratio (1 link): %.1fx; with 5 methods loaded a "
        "full table costs\n~%zu bytes per link -- the \"few tens of bytes\" "
        "of §3.1, amortized away for\nintra-machine links by the default-"
        "table optimization.\n",
        static_cast<double>(wh.bytes) / static_cast<double>(wl.bytes),
        wh.bytes - wl.bytes);
  });
  return 0;
}
