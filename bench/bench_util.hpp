// Shared helpers for the paper-reproduction benchmark binaries.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "nexus/runtime.hpp"
#include "util/stats.hpp"

namespace bench {

using nexus::Context;
using nexus::Runtime;
using nexus::RuntimeOptions;
using nexus::Startpoint;
using nexus::Time;

/// One-way time of a Nexus RSR ping-pong between contexts 0 (responder) and
/// 1 (driver), in virtual microseconds.  The reply startpoint is shipped
/// once in a setup RSR; timed pings carry only the payload, matching the
/// paper's microbenchmark.  `tune` runs in every context after module setup
/// (skip_poll etc.); pass nullptr for defaults.
inline double nexus_pingpong_us(RuntimeOptions opts, std::size_t payload,
                                int rounds,
                                const std::function<void(Context&)>& tune) {
  Runtime rt(std::move(opts));
  double one_way_us = 0.0;

  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {  // responder
        if (tune) tune(ctx);
        std::uint64_t served = 0;
        Startpoint reply;
        ctx.register_handler("setup",
                             [&](Context& c, nexus::Endpoint&,
                                 nexus::util::UnpackBuffer& ub) {
                               reply = c.unpack_startpoint(ub);
                             });
        ctx.register_handler(
            "ping", [&](Context& c, nexus::Endpoint&,
                        nexus::util::UnpackBuffer& ub) {
              c.rsr(reply, "pong", ub.get_bytes());
              ++served;
            });
        ctx.wait_count(served, static_cast<std::uint64_t>(rounds));
      },
      [&](Context& ctx) {  // driver
        if (tune) tune(ctx);
        std::uint64_t got = 0;
        ctx.register_handler("pong",
                             [&](Context&, nexus::Endpoint&,
                                 nexus::util::UnpackBuffer&) { ++got; });
        Startpoint to_responder = ctx.world_startpoint(0);
        {
          Startpoint back = ctx.startpoint_to(ctx.root_endpoint());
          nexus::util::PackBuffer pb;
          ctx.pack_startpoint(pb, back);
          ctx.rsr(to_responder, "setup", pb);
        }
        const nexus::util::Bytes data(payload, 0x5a);
        nexus::util::PackBuffer pb;
        pb.put_bytes(data);

        const Time t0 = ctx.now();
        for (int r = 0; r < rounds; ++r) {
          ctx.rsr(to_responder, "ping", pb);
          ctx.wait_count(got, static_cast<std::uint64_t>(r) + 1);
        }
        const Time elapsed = ctx.now() - t0;
        one_way_us = nexus::simnet::to_us(elapsed) / (2.0 * rounds);
      }});
  return one_way_us;
}

inline void print_header(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

}  // namespace bench
