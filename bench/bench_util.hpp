// Shared helpers for the paper-reproduction benchmark binaries.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "nexus/runtime.hpp"
#include "util/stats.hpp"

namespace bench {

/// Git revision baked in by bench/CMakeLists.txt; "unknown" outside a git
/// checkout.
inline const char* git_rev() {
#ifdef BENCH_GIT_REV
  return BENCH_GIT_REV;
#else
  return "unknown";
#endif
}

/// Shared BENCH_*.json results writer.  Every micro benchmark funnels its
/// rows through this so successive perf PRs produce comparable artifacts:
///   {"bench": ..., "git_rev": ..., "results": [
///      {"name": ..., "params": {...}, "ns_per_op": ..., "allocs_per_op": ...}]}
/// allocs_per_op is omitted for benches that do not hook the allocator.
class JsonResultWriter {
 public:
  struct Row {
    std::string name;
    std::vector<std::pair<std::string, std::string>> params;
    double ns_per_op = 0.0;
    double allocs_per_op = -1.0;  ///< < 0 means "not measured"
  };

  explicit JsonResultWriter(std::string bench_name)
      : bench_(std::move(bench_name)) {}

  void add(std::string name,
           std::vector<std::pair<std::string, std::string>> params,
           double ns_per_op, double allocs_per_op = -1.0) {
    rows_.push_back(Row{std::move(name), std::move(params), ns_per_op,
                        allocs_per_op});
  }

  const std::vector<Row>& rows() const noexcept { return rows_; }

  /// Serialize all rows; returns false if the file cannot be written.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"git_rev\": \"%s\",\n",
                 escape(bench_).c_str(), escape(git_rev()).c_str());
    std::fprintf(f, "  \"results\": [");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(f, "%s\n    {\"name\": \"%s\", \"params\": {",
                   i == 0 ? "" : ",", escape(r.name).c_str());
      for (std::size_t j = 0; j < r.params.size(); ++j) {
        std::fprintf(f, "%s\"%s\": \"%s\"", j == 0 ? "" : ", ",
                     escape(r.params[j].first).c_str(),
                     escape(r.params[j].second).c_str());
      }
      std::fprintf(f, "}, \"ns_per_op\": %.3f", r.ns_per_op);
      if (r.allocs_per_op >= 0) {
        std::fprintf(f, ", \"allocs_per_op\": %.4f", r.allocs_per_op);
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  std::string bench_;
  std::vector<Row> rows_;
};

using nexus::Context;
using nexus::Runtime;
using nexus::RuntimeOptions;
using nexus::Startpoint;
using nexus::Time;

/// One-way time of a Nexus RSR ping-pong between contexts 0 (responder) and
/// 1 (driver), in virtual microseconds.  The reply startpoint is shipped
/// once in a setup RSR; timed pings carry only the payload, matching the
/// paper's microbenchmark.  `tune` runs in every context after module setup
/// (skip_poll etc.); pass nullptr for defaults.
inline double nexus_pingpong_us(RuntimeOptions opts, std::size_t payload,
                                int rounds,
                                const std::function<void(Context&)>& tune) {
  Runtime rt(std::move(opts));
  double one_way_us = 0.0;

  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {  // responder
        if (tune) tune(ctx);
        std::uint64_t served = 0;
        Startpoint reply;
        ctx.register_handler("setup",
                             [&](Context& c, nexus::Endpoint&,
                                 nexus::util::UnpackBuffer& ub) {
                               reply = c.unpack_startpoint(ub);
                             });
        ctx.register_handler(
            "ping", [&](Context& c, nexus::Endpoint&,
                        nexus::util::UnpackBuffer& ub) {
              c.rsr(reply, "pong", ub.get_bytes());
              ++served;
            });
        ctx.wait_count(served, static_cast<std::uint64_t>(rounds));
      },
      [&](Context& ctx) {  // driver
        if (tune) tune(ctx);
        std::uint64_t got = 0;
        ctx.register_handler("pong",
                             [&](Context&, nexus::Endpoint&,
                                 nexus::util::UnpackBuffer&) { ++got; });
        Startpoint to_responder = ctx.world_startpoint(0);
        {
          Startpoint back = ctx.startpoint_to(ctx.root_endpoint());
          nexus::util::PackBuffer pb;
          ctx.pack_startpoint(pb, back);
          ctx.rsr(to_responder, "setup", pb);
        }
        const nexus::util::Bytes data(payload, 0x5a);
        nexus::util::PackBuffer pb;
        pb.put_bytes(data);

        const Time t0 = ctx.now();
        for (int r = 0; r < rounds; ++r) {
          ctx.rsr(to_responder, "ping", pb);
          ctx.wait_count(got, static_cast<std::uint64_t>(r) + 1);
        }
        const Time elapsed = ctx.now() - t0;
        one_way_us = nexus::simnet::to_us(elapsed) / (2.0 * rounds);
      }});
  return one_way_us;
}

inline void print_header(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

}  // namespace bench
