// Figure 4 reproduction: one-way communication time vs message size for
//   (a) a low-level MPL program (raw device, no Nexus),
//   (b) Nexus supporting a single communication method (MPL),
//   (c) Nexus supporting two methods (MPL + TCP), all traffic on MPL.
//
// Paper result being reproduced: Nexus adds a fixed per-message software
// overhead visible for small messages (83 us zero-byte one-way vs native
// MPL) and negligible for large ones; enabling TCP *polling* -- with zero
// TCP traffic -- raises the zero-byte time to ~156 us and degrades MPL
// large-message bandwidth through kernel-call interference.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "simnet/mailbox.hpp"
#include "simnet/scheduler.hpp"

namespace {

using namespace nexus;
using bench::nexus_pingpong_us;

/// The "low-level MPL program": two simulated processes using the switch
/// directly -- send CPU + latency + transfer, blocking receive.
double raw_mpl_pingpong_us(const SimCostParams& c, std::size_t payload,
                           int rounds) {
  simnet::Scheduler sched;
  struct Msg {};
  std::unique_ptr<simnet::Mailbox<Msg>> box0, box1;
  const std::uint64_t wire = Packet::kHeaderBytes + payload;
  simnet::Time elapsed = 0;

  auto send_to = [&](simnet::Mailbox<Msg>& dst) {
    auto* self = simnet::SimProcess::current();
    self->advance(c.mpl_send_cpu);
    dst.post(self->now() + c.mpl_latency +
                 simnet::transfer_time(wire, c.mpl_mb_s),
             Msg{});
  };
  auto blocking_recv = [&](simnet::Mailbox<Msg>& box) {
    auto* self = simnet::SimProcess::current();
    for (;;) {
      if (box.poll(self->now())) return;
      if (auto t = box.earliest()) {
        self->advance_to(*t);
      } else {
        self->block();
      }
    }
  };

  auto& p0 = sched.spawn("raw0", [&] {
    for (int r = 0; r < rounds; ++r) {
      blocking_recv(*box0);
      send_to(*box1);
    }
  });
  auto& p1 = sched.spawn("raw1", [&] {
    auto* self = simnet::SimProcess::current();
    const simnet::Time t0 = self->now();
    for (int r = 0; r < rounds; ++r) {
      send_to(*box0);
      blocking_recv(*box1);
    }
    elapsed = self->now() - t0;
  });
  box0 = std::make_unique<simnet::Mailbox<Msg>>(sched, p0);
  box1 = std::make_unique<simnet::Mailbox<Msg>>(sched, p1);
  sched.run();
  return simnet::to_us(elapsed) / (2.0 * rounds);
}

RuntimeOptions nexus_opts(std::vector<std::string> modules) {
  RuntimeOptions opts;
  opts.topology = nexus::simnet::Topology::single_partition(2);
  opts.modules = std::move(modules);
  return opts;
}

void run_series(const std::vector<std::size_t>& sizes, int rounds) {
  std::printf("%10s %14s %14s %18s\n", "bytes", "raw MPL (us)",
              "Nexus MPL (us)", "Nexus MPL+TCP (us)");
  SimCostParams costs;
  for (std::size_t size : sizes) {
    const double raw = raw_mpl_pingpong_us(costs, size, rounds);
    const double single =
        nexus_pingpong_us(nexus_opts({"local", "mpl"}), size, rounds, nullptr);
    const double multi = nexus_pingpong_us(nexus_opts({"local", "mpl", "tcp"}),
                                           size, rounds, nullptr);
    std::printf("%10zu %14.1f %14.1f %18.1f\n", size, raw, single, multi);
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 4 (left): one-way time, small messages (0-1000 bytes)\n"
      "paper anchors: zero-byte Nexus/MPL = 83 us; with TCP polling = 156 us");
  run_series({0, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}, 400);

  bench::print_header(
      "Figure 4 (right): one-way time, wide size range\n"
      "paper shape: Nexus(MPL) converges to raw MPL; MPL+TCP stays above "
      "even for large messages");
  run_series({0, 1024, 4096, 16384, 65536, 262144, 1048576}, 60);
  return 0;
}
