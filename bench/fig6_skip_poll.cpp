// Figure 6 reproduction: two ping-pong programs run concurrently through a
// shared multimethod context -- one over MPL within a partition, one over
// TCP between partitions (Figure 5 configuration).  One-way times are
// reported as a function of the tcp skip_poll value, for 0-byte and 10 KB
// messages.
//
// Paper shape: MPL one-way time improves as skip_poll grows (fewer
// expensive selects in its poll loop); TCP one-way time degrades (longer
// detection delay); skip_poll around 20 improves MPL while barely touching
// TCP.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace nexus;

struct DualResult {
  double mpl_one_way_us = 0.0;
  double tcp_one_way_us = 0.0;
};

DualResult dual_pingpong(std::uint64_t skip, std::size_t payload,
                         int mpl_rounds) {
  RuntimeOptions opts;
  // ctx0 and ctx1 share a partition (MPL pair); ctx2 sits in a second
  // partition and can reach ctx0 only via TCP.
  opts.topology = simnet::Topology::two_partitions(2, 1);
  opts.modules = {"local", "mpl", "tcp"};
  Runtime rt(opts);

  DualResult result;
  const util::Bytes data(payload, 0x7e);

  rt.run(std::vector<std::function<void(Context&)>>{
      // ctx0: the shared multimethod node; reflects both ping-pongs.
      [&](Context& ctx) {
        ctx.set_skip_poll("tcp", skip);
        Startpoint reply1, reply2;
        std::uint64_t stops = 0;
        ctx.register_handler("setup1",
                             [&](Context& c, Endpoint&,
                                 util::UnpackBuffer& ub) {
                               reply1 = c.unpack_startpoint(ub);
                             });
        ctx.register_handler("setup2",
                             [&](Context& c, Endpoint&,
                                 util::UnpackBuffer& ub) {
                               reply2 = c.unpack_startpoint(ub);
                             });
        ctx.register_handler("ping1",
                             [&](Context& c, Endpoint&,
                                 util::UnpackBuffer& ub) {
                               c.rsr(reply1, "pong", ub.get_bytes());
                             });
        ctx.register_handler("ping2",
                             [&](Context& c, Endpoint&,
                                 util::UnpackBuffer& ub) {
                               c.rsr(reply2, "pong", ub.get_bytes());
                             });
        ctx.register_handler("stop",
                             [&](Context&, Endpoint&, util::UnpackBuffer&) {
                               ++stops;
                             });
        ctx.wait_count(stops, 2);
      },
      // ctx1: drives the MPL ping-pong for a fixed number of roundtrips.
      [&](Context& ctx) {
        ctx.set_skip_poll("tcp", skip);
        std::uint64_t got = 0;
        ctx.register_handler("pong",
                             [&](Context&, Endpoint&, util::UnpackBuffer&) {
                               ++got;
                             });
        Startpoint to0 = ctx.world_startpoint(0);
        {
          Startpoint back = ctx.startpoint_to(ctx.root_endpoint());
          util::PackBuffer pb;
          ctx.pack_startpoint(pb, back);
          ctx.rsr(to0, "setup1", pb);
        }
        util::PackBuffer pb;
        pb.put_bytes(data);
        const Time t0 = ctx.now();
        for (int r = 0; r < mpl_rounds; ++r) {
          ctx.rsr(to0, "ping1", pb);
          ctx.wait_count(got, static_cast<std::uint64_t>(r) + 1);
        }
        result.mpl_one_way_us =
            simnet::to_us(ctx.now() - t0) / (2.0 * mpl_rounds);
        Startpoint to2 = ctx.world_startpoint(2);
        ctx.rsr(to2, "halt");
        ctx.rsr(to0, "stop");
      },
      // ctx2: drives the TCP ping-pong until halted.
      [&](Context& ctx) {
        ctx.set_skip_poll("tcp", skip);
        std::uint64_t got = 0;
        bool halted = false;
        ctx.register_handler("pong",
                             [&](Context&, Endpoint&, util::UnpackBuffer&) {
                               ++got;
                             });
        ctx.register_handler("halt",
                             [&](Context&, Endpoint&, util::UnpackBuffer&) {
                               halted = true;
                             });
        Startpoint to0 = ctx.world_startpoint(0);
        {
          Startpoint back = ctx.startpoint_to(ctx.root_endpoint());
          util::PackBuffer pb;
          ctx.pack_startpoint(pb, back);
          ctx.rsr(to0, "setup2", pb);
        }
        util::PackBuffer pb;
        pb.put_bytes(data);
        const Time t0 = ctx.now();
        std::uint64_t rounds = 0;
        while (!halted) {
          ctx.rsr(to0, "ping2", pb);
          ctx.wait_count(got, rounds + 1);
          ++rounds;
        }
        result.tcp_one_way_us =
            simnet::to_us(ctx.now() - t0) / (2.0 * static_cast<double>(rounds));
        ctx.rsr(to0, "stop");
      }});
  return result;
}

void run_sweep(std::size_t payload, int rounds) {
  std::printf("%10s %18s %18s\n", "skip_poll", "MPL one-way (us)",
              "TCP one-way (us)");
  for (std::uint64_t skip : {1ull, 2ull, 3ull, 5ull, 8ull, 12ull, 16ull,
                             20ull, 32ull, 50ull, 100ull}) {
    DualResult r = dual_pingpong(skip, payload, rounds);
    std::printf("%10llu %18.1f %18.1f\n",
                static_cast<unsigned long long>(skip), r.mpl_one_way_us,
                r.tcp_one_way_us);
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 6 (left): dual concurrent ping-pong, zero-length messages\n"
      "paper shape: MPL improves with skip_poll, TCP degrades; skip ~20 is "
      "the sweet spot");
  run_sweep(0, 300);

  bench::print_header(
      "Figure 6 (right): dual concurrent ping-pong, 10 KB messages");
  run_sweep(10240, 150);
  return 0;
}
