// Bridge from google-benchmark runs to the shared BENCH_*.json artifact
// format (bench_util.hpp's JsonResultWriter), so the gbench-based micro
// benches produce the same machine-readable rows as the hand-rolled
// harnesses and CI can archive/validate them uniformly.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.hpp"

namespace bench {

/// ConsoleReporter subclass that keeps the normal console table and mirrors
/// every per-iteration run into JsonResultWriter rows (real time, converted
/// to ns/op).  Aggregate and errored runs are skipped.
class JsonBridgeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonBridgeReporter(JsonResultWriter& writer) : writer_(&writer) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& r : reports) {
      if (r.run_type != Run::RT_Iteration || r.error_occurred) continue;
      double to_ns = 1.0;
      switch (r.time_unit) {
        case benchmark::kSecond: to_ns = 1e9; break;
        case benchmark::kMillisecond: to_ns = 1e6; break;
        case benchmark::kMicrosecond: to_ns = 1e3; break;
        case benchmark::kNanosecond: to_ns = 1.0; break;
      }
      writer_->add(r.benchmark_name(),
                   {{"iterations", std::to_string(r.iterations)}},
                   r.GetAdjustedRealTime() * to_ns);
    }
  }

 private:
  JsonResultWriter* writer_;
};

/// Drop-in replacement for BENCHMARK_MAIN()'s body: runs all registered
/// benchmarks through the JSON bridge and writes `default_out` afterwards.
/// A leading `--out=PATH` argument overrides the output path; all other
/// arguments pass through to google-benchmark (e.g. --benchmark_filter,
/// --benchmark_min_time for CI smoke runs).
inline int gbench_json_main(int argc, char** argv, const char* bench_name,
                            const char* default_out) {
  std::string out_path = default_out;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a.rfind("--out=", 0) == 0) {
      out_path = std::string(a.substr(6));
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }

  JsonResultWriter writer(bench_name);
  JsonBridgeReporter reporter(writer);
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (ran == 0) {
    std::fprintf(stderr, "no benchmarks matched\n");
    return 1;
  }
  if (!writer.write(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace bench
