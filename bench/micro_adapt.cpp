// Adaptive-selection microbenchmark: does payload-aware adaptive routing
// (a) beat the static fastest-first policy on a mixed small/large workload
// when the fabric inverts the usual latency/bandwidth ranking, and (b) stay
// within a few percent of FirstApplicableSelector's per-RSR cost on the
// steady-state cache-hit path?
//
// Part (a) runs in virtual time: tcp is configured as the low-latency /
// low-bandwidth method (150 us, 8 MB/s) and mpl as the high-setup bulk pipe
// (2.5 ms, 200 MB/s), so small RSRs want tcp and large ones want mpl -- a
// split no static table order can express.  Both sides of the ping-pong run
// the policy under test; the figure is virtual ns per (small, large) round
// pair, and the adaptive row must come out ahead (vs_static_ratio > 1).
//
// Part (b) is wall-clock: a one-way RSR blast with the selection decision
// long since cached, where the adaptive tax is one payload-class check and
// a method-name compare per send.  The acceptance bound for the subsystem
// is <= 1.10x FirstApplicable (the vs_first ratio printed per row).
// Allocations are counted with the same global operator new hook as
// micro_rsr_hotpath.cpp.
//
// Usage: micro_adapt [rounds] [output.json]
//   rounds defaults to 20000 (part b; part a uses rounds/100 ping-pong
//   pairs); CI passes a small count for the smoke job.  Results go to
//   BENCH_adaptive.json.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "nexus/adapt/adaptive_selector.hpp"
#include "simnet/topology.hpp"

// ----------------------------------------------------------------------
// Counting allocator hook (same shape as micro_rsr_hotpath.cpp): every
// global new bumps one relaxed atomic; frees are uncounted.
static std::atomic<std::uint64_t> g_allocs{0};

static void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

static void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     n ? n : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new(std::size_t n, std::align_val_t al) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

// ----------------------------------------------------------------------

namespace {

using bench::Context;
using bench::Runtime;
using bench::RuntimeOptions;
using bench::Startpoint;
using nexus::Time;
using nexus::simnet::kUs;

constexpr std::size_t kSmall = 64;
constexpr std::size_t kLarge = 1 << 16;

std::unique_ptr<nexus::MethodSelector> make_selector(bool adaptive) {
  if (adaptive) return std::make_unique<nexus::adapt::AdaptiveSelector>();
  return std::make_unique<nexus::FirstApplicableSelector>();
}

/// The two-method fabric of the subsystem's acceptance scenario: a static
/// order must pick one method for everything, the adaptive policy can split
/// by payload class.
RuntimeOptions two_method_opts() {
  RuntimeOptions opts;
  opts.metrics = false;
  opts.adaptive = true;  // both runs pay the echo tax: selector-only diff
  opts.topology = nexus::simnet::Topology::single_partition(2);
  opts.modules = {"local", "mpl", "tcp"};
  opts.costs.tcp_latency = 150 * kUs;
  opts.costs.tcp_poll_cost = 20 * kUs;
  opts.costs.tcp_mb_s = 8.0;
  opts.costs.tcp_interference = 0;
  opts.costs.mpl_latency = 2500 * kUs;
  opts.costs.mpl_mb_s = 200.0;
  return opts;
}

/// Part (a): virtual ns per (small, large) ping-pong round pair.  Both
/// contexts install the policy under test.
double run_workload_case(bool adaptive, long pairs) {
  const std::uint64_t warmup = static_cast<std::uint64_t>(pairs) / 4 + 10;
  const std::uint64_t total = 2 * (warmup + static_cast<std::uint64_t>(pairs));
  double virtual_ns_per_pair = 0.0;

  Runtime rt(two_method_opts());
  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {  // responder
        ctx.set_selector(make_selector(adaptive));
        std::uint64_t pings = 0;
        Startpoint back = ctx.world_startpoint(1);
        ctx.register_handler("ping",
                             [&](Context& c, nexus::Endpoint&,
                                 nexus::util::UnpackBuffer&) {
                               ++pings;
                               c.rsr(back, "pong");
                             });
        ctx.wait_count(pings, total);
      },
      [&](Context& ctx) {  // driver
        ctx.set_selector(make_selector(adaptive));
        std::uint64_t pongs = 0;
        ctx.register_handler("pong",
                             [&](Context&, nexus::Endpoint&,
                                 nexus::util::UnpackBuffer&) { ++pongs; });
        Startpoint sp = ctx.world_startpoint(0);
        const nexus::util::Bytes small_b(kSmall, 0x11);
        const nexus::util::Bytes large_b(kLarge, 0x22);
        std::uint64_t sent = 0;
        auto pair = [&] {
          for (const auto* payload : {&small_b, &large_b}) {
            ctx.rsr(sp, "ping", nexus::util::SharedBytes::copy_of(*payload));
            ctx.wait_count(pongs, ++sent);
          }
        };
        for (std::uint64_t i = 0; i < warmup; ++i) pair();
        const Time t0 = ctx.now();
        for (long i = 0; i < pairs; ++i) pair();
        virtual_ns_per_pair = static_cast<double>(ctx.now() - t0) /
                              static_cast<double>(pairs);
      }});
  return virtual_ns_per_pair;
}

struct OverheadResult {
  double ns_per_rsr = 0.0;
  double allocs_per_rsr = 0.0;
};

/// Part (b): wall-clock cost of the steady-state send path (selection
/// decision cached), mark/ack phase-fenced like micro_reliable.cpp.
OverheadResult run_overhead_case(bool adaptive, long rounds) {
  RuntimeOptions opts;
  opts.metrics = false;
  opts.sim_slack = 10 * nexus::simnet::kSec;  // see micro_rsr_hotpath.cpp
  opts.topology = nexus::simnet::Topology::single_partition(2);
  opts.modules = {"local", "mpl", "tcp"};
  const long warmup = rounds / 4 + 1;

  Runtime rt(std::move(opts));
  OverheadResult result;

  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {  // receiver
        Startpoint back = ctx.world_startpoint(1);
        std::uint64_t sunk = 0;
        std::uint64_t marks = 0;
        ctx.register_handler("sink", [&](Context&, nexus::Endpoint&,
                                         nexus::util::UnpackBuffer&) {
          ++sunk;
        });
        ctx.register_handler("mark",
                             [&](Context& c, nexus::Endpoint&,
                                 nexus::util::UnpackBuffer&) {
                               ++marks;
                               c.rsr(back, "ack");
                             });
        ctx.wait_count(marks, 2);
      },
      [&](Context& ctx) {  // driver
        ctx.set_selector(make_selector(adaptive));
        std::uint64_t acks = 0;
        ctx.register_handler("ack", [&](Context&, nexus::Endpoint&,
                                        nexus::util::UnpackBuffer&) {
          ++acks;
        });
        Startpoint sp = ctx.world_startpoint(0);
        const nexus::util::Bytes src(kSmall, 0xa5);
        const nexus::HandlerId h_sink = nexus::Context::resolve_handler("sink");
        const nexus::HandlerId h_mark = nexus::Context::resolve_handler("mark");
        std::uint64_t marks = 0;
        auto phase = [&](long n) {
          for (long i = 0; i < n; ++i) {
            ctx.rsr(sp, h_sink, nexus::util::SharedBytes::copy_of(src));
          }
          ctx.rsr(sp, h_mark);
          ++marks;
          ctx.wait_count(acks, marks);
        };

        phase(warmup);
        const auto t0 = std::chrono::steady_clock::now();
        const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
        phase(rounds);
        const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);
        const auto t1 = std::chrono::steady_clock::now();

        result.ns_per_rsr =
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                    .count()) /
            static_cast<double>(rounds);
        result.allocs_per_rsr =
            static_cast<double>(a1 - a0) / static_cast<double>(rounds);
      }});
  return result;
}

std::string fmt_ratio(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  long rounds = 20000;
  std::string out_path = "BENCH_adaptive.json";
  if (argc > 1) rounds = std::strtol(argv[1], nullptr, 10);
  if (argc > 2) out_path = argv[2];
  if (rounds <= 0) {
    std::fprintf(stderr, "invalid round count\n");
    return 1;
  }
  const long pairs = rounds / 100 + 10;

  bench::print_header(
      "micro_adapt: adaptive vs static selection (workload + overhead)");
  std::printf("rounds=%ld  pairs=%ld  git_rev=%s\n\n", rounds, pairs,
              bench::git_rev());

  bench::JsonResultWriter writer("adaptive");

  // Part (a): mixed-workload completion, virtual time.
  std::printf("%-22s %18s %12s\n", "workload(virtual)", "ns/round-pair",
              "vs static");
  const double static_ns = run_workload_case(/*adaptive=*/false, pairs);
  const double adaptive_ns = run_workload_case(/*adaptive=*/true, pairs);
  const double speedup = adaptive_ns > 0.0 ? static_ns / adaptive_ns : 0.0;
  std::printf("%-22s %18.0f %11s\n", "static-fastest-first", static_ns, "-");
  std::printf("%-22s %18.0f %10.3fx\n", "adaptive", adaptive_ns, speedup);
  writer.add("workload/static",
             {{"selector", "first-applicable"},
              {"pairs", std::to_string(pairs)},
              {"small_bytes", std::to_string(kSmall)},
              {"large_bytes", std::to_string(kLarge)}},
             static_ns);
  writer.add("workload/adaptive",
             {{"selector", "adaptive"},
              {"pairs", std::to_string(pairs)},
              {"small_bytes", std::to_string(kSmall)},
              {"large_bytes", std::to_string(kLarge)},
              {"vs_static_ratio", fmt_ratio(speedup)}},
             adaptive_ns);

  // Part (b): per-RSR selection overhead, wall clock.  Interleaved
  // min-of-3: wall time on a shared machine is noisy and the minimum is
  // the least-contended estimate of the true cost of each path.
  std::printf("\n%-22s %14s %12s %10s\n", "overhead(wall)", "ns/RSR",
              "allocs/RSR", "vs first");
  OverheadResult first, adapt;
  for (int rep = 0; rep < 3; ++rep) {
    const OverheadResult f = run_overhead_case(/*adaptive=*/false, rounds);
    const OverheadResult a = run_overhead_case(/*adaptive=*/true, rounds);
    if (rep == 0 || f.ns_per_rsr < first.ns_per_rsr) first = f;
    if (rep == 0 || a.ns_per_rsr < adapt.ns_per_rsr) adapt = a;
  }
  const double tax =
      first.ns_per_rsr > 0.0 ? adapt.ns_per_rsr / first.ns_per_rsr : 0.0;
  std::printf("%-22s %14.1f %12.3f %9s\n", "first-applicable",
              first.ns_per_rsr, first.allocs_per_rsr, "-");
  std::printf("%-22s %14.1f %12.3f %9.3fx\n", "adaptive", adapt.ns_per_rsr,
              adapt.allocs_per_rsr, tax);
  writer.add("overhead/first-applicable",
             {{"selector", "first-applicable"},
              {"rounds", std::to_string(rounds)},
              {"payload_bytes", std::to_string(kSmall)}},
             first.ns_per_rsr, first.allocs_per_rsr);
  writer.add("overhead/adaptive",
             {{"selector", "adaptive"},
              {"rounds", std::to_string(rounds)},
              {"payload_bytes", std::to_string(kSmall)},
              {"vs_first_ratio", fmt_ratio(tax)}},
             adapt.ns_per_rsr, adapt.allocs_per_rsr);

  if (!writer.write(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  if (speedup <= 1.0) {
    std::fprintf(stderr,
                 "WARNING: adaptive did not beat static on the mixed "
                 "workload (ratio %.3f)\n",
                 speedup);
  }
  return 0;
}
