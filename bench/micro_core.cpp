// Real-time microbenchmarks of the core data structures, using
// google-benchmark.  Unlike the figure/table harnesses (which report
// virtual time), these measure the actual CPU cost of the library's hot
// paths: canonical pack/unpack, descriptor-table operations, method
// selection, handler dispatch, and the wrapper codecs.
#include <benchmark/benchmark.h>

#include "gbench_json.hpp"
#include "nexus/descriptor.hpp"
#include "nexus/handler.hpp"
#include "nexus/runtime.hpp"
#include "proto/codec.hpp"
#include "util/pack.hpp"
#include "util/rng.hpp"

using namespace nexus;

namespace {

void BM_PackDoubles(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> v(n, 3.14159);
  for (auto _ : state) {
    util::PackBuffer pb(n * 8 + 4);
    pb.put_f64_vector(v);
    benchmark::DoNotOptimize(pb.bytes().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 8);
}
BENCHMARK(BM_PackDoubles)->Arg(64)->Arg(1024)->Arg(16384);

void BM_UnpackDoubles(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::PackBuffer pb;
  std::vector<double> v(n, 2.5);
  pb.put_f64_vector(v);
  for (auto _ : state) {
    util::UnpackBuffer ub(pb.bytes());
    benchmark::DoNotOptimize(ub.get_f64_vector().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 8);
}
BENCHMARK(BM_UnpackDoubles)->Arg(64)->Arg(1024)->Arg(16384);

void BM_DescriptorTableRoundtrip(benchmark::State& state) {
  std::vector<CommDescriptor> entries;
  for (int i = 0; i < state.range(0); ++i) {
    entries.push_back(CommDescriptor{
        "method" + std::to_string(i), static_cast<ContextId>(i),
        util::Bytes{1, 2, 3, 4}});
  }
  DescriptorTable table(entries);
  for (auto _ : state) {
    util::PackBuffer pb;
    table.pack(pb);
    util::UnpackBuffer ub(pb.bytes());
    benchmark::DoNotOptimize(DescriptorTable::unpack(ub));
  }
}
BENCHMARK(BM_DescriptorTableRoundtrip)->Arg(3)->Arg(8);

void BM_HandlerLookup(benchmark::State& state) {
  HandlerTable table;
  std::vector<HandlerId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(table.add(
        "handler_" + std::to_string(i),
        [](Context&, Endpoint&, util::UnpackBuffer&) {}));
  }
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(&table.lookup(ids[rng.next_below(64)]));
  }
}
BENCHMARK(BM_HandlerLookup);

void BM_RleCodec(benchmark::State& state) {
  util::Bytes data(static_cast<std::size_t>(state.range(0)), 0x55);
  for (auto _ : state) {
    auto enc = proto::rle_encode(data);
    benchmark::DoNotOptimize(proto::rle_decode(enc).data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RleCodec)->Arg(1024)->Arg(65536);

void BM_SealOpen(benchmark::State& state) {
  util::Bytes data(static_cast<std::size_t>(state.range(0)), 0xaa);
  for (auto _ : state) {
    auto sealed = proto::seal(data, 0x1234567890abcdefull);
    benchmark::DoNotOptimize(
        proto::open(sealed, 0x1234567890abcdefull).data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SealOpen)->Arg(1024)->Arg(65536);

/// End-to-end: real CPU time for one simulated RSR ping-pong round (the
/// whole machinery: selection cache hit, pack, mailbox, poll, dispatch).
void BM_SimulatedRoundtrip(benchmark::State& state) {
  for (auto _ : state) {
    RuntimeOptions opts;
    opts.topology = simnet::Topology::single_partition(2);
    opts.modules = {"local", "mpl"};
    Runtime rt(opts);
    rt.run(std::vector<std::function<void(Context&)>>{
        [&](Context& ctx) {
          Startpoint reply;
          std::uint64_t served = 0;
          ctx.register_handler("setup", [&](Context& c, Endpoint&,
                                            util::UnpackBuffer& ub) {
            reply = c.unpack_startpoint(ub);
          });
          ctx.register_handler("ping", [&](Context& c, Endpoint&,
                                           util::UnpackBuffer&) {
            c.rsr(reply, "pong");
            ++served;
          });
          ctx.wait_count(served, 50);
        },
        [&](Context& ctx) {
          std::uint64_t got = 0;
          ctx.register_handler("pong", [&](Context&, Endpoint&,
                                           util::UnpackBuffer&) { ++got; });
          Startpoint to0 = ctx.world_startpoint(0);
          Startpoint back = ctx.startpoint_to(ctx.root_endpoint());
          util::PackBuffer pb;
          ctx.pack_startpoint(pb, back);
          ctx.rsr(to0, "setup", pb);
          for (int r = 0; r < 50; ++r) {
            ctx.rsr(to0, "ping");
            ctx.wait_count(got, static_cast<std::uint64_t>(r) + 1);
          }
        }});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 50);
}
BENCHMARK(BM_SimulatedRoundtrip)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return bench::gbench_json_main(argc, argv, "micro_core",
                                 "BENCH_micro_core.json");
}
