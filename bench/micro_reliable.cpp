// Reliability-wrapper overhead microbenchmark: ns/RSR and allocations/RSR
// for rel+udp on a lossless link versus the raw transports it competes
// with (udp underneath it, tcp beside it in the method table).
//
// The number that matters is the fault-free tax: the wrapper's sequence
// stamping, window bookkeeping, ack stamping/processing, and timer checks
// all run on every send even when nothing is ever lost, and the selection
// policy only gets to prefer rel+udp over tcp if that tax stays small.
// Loss-free is forced (udp_drop_prob = 0) so no retransmission cost pollutes
// the steady-state figure.
//
// Single-threaded simulated workload (see micro_rsr_hotpath.cpp for the
// methodology notes); allocations counted with a global operator new hook.
//
// Usage: micro_reliable [rounds] [output.json]
//   rounds defaults to 20000; CI passes a small count for the smoke job.
//   Results go to BENCH_reliable.json.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "simnet/topology.hpp"

// ----------------------------------------------------------------------
// Counting allocator hook (same shape as micro_rsr_hotpath.cpp): every
// global new bumps one relaxed atomic; frees are uncounted.
static std::atomic<std::uint64_t> g_allocs{0};

static void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

static void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     n ? n : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new(std::size_t n, std::align_val_t al) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

// ----------------------------------------------------------------------

namespace {

using bench::Context;
using bench::Runtime;
using bench::RuntimeOptions;
using bench::Startpoint;
using nexus::ContextId;

struct CaseResult {
  double ns_per_rsr = 0.0;
  double allocs_per_rsr = 0.0;
};

/// One (method, payload) case: context 1 drives `rounds` unicast RSRs at
/// context 0 over a table containing only {local, <method>}, so automatic
/// selection is pinned without forcing.  Phases are fenced with a "mark"
/// RSR the receiver acknowledges (the ack rides the same method; for
/// rel+udp that also drains the send window through the fence).
CaseResult run_case(const std::string& method, std::size_t payload_size,
                    long rounds) {
  RuntimeOptions opts;
  opts.metrics = false;  // measure the data path, not the telemetry
  opts.sim_slack = 10 * nexus::simnet::kSec;  // see micro_rsr_hotpath.cpp
  opts.costs.udp_drop_prob = 0.0;             // fault-free steady state
  opts.topology = nexus::simnet::Topology::single_partition(2);
  opts.modules = {"local", method};
  // rel+udp tuning for a fault-free measurement under the big slack: the
  // RTO must sit beyond the conservatism bound, or the driver's solo
  // fast-forward reaches retransmission deadlines before the receiver's
  // acks exist and the figure measures recovery, not steady state.  The
  // window is widened so backpressure handoffs are as rare as the raw
  // transports' natural scheduling batches.
  opts.db.set("rel.window", "4096");
  opts.db.set("rel.rto_initial_us", "30000000");
  opts.db.set("rel.rto_min_us", "30000000");
  opts.db.set("rel.rto_max_us", "60000000");
  const long warmup = rounds / 4 + 1;

  Runtime rt(std::move(opts));
  CaseResult result;

  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {  // receiver
        Startpoint back = ctx.world_startpoint(1);
        std::uint64_t sunk = 0;
        std::uint64_t marks = 0;
        ctx.register_handler("sink", [&](Context&, nexus::Endpoint&,
                                         nexus::util::UnpackBuffer&) {
          ++sunk;
        });
        ctx.register_handler("mark",
                             [&](Context& c, nexus::Endpoint&,
                                 nexus::util::UnpackBuffer&) {
                               ++marks;
                               c.rsr(back, "ack");
                             });
        ctx.wait_count(marks, 2);
      },
      [&](Context& ctx) {  // driver
        std::uint64_t acks = 0;
        ctx.register_handler("ack", [&](Context&, nexus::Endpoint&,
                                        nexus::util::UnpackBuffer&) {
          ++acks;
        });
        Startpoint sp = ctx.world_startpoint(0);
        const nexus::util::Bytes src(payload_size, 0xa5);
        const nexus::HandlerId h_sink = nexus::Context::resolve_handler("sink");
        const nexus::HandlerId h_mark = nexus::Context::resolve_handler("mark");
        std::uint64_t marks = 0;
        auto phase = [&](long n) {
          for (long i = 0; i < n; ++i) {
            ctx.rsr(sp, h_sink, nexus::util::SharedBytes::copy_of(src));
          }
          ctx.rsr(sp, h_mark);
          ++marks;
          ctx.wait_count(acks, marks);
        };

        phase(warmup);
        const auto t0 = std::chrono::steady_clock::now();
        const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
        phase(rounds);
        const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);
        const auto t1 = std::chrono::steady_clock::now();

        result.ns_per_rsr =
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                    .count()) /
            static_cast<double>(rounds);
        result.allocs_per_rsr =
            static_cast<double>(a1 - a0) / static_cast<double>(rounds);
      }});
  return result;
}

std::string fmt_ratio(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  long rounds = 20000;
  std::string out_path = "BENCH_reliable.json";
  if (argc > 1) rounds = std::strtol(argv[1], nullptr, 10);
  if (argc > 2) out_path = argv[2];
  if (rounds <= 0) {
    std::fprintf(stderr, "invalid round count\n");
    return 1;
  }

  bench::print_header(
      "micro_reliable: fault-free reliability-wrapper tax (ns/RSR)");
  std::printf("rounds=%ld  git_rev=%s\n\n", rounds, bench::git_rev());
  std::printf("%-10s %10s %14s %12s %10s\n", "method", "payload", "ns/RSR",
              "allocs/RSR", "vs udp");

  bench::JsonResultWriter writer("reliable");
  const char* methods[] = {"udp", "rel+udp", "tcp"};
  const std::size_t payloads[] = {16, 1024, 4096};  // all under the udp MTU
  for (std::size_t bytes : payloads) {
    double udp_ns = 0.0;
    for (const char* method : methods) {
      CaseResult r = run_case(method, bytes, rounds);
      if (std::string(method) == "udp") udp_ns = r.ns_per_rsr;
      const double ratio = udp_ns > 0.0 ? r.ns_per_rsr / udp_ns : 0.0;
      std::printf("%-10s %10zu %14.1f %12.3f %9.3fx\n", method, bytes,
                  r.ns_per_rsr, r.allocs_per_rsr, ratio);
      writer.add(std::string(method) + "/" + std::to_string(bytes),
                 {{"method", method},
                  {"payload_bytes", std::to_string(bytes)},
                  {"rounds", std::to_string(rounds)},
                  {"vs_udp_ratio", fmt_ratio(ratio)}},
                 r.ns_per_rsr, r.allocs_per_rsr);
    }
  }

  if (!writer.write(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
