// RPC subsystem microbenchmark (docs/ARCHITECTURE.md §15): call RTT for
// small eager requests, bulk-pull throughput for handle-described payloads,
// and the admission-control shed fast path under overload.
//
//   * call/16        -- full request/reply round trip, 16-byte args, ns and
//                       allocations per completed call;
//   * bulk/65536,
//     bulk/1048576   -- one call whose payload travels as a pulled bulk
//                       region (rpc.bulk_chunk-sized pieces, windowed);
//                       reports ns/call and the reassembled GB/s;
//   * overload/shed  -- bursts into rpc.max_inflight=1 + shed: the typed
//                       Rejected path must stay cheap while the one
//                       admitted call proceeds.
//
// Single-threaded simulated workload over lossless tcp (methodology notes
// in micro_rsr_hotpath.cpp); allocations counted with a global operator
// new hook -- the figure spans BOTH sides of each call (client issue +
// server dispatch run in one process), so it is an upper bound on either
// half alone.
//
// Usage: micro_rpc [rounds] [output.json]
//   rounds defaults to 4000; CI passes a small count for the smoke job.
//   Results go to BENCH_rpc.json.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "proto/rpc/rpc.hpp"
#include "simnet/topology.hpp"

// ----------------------------------------------------------------------
// Counting allocator hook (same shape as micro_rsr_hotpath.cpp).
static std::atomic<std::uint64_t> g_allocs{0};

static void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

static void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     n ? n : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new(std::size_t n, std::align_val_t al) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

// ----------------------------------------------------------------------

namespace {

using bench::Context;
using bench::Runtime;
using bench::RuntimeOptions;
using nexus::proto::rpc::BulkHandle;
using nexus::proto::rpc::CallContext;
using nexus::proto::rpc::CallResult;
using nexus::proto::rpc::CallStatus;
using nexus::proto::rpc::Client;
using nexus::proto::rpc::Server;

RuntimeOptions rpc_opts() {
  RuntimeOptions opts;
  opts.costs.udp_drop_prob = 0.0;  // fault-free steady state
  opts.topology = nexus::simnet::Topology::single_partition(2);
  opts.modules = {"local", "tcp"};
  return opts;
}

struct CaseResult {
  double ns_per_call = 0.0;
  double allocs_per_call = 0.0;
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
};

/// Small-args request/reply round trip: `rounds` sequential calls.
CaseResult run_call_case(long rounds) {
  Runtime rt(rpc_opts());
  CaseResult result;
  std::atomic<bool> done{false};
  const long warmup = rounds / 4 + 1;

  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {  // client / driver
        Client cl(ctx);
        nexus::util::PackBuffer args(16);
        args.put_u64(0x5a5a5a5a5a5a5a5aull);
        args.put_u64(0xa5a5a5a5a5a5a5a5ull);
        auto phase = [&](long n) {
          for (long i = 0; i < n; ++i) {
            const CallResult r = cl.wait(cl.call(1, "echo", args));
            if (r.status == CallStatus::Ok) ++result.ok;
          }
        };
        phase(warmup);
        const auto t0 = std::chrono::steady_clock::now();
        const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
        phase(rounds);
        const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);
        const auto t1 = std::chrono::steady_clock::now();
        result.ns_per_call =
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                    .count()) /
            static_cast<double>(rounds);
        result.allocs_per_call =
            static_cast<double>(a1 - a0) / static_cast<double>(rounds);
        done.store(true, std::memory_order_release);
      },
      [&](Context& ctx) {  // server
        Server srv(ctx);
        srv.serve("echo", [](CallContext& cc) {
          auto ub = cc.args();
          nexus::util::PackBuffer pb(16);
          pb.put_u64(ub.get_u64());
          cc.respond(pb);
        });
        while (!done.load(std::memory_order_acquire)) {
          if (!ctx.progress()) {
            ctx.compute_with_polling(50 * nexus::simnet::kUs,
                                     50 * nexus::simnet::kUs);
          }
          srv.service();
        }
      }});
  return result;
}

/// One bulk-described payload per call, pulled by the server.
CaseResult run_bulk_case(std::size_t payload, long rounds) {
  Runtime rt(rpc_opts());
  CaseResult result;
  std::atomic<bool> done{false};
  const long warmup = rounds / 4 + 1;

  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        Client cl(ctx);
        const BulkHandle h = cl.register_bulk(
            nexus::util::SharedBytes(nexus::util::Bytes(payload, 0x3c)));
        nexus::util::PackBuffer args(8);
        args.put_u64(payload);
        auto phase = [&](long n) {
          for (long i = 0; i < n; ++i) {
            const CallResult r = cl.wait(cl.call_bulk(1, "sink", args, h));
            if (r.status == CallStatus::Ok) ++result.ok;
          }
        };
        phase(warmup);
        const auto t0 = std::chrono::steady_clock::now();
        const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
        phase(rounds);
        const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);
        const auto t1 = std::chrono::steady_clock::now();
        result.ns_per_call =
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                    .count()) /
            static_cast<double>(rounds);
        result.allocs_per_call =
            static_cast<double>(a1 - a0) / static_cast<double>(rounds);
        done.store(true, std::memory_order_release);
      },
      [&](Context& ctx) {
        Server srv(ctx);
        srv.serve("sink", [](CallContext& cc) {
          nexus::util::PackBuffer pb(8);
          pb.put_u64(cc.bulk().size());
          cc.respond(pb);
        });
        while (!done.load(std::memory_order_acquire)) {
          if (!ctx.progress()) {
            ctx.compute_with_polling(50 * nexus::simnet::kUs,
                                     50 * nexus::simnet::kUs);
          }
          srv.service();
        }
      }});
  return result;
}

/// Overload: bursts of `kBurst` bulk calls into rpc.max_inflight=1 + shed.
/// The bulk pull keeps the admitted call's slot held while the rest of the
/// burst arrives, so all but one call per burst takes the Rejected path.
CaseResult run_overload_case(long rounds) {
  constexpr int kBurst = 8;
  RuntimeOptions opts = rpc_opts();
  opts.db.set("rpc.max_inflight", "1");
  opts.db.set("rpc.queue_cap", "0");
  opts.db.set("rpc.admission", "shed");
  Runtime rt(opts);
  CaseResult result;
  std::atomic<bool> done{false};
  const long warmup = rounds / 4 + 1;

  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        Client cl(ctx);
        const BulkHandle h = cl.register_bulk(
            nexus::util::SharedBytes(nexus::util::Bytes(65536, 0x3c)));
        nexus::util::PackBuffer args(8);
        args.put_u64(0);
        auto phase = [&](long n, bool count) {
          for (long i = 0; i < n; ++i) {
            std::vector<nexus::proto::rpc::CallId> ids;
            ids.reserve(kBurst);
            for (int b = 0; b < kBurst; ++b) {
              ids.push_back(cl.call_bulk(1, "sink", args, h));
            }
            cl.wait_all();
            for (const auto id : ids) {
              const CallResult r = cl.take(id);
              if (!count) continue;
              if (r.status == CallStatus::Ok) ++result.ok;
              if (r.status == CallStatus::Rejected) ++result.rejected;
            }
          }
        };
        phase(warmup, false);
        const auto t0 = std::chrono::steady_clock::now();
        const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
        phase(rounds, true);
        const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);
        const auto t1 = std::chrono::steady_clock::now();
        const double calls = static_cast<double>(rounds) * kBurst;
        result.ns_per_call =
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                    .count()) /
            calls;
        result.allocs_per_call = static_cast<double>(a1 - a0) / calls;
        done.store(true, std::memory_order_release);
      },
      [&](Context& ctx) {
        Server srv(ctx);
        srv.serve("sink", [](CallContext& cc) {
          nexus::util::PackBuffer pb(8);
          pb.put_u64(cc.bulk().size());
          cc.respond(pb);
        });
        while (!done.load(std::memory_order_acquire)) {
          if (!ctx.progress()) {
            ctx.compute_with_polling(50 * nexus::simnet::kUs,
                                     50 * nexus::simnet::kUs);
          }
          srv.service();
        }
      }});
  return result;
}

std::string fmt(double v, const char* spec) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  long rounds = 4000;
  std::string out_path = "BENCH_rpc.json";
  if (argc > 1) rounds = std::strtol(argv[1], nullptr, 10);
  if (argc > 2) out_path = argv[2];
  if (rounds <= 0) {
    std::fprintf(stderr, "invalid round count\n");
    return 1;
  }

  bench::print_header("micro_rpc: call RTT, bulk-pull throughput, shed path");
  std::printf("rounds=%ld  git_rev=%s\n\n", rounds, bench::git_rev());
  bench::JsonResultWriter writer("rpc");

  {
    const CaseResult r = run_call_case(rounds);
    std::printf("%-16s %12.1f ns/call %10.3f allocs/call\n", "call/16",
                r.ns_per_call, r.allocs_per_call);
    writer.add("call/16",
               {{"args_bytes", "16"}, {"rounds", std::to_string(rounds)}},
               r.ns_per_call, r.allocs_per_call);
  }
  for (const std::size_t payload : {std::size_t{65536}, std::size_t{1048576}}) {
    // Scale rounds down for the big payload so the bench stays quick.
    const long n = payload > 100000 ? std::max(rounds / 8, 1l) : rounds;
    const CaseResult r = run_bulk_case(payload, n);
    const double gb_s = r.ns_per_call > 0.0
                            ? static_cast<double>(payload) / r.ns_per_call
                            : 0.0;  // bytes/ns == GB/s
    const std::string name = "bulk/" + std::to_string(payload);
    std::printf("%-16s %12.1f ns/call %10.3f allocs/call %8s GB/s\n",
                name.c_str(), r.ns_per_call, r.allocs_per_call,
                fmt(gb_s, "%.2f").c_str());
    writer.add(name,
               {{"payload_bytes", std::to_string(payload)},
                {"chunks", std::to_string((payload + 8191) / 8192)},
                {"rounds", std::to_string(n)},
                {"gb_s", fmt(gb_s, "%.3f")}},
               r.ns_per_call, r.allocs_per_call);
  }
  {
    const CaseResult r = run_overload_case(std::max(rounds / 8, 1l));
    std::printf("%-16s %12.1f ns/call %10.3f allocs/call  ok=%llu rejected=%llu\n",
                "overload/shed", r.ns_per_call, r.allocs_per_call,
                static_cast<unsigned long long>(r.ok),
                static_cast<unsigned long long>(r.rejected));
    writer.add("overload/shed",
               {{"burst", "8"},
                {"ok", std::to_string(r.ok)},
                {"rejected", std::to_string(r.rejected)}},
               r.ns_per_call, r.allocs_per_call);
  }

  if (!writer.write(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
