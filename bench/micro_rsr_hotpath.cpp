// RSR hot-path microbenchmark: ns/RSR and allocations/RSR for unicast,
// 8-way multicast, and forwarded sends at payload sizes 16B..64KiB, plus
// sharded-runtime scaling cases (threads=1/2/4) for a cross-shard unicast
// ring and a fully contended multicast.
//
// The classic cases run the single-shard engine (threads=1): the
// conservative scheduler runs exactly one context at a time, so wall-clock
// time measured from the driver covers the full send -> fabric -> deliver
// path of every context involved.  The scaling cases run the same world on
// N shard threads and measure aggregate wall time from outside the run;
// their rows carry `threads` and `cpus` params because the speedup is
// bounded by the physical cores the host actually has (ISSUE 7 measures
// were taken on a 1-CPU container -- the curve is recorded honestly, not
// extrapolated).  Allocations are counted with a global operator new hook;
// the per-phase constant overhead (one mark RSR plus one ack per receiver)
// is amortized over the round count.
//
// Usage: micro_rsr_hotpath [rounds] [output.json]
//   rounds defaults to 20000 (64KiB cases use rounds/5); CI passes a small
//   count for the smoke job.  Results go to BENCH_rsr_hotpath.json.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "proto/sim_modules.hpp"
#include "simnet/topology.hpp"

// ----------------------------------------------------------------------
// Counting allocator hook: every global new (scalar, array, aligned,
// nothrow) bumps one relaxed atomic.  Frees are uncounted; we only care
// how many times the hot path hits the heap.
static std::atomic<std::uint64_t> g_allocs{0};

static void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

static void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     n ? n : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new(std::size_t n, std::align_val_t al) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

// ----------------------------------------------------------------------

namespace {

using bench::Context;
using bench::Runtime;
using bench::RuntimeOptions;
using bench::Startpoint;
using nexus::ContextId;

enum class Pattern { Unicast, Mcast8, Forward };

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::Unicast: return "unicast";
    case Pattern::Mcast8: return "mcast8";
    case Pattern::Forward: return "forward";
  }
  return "?";
}

struct CaseResult {
  double ns_per_rsr = 0.0;
  double allocs_per_rsr = 0.0;
};

/// Run one (pattern, payload) case: a warmup phase (populates connection
/// caches, mailbox capacity, handler lookups) followed by a measured phase
/// of `rounds` RSRs.  Phases are fenced with a "mark" RSR that every
/// receiver acknowledges back to the driver.
CaseResult run_case(Pattern pattern, std::size_t payload_size, long rounds,
                    bool flight = true) {
  RuntimeOptions opts;
  opts.metrics = false;  // measure the data path, not the telemetry
  opts.flight = flight;  // the always-on recorder is part of the default path
  // Large conservatism slack: scheduler handoffs between simulated contexts
  // cost ~10us of wall time each and would otherwise swamp the data path
  // this benchmark measures.  With slack, each context drains long batches
  // per baton and the per-RSR figure reflects send/deliver CPU work.
  opts.sim_slack = 10 * nexus::simnet::kSec;
  ContextId driver_id = 0;
  std::vector<ContextId> receivers;
  switch (pattern) {
    case Pattern::Unicast:
      opts.topology = nexus::simnet::Topology::single_partition(2);
      driver_id = 1;
      receivers = {0};
      break;
    case Pattern::Mcast8:
      opts.topology = nexus::simnet::Topology::single_partition(9);
      driver_id = 0;
      for (ContextId c = 1; c <= 8; ++c) receivers.push_back(c);
      break;
    case Pattern::Forward:
      // Partition 0 = {0} (driver), partition 1 = {1, 2}; context 1 is the
      // forwarding node, so driver->2 tcp traffic lands on 1 and is re-sent.
      opts.topology = nexus::simnet::Topology::two_partitions(1, 2);
      opts.forwarders[1] = 1;
      driver_id = 0;
      receivers = {2};
      break;
  }
  const auto n_ctx = opts.topology.size();
  const std::uint64_t n_recv = receivers.size();
  const long warmup = rounds / 4 + 1;

  Runtime rt(std::move(opts));
  CaseResult result;

  std::vector<std::function<void(Context&)>> fns(n_ctx);
  fns[driver_id] = [&](Context& ctx) {
    Startpoint data_sp;
    for (ContextId r : receivers) {
      Startpoint one = ctx.world_startpoint(r);
      data_sp.links().push_back(one.link(0));
    }
    std::uint64_t acks = 0;
    ctx.register_handler("ack", [&](Context&, nexus::Endpoint&,
                                    nexus::util::UnpackBuffer&) { ++acks; });

    // Steady state: the handler id is resolved once, and each RSR performs
    // exactly one payload allocation (copy_of) which every link then
    // aliases.
    const nexus::util::Bytes src(payload_size, 0xa5);
    const nexus::HandlerId h_sink = nexus::Context::resolve_handler("sink");
    const nexus::HandlerId h_mark = nexus::Context::resolve_handler("mark");
    std::uint64_t marks = 0;
    auto phase = [&](long n) {
      for (long i = 0; i < n; ++i) {
        ctx.rsr(data_sp, h_sink, nexus::util::SharedBytes::copy_of(src));
      }
      ctx.rsr(data_sp, h_mark);
      ++marks;
      ctx.wait_count(acks, marks * n_recv);
    };

    phase(warmup);
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    phase(rounds);
    const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);
    const auto t1 = std::chrono::steady_clock::now();

    result.ns_per_rsr =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        static_cast<double>(rounds);
    result.allocs_per_rsr =
        static_cast<double>(a1 - a0) / static_cast<double>(rounds);

    if (pattern == Pattern::Forward) {
      Startpoint fwd = ctx.world_startpoint(1);
      ctx.rsr(fwd, "stop");
    }
  };
  for (ContextId r : receivers) {
    fns[r] = [&, r](Context& ctx) {
      (void)r;
      Startpoint back = ctx.world_startpoint(driver_id);
      std::uint64_t sunk = 0;
      std::uint64_t marks = 0;
      ctx.register_handler("sink", [&](Context&, nexus::Endpoint&,
                                       nexus::util::UnpackBuffer&) { ++sunk; });
      ctx.register_handler("mark",
                           [&](Context& c, nexus::Endpoint&,
                               nexus::util::UnpackBuffer&) {
                             ++marks;
                             c.rsr(back, "ack");
                           });
      ctx.wait_count(marks, 2);
    };
  }
  if (pattern == Pattern::Forward) {
    fns[1] = [&](Context& ctx) {
      bool stop = false;
      ctx.register_handler("stop", [&](Context&, nexus::Endpoint&,
                                       nexus::util::UnpackBuffer&) {
        stop = true;
      });
      ctx.wait([&] { return stop; });
    };
  }

  rt.run(std::move(fns));
  return result;
}

/// Sharded-runtime scaling case: 8 contexts on `threads` shard threads.
///
/// `Ring`: every context streams `rounds` RSRs to its clockwise neighbour
/// (at threads=1 this stays on the classic same-shard hot path; at
/// threads=4 with shard = id % 4 every hop crosses a shard boundary, so
/// the whole stream rides the MPSC router).  `McastAll`: all 8 contexts
/// join one group and every context multicasts `rounds / 8` RSRs into it,
/// contending on the COW membership snapshot and all eight mailboxes at
/// once.  Returns aggregate ns and allocs per *delivered* RSR: each
/// configuration is run twice, once with zero data rounds (world
/// construction, shard-thread spawn, the mcast join barrier) and once with
/// the real workload, and the calibration run's wall time and allocation
/// count are subtracted so the per-RSR figures are independent of how many
/// rounds amortize the fixed setup (the CI smoke job runs tiny counts).
enum class ScalePattern { Ring, McastAll };

/// One full Runtime lifetime of the scaling world; returns (wall ns,
/// allocs) for the whole run.
std::pair<std::uint64_t, std::uint64_t> run_scaling_world(
    ScalePattern pattern, unsigned threads, const nexus::util::Bytes& src,
    long per_sender) {
  constexpr ContextId kWorld = 8;
  RuntimeOptions opts;
  opts.metrics = false;
  opts.flight = true;
  opts.sim_slack = 10 * nexus::simnet::kSec;
  opts.threads = threads;
  opts.topology = nexus::simnet::Topology::single_partition(kWorld);
  if (pattern == ScalePattern::McastAll) {
    opts.modules = {"local", "mpl", "tcp", "mcast"};
  }
  // Deliveries per context: the ring receives its neighbour's stream; the
  // mcast world receives every member's stream (self included).
  const std::uint64_t per_recv =
      pattern == ScalePattern::Ring
          ? static_cast<std::uint64_t>(per_sender)
          : static_cast<std::uint64_t>(per_sender) * kWorld;

  Runtime rt(std::move(opts));
  std::uint64_t got[kWorld] = {};

  std::vector<std::function<void(Context&)>> fns(kWorld);
  for (ContextId id = 0; id < kWorld; ++id) {
    fns[id] = [&, id](Context& ctx) {
      const nexus::HandlerId h_sink = nexus::Context::resolve_handler("sink");
      ctx.register_handler("sink", [&](Context&, nexus::Endpoint&,
                                       nexus::util::UnpackBuffer&) {
        ++got[id];
      });
      if (pattern == ScalePattern::Ring) {
        Startpoint next = ctx.world_startpoint((id + 1) % kWorld);
        for (long i = 0; i < per_sender; ++i) {
          ctx.rsr(next, h_sink, nexus::util::SharedBytes::copy_of(src));
        }
      } else {
        // Join, then rendezvous through the "go" fan-out from context 0 so
        // no member multicasts into a half-built group (shard clocks are
        // decoupled; only causality orders the join before the send).
        std::uint64_t go = 0;
        nexus::Endpoint& ep = ctx.create_endpoint();
        ctx.register_handler("go", [&](Context&, nexus::Endpoint&,
                                       nexus::util::UnpackBuffer&) { ++go; });
        nexus::proto::multicast_join(ctx, 1, ep);
        if (id == 0) {
          std::uint64_t joined = 0;
          ctx.register_handler("joined", [&](Context&, nexus::Endpoint&,
                                             nexus::util::UnpackBuffer&) {
            ++joined;
          });
          ctx.wait_count(joined, kWorld - 1);
          for (ContextId peer = 1; peer < kWorld; ++peer) {
            Startpoint sp = ctx.world_startpoint(peer);
            ctx.rsr(sp, "go");
          }
        } else {
          Startpoint home = ctx.world_startpoint(0);
          ctx.rsr(home, "joined");
          ctx.wait_count(go, 1);
        }
        Startpoint group = nexus::proto::multicast_startpoint(ctx, 1);
        for (long i = 0; i < per_sender; ++i) {
          ctx.rsr(group, h_sink, nexus::util::SharedBytes::copy_of(src));
        }
      }
      ctx.wait_count(got[id], per_recv);
    };
  }

  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  rt.run(std::move(fns));
  const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);
  const auto t1 = std::chrono::steady_clock::now();
  return {static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()),
          a1 - a0};
}

CaseResult run_scaling_case(ScalePattern pattern, unsigned threads,
                            std::size_t payload_size, long rounds) {
  constexpr long kWorld = 8;
  const nexus::util::Bytes src(payload_size, 0xa5);
  const long per_sender =
      pattern == ScalePattern::Ring ? rounds : std::max(rounds / kWorld, 1L);
  const std::uint64_t total_deliveries =
      pattern == ScalePattern::Ring
          ? static_cast<std::uint64_t>(per_sender) * kWorld
          : static_cast<std::uint64_t>(per_sender) * kWorld * kWorld;

  const auto calib = run_scaling_world(pattern, threads, src, 0);
  const auto run = run_scaling_world(pattern, threads, src, per_sender);
  const std::uint64_t ns = run.first > calib.first ? run.first - calib.first
                                                   : 0;
  const std::uint64_t allocs =
      run.second > calib.second ? run.second - calib.second : 0;

  CaseResult result;
  result.ns_per_rsr =
      static_cast<double>(ns) / static_cast<double>(total_deliveries);
  result.allocs_per_rsr =
      static_cast<double>(allocs) / static_cast<double>(total_deliveries);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  long rounds = 20000;
  std::string out_path = "BENCH_rsr_hotpath.json";
  if (argc > 1) rounds = std::strtol(argv[1], nullptr, 10);
  if (argc > 2) out_path = argv[2];
  if (rounds <= 0) {
    std::fprintf(stderr, "invalid round count\n");
    return 1;
  }

  bench::print_header("micro_rsr_hotpath: ns/RSR and allocations/RSR");
  std::printf("rounds=%ld  git_rev=%s\n\n", rounds, bench::git_rev());
  std::printf("%-10s %10s %6s %14s %12s\n", "pattern", "payload", "links",
              "ns/RSR", "allocs/RSR");

  bench::JsonResultWriter writer("rsr_hotpath");
  const Pattern patterns[] = {Pattern::Unicast, Pattern::Mcast8,
                              Pattern::Forward};
  const std::size_t payloads[] = {16, 1024, 65536};
  for (Pattern p : patterns) {
    for (std::size_t bytes : payloads) {
      const long case_rounds =
          bytes >= 65536 ? std::max(rounds / 5, 100L) : rounds;
      CaseResult r = run_case(p, bytes, case_rounds);
      const int links = p == Pattern::Mcast8 ? 8 : 1;
      std::printf("%-10s %10zu %6d %14.1f %12.3f\n", pattern_name(p), bytes,
                  links, r.ns_per_rsr, r.allocs_per_rsr);
      writer.add(std::string(pattern_name(p)) + "/" + std::to_string(bytes),
                 {{"pattern", pattern_name(p)},
                  {"payload_bytes", std::to_string(bytes)},
                  {"links", std::to_string(links)},
                  {"rounds", std::to_string(case_rounds)},
                  {"threads", "1"},
                  {"flight", "1"}},
                 r.ns_per_rsr, r.allocs_per_rsr);
    }
  }

  // Flight-recorder-off unicast rows: the delta against unicast/<bytes>
  // above is the cost of the always-on recorder (budget: <= 10%).
  for (std::size_t bytes : payloads) {
    const long case_rounds =
        bytes >= 65536 ? std::max(rounds / 5, 100L) : rounds;
    CaseResult r =
        run_case(Pattern::Unicast, bytes, case_rounds, /*flight=*/false);
    std::printf("%-10s %10zu %6d %14.1f %12.3f\n", "uni_noflt", bytes, 1,
                r.ns_per_rsr, r.allocs_per_rsr);
    writer.add("unicast_noflight/" + std::to_string(bytes),
               {{"pattern", "unicast"},
                {"payload_bytes", std::to_string(bytes)},
                {"links", "1"},
                {"rounds", std::to_string(case_rounds)},
                {"threads", "1"},
                {"flight", "0"}},
               r.ns_per_rsr, r.allocs_per_rsr);
  }

  // Sharded-runtime scaling curve: the same 8-context worlds on 1, 2, and
  // 4 shard threads.  ns/RSR here is aggregate (wall time over all
  // deliveries), so on a multi-core host it *drops* as threads rise; the
  // `cpus` param records how many cores this host could actually use.
  const unsigned cpus = std::thread::hardware_concurrency();
  const struct {
    ScalePattern pattern;
    const char* name;
  } scale_cases[] = {{ScalePattern::Ring, "ring8"},
                     {ScalePattern::McastAll, "mcast_contended"}};
  for (const auto& sc : scale_cases) {
    for (unsigned threads : {1u, 2u, 4u}) {
      const long case_rounds = std::max(rounds / 2, 100L);
      CaseResult r =
          run_scaling_case(sc.pattern, threads, 1024, case_rounds);
      const std::string row =
          std::string(sc.name) + "/t" + std::to_string(threads);
      std::printf("%-10s %10d %6u %14.1f %12.3f\n", sc.name, 1024, threads,
                  r.ns_per_rsr, r.allocs_per_rsr);
      writer.add(row,
                 {{"pattern", sc.name},
                  {"payload_bytes", "1024"},
                  {"rounds", std::to_string(case_rounds)},
                  {"threads", std::to_string(threads)},
                  {"cpus", std::to_string(cpus)},
                  {"flight", "1"}},
                 r.ns_per_rsr, r.allocs_per_rsr);
    }
  }

  if (!writer.write(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
