// RSR hot-path microbenchmark: ns/RSR and allocations/RSR for unicast,
// 8-way multicast, and forwarded sends at payload sizes 16B..64KiB.
//
// The whole simulated workload is single-threaded (the conservative
// scheduler runs exactly one context at a time), so wall-clock time
// measured from the driver covers the full send -> fabric -> deliver path
// of every context involved.  Allocations are counted with a global
// operator new hook; the per-phase constant overhead (one mark RSR plus
// one ack per receiver) is amortized over the round count.
//
// Usage: micro_rsr_hotpath [rounds] [output.json]
//   rounds defaults to 20000 (64KiB cases use rounds/5); CI passes a small
//   count for the smoke job.  Results go to BENCH_rsr_hotpath.json.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "simnet/topology.hpp"

// ----------------------------------------------------------------------
// Counting allocator hook: every global new (scalar, array, aligned,
// nothrow) bumps one relaxed atomic.  Frees are uncounted; we only care
// how many times the hot path hits the heap.
static std::atomic<std::uint64_t> g_allocs{0};

static void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

static void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     n ? n : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new(std::size_t n, std::align_val_t al) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

// ----------------------------------------------------------------------

namespace {

using bench::Context;
using bench::Runtime;
using bench::RuntimeOptions;
using bench::Startpoint;
using nexus::ContextId;

enum class Pattern { Unicast, Mcast8, Forward };

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::Unicast: return "unicast";
    case Pattern::Mcast8: return "mcast8";
    case Pattern::Forward: return "forward";
  }
  return "?";
}

struct CaseResult {
  double ns_per_rsr = 0.0;
  double allocs_per_rsr = 0.0;
};

/// Run one (pattern, payload) case: a warmup phase (populates connection
/// caches, mailbox capacity, handler lookups) followed by a measured phase
/// of `rounds` RSRs.  Phases are fenced with a "mark" RSR that every
/// receiver acknowledges back to the driver.
CaseResult run_case(Pattern pattern, std::size_t payload_size, long rounds,
                    bool flight = true) {
  RuntimeOptions opts;
  opts.metrics = false;  // measure the data path, not the telemetry
  opts.flight = flight;  // the always-on recorder is part of the default path
  // Large conservatism slack: scheduler handoffs between simulated contexts
  // cost ~10us of wall time each and would otherwise swamp the data path
  // this benchmark measures.  With slack, each context drains long batches
  // per baton and the per-RSR figure reflects send/deliver CPU work.
  opts.sim_slack = 10 * nexus::simnet::kSec;
  ContextId driver_id = 0;
  std::vector<ContextId> receivers;
  switch (pattern) {
    case Pattern::Unicast:
      opts.topology = nexus::simnet::Topology::single_partition(2);
      driver_id = 1;
      receivers = {0};
      break;
    case Pattern::Mcast8:
      opts.topology = nexus::simnet::Topology::single_partition(9);
      driver_id = 0;
      for (ContextId c = 1; c <= 8; ++c) receivers.push_back(c);
      break;
    case Pattern::Forward:
      // Partition 0 = {0} (driver), partition 1 = {1, 2}; context 1 is the
      // forwarding node, so driver->2 tcp traffic lands on 1 and is re-sent.
      opts.topology = nexus::simnet::Topology::two_partitions(1, 2);
      opts.forwarders[1] = 1;
      driver_id = 0;
      receivers = {2};
      break;
  }
  const auto n_ctx = opts.topology.size();
  const std::uint64_t n_recv = receivers.size();
  const long warmup = rounds / 4 + 1;

  Runtime rt(std::move(opts));
  CaseResult result;

  std::vector<std::function<void(Context&)>> fns(n_ctx);
  fns[driver_id] = [&](Context& ctx) {
    Startpoint data_sp;
    for (ContextId r : receivers) {
      Startpoint one = ctx.world_startpoint(r);
      data_sp.links().push_back(one.link(0));
    }
    std::uint64_t acks = 0;
    ctx.register_handler("ack", [&](Context&, nexus::Endpoint&,
                                    nexus::util::UnpackBuffer&) { ++acks; });

    // Steady state: the handler id is resolved once, and each RSR performs
    // exactly one payload allocation (copy_of) which every link then
    // aliases.
    const nexus::util::Bytes src(payload_size, 0xa5);
    const nexus::HandlerId h_sink = nexus::Context::resolve_handler("sink");
    const nexus::HandlerId h_mark = nexus::Context::resolve_handler("mark");
    std::uint64_t marks = 0;
    auto phase = [&](long n) {
      for (long i = 0; i < n; ++i) {
        ctx.rsr(data_sp, h_sink, nexus::util::SharedBytes::copy_of(src));
      }
      ctx.rsr(data_sp, h_mark);
      ++marks;
      ctx.wait_count(acks, marks * n_recv);
    };

    phase(warmup);
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    phase(rounds);
    const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);
    const auto t1 = std::chrono::steady_clock::now();

    result.ns_per_rsr =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        static_cast<double>(rounds);
    result.allocs_per_rsr =
        static_cast<double>(a1 - a0) / static_cast<double>(rounds);

    if (pattern == Pattern::Forward) {
      Startpoint fwd = ctx.world_startpoint(1);
      ctx.rsr(fwd, "stop");
    }
  };
  for (ContextId r : receivers) {
    fns[r] = [&, r](Context& ctx) {
      (void)r;
      Startpoint back = ctx.world_startpoint(driver_id);
      std::uint64_t sunk = 0;
      std::uint64_t marks = 0;
      ctx.register_handler("sink", [&](Context&, nexus::Endpoint&,
                                       nexus::util::UnpackBuffer&) { ++sunk; });
      ctx.register_handler("mark",
                           [&](Context& c, nexus::Endpoint&,
                               nexus::util::UnpackBuffer&) {
                             ++marks;
                             c.rsr(back, "ack");
                           });
      ctx.wait_count(marks, 2);
    };
  }
  if (pattern == Pattern::Forward) {
    fns[1] = [&](Context& ctx) {
      bool stop = false;
      ctx.register_handler("stop", [&](Context&, nexus::Endpoint&,
                                       nexus::util::UnpackBuffer&) {
        stop = true;
      });
      ctx.wait([&] { return stop; });
    };
  }

  rt.run(std::move(fns));
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  long rounds = 20000;
  std::string out_path = "BENCH_rsr_hotpath.json";
  if (argc > 1) rounds = std::strtol(argv[1], nullptr, 10);
  if (argc > 2) out_path = argv[2];
  if (rounds <= 0) {
    std::fprintf(stderr, "invalid round count\n");
    return 1;
  }

  bench::print_header("micro_rsr_hotpath: ns/RSR and allocations/RSR");
  std::printf("rounds=%ld  git_rev=%s\n\n", rounds, bench::git_rev());
  std::printf("%-10s %10s %6s %14s %12s\n", "pattern", "payload", "links",
              "ns/RSR", "allocs/RSR");

  bench::JsonResultWriter writer("rsr_hotpath");
  const Pattern patterns[] = {Pattern::Unicast, Pattern::Mcast8,
                              Pattern::Forward};
  const std::size_t payloads[] = {16, 1024, 65536};
  for (Pattern p : patterns) {
    for (std::size_t bytes : payloads) {
      const long case_rounds =
          bytes >= 65536 ? std::max(rounds / 5, 100L) : rounds;
      CaseResult r = run_case(p, bytes, case_rounds);
      const int links = p == Pattern::Mcast8 ? 8 : 1;
      std::printf("%-10s %10zu %6d %14.1f %12.3f\n", pattern_name(p), bytes,
                  links, r.ns_per_rsr, r.allocs_per_rsr);
      writer.add(std::string(pattern_name(p)) + "/" + std::to_string(bytes),
                 {{"pattern", pattern_name(p)},
                  {"payload_bytes", std::to_string(bytes)},
                  {"links", std::to_string(links)},
                  {"rounds", std::to_string(case_rounds)},
                  {"flight", "1"}},
                 r.ns_per_rsr, r.allocs_per_rsr);
    }
  }

  // Flight-recorder-off unicast rows: the delta against unicast/<bytes>
  // above is the cost of the always-on recorder (budget: <= 10%).
  for (std::size_t bytes : payloads) {
    const long case_rounds =
        bytes >= 65536 ? std::max(rounds / 5, 100L) : rounds;
    CaseResult r =
        run_case(Pattern::Unicast, bytes, case_rounds, /*flight=*/false);
    std::printf("%-10s %10zu %6d %14.1f %12.3f\n", "uni_noflt", bytes, 1,
                r.ns_per_rsr, r.allocs_per_rsr);
    writer.add("unicast_noflight/" + std::to_string(bytes),
               {{"pattern", "unicast"},
                {"payload_bytes", std::to_string(bytes)},
                {"links", "1"},
                {"rounds", std::to_string(case_rounds)},
                {"flight", "0"}},
               r.ns_per_rsr, r.allocs_per_rsr);
  }

  if (!writer.write(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
