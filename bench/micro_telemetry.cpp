// Telemetry overhead microbenchmarks.
//
// The observability subsystem promises that tracing is runtime-off by
// default at the cost of a single branch per instrumented site.  These
// benchmarks quantify that: the same simulated RSR ping-pong is timed with
// telemetry fully off, with only the always-on flight recorder, with the
// default configuration (histogram metrics + flight on, tracing off), and
// with span tracing enabled, plus micro-costs of the tracer primitives
// themselves.  The acceptance budgets: the default trace-off row
// (metrics:1/tracing:0/flight:1) within 5% of all-off, and the flight-only
// row within 10%.
#include <benchmark/benchmark.h>

#include "gbench_json.hpp"
#include "nexus/runtime.hpp"
#include "nexus/telemetry/telemetry.hpp"

using namespace nexus;

namespace {

/// One simulated ping-pong session: 50 request/reply RSR rounds between two
/// contexts (same workload as micro_core's BM_SimulatedRoundtrip).
void run_pingpong(bool metrics, bool tracing, bool flight) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(2);
  opts.modules = {"local", "mpl"};
  opts.metrics = metrics;
  opts.tracing = tracing;
  opts.flight = flight;
  Runtime rt(opts);
  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        Startpoint reply;
        std::uint64_t served = 0;
        ctx.register_handler("setup", [&](Context& c, Endpoint&,
                                          util::UnpackBuffer& ub) {
          reply = c.unpack_startpoint(ub);
        });
        ctx.register_handler("ping", [&](Context& c, Endpoint&,
                                         util::UnpackBuffer&) {
          c.rsr(reply, "pong");
          ++served;
        });
        ctx.wait_count(served, 50);
      },
      [&](Context& ctx) {
        std::uint64_t got = 0;
        ctx.register_handler("pong", [&](Context&, Endpoint&,
                                         util::UnpackBuffer&) { ++got; });
        Startpoint to0 = ctx.world_startpoint(0);
        Startpoint back = ctx.startpoint_to(ctx.root_endpoint());
        util::PackBuffer pb;
        ctx.pack_startpoint(pb, back);
        ctx.rsr(to0, "setup", pb);
        for (int r = 0; r < 50; ++r) {
          ctx.rsr(to0, "ping");
          ctx.wait_count(got, static_cast<std::uint64_t>(r) + 1);
        }
      }});
}

void BM_RsrRoundtrip(benchmark::State& state) {
  const bool metrics = state.range(0) != 0;
  const bool tracing = state.range(1) != 0;
  const bool flight = state.range(2) != 0;
  for (auto _ : state) run_pingpong(metrics, tracing, flight);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 50);
}
BENCHMARK(BM_RsrRoundtrip)
    ->Args({0, 0, 0})->ArgNames({"metrics", "tracing", "flight"})
    ->Args({0, 0, 1})
    ->Args({1, 0, 1})
    ->Args({1, 1, 1})
    ->Unit(benchmark::kMillisecond);

/// The hot-path cost when tracing is off: one relaxed atomic load.
void BM_TracerDisabledCheck(benchmark::State& state) {
  telemetry::Tracer tr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tr.enabled());
  }
}
BENCHMARK(BM_TracerDisabledCheck);

/// Cost of one record() when tracing is on (mutex + struct copy into ring).
void BM_TracerRecord(benchmark::State& state) {
  telemetry::Tracer tr;
  tr.enable();
  const auto label = tr.intern("bench");
  telemetry::Event ev{0, 1, 0, telemetry::Phase::Custom, label, 64, 0};
  for (auto _ : state) {
    ev.when += 1;
    tr.record(ev);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TracerRecord);

/// Cost of one flight-recorder record (lock-free slot write; no mutex).
void BM_FlightRecord(benchmark::State& state) {
  telemetry::FlightRecorder fr;
  telemetry::Event ev{0, 1, 0, telemetry::Phase::Custom, 0, 64, 0};
  for (auto _ : state) {
    ev.when += 1;
    fr.record(ev);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FlightRecord);

/// Cost of one histogram add (bucket index + a few integer updates).
void BM_HistogramAdd(benchmark::State& state) {
  telemetry::Histogram h;
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.add(v);
    v = v * 6364136223846793005ull + 1442695040888963407ull;  // cheap LCG
    benchmark::DoNotOptimize(h.count());
  }
}
BENCHMARK(BM_HistogramAdd);

}  // namespace

int main(int argc, char** argv) {
  return bench::gbench_json_main(argc, argv, "micro_telemetry",
                                 "BENCH_micro_telemetry.json");
}
