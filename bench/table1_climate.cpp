// Table 1 reproduction: coupled ocean/atmosphere model on 24 processors
// (16 atmosphere + 8 ocean) across two partitions, under the paper's
// multimethod configurations:
//
//   | No. | Experiment      | Total (paper, s/step) |
//   |  1  | Selective TCP   | 104.9                 |
//   |  2  | Forwarding      | 109.3                 |
//   |  3  | skip poll 1     | 109.1                 |
//   |  4  | skip poll 100   | 107.8                 |
//   |  5  | skip poll 10000 | 105.4                 |
//   |  6  | skip poll 12000 | 105.0                 |
//   |  7  | skip poll 13000 | 108.3                 |
//
// plus the §4 text claim that running *everything* over TCP (no multimethod
// support) costs an order of magnitude more than the worst multimethod row.
#include <cstdio>

#include "bench_util.hpp"
#include "climate/coupled.hpp"

namespace {

using climate::CoupledConfig;
using climate::CoupledResult;
using climate::Policy;

void print_row(int no, const std::string& name, double paper,
               const CoupledResult& r) {
  if (paper > 0) {
    std::printf("%4d  %-26s %10.1f %12.1f %14.2e\n", no, name.c_str(), paper,
                r.seconds_per_step,
                (r.atmo_heat_end - r.atmo_heat_start) /
                    (r.atmo_heat_start != 0.0 ? r.atmo_heat_start : 1.0));
  } else {
    std::printf("%4d  %-26s %10s %12.1f %14.2e\n", no, name.c_str(), "n/a",
                r.seconds_per_step,
                (r.atmo_heat_end - r.atmo_heat_start) /
                    (r.atmo_heat_start != 0.0 ? r.atmo_heat_start : 1.0));
  }
  std::fflush(stdout);
}

}  // namespace

int main() {
  bench::print_header(
      "Table 1: coupled climate model, seconds per timestep on 24 procs\n"
      "(virtual time; 16 atmosphere + 8 ocean ranks, coupling every 2 steps)");

  CoupledConfig cfg;
  cfg.timesteps = 4;

  std::printf("%4s  %-26s %10s %12s %14s\n", "No.", "Experiment",
              "paper s/st", "ours s/st", "atmo heat drift");

  CoupledResult sel = run_coupled(cfg, Policy::SelectiveTcp);
  print_row(1, "Selective TCP", 104.9, sel);

  CoupledResult fwd = run_coupled(cfg, Policy::Forwarding);
  print_row(2, "Forwarding", 109.3, fwd);

  struct SkipRow {
    int no;
    std::uint64_t skip;
    double paper;
  };
  for (const SkipRow& row :
       {SkipRow{3, 1, 109.1}, SkipRow{4, 100, 107.8},
        SkipRow{5, 10000, 105.4}, SkipRow{6, 12000, 105.0},
        SkipRow{7, 13000, 108.3}}) {
    CoupledResult r = run_coupled(cfg, Policy::SkipPoll, row.skip);
    print_row(row.no, "skip poll " + std::to_string(row.skip), row.paper, r);
  }

  // §4 text claim: no multimethod support at all (TCP inside partitions
  // too) is an order of magnitude worse than the worst multimethod row.
  {
    CoupledConfig all = cfg;
    all.timesteps = 2;  // each step is ~10x longer; two suffice
    CoupledResult r = run_coupled(all, Policy::AllTcp);
    print_row(8, "All TCP (no multimethod)", -1.0, r);
    std::printf(
        "\n  All-TCP slowdown vs Selective TCP: %.1fx (paper: \"an order of "
        "magnitude\")\n",
        r.seconds_per_step / sel.seconds_per_step);
  }

  std::printf(
      "\nShape checks: selective < skip12000 < skip10000 < skip100 < skip1;\n"
      "forwarding ~ skip1 (forwarder pays full polling); skip13000 > "
      "skip12000 (coupling latency).\n");
  return 0;
}
