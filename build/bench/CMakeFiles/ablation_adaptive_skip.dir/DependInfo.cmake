
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_adaptive_skip.cpp" "bench/CMakeFiles/ablation_adaptive_skip.dir/ablation_adaptive_skip.cpp.o" "gcc" "bench/CMakeFiles/ablation_adaptive_skip.dir/ablation_adaptive_skip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/climate/CMakeFiles/repro_climate.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/repro_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/nexus/CMakeFiles/repro_nexus.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/repro_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
