file(REMOVE_RECURSE
  "CMakeFiles/ablation_adaptive_skip.dir/ablation_adaptive_skip.cpp.o"
  "CMakeFiles/ablation_adaptive_skip.dir/ablation_adaptive_skip.cpp.o.d"
  "ablation_adaptive_skip"
  "ablation_adaptive_skip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive_skip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
