# Empty compiler generated dependencies file for ablation_adaptive_skip.
# This may be replaced when dependencies are built.
