file(REMOVE_RECURSE
  "CMakeFiles/ablation_blocking_poller.dir/ablation_blocking_poller.cpp.o"
  "CMakeFiles/ablation_blocking_poller.dir/ablation_blocking_poller.cpp.o.d"
  "ablation_blocking_poller"
  "ablation_blocking_poller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_blocking_poller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
