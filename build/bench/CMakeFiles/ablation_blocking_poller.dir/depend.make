# Empty dependencies file for ablation_blocking_poller.
# This may be replaced when dependencies are built.
