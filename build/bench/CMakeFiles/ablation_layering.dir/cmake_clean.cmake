file(REMOVE_RECURSE
  "CMakeFiles/ablation_layering.dir/ablation_layering.cpp.o"
  "CMakeFiles/ablation_layering.dir/ablation_layering.cpp.o.d"
  "ablation_layering"
  "ablation_layering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_layering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
