# Empty dependencies file for ablation_layering.
# This may be replaced when dependencies are built.
