file(REMOVE_RECURSE
  "CMakeFiles/ablation_startpoint_weight.dir/ablation_startpoint_weight.cpp.o"
  "CMakeFiles/ablation_startpoint_weight.dir/ablation_startpoint_weight.cpp.o.d"
  "ablation_startpoint_weight"
  "ablation_startpoint_weight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_startpoint_weight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
