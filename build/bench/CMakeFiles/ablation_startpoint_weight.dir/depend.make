# Empty dependencies file for ablation_startpoint_weight.
# This may be replaced when dependencies are built.
