file(REMOVE_RECURSE
  "CMakeFiles/fig4_pingpong.dir/fig4_pingpong.cpp.o"
  "CMakeFiles/fig4_pingpong.dir/fig4_pingpong.cpp.o.d"
  "fig4_pingpong"
  "fig4_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
