# Empty dependencies file for fig4_pingpong.
# This may be replaced when dependencies are built.
