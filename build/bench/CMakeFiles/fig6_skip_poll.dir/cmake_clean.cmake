file(REMOVE_RECURSE
  "CMakeFiles/fig6_skip_poll.dir/fig6_skip_poll.cpp.o"
  "CMakeFiles/fig6_skip_poll.dir/fig6_skip_poll.cpp.o.d"
  "fig6_skip_poll"
  "fig6_skip_poll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_skip_poll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
