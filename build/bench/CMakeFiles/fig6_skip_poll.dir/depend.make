# Empty dependencies file for fig6_skip_poll.
# This may be replaced when dependencies are built.
