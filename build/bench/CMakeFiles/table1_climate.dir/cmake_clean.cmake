file(REMOVE_RECURSE
  "CMakeFiles/table1_climate.dir/table1_climate.cpp.o"
  "CMakeFiles/table1_climate.dir/table1_climate.cpp.o.d"
  "table1_climate"
  "table1_climate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_climate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
