# Empty compiler generated dependencies file for table1_climate.
# This may be replaced when dependencies are built.
