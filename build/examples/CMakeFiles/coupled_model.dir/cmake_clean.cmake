file(REMOVE_RECURSE
  "CMakeFiles/coupled_model.dir/coupled_model.cpp.o"
  "CMakeFiles/coupled_model.dir/coupled_model.cpp.o.d"
  "coupled_model"
  "coupled_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coupled_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
