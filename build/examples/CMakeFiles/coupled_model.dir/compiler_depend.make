# Empty compiler generated dependencies file for coupled_model.
# This may be replaced when dependencies are built.
