file(REMOVE_RECURSE
  "CMakeFiles/galaxy_iway.dir/galaxy_iway.cpp.o"
  "CMakeFiles/galaxy_iway.dir/galaxy_iway.cpp.o.d"
  "galaxy_iway"
  "galaxy_iway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galaxy_iway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
