# Empty compiler generated dependencies file for galaxy_iway.
# This may be replaced when dependencies are built.
