file(REMOVE_RECURSE
  "CMakeFiles/instrument_failover.dir/instrument_failover.cpp.o"
  "CMakeFiles/instrument_failover.dir/instrument_failover.cpp.o.d"
  "instrument_failover"
  "instrument_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instrument_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
