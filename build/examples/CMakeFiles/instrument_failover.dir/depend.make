# Empty dependencies file for instrument_failover.
# This may be replaced when dependencies are built.
