file(REMOVE_RECURSE
  "CMakeFiles/mpi_heat.dir/mpi_heat.cpp.o"
  "CMakeFiles/mpi_heat.dir/mpi_heat.cpp.o.d"
  "mpi_heat"
  "mpi_heat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_heat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
