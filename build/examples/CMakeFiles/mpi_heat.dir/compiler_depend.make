# Empty compiler generated dependencies file for mpi_heat.
# This may be replaced when dependencies are built.
