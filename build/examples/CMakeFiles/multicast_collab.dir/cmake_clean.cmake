file(REMOVE_RECURSE
  "CMakeFiles/multicast_collab.dir/multicast_collab.cpp.o"
  "CMakeFiles/multicast_collab.dir/multicast_collab.cpp.o.d"
  "multicast_collab"
  "multicast_collab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicast_collab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
