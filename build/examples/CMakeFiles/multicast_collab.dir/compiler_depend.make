# Empty compiler generated dependencies file for multicast_collab.
# This may be replaced when dependencies are built.
