file(REMOVE_RECURSE
  "CMakeFiles/repro_climate.dir/coupled.cpp.o"
  "CMakeFiles/repro_climate.dir/coupled.cpp.o.d"
  "CMakeFiles/repro_climate.dir/grid.cpp.o"
  "CMakeFiles/repro_climate.dir/grid.cpp.o.d"
  "CMakeFiles/repro_climate.dir/model.cpp.o"
  "CMakeFiles/repro_climate.dir/model.cpp.o.d"
  "librepro_climate.a"
  "librepro_climate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_climate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
