file(REMOVE_RECURSE
  "librepro_climate.a"
)
