# Empty dependencies file for repro_climate.
# This may be replaced when dependencies are built.
