file(REMOVE_RECURSE
  "CMakeFiles/repro_minimpi.dir/collectives.cpp.o"
  "CMakeFiles/repro_minimpi.dir/collectives.cpp.o.d"
  "CMakeFiles/repro_minimpi.dir/mpi.cpp.o"
  "CMakeFiles/repro_minimpi.dir/mpi.cpp.o.d"
  "librepro_minimpi.a"
  "librepro_minimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
