file(REMOVE_RECURSE
  "librepro_minimpi.a"
)
