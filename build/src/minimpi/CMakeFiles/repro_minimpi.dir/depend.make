# Empty dependencies file for repro_minimpi.
# This may be replaced when dependencies are built.
