
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/codec.cpp" "src/nexus/CMakeFiles/repro_nexus.dir/__/proto/codec.cpp.o" "gcc" "src/nexus/CMakeFiles/repro_nexus.dir/__/proto/codec.cpp.o.d"
  "/root/repo/src/proto/register.cpp" "src/nexus/CMakeFiles/repro_nexus.dir/__/proto/register.cpp.o" "gcc" "src/nexus/CMakeFiles/repro_nexus.dir/__/proto/register.cpp.o.d"
  "/root/repo/src/proto/rt_modules.cpp" "src/nexus/CMakeFiles/repro_nexus.dir/__/proto/rt_modules.cpp.o" "gcc" "src/nexus/CMakeFiles/repro_nexus.dir/__/proto/rt_modules.cpp.o.d"
  "/root/repo/src/proto/sim_modules.cpp" "src/nexus/CMakeFiles/repro_nexus.dir/__/proto/sim_modules.cpp.o" "gcc" "src/nexus/CMakeFiles/repro_nexus.dir/__/proto/sim_modules.cpp.o.d"
  "/root/repo/src/proto/stream.cpp" "src/nexus/CMakeFiles/repro_nexus.dir/__/proto/stream.cpp.o" "gcc" "src/nexus/CMakeFiles/repro_nexus.dir/__/proto/stream.cpp.o.d"
  "/root/repo/src/nexus/context.cpp" "src/nexus/CMakeFiles/repro_nexus.dir/context.cpp.o" "gcc" "src/nexus/CMakeFiles/repro_nexus.dir/context.cpp.o.d"
  "/root/repo/src/nexus/descriptor.cpp" "src/nexus/CMakeFiles/repro_nexus.dir/descriptor.cpp.o" "gcc" "src/nexus/CMakeFiles/repro_nexus.dir/descriptor.cpp.o.d"
  "/root/repo/src/nexus/handler.cpp" "src/nexus/CMakeFiles/repro_nexus.dir/handler.cpp.o" "gcc" "src/nexus/CMakeFiles/repro_nexus.dir/handler.cpp.o.d"
  "/root/repo/src/nexus/module.cpp" "src/nexus/CMakeFiles/repro_nexus.dir/module.cpp.o" "gcc" "src/nexus/CMakeFiles/repro_nexus.dir/module.cpp.o.d"
  "/root/repo/src/nexus/polling.cpp" "src/nexus/CMakeFiles/repro_nexus.dir/polling.cpp.o" "gcc" "src/nexus/CMakeFiles/repro_nexus.dir/polling.cpp.o.d"
  "/root/repo/src/nexus/runtime.cpp" "src/nexus/CMakeFiles/repro_nexus.dir/runtime.cpp.o" "gcc" "src/nexus/CMakeFiles/repro_nexus.dir/runtime.cpp.o.d"
  "/root/repo/src/nexus/selector.cpp" "src/nexus/CMakeFiles/repro_nexus.dir/selector.cpp.o" "gcc" "src/nexus/CMakeFiles/repro_nexus.dir/selector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simnet/CMakeFiles/repro_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
