file(REMOVE_RECURSE
  "CMakeFiles/repro_nexus.dir/__/proto/codec.cpp.o"
  "CMakeFiles/repro_nexus.dir/__/proto/codec.cpp.o.d"
  "CMakeFiles/repro_nexus.dir/__/proto/register.cpp.o"
  "CMakeFiles/repro_nexus.dir/__/proto/register.cpp.o.d"
  "CMakeFiles/repro_nexus.dir/__/proto/rt_modules.cpp.o"
  "CMakeFiles/repro_nexus.dir/__/proto/rt_modules.cpp.o.d"
  "CMakeFiles/repro_nexus.dir/__/proto/sim_modules.cpp.o"
  "CMakeFiles/repro_nexus.dir/__/proto/sim_modules.cpp.o.d"
  "CMakeFiles/repro_nexus.dir/__/proto/stream.cpp.o"
  "CMakeFiles/repro_nexus.dir/__/proto/stream.cpp.o.d"
  "CMakeFiles/repro_nexus.dir/context.cpp.o"
  "CMakeFiles/repro_nexus.dir/context.cpp.o.d"
  "CMakeFiles/repro_nexus.dir/descriptor.cpp.o"
  "CMakeFiles/repro_nexus.dir/descriptor.cpp.o.d"
  "CMakeFiles/repro_nexus.dir/handler.cpp.o"
  "CMakeFiles/repro_nexus.dir/handler.cpp.o.d"
  "CMakeFiles/repro_nexus.dir/module.cpp.o"
  "CMakeFiles/repro_nexus.dir/module.cpp.o.d"
  "CMakeFiles/repro_nexus.dir/polling.cpp.o"
  "CMakeFiles/repro_nexus.dir/polling.cpp.o.d"
  "CMakeFiles/repro_nexus.dir/runtime.cpp.o"
  "CMakeFiles/repro_nexus.dir/runtime.cpp.o.d"
  "CMakeFiles/repro_nexus.dir/selector.cpp.o"
  "CMakeFiles/repro_nexus.dir/selector.cpp.o.d"
  "librepro_nexus.a"
  "librepro_nexus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_nexus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
