file(REMOVE_RECURSE
  "librepro_nexus.a"
)
