# Empty dependencies file for repro_nexus.
# This may be replaced when dependencies are built.
