file(REMOVE_RECURSE
  "CMakeFiles/repro_simnet.dir/process.cpp.o"
  "CMakeFiles/repro_simnet.dir/process.cpp.o.d"
  "CMakeFiles/repro_simnet.dir/scheduler.cpp.o"
  "CMakeFiles/repro_simnet.dir/scheduler.cpp.o.d"
  "librepro_simnet.a"
  "librepro_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
