file(REMOVE_RECURSE
  "librepro_simnet.a"
)
