# Empty dependencies file for repro_simnet.
# This may be replaced when dependencies are built.
