file(REMOVE_RECURSE
  "CMakeFiles/repro_util.dir/log.cpp.o"
  "CMakeFiles/repro_util.dir/log.cpp.o.d"
  "CMakeFiles/repro_util.dir/pack.cpp.o"
  "CMakeFiles/repro_util.dir/pack.cpp.o.d"
  "CMakeFiles/repro_util.dir/resource_db.cpp.o"
  "CMakeFiles/repro_util.dir/resource_db.cpp.o.d"
  "CMakeFiles/repro_util.dir/stats.cpp.o"
  "CMakeFiles/repro_util.dir/stats.cpp.o.d"
  "librepro_util.a"
  "librepro_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
