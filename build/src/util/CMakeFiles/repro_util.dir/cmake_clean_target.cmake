file(REMOVE_RECURSE
  "librepro_util.a"
)
