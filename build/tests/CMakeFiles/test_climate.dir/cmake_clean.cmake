file(REMOVE_RECURSE
  "CMakeFiles/test_climate.dir/test_climate.cpp.o"
  "CMakeFiles/test_climate.dir/test_climate.cpp.o.d"
  "test_climate"
  "test_climate.pdb"
  "test_climate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_climate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
