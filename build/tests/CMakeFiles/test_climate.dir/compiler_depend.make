# Empty compiler generated dependencies file for test_climate.
# This may be replaced when dependencies are built.
