file(REMOVE_RECURSE
  "CMakeFiles/test_context.dir/test_context.cpp.o"
  "CMakeFiles/test_context.dir/test_context.cpp.o.d"
  "test_context"
  "test_context.pdb"
  "test_context[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
