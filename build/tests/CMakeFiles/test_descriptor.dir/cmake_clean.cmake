file(REMOVE_RECURSE
  "CMakeFiles/test_descriptor.dir/test_descriptor.cpp.o"
  "CMakeFiles/test_descriptor.dir/test_descriptor.cpp.o.d"
  "test_descriptor"
  "test_descriptor.pdb"
  "test_descriptor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_descriptor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
