# Empty dependencies file for test_descriptor.
# This may be replaced when dependencies are built.
