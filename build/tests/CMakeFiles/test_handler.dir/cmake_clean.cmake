file(REMOVE_RECURSE
  "CMakeFiles/test_handler.dir/test_handler.cpp.o"
  "CMakeFiles/test_handler.dir/test_handler.cpp.o.d"
  "test_handler"
  "test_handler.pdb"
  "test_handler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_handler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
