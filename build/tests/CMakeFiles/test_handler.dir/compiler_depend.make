# Empty compiler generated dependencies file for test_handler.
# This may be replaced when dependencies are built.
