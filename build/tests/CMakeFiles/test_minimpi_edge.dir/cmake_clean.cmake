file(REMOVE_RECURSE
  "CMakeFiles/test_minimpi_edge.dir/test_minimpi_edge.cpp.o"
  "CMakeFiles/test_minimpi_edge.dir/test_minimpi_edge.cpp.o.d"
  "test_minimpi_edge"
  "test_minimpi_edge.pdb"
  "test_minimpi_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minimpi_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
