# Empty compiler generated dependencies file for test_minimpi_edge.
# This may be replaced when dependencies are built.
