file(REMOVE_RECURSE
  "CMakeFiles/test_modules.dir/test_modules.cpp.o"
  "CMakeFiles/test_modules.dir/test_modules.cpp.o.d"
  "test_modules"
  "test_modules.pdb"
  "test_modules[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
