# Empty compiler generated dependencies file for test_modules.
# This may be replaced when dependencies are built.
