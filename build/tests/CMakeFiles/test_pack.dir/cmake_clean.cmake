file(REMOVE_RECURSE
  "CMakeFiles/test_pack.dir/test_pack.cpp.o"
  "CMakeFiles/test_pack.dir/test_pack.cpp.o.d"
  "test_pack"
  "test_pack.pdb"
  "test_pack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
