# Empty compiler generated dependencies file for test_pack.
# This may be replaced when dependencies are built.
