file(REMOVE_RECURSE
  "CMakeFiles/test_polling.dir/test_polling.cpp.o"
  "CMakeFiles/test_polling.dir/test_polling.cpp.o.d"
  "test_polling"
  "test_polling.pdb"
  "test_polling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_polling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
