# Empty dependencies file for test_polling.
# This may be replaced when dependencies are built.
