file(REMOVE_RECURSE
  "CMakeFiles/test_polling_property.dir/test_polling_property.cpp.o"
  "CMakeFiles/test_polling_property.dir/test_polling_property.cpp.o.d"
  "test_polling_property"
  "test_polling_property.pdb"
  "test_polling_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_polling_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
