# Empty compiler generated dependencies file for test_polling_property.
# This may be replaced when dependencies are built.
