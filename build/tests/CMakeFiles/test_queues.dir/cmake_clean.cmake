file(REMOVE_RECURSE
  "CMakeFiles/test_queues.dir/test_queues.cpp.o"
  "CMakeFiles/test_queues.dir/test_queues.cpp.o.d"
  "test_queues"
  "test_queues.pdb"
  "test_queues[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
