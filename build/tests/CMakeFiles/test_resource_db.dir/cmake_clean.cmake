file(REMOVE_RECURSE
  "CMakeFiles/test_resource_db.dir/test_resource_db.cpp.o"
  "CMakeFiles/test_resource_db.dir/test_resource_db.cpp.o.d"
  "test_resource_db"
  "test_resource_db.pdb"
  "test_resource_db[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resource_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
