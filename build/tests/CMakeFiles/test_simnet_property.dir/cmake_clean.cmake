file(REMOVE_RECURSE
  "CMakeFiles/test_simnet_property.dir/test_simnet_property.cpp.o"
  "CMakeFiles/test_simnet_property.dir/test_simnet_property.cpp.o.d"
  "test_simnet_property"
  "test_simnet_property.pdb"
  "test_simnet_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simnet_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
