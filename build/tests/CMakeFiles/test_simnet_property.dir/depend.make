# Empty dependencies file for test_simnet_property.
# This may be replaced when dependencies are built.
