file(REMOVE_RECURSE
  "CMakeFiles/test_startpoint.dir/test_startpoint.cpp.o"
  "CMakeFiles/test_startpoint.dir/test_startpoint.cpp.o.d"
  "test_startpoint"
  "test_startpoint.pdb"
  "test_startpoint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_startpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
