# Empty compiler generated dependencies file for test_startpoint.
# This may be replaced when dependencies are built.
