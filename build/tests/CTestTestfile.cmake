# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_pack[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_resource_db[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_simnet[1]_include.cmake")
include("/root/repo/build/tests/test_mailbox[1]_include.cmake")
include("/root/repo/build/tests/test_descriptor[1]_include.cmake")
include("/root/repo/build/tests/test_handler[1]_include.cmake")
include("/root/repo/build/tests/test_context[1]_include.cmake")
include("/root/repo/build/tests/test_selector[1]_include.cmake")
include("/root/repo/build/tests/test_polling[1]_include.cmake")
include("/root/repo/build/tests/test_minimpi[1]_include.cmake")
include("/root/repo/build/tests/test_climate[1]_include.cmake")
include("/root/repo/build/tests/test_codec[1]_include.cmake")
include("/root/repo/build/tests/test_rt[1]_include.cmake")
include("/root/repo/build/tests/test_modules[1]_include.cmake")
include("/root/repo/build/tests/test_startpoint[1]_include.cmake")
include("/root/repo/build/tests/test_config[1]_include.cmake")
include("/root/repo/build/tests/test_polling_property[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_simnet_property[1]_include.cmake")
include("/root/repo/build/tests/test_stream[1]_include.cmake")
include("/root/repo/build/tests/test_reliability[1]_include.cmake")
include("/root/repo/build/tests/test_minimpi_edge[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_queues[1]_include.cmake")
