// The paper's §4 case study at example scale: the coupled ocean/atmosphere
// model on two partitions, run under two multimethod policies, with the
// climate diagnostics printed.
//
// This is a smaller configuration than bench/table1_climate (8 + 4 ranks,
// short steps) so it finishes in about a second.
#include <cstdio>

#include "climate/coupled.hpp"

using namespace climate;

int main() {
  CoupledConfig cfg;
  cfg.atmo_ranks = 8;
  cfg.ocean_ranks = 4;
  cfg.timesteps = 6;
  cfg.couple_every = 2;
  cfg.atmosphere.nx = 64;
  cfg.atmosphere.ny = 32;
  cfg.atmosphere.step_compute = 5 * nexus::simnet::kSec;
  cfg.atmosphere.polls_per_step = 2000;
  cfg.atmosphere.transpose_phases = 4;
  cfg.atmosphere.transpose_bytes = 16'000;
  cfg.ocean.nx = 48;
  cfg.ocean.ny = 16;
  cfg.ocean.step_compute = 4 * nexus::simnet::kSec;
  cfg.ocean.polls_per_step = 2000;
  cfg.ocean.transpose_phases = 1;
  cfg.ocean.transpose_bytes = 8'000;

  std::printf("coupled ocean/atmosphere demo: %d+%d ranks, %d steps, "
              "coupling every %d\n\n",
              cfg.atmo_ranks, cfg.ocean_ranks, cfg.timesteps,
              cfg.couple_every);

  for (auto [policy, skip] :
       {std::pair<Policy, std::uint64_t>{Policy::SkipPoll, 1},
        {Policy::SkipPoll, 500},
        {Policy::SelectiveTcp, 1}}) {
    CoupledResult r = run_coupled(cfg, policy, skip);
    std::printf("policy %-14s skip %-5llu : %.3f virtual s/step "
                "(couplings=%d, tcp msgs=%llu, mpl msgs=%llu)\n",
                policy_name(policy).c_str(),
                static_cast<unsigned long long>(skip), r.seconds_per_step,
                r.couplings, static_cast<unsigned long long>(r.tcp_sends),
                static_cast<unsigned long long>(r.mpl_sends));
    std::printf("   atmosphere heat %.6g -> %.6g (relative drift %.2e)\n",
                r.atmo_heat_start, r.atmo_heat_end,
                (r.atmo_heat_end - r.atmo_heat_start) / r.atmo_heat_start);
    std::printf("   ocean      heat %.6g -> %.6g\n\n", r.ocean_heat_start,
                r.ocean_heat_end);
  }
  std::printf("note: the models exchange zonal SST/flux profiles through "
              "their leader ranks;\nthat traffic crosses partitions and is "
              "the only TCP in the multimethod runs.\n");
  return 0;
}
