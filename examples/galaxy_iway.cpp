// "Galaxies collide on the I-WAY" (paper §1 cites Norman et al.): two
// galaxies, each simulated on its own "supercomputer" (partition), collide.
// Within a machine the ranks share their particles over MPL; every step the
// two machines exchange complete particle snapshots over the wide-area TCP
// path -- distributed execution buys aggregate memory, exactly the §4
// motivation.
//
// The physics is a real direct-sum N-body integrator (softened gravity,
// symplectic Euler); the program prints momentum conservation as evidence.
#include <cmath>
#include <cstdio>
#include <vector>

#include "minimpi/mpi.hpp"
#include "nexus/runtime.hpp"
#include "util/rng.hpp"

using namespace nexus;

namespace {

constexpr int kRanksPerMachine = 4;
constexpr int kParticlesPerRank = 64;
constexpr int kSteps = 25;
constexpr double kDt = 0.01;
constexpr double kSoft2 = 0.05;  // softening^2

struct Body {
  double x, y, vx, vy, m;
};

util::Bytes pack_bodies(const std::vector<Body>& bodies) {
  util::PackBuffer pb(bodies.size() * 40 + 4);
  pb.put_u32(static_cast<std::uint32_t>(bodies.size()));
  for (const Body& b : bodies) {
    pb.put_f64(b.x);
    pb.put_f64(b.y);
    pb.put_f64(b.m);
  }
  return pb.take();
}

void append_sources(const util::Bytes& raw, std::vector<Body>& out) {
  util::UnpackBuffer ub(raw);
  const std::uint32_t n = ub.get_u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    Body b{};
    b.x = ub.get_f64();
    b.y = ub.get_f64();
    b.m = ub.get_f64();
    out.push_back(b);
  }
}

}  // namespace

int main() {
  RuntimeOptions opts;
  opts.topology =
      simnet::Topology::two_partitions(kRanksPerMachine, kRanksPerMachine);
  opts.modules = {"local", "mpl", "tcp"};
  Runtime rt(opts);

  rt.run([&](Context& ctx) {
    minimpi::World mpi(ctx);
    minimpi::Comm& world = mpi.comm();
    const int machine = world.rank() < kRanksPerMachine ? 0 : 1;
    minimpi::Comm local = world.split(machine, world.rank());

    // Each machine hosts one galaxy: a rotating disc, the pair on a
    // collision course.
    util::Rng rng(101 + static_cast<std::uint64_t>(world.rank()));
    const double cx = machine == 0 ? -2.0 : 2.0;
    const double gvx = machine == 0 ? 0.45 : -0.45;
    std::vector<Body> mine;
    for (int i = 0; i < kParticlesPerRank; ++i) {
      const double r = 0.15 + rng.next_double() * 0.9;
      const double th = rng.next_double() * 2.0 * M_PI;
      const double vorb = std::sqrt(1.0 / (r + 0.3));
      mine.push_back(Body{cx + r * std::cos(th), r * std::sin(th),
                          gvx - vorb * std::sin(th), vorb * std::cos(th),
                          1.0 / (kParticlesPerRank * kRanksPerMachine)});
    }

    auto momentum = [&] {
      double px = 0, py = 0;
      for (const Body& b : mine) {
        px += b.m * b.vx;
        py += b.m * b.vy;
      }
      auto total = world.allreduce(std::vector<double>{px, py},
                                   minimpi::ReduceOp::Sum);
      return total;
    };
    const auto p0 = momentum();

    const int peer_leader = machine == 0 ? kRanksPerMachine : 0;
    for (int s = 0; s < kSteps; ++s) {
      // 1. Gather the local galaxy's sources (MPL within the machine).
      std::vector<Body> sources;
      for (const auto& part : local.allgather(pack_bodies(mine))) {
        append_sources(part, sources);
      }
      // 2. Machines exchange snapshots (TCP between partitions).
      if (local.rank() == 0) {
        util::PackBuffer mineall;
        std::vector<Body> galaxy(sources);
        util::Bytes peer = world.sendrecv(pack_bodies(galaxy), peer_leader,
                                          70, peer_leader, 70);
        local.bcast(peer, 0);
        append_sources(peer, sources);
      } else {
        util::Bytes peer;
        local.bcast(peer, 0);
        append_sources(peer, sources);
      }
      // 3. Integrate my bodies against all sources.
      for (Body& b : mine) {
        double ax = 0, ay = 0;
        for (const Body& s2 : sources) {
          const double dx = s2.x - b.x, dy = s2.y - b.y;
          const double r2 = dx * dx + dy * dy + kSoft2;
          const double inv = s2.m / (r2 * std::sqrt(r2));
          ax += dx * inv;
          ay += dy * inv;
        }
        b.vx += kDt * ax;
        b.vy += kDt * ay;
      }
      for (Body& b : mine) {
        b.x += kDt * b.vx;
        b.y += kDt * b.vy;
      }
    }

    const auto p1 = momentum();
    if (world.rank() == 0) {
      std::printf("galaxy collision: %d bodies on 2 machines x %d ranks, %d "
                  "steps\n",
                  2 * kRanksPerMachine * kParticlesPerRank, kRanksPerMachine,
                  kSteps);
      std::printf("momentum (%.6f, %.6f) -> (%.6f, %.6f): drift %.2e\n",
                  p0[0], p0[1], p1[0], p1[1],
                  std::abs(p1[0] - p0[0]) + std::abs(p1[1] - p0[1]));
      std::printf("intra-machine exchanges ran on mpl (%llu msgs at rank 0); "
                  "wide-area snapshots on tcp (%llu msgs)\n",
                  static_cast<unsigned long long>(
                      ctx.method_counters("mpl").sends),
                  static_cast<unsigned long long>(
                      ctx.method_counters("tcp").sends));
    }
  });
  return 0;
}
