// Gateway drain-and-kill scenario (docs/ARCHITECTURE.md §14).
//
// A cluster partition sits behind a forwarding gateway: external TCP
// traffic lands on the gateway, which relays it over the internal MPL
// fabric (paper §3.3).  The gateway needs a kernel upgrade, so operations
// drains it -- drain_forwarding() hands its relay duty to a sibling node --
// and then kills it, modelled here as a FaultPlan crash rule.  Clients keep
// streaming image tiles throughout:
//
//   batch 1  (t ~ 0)     client -> tcp -> gateway -> mpl -> sink
//   batch 2  (t ~ 6 ms)  gateway draining: client -> tcp -> gateway
//                        -> mpl -> sibling -> mpl -> sink
//   batch 3  (t ~ 13 ms) gateway dead: tcp toward its landing host fails
//                        with a Dead verdict, the health tracker
//                        quarantines it, and the link fails over to the
//                        slower direct "secure" backup path -- no tile is
//                        lost.
//
// The client code never mentions the gateway, the sibling, or the backup
// path: every reroute is the runtime's decision (paper §2: "applications
// need to be able to switch among alternative communication substrates in
// the event of error").
#include <cstdio>

#include <atomic>
#include <functional>
#include <vector>

#include "nexus/runtime.hpp"

using namespace nexus;
using simnet::kMs;
using simnet::kUs;

int main() {
  constexpr int kClients = 2;
  constexpr int kBatches = 3;
  constexpr int kTilesPerBatch = 4;
  constexpr int kTotal = kClients * kBatches * kTilesPerBatch;

  RuntimeOptions opts;
  // Partition 0 = {0, 1} clients; partition 1 = {2, 3, 4} cluster with
  // context 2 forwarding, context 3 the drain sibling, context 4 the sink.
  opts.topology = simnet::Topology::two_partitions(2, 3);
  opts.forwarders[1] = 2;
  opts.modules = {"local", "mpl", "tcp", "secure"};
  // "secure" plays the direct backup here (an encrypted hop that bypasses
  // the gateway).  Its speed rank sits behind tcp's, so the table keeps
  // the tcp-via-gateway route first while the gateway lives; the backup
  // only carries traffic once tcp is quarantined.
  // The kill: the gateway goes down hard at 12 ms and stays down past the
  // whole workload.  (A finite window keeps the schedule restartable; the
  // incarnation it would come back with is 2.)
  opts.faults.crash(2, 12 * kMs, 5000 * kMs);
  // Time-windowed crash plans and the phased handshakes below assume the
  // shared single-shard virtual clock (docs/ARCHITECTURE.md §13.4), so the
  // example pins threads even when NEXUS_THREADS is exported.
  opts.threads = 1;

  Runtime rt(opts);
  rt.trace().enable();

  std::atomic<bool> drained{false};
  std::atomic<bool> all_done{false};
  std::atomic<int> tiles{0};
  std::uint32_t gateway_incarnation = 0;

  auto client = [&](Context& ctx) {
    Startpoint sp = ctx.world_startpoint(4);
    auto send_batch = [&](int batch) {
      for (int t = 0; t < kTilesPerBatch; ++t) {
        util::PackBuffer pb(16);
        pb.put_u64(static_cast<std::uint64_t>(ctx.id()) << 32 |
                   static_cast<std::uint64_t>(batch * kTilesPerBatch + t));
        // Failover is the runtime's job; the retry loop only covers the
        // moment every path is briefly quarantined at once.
        for (int attempt = 0; attempt < 20; ++attempt) {
          try {
            ctx.rsr(sp, "tile", pb);
            break;
          } catch (const util::MethodError&) {
            ctx.compute_with_polling(2 * kMs, 200 * kUs);
          }
        }
      }
    };
    send_batch(0);
    while (!drained.load(std::memory_order_acquire) && ctx.now() < 100 * kMs) {
      ctx.compute_with_polling(200 * kUs, 50 * kUs);
    }
    send_batch(1);  // gateway draining: relayed via the sibling
    while (ctx.now() < 13 * kMs) ctx.compute_with_polling(200 * kUs, 50 * kUs);
    send_batch(2);  // gateway dead: fails over to the direct backup path
    while (!all_done.load(std::memory_order_acquire) && ctx.now() < 300 * kMs) {
      ctx.compute_with_polling(1 * kMs, 200 * kUs);
    }
  };

  rt.run(std::vector<std::function<void(Context&)>>{
      client, client,
      [&](Context& ctx) {  // gateway
        while (ctx.now() < 6 * kMs) ctx.compute_with_polling(100 * kUs, 25 * kUs);
        ctx.drain_forwarding(3);  // hand relay duty to the sibling, flush
        std::printf("[gateway] drained toward sibling 3 at %.2f ms\n",
                    static_cast<double>(ctx.now()) / kMs);
        drained.store(true, std::memory_order_release);
        // Keep relaying batch 2 until the kill lands; the crash rule wipes
        // the context and parks it past the end of its window.
        while (ctx.now() < 20 * kMs) ctx.compute_with_polling(500 * kUs, 100 * kUs);
        gateway_incarnation = ctx.incarnation();
        std::printf("[gateway] back at %.2f ms as incarnation %u\n",
                    static_cast<double>(ctx.now()) / kMs, ctx.incarnation());
      },
      [&](Context& ctx) {  // drain sibling: relays whatever lands on it
        while (!all_done.load(std::memory_order_acquire) &&
               ctx.now() < 300 * kMs) {
          ctx.compute_with_polling(200 * kUs, 50 * kUs);
        }
      },
      [&](Context& ctx) {  // sink
        ctx.register_handler("tile",
                             [&](Context&, Endpoint&, util::UnpackBuffer& ub) {
                               (void)ub.get_u64();
                               tiles.fetch_add(1, std::memory_order_release);
                             });
        while (tiles.load(std::memory_order_acquire) < kTotal &&
               ctx.now() < 300 * kMs) {
          ctx.compute_with_polling(1 * kMs, 200 * kUs);
        }
        std::printf("[sink] %d/%d tiles (mpl recvs %llu, secure recvs %llu)\n",
                    tiles.load(), kTotal,
                    static_cast<unsigned long long>(
                        ctx.method_counters("mpl").recvs),
                    static_cast<unsigned long long>(
                        ctx.method_counters("secure").recvs));
        all_done.store(true, std::memory_order_release);
      }});

  const auto forwards = rt.trace().count(simnet::TraceKind::Forward, "mpl");
  std::printf("gateway incarnation %u, %llu mpl forward hops recorded\n",
              gateway_incarnation,
              static_cast<unsigned long long>(forwards));
  if (tiles.load() != kTotal) {
    std::printf("LOST TILES: %d of %d arrived\n", tiles.load(), kTotal);
    return 1;
  }
  std::printf("zero lost tiles across drain and kill\n");
  return 0;
}
