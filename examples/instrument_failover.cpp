// Networked-instrument scenario (paper §1: applications that connect
// scientific instruments to remote computing "need to be able to switch
// among alternative communication substrates in the event of error or high
// load").
//
// A satellite ground station streams image tiles to a compute cluster over
// the fast metropolitan ATM path (aal5).  Mid-stream the ATM service goes
// dark for half a second -- injected here through the runtime's fault
// plane -- and the *runtime* reacts: the failed send quarantines aal5, the
// link fails over to tcp, restore probes ride the exponential backoff, and
// when the outage ends the link is won back by the faster method.  The
// application never edits a descriptor table and never re-selects by hand;
// the program text issuing RSRs is identical to the fault-free version.
//
// The run also demonstrates the observability plane (docs/ARCHITECTURE.md
// §12): span tracing is on, so after the run one stitched Chrome trace
// shows every tile's journey — including the failover retry staying on
// the same trace id — and the metrics exporter leaves a JSONL time series
// with the health-tracker and cost-model state sampled every 100ms.
#include <cstdio>

#include "nexus/runtime.hpp"
#include "nexus/telemetry/export.hpp"

using namespace nexus;

int main() {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::two_partitions(1, 1);  // station | cluster
  opts.modules = {"local", "aal5", "tcp"};

  constexpr int kTiles = 30;
  constexpr Time kFrame = 50 * simnet::kMs;  // instrument frame interval
  constexpr std::size_t kTileBytes = 64 * 1024;

  // The ATM outage: aal5 is a blackhole from 0.5s to 0.98s of virtual time
  // (tiles 10..19 of the 50ms cadence).
  opts.faults.blackhole("aal5", 500 * simnet::kMs, 980 * simnet::kMs);

  // Failover policy: probe the dead path every 100ms, doubling to 400ms.
  // With the outage ending at 0.98s the successful restore probe lands
  // around tile 24, so the tail of the stream runs fast again.
  opts.health.backoff_initial = 100 * simnet::kMs;
  opts.health.backoff_multiplier = 2.0;
  opts.health.backoff_max = 400 * simnet::kMs;

  // Observability: trace every RSR, export metrics every 100ms.  (The
  // flight recorder is on by default; point NEXUS_FLIGHT_DIR at a
  // directory to also get post-mortem dumps on quarantine.)
  opts.tracing = true;
  opts.export_jsonl = "instrument_metrics.jsonl";
  opts.export_interval = 100 * simnet::kMs;

  Runtime rt(opts);

  bool both_methods_used = false;
  std::uint64_t tiles_received = 0;

  rt.run(std::vector<std::function<void(Context&)>>{
      // Context 0: ground station.  Note the loop body: pack, rsr, wait a
      // frame.  No failure handling anywhere -- that is the point.
      [&](Context& ctx) {
        Startpoint cluster = ctx.world_startpoint(1);
        const util::Bytes tile(kTileBytes, 0x11);
        std::string current;
        for (int t = 0; t < kTiles; ++t) {
          util::PackBuffer pb;
          pb.put_i32(t);
          pb.put_bytes(tile);
          ctx.rsr(cluster, "tile", pb);
          if (cluster.selected_method() != current) {
            current = cluster.selected_method();
            std::printf("[station] tile %d goes via %s (t=%.0fms)\n", t,
                        current.c_str(), simnet::to_ms(ctx.now()));
          }
          ctx.compute(kFrame);
        }

        // Enquiry: what happened to aal5, from the runtime's own records.
        const auto h = ctx.method_health("aal5", 1);
        std::printf(
            "[station] aal5 health: %s; %llu failures, %llu failovers, "
            "%llu restores\n",
            method_health_name(h.state),
            static_cast<unsigned long long>(h.failures),
            static_cast<unsigned long long>(h.failovers),
            static_cast<unsigned long long>(h.restores));
        for (const auto& rec : ctx.selection_log()) {
          if (rec.reason.find("failover") != std::string::npos) {
            std::printf("[station] selection log: %s\n", rec.reason.c_str());
          }
        }
        std::printf("%s", ctx.explain_selection(cluster).to_text().c_str());

        const auto& aal5 = ctx.method_counters("aal5");
        const auto& tcp = ctx.method_counters("tcp");
        std::printf("[station] sends: aal5=%llu (+%llu failed) tcp=%llu\n",
                    static_cast<unsigned long long>(aal5.sends -
                                                    aal5.send_errors),
                    static_cast<unsigned long long>(aal5.send_errors),
                    static_cast<unsigned long long>(tcp.sends));
        both_methods_used = aal5.sends > aal5.send_errors && tcp.sends > 0 &&
                            h.failovers > 0 && h.restores > 0;
      },
      // Context 1: compute cluster; processes tiles as they arrive.
      [&](Context& ctx) {
        std::uint64_t tiles = 0;
        Time first = -1, last = -1;
        ctx.register_handler("tile",
                             [&](Context& c, Endpoint&,
                                 util::UnpackBuffer& ub) {
                               const int id = ub.get_i32();
                               (void)id;
                               if (first < 0) first = c.now();
                               last = c.now();
                               ++tiles;
                             });
        ctx.wait_count(tiles, kTiles);
        std::printf("[cluster] %llu/%d tiles in %.1f virtual ms; received "
                    "via aal5=%llu tcp=%llu\n",
                    static_cast<unsigned long long>(tiles), kTiles,
                    simnet::to_ms(last - first),
                    static_cast<unsigned long long>(
                        ctx.method_counters("aal5").recvs),
                    static_cast<unsigned long long>(
                        ctx.method_counters("tcp").recvs));
        tiles_received = tiles;
      }});

  // One causally-linked Chrome trace of the whole stream: open it in
  // about://tracing or ui.perfetto.dev and follow any tile's flow arrow
  // across station -> cluster; the tiles sent into the outage show the
  // quarantine and the tcp retry under the same trace id.
  rt.write_stitched_trace("instrument_trace.json");
  std::printf("[observability] stitched trace -> instrument_trace.json; "
              "%llu metric snapshot(s) -> instrument_metrics.jsonl\n",
              static_cast<unsigned long long>(
                  rt.exporter() ? rt.exporter()->samples_taken() : 0));

  if (tiles_received != kTiles || !both_methods_used) {
    std::fprintf(stderr,
                 "FAILED: %llu/%d tiles, failover%s observed\n",
                 static_cast<unsigned long long>(tiles_received), kTiles,
                 both_methods_used ? "" : " not");
    return 1;
  }
  std::printf("OK: %d/%d tiles survived the outage with automatic "
              "failover and restore\n",
              kTiles, kTiles);
  return 0;
}
