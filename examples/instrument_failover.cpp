// Networked-instrument scenario (paper §1: applications that connect
// scientific instruments to remote computing "need to be able to switch
// among alternative communication substrates in the event of error or high
// load").
//
// A satellite ground station streams image tiles to a compute cluster over
// the fast metropolitan ATM path (aal5).  Mid-stream the ATM service
// degrades; the application reacts by re-selecting the method on the same
// startpoint -- first by re-running automatic selection with the dead
// method deleted from the descriptor table, then by switching back when
// service is restored.  The program text issuing RSRs never changes.
#include <cstdio>

#include "nexus/runtime.hpp"

using namespace nexus;

int main() {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::two_partitions(1, 1);  // station | cluster
  opts.modules = {"local", "aal5", "tcp"};
  Runtime rt(opts);

  constexpr int kTiles = 30;
  constexpr int kFailAt = 10;
  constexpr int kRestoreAt = 20;
  constexpr std::size_t kTileBytes = 64 * 1024;

  rt.run(std::vector<std::function<void(Context&)>>{
      // Context 0: ground station, streams tiles to the cluster.
      [&](Context& ctx) {
        Startpoint cluster = ctx.world_startpoint(1);
        const util::Bytes tile(kTileBytes, 0x11);
        std::string current;
        for (int t = 0; t < kTiles; ++t) {
          if (t == kFailAt) {
            // ATM path reported errors: drop it from this link's table and
            // re-run automatic selection.
            cluster.table().remove("aal5");
            cluster.invalidate_selection();
            std::printf("[station] tile %d: aal5 failed; re-selecting\n", t);
          }
          if (t == kRestoreAt) {
            // Service restored: put the fast descriptor back at the front.
            cluster.table().insert(
                0, CommDescriptor{"aal5", 1,
                                  ctx.runtime().table_of(1)
                                      .at(*ctx.runtime().table_of(1).find(
                                          "aal5"))
                                      .data});
            cluster.invalidate_selection();
            std::printf("[station] tile %d: aal5 restored\n", t);
          }
          util::PackBuffer pb;
          pb.put_i32(t);
          pb.put_bytes(tile);
          ctx.rsr(cluster, "tile", pb);
          if (cluster.selected_method() != current) {
            current = cluster.selected_method();
            std::printf("[station] tile %d goes via %s\n", t,
                        current.c_str());
          }
          ctx.compute(50 * simnet::kMs);  // instrument frame interval
        }
      },
      // Context 1: compute cluster; processes tiles as they arrive.
      [&](Context& ctx) {
        std::uint64_t tiles = 0;
        Time first = -1, last = -1;
        ctx.register_handler("tile",
                             [&](Context& c, Endpoint&,
                                 util::UnpackBuffer& ub) {
                               const int id = ub.get_i32();
                               (void)id;
                               if (first < 0) first = c.now();
                               last = c.now();
                               ++tiles;
                             });
        ctx.wait_count(tiles, kTiles);
        std::printf("[cluster] %llu tiles in %.1f virtual ms; per method: "
                    "aal5=%llu tcp=%llu\n",
                    static_cast<unsigned long long>(tiles),
                    simnet::to_ms(last - first),
                    static_cast<unsigned long long>(
                        ctx.method_counters("aal5").recvs),
                    static_cast<unsigned long long>(
                        ctx.method_counters("tcp").recvs));
      }});
  return 0;
}
