// MPI application on the multimethod runtime: a 1-D heat equation solved
// with minimpi across two partitions.  The application is written purely
// against the MPI-style interface; the runtime transparently uses MPL
// within partitions and TCP between them -- exactly the MPICH-on-Nexus
// arrangement the paper used for the I-WAY (§4).
#include <cmath>
#include <cstdio>
#include <vector>

#include "minimpi/mpi.hpp"
#include "nexus/runtime.hpp"

using namespace nexus;

namespace {
constexpr int kCells = 256;  // global 1-D rod
constexpr int kSteps = 200;
constexpr double kAlpha = 0.4;
}  // namespace

int main() {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::two_partitions(3, 3);  // 6 ranks, 2 hosts
  opts.modules = {"local", "mpl", "tcp"};
  Runtime rt(opts);

  rt.run([&](Context& ctx) {
    minimpi::World mpi(ctx);
    minimpi::Comm& comm = mpi.comm();
    const int rank = comm.rank(), size = comm.size();
    const int local = kCells / size;

    // Local rod segment with one ghost cell on each side; hot spot at the
    // global centre.
    std::vector<double> u(static_cast<std::size_t>(local) + 2, 0.0);
    for (int i = 0; i < local; ++i) {
      const int g = rank * local + i;
      if (g == kCells / 2) u[static_cast<std::size_t>(i) + 1] = 1000.0;
    }

    for (int s = 0; s < kSteps; ++s) {
      // Ghost exchange with neighbours (sendrecv; boundary ranks mirror).
      if (rank > 0) {
        auto got = comm.sendrecv(util::as_bytes(&u[1], 1), rank - 1, 1,
                                 rank - 1, 2);
        std::memcpy(&u[0], got.data(), sizeof(double));
      } else {
        u[0] = u[1];
      }
      if (rank < size - 1) {
        auto got = comm.sendrecv(
            util::as_bytes(&u[static_cast<std::size_t>(local)], 1), rank + 1,
            2, rank + 1, 1);
        std::memcpy(&u[static_cast<std::size_t>(local) + 1], got.data(),
                    sizeof(double));
      } else {
        u[static_cast<std::size_t>(local) + 1] =
            u[static_cast<std::size_t>(local)];
      }
      // Explicit diffusion update.
      std::vector<double> next(u.size());
      for (int i = 1; i <= local; ++i) {
        const auto k = static_cast<std::size_t>(i);
        next[k] = u[k] + kAlpha * (u[k - 1] - 2.0 * u[k] + u[k + 1]);
      }
      std::swap(u, next);
    }

    // Global diagnostics via collectives.
    double local_sum = 0.0, local_max = 0.0;
    for (int i = 1; i <= local; ++i) {
      local_sum += u[static_cast<std::size_t>(i)];
      local_max = std::max(local_max, u[static_cast<std::size_t>(i)]);
    }
    auto total = comm.allreduce(std::vector<double>{local_sum},
                                minimpi::ReduceOp::Sum);
    auto peak = comm.allreduce(std::vector<double>{local_max},
                               minimpi::ReduceOp::Max);
    if (rank == 0) {
      std::printf("heat after %d steps: total=%.3f (conserved: 1000), "
                  "peak=%.3f\n",
                  kSteps, total[0], peak[0]);
    }
    comm.barrier();
    if (rank == 2 || rank == 3) {
      // Ranks 2 and 3 straddle the partition boundary: their ghost
      // exchanges are the TCP traffic.
      std::printf("rank %d: mpl msgs=%llu tcp msgs=%llu (partition "
                  "boundary: %s)\n",
                  rank,
                  static_cast<unsigned long long>(
                      ctx.method_counters("mpl").sends),
                  static_cast<unsigned long long>(
                      ctx.method_counters("tcp").sends),
                  rank == 2 ? "sends right via tcp" : "sends left via tcp");
    }
  });
  return 0;
}
