// Collaborative-environment communication mix (paper §2, "Network
// protocols" bullet): one shared virtual environment where
//
//   * bulky, loss-tolerant state updates go to the whole group over the
//     true-multicast method (one send, N deliveries), and
//   * critical control operations ("lock object", "commit") go point to
//     point over the reliable method, forced by the application.
//
// This demonstrates selecting the method by *what* is communicated, using
// one high-level abstraction (RSRs) for both.
#include <cstdio>

#include "nexus/runtime.hpp"
#include "proto/sim_modules.hpp"

using namespace nexus;

namespace {
constexpr std::uint32_t kSceneGroup = 42;
constexpr int kParticipants = 5;  // context 0 is the presenter
constexpr int kUpdates = 50;
}  // namespace

int main() {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(1 + kParticipants);
  opts.modules = {"local", "mpl", "tcp", "udp", "mcast"};
  Runtime rt(opts);

  std::uint64_t updates_seen[1 + kParticipants] = {0};

  rt.run([&](Context& ctx) {
    if (ctx.id() == 0) {
      // Presenter: wait for everyone to join, then stream.
      std::uint64_t joined = 0;
      ctx.register_handler("joined",
                           [&](Context&, Endpoint&, util::UnpackBuffer&) {
                             ++joined;
                           });
      ctx.wait_count(joined, kParticipants);

      Startpoint scene = proto::multicast_startpoint(ctx, kSceneGroup);
      for (int u = 0; u < kUpdates; ++u) {
        util::PackBuffer state;
        state.put_i32(u);
        state.put_string("pose-matrix-update");
        ctx.rsr(scene, "scene-update", state);
        ctx.compute(20 * simnet::kMs);  // ~50 Hz update loop
      }
      // Critical operation: reliable, point-to-point, forced method.
      for (ContextId peer = 1; peer <= kParticipants; ++peer) {
        Startpoint control = ctx.world_startpoint(peer);
        control.force_method("tcp");
        util::PackBuffer commit;
        commit.put_string("commit-scene");
        ctx.rsr(control, "control", commit);
      }
      std::printf("[presenter] sent %d multicast updates as %llu sends "
                  "(loop-unicast would need %d)\n",
                  kUpdates,
                  static_cast<unsigned long long>(
                      ctx.method_counters("mcast").sends),
                  kUpdates * kParticipants);
      return;
    }

    // Participant: join the scene group, consume updates until commit.
    bool committed = false;
    Endpoint& scene_ep = ctx.create_endpoint();
    ctx.register_handler("scene-update",
                         [&](Context& c, Endpoint&, util::UnpackBuffer&) {
                           ++updates_seen[c.id()];
                         });
    ctx.register_handler("control",
                         [&](Context&, Endpoint&, util::UnpackBuffer& ub) {
                           if (ub.get_string() == "commit-scene") {
                             committed = true;
                           }
                         });
    proto::multicast_join(ctx, kSceneGroup, scene_ep);
    Startpoint presenter = ctx.world_startpoint(0);
    ctx.rsr(presenter, "joined");
    ctx.wait([&] { return committed; });
  });

  for (int p = 1; p <= kParticipants; ++p) {
    std::printf("[participant %d] received %llu scene updates, then the "
                "reliable commit\n",
                p, static_cast<unsigned long long>(updates_seen[p]));
  }
  return 0;
}
