// Quickstart: the core Nexus multimethod vocabulary in one small program.
//
//   * create a runtime with two contexts,
//   * register a handler and create a communication link
//     (startpoint -> endpoint),
//   * issue remote service requests,
//   * inspect what the automatic selector chose (enquiry interface),
//   * run the same code on the realtime (thread) fabric.
//
// Build: cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "nexus/runtime.hpp"

using namespace nexus;

namespace {

void run_on(RuntimeOptions::Fabric fabric) {
  RuntimeOptions opts;
  opts.fabric = fabric;
  opts.topology = simnet::Topology::single_partition(2);
  opts.modules = {"local", "mpl", "tcp"};
  Runtime rt(opts);

  rt.run(std::vector<std::function<void(Context&)>>{
      // Context 0: a tiny key/value service.
      [](Context& ctx) {
        std::uint64_t requests = 0;
        ctx.register_handler(
            "put", [&](Context&, Endpoint&, util::UnpackBuffer& ub) {
              const std::string key = ub.get_string();
              const double value = ub.get_f64();
              std::printf("  [ctx0] put %s = %.2f\n", key.c_str(), value);
              ++requests;
            });
        // Serve three requests, then report what arrived and how.
        ctx.wait_count(requests, 3);
        std::printf("  [ctx0] served %llu RSRs; mpl recv count = %llu\n",
                    static_cast<unsigned long long>(ctx.rsrs_delivered()),
                    static_cast<unsigned long long>(
                        ctx.method_counters("mpl").recvs));
      },
      // Context 1: the client.
      [](Context& ctx) {
        // A bootstrap startpoint to context 0's root endpoint.  Its
        // descriptor table travelled from ctx0 (conceptually), so this
        // context knows every way to reach it.
        Startpoint sp = ctx.world_startpoint(0);
        std::printf("  [ctx1] descriptor table for ctx0:");
        for (const auto& d : sp.table().entries()) {
          std::printf(" %s", d.method.c_str());
        }
        std::printf("\n");

        for (int i = 0; i < 3; ++i) {
          util::PackBuffer args;
          args.put_string("sample/" + std::to_string(i));
          args.put_f64(3.14 * (i + 1));
          ctx.rsr(sp, "put", args);  // asynchronous remote service request
        }
        // Enquiry: which method did the automatic selector pick, and why?
        std::printf("  [ctx1] selected method: %s\n",
                    sp.selected_method().c_str());
        for (const auto& rec : ctx.selection_log()) {
          std::printf("  [ctx1] selection: ctx%u via %s (%s)\n", rec.target,
                      rec.method.c_str(), rec.reason.c_str());
        }
      }});
}

}  // namespace

int main() {
  std::printf("--- simulated fabric (virtual time) ---\n");
  run_on(RuntimeOptions::Fabric::Simulated);
  std::printf("--- realtime fabric (threads) ---\n");
  run_on(RuntimeOptions::Fabric::Realtime);
  std::printf("quickstart done\n");
  return 0;
}
