// Replicated RPC service behind a gateway tier (docs/ARCHITECTURE.md §15).
//
// Partition 0 holds two concurrent clients; partition 1 is a cluster of
// {gateway, replica A, replica B} reached through the gateway's forwarding
// relay (paper §3.3).  Each client issues a stream of deadline-bounded
// lookup calls alternating across the replicas, plus one bulk-described
// ingest call whose 64 KB payload the serving replica pulls in chunks.
//
// Mid-run, replica B is killed by an injected crash and stays down for the
// rest of the workload.  The point of the demo is what does NOT happen: no
// client hangs and no call vanishes.  Calls in flight toward the dead
// replica resolve fast with a typed status (DeadlineExceeded or PeerDied,
// depending on which detector fires first), and the client retries them on
// the surviving replica -- application-level failover layered on the
// runtime's method failover, exactly the multimethod story the paper tells.
//
// Exit status is 0 only if every call resolved to a terminal status and
// every retried call succeeded on the survivor.
#include <cstdio>

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "nexus/runtime.hpp"
#include "proto/rpc/rpc.hpp"

using namespace nexus;
using proto::rpc::BulkHandle;
using proto::rpc::CallContext;
using proto::rpc::CallOptions;
using proto::rpc::CallResult;
using proto::rpc::CallStatus;
using proto::rpc::Client;
using proto::rpc::Server;
using simnet::kMs;
using simnet::kUs;

namespace {

constexpr ContextId kGateway = 2;
constexpr ContextId kReplicaA = 3;
constexpr ContextId kReplicaB = 4;
constexpr int kClients = 2;
constexpr int kCallsPerClient = 6;  // last one carries the bulk payload
constexpr Time kCallDeadline = 15 * kMs;
// The ingest call's 64 KB region is pulled chunk-by-chunk across the
// partition boundary (every chunk relayed by the gateway), so it gets a
// roomier deadline than the eager lookups.
constexpr Time kBulkDeadline = 120 * kMs;

}  // namespace

int main() {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::two_partitions(2, 3);
  opts.forwarders[1] = kGateway;
  opts.modules = {"local", "mpl", "tcp"};
  // Replica B dies hard at 8 ms and stays down past the whole workload.
  opts.faults.crash(kReplicaB, 8 * kMs, 5000 * kMs);
  // Deadline arithmetic and the crash window ride the shared single-shard
  // virtual clock (docs §13.4), so the example pins threads.
  opts.threads = 1;
  Runtime rt(opts);

  std::atomic<int> clients_done{0};
  std::atomic<int> unresolved{0};     // calls that never reached a terminal
  std::atomic<int> retry_failures{0}; // retries that still failed
  std::atomic<int> total_ok{0};
  std::atomic<int> total_retried{0};

  auto client = [&](Context& ctx) {
    Client cl(ctx);
    const BulkHandle bulk =
        cl.register_bulk(util::SharedBytes(util::Bytes(65536, 0xb7)));
    std::map<std::string, int> statuses;

    auto one_call = [&](ContextId replica, int i, bool with_bulk) {
      CallOptions copts;
      copts.timeout = with_bulk ? kBulkDeadline : kCallDeadline;
      util::PackBuffer args(16);
      args.put_u64(static_cast<std::uint64_t>(ctx.id()) << 32 |
                   static_cast<std::uint64_t>(i));
      const auto id = with_bulk
                          ? cl.call_bulk(replica, "ingest", args, bulk, copts)
                          : cl.call(replica, "lookup", args, copts);
      return cl.wait(id);
    };

    for (int i = 0; i < kCallsPerClient; ++i) {
      // Alternate replicas; the final call ships the bulk region.
      const bool with_bulk = i == kCallsPerClient - 1;
      const ContextId first = (i % 2 == 0) ? kReplicaA : kReplicaB;
      CallResult res = one_call(first, i, with_bulk);
      ++statuses[proto::rpc::call_status_name(res.status)];
      if (res.status == CallStatus::Pending) {
        unresolved.fetch_add(1);  // must never happen: wait() is terminal
        continue;
      }
      if (res.status != CallStatus::Ok) {
        // Typed failure: fail over to the surviving replica and try again.
        const ContextId other = first == kReplicaA ? kReplicaB : kReplicaA;
        std::printf("[client %u] call %d to ctx%u -> %s (%s); retrying on ctx%u\n",
                    ctx.id(), i, first,
                    proto::rpc::call_status_name(res.status),
                    res.error.c_str(), other);
        total_retried.fetch_add(1);
        CallResult again = one_call(other, i, with_bulk);
        if (again.status != CallStatus::Ok) {
          // The survivor must answer; two failures means a real outage.
          std::printf("[client %u] retry of call %d also failed: %s\n",
                      ctx.id(), i,
                      proto::rpc::call_status_name(again.status));
          retry_failures.fetch_add(1);
          continue;
        }
        total_ok.fetch_add(1);
        continue;
      }
      total_ok.fetch_add(1);
    }

    std::printf("[client %u] first-attempt statuses:", ctx.id());
    for (const auto& [name, n] : statuses) {
      std::printf(" %s=%d", name.c_str(), n);
    }
    std::printf("\n");
    clients_done.fetch_add(1, std::memory_order_release);
    // Stay alive a little: the survivor may still be pulling the other
    // client's bulk region from us.
    while (clients_done.load(std::memory_order_acquire) < kClients &&
           ctx.now() < 2000 * kMs) {
      ctx.compute_with_polling(500 * kUs, 100 * kUs);
    }
  };

  auto replica = [&](Context& ctx) {
    Server srv(ctx);
    std::uint64_t lookups = 0, ingested = 0;
    srv.serve("lookup", [&](CallContext& cc) {
      auto ub = cc.args();
      util::PackBuffer pb(16);
      pb.put_u64(ub.get_u64() ^ 0xfeedfacecafef00dull);
      cc.respond(pb);
      ++lookups;
    });
    srv.serve("ingest", [&](CallContext& cc) {
      ingested += cc.bulk().size();
      util::PackBuffer pb(8);
      pb.put_u64(cc.bulk().size());
      cc.respond(pb);
    });
    while (clients_done.load(std::memory_order_acquire) < kClients &&
           ctx.now() < 2000 * kMs) {
      if (!ctx.progress()) ctx.compute_with_polling(200 * kUs, 50 * kUs);
      srv.service();
    }
    std::printf("[replica %u] served %llu lookups, ingested %llu bulk bytes"
                " (incarnation %u)\n",
                ctx.id(), static_cast<unsigned long long>(lookups),
                static_cast<unsigned long long>(ingested), ctx.incarnation());
  };

  rt.run(std::vector<std::function<void(Context&)>>{
      client, client,
      [&](Context& ctx) {  // gateway: pure forwarding relay
        while (clients_done.load(std::memory_order_acquire) < kClients &&
               ctx.now() < 2000 * kMs) {
          ctx.compute_with_polling(200 * kUs, 50 * kUs);
        }
      },
      replica, replica});

  const int expected = kClients * kCallsPerClient;
  std::printf("%d/%d calls ok (%d failed over to the survivor), "
              "%d unresolved, %d failed retries\n",
              total_ok.load(), expected, total_retried.load(),
              unresolved.load(), retry_failures.load());
  if (unresolved.load() != 0 || retry_failures.load() != 0 ||
      total_ok.load() != expected) {
    std::printf("FAILURE: calls hung or were lost\n");
    return 1;
  }
  std::printf("no hangs, no lost calls: every failure was typed and retried\n");
  return 0;
}
