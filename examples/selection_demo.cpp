// Figure 3 walk-through: automatic method selection as a startpoint
// migrates between nodes.
//
// Three contexts: 0 is a workstation on its own (partition 1); 1 and 2 are
// nodes of an SP2 partition (partition 0), so they can talk MPL to each
// other but cross the partition boundary only over wide-area methods.
// Context 2 creates an endpoint and hands the startpoint to context 0;
// selection there picks rel+udp -- the reliability wrapper passes the
// reliable() gate at udp's speed rank, so it beats tcp without any
// application-side protocol code (the paper's "protocols are just more
// methods").  Context 0 then migrates the startpoint to context 1, where
// re-selection picks MPL.  The demo then shows the manual controls (table
// editing and forced methods) and closes with the adaptive engine
// (docs/ARCHITECTURE.md §11): the payload-aware selector learns the
// fabric's real costs from timing echoes and probes, splits traffic at the
// measured latency/bandwidth crossover, and the live reranker rewrites a
// table into measured-fastest-first order for the static policies.
//
// Along the way each decision is explained with the structured enquiry
// (Context::explain_selection), which reports every descriptor considered,
// why the losers lost, and which method won -- without sending anything.
#include <cstdio>
#include <memory>

#include "nexus/adapt/adaptive_selector.hpp"
#include "nexus/runtime.hpp"

using namespace nexus;

namespace {
constexpr int kSyncPings = 1;         // clock-sync throwaway round trip
constexpr int kCalibrationPings = 4;  // small+large forced over mpl and tcp
constexpr int kOrganicPings = 8;      // mixed sizes, selector's own choice
constexpr int kTotalPings =
    kSyncPings + kCalibrationPings + kOrganicPings + 2;
}  // namespace

int main() {
  RuntimeOptions opts;
  // contexts 1, 2 share the SP partition; context 0 is the outside node.
  opts.topology = simnet::Topology(std::vector<int>{1, 0, 0});
  opts.modules = {"local", "mpl", "rel+udp", "tcp"};
  // The adaptive act wants a fabric where no static order can win: tcp is
  // quick to start but thin (150 us, 8 MB/s), mpl has expensive setup but
  // a fat pipe (2.5 ms, 200 MB/s).  Static speed ranks -- and therefore
  // the earlier acts -- are unaffected; only measured costs change.
  opts.costs.tcp_latency = 150 * simnet::kUs;
  opts.costs.tcp_poll_cost = 20 * simnet::kUs;
  opts.costs.tcp_interference = 0;
  opts.costs.tcp_mb_s = 8.0;
  opts.costs.mpl_latency = 2500 * simnet::kUs;
  opts.costs.mpl_mb_s = 200.0;
  opts.adaptive = true;  // receivers measure one-way times + echo them back
  Runtime rt(opts);

  rt.run(std::vector<std::function<void(Context&)>>{
      // Context 0: the workstation.  Receives the startpoint, uses it via
      // the wide-area methods, then migrates it to node 1.
      [](Context& ctx) {
        std::uint64_t done = 0;
        ctx.register_handler(
            "take", [&](Context& c, Endpoint&, util::UnpackBuffer& ub) {
              Startpoint sp = c.unpack_startpoint(ub);
              std::printf("[ctx0] received startpoint to ctx%u; table:",
                          sp.link(0).context);
              for (const auto& d : sp.table().entries()) {
                std::printf(" %s", d.method.c_str());
              }
              std::printf("\n");
              // Ask the runtime to explain what selection *would* do here
              // before actually using the startpoint.
              std::printf("%s", c.explain_selection(sp).to_text().c_str());
              c.rsr(sp, "poke");  // automatic selection runs here
              // The explanation above renders the winner's wrapper stack:
              //   1. rel+udp  <- selected ... [wraps udp]
              std::printf("[ctx0] selected: %s (expected rel+udp: different "
                          "partition; the reliable wrapper runs at udp's "
                          "rank and beats tcp)\n",
                          sp.selected_method().c_str());
              // Migrate the startpoint onward to node 1.
              util::PackBuffer pb;
              c.pack_startpoint(pb, sp);
              Startpoint to1 = c.world_startpoint(1);
              c.rsr(to1, "take", pb);
              ++done;
            });
        ctx.wait_count(done, 1);
      },
      // Context 1: SP node.  Receives the migrated startpoint; selection
      // now finds MPL applicable.  Then the manual and adaptive acts.
      [](Context& ctx) {
        std::uint64_t done = 0;
        ctx.register_handler(
            "take", [&](Context& c, Endpoint&, util::UnpackBuffer& ub) {
              Startpoint sp = c.unpack_startpoint(ub);
              std::printf("%s", c.explain_selection(sp).to_text().c_str());
              c.rsr(sp, "poke");
              std::printf("[ctx1] selected: %s (expected mpl: same "
                          "partition as ctx2)\n",
                          sp.selected_method().c_str());

              // Manual control 1: delete the fast entry -> falls to the
              // next reliable method, the rel+udp wrapper.
              Startpoint edited = sp;
              edited.table().remove("mpl");
              edited.invalidate_selection();
              c.rsr(edited, "poke");
              std::printf("[ctx1] after removing mpl: %s\n",
                          edited.selected_method().c_str());

              // Manual control 2: force a method outright.
              Startpoint forced = sp;
              forced.force_method("tcp");
              std::printf("%s", c.explain_selection(forced).to_text().c_str());
              c.rsr(forced, "poke");
              std::printf("[ctx1] forced: %s\n",
                          forced.selected_method().c_str());
              ++done;
            });
        ctx.wait_count(done, 1);

        // --- The adaptive act: selection by measured cost (§11). ---
        std::printf("[ctx1] installing the adaptive selector\n");
        ctx.set_selector(std::make_unique<adapt::AdaptiveSelector>());
        std::uint64_t pongs = 0;
        ctx.register_handler("pong",
                             [&](Context&, Endpoint&, util::UnpackBuffer&) {
                               ++pongs;
                             });
        Startpoint to2 = ctx.world_startpoint(2);
        const util::Bytes small_b(64, 0x11);
        const util::Bytes large_b(1 << 16, 0x22);
        // Calibration lap: one small + one large RSR forced over each
        // contender.  The receiver measures each ping's one-way time and
        // echoes it back on the pong, seeding the model with real costs --
        // small transfers teach latency, and large ones teach bandwidth
        // once a latency estimate exists, so the order matters.
        std::printf("[ctx1] calibration lap: forced small+large pings over "
                    "mpl and tcp seed the cost model via timing echoes\n");
        std::uint64_t sent = 0;
        // The earlier acts left the two virtual clocks skewed (one-way
        // times are cross-clock differences), and the first sample after a
        // quiet period absorbs that skew.  Spend it on a throwaway round
        // trip over a non-contender so the contenders' models stay clean.
        Startpoint sync = ctx.world_startpoint(2);
        sync.force_method("rel+udp");
        ctx.rsr(sync, "ping", util::SharedBytes::copy_of(small_b));
        ctx.wait_count(pongs, ++sent);
        for (const char* m : {"mpl", "tcp"}) {
          Startpoint cal = ctx.world_startpoint(2);
          cal.force_method(m);
          ctx.rsr(cal, "ping", util::SharedBytes::copy_of(small_b));
          ctx.wait_count(pongs, ++sent);
          ctx.rsr(cal, "ping", util::SharedBytes::copy_of(large_b));
          ctx.wait_count(pongs, ++sent);
        }
        // Now let the selector route mixed-size traffic on its own; the
        // echoes riding these pongs keep refining the estimates.
        for (int i = 0; i < kOrganicPings; ++i) {
          ctx.rsr(to2, "ping",
                  util::SharedBytes::copy_of(i % 2 ? large_b : small_b));
          ctx.wait_count(pongs, ++sent);
        }
        // The enquiry now carries a model row per candidate (latency,
        // bandwidth, confidence, dwell state) and the reason names the
        // crossover the selector computed from them.
        std::printf("%s", ctx.explain_selection(to2).to_text().c_str());
        ctx.rsr(to2, "ping", util::SharedBytes::copy_of(small_b));
        ctx.wait_count(pongs, ++sent);
        std::printf("[ctx1] 64B ping went via %s (expected tcp: lowest "
                    "measured latency)\n",
                    to2.selected_method().c_str());
        ctx.rsr(to2, "ping", util::SharedBytes::copy_of(large_b));
        ctx.wait_count(pongs, ++sent);
        std::printf("[ctx1] 64KB ping went via %s (expected mpl: highest "
                    "measured bandwidth)\n",
                    to2.selected_method().c_str());

        // Live reranking: the same measurements rewrite a fresh table into
        // measured-fastest-first order, so even the size-blind
        // FirstApplicable policy benefits.  Unmodeled entries sink to the
        // back without reshuffling among themselves.
        Startpoint fresh = ctx.world_startpoint(2);
        std::printf("[ctx1] static table order: ");
        for (const auto& d : fresh.table().entries()) {
          std::printf(" %s", d.method.c_str());
        }
        ctx.rerank(fresh);
        std::printf("\n[ctx1] after rerank:       ");
        for (const auto& d : fresh.table().entries()) {
          std::printf(" %s", d.method.c_str());
        }
        std::printf("  (modeled cost order at the rerank reference size)\n");
      },
      // Context 2: owns the endpoint; starts the chain, then answers the
      // adaptive act's pings (the pong replies carry the timing echoes
      // that feed ctx1's cost model).
      [](Context& ctx) {
        std::uint64_t pokes = 0;
        std::uint64_t pings = 0;
        Endpoint& ep = ctx.create_endpoint();
        ctx.register_handler("poke",
                             [&](Context&, Endpoint&, util::UnpackBuffer&) {
                               ++pokes;
                             });
        Startpoint back = ctx.world_startpoint(1);
        ctx.register_handler("ping",
                             [&](Context& c, Endpoint&, util::UnpackBuffer&) {
                               ++pings;
                               c.rsr(back, "pong");
                             });
        Startpoint sp = ctx.startpoint_to(ep);
        util::PackBuffer pb;
        ctx.pack_startpoint(pb, sp);
        Startpoint to0 = ctx.world_startpoint(0);
        ctx.rsr(to0, "take", pb);
        ctx.wait([&] {
          return pokes >= 4 && pings >= static_cast<std::uint64_t>(kTotalPings);
        });  // 1 poke from ctx0 + 3 from ctx1, then the adaptive pings
        std::printf("[ctx2] endpoint received %llu RSRs over: mpl=%llu "
                    "rel+udp=%llu tcp=%llu\n",
                    static_cast<unsigned long long>(pokes),
                    static_cast<unsigned long long>(
                        ctx.method_counters("mpl").recvs),
                    static_cast<unsigned long long>(
                        ctx.method_counters("rel+udp").recvs),
                    static_cast<unsigned long long>(
                        ctx.method_counters("tcp").recvs));
      }});
  return 0;
}
