// Figure 3 walk-through: automatic method selection as a startpoint
// migrates between nodes.
//
// Three contexts: 0 is a workstation on its own (partition 1); 1 and 2 are
// nodes of an SP2 partition (partition 0), so they can talk MPL to each
// other but cross the partition boundary only over wide-area methods.
// Context 2 creates an endpoint and hands the startpoint to context 0;
// selection there picks rel+udp -- the reliability wrapper passes the
// reliable() gate at udp's speed rank, so it beats tcp without any
// application-side protocol code (the paper's "protocols are just more
// methods").  Context 0 then migrates the startpoint to context 1, where
// re-selection picks MPL.  Finally the demo shows the manual controls:
// table editing and forced methods.
//
// Along the way each decision is explained with the structured enquiry
// (Context::explain_selection), which reports every descriptor considered,
// why the losers lost, and which method won -- without sending anything.
#include <cstdio>

#include "nexus/runtime.hpp"

using namespace nexus;

int main() {
  RuntimeOptions opts;
  // contexts 1, 2 share the SP partition; context 0 is the outside node.
  opts.topology = simnet::Topology(std::vector<int>{1, 0, 0});
  opts.modules = {"local", "mpl", "rel+udp", "tcp"};
  Runtime rt(opts);

  rt.run(std::vector<std::function<void(Context&)>>{
      // Context 0: the workstation.  Receives the startpoint, uses it via
      // TCP, then migrates it to node 1.
      [](Context& ctx) {
        std::uint64_t done = 0;
        ctx.register_handler(
            "take", [&](Context& c, Endpoint&, util::UnpackBuffer& ub) {
              Startpoint sp = c.unpack_startpoint(ub);
              std::printf("[ctx0] received startpoint to ctx%u; table:",
                          sp.link(0).context);
              for (const auto& d : sp.table().entries()) {
                std::printf(" %s", d.method.c_str());
              }
              std::printf("\n");
              // Ask the runtime to explain what selection *would* do here
              // before actually using the startpoint.
              std::printf("%s", c.explain_selection(sp).to_text().c_str());
              c.rsr(sp, "poke");  // automatic selection runs here
              // The explanation above renders the winner's wrapper stack:
              //   1. rel+udp  <- selected ... [wraps udp]
              std::printf("[ctx0] selected: %s (expected rel+udp: different "
                          "partition; the reliable wrapper runs at udp's "
                          "rank and beats tcp)\n",
                          sp.selected_method().c_str());
              // Migrate the startpoint onward to node 1.
              util::PackBuffer pb;
              c.pack_startpoint(pb, sp);
              Startpoint to1 = c.world_startpoint(1);
              c.rsr(to1, "take", pb);
              ++done;
            });
        ctx.wait_count(done, 1);
      },
      // Context 1: SP node.  Receives the migrated startpoint; selection
      // now finds MPL applicable.
      [](Context& ctx) {
        std::uint64_t done = 0;
        ctx.register_handler(
            "take", [&](Context& c, Endpoint&, util::UnpackBuffer& ub) {
              Startpoint sp = c.unpack_startpoint(ub);
              std::printf("%s", c.explain_selection(sp).to_text().c_str());
              c.rsr(sp, "poke");
              std::printf("[ctx1] selected: %s (expected mpl: same "
                          "partition as ctx2)\n",
                          sp.selected_method().c_str());

              // Manual control 1: delete the fast entry -> falls to the
              // next reliable method, the rel+udp wrapper.
              Startpoint edited = sp;
              edited.table().remove("mpl");
              edited.invalidate_selection();
              c.rsr(edited, "poke");
              std::printf("[ctx1] after removing mpl: %s\n",
                          edited.selected_method().c_str());

              // Manual control 2: force a method outright.
              Startpoint forced = sp;
              forced.force_method("tcp");
              std::printf("%s", c.explain_selection(forced).to_text().c_str());
              c.rsr(forced, "poke");
              std::printf("[ctx1] forced: %s\n",
                          forced.selected_method().c_str());
              ++done;
            });
        ctx.wait_count(done, 1);
      },
      // Context 2: owns the endpoint; starts the chain.
      [](Context& ctx) {
        std::uint64_t pokes = 0;
        Endpoint& ep = ctx.create_endpoint();
        ctx.register_handler("poke",
                             [&](Context&, Endpoint&, util::UnpackBuffer&) {
                               ++pokes;
                             });
        Startpoint sp = ctx.startpoint_to(ep);
        util::PackBuffer pb;
        ctx.pack_startpoint(pb, sp);
        Startpoint to0 = ctx.world_startpoint(0);
        ctx.rsr(to0, "take", pb);
        ctx.wait_count(pokes, 4);  // 1 from ctx0 + 3 from ctx1
        std::printf("[ctx2] endpoint received %llu RSRs over: mpl=%llu "
                    "rel+udp=%llu tcp=%llu\n",
                    static_cast<unsigned long long>(pokes),
                    static_cast<unsigned long long>(
                        ctx.method_counters("mpl").recvs),
                    static_cast<unsigned long long>(
                        ctx.method_counters("rel+udp").recvs),
                    static_cast<unsigned long long>(
                        ctx.method_counters("tcp").recvs));
      }});
  return 0;
}
