#include "climate/coupled.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace climate {

using minimpi::Comm;
using minimpi::World;
using nexus::Context;
using nexus::ContextId;
using nexus::Runtime;
using nexus::RuntimeOptions;
using nexus::util::Bytes;
using nexus::util::PackBuffer;
using nexus::util::UnpackBuffer;

namespace {
constexpr int kCouplingTag = 501;

Bytes pack_profile(const std::vector<double>& p) {
  PackBuffer pb(p.size() * 8 + 4);
  pb.put_f64_vector(p);
  return pb.take();
}

std::vector<double> unpack_profile(const Bytes& raw) {
  UnpackBuffer ub(raw);
  return ub.get_f64_vector();
}
}  // namespace

std::string policy_name(Policy p) {
  switch (p) {
    case Policy::SelectiveTcp: return "Selective TCP";
    case Policy::Forwarding: return "Forwarding";
    case Policy::SkipPoll: return "skip poll";
    case Policy::AllTcp: return "All TCP (no multimethod)";
    case Policy::ForwardingDedicated: return "Forwarding (dedicated)";
  }
  return "?";
}

CoupledConfig::CoupledConfig() {
  // Calibration notes (see EXPERIMENTS.md): step compute is chosen so the
  // best case lands near the paper's 104.9 s/step; 38000 unified polls per
  // step make the skip_poll=1 penalty match the paper's +4.2 s/step at the
  // stated 110 us select cost.
  atmosphere.nx = 96;
  atmosphere.ny = 64;
  atmosphere.step_compute = 103 * simnet::kSec;
  atmosphere.polls_per_step = 38'000;
  atmosphere.transpose_phases = 8;
  atmosphere.transpose_bytes = 40'000;

  ocean.nx = 64;
  ocean.ny = 32;
  ocean.step_compute = 92 * simnet::kSec;
  ocean.polls_per_step = 38'000;
  ocean.transpose_phases = 2;
  ocean.transpose_bytes = 24'000;
}

CoupledResult run_coupled(const CoupledConfig& cfg, Policy policy,
                          std::uint64_t skip) {
  // The dedicated-forwarder ablation adds one non-compute context at the
  // end of each partition; everything else uses exactly atmo+ocean ranks.
  const bool dedicated = policy == Policy::ForwardingDedicated;
  const int extra = dedicated ? 1 : 0;
  const auto p0_fwd = static_cast<ContextId>(cfg.atmo_ranks);  // if dedicated
  const auto p1_fwd =
      static_cast<ContextId>(cfg.atmo_ranks + extra + cfg.ocean_ranks);

  RuntimeOptions opts;
  opts.topology = simnet::Topology::two_partitions(
      static_cast<std::size_t>(cfg.atmo_ranks + extra),
      static_cast<std::size_t>(cfg.ocean_ranks + extra));
  opts.modules = policy == Policy::AllTcp
                     ? std::vector<std::string>{"local", "tcp"}
                     : std::vector<std::string>{"local", "mpl", "tcp"};
  if (policy == Policy::Forwarding) {
    if (cfg.atmo_ranks < 2 || cfg.ocean_ranks < 2) {
      throw nexus::util::UsageError(
          "forwarding policy needs at least two ranks per partition");
    }
    // The forwarders are compute ranks distinct from the coupling leaders,
    // so forwarded traffic pays the extra hop the paper describes -- and
    // the forwarding nodes still run model work, as the paper's fixed
    // 24-processor budget forced.
    opts.forwarders[0] = 1;
    opts.forwarders[1] = static_cast<ContextId>(cfg.atmo_ranks) + 1;
  } else if (dedicated) {
    opts.forwarders[0] = p0_fwd;
    opts.forwarders[1] = p1_fwd;
  }
  if (cfg.tcp_poll_cost_override > 0) {
    opts.costs.tcp_poll_cost = cfg.tcp_poll_cost_override;
  }
  // Seconds-scale run: a bounded conservatism relaxation keeps the
  // discrete-event scheduler from thrashing on 12k compute chunks per step.
  opts.sim_slack = 40 * simnet::kMs;

  Runtime rt(opts);
  CoupledResult res;
  res.policy = policy;
  res.skip = skip;
  res.couplings = 0;

  const auto atmo_ranks = cfg.atmo_ranks;
  const ContextId ocean_leader_ctx =
      static_cast<ContextId>(atmo_ranks + extra);

  rt.run([&](Context& ctx) {
    World mpi(ctx);
    const bool is_forwarder =
        dedicated && (ctx.id() == p0_fwd || ctx.id() == p1_fwd);
    const bool is_atmo =
        !is_forwarder && static_cast<int>(ctx.id()) < atmo_ranks;
    // Colors: 0 = atmosphere, 1 = ocean, 2 = dedicated forwarders.  The
    // split is collective over the whole world, so forwarders join too.
    const int color = is_forwarder ? 2 : (is_atmo ? 0 : 1);
    Comm model = mpi.comm().split(color, static_cast<int>(mpi.rank()));
    if (is_forwarder) {
      // Pure forwarding service: the polling engine's dispatch path does
      // the actual forwarding; this loop only keeps the context polling
      // until the computation tells it to shut down.
      std::uint64_t shutdown = 0;
      ctx.register_handler(
          "fwd_shutdown",
          [&](Context&, nexus::Endpoint&, nexus::util::UnpackBuffer&) {
            ++shutdown;
          });
      ctx.wait_count(shutdown, 1);
      return;
    }
    const bool leader = model.rank() == 0;
    const int peer_leader =
        is_atmo ? static_cast<int>(ocean_leader_ctx) : 0;

    // --- apply the multimethod policy ---
    const bool selective = policy == Policy::SelectiveTcp;
    switch (policy) {
      case Policy::SelectiveTcp:
        // TCP polling only inside the coupling section (and only leaders
        // ever enter that section).
        ctx.set_poll_enabled("tcp", false);
        break;
      case Policy::SkipPoll:
        ctx.set_skip_poll("tcp", skip);
        break;
      case Policy::Forwarding:
      case Policy::ForwardingDedicated:
        // The runtime already restricted TCP polling to the forwarders.
        break;
      case Policy::AllTcp:
        break;
    }

    BandModel m(ctx, model, is_atmo ? cfg.atmosphere : cfg.ocean, is_atmo);

    const double heat0 = m.global_sum();
    if (leader) {
      (is_atmo ? res.atmo_heat_start : res.ocean_heat_start) = heat0;
    }

    // Exchange of coupling products through the model leaders, with the
    // profile regridded to the receiving model's latitude count.
    auto couple = [&] {
      std::vector<double> mine = m.global_zonal_profile();
      Bytes peer_wire;
      if (leader) {
        if (selective) ctx.set_poll_enabled("tcp", true);
        peer_wire = mpi.comm().sendrecv(pack_profile(mine), peer_leader,
                                        kCouplingTag, peer_leader,
                                        kCouplingTag);
        if (selective) ctx.set_poll_enabled("tcp", false);
      }
      model.bcast(peer_wire, 0);
      m.set_coupled_profile(unpack_profile(peer_wire));
      if (is_atmo && leader) ++res.couplings;
    };

    model.barrier();
    const nexus::Time t0 = ctx.now();
    if (is_atmo && leader) res.step_seconds.reserve(cfg.timesteps);

    nexus::Time prev = t0;
    for (int s = 0; s < cfg.timesteps; ++s) {
      m.step();
      if ((s + 1) % cfg.couple_every == 0) couple();
      if (is_atmo && leader) {
        res.step_seconds.push_back(simnet::to_sec(ctx.now() - prev));
        prev = ctx.now();
      }
    }

    const double heat1 = m.global_sum();
    if (leader) {
      (is_atmo ? res.atmo_heat_end : res.ocean_heat_end) = heat1;
    }
    if (is_atmo && leader) {
      res.total_seconds = simnet::to_sec(ctx.now() - t0);
      res.seconds_per_step = res.total_seconds / cfg.timesteps;
      if (dedicated) {
        // All cross-partition traffic is done; release the forwarders.
        nexus::Startpoint f0 = ctx.world_startpoint(p0_fwd);
        nexus::Startpoint f1 = ctx.world_startpoint(p1_fwd);
        ctx.rsr(f0, "fwd_shutdown");
        ctx.rsr(f1, "fwd_shutdown");
      }
    }
  });

  for (ContextId id = 0; id < rt.world_size(); ++id) {
    const Context& c = rt.context(id);
    if (c.module("tcp") != nullptr) {
      res.tcp_polls += c.method_counters("tcp").polls;
      res.tcp_sends += c.method_counters("tcp").sends;
    }
    if (c.module("mpl") != nullptr) {
      res.mpl_sends += c.method_counters("mpl").sends;
    }
  }
  return res;
}

}  // namespace climate
