// Coupled-run driver: reproduces the Table 1 experiment configurations.
//
// 24 contexts in two SP-style partitions (16 atmosphere + 8 ocean).  The
// driver applies one of the paper's multimethod policies, runs the coupled
// model for a number of timesteps, and reports virtual seconds per timestep
// plus diagnostics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "climate/model.hpp"
#include "nexus/runtime.hpp"

namespace climate {

enum class Policy {
  SelectiveTcp,  ///< TCP polled only inside the coupling section (row 1)
  Forwarding,    ///< forwarding node embedded in a compute rank (row 2; the
                 ///< paper's 24-processor budget had no spare node)
  SkipPoll,      ///< global tcp skip_poll value (rows 3-7)
  AllTcp,        ///< no multimethod support: everything over TCP (§4 text)
  ForwardingDedicated,  ///< ablation: one extra, dedicated forwarding
                        ///< context per partition (§3.3's "dedicated
                        ///< forwarding processor")
};

std::string policy_name(Policy p);

struct CoupledConfig {
  ModelConfig atmosphere;  ///< defaults sized for 16 ranks
  ModelConfig ocean;       ///< defaults sized for 8 ranks
  int atmo_ranks = 16;
  int ocean_ranks = 8;
  int timesteps = 6;       ///< atmosphere steps to run
  int couple_every = 2;    ///< atmosphere steps between coupling exchanges
  /// Ablation hook: override the simulated TCP select cost (0 = default).
  nexus::Time tcp_poll_cost_override = 0;

  CoupledConfig();
};

struct CoupledResult {
  Policy policy = Policy::SelectiveTcp;
  std::uint64_t skip = 1;
  double seconds_per_step = 0.0;  ///< virtual seconds, wall per atmo step
  double total_seconds = 0.0;
  std::vector<double> step_seconds;    ///< atmosphere leader per-step times
  double atmo_heat_start = 0.0, atmo_heat_end = 0.0;
  double ocean_heat_start = 0.0, ocean_heat_end = 0.0;
  std::uint64_t tcp_polls = 0;   ///< summed over all contexts
  std::uint64_t tcp_sends = 0;
  std::uint64_t mpl_sends = 0;
  int couplings = 0;
};

/// Run one Table-1 configuration.  `skip` only applies to Policy::SkipPoll.
CoupledResult run_coupled(const CoupledConfig& cfg, Policy policy,
                          std::uint64_t skip = 1);

}  // namespace climate
