#include "climate/grid.hpp"

#include <stdexcept>

namespace climate {

std::vector<double> regrid_profile(std::span<const double> src, int n_dst) {
  if (src.empty() || n_dst <= 0) {
    throw std::invalid_argument("regrid_profile: empty input");
  }
  const int n_src = static_cast<int>(src.size());
  std::vector<double> dst(static_cast<std::size_t>(n_dst));
  if (n_src == 1) {
    for (auto& v : dst) v = src[0];
    return dst;
  }
  for (int k = 0; k < n_dst; ++k) {
    // Cell-centre coordinates in [0, 1].
    const double x = (k + 0.5) / n_dst;
    const double pos = x * n_src - 0.5;
    int i0 = static_cast<int>(pos);
    if (pos < 0) i0 = 0;
    const int i1 = std::min(i0 + 1, n_src - 1);
    const double frac = std::min(1.0, std::max(0.0, pos - i0));
    dst[static_cast<std::size_t>(k)] =
        src[static_cast<std::size_t>(i0)] * (1.0 - frac) +
        src[static_cast<std::size_t>(i1)] * frac;
  }
  return dst;
}

}  // namespace climate
