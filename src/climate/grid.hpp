// Banded 2-D fields for latitude-decomposed climate models.
//
// A global nx (longitude) by ny (latitude) field is split into contiguous
// latitude bands, one per rank, each padded with one halo row above and
// below.  Longitude is periodic; latitude boundaries are closed (no-flux,
// mirrored halos), which keeps explicit diffusion/advection conservative --
// the conservation tests rely on this.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace climate {

/// Rows owned by rank r of n when splitting ny rows as evenly as possible.
inline int rows_of(int ny, int nranks, int r) {
  return ny / nranks + (r < ny % nranks ? 1 : 0);
}

/// First global row owned by rank r.
inline int row0_of(int ny, int nranks, int r) {
  const int base = ny / nranks, extra = ny % nranks;
  return r * base + (r < extra ? r : extra);
}

class BandField {
 public:
  BandField(int nx, int row0, int rows)
      : nx_(nx), row0_(row0), rows_(rows),
        data_(static_cast<std::size_t>(rows + 2) * nx, 0.0) {
    assert(nx > 0 && rows > 0);
  }

  int nx() const noexcept { return nx_; }
  int rows() const noexcept { return rows_; }
  int row0() const noexcept { return row0_; }

  /// i in [-1, rows] (halo rows at -1 and rows), j in [0, nx).
  double& at(int i, int j) {
    assert(i >= -1 && i <= rows_ && j >= 0 && j < nx_);
    return data_[static_cast<std::size_t>(i + 1) * nx_ + j];
  }
  double at(int i, int j) const {
    assert(i >= -1 && i <= rows_ && j >= 0 && j < nx_);
    return data_[static_cast<std::size_t>(i + 1) * nx_ + j];
  }

  /// Periodic access in longitude.
  double wrap(int i, int j) const {
    j = ((j % nx_) + nx_) % nx_;
    return at(i, j);
  }

  std::span<double> row(int i) {
    return std::span<double>(&at(i, 0), static_cast<std::size_t>(nx_));
  }
  std::span<const double> row(int i) const {
    assert(i >= -1 && i <= rows_);
    return std::span<const double>(
        data_.data() + static_cast<std::size_t>(i + 1) * nx_,
        static_cast<std::size_t>(nx_));
  }

  /// Sum over owned (non-halo) cells.
  double interior_sum() const {
    double s = 0.0;
    for (int i = 0; i < rows_; ++i) {
      for (int j = 0; j < nx_; ++j) s += at(i, j);
    }
    return s;
  }

  /// Zonal (row) means of the owned rows.
  std::vector<double> zonal_means() const {
    std::vector<double> out(static_cast<std::size_t>(rows_));
    for (int i = 0; i < rows_; ++i) {
      double s = 0.0;
      for (int j = 0; j < nx_; ++j) s += at(i, j);
      out[static_cast<std::size_t>(i)] = s / nx_;
    }
    return out;
  }

 private:
  int nx_, row0_, rows_;
  std::vector<double> data_;
};

/// Linear interpolation of a 1-D latitude profile onto a different
/// resolution (the coupler's regridding between atmosphere and ocean).
std::vector<double> regrid_profile(std::span<const double> src, int n_dst);

}  // namespace climate
