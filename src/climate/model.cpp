#include "climate/model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace climate {

using nexus::util::Bytes;
using nexus::util::PackBuffer;
using nexus::util::UnpackBuffer;

namespace {
constexpr int kHaloUpTag = 101;
constexpr int kHaloDownTag = 102;
constexpr int kTransposeTag = 103;

Bytes pack_row(std::span<const double> row) {
  PackBuffer pb(row.size() * 8 + 4);
  pb.put_f64_vector(row);
  return pb.take();
}

void unpack_row(std::span<const nexus::util::Byte> raw,
                std::span<double> row) {
  UnpackBuffer ub(raw);
  ub.get_f64_vector_into(row);
}
}  // namespace

void initialize_temperature(BandField& f, int ny_global) {
  for (int i = 0; i < f.rows(); ++i) {
    const double lat =
        (f.row0() + i + 0.5) / ny_global - 0.5;  // [-0.5, 0.5]
    for (int j = 0; j < f.nx(); ++j) {
      const double lon = (j + 0.5) / f.nx();
      f.at(i, j) = 280.0 + 30.0 * std::exp(-18.0 * lat * lat) +
                   2.0 * std::sin(2.0 * M_PI * 3.0 * lon);
    }
  }
}

BandModel::BandModel(nexus::Context& ctx, minimpi::Comm comm, ModelConfig cfg,
                     bool zonal_jet)
    : ctx_(&ctx),
      comm_(std::move(comm)),
      cfg_(cfg),
      field_(cfg.nx, row0_of(cfg.ny, comm_.size(), comm_.rank()),
             rows_of(cfg.ny, comm_.size(), comm_.rank())),
      scratch_(field_) {
  if (cfg_.ny < comm_.size()) {
    throw nexus::util::UsageError(
        "climate model needs at least one latitude row per rank");
  }
  wind_.resize(static_cast<std::size_t>(field_.rows()), 0.0);
  coupled_profile_.assign(static_cast<std::size_t>(field_.rows()), 0.0);
  for (int i = 0; i < field_.rows(); ++i) {
    const double lat = (field_.row0() + i + 0.5) / cfg_.ny - 0.5;
    wind_[static_cast<std::size_t>(i)] =
        zonal_jet ? cfg_.u0 * std::cos(M_PI * lat) : 0.25 * cfg_.u0;
  }
  initialize_temperature(field_, cfg_.ny);
  // Until the first coupling arrives, relax toward the field's own zonal
  // structure (no net forcing).
  auto means = field_.zonal_means();
  coupled_profile_ = means;
}

void BandModel::halo_exchange() {
  const int up = comm_.rank() - 1;    // toward row 0
  const int down = comm_.rank() + 1;  // toward row ny-1
  const bool has_up = up >= 0;
  const bool has_down = down < comm_.size();

  // Exchange with the upper neighbour: send my first row, receive into my
  // upper halo; symmetric for the lower neighbour.  sendrecv avoids
  // ordering deadlocks.
  if (has_up) {
    Bytes got = comm_.sendrecv(pack_row(field_.row(0)), up, kHaloUpTag, up,
                               kHaloDownTag);
    unpack_row(got, field_.row(-1));
  } else {
    // Closed pole: mirror the boundary row.
    auto src = field_.row(0);
    auto dst = field_.row(-1);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  if (has_down) {
    Bytes got = comm_.sendrecv(pack_row(field_.row(field_.rows() - 1)), down,
                               kHaloDownTag, down, kHaloUpTag);
    unpack_row(got, field_.row(field_.rows()));
  } else {
    auto src = field_.row(field_.rows() - 1);
    auto dst = field_.row(field_.rows());
    std::copy(src.begin(), src.end(), dst.begin());
  }
}

void BandModel::update() {
  const double k = cfg_.kappa;
  for (int i = 0; i < field_.rows(); ++i) {
    const double u = wind_[static_cast<std::size_t>(i)];
    const double target = coupled_profile_[static_cast<std::size_t>(i)];
    for (int j = 0; j < field_.nx(); ++j) {
      const double c = field_.at(i, j);
      // Upwind zonal advection (u >= 0 everywhere by construction).
      const double adv = u * (c - field_.wrap(i, j - 1));
      const double lap = field_.wrap(i, j - 1) + field_.wrap(i, j + 1) +
                         field_.at(i - 1, j) + field_.at(i + 1, j) - 4.0 * c;
      const double relax = cfg_.relax * (target - c);
      scratch_.at(i, j) = c - adv + k * lap + relax;
    }
  }
  std::swap(field_, scratch_);
  ++steps_;
}

void BandModel::transposes() {
  if (comm_.size() == 1 || cfg_.transpose_phases == 0) return;
  // Synthetic spectral payload: a field slice padded/truncated to size.
  Bytes chunk(cfg_.transpose_bytes, 0);
  const auto row = field_.row(0);
  for (std::size_t b = 0; b < chunk.size(); ++b) {
    chunk[b] = static_cast<nexus::util::Byte>(
        static_cast<std::uint64_t>(row[b % row.size()] * 16.0) & 0xff);
  }
  std::vector<Bytes> chunks(static_cast<std::size_t>(comm_.size()), chunk);
  for (int phase = 0; phase < cfg_.transpose_phases; ++phase) {
    (void)kTransposeTag;
    comm_.alltoall(chunks);
  }
}

void BandModel::charge_compute() {
  if (cfg_.step_compute <= 0) return;
  const nexus::Time chunk = std::max<nexus::Time>(
      1, cfg_.step_compute / static_cast<nexus::Time>(cfg_.polls_per_step));
  ctx_->compute_with_polling(cfg_.step_compute, chunk);
}

void BandModel::step() {
  halo_exchange();
  update();
  transposes();
  charge_compute();
}

std::vector<double> BandModel::global_zonal_profile() {
  auto local = field_.zonal_means();
  PackBuffer pb;
  pb.put_i32(field_.row0());
  pb.put_f64_vector(local);

  auto parts = comm_.gather(pb.bytes(), 0);
  Bytes wire;
  if (comm_.rank() == 0) {
    std::vector<double> profile(static_cast<std::size_t>(cfg_.ny), 0.0);
    for (const auto& part : parts) {
      UnpackBuffer ub(part);
      const int row0 = ub.get_i32();
      const std::uint32_t n = ub.get_u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        profile[static_cast<std::size_t>(row0) + i] = ub.get_f64();
      }
    }
    PackBuffer out;
    out.put_f64_vector(profile);
    wire = out.take();
  }
  comm_.bcast(wire, 0);
  UnpackBuffer ub(wire);
  return ub.get_f64_vector();
}

void BandModel::set_coupled_profile(std::vector<double> profile) {
  if (profile.size() != static_cast<std::size_t>(cfg_.ny)) {
    profile = regrid_profile(profile, cfg_.ny);
  }
  for (int i = 0; i < field_.rows(); ++i) {
    coupled_profile_[static_cast<std::size_t>(i)] =
        profile[static_cast<std::size_t>(field_.row0() + i)];
  }
}

double BandModel::global_sum() {
  const std::vector<double> local{field_.interior_sum()};
  return comm_.allreduce(local, minimpi::ReduceOp::Sum)[0];
}

}  // namespace climate
