// The coupled climate model of paper §4 (Millenia analog).
//
// Two latitude-banded grid models run concurrently on disjoint rank groups:
// a PCCM-like atmosphere (advection + diffusion of temperature under a
// zonal jet, plus spectral-transpose communication phases) and a basin
// ocean (diffusion + relaxation of SST toward the atmospheric flux
// profile).  Every `couple_every` atmosphere steps the two exchange zonal
// profiles (SST northward, fluxes southward) through their leader ranks --
// the inter-partition TCP path the whole experiment is about.
//
// Numerics are real (the conservation tests run them); the *costs* of the
// heavy physics (radiation, convection, spectral transforms) that we do not
// implement are charged to the virtual clock via compute_with_polling, with
// the poll cadence matching the paper's description that the unified poll
// runs at least at every Nexus operation.
#pragma once

#include <cstdint>
#include <vector>

#include "climate/grid.hpp"
#include "minimpi/mpi.hpp"
#include "nexus/context.hpp"

namespace climate {

namespace simnet = nexus::simnet;

struct ModelConfig {
  int nx = 96;
  int ny = 64;
  double kappa = 0.20;  ///< nondimensional diffusivity (stability: <= 0.25)
  double u0 = 0.30;     ///< peak zonal wind, cells per step (CFL: <= 0.5)
  double relax = 0.05;  ///< relaxation rate toward the coupled profile

  // Cost model (virtual time charged per rank per step).
  nexus::Time step_compute = 98 * simnet::kSec;
  std::uint64_t polls_per_step = 12'500;
  int transpose_phases = 8;         ///< spectral transposes per step
  std::size_t transpose_bytes = 40'000;  ///< per peer message per phase
};

/// One latitude-banded model instance on a sub-communicator.
class BandModel {
 public:
  BandModel(nexus::Context& ctx, minimpi::Comm comm, ModelConfig cfg,
            bool zonal_jet);

  int rank() const { return comm_.rank(); }
  int size() const { return comm_.size(); }
  const ModelConfig& config() const { return cfg_; }
  const BandField& field() const { return field_; }
  BandField& field() { return field_; }

  /// Exchange halo rows with latitude neighbours (closed poles: the
  /// outermost halos mirror the boundary row).
  void halo_exchange();

  /// One explicit update: upwind zonal advection + 5-point diffusion +
  /// relaxation toward the coupled profile.  Requires fresh halos.
  void update();

  /// Spectral-transpose communication phases: `transpose_phases` rounds of
  /// alltoall with `transpose_bytes` per peer.  The payload is synthetic
  /// (we carry slices of the field, padded); what matters for the paper's
  /// experiments is the fine-grain many-to-many traffic.
  void transposes();

  /// Charge the physics compute for one step, polling as the real model
  /// would (polls_per_step unified polls spread across the step).
  void charge_compute();

  /// Full step: halos, numerics, transposes, compute charge.
  void step();

  /// Zonal-mean profile of the full global field (valid on every rank
  /// after the call; internally a gather + bcast on the model comm).
  std::vector<double> global_zonal_profile();

  /// Set the profile the relaxation term pulls toward (regridded to ny).
  void set_coupled_profile(std::vector<double> profile);

  /// Global sum of the field (allreduce; conservation diagnostics).
  double global_sum();

  int steps_taken() const { return steps_; }

 private:
  nexus::Context* ctx_;
  minimpi::Comm comm_;
  ModelConfig cfg_;
  BandField field_;
  BandField scratch_;
  std::vector<double> wind_;            ///< per-local-row zonal wind
  std::vector<double> coupled_profile_; ///< per-local-row forcing target
  int steps_ = 0;
};

/// Initial condition: a warm equatorial band with a zonal perturbation.
void initialize_temperature(BandField& f, int ny_global);

}  // namespace climate
