// Collective operations built from point-to-point messages.
//
// Algorithms follow the classic MPICH choices at this scale: binomial-tree
// broadcast and reduce, dissemination barrier, and linear/pairwise
// exchanges for (all)gather, scatter, and alltoall.  Internal messages use
// negative tags derived from a per-communicator collective sequence number,
// so back-to-back collectives on the same communicator cannot cross-match.
#include <algorithm>
#include <map>

#include "minimpi/mpi.hpp"
#include "util/error.hpp"

namespace minimpi {

using nexus::util::Bytes;
using nexus::util::ByteSpan;
using nexus::util::PackBuffer;
using nexus::util::UnpackBuffer;

namespace {

/// All ranks execute the same ordered sequence of collectives on a
/// communicator, so the per-World counters stay in lockstep across ranks.
std::uint64_t next_coll_seq(World& w, std::uint32_t comm_id) {
  return w.bump_coll_seq(comm_id);
}

int coll_tag(std::uint64_t seq, int round) {
  // Negative tag space is reserved for collectives (user tags must be >= 0
  // or kAnyTag).  16 rounds per collective, sequence cycles at ~2^26.
  return -static_cast<int>(1000 + (seq % (1u << 26)) * 16 +
                           static_cast<unsigned>(round));
}

void apply_op(std::vector<double>& acc, const std::vector<double>& in,
              ReduceOp op) {
  if (acc.size() != in.size()) {
    throw nexus::util::UsageError(
        "minimpi reduce: contribution sizes differ across ranks");
  }
  for (std::size_t i = 0; i < acc.size(); ++i) {
    switch (op) {
      case ReduceOp::Sum: acc[i] += in[i]; break;
      case ReduceOp::Min: acc[i] = std::min(acc[i], in[i]); break;
      case ReduceOp::Max: acc[i] = std::max(acc[i], in[i]); break;
    }
  }
}

std::vector<double> unpack_doubles(ByteSpan raw) {
  UnpackBuffer ub(raw);
  return ub.get_f64_vector();
}

Bytes pack_doubles(std::span<const double> v) {
  PackBuffer pb(v.size() * 8 + 4);
  pb.put_f64_vector(v);
  return pb.take();
}

}  // namespace

void Comm::barrier() {
  const std::uint64_t seq = next_coll_seq(*world_, id_);
  const int n = size();
  int round = 0;
  for (int k = 1; k < n; k <<= 1, ++round) {
    const int dst = (rank_ + k) % n;
    const int src = (rank_ - k + n) % n;
    send({}, dst, coll_tag(seq, round));
    recv(src, coll_tag(seq, round));
  }
}

void Comm::bcast(Bytes& data, int root) {
  const std::uint64_t seq = next_coll_seq(*world_, id_);
  const int tag = coll_tag(seq, 0);
  const int n = size();
  const int relrank = (rank_ - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if (relrank & mask) {
      const int src = (relrank - mask + root) % n;
      data = recv(src, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relrank + mask < n) {
      const int dst = (relrank + mask + root) % n;
      send(data, dst, tag);
    }
    mask >>= 1;
  }
}

std::vector<double> Comm::reduce(std::span<const double> contrib, ReduceOp op,
                                 int root) {
  const std::uint64_t seq = next_coll_seq(*world_, id_);
  const int tag = coll_tag(seq, 0);
  const int n = size();
  const int relrank = (rank_ - root + n) % n;
  std::vector<double> acc(contrib.begin(), contrib.end());
  int mask = 1;
  while (mask < n) {
    if ((relrank & mask) == 0) {
      const int peer_rel = relrank | mask;
      if (peer_rel < n) {
        const int peer = (peer_rel + root) % n;
        apply_op(acc, unpack_doubles(recv(peer, tag)), op);
      }
    } else {
      const int peer = ((relrank & ~mask) + root) % n;
      send(pack_doubles(acc), peer, tag);
      break;
    }
    mask <<= 1;
  }
  if (relrank != 0) acc.clear();  // only the root holds the result
  return acc;
}

std::vector<double> Comm::allreduce(std::span<const double> contrib,
                                    ReduceOp op) {
  std::vector<double> result = reduce(contrib, op, 0);
  Bytes wire;
  if (rank_ == 0) wire = pack_doubles(result);
  bcast(wire, 0);
  return unpack_doubles(wire);
}

std::vector<Bytes> Comm::gather(ByteSpan data, int root) {
  const std::uint64_t seq = next_coll_seq(*world_, id_);
  const int tag = coll_tag(seq, 0);
  std::vector<Bytes> out;
  if (rank_ == root) {
    out.resize(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(rank_)] = Bytes(data.begin(), data.end());
    for (int i = 0; i < size(); ++i) {
      if (i != rank_) out[static_cast<std::size_t>(i)] = recv(i, tag);
    }
  } else {
    send(data, root, tag);
  }
  return out;
}

Bytes Comm::scatter(const std::vector<Bytes>& chunks, int root) {
  const std::uint64_t seq = next_coll_seq(*world_, id_);
  const int tag = coll_tag(seq, 0);
  if (rank_ == root) {
    if (chunks.size() != static_cast<std::size_t>(size())) {
      throw nexus::util::UsageError(
          "minimpi scatter: need exactly one chunk per rank");
    }
    for (int i = 0; i < size(); ++i) {
      if (i != rank_) send(chunks[static_cast<std::size_t>(i)], i, tag);
    }
    return chunks[static_cast<std::size_t>(rank_)];
  }
  return recv(root, tag);
}

std::vector<Bytes> Comm::allgather(ByteSpan data) {
  const std::uint64_t seq = next_coll_seq(*world_, id_);
  const int tag = coll_tag(seq, 0);
  std::vector<Bytes> out(static_cast<std::size_t>(size()));
  out[static_cast<std::size_t>(rank_)] = Bytes(data.begin(), data.end());
  for (int i = 0; i < size(); ++i) {
    if (i != rank_) send(data, i, tag);  // eager: no deadlock
  }
  for (int i = 0; i < size(); ++i) {
    if (i != rank_) out[static_cast<std::size_t>(i)] = recv(i, tag);
  }
  return out;
}

std::vector<Bytes> Comm::alltoall(const std::vector<Bytes>& chunks) {
  if (chunks.size() != static_cast<std::size_t>(size())) {
    throw nexus::util::UsageError(
        "minimpi alltoall: need exactly one chunk per rank");
  }
  const std::uint64_t seq = next_coll_seq(*world_, id_);
  const int tag = coll_tag(seq, 0);
  std::vector<Bytes> out(static_cast<std::size_t>(size()));
  out[static_cast<std::size_t>(rank_)] = chunks[static_cast<std::size_t>(rank_)];
  for (int i = 0; i < size(); ++i) {
    if (i != rank_) send(chunks[static_cast<std::size_t>(i)], i, tag);
  }
  for (int i = 0; i < size(); ++i) {
    if (i != rank_) out[static_cast<std::size_t>(i)] = recv(i, tag);
  }
  return out;
}

Comm Comm::dup() { return split(0, rank_); }

Comm Comm::split(int color, int key) {
  if (color < 0) {
    throw nexus::util::UsageError("minimpi split: color must be >= 0");
  }
  // Exchange (color, key, world context) across the parent communicator.
  PackBuffer pb;
  pb.put_i32(color);
  pb.put_i32(key);
  pb.put_u32(world_->ctx_->id());
  std::vector<Bytes> all = allgather(pb.bytes());

  struct Member {
    int color;
    int key;
    int parent_rank;
    nexus::ContextId ctx;
  };
  std::vector<Member> mine;
  for (int r = 0; r < size(); ++r) {
    UnpackBuffer ub(all[static_cast<std::size_t>(r)]);
    Member m{ub.get_i32(), ub.get_i32(), r, 0};
    m.ctx = ub.get_u32();
    if (m.color == color) mine.push_back(m);
  }
  std::stable_sort(mine.begin(), mine.end(),
                   [](const Member& a, const Member& b) {
                     return a.key != b.key ? a.key < b.key
                                           : a.parent_rank < b.parent_rank;
                   });

  std::vector<nexus::ContextId> members;
  int new_rank = -1;
  for (std::size_t i = 0; i < mine.size(); ++i) {
    members.push_back(mine[i].ctx);
    if (mine[i].parent_rank == rank_) new_rank = static_cast<int>(i);
  }

  // Deterministic id: all members compute the same hash.
  const std::uint32_t generation = ++split_generation_;
  std::uint64_t h = 1469598103934665603ull ^ id_;
  h = (h * 1099511628211ull) ^ static_cast<std::uint64_t>(color);
  h = (h * 1099511628211ull) ^ generation;
  const auto new_id =
      static_cast<std::uint32_t>((h >> 32) ^ (h & 0xffffffffull)) | 1u;

  return Comm(*world_, new_id, std::move(members), new_rank);
}

}  // namespace minimpi
