#include "minimpi/mpi.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace minimpi {

using nexus::util::Bytes;
using nexus::util::ByteSpan;
using nexus::util::PackBuffer;
using nexus::util::UnpackBuffer;

struct Comm::Request::State {
  bool done = false;
  Bytes data;
  Status status;
};

// ----------------------------------------------------------------- World ---

World::World(nexus::Context& ctx) : ctx_(&ctx) {
  layer_overhead_ = static_cast<nexus::Time>(
      ctx.config().get_int("minimpi.layer_overhead_ns", 4000));
  std::vector<nexus::ContextId> members(ctx.world_size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    members[i] = static_cast<nexus::ContextId>(i);
  }
  world_comm_.reset(new Comm(*this, /*id=*/0, std::move(members),
                             static_cast<int>(ctx.id())));
  ctx.register_handler("minimpi",
                       [this](nexus::Context&, nexus::Endpoint&,
                              UnpackBuffer& ub) { engine_handler(ub); });
  ctx.register_handler("minimpi_ack",
                       [this](nexus::Context&, nexus::Endpoint&,
                              UnpackBuffer& ub) { ack_handler(ub); });
}

World::~World() = default;

nexus::Startpoint& World::startpoint_to(nexus::ContextId ctx) {
  auto it = startpoints_.find(ctx);
  if (it == startpoints_.end()) {
    it = startpoints_.emplace(ctx, ctx_->world_startpoint(ctx)).first;
  }
  return it->second;
}

bool World::match(const PendingRecv& pr, const Envelope& env) const {
  return pr.comm == env.comm &&
         (pr.src == kAnySource || pr.src == env.src) &&
         (pr.tag == kAnyTag || pr.tag == env.tag);
}

void World::engine_handler(UnpackBuffer& ub) {
  Envelope env;
  env.comm = ub.get_u32();
  env.src = ub.get_i32();
  env.tag = ub.get_i32();
  env.seq = ub.get_u64();
  env.wants_ack = ub.get_bool();
  env.ack_id = ub.get_u64();
  env.data = ub.get_bytes();

  // Match against the first posted receive that accepts this envelope.
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (match(*it, env)) {
      it->state->data = std::move(env.data);
      it->state->status =
          Status{env.src, env.tag, it->state->data.size()};
      it->state->done = true;
      if (env.wants_ack) {
        PackBuffer pb;
        pb.put_u64(env.ack_id);
        // The sender's context id rides in the top bits of the sequence
        // number (ranks are comm-relative, contexts are global).
        const auto src_ctx = static_cast<nexus::ContextId>(env.seq >> 40);
        ctx_->rsr(startpoint_to(src_ctx), "minimpi_ack", pb);
      }
      posted_.erase(it);
      return;
    }
  }
  unexpected_.push_back(std::move(env));
}

void World::ack_handler(UnpackBuffer& ub) {
  const std::uint64_t id = ub.get_u64();
  acks_[id] = true;
}

void World::post_send(const Comm& comm, ByteSpan data, int dst, int tag,
                      bool wants_ack, std::uint64_t ack_id) {
  if (dst < 0 || dst >= comm.size()) {
    throw nexus::util::UsageError("minimpi: destination rank " +
                                  std::to_string(dst) + " out of range");
  }
  ctx_->compute(layer_overhead_);
  PackBuffer pb;
  pb.put_u32(comm.id_);
  pb.put_i32(comm.rank_);
  pb.put_i32(tag);
  // Sequence number with the sender's context id in the top 24 bits so
  // sub-communicator acks can find their way home.
  pb.put_u64((static_cast<std::uint64_t>(ctx_->id()) << 40) |
             (next_seq_++ & 0xff'ffff'ffffull));
  pb.put_bool(wants_ack);
  pb.put_u64(ack_id);
  pb.put_bytes(data);
  ctx_->rsr(startpoint_to(comm.members_[static_cast<std::size_t>(dst)]),
            "minimpi", pb);
}

std::shared_ptr<Comm::Request::State> World::post_recv(const Comm& comm,
                                                       int src, int tag) {
  auto state = std::make_shared<Comm::Request::State>();
  PendingRecv pr{comm.id_, src, tag, state};
  // First drain the unexpected queue in arrival order.
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (match(pr, *it)) {
      state->data = std::move(it->data);
      state->status = Status{it->src, it->tag, state->data.size()};
      state->done = true;
      if (it->wants_ack) {
        PackBuffer pb;
        pb.put_u64(it->ack_id);
        const auto src_ctx = static_cast<nexus::ContextId>(it->seq >> 40);
        ctx_->rsr(startpoint_to(src_ctx), "minimpi_ack", pb);
      }
      unexpected_.erase(it);
      return state;
    }
  }
  posted_.push_back(std::move(pr));
  return state;
}

// ------------------------------------------------------------------ Comm ---

void Comm::send(ByteSpan data, int dst, int tag) {
  world_->post_send(*this, data, dst, tag, false, 0);
}

void Comm::ssend(ByteSpan data, int dst, int tag) {
  World& w = *world_;
  const std::uint64_t id = w.next_ack_id_++;
  w.acks_[id] = false;
  w.post_send(*this, data, dst, tag, true, id);
  w.ctx_->wait([&] { return w.acks_[id]; });
  w.acks_.erase(id);
}

Bytes Comm::recv(int src, int tag, Status* status) {
  auto state = world_->post_recv(*this, src, tag);
  world_->ctx_->wait([&] { return state->done; });
  world_->ctx_->compute(world_->layer_overhead_);
  if (status != nullptr) *status = state->status;
  return std::move(state->data);
}

Bytes Comm::sendrecv(ByteSpan data, int dst, int send_tag, int src,
                     int recv_tag, Status* status) {
  auto state = world_->post_recv(*this, src, recv_tag);
  world_->post_send(*this, data, dst, send_tag, false, 0);
  world_->ctx_->wait([&] { return state->done; });
  world_->ctx_->compute(world_->layer_overhead_);
  if (status != nullptr) *status = state->status;
  return std::move(state->data);
}

Comm::Request Comm::isend(ByteSpan data, int dst, int tag) {
  // Eager protocol: the RSR is asynchronous and buffered at the receiver,
  // so an isend completes immediately.
  world_->post_send(*this, data, dst, tag, false, 0);
  Request req;
  req.state_ = std::make_shared<Request::State>();
  req.state_->done = true;
  return req;
}

Comm::Request Comm::irecv(int src, int tag) {
  Request req;
  req.state_ = world_->post_recv(*this, src, tag);
  return req;
}

Bytes Comm::wait(Request& req, Status* status) {
  if (!req.valid()) {
    throw nexus::util::UsageError("minimpi: wait on an invalid request");
  }
  world_->ctx_->wait([&] { return req.state_->done; });
  if (status != nullptr) *status = req.state_->status;
  Bytes out = std::move(req.state_->data);
  req.state_.reset();
  return out;
}

bool Comm::test(Request& req) {
  if (!req.valid()) {
    throw nexus::util::UsageError("minimpi: test on an invalid request");
  }
  world_->ctx_->progress();
  return req.state_->done;
}

void Comm::wait_all(std::vector<Request>& reqs) {
  for (auto& r : reqs) {
    if (r.valid()) wait(r);
  }
}

std::size_t Comm::wait_any(std::vector<Request>& reqs) {
  bool any_valid = false;
  for (const auto& r : reqs) any_valid |= r.valid();
  if (!any_valid) {
    throw nexus::util::UsageError("minimpi: wait_any with no valid request");
  }
  std::size_t winner = reqs.size();
  world_->ctx_->wait([&] {
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (reqs[i].valid() && reqs[i].state_->done) {
        winner = i;
        return true;
      }
    }
    return false;
  });
  return winner;
}

std::optional<Status> World::peek_unexpected(std::uint32_t comm, int src,
                                             int tag) const {
  for (const auto& env : unexpected_) {
    if (env.comm == comm && (src == kAnySource || src == env.src) &&
        (tag == kAnyTag || tag == env.tag)) {
      return Status{env.src, env.tag, env.data.size()};
    }
  }
  return std::nullopt;
}

std::optional<Status> Comm::iprobe(int src, int tag) {
  world_->ctx_->progress();
  return world_->peek_unexpected(id_, src, tag);
}

Status Comm::probe(int src, int tag) {
  std::optional<Status> st;
  world_->ctx_->wait([&] {
    st = world_->peek_unexpected(id_, src, tag);
    return st.has_value();
  });
  return *st;
}

void Comm::send_doubles(std::span<const double> data, int dst, int tag) {
  PackBuffer pb(data.size() * 8 + 4);
  pb.put_f64_vector(data);
  send(pb.bytes(), dst, tag);
}

std::vector<double> Comm::recv_doubles(int src, int tag, Status* s) {
  Bytes raw = recv(src, tag, s);
  UnpackBuffer ub(raw);
  return ub.get_f64_vector();
}

}  // namespace minimpi
