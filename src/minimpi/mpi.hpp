// minimpi: a small MPI subset layered on Nexus remote service requests.
//
// This mirrors the paper's §4 setup, where the MPICH implementation of MPI
// runs on top of Nexus (adding ~6% execution-time overhead versus MPICH on
// MPL).  Point-to-point messages travel as RSRs to a per-rank engine
// handler; tag matching uses the classic posted-receive / unexpected-message
// queues; collectives are built from point-to-point (binomial trees,
// dissemination barrier, pairwise exchange).
//
// Supported surface:
//   World / Comm (dup, split), rank/size
//   send, ssend, recv, sendrecv, isend, irecv, wait, test, probe-ish
//   barrier, bcast, reduce, allreduce, gather, scatter, allgather, alltoall
//   reduce ops over double vectors: Sum, Min, Max
//
// Anything outside this subset is out of scope; the climate model and the
// benchmarks only need what is listed.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "nexus/context.hpp"
#include "util/bytes.hpp"

namespace minimpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Status {
  int source = -1;
  int tag = -1;
  std::size_t size = 0;
};

enum class ReduceOp { Sum, Min, Max };

class World;

/// A communicator: an ordered group of ranks mapped to Nexus contexts.
class Comm {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept { return static_cast<int>(members_.size()); }

  // --- point-to-point (payloads are opaque bytes) ---
  void send(nexus::util::ByteSpan data, int dst, int tag);
  /// Synchronous send: returns only after the receiver has matched it.
  void ssend(nexus::util::ByteSpan data, int dst, int tag);
  nexus::util::Bytes recv(int src, int tag, Status* status = nullptr);
  nexus::util::Bytes sendrecv(nexus::util::ByteSpan data, int dst,
                              int send_tag, int src, int recv_tag,
                              Status* status = nullptr);

  // --- nonblocking ---
  class Request {
   public:
    Request() = default;
    bool valid() const noexcept { return state_ != nullptr; }

   private:
    friend class Comm;
    friend class World;
    struct State;
    std::shared_ptr<State> state_;
  };
  Request isend(nexus::util::ByteSpan data, int dst, int tag);
  Request irecv(int src, int tag);
  /// Wait for completion; for an irecv returns the payload.
  nexus::util::Bytes wait(Request& req, Status* status = nullptr);
  bool test(Request& req);
  void wait_all(std::vector<Request>& reqs);
  /// Block until one request in `reqs` completes; returns its index (its
  /// payload is retrieved with wait(), which then returns immediately).
  std::size_t wait_any(std::vector<Request>& reqs);

  /// Nonblocking probe: has a matching message already arrived?  Advances
  /// the runtime one poll and inspects the unexpected queue (MPI_Iprobe).
  std::optional<Status> iprobe(int src, int tag);
  /// Blocking probe: wait until a matching message is available without
  /// receiving it.
  Status probe(int src, int tag);

  // --- typed helpers (canonical f64 encoding) ---
  void send_doubles(std::span<const double> data, int dst, int tag);
  std::vector<double> recv_doubles(int src, int tag, Status* s = nullptr);

  // --- collectives ---
  void barrier();
  void bcast(nexus::util::Bytes& data, int root);
  std::vector<double> reduce(std::span<const double> contrib, ReduceOp op,
                             int root);
  std::vector<double> allreduce(std::span<const double> contrib, ReduceOp op);
  /// Root receives size() * data.size() bytes, rank-major.
  std::vector<nexus::util::Bytes> gather(nexus::util::ByteSpan data, int root);
  nexus::util::Bytes scatter(const std::vector<nexus::util::Bytes>& chunks,
                             int root);
  std::vector<nexus::util::Bytes> allgather(nexus::util::ByteSpan data);
  /// chunks[i] goes to rank i; returns what every rank sent to me.
  std::vector<nexus::util::Bytes> alltoall(
      const std::vector<nexus::util::Bytes>& chunks);

  // --- communicator management ---
  Comm dup();
  /// Ranks with the same color form a new communicator, ordered by (key,
  /// parent rank).  Collective over the parent communicator.
  Comm split(int color, int key);

  /// Context id backing rank r (enquiry; used by benchmarks to check which
  /// methods rank pairs selected).
  nexus::ContextId context_of(int r) const { return members_.at(r); }

  World& world() noexcept { return *world_; }

 private:
  friend class World;
  Comm(World& world, std::uint32_t id, std::vector<nexus::ContextId> members,
       int rank)
      : world_(&world), id_(id), members_(std::move(members)), rank_(rank) {}

  World* world_;
  std::uint32_t id_;
  std::vector<nexus::ContextId> members_;
  int rank_;
  std::uint32_t split_generation_ = 0;
};

/// Per-context MPI engine; construct exactly one per context, before any
/// rank communicates.  The World *is* a Comm over all contexts.
class World {
 public:
  explicit World(nexus::Context& ctx);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  Comm& comm() noexcept { return *world_comm_; }
  int rank() const noexcept { return world_comm_->rank(); }
  int size() const noexcept { return world_comm_->size(); }
  nexus::Context& context() noexcept { return *ctx_; }

  /// Messages received but not yet matched (enquiry/testing).
  std::size_t unexpected_count() const noexcept { return unexpected_.size(); }

  /// Extra per-operation software cost modelling the MPI-over-Nexus
  /// layering (paper §4: ~6%); charged on every send and matched receive.
  nexus::Time layer_overhead() const noexcept { return layer_overhead_; }

  /// Advance and return the collective sequence number for a communicator
  /// (used by the collective algorithms to derive cross-match-proof tags).
  std::uint64_t bump_coll_seq(std::uint32_t comm_id) {
    return ++coll_seq_[comm_id];
  }

 private:
  friend class Comm;

  struct Envelope {
    std::uint32_t comm;
    int src;
    int tag;
    std::uint64_t seq;       ///< per-sender sequence for FIFO matching
    bool wants_ack = false;  ///< ssend: receiver acks the match
    std::uint64_t ack_id = 0;
    nexus::util::Bytes data;
  };

  struct PendingRecv {
    std::uint32_t comm;
    int src;
    int tag;
    std::shared_ptr<Comm::Request::State> state;
  };

  void engine_handler(nexus::util::UnpackBuffer& ub);
  void ack_handler(nexus::util::UnpackBuffer& ub);
  /// Unexpected-queue lookup without consuming the message.
  std::optional<Status> peek_unexpected(std::uint32_t comm, int src,
                                        int tag) const;
  void post_send(const Comm& comm, nexus::util::ByteSpan data, int dst,
                 int tag, bool wants_ack, std::uint64_t ack_id);
  std::shared_ptr<Comm::Request::State> post_recv(const Comm& comm, int src,
                                                  int tag);
  bool match(const PendingRecv& pr, const Envelope& env) const;
  nexus::Startpoint& startpoint_to(nexus::ContextId ctx);

  nexus::Context* ctx_;
  std::unique_ptr<Comm> world_comm_;
  std::deque<Envelope> unexpected_;
  std::vector<PendingRecv> posted_;
  std::map<nexus::ContextId, nexus::Startpoint> startpoints_;
  std::map<std::uint64_t, bool> acks_;  ///< ssend ack flags by id
  /// Per-communicator collective sequence counters (tags derive from
  /// these; every rank executes the same ordered collectives per comm, so
  /// the counters stay in lockstep across ranks).
  std::map<std::uint32_t, std::uint64_t> coll_seq_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_ack_id_ = 1;
  nexus::Time layer_overhead_;
};

}  // namespace minimpi
