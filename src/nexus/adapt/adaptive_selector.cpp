#include "nexus/adapt/adaptive_selector.hpp"

#include <limits>
#include <vector>

#include "nexus/context.hpp"
#include "nexus/module.hpp"
#include "util/stats.hpp"

namespace nexus::adapt {

namespace {
/// Score handicap that keeps unreliable methods behind every reliable one
/// (the same RSR delivery-promise rule every other policy applies).
constexpr double kUnreliablePenaltyNs = 1.0e15;

std::string fmt_ms(double ns) { return util::fmt_fixed(ns / 1.0e6, 3); }
}  // namespace

std::optional<std::size_t> AdaptiveSelector::select(
    const DescriptorTable& table, Context& local, std::string& reason) {
  return decide(table, local, 0, reason, /*mutate=*/true);
}

std::optional<std::size_t> AdaptiveSelector::select_sized(
    const DescriptorTable& table, Context& local, std::uint64_t payload_bytes,
    std::string& reason) {
  return decide(table, local, payload_bytes, reason, /*mutate=*/true);
}

std::optional<std::size_t> AdaptiveSelector::peek(const DescriptorTable& table,
                                                  Context& local,
                                                  std::string& reason) {
  return decide(table, local, 0, reason, /*mutate=*/false);
}

std::string AdaptiveSelector::dwell_state(ContextId peer,
                                          std::string_view method) const {
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return "candidate";
  const bool s = it->second.small.method == method;
  const bool l = it->second.large.method == method;
  if (s && l) return "held-both";
  if (s) return "held-small";
  if (l) return "held-large";
  return "candidate";
}

std::optional<std::size_t> AdaptiveSelector::validate(
    const DescriptorTable& table, Context& local, Decision& d) const {
  if (d.method.empty()) return std::nullopt;
  if (d.index >= table.size() || table.at(d.index).method != d.method) {
    const auto f = table.find(d.method);
    if (!f) return std::nullopt;  // table edit removed the incumbent
    d.index = *f;
  }
  if (!local.health().empty() && !local.health_usable(table.at(d.index))) {
    return std::nullopt;  // incumbent quarantined: caller re-evaluates
  }
  return d.index;
}

void AdaptiveSelector::evaluate(const DescriptorTable& table, Context& local,
                                ContextId peer, PeerState& ps, bool mutate,
                                std::string& reason) {
  const Time t = local.now();
  CostModel& model = local.cost_model();
  const std::uint64_t s_ref = p_.small_ref_bytes;
  const std::uint64_t l_ref = p_.large_ref_bytes;

  struct Cand {
    std::size_t index;
    std::uint64_t hash;
    bool reliable;
    bool modeled;
    double small_cost;  ///< predicted ns at s_ref (+unreliable penalty)
    double large_cost;  ///< predicted ns at l_ref (+unreliable penalty)
  };
  std::vector<Cand> cands;
  cands.reserve(table.size());
  std::optional<std::size_t> static_rel, static_any;
  for (std::size_t i = 0; i < table.size(); ++i) {
    const CommDescriptor& d = table.at(i);
    if (!local.method_usable(d)) continue;  // not loaded / unreachable /
                                            // quarantined: skip, no probe
    CommModule* m = local.module(d.method);
    Cand c;
    c.index = i;
    c.hash = method_hash(d.method);
    c.reliable = m->reliable();
    const double penalty = c.reliable ? 0.0 : kUnreliablePenaltyNs;
    const auto ps_cost = model.predict_ns(c.hash, peer, s_ref, t);
    c.modeled = ps_cost.has_value();
    if (c.modeled) {
      c.small_cost = *ps_cost + penalty;
      c.large_cost = *model.predict_ns(c.hash, peer, l_ref, t) + penalty;
    } else {
      c.small_cost = c.large_cost =
          std::numeric_limits<double>::infinity();
      // Nothing known about a usable method: ask the context's low-rate
      // prober to generate a timing sample so it can compete.  This is
      // also the path that revives a method whose estimate decayed to
      // stale while it sat in quarantine.
      if (mutate && p_.probe_interval > 0) {
        Time& due = ps.next_probe[c.hash];
        if (t >= due) {
          due = t + p_.probe_interval;
          ++probes_;
          local.probe_method(d);
        }
      }
    }
    if (c.reliable && !static_rel) static_rel = i;
    if (!static_any) static_any = i;
    cands.push_back(c);
  }

  auto settle = [&](Decision& cur, bool large_class) {
    // Pick the challenger: best modeled cost for this class, else the
    // static table-order fallback (reliable first), mirroring
    // FirstApplicableSelector until measurements exist.
    const Cand* best = nullptr;
    for (const Cand& c : cands) {
      if (!c.modeled) continue;
      const double cost = large_class ? c.large_cost : c.small_cost;
      if (best == nullptr ||
          cost < (large_class ? best->large_cost : best->small_cost)) {
        best = &c;
      }
    }
    Decision next;
    if (best != nullptr) {
      next.index = best->index;
      next.hash = best->hash;
      next.method = table.at(best->index).method;
      next.cost_ns = large_class ? best->large_cost : best->small_cost;
      next.modeled = true;
    } else if (static_rel || static_any) {
      const std::size_t i = static_rel ? *static_rel : *static_any;
      next.index = i;
      next.method = table.at(i).method;
      next.hash = method_hash(next.method);
      next.modeled = false;
    } else {
      cur = Decision{};  // nothing usable at all
      return;
    }
    if (cur.method == next.method) {
      cur = next;  // refresh index/cost, no switch
      return;
    }
    // Hysteresis: an incumbent that is still usable holds its seat unless
    // the challenger's modeled cost beats it by improve_frac.
    const Cand* inc = nullptr;
    for (const Cand& c : cands) {
      if (c.hash == cur.hash) {
        inc = &c;
        break;
      }
    }
    if (inc != nullptr && !cur.method.empty()) {
      const double inc_cost =
          large_class ? inc->large_cost : inc->small_cost;
      if (inc->modeled && next.modeled &&
          next.cost_ns >= inc_cost * (1.0 - p_.improve_frac)) {
        cur.index = inc->index;
        cur.cost_ns = inc_cost;
        cur.modeled = true;
        return;  // challenger not convincingly better: hold
      }
      if (!next.modeled) {
        cur.index = inc->index;  // never trade a live incumbent for a guess
        return;
      }
    }
    if (mutate && !cur.method.empty()) {
      ++switches_;
      local.note_adapt_switch(next.method, peer,
                              large_class ? "large" : "small");
    }
    cur = next;
  };
  settle(ps.small, /*large_class=*/false);
  settle(ps.large, /*large_class=*/true);

  // Crossover: payload size where the two class winners' (linear) cost
  // curves intersect.  Same winner for both classes means no crossover.
  ps.crossover_bytes = ~0ull;
  if (!ps.small.method.empty() && !ps.large.method.empty() &&
      ps.small.hash != ps.large.hash && ps.small.modeled &&
      ps.large.modeled) {
    const Cand *cs = nullptr, *cl = nullptr;
    for (const Cand& c : cands) {
      if (c.hash == ps.small.hash) cs = &c;
      if (c.hash == ps.large.hash) cl = &c;
    }
    if (cs != nullptr && cl != nullptr) {
      // f(b) = cost_large_winner(b) - cost_small_winner(b); f(s_ref) >= 0,
      // f(l_ref) <= 0, linear in b -> root by interpolation.
      const double f_s = cl->small_cost - cs->small_cost;
      const double f_l = cl->large_cost - cs->large_cost;
      double b = 0.5 * static_cast<double>(s_ref + l_ref);
      if (f_s - f_l > 0.0) {
        b = static_cast<double>(s_ref) +
            f_s * static_cast<double>(l_ref - s_ref) / (f_s - f_l);
      }
      if (b < static_cast<double>(s_ref)) b = static_cast<double>(s_ref);
      if (b > static_cast<double>(l_ref)) b = static_cast<double>(l_ref);
      ps.crossover_bytes = static_cast<std::uint64_t>(b);
    }
  }
  if (mutate) ps.next_eval = t + p_.min_dwell;

  if (ps.small.method.empty()) {
    reason = "no applicable entry";
  } else if (!ps.small.modeled) {
    reason = "adaptive: no cost-model data yet; static table-order fallback "
             "-> '" + ps.small.method + "'";
  } else if (ps.crossover_bytes == ~0ull) {
    reason = "adaptive: '" + ps.small.method + "' wins at every payload size "
             "(modeled " + fmt_ms(ps.small.cost_ns) + "ms at " +
             std::to_string(p_.small_ref_bytes) + "B)";
  } else {
    reason = "adaptive: crossover at " + std::to_string(ps.crossover_bytes) +
             "B; small -> '" + ps.small.method + "' (modeled " +
             fmt_ms(ps.small.cost_ns) + "ms at " +
             std::to_string(p_.small_ref_bytes) + "B), large -> '" +
             ps.large.method + "' (modeled " + fmt_ms(ps.large.cost_ns) +
             "ms at " + std::to_string(p_.large_ref_bytes) + "B)";
  }
}

std::optional<std::size_t> AdaptiveSelector::decide(
    const DescriptorTable& table, Context& local, std::uint64_t payload_bytes,
    std::string& reason, bool mutate) {
  if (table.empty()) {
    reason = "no applicable entry";
    return std::nullopt;
  }
  const ContextId peer = table.context();
  const Time t = local.now();
  PeerState scratch;
  PeerState* ps;
  if (mutate) {
    // Steady-state sends hit the same peer repeatedly; a one-entry cache
    // skips the map walk (node pointers are stable, so it never dangles).
    if (peer == last_peer_ && last_state_ != nullptr) {
      ps = last_state_;
    } else {
      ps = &peers_[peer];
      last_peer_ = peer;
      last_state_ = ps;
    }
  } else {
    const auto it = peers_.find(peer);
    if (it != peers_.end()) scratch = it->second;
    ps = &scratch;
  }
  std::string eval_reason;
  bool evaluated = false;
  if (!mutate || ps->small.method.empty() || t >= ps->next_eval) {
    evaluate(table, local, peer, *ps, mutate, eval_reason);
    evaluated = true;
  }
  for (int attempt = 0; attempt < 2; ++attempt) {
    Decision& d =
        payload_bytes > ps->crossover_bytes ? ps->large : ps->small;
    const auto idx = validate(table, local, d);
    if (idx) {
      if (evaluated) {
        reason = std::move(eval_reason);
        if (payload_bytes > 0 && ps->crossover_bytes != ~0ull) {
          reason += "; payload " + std::to_string(payload_bytes) + "B -> " +
                    (payload_bytes > ps->crossover_bytes ? "large" : "small") +
                    " class";
        }
      }
      // else: cached decision, reason left empty so the context skips the
      // selection-log entry (per-class flips would spam it otherwise).
      return idx;
    }
    if (evaluated) break;  // a fresh evaluation found nothing usable
    // Cached decision went invalid (quarantine / table edit): re-evaluate
    // immediately instead of waiting out the dwell.
    evaluate(table, local, peer, *ps, mutate, eval_reason);
    evaluated = true;
  }
  reason = std::move(eval_reason);
  if (reason.empty()) reason = "no applicable entry";
  return std::nullopt;
}

}  // namespace nexus::adapt
