// Payload-aware adaptive method selection driven by the online cost model.
//
// The policy is the classic latency + size/bandwidth crossover: for each
// peer the selector picks a *small-payload* winner (lowest modeled latency)
// and a *large-payload* winner (lowest modeled cost at a large reference
// size, i.e. highest effective bandwidth), computes the payload size where
// their cost curves cross, and routes each RSR by which side of that
// crossover its payload falls on.  Per-RSR work in steady state is a cached
// decision check (an index + method-name compare), so the selector stays
// within a few percent of FirstApplicableSelector (bench/micro_adapt.cpp
// holds it to <=1.10x).
//
// Stability comes from hysteresis: decisions are re-evaluated at most once
// per `min_dwell` of virtual time, and an incumbent is only unseated by a
// challenger whose modeled cost is at least `improve_frac` better -- noisy
// samples therefore cannot flap the method choice (the chaos suite bounds
// the switch count under injected delay jitter).
//
// Health integration: quarantined entries are skipped exactly as in every
// other policy (the shared Context::method_usable gate), and a quarantine
// of the incumbent forces an immediate re-evaluation instead of waiting
// out the dwell.  Methods the model knows nothing about (never carried
// traffic, or decayed stale while quarantined) are probed at a bounded
// rate via Context::probe_method -- that is what lets a recovered method
// earn its place back after probation rather than being demoted forever.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "nexus/adapt/cost_model.hpp"
#include "nexus/selector.hpp"

namespace nexus::adapt {

struct AdaptiveParams {
  Time min_dwell = 20'000'000;       ///< re-evaluation cadence (ns)
  double improve_frac = 0.15;        ///< modeled improvement required to
                                     ///< unseat an incumbent
  Time probe_interval = 25'000'000;  ///< per-(peer, method) floor between
                                     ///< active probes; 0 disables probing
  std::uint64_t small_ref_bytes = 64;       ///< latency-class reference size
  std::uint64_t large_ref_bytes = 1 << 16;  ///< bandwidth-class reference
};

class AdaptiveSelector final : public MethodSelector {
 public:
  explicit AdaptiveSelector(AdaptiveParams p = {}) : p_(p) {}

  std::string_view name() const override { return "adaptive"; }
  bool payload_aware() const override { return true; }

  std::optional<std::size_t> select(const DescriptorTable& table,
                                    Context& local,
                                    std::string& reason) override;
  std::optional<std::size_t> select_sized(const DescriptorTable& table,
                                          Context& local,
                                          std::uint64_t payload_bytes,
                                          std::string& reason) override;
  /// Side-effect free: evaluates on a scratch copy of the peer state, so
  /// no dwell-state update, no probes, no switch counts.  Always fills
  /// `reason` with the full crossover decision (both class winners and the
  /// threshold between them), which is what explain() surfaces.
  std::optional<std::size_t> peek(const DescriptorTable& table, Context& local,
                                  std::string& reason) override;

  const AdaptiveParams& params() const noexcept { return p_; }
  /// Decision changes since construction (flap-bound assertions).
  std::uint64_t switches() const noexcept { return switches_; }
  /// Active probes requested since construction.
  std::uint64_t probes() const noexcept { return probes_; }

  /// Dwell-state label for one (peer, method) pair: "held-small",
  /// "held-large", "held-both", or "candidate".  Used by
  /// Context::explain_selection for the per-candidate model rows.
  std::string dwell_state(ContextId peer, std::string_view method) const;

 private:
  /// One class winner (small or large payloads) for a peer.
  struct Decision {
    std::string method;        ///< empty = no decision yet
    std::uint64_t hash = 0;    ///< method_hash(method)
    std::size_t index = 0;     ///< table position at decision time
    double cost_ns = 0.0;      ///< modeled cost at the class reference size
    bool modeled = false;      ///< false = static-rank fallback choice
  };
  struct PeerState {
    Decision small, large;
    /// Payload sizes strictly above this use the large-class decision.
    std::uint64_t crossover_bytes = ~0ull;
    Time next_eval = 0;
    std::map<std::uint64_t, Time> next_probe;  ///< per method hash
  };

  /// Recompute both class decisions for `peer` from the current model.
  /// `mutate` distinguishes the real decision path (probes fire, switches
  /// count, dwell clock restarts) from peek/explain previews.
  void evaluate(const DescriptorTable& table, Context& local, ContextId peer,
                PeerState& ps, bool mutate, std::string& reason);
  /// Validate a cached decision against the table + health gate; returns
  /// the index to use or nullopt when a re-evaluation is required.
  std::optional<std::size_t> validate(const DescriptorTable& table,
                                      Context& local, Decision& d) const;
  std::optional<std::size_t> decide(const DescriptorTable& table,
                                    Context& local,
                                    std::uint64_t payload_bytes,
                                    std::string& reason, bool mutate);

  AdaptiveParams p_;
  std::map<ContextId, PeerState> peers_;
  ContextId last_peer_ = kNoContext;  ///< one-entry cache over peers_
  PeerState* last_state_ = nullptr;
  std::uint64_t switches_ = 0;
  std::uint64_t probes_ = 0;
};

}  // namespace nexus::adapt
