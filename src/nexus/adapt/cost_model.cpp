#include "nexus/adapt/cost_model.hpp"

namespace nexus::adapt {

CostModel::Entry& CostModel::entry(std::uint64_t method, ContextId peer) {
  auto it = entries_.find({method, peer});
  if (it == entries_.end()) {
    it = entries_
             .emplace(std::make_pair(method, peer),
                      Entry(p_.alpha, p_.half_life))
             .first;
  }
  return it->second;
}

const CostModel::Entry* CostModel::find(std::uint64_t method,
                                        ContextId peer) const {
  const auto it = entries_.find({method, peer});
  return it == entries_.end() ? nullptr : &it->second;
}

void CostModel::observe(std::uint64_t method, ContextId peer,
                        std::uint64_t wire_bytes, Time oneway_ns, Time now) {
  Entry& e = entry(method, peer);
  ++samples_;
  const double t = static_cast<double>(now);
  if (wire_bytes >= p_.bw_floor_bytes &&
      e.latency.confidence(t) >= p_.min_confidence) {
    // Large packet with a trusted latency estimate to subtract: the
    // remainder is transfer time, so this is a bandwidth sample.
    const double transfer_ns =
        static_cast<double>(oneway_ns) - e.latency.value();
    if (transfer_ns > 0.0) {
      // bytes/ns * 1e9 / 1e6 = MB/s.
      const double mb_s =
          static_cast<double>(wire_bytes) * 1.0e3 / transfer_ns;
      e.bandwidth.add(mb_s, t);
      return;
    }
    // A large packet arriving faster than the latency estimate means the
    // estimate is inflated; let the sample pull latency down instead.
  }
  e.latency.add(static_cast<double>(oneway_ns), t);
}

CostEstimate CostModel::estimate(std::uint64_t method, ContextId peer,
                                 Time now) const {
  CostEstimate out;
  const Entry* e = find(method, peer);
  if (e == nullptr) return out;
  const double t = static_cast<double>(now);
  out.latency_confidence = e->latency.confidence(t);
  out.bandwidth_confidence = e->bandwidth.confidence(t);
  out.latency_ns = e->latency.value();
  out.bandwidth_mb_s =
      out.bandwidth_confidence >= p_.min_confidence ? e->bandwidth.value()
                                                    : 0.0;
  out.known = out.latency_confidence >= p_.min_confidence;
  return out;
}

std::optional<double> CostModel::predict_ns(std::uint64_t method,
                                            ContextId peer,
                                            std::uint64_t bytes,
                                            Time now) const {
  const CostEstimate est = estimate(method, peer, now);
  if (!est.known) return std::nullopt;
  const double mb_s =
      est.bandwidth_mb_s > 0.0 ? est.bandwidth_mb_s : p_.default_mb_s;
  return est.latency_ns + static_cast<double>(bytes) * 1.0e3 / mb_s;
}

void CostModel::note_incoming(std::uint64_t method, ContextId peer,
                              std::uint64_t wire_bytes, Time oneway_ns) {
  Echo& slot = pending_[peer];
  slot.method = method;
  slot.bytes = wire_bytes;
  slot.oneway_ns = oneway_ns;
}

std::optional<CostModel::Echo> CostModel::take_echo(ContextId peer) {
  const auto it = pending_.find(peer);
  if (it == pending_.end() || it->second.method == 0) return std::nullopt;
  Echo out = it->second;
  it->second.method = 0;  // empty the slot but keep the node allocated
  return out;
}

}  // namespace nexus::adapt
