// Online per-(peer, method) communication cost model.
//
// The paper's automatic selection is static: the descriptor table's order
// *is* the policy (§3.2).  This model supplies the missing measurements so
// selection can react to observed service conditions: every sample is a
// (method, peer, wire bytes, one-way time) tuple, folded into two
// DecayingEwma estimators per (method, peer) pair -- a latency estimate fed
// by small packets and a bandwidth estimate fed by large ones (after
// subtracting the latency estimate from their one-way time).  Confidence
// rises with samples and halves per configured half-life of silence, so a
// method that stopped being exercised (e.g. while quarantined) decays back
// to "unknown" instead of being trusted forever -- that staleness decay is
// what lets a recovered method win its place back after probation.
//
// Samples arrive from three feeds, all passive on the application's RSRs:
//   * the reliable wrapper's RTT estimator (rtt/2 per Karn-eligible ack),
//   * the timing echo piggybacked on reverse traffic for raw methods
//     (Packet::adapt_* fields; the receiver measures, the next packet back
//     carries the measurement),
//   * the adaptive selector's low-rate active prober (Context::probe_method)
//     for methods with no traffic to learn from.
//
// Methods are keyed by method_hash(name) -- stable across contexts -- so
// the echo protocol needs no name exchange.  All times are virtual
// nanoseconds from the runtime clock; nothing here touches wall time.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>

#include "nexus/types.hpp"
#include "util/stats.hpp"

namespace nexus::adapt {

struct CostModelParams {
  double alpha = 0.25;            ///< EWMA weight per sample
  Time half_life = 500'000'000;   ///< confidence half-life (ns of silence)
  std::uint64_t bw_floor_bytes = 2048;  ///< min wire bytes for a bandwidth
                                        ///< sample; smaller packets feed
                                        ///< the latency estimate
  double default_mb_s = 10.0;     ///< assumed bandwidth when unmeasured
  double min_confidence = 0.05;   ///< below this the estimate is "unknown"
};

/// Snapshot of what the model believes about one (method, peer) pair.
struct CostEstimate {
  bool known = false;            ///< latency estimate exists and is trusted
  double latency_ns = 0.0;
  double bandwidth_mb_s = 0.0;   ///< 0 = unmeasured (predictions assume
                                 ///< CostModelParams::default_mb_s)
  double latency_confidence = 0.0;
  double bandwidth_confidence = 0.0;
};

class CostModel {
 public:
  explicit CostModel(CostModelParams p = {}) : p_(p) {}

  const CostModelParams& params() const noexcept { return p_; }

  /// Fold in one observed transfer: `wire_bytes` crossed to `peer` via the
  /// method hashing to `method` in `oneway_ns`.  Small packets update the
  /// latency estimate; large ones update bandwidth once a latency estimate
  /// exists to subtract (otherwise they provisionally feed latency so the
  /// model is never starved).
  void observe(std::uint64_t method, ContextId peer, std::uint64_t wire_bytes,
               Time oneway_ns, Time now);

  /// RTT-based feed (reliable wrapper): assumes a symmetric path and
  /// records rtt/2 as the one-way time.
  void observe_rtt(std::uint64_t method, ContextId peer,
                   std::uint64_t wire_bytes, Time rtt_ns, Time now) {
    observe(method, peer, wire_bytes, rtt_ns / 2, now);
  }

  CostEstimate estimate(std::uint64_t method, ContextId peer,
                        Time now) const;

  /// Predicted one-way cost of sending `bytes` to `peer` via `method`:
  /// latency + bytes / bandwidth (the classic crossover model).  Unmeasured
  /// bandwidth falls back to params().default_mb_s; an unknown or stale
  /// latency estimate yields nullopt -- the caller should then fall back to
  /// static ranking rather than trust a guess.
  std::optional<double> predict_ns(std::uint64_t method, ContextId peer,
                                   std::uint64_t bytes, Time now) const;

  // --- timing-echo bookkeeping (receiver side) ---
  // The receiver of a packet measures its one-way time but it is the
  // *sender's* model that needs the sample, so the receiver parks it here
  // and the next outgoing packet to that peer carries it home
  // (Packet::adapt_* fields).  One slot per peer: a fresher measurement
  // overwrites an unsent one, which is fine -- this is a sampling channel,
  // not a ledger.
  struct Echo {
    std::uint64_t method = 0;  ///< 0 = slot empty
    std::uint64_t bytes = 0;
    Time oneway_ns = 0;
  };

  /// Park a measurement about traffic *from* `peer` for echoing back.
  void note_incoming(std::uint64_t method, ContextId peer,
                     std::uint64_t wire_bytes, Time oneway_ns);

  /// Claim the pending echo for `peer`, if any, emptying the slot.
  std::optional<Echo> take_echo(ContextId peer);

  /// Drop every estimate and parked echo about `peer`.  Called when the
  /// peer is declared dead: measurements of its previous life would poison
  /// selection for its next incarnation.
  void evict_peer(ContextId peer) {
    std::erase_if(entries_,
                  [peer](const auto& kv) { return kv.first.second == peer; });
    pending_.erase(peer);
  }

  /// Forget everything (local crash/restart: in-memory state is lost).
  void clear() {
    entries_.clear();
    pending_.clear();
  }

  /// Total samples folded in (enquiry/tests).
  std::uint64_t samples() const noexcept { return samples_; }

  /// Enumerate every (method hash, peer) pair with a live entry -- the
  /// metrics export path uses this to snapshot the model's estimates;
  /// `fn` receives (method, peer, estimate).
  template <typename Fn>
  void for_each(Time now, Fn&& fn) const {
    for (const auto& [key, entry] : entries_) {
      fn(key.first, key.second, estimate(key.first, key.second, now));
    }
  }

 private:
  struct Entry {
    util::DecayingEwma latency;
    util::DecayingEwma bandwidth;
    Entry(double alpha, Time half_life)
        : latency(alpha, static_cast<double>(half_life)),
          bandwidth(alpha, static_cast<double>(half_life)) {}
  };

  Entry& entry(std::uint64_t method, ContextId peer);
  const Entry* find(std::uint64_t method, ContextId peer) const;

  CostModelParams p_;
  std::map<std::pair<std::uint64_t, ContextId>, Entry> entries_;
  std::map<ContextId, Echo> pending_;  ///< echo slots; emptied via method=0
  std::uint64_t samples_ = 0;
};

}  // namespace nexus::adapt
