#include "nexus/adapt/reranker.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace nexus::adapt {

bool rerank_table(DescriptorTable& table, const CostModel& model,
                  ContextId target, std::uint64_t ref_bytes, Time now) {
  const std::size_t n = table.size();
  if (n < 2) return false;
  std::vector<double> cost(n);
  bool any_modeled = false;
  for (std::size_t i = 0; i < n; ++i) {
    const auto c =
        model.predict_ns(method_hash(table.at(i).method), target, ref_bytes,
                         now);
    cost[i] = c ? *c : std::numeric_limits<double>::infinity();
    if (c) any_modeled = true;
  }
  if (!any_modeled) return false;
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  std::stable_sort(perm.begin(), perm.end(),
                   [&](std::size_t a, std::size_t b) {
                     return cost[a] < cost[b];
                   });
  bool changed = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (perm[i] != i) {
      changed = true;
      break;
    }
  }
  if (changed) table.reorder(perm);
  return changed;
}

}  // namespace nexus::adapt
