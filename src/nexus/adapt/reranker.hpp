// Live descriptor-table reranking from the cost model.
//
// The paper's manual reorder controls (prioritize / insert / remove,
// §3.2) let an application encode "fastest first" by hand; the reranker
// drives the same knob automatically: it rewrites a table's priority
// order by modeled cost, so even the size-blind FirstApplicableSelector
// ends up scanning fastest-first as *measured*, not as guessed at table
// construction time.  Entries the model has no confident estimate for
// keep their relative order behind the modeled ones (before any traffic
// nothing is modeled and the table is left untouched).
//
// The context triggers this per link every `adapt.rerank_ms` of virtual
// time when the adaptive engine is enabled, and applications can invoke
// it directly via Context::rerank(sp).
#pragma once

#include <cstdint>

#include "nexus/adapt/cost_model.hpp"
#include "nexus/descriptor.hpp"

namespace nexus::adapt {

/// Reorder `table` (reaching `target`) by modeled cost of a
/// `ref_bytes`-payload send at virtual time `now`.  Stable: unmodeled
/// entries sink behind modeled ones without reshuffling among themselves.
/// Returns true when the order actually changed (the caller must then
/// invalidate cached selections).
bool rerank_table(DescriptorTable& table, const CostModel& model,
                  ContextId target, std::uint64_t ref_bytes, Time now);

}  // namespace nexus::adapt
