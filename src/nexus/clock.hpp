// Context clock strategies: virtual time (simulated fabric) or wall time.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "nexus/types.hpp"
#include "simnet/process.hpp"

namespace nexus {

/// Abstracts how a context experiences time.  The polling engine charges
/// poll costs through advance(); applications charge computation the same
/// way; idle_wait() parks the context until communication may have arrived.
class ContextClock {
 public:
  virtual ~ContextClock() = default;
  virtual Time now() const = 0;
  virtual void advance(Time dt) = 0;
  virtual void idle_wait() = 0;
  virtual bool simulated() const = 0;
};

/// Virtual time: forwards to the owning SimProcess.
class SimClock final : public ContextClock {
 public:
  explicit SimClock(simnet::SimProcess& proc) : proc_(&proc) {}
  Time now() const override { return proc_->now(); }
  void advance(Time dt) override { proc_->advance(dt); }
  void idle_wait() override { proc_->block(); }
  bool simulated() const override { return true; }
  simnet::SimProcess& process() noexcept { return *proc_; }

 private:
  simnet::SimProcess* proc_;
};

/// Shared wakeup channel for a realtime context: realtime devices notify it
/// whenever they enqueue traffic so idle_wait() can park cheaply.
class RtActivity {
 public:
  /// Hot path: one atomic increment; the mutex/condvar is touched only
  /// while a waiter is actually parked (seq_cst pairing with the waiter's
  /// flag, Dekker-style, so no wakeup is lost).
  void notify() {
    events_.fetch_add(1, std::memory_order_seq_cst);
    if (waiting_.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> lock(mutex_);
      cv_.notify_all();
    }
  }

  /// Wait until notify() has been called since the last wait, or timeout.
  void wait(std::chrono::microseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    const std::uint64_t seen = events_.load(std::memory_order_seq_cst);
    waiting_.store(true, std::memory_order_seq_cst);
    // Re-check after publishing the flag: a notify whose increment predates
    // the flag store is visible here; a later one sees the flag.
    cv_.wait_for(lock, timeout, [&] {
      return events_.load(std::memory_order_seq_cst) != seen;
    });
    waiting_.store(false, std::memory_order_seq_cst);
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<std::uint64_t> events_{0};
  std::atomic<bool> waiting_{false};
};

/// Wall-clock time relative to runtime start.  advance() really sleeps, so
/// realtime examples can model computation phases; poll costs are zero here
/// because realtime polls pay their cost for real.
class RtClock final : public ContextClock {
 public:
  RtClock(std::chrono::steady_clock::time_point epoch,
          std::shared_ptr<RtActivity> activity)
      : epoch_(epoch), activity_(std::move(activity)) {}

  Time now() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }
  void advance(Time dt) override {
    if (dt > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(dt));
  }
  void idle_wait() override {
    activity_->wait(std::chrono::microseconds(200));
  }
  bool simulated() const override { return false; }
  const std::shared_ptr<RtActivity>& activity() const { return activity_; }

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::shared_ptr<RtActivity> activity_;
};

}  // namespace nexus
