#include "nexus/context.hpp"

#include <algorithm>
#include <cassert>
#include <mutex>

#include "nexus/adapt/adaptive_selector.hpp"
#include "nexus/adapt/reranker.hpp"
#include "nexus/runtime.hpp"
#include "nexus/telemetry/json.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace nexus {

namespace {
constexpr EndpointId kRootEndpointId = 1;
constexpr std::uint8_t kMaxForwardHops = 8;
}  // namespace

/// Realtime-only: dedicated thread servicing one method's blocking poll.
struct Context::BlockingPoller {
  Context* ctx;
  CommModule* module;
  std::thread thread;

  BlockingPoller(Context& c, CommModule& m) : ctx(&c), module(&m) {
    thread = std::thread([this] {
      while (auto pkt = module->blocking_poll()) {
        std::lock_guard<std::recursive_mutex> lock(*ctx->rt_mutex_);
        if (pkt->corrupted) {
          // Receiver-side quarantine: a fault rule damaged the packet in
          // flight; never dispatch it.
          module->counters().recv_corrupt += 1;
          continue;
        }
        module->counters().recvs += 1;
        module->counters().bytes_received += pkt->wire_size();
        ctx->deliver(std::move(*pkt), module);
      }
    });
  }

  ~BlockingPoller() {
    module->shutdown_blocking();
    if (thread.joinable()) thread.join();
  }
};

Context::Context(Runtime& runtime, ContextId id,
                 std::unique_ptr<ContextClock> clock, SimCostParams costs)
    : runtime_(&runtime), id_(id), clock_(std::move(clock)), costs_(costs) {
  engine_ = std::make_unique<PollingEngine>(
      *clock_,
      [this](Packet p, CommModule* via) { deliver(std::move(p), via); },
      costs_.poll_iteration_overhead, costs_.blocking_check_cost);
  tele_ = &runtime.telemetry();
  cmetrics_ = &tele_->metrics().context(id_);
  flight_ = tele_->flight(id_);
  engine_->attach_telemetry(*tele_, id_);
  selector_ = std::make_unique<FirstApplicableSelector>();
  // Per-context jitter stream: contexts probing the same dead method must
  // not re-probe in lock-step.
  health_ = HealthTracker(runtime.options().health,
                          runtime.options().seed ^ (0x48ea17ull * (id_ + 1)));
  if (!clock_->simulated()) {
    rt_mutex_ = std::make_unique<std::recursive_mutex>();
  }
  // Adaptive transport engine (docs/ARCHITECTURE.md §11): the cost model is
  // always constructed (enquiries may inspect it) but only fed while
  // adapt_enabled_; enablement comes from RuntimeOptions, the database, or
  // installing a payload-aware selector later.
  const util::ResourceDb& db = runtime.db();
  adapt::CostModelParams cmp;
  cmp.alpha = db.get_double("adapt.alpha", cmp.alpha);
  cmp.half_life =
      db.get_scoped_int(id_, "adapt.half_life_ms", 500) * 1'000'000;
  cmp.bw_floor_bytes = static_cast<std::uint64_t>(
      db.get_scoped_int(id_, "adapt.bw_floor_bytes", 2048));
  cmp.default_mb_s = db.get_double("adapt.default_mb_s", cmp.default_mb_s);
  cost_model_ = std::make_unique<adapt::CostModel>(cmp);
  adapt_enabled_ = runtime.options().adaptive || db.get_bool("adapt.enabled",
                                                             false);
  adapt_rerank_interval_ =
      db.get_scoped_int(id_, "adapt.rerank_ms", 200) * 1'000'000;
  adapt_rerank_bytes_ = static_cast<std::uint64_t>(
      db.get_scoped_int(id_, "adapt.rerank_bytes", 1024));
  // Robustness layer (docs §14): redelivery budget per dead-lettered RSR
  // (0 keeps the pre-robustness throw-on-exhaustion contract), dead-letter
  // queue bound, and the grace every applicable method must stay Dead for
  // before a peer is declared down.
  retry_budget_ = static_cast<std::uint32_t>(
      db.get_scoped_int(id_, "robust.retry_budget", 0));
  deadletter_cap_ = static_cast<std::size_t>(
      db.get_scoped_int(id_, "robust.deadletter_cap", 64));
  peer_grace_ = db.get_scoped_int(id_, "robust.peer_grace_ms", 200) *
                1'000'000;
  register_adapt_handlers();
  auto root = std::unique_ptr<Endpoint>(new Endpoint(id_, kRootEndpointId));
  root_ = root.get();
  endpoints_.emplace(kRootEndpointId, std::move(root));
  next_endpoint_id_ = kRootEndpointId + 1;
}

Context::~Context() = default;

std::size_t Context::world_size() const { return runtime_->world_size(); }

const util::ResourceDb& Context::config() const { return runtime_->db(); }

void Context::compute_with_polling(Time total, Time chunk) {
  if (chunk <= 0) {
    throw util::UsageError("compute_with_polling requires a positive chunk");
  }
  while (total > 0) {
    maybe_crash();
    const Time step = std::min(chunk, total);
    clock_->advance(step);
    total -= step;
    engine_->poll_once();
  }
}

Endpoint& Context::create_endpoint() {
  const EndpointId id = next_endpoint_id_++;
  auto ep = std::unique_ptr<Endpoint>(new Endpoint(id_, id));
  Endpoint& ref = *ep;
  endpoints_.emplace(id, std::move(ep));
  return ref;
}

Endpoint& Context::endpoint(EndpointId id) {
  auto it = endpoints_.find(id);
  if (it == endpoints_.end()) {
    throw util::UsageError("no endpoint with id " + std::to_string(id) +
                           " in context " + std::to_string(id_));
  }
  return *it->second;
}

bool Context::has_endpoint(EndpointId id) const {
  return endpoints_.contains(id);
}

void Context::destroy_endpoint(EndpointId id) {
  if (id == kRootEndpointId) {
    throw util::UsageError("the root endpoint cannot be destroyed");
  }
  if (endpoints_.erase(id) == 0) {
    throw util::UsageError("destroy_endpoint: no endpoint with id " +
                           std::to_string(id));
  }
}

HandlerId Context::register_handler(std::string_view name, Handler fn,
                                    HandlerKind kind) {
  const HandlerId id = handlers_.add(name, std::move(fn), kind);
  // Intern the telemetry label once at registration: the dispatch path can
  // then stamp events without ever touching the tracer's label mutex.
  if (HandlerTable::Entry* e = handlers_.find(id)) {
    e->trace_label = tele_->tracer().intern(name);
  }
  return id;
}

void Context::bind(Startpoint& sp, const Endpoint& ep) const {
  if (ep.context_id() != id_) {
    throw util::UsageError(
        "bind: startpoints are bound to local endpoints; ship the startpoint "
        "(not the endpoint) to remote contexts");
  }
  Startpoint::Link link;
  link.context = id_;
  link.endpoint = ep.id();
  link.table = local_table_;
  sp.links_.push_back(std::move(link));
}

Startpoint Context::startpoint_to(const Endpoint& ep) const {
  Startpoint sp;
  bind(sp, ep);
  return sp;
}

Startpoint Context::world_startpoint(ContextId target) const {
  Startpoint sp;
  Startpoint::Link link;
  link.context = target;
  link.endpoint = kRootEndpointId;
  // Unknown / never-registered targets get an empty table instead of a
  // throw from deep in the descriptor registry: the rsr() path reports them
  // as DeliveryStatus::Dead with a send_errors increment (both fabrics).
  if (target < runtime_->world_size()) {
    link.table = runtime_->table_of(target);
  }
  sp.links_.push_back(std::move(link));
  return sp;
}

Context::MethodId Context::intern_method(std::string_view name) {
  auto it = method_ids_.find(name);
  if (it != method_ids_.end()) return it->second;
  const MethodId id = static_cast<MethodId>(method_ids_.size());
  method_ids_.emplace(std::string(name), id);
  return id;
}

std::string Context::health_json() const {
  // Interned ids back to names for the export snapshot.
  std::vector<std::string_view> names(method_ids_.size());
  for (const auto& [name, mid] : method_ids_) names[mid] = name;
  std::string out = "{\"context\":" + std::to_string(id_) + ",\"entries\":[";
  bool first = true;
  health_.for_each(now(), [&](const HealthTracker::Key& key,
                              const HealthTracker::Status& s) {
    if (!first) out += ",";
    first = false;
    const std::string_view name =
        key.first < names.size() ? names[key.first] : std::string_view{};
    out += "{\"method\":" + telemetry::json_quote(name) +
           ",\"target\":" + std::to_string(key.second) + ",\"state\":\"" +
           method_health_name(s.state) +
           "\",\"failures\":" + std::to_string(s.failures) +
           ",\"failovers\":" + std::to_string(s.failovers) +
           ",\"restores\":" + std::to_string(s.restores) + "}";
  });
  out += "]}";
  return out;
}

std::string Context::cost_model_json() const {
  std::string out = "{\"context\":" + std::to_string(id_) + ",\"entries\":[";
  // The model keys methods by method_hash(name); resolve names from this
  // context's module set (unknown hashes render numerically).
  std::map<std::uint64_t, std::string_view> names;
  for (const auto& m : modules_) names.emplace(method_hash(m->name()),
                                               m->name());
  bool first = true;
  cost_model_->for_each(now(), [&](std::uint64_t method, ContextId peer,
                                   const adapt::CostEstimate& e) {
    if (!first) out += ",";
    first = false;
    out += "{\"method\":";
    auto it = names.find(method);
    out += it != names.end() ? telemetry::json_quote(it->second)
                             : std::to_string(method);
    out += ",\"peer\":" + std::to_string(peer);
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  ",\"known\":%s,\"latency_ns\":%.1f,\"bandwidth_mb_s\":%.2f,"
                  "\"confidence\":%.3f}",
                  e.known ? "true" : "false", e.latency_ns, e.bandwidth_mb_s,
                  e.latency_confidence);
    out += buf;
  });
  out += "]}";
  return out;
}

std::shared_ptr<CommObject> Context::cached_connection(
    const CommDescriptor& d) {
  const auto key = std::make_pair(intern_method(d.method), d.context);
  auto it = connections_.find(key);
  if (it != connections_.end()) return it->second;
  CommModule* m = module(d.method);
  if (m == nullptr) {
    throw util::MethodError("method '" + d.method +
                            "' is not loaded in context " +
                            std::to_string(id_));
  }
  auto conn = std::shared_ptr<CommObject>(m->connect(d));
  connections_.emplace(key, conn);
  return conn;
}

bool Context::method_usable(const CommDescriptor& d) {
  CommModule* m = module(d.method);
  if (m == nullptr || !m->applicable(d)) return false;
  return health_.empty() || health_usable(d);
}

bool Context::health_usable(const CommDescriptor& d) {
  return health_.usable(intern_method(d.method), d.context, now());
}

HealthTracker::Status Context::method_health(std::string_view method,
                                             ContextId target) {
  return health_.status(intern_method(method), target, now());
}

std::optional<std::size_t> Context::quarantined_fallback(
    const DescriptorTable& table) {
  // Everything applicable is quarantined.  Dropping the RSR would turn a
  // transient outage into data loss, so probe the entry whose backoff
  // expires soonest (least-recently-declared-dead) instead.
  std::optional<std::size_t> best;
  Time best_retry = 0;
  for (std::size_t i = 0; i < table.size(); ++i) {
    const CommDescriptor& d = table.at(i);
    CommModule* m = module(d.method);
    if (m == nullptr || !m->applicable(d)) continue;
    const Time retry =
        health_.status(intern_method(d.method), d.context, now()).retry_at;
    if (!best || retry < best_retry) {
      best = i;
      best_retry = retry;
    }
  }
  return best;
}

void Context::refresh_link_degradation(Startpoint::Link& link,
                                       std::size_t winner) {
  link.degraded = false;
  link.reprobe_at = 0;
  if (health_.empty()) return;
  for (std::size_t i = 0; i < link.table.size(); ++i) {
    if (i == winner) continue;
    const CommDescriptor& d = link.table.at(i);
    CommModule* m = module(d.method);
    if (m == nullptr || !m->applicable(d)) continue;
    if (health_usable(d)) continue;
    const Time retry =
        health_.status(intern_method(d.method), d.context, now()).retry_at;
    if (!link.degraded || retry < link.reprobe_at) {
      link.degraded = true;
      link.reprobe_at = retry;
    }
  }
}

void Context::evict_connection(Startpoint::Link& link) {
  if (link.conn) {
    // Purge every cache entry sharing the dead connection: the link-level
    // cache, the (method, context) connection cache, and any forwarding
    // routes that would keep resurrecting it.
    std::erase_if(connections_, [&](const auto& kv) {
      return kv.second == link.conn;
    });
    std::erase_if(forward_routes_, [&](const auto& kv) {
      return kv.second == link.conn;
    });
  }
  link.conn.reset();
  link.selected_method.clear();
  link.degraded = false;
  link.reprobe_at = 0;
}

void Context::ensure_connection(const Startpoint& sp, Startpoint::Link& link,
                                std::uint64_t payload_bytes) {
  if (adapt_enabled_) maybe_rerank(link);
  if (link.conn) {
    if (link.degraded && now() >= link.reprobe_at) {
      // A quarantined entry's backoff has expired: re-run selection so the
      // restored method can win the link back (the next send is its probe).
      // The existing connection stays in the cache -- if selection picks the
      // same method again, cached_connection returns it unchanged.
      link.conn.reset();
      link.selected_method.clear();
      link.degraded = false;
      link.reprobe_at = 0;
    } else if (selector_->payload_aware() && !sp.forced_method()) {
      // Payload-aware policies re-decide per RSR: the selector's cached
      // per-(peer, class) decision makes this a cheap check, and the link
      // only swaps connections when the class winner actually differs.
      std::string reason;
      const auto idx =
          selector_->select_sized(link.table, *this, payload_bytes, reason);
      if (idx) {
        const CommDescriptor& d = link.table.at(*idx);
        if (d.method == link.selected_method) return;
        link.conn = cached_connection(d);
        link.selected_method = d.method;
        refresh_link_degradation(link, *idx);
        if (observing()) {
          observe({now(), 0, id_, telemetry::Phase::Select,
                   link.conn->module().trace_label(), *idx, link.context});
        }
        if (!reason.empty()) {
          selection_log_.push_back(SelectionRecord{link.context, d.method,
                                                   std::move(reason), now()});
        }
        return;
      }
      // Nothing usable right now (e.g. everything quarantined): fall
      // through to the cold path's quarantined_fallback handling.
      link.conn.reset();
      link.selected_method.clear();
    } else {
      return;
    }
  }
  std::string reason;
  std::optional<std::size_t> idx;
  if (sp.forced_method()) {
    const std::string& method = *sp.forced_method();
    idx = link.table.find(method);
    if (!idx) {
      throw util::MethodError("forced method '" + method +
                              "' is not in the link's descriptor table");
    }
    CommModule* m = module(method);
    if (m == nullptr || !m->applicable(link.table.at(*idx))) {
      throw util::MethodError("forced method '" + method +
                              "' is not applicable from context " +
                              std::to_string(id_) + " to context " +
                              std::to_string(link.context));
    }
    reason = "forced by application";
  } else {
    idx = selector_->select_sized(link.table, *this, payload_bytes, reason);
    if (idx && reason.empty()) reason = "cached per-peer decision";
    if (!idx) {
      idx = quarantined_fallback(link.table);
      if (idx) {
        reason = "all applicable methods quarantined; probing the entry "
                 "whose backoff expires soonest";
      }
    }
    if (!idx) {
      throw util::MethodError(
          "no applicable communication method from context " +
          std::to_string(id_) + " to context " + std::to_string(link.context));
    }
  }
  const CommDescriptor& d = link.table.at(*idx);
  link.conn = cached_connection(d);
  link.selected_method = d.method;
  refresh_link_degradation(link, *idx);
  if (observing()) {
    observe({now(), 0, id_, telemetry::Phase::Select,
             link.conn->module().trace_label(), *idx, link.context});
  }
  selection_log_.push_back(SelectionRecord{link.context, d.method,
                                           std::move(reason), now()});
}

SendResult Context::send_on_link(Startpoint::Link& link, HandlerId h,
                                 const util::SharedBytes& payload,
                                 telemetry::SpanId span,
                                 std::uint64_t trace) {
  // The Packet is rebuilt per attempt (send() consumes it even on failure);
  // construction is cheap and the payload buffer is aliased, never copied.
  Packet pkt;
  pkt.src = id_;
  pkt.dst = link.context;
  pkt.endpoint = link.endpoint;
  pkt.handler = h;
  pkt.payload = payload;  // aliases the caller's buffer: two atomic ops
  pkt.span = span;
  pkt.trace = trace;
  pkt.incarnation = incarnation_;
  if (adapt_enabled_) {
    // Piggyback any pending timing echo for this peer (docs §11): the
    // measurement the peer's model is waiting for rides home for free.
    if (auto e = cost_model_->take_echo(link.context)) {
      pkt.adapt_method = e->method;
      pkt.adapt_bytes = e->bytes;
      pkt.adapt_oneway = e->oneway_ns;
    }
  }

  clock_->advance(costs_.rsr_send_overhead);
  pkt.sent_at = now();
  CommModule& m = link.conn->module();
  const SendResult r = m.send(*link.conn, std::move(pkt));
  m.counters().sends += 1;
  if (!r.ok()) {
    m.counters().send_errors += 1;
    return r;
  }
  m.counters().bytes_sent += r.wire;
  if (tele_->metrics().enabled() && m.metrics() != nullptr) {
    m.metrics()->send_bytes.add(r.wire);
  }
  if (observing()) {
    observe({now(), span, id_, telemetry::Phase::Send, m.trace_label(),
             r.wire, link.context, 0, trace});
  }
  if (runtime_->trace().enabled()) {
    runtime_->trace().record({now(), id_, simnet::TraceKind::Send,
                              std::string(m.name()), r.wire, ""});
  }
  return r;
}

void Context::note_send_success(MethodId mid, ContextId target,
                                std::uint16_t trace_label,
                                telemetry::SpanId span, std::uint64_t trace) {
  const MethodHealth prev = health_.status(mid, target, now()).state;
  if (!health_.on_success(mid, target)) return;
  if (prev == MethodHealth::Dead || prev == MethodHealth::Probation) {
    // A restore probe succeeded: the quarantined method is back in use.
    ++cmetrics_->restores;
    if (observing()) {
      observe({now(), span, id_, telemetry::Phase::Restore, trace_label, 0,
               target, 0, trace});
    }
  }
  // Rebirth: any successful send to a declared-dead peer un-declares it and
  // drains its parked dead letters.
  if (!dead_peers_.empty() && dead_peers_.erase(target) != 0) {
    ++cmetrics_->peer_reborns;
    if (observing()) {
      observe({now(), span, id_, telemetry::Phase::PeerReborn, trace_label, 0,
               target, 0, trace});
    }
    redeliver_deadletters(target);
  }
}

HealthTracker::FailAction Context::note_send_failure(MethodId mid,
                                                     ContextId target,
                                                     std::uint16_t trace_label,
                                                     DeliveryStatus status,
                                                     telemetry::SpanId span,
                                                     std::uint64_t trace) {
  const MethodHealth prev = health_.status(mid, target, now()).state;
  const HealthTracker::FailAction action = health_.on_failure(
      mid, target, now(), /*hard=*/status == DeliveryStatus::Dead);
  if (prev == MethodHealth::Healthy) {
    ++cmetrics_->suspects;
    if (observing()) {
      observe({now(), span, id_, telemetry::Phase::Suspect, trace_label, 0,
               target, 0, trace});
    }
  }
  if (action == HealthTracker::FailAction::Failover) {
    ++cmetrics_->failovers;
    if (observing()) {
      observe({now(), span, id_, telemetry::Phase::Failover, trace_label, 0,
               target, 0, trace});
    }
    // A quarantine is one of the flight recorder's dump triggers: the
    // post-mortem should show what led up to the method being declared
    // dead.  No-op unless a flight dir is configured.
    tele_->dump_flight("quarantine");
    // Escalation: a quarantine may have been the last method standing.
    maybe_declare_peer_dead(target);
  }
  return action;
}

void Context::maybe_declare_peer_dead(ContextId target) {
  if (target == id_ || target >= world_size()) return;
  if (dead_peers_.find(target) != dead_peers_.end()) return;
  // Down only when EVERY applicable method to the peer has been raw-Dead
  // (no Probation derivation -- an expired backoff means "will probe", not
  // "recovered") continuously for at least the grace period.
  const DescriptorTable& table = runtime_->table_of(target);
  bool any_applicable = false;
  for (std::size_t i = 0; i < table.size(); ++i) {
    const CommDescriptor& d = table.at(i);
    CommModule* m = module(d.method);
    if (m == nullptr || !m->applicable(d)) continue;
    any_applicable = true;
    const HealthTracker::Status s =
        health_.raw_status(intern_method(d.method), d.context);
    if (s.state != MethodHealth::Dead || s.died_at == 0 ||
        s.died_at + peer_grace_ > now()) {
      return;
    }
  }
  if (!any_applicable) return;
  dead_peers_.insert(target);
  ++cmetrics_->peer_deaths;
  if (observing()) {
    observe({now(), 0, id_, telemetry::Phase::PeerDead, 0, 0, target});
  }
  // Peer death is a flight-recorder dump trigger: the post-mortem should
  // show the failure cascade that killed every method.
  tele_->dump_flight("peer-death");
  // Evict everything cached about the dead peer: connections, forwarding
  // routes, and cost-model rows (measurements of its previous life would
  // poison selection for its next incarnation).
  std::erase_if(connections_,
                [target](const auto& kv) { return kv.first.second == target; });
  forward_routes_.erase(target);
  cost_model_->evict_peer(target);
}

void Context::redeliver_deadletters(ContextId target) {
  if (deadletters_.empty()) return;
  std::deque<DeadLetter> mine;
  std::erase_if(deadletters_, [&](DeadLetter& dl) {
    if (dl.target != target) return false;
    mine.push_back(std::move(dl));
    return true;
  });
  for (DeadLetter& dl : mine) {
    if (dl.budget == 0) {
      ++cmetrics_->deadletter_drops;
      continue;
    }
    --dl.budget;
    Startpoint sp;
    Startpoint::Link link;
    link.context = dl.target;
    link.endpoint = dl.endpoint;
    link.table = runtime_->table_of(dl.target);
    sp.links_.push_back(std::move(link));
    const bool obs = observing();
    const telemetry::SpanId span = obs ? next_span() : 0;
    const std::uint64_t trace = obs ? next_trace() : 0;
    if (send_with_failover(sp, sp.links_[0], dl.handler, dl.payload, span,
                           trace) == DeliveryStatus::Ok) {
      ++cmetrics_->deadletter_redeliveries;
    } else if (dl.budget == 0) {
      ++cmetrics_->deadletter_drops;
    } else if (deadletters_.size() >= deadletter_cap_) {
      ++cmetrics_->deadletter_drops;
    } else {
      deadletters_.push_back(std::move(dl));
    }
  }
}

DeliveryStatus Context::send_with_failover(Startpoint& sp,
                                           Startpoint::Link& link, HandlerId h,
                                           const util::SharedBytes& payload,
                                           telemetry::SpanId span,
                                           std::uint64_t trace) {
  // Bounded by the worst case of every table entry walking through its full
  // failure threshold plus a few restore probes; a healthy fabric exits on
  // the first iteration.
  const std::uint64_t max_attempts =
      health_.params().fail_threshold * (link.table.size() + 1) + 8;
  std::uint64_t failures = 0;
  for (;;) {
    ensure_connection(sp, link, payload.size());
    const SendResult r = send_on_link(link, h, payload, span, trace);
    if (r.ok()) {
      if (!health_.empty()) {
        note_send_success(intern_method(link.selected_method), link.context,
                          link.conn->module().trace_label(), span, trace);
      }
      if (failures > 0 && tele_->metrics().enabled()) {
        cmetrics_->rsr_retries.add(failures);
      }
      return DeliveryStatus::Ok;
    }
    ++failures;
    const MethodId mid = intern_method(link.selected_method);
    const HealthTracker::FailAction action = note_send_failure(
        mid, link.context, link.conn->module().trace_label(), r.status, span,
        trace);
    if (failures >= max_attempts) {
      if (retry_budget_ > 0) {
        // Dead-letter discipline (docs §14): hand the verdict back so the
        // caller parks the RSR instead of retrying forever or throwing.
        evict_connection(link);
        return DeliveryStatus::Dead;
      }
      throw util::MethodError(
          "rsr to context " + std::to_string(link.context) + " failed " +
          std::to_string(failures) + " times across every applicable method");
    }
    if (sp.forced_method()) {
      if (action == HealthTracker::FailAction::Failover) {
        throw util::MethodError(
            "forced method '" + *sp.forced_method() + "' to context " +
            std::to_string(link.context) +
            " was declared dead (failover is disabled while a method is "
            "forced)");
      }
      continue;  // transient: retry the forced method
    }
    if (action == HealthTracker::FailAction::Retry) continue;
    // Failover: drop the dead connection and let selection pick the next
    // applicable method (the health gate now excludes the quarantined one).
    selection_log_.push_back(SelectionRecord{
        link.context, link.selected_method,
        "failover: method declared dead after " +
            std::to_string(health_.status(mid, link.context, now()).failures) +
            " failures",
        now()});
    evict_connection(link);
  }
}

bool Context::try_send_once(Startpoint& sp, Startpoint::Link& link,
                            HandlerId h, const util::SharedBytes& payload,
                            telemetry::SpanId span, std::uint64_t trace) {
  // One bounded attempt toward a declared-dead peer: the rebirth probe.
  // Selection may throw (e.g. everything still quarantined with no
  // fallback); that is just "still dead" here, never an RSR failure.
  try {
    ensure_connection(sp, link, payload.size());
  } catch (const util::MethodError&) {
    return false;
  }
  const SendResult r = send_on_link(link, h, payload, span, trace);
  const MethodId mid = intern_method(link.selected_method);
  const std::uint16_t label = link.conn->module().trace_label();
  if (r.ok()) {
    // Runs the restore path, which un-declares the peer and drains its
    // dead letters (this RSR itself was already delivered, so it is NOT
    // in the queue -- no duplicate delivery).
    note_send_success(mid, link.context, label, span, trace);
    return true;
  }
  note_send_failure(mid, link.context, label, r.status, span, trace);
  evict_connection(link);
  return false;
}

void Context::deadletter(const Startpoint::Link& link, HandlerId h,
                         const util::SharedBytes& payload,
                         telemetry::SpanId span, std::uint64_t trace) {
  if (deadletters_.size() >= deadletter_cap_) {
    deadletters_.pop_front();  // bounded queue: oldest letter is dropped
    ++cmetrics_->deadletter_drops;
  }
  deadletters_.push_back(
      DeadLetter{link.context, link.endpoint, h, payload, retry_budget_});
  ++cmetrics_->deadletters;
  if (observing()) {
    observe({now(), span, id_, telemetry::Phase::Deadletter, 0,
             payload.size(), link.context, 0, trace});
  }
}

DeliveryStatus Context::rsr(Startpoint& sp, HandlerId handler,
                            util::SharedBytes payload) {
  return rsr_impl(sp, handler, std::move(payload), 0);
}

DeliveryStatus Context::rsr_traced(Startpoint& sp, HandlerId handler,
                                   util::SharedBytes payload,
                                   std::uint64_t trace) {
  return rsr_impl(sp, handler, std::move(payload), trace);
}

DeliveryStatus Context::rsr_traced(Startpoint& sp, HandlerId handler,
                                   const util::PackBuffer& args,
                                   std::uint64_t trace) {
  return rsr_impl(sp, handler, util::SharedBytes::copy_of(args.bytes()),
                  trace);
}

DeliveryStatus Context::rsr_impl(Startpoint& sp, HandlerId handler,
                                 util::SharedBytes payload,
                                 std::uint64_t trace_override) {
  if (!sp.bound()) {
    throw util::UsageError("rsr on an unbound startpoint");
  }
  std::unique_lock<std::recursive_mutex> lock;
  if (rt_mutex_) lock = std::unique_lock<std::recursive_mutex>(*rt_mutex_);
  maybe_crash();

  ++rsrs_sent_;
  // One root span and one trace id per RSR: every link of a multicast shares
  // them, and forwarding nodes allocate child spans under the same trace, so
  // send and dispatch line up causally across contexts.  A caller-supplied
  // trace (the RPC layer) extends an existing causal chain instead.
  const bool obs = observing();
  const telemetry::SpanId span = obs ? next_span() : 0;
  const std::uint64_t trace =
      trace_override != 0 ? trace_override : (obs ? next_trace() : 0);
  DeliveryStatus worst = DeliveryStatus::Ok;
  for (auto& link : sp.links_) {
    // Unknown / never-registered target: report Dead instead of throwing
    // from deep inside the descriptor registry (group pseudo-contexts at or
    // above kGroupContextBase are real multicast addresses, not errors).
    if (link.context >= world_size() && link.context < kGroupContextBase) {
      ++cmetrics_->send_errors;
      worst = DeliveryStatus::Dead;
      continue;
    }
    if (retry_budget_ > 0 && is_peer_dead(link.context)) {
      // Dead peer: one probe attempt with the real payload.  Success runs
      // the rebirth path (and this RSR is delivered); failure parks it.
      if (!try_send_once(sp, link, handler, payload, span, trace)) {
        deadletter(link, handler, payload, span, trace);
        if (worst == DeliveryStatus::Ok) worst = DeliveryStatus::Transient;
      }
      continue;
    }
    if (send_with_failover(sp, link, handler, payload, span, trace) !=
        DeliveryStatus::Ok) {
      deadletter(link, handler, payload, span, trace);
      if (worst == DeliveryStatus::Ok) worst = DeliveryStatus::Transient;
    }
  }
  // Paper §3.3: the polling function is called at least every time a Nexus
  // operation is performed.
  engine_->poll_once();
  return worst;
}

DeliveryStatus Context::rsr(Startpoint& sp, HandlerId handler,
                            const util::PackBuffer& args) {
  return rsr(sp, handler, util::SharedBytes::copy_of(args.bytes()));
}

DeliveryStatus Context::rsr(Startpoint& sp, HandlerId handler) {
  return rsr(sp, handler, util::SharedBytes{});
}

DeliveryStatus Context::rsr(Startpoint& sp, std::string_view handler,
                            util::SharedBytes payload) {
  return rsr(sp, HandlerTable::id_of(handler), std::move(payload));
}

DeliveryStatus Context::rsr(Startpoint& sp, std::string_view handler,
                            util::Bytes payload) {
  return rsr(sp, HandlerTable::id_of(handler),
             util::SharedBytes(std::move(payload)));
}

DeliveryStatus Context::rsr(Startpoint& sp, std::string_view handler,
                            const util::PackBuffer& args) {
  return rsr(sp, HandlerTable::id_of(handler),
             util::SharedBytes::copy_of(args.bytes()));
}

DeliveryStatus Context::rsr(Startpoint& sp, std::string_view handler) {
  return rsr(sp, HandlerTable::id_of(handler), util::SharedBytes{});
}

void Context::crash_check() {
  const simnet::FaultPlan& plan = *fault_plan_;
  if (!plan.crashed(id_, my_partition_, now())) return;
  const Time end = plan.crash_end(id_, my_partition_, now());
  if (end == simnet::kInfinity) {
    // The virtual clock can never reach infinity; a permanently-dead
    // context is modelled with a finite `until` beyond the workload horizon.
    throw util::UsageError("crash window for context " + std::to_string(id_) +
                           " never ends; use a finite until");
  }
  // Model the outage: everything in memory is lost at the crash instant,
  // the context is silent until the window closes, and traffic that landed
  // mid-outage was addressed to a process that no longer exists -- wipe
  // once on the way down and once on the way back up.
  wipe_comm_state(end);
  clock_->advance(end - now());
  incarnation_ = plan.incarnation(id_, my_partition_, now());
  wipe_comm_state(end);
  if (observing()) {
    // Local reincarnation event; aux carries the new epoch.
    observe({now(), 0, id_, telemetry::Phase::PeerReborn, 0, 0,
             incarnation_});
  }
}

void Context::wipe_comm_state(Time cutoff) {
  if (SimFabric* f = runtime_->sim()) {
    // A crashed process's sockets are gone: drop everything that arrived
    // (or will arrive) before the restart instant.
    for (auto& [name, box] : f->host(id_).boxes) box.purge_before(cutoff);
  }
  connections_.clear();
  forward_routes_.clear();
  // Fresh health history (the old incarnation's quarantines died with it),
  // on a jitter stream that differs per incarnation so reborn probers do
  // not replay their previous life's schedule.
  health_ = HealthTracker(
      runtime_->options().health,
      runtime_->options().seed ^ (0x48ea17ull * (id_ + 1)) ^
          (0x9e3779b97f4a7c15ull * incarnation_));
  cost_model_->clear();
  dead_peers_.clear();
  deadletters_.clear();
  for (auto& m : modules_) m->on_crash_restart();
}

void Context::drain_forwarding(ContextId sibling) {
  if (sibling >= world_size()) {
    throw util::UsageError("drain_forwarding: sibling " +
                           std::to_string(sibling) +
                           " is not a real context");
  }
  draining_ = true;
  drain_sibling_ = sibling;
  // Cached routes send directly; drop them so every relayed packet from
  // here on is re-routed via the sibling.
  forward_routes_.clear();
  // Flush everything already in our mailboxes before the caller kills us.
  while (engine_->poll_once()) {
  }
}

void Context::pack_startpoint(util::PackBuffer& pb,
                              const Startpoint& sp) const {
  const std::size_t before = pb.size();
  pb.put_u32(static_cast<std::uint32_t>(sp.links_.size()));
  for (const auto& link : sp.links_) {
    pb.put_u32(link.context);
    pb.put_u64(link.endpoint);
    // Lightweight startpoint optimization (§3.1): omit the table when it is
    // exactly the runtime's default table for the target context.  Group
    // pseudo-contexts (multicast) always carry their table.
    const bool lightweight =
        link.context < runtime_->world_size() &&
        link.table == runtime_->table_of(link.context);
    pb.put_bool(lightweight);
    if (!lightweight) link.table.pack(pb);
  }
  clock_->advance(static_cast<Time>(pb.size() - before) *
                  costs_.pack_cost_per_byte);
}

Startpoint Context::unpack_startpoint(util::UnpackBuffer& ub) const {
  Startpoint sp;
  const std::uint32_t n = ub.get_u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    Startpoint::Link link;
    link.context = ub.get_u32();
    link.endpoint = ub.get_u64();
    const bool lightweight = ub.get_bool();
    link.table = lightweight ? runtime_->table_of(link.context)
                             : DescriptorTable::unpack(ub);
    sp.links_.push_back(std::move(link));
  }
  return sp;
}

void Context::wait_count(const std::uint64_t& counter, std::uint64_t target) {
  engine_->wait([&] { return counter >= target; });
}

void Context::deliver(Packet pkt, CommModule* via) {
  // On the realtime fabric, deliveries may come from the context's own
  // polling loop and from blocking-poller threads concurrently; the
  // recursive mutex serializes all mutation of endpoints, handlers, and
  // the connection cache (rsr() takes the same lock).
  std::unique_lock<std::recursive_mutex> lock;
  if (rt_mutex_) lock = std::unique_lock<std::recursive_mutex>(*rt_mutex_);
  if (pkt.dst != id_) {
    forward(std::move(pkt));
    return;
  }
  clock_->advance(costs_.dispatch_overhead);
  auto it = endpoints_.find(pkt.endpoint);
  if (it == endpoints_.end()) {
    throw util::UsageError("RSR addressed to unknown endpoint " +
                           std::to_string(pkt.endpoint) + " in context " +
                           std::to_string(id_));
  }
  Endpoint& ep = *it->second;
  if (!handlers_.contains(pkt.handler)) {
    // An RSR naming a handler this context never registered is a protocol
    // error of the *sender*, not a reason to fault the receiver: count it,
    // record a Drop, and move on (mirrors the unknown-peer contract of
    // rsr()).  HandlerTable::lookup still throws the typed HandlerError for
    // paths that want the exception.
    ++cmetrics_->send_errors;
    if (observing()) {
      observe({now(), pkt.span, id_, telemetry::Phase::Drop, 0,
               pkt.payload.size(), pkt.src, 0, pkt.trace});
    }
    return;
  }
  const HandlerTable::Entry& entry = handlers_.lookup(pkt.handler);
  if (entry.kind == HandlerKind::Threaded) {
    clock_->advance(costs_.threaded_handler_switch);
  }
  ep.deliveries_ += 1;
  ++rsrs_delivered_;
  const bool metrics_on = tele_->metrics().enabled();
  if (metrics_on && pkt.sent_at > 0 && now() >= pkt.sent_at) {
    cmetrics_->rsr_oneway_ns.add(static_cast<std::uint64_t>(now() -
                                                            pkt.sent_at));
  }
  if (adapt_enabled_ && pkt.src != id_ && pkt.src < world_size()) {
    // Consume a timing echo the peer piggybacked (a sample about *our*
    // traffic towards pkt.src), and measure this packet's own one-way time
    // for echoing back on the next send to pkt.src.  Forwarded packets
    // (hops > 0) are skipped: their timing mixes several methods.
    if (pkt.adapt_method != 0) {
      cost_model_->observe(pkt.adapt_method, pkt.src, pkt.adapt_bytes,
                           pkt.adapt_oneway, now());
    }
    if (via != nullptr && pkt.hops == 0 && pkt.sent_at > 0 &&
        now() >= pkt.sent_at) {
      cost_model_->note_incoming(via->name_hash(), pkt.src, pkt.wire_size(),
                                 now() - pkt.sent_at);
    }
  }
  const bool obs = observing();
  if (obs) {
    observe({now(), pkt.span, id_, telemetry::Phase::Dispatch,
             entry.trace_label, pkt.payload.size(), pkt.src, 0, pkt.trace});
  }
  if (runtime_->trace().enabled()) {
    runtime_->trace().record({now(), id_, simnet::TraceKind::Dispatch,
                              entry.name, pkt.payload.size(), ""});
  }
  const telemetry::SpanId span = pkt.span;
  const std::uint64_t trace = pkt.trace;
  const std::uint16_t handler_label = entry.trace_label;
  const Time handler_start = now();
  util::UnpackBuffer ub(pkt.payload.span());
  {
    // Expose the packet to the handler body (Context::inbound_packet) and
    // restore the outer packet afterwards: loopback dispatch nests.
    struct InboundGuard {
      const Packet** slot;
      const Packet* prev;
      ~InboundGuard() { *slot = prev; }
    } guard{&inbound_pkt_, inbound_pkt_};
    inbound_pkt_ = &pkt;
    entry.fn(*this, ep, ub);
  }
  const Time handler_end = now();
  const std::uint64_t handler_ns = static_cast<std::uint64_t>(
      handler_end > handler_start ? handler_end - handler_start : 0);
  if (metrics_on) cmetrics_->handler_ns.add(handler_ns);
  if (obs) {
    observe({handler_end, span, id_, telemetry::Phase::HandlerDone,
             handler_label, 0, handler_ns, 0, trace});
  }
}

void Context::forward(Packet pkt) {
  // This context is acting as a forwarding node (paper §3.3): re-send the
  // packet toward its true destination over the best local method.
  // A relay must never fault its own process over traffic it merely
  // carries: an undeliverable packet (hop bound hit, destination's methods
  // all dead -- e.g. a crash window) is dropped and counted like any other
  // sender-side protocol error, and the *sender's* detectors (deadlines,
  // peer death) report the loss.  Mirrors the unknown-handler contract in
  // deliver().
  auto drop_relayed = [&](const char* why) {
    ++cmetrics_->send_errors;
    if (observing()) {
      observe({now(), pkt.span, id_, telemetry::Phase::Drop, 0,
               pkt.payload.size(), pkt.dst, 0, pkt.trace});
    }
    util::log_warn("forward", "context " + std::to_string(id_) +
                                  " dropped a relayed packet to context " +
                                  std::to_string(pkt.dst) + " (" + why + ")");
  };
  if (++pkt.hops > kMaxForwardHops) {
    drop_relayed("hop bound");
    return;
  }
  clock_->advance(costs_.dispatch_overhead);
  // Steady-state forwarding resolves the route (selection + connection)
  // once per destination; the cache is invalidated whenever the selection
  // policy or poll configuration changes, and evicted on failover.
  //
  // Causal tracing: each forwarding hop is a child span of the span the
  // packet arrived with, so a stitched trace shows the chain
  // root -> hop1 -> hop2 -> dispatch.  The packet is restamped with the
  // child span before re-sending; the trace id rides along unchanged.
  const telemetry::SpanId parent = pkt.span;
  const std::uint64_t trace = pkt.trace;
  const bool obs = observing() && parent != 0;
  const telemetry::SpanId span = obs ? next_span() : parent;
  pkt.span = span;
  const ContextId dst = pkt.dst;
  // A draining forwarder hands its relay duty to the sibling: the packet's
  // next hop becomes the sibling (pkt.dst is untouched, so the sibling
  // forwards it onward; kMaxForwardHops bounds any mis-configured loop).
  const ContextId via = (draining_ && drain_sibling_ != kNoContext &&
                         drain_sibling_ != dst && drain_sibling_ != id_)
                            ? drain_sibling_
                            : dst;
  const DescriptorTable& full = runtime_->table_of(via);
  const std::uint64_t max_attempts =
      health_.params().fail_threshold * (full.size() + 1) + 8;
  // Descriptors that land back on this relay (the destination's tcp-class
  // entry names its partition forwarder -- us) are excluded from relay
  // selection: when the direct methods die, failover must not pick the
  // route through ourselves and ping-pong the packet into the hop bound.
  std::optional<DescriptorTable> filtered;
  auto relay_table = [&]() -> const DescriptorTable& {
    if (!filtered) {
      std::vector<CommDescriptor> usable;
      for (const CommDescriptor& d : full.entries()) {
        CommModule* m = module(d.method);
        if (m != nullptr && m->landing_context(d) == id_) continue;
        usable.push_back(d);
      }
      filtered.emplace(std::move(usable));
    }
    return *filtered;
  };
  std::uint64_t failures = 0;
  for (;;) {
    std::shared_ptr<CommObject> conn;
    if (auto cached = forward_routes_.find(via);
        cached != forward_routes_.end()) {
      conn = cached->second;
    } else {
      const DescriptorTable& table = relay_table();
      std::string reason;
      auto idx = selector_->select(table, *this, reason);
      if (!idx) idx = quarantined_fallback(table);
      if (!idx) {
        drop_relayed("no applicable relay method");
        return;
      }
      conn = cached_connection(table.at(*idx));
      forward_routes_.emplace(via, conn);
    }
    CommModule& m = conn->module();
    // Each attempt copies the packet (a SharedBytes refcount bump, no byte
    // copy) because send() consumes its argument even when delivery fails.
    Packet attempt = pkt;
    const SendResult r = m.send(*conn, std::move(attempt));
    m.counters().sends += 1;
    if (r.ok()) {
      m.counters().bytes_sent += r.wire;
      if (!health_.empty()) {
        note_send_success(intern_method(m.name()), via, m.trace_label(), span,
                          trace);
      }
      if (tele_->metrics().enabled() && m.metrics() != nullptr) {
        m.metrics()->send_bytes.add(r.wire);
      }
      if (observing()) {
        observe({now(), span, id_, telemetry::Phase::Forward, m.trace_label(),
                 r.wire, dst, parent, trace});
      }
      if (runtime_->trace().enabled()) {
        runtime_->trace().record({now(), id_, simnet::TraceKind::Forward,
                                  std::string(m.name()), r.wire, ""});
      }
      return;
    }
    m.counters().send_errors += 1;
    ++failures;
    const HealthTracker::FailAction action = note_send_failure(
        intern_method(m.name()), via, m.trace_label(), r.status, span, trace);
    if (failures >= max_attempts) {
      drop_relayed("every relay method exhausted");
      return;
    }
    if (action == HealthTracker::FailAction::Failover) {
      // Evict the dead route and connection; the next iteration re-selects
      // with the quarantined method excluded by the health gate.
      std::erase_if(connections_, [&](const auto& kv) {
        return kv.second == conn;
      });
      std::erase_if(forward_routes_, [&](const auto& kv) {
        return kv.second == conn;
      });
    }
  }
}

void Context::set_skip_poll(std::string_view method, std::uint64_t skip) {
  engine_->set_skip(method, skip);
  update_interference();
}

std::uint64_t Context::skip_poll(std::string_view method) const {
  return engine_->skip(method);
}

void Context::set_poll_enabled(std::string_view method, bool enabled) {
  engine_->set_enabled(method, enabled);
  forward_routes_.clear();
  update_interference();
}

bool Context::poll_enabled(std::string_view method) const {
  return engine_->enabled(method);
}

void Context::set_adaptive_poll(std::string_view method, bool on,
                                std::uint64_t miss_threshold,
                                std::uint64_t max_skip) {
  engine_->set_adaptive(method, on, miss_threshold, max_skip);
}

void Context::set_blocking_poller(std::string_view method, bool on) {
  if (clock_->simulated()) {
    engine_->set_blocking(method, on);
    update_interference();
    return;
  }
  CommModule* m = module(method);
  if (m == nullptr) {
    throw util::MethodError("set_blocking_poller: method '" +
                            std::string(method) + "' not loaded");
  }
  if (on) {
    if (!m->supports_blocking()) {
      throw util::MethodError("method '" + std::string(method) +
                              "' does not support a blocking poller");
    }
    engine_->set_enabled(method, false);
    rt_pollers_.push_back(std::make_unique<BlockingPoller>(*this, *m));
  } else {
    std::erase_if(rt_pollers_, [&](const std::unique_ptr<BlockingPoller>& p) {
      return p->module == m;
    });
    engine_->set_enabled(method, true);
  }
}

void Context::set_selector(std::unique_ptr<MethodSelector> selector) {
  if (!selector) throw util::UsageError("set_selector: null selector");
  selector_ = std::move(selector);
  forward_routes_.clear();
  // A payload-aware policy is useless without measurements to act on, so
  // installing one switches the adaptive plumbing on.
  if (selector_->payload_aware()) adapt_enabled_ = true;
}

void Context::register_adapt_handlers() {
  // Reserved handlers backing the active prober (docs §11).  The probe
  // carries the prober's id; the reply is an ordinary RSR whose packet
  // brings the timing echo home (and whose own one-way time seeds the
  // peer's reverse-direction model).
  register_handler("adapt.probe",
                   [](Context& c, Endpoint&, util::UnpackBuffer& ub) {
                     const ContextId src = ub.get_u32();
                     if (src == c.id() || src >= c.world_size()) return;
                     Startpoint back = c.world_startpoint(src);
                     c.rsr(back, "adapt.probe.reply");
                   });
  register_handler("adapt.probe.reply",
                   [](Context&, Endpoint&, util::UnpackBuffer&) {});
}

void Context::probe_method(const CommDescriptor& d) {
  // Group pseudo-contexts and self-loops are never probed.
  if (d.context == id_ || d.context >= world_size()) return;
  CommModule* m = module(d.method);
  if (m == nullptr || !m->applicable(d)) return;
  auto conn = cached_connection(d);
  util::PackBuffer pb;
  pb.put_u32(id_);
  Packet pkt;
  pkt.src = id_;
  pkt.dst = d.context;
  pkt.endpoint = kRootEndpointId;
  pkt.handler = resolve_handler("adapt.probe");
  pkt.payload = util::SharedBytes::copy_of(pb.bytes());
  if (auto e = cost_model_->take_echo(d.context)) {
    pkt.adapt_method = e->method;
    pkt.adapt_bytes = e->bytes;
    pkt.adapt_oneway = e->oneway_ns;
  }
  clock_->advance(costs_.rsr_send_overhead);
  pkt.sent_at = now();
  const SendResult r = m->send(*conn, std::move(pkt));
  m->counters().sends += 1;
  ++cmetrics_->adapt_probes;
  if (observing()) {
    observe({now(), 0, id_, telemetry::Phase::AdaptProbe, m->trace_label(),
             r.wire, d.context});
  }
  if (r.ok()) {
    m->counters().bytes_sent += r.wire;
    if (!health_.empty()) {
      note_send_success(intern_method(d.method), d.context, m->trace_label());
    }
  } else {
    m->counters().send_errors += 1;
    if (!health_.empty()) {
      // A failed probe is a real delivery failure: it walks the method
      // towards quarantine exactly like an application send would, which
      // is what keeps a dead method from being re-probed at full rate.
      note_send_failure(intern_method(d.method), d.context, m->trace_label(),
                        r.status);
    }
  }
}

bool Context::rerank_link(Startpoint::Link& link) {
  if (link.context >= world_size()) return false;  // group tables keep
                                                   // their manual order
  if (!adapt::rerank_table(link.table, *cost_model_, link.context,
                           adapt_rerank_bytes_, now())) {
    return false;
  }
  ++cmetrics_->adapt_reranks;
  // The order change invalidates this link's cached selection; the global
  // connection cache keeps the objects, so re-selecting the same method is
  // free.
  link.conn.reset();
  link.selected_method.clear();
  link.degraded = false;
  link.reprobe_at = 0;
  if (observing()) {
    observe({now(), 0, id_, telemetry::Phase::AdaptRerank, 0,
             link.table.size(), link.context});
  }
  selection_log_.push_back(SelectionRecord{
      link.context, link.table.at(0).method,
      "adapt.rerank: table reordered by modeled cost (measured fastest "
      "first)",
      now()});
  return true;
}

void Context::maybe_rerank(Startpoint::Link& link) {
  if (adapt_rerank_interval_ <= 0) return;
  const Time t = now();
  if (t < link.rerank_at) return;
  link.rerank_at = t + adapt_rerank_interval_;
  rerank_link(link);
}

bool Context::rerank(Startpoint& sp) {
  bool changed = false;
  for (auto& link : sp.links_) {
    if (rerank_link(link)) changed = true;
    if (adapt_rerank_interval_ > 0) {
      link.rerank_at = now() + adapt_rerank_interval_;
    }
  }
  return changed;
}

void Context::note_adapt_switch(std::string_view method, ContextId target,
                                std::string_view payload_class) {
  ++cmetrics_->adapt_switches;
  if (observing()) {
    observe({now(), 0, id_, telemetry::Phase::AdaptSwitch,
             tele_->tracer().intern(method), 0, target});
  }
  selection_log_.push_back(SelectionRecord{
      target, std::string(method),
      "adapt.switch: " + std::string(payload_class) +
          "-payload class rerouted by modeled cost",
      now()});
}

std::vector<std::string> Context::methods() const {
  std::vector<std::string> out;
  out.reserve(modules_.size());
  for (const auto& m : modules_) out.emplace_back(m->name());
  return out;
}

CommModule* Context::module(std::string_view name) {
  for (const auto& m : modules_) {
    if (m->name() == name) return m.get();
  }
  return nullptr;
}

const CommModule* Context::module(std::string_view name) const {
  for (const auto& m : modules_) {
    if (m->name() == name) return m.get();
  }
  return nullptr;
}

const util::MethodCounters& Context::method_counters(
    std::string_view name) const {
  const CommModule* m = module(name);
  if (m == nullptr) {
    throw util::MethodError("method_counters: method '" + std::string(name) +
                            "' not loaded");
  }
  return m->counters();
}

telemetry::SelectionReport Context::explain_selection(const Startpoint& sp) {
  telemetry::SelectionReport rep;
  rep.selector = std::string(selector_->name());
  for (const auto& link : sp.links_) {
    telemetry::LinkReport lr;
    lr.target = link.context;
    lr.endpoint = link.endpoint;
    if (sp.forced_method()) {
      // A force_method override bypasses the policy entirely: the forced
      // entry either wins or nothing does.
      lr.forced = true;
      const std::string& method = *sp.forced_method();
      const auto forced_idx = link.table.find(method);
      for (std::size_t i = 0; i < link.table.size(); ++i) {
        const CommDescriptor& d = link.table.at(i);
        telemetry::Candidate c;
        c.position = i;
        c.method = d.method;
        if (CommModule* wm = module(d.method)) {
          if (auto inner = wm->wraps()) c.wraps = *inner;
        }
        if (forced_idx && i == *forced_idx) {
          CommModule* m = module(method);
          if (m == nullptr) {
            c.status = telemetry::CandidateStatus::NotLoaded;
            c.detail = "forced, but module '" + method +
                       "' is not loaded in this context";
          } else if (!m->applicable(d)) {
            c.status = telemetry::CandidateStatus::NotApplicable;
            c.detail = "forced, but the module reports the descriptor "
                       "unreachable from here";
          } else {
            c.status = telemetry::CandidateStatus::Won;
            c.detail = "forced by application";
            lr.winner = method;
          }
        } else {
          c.status = telemetry::CandidateStatus::NotForced;
          c.detail = "application forced '" + method + "'";
        }
        lr.candidates.push_back(std::move(c));
      }
      lr.reason = lr.winner.empty()
                      ? "forced method '" + method +
                            "' is not usable from this context"
                      : "forced by application";
    } else {
      selector_->explain(link.table, *this, lr);
    }
    if (adapt_enabled_) {
      // Per-candidate modeled-cost rows (docs §11): what the cost model
      // believes about each entry right now, plus the adaptive policy's
      // dwell state for it when that policy is installed.
      auto* as = dynamic_cast<adapt::AdaptiveSelector*>(selector_.get());
      for (auto& c : lr.candidates) {
        const adapt::CostEstimate est = cost_model_->estimate(
            method_hash(c.method), link.context, now());
        telemetry::Candidate::ModelRow row;
        row.known = est.known;
        row.latency_us = est.latency_ns / 1.0e3;
        row.bandwidth_mb_s = est.bandwidth_mb_s;
        row.confidence = est.latency_confidence;
        if (as != nullptr) row.dwell = as->dwell_state(link.context, c.method);
        c.model = row;
      }
    }
    // Forwarding detection (§3.3): does the winning descriptor land the
    // packet on a relay rather than the target itself?
    for (const auto& c : lr.candidates) {
      if (c.status != telemetry::CandidateStatus::Won) continue;
      CommModule* m = module(c.method);
      if (m != nullptr) {
        const ContextId land = m->landing_context(link.table.at(c.position));
        if (land != link.context) lr.forward_via = land;
      }
      break;
    }
    rep.links.push_back(std::move(lr));
  }
  for (const auto& [peer, method] : rpc_last_method_) {
    rep.rpc.push_back({peer, method});
  }
  return rep;
}

void Context::add_module(std::unique_ptr<CommModule> m) {
  if (module(m->name()) != nullptr) {
    throw util::UsageError("module '" + std::string(m->name()) +
                           "' added twice to context " + std::to_string(id_));
  }
  // Rebind the module's counters into the registry so the enquiry interface
  // and the module's own accounting share one set of numbers.
  m->bind_metrics(tele_->metrics().method(id_, m->name()));
  m->set_trace_label(tele_->tracer().intern(m->name()));
  modules_.push_back(std::move(m));
}

void Context::finalize_modules() {
  for (auto& m : modules_) m->initialize(*this);
  // Fastest-first ordering for both the polling loop and the local table.
  std::vector<CommModule*> order;
  order.reserve(modules_.size());
  for (auto& m : modules_) order.push_back(m.get());
  std::stable_sort(order.begin(), order.end(),
                   [](const CommModule* a, const CommModule* b) {
                     return a->speed_rank() < b->speed_rank();
                   });
  std::vector<CommDescriptor> descriptors;
  for (CommModule* m : order) {
    engine_->add_module(*m);
    descriptors.push_back(m->local_descriptor());
  }
  local_table_ = DescriptorTable(std::move(descriptors));

  // Per-method configuration from the resource database.
  const util::ResourceDb& db = runtime_->db();
  for (CommModule* m : order) {
    const std::string method(m->name());
    const auto skip = db.get_scoped_int(id_, method + ".skip_poll", 1);
    if (skip > 1) engine_->set_skip(method, static_cast<std::uint64_t>(skip));
    if (auto v = db.get_scoped(id_, method + ".poll_enabled")) {
      engine_->set_enabled(method, *v == "true" || *v == "1" || *v == "on" ||
                                       *v == "yes");
    }
  }
  // Robustness wiring (docs §14): cache the simulated fabric's fault plan
  // (stable address across set_faults) and this context's partition so
  // maybe_crash() costs one pointer test + one vector-empty check.
  if (SimFabric* f = runtime_->sim()) {
    my_partition_ = f->topology().partition_of(id_);
    fault_plan_ = &f->faults();
  }
  update_interference();
}

void Context::update_interference() {
  // Model of the §3.3 kernel-call interference: each expensive (TCP-class)
  // poll slows the drain of in-flight MPL-class transfers into this
  // context.  We express it as a bandwidth drag factor
  //   drag = 1 + interference / (skip * base_iteration + poll_cost)
  // where base_iteration is the cost of one poll-loop pass over the cheap
  // methods.  The MPL-class send path divides its bandwidth by the
  // receiver's drag.
  if (!clock_->simulated()) return;
  SimFabric* fabric = runtime_->sim();
  if (fabric == nullptr) return;

  double drag = 1.0;
  const CommModule* tcp = module("tcp");
  if (tcp != nullptr && engine_->enabled("tcp") && !engine_->blocking("tcp") &&
      costs_.tcp_interference > 0) {
    Time base = costs_.poll_iteration_overhead;
    for (const auto& m : modules_) {
      if (m->name() == "tcp") continue;
      if (engine_->enabled(m->name())) base += m->poll_cost();
    }
    const double denom =
        static_cast<double>(engine_->skip("tcp")) * static_cast<double>(base) +
        static_cast<double>(tcp->poll_cost());
    if (denom > 0) {
      drag += static_cast<double>(costs_.tcp_interference) / denom;
    }
  }
  fabric->host(id_).inbound_drag.store(drag, std::memory_order_relaxed);
}

}  // namespace nexus
