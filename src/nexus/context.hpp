// Context: one address space / virtual processor (paper §3).
//
// A context owns its endpoints, handler table, communication modules,
// polling engine, and communication-object cache, and exposes the single
// communication operation of the model: the asynchronous remote service
// request (RSR) applied to a startpoint.  Contexts are isolated from one
// another: everything that crosses between them travels as serialized
// bytes through the fabric's mailboxes/queues.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "nexus/adapt/cost_model.hpp"
#include "nexus/clock.hpp"
#include "nexus/costs.hpp"
#include "nexus/descriptor.hpp"
#include "nexus/endpoint.hpp"
#include "nexus/handler.hpp"
#include "nexus/health.hpp"
#include "nexus/module.hpp"
#include "nexus/polling.hpp"
#include "nexus/selector.hpp"
#include "nexus/startpoint.hpp"
#include "nexus/telemetry/telemetry.hpp"
#include "nexus/types.hpp"
#include "simnet/fault.hpp"
#include "util/pack.hpp"
#include "util/resource_db.hpp"

namespace nexus {

class Runtime;

class Context {
 public:
  Context(Runtime& runtime, ContextId id, std::unique_ptr<ContextClock> clock,
          SimCostParams costs);
  ~Context();

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // --- identity & environment ---
  ContextId id() const noexcept { return id_; }
  Runtime& runtime() noexcept { return *runtime_; }
  std::size_t world_size() const;
  const util::ResourceDb& config() const;
  const SimCostParams& costs() const noexcept { return costs_; }

  // --- time ---
  Time now() const { return clock_->now(); }
  /// Charge `dt` of local computation (virtual in the simulated fabric).
  void compute(Time dt) { clock_->advance(dt); }
  /// Computation interleaved with polling: advances in `chunk`-sized slices
  /// with one unified poll between slices ("the polling function will be
  /// called at least every time a Nexus operation is performed" -- and the
  /// underlying message layer also polls during long computations).
  void compute_with_polling(Time total, Time chunk);

  // --- endpoints & handlers ---
  /// The root endpoint (id 1) every context owns; bootstrap startpoints
  /// from Runtime target it.
  Endpoint& root_endpoint() { return *root_; }
  Endpoint& create_endpoint();
  Endpoint& endpoint(EndpointId id);
  bool has_endpoint(EndpointId id) const;
  void destroy_endpoint(EndpointId id);
  HandlerId register_handler(std::string_view name, Handler fn,
                             HandlerKind kind = HandlerKind::NonThreaded);
  /// The wire id `name` dispatches to (the FNV-1a hash; stable across
  /// contexts).  Steady-state senders resolve once and use the
  /// rsr(sp, HandlerId, ...) overloads to skip per-call hashing.
  static HandlerId resolve_handler(std::string_view name) noexcept {
    return HandlerTable::id_of(name);
  }

  // --- startpoints & links ---
  /// Create an unbound startpoint.
  Startpoint create_startpoint() const { return Startpoint{}; }
  /// Bind a startpoint to a *local* endpoint, forming a communication link
  /// (append semantics: binding to several endpoints yields multicast).
  void bind(Startpoint& sp, const Endpoint& ep) const;
  /// Convenience: create + bind.
  Startpoint startpoint_to(const Endpoint& ep) const;
  /// Bootstrap: a startpoint linked to context `target`'s root endpoint.
  Startpoint world_startpoint(ContextId target) const;

  // --- the communication operation ---
  /// Asynchronous remote service request: ship `payload` to every endpoint
  /// linked to `sp` and invoke `handler` there.  The shared buffer is
  /// aliased (never copied) by every link of a multicast and by forwarding
  /// hops; see docs/ARCHITECTURE.md §8.
  ///
  /// Returns the worst per-link verdict: Ok when every link accepted the
  /// packet; Transient when at least one link's RSR drained into the
  /// dead-letter queue (robust.retry_budget > 0; it may still be delivered
  /// after the peer's rebirth); Dead when a link addressed an unknown /
  /// never-registered context (the RSR is counted in send_errors and
  /// dropped, never thrown from deep in the descriptor table).
  DeliveryStatus rsr(Startpoint& sp, HandlerId handler,
                     util::SharedBytes payload);
  DeliveryStatus rsr(Startpoint& sp, HandlerId handler,
                     const util::PackBuffer& args);
  /// Zero-payload RSR by pre-resolved handler id.
  DeliveryStatus rsr(Startpoint& sp, HandlerId handler);
  /// Name-based conveniences: hash the handler name per call.
  DeliveryStatus rsr(Startpoint& sp, std::string_view handler,
                     util::SharedBytes payload);
  DeliveryStatus rsr(Startpoint& sp, std::string_view handler,
                     util::Bytes payload);
  DeliveryStatus rsr(Startpoint& sp, std::string_view handler,
                     const util::PackBuffer& args);
  /// Zero-payload RSR.
  DeliveryStatus rsr(Startpoint& sp, std::string_view handler);
  /// RSR riding an existing causal trace: layered protocols (the RPC
  /// subsystem's request, bulk pull/chunk, and reply frames) pass the
  /// call's trace id so every hop stitches into one end-to-end trace.
  /// trace == 0 behaves exactly like rsr().
  DeliveryStatus rsr_traced(Startpoint& sp, HandlerId handler,
                            util::SharedBytes payload, std::uint64_t trace);
  DeliveryStatus rsr_traced(Startpoint& sp, HandlerId handler,
                            const util::PackBuffer& args, std::uint64_t trace);

  /// The packet currently being dispatched to a handler on this context
  /// (null outside handler dispatch).  Lets layered protocols alias the
  /// zero-copy payload and read the envelope (src, span, trace) without
  /// re-serializing it into the argument buffer.
  const Packet* inbound_packet() const noexcept { return inbound_pkt_; }

  /// Record the method the RPC layer's last call toward `peer` rode
  /// (surfaced as explain_selection()'s rpc rows).
  void note_rpc_method(ContextId peer, std::string_view method) {
    rpc_last_method_[peer] = std::string(method);
  }

  // --- startpoint transfer ---
  /// Serialize a startpoint for transfer to another context.  Applies the
  /// lightweight "default table" optimization when a link's table matches
  /// the runtime's default table for the target context (§3.1).
  void pack_startpoint(util::PackBuffer& pb, const Startpoint& sp) const;
  Startpoint unpack_startpoint(util::UnpackBuffer& ub) const;

  // --- progress ---
  /// One iteration of the unified polling function.
  bool progress() {
    maybe_crash();
    return engine_->poll_once();
  }
  /// Poll until done() is satisfied.
  void wait(const std::function<bool()>& done) {
    if (fault_plan_ != nullptr && fault_plan_->has_crashes()) {
      engine_->wait([this, &done] {
        maybe_crash();
        return done();
      });
      return;
    }
    engine_->wait(done);
  }
  /// Poll until `counter` reaches at least `target` (common RSR-counting
  /// idiom for request/reply protocols).
  void wait_count(const std::uint64_t& counter, std::uint64_t target);

  // --- method control ---
  void set_skip_poll(std::string_view method, std::uint64_t skip);
  std::uint64_t skip_poll(std::string_view method) const;
  void set_poll_enabled(std::string_view method, bool enabled);
  bool poll_enabled(std::string_view method) const;
  void set_adaptive_poll(std::string_view method, bool on,
                         std::uint64_t miss_threshold = 8,
                         std::uint64_t max_skip = 4096);
  /// Hand a method to a dedicated blocking poller (paper §3.3 AIX
  /// discussion).  Requires module->supports_blocking().
  void set_blocking_poller(std::string_view method, bool on);
  /// Install a selection policy.  Installing a payload-aware policy (e.g.
  /// adapt::AdaptiveSelector) also enables the adaptive engine's
  /// measurement plumbing.
  void set_selector(std::unique_ptr<MethodSelector> selector);
  MethodSelector& selector() noexcept { return *selector_; }

  // --- adaptive transport engine (docs/ARCHITECTURE.md §11) ---
  /// The online per-(peer, method) cost model.  Always constructed; only
  /// *fed* (echoes, RTT samples, probes) while adaptation_enabled().
  adapt::CostModel& cost_model() noexcept { return *cost_model_; }
  const adapt::CostModel& cost_model() const noexcept { return *cost_model_; }
  /// Whether the measurement plumbing (timing echoes, reliable-layer RTT
  /// feed, periodic table reranking) is active.  Enabled by
  /// RuntimeOptions::adaptive, the `adapt.enabled` database key, or
  /// installing a payload-aware selector.
  bool adaptation_enabled() const noexcept { return adapt_enabled_; }
  void enable_adaptation(bool on = true) { adapt_enabled_ = on; }
  /// Low-rate active prober: one tiny timed RSR to `d`'s context over `d`'s
  /// method (the peer replies, and the reply carries the timing echo back).
  /// Called by adapt::AdaptiveSelector for usable-but-unmeasured methods;
  /// also available to applications.  No-op when the descriptor is not
  /// usable from here.
  void probe_method(const CommDescriptor& d);
  /// Rewrite every link table of `sp` in modeled-cost order now (the
  /// manual form of the periodic live rerank).  Returns true if any link's
  /// order changed; changed links have their cached selection dropped.
  bool rerank(Startpoint& sp);
  /// Telemetry hook for adapt::AdaptiveSelector decision changes.
  void note_adapt_switch(std::string_view method, ContextId target,
                         std::string_view payload_class);

  // --- robustness: crash/restart fault domain (docs/ARCHITECTURE.md §14) ---
  /// This context's incarnation epoch: 1 at first life, bumped on every
  /// crash/restart scheduled by a FaultPlan crash rule.  Stamped into every
  /// outgoing packet so peers can reject stale-incarnation traffic.
  std::uint32_t incarnation() const noexcept { return incarnation_; }
  /// If a crash window covers the current clock, model the outage: wipe all
  /// in-memory communication state, sleep through to the window's end, wipe
  /// again (dropping traffic that landed mid-outage), and come back with a
  /// bumped incarnation.  One pointer + one vector-empty check when no
  /// crash rules exist, so the fault-free hot path is unchanged.
  void maybe_crash() {
    if (fault_plan_ == nullptr || !fault_plan_->has_crashes()) return;
    crash_check();
  }
  /// Has peer-death detection declared `peer` down (every applicable method
  /// Dead past robust.peer_grace_ms)?  Cleared on the first successful send
  /// to the peer (rebirth).
  bool is_peer_dead(ContextId peer) const {
    return dead_peers_.find(peer) != dead_peers_.end();
  }
  /// RSRs parked in the dead-letter queue awaiting peer rebirth.
  std::size_t deadletter_count() const noexcept { return deadletters_.size(); }
  /// Graceful drain of a forwarding node: stop accepting new relay work --
  /// packets to forward are re-routed via `sibling` instead of being sent
  /// onward directly -- and flush everything already in flight, so the node
  /// can be killed (e.g. under a FaultPlan crash rule) without stranding
  /// its clients' traffic.
  void drain_forwarding(ContextId sibling);
  bool draining() const noexcept { return draining_; }

  // --- enquiry interface (paper §2.1) ---
  std::vector<std::string> methods() const;
  CommModule* module(std::string_view name);
  const CommModule* module(std::string_view name) const;
  const util::MethodCounters& method_counters(std::string_view name) const;
  const std::vector<SelectionRecord>& selection_log() const noexcept {
    return selection_log_;
  }
  /// Structured selection explanation: for every link of `sp`, report each
  /// descriptor considered, why it was (or would be) rejected, which wins,
  /// and whether the winner lands on a forwarding node.  Runs the active
  /// policy without creating connections or touching the selection log.
  telemetry::SelectionReport explain_selection(const Startpoint& sp);
  /// This context's own descriptor table, fastest-first (the table attached
  /// to startpoints created here).
  const DescriptorTable& local_table() const noexcept { return local_table_; }
  /// Failover health state (per-(method, target) failure history).
  const HealthTracker& health() const noexcept { return health_; }
  /// Selection gate used by the policies: module loaded, applicable, and
  /// not quarantined by the health tracker.
  bool method_usable(const CommDescriptor& d);
  /// The health gate alone (assumes the descriptor is otherwise usable).
  bool health_usable(const CommDescriptor& d);
  /// Health status of one (method, target) pair at the current clock.
  HealthTracker::Status method_health(std::string_view method,
                                      ContextId target);
  PollingEngine& polling_engine() noexcept { return *engine_; }
  const PollingEngine& polling_engine() const noexcept { return *engine_; }
  ContextClock& clock() noexcept { return *clock_; }
  std::uint64_t rsrs_sent() const noexcept { return rsrs_sent_; }
  std::uint64_t rsrs_delivered() const noexcept { return rsrs_delivered_; }

  // --- observability (docs/ARCHITECTURE.md §12) ---
  /// The runtime-owned observability bundle shared by all contexts.
  telemetry::Telemetry& telemetry() noexcept { return *tele_; }
  /// True when any event sink is live: the always-on flight recorder or the
  /// opt-in sampling tracer.  Instrumented sites allocate ids and build
  /// Event structs only behind this check, so the all-off cost stays one
  /// relaxed load per sink.
  bool observing() const noexcept {
    return (flight_ != nullptr && flight_->enabled()) ||
           tele_->tracer().enabled();
  }
  /// Record one lifecycle event into this context's flight ring (always on)
  /// and the tracer (when sampling is enabled).
  void observe(const telemetry::Event& ev) {
    if (flight_ != nullptr && flight_->enabled()) flight_->record(ev);
    if (tele_->tracer().enabled()) tele_->tracer().record(ev);
  }
  /// Trigger a flight-recorder dump (no-op unless a flight dir is set).
  void dump_flight(std::string_view reason) { tele_->dump_flight(reason); }
  /// Allocate a span / trace id for an RSR started (or forwarded) by this
  /// context.  The context id is folded into the high bits so ids are
  /// globally unique without touching shared atomic counters on the send
  /// hot path (contexts are single-writer; see FlightRecorder's contract).
  telemetry::SpanId next_span() noexcept {
    return (static_cast<std::uint64_t>(id_) + 1) << 40 | ++span_seq_;
  }
  std::uint64_t next_trace() noexcept {
    return (static_cast<std::uint64_t>(id_) + 1) << 40 | ++trace_seq_;
  }
  /// JSON snapshots for the metrics exporter's providers (docs §12.3):
  /// this context's health-tracker entries and cost-model estimates.
  std::string health_json() const;
  std::string cost_model_json() const;

  // --- runtime wiring (called by Runtime during construction) ---
  void add_module(std::unique_ptr<CommModule> m);
  void finalize_modules();
  /// Recompute the inbound interference drag after poll config changes.
  void update_interference();

 private:
  /// Small integer id for an interned method name (connection-cache keys).
  using MethodId = std::uint32_t;

  /// `via` is the module that polled the packet in (nullptr when unknown,
  /// e.g. loopback dispatch); the adaptive engine uses it to attribute
  /// one-way timing samples.
  void deliver(Packet pkt, CommModule* via = nullptr);
  /// Shared body of rsr() / rsr_traced(): `trace_override` != 0 reuses an
  /// existing causal chain instead of allocating a fresh trace id.
  DeliveryStatus rsr_impl(Startpoint& sp, HandlerId handler,
                          util::SharedBytes payload,
                          std::uint64_t trace_override);
  void dispatch_local(Packet pkt);
  void forward(Packet pkt);
  void ensure_connection(const Startpoint& sp, Startpoint::Link& link,
                         std::uint64_t payload_bytes);
  /// Periodic adaptive rerank of one link's table (docs §11); cheap check
  /// against Link::rerank_at when due in the future.
  void maybe_rerank(Startpoint::Link& link);
  /// Shared rerank-and-invalidate step for maybe_rerank / rerank().
  bool rerank_link(Startpoint::Link& link);
  void register_adapt_handlers();
  std::shared_ptr<CommObject> cached_connection(const CommDescriptor& d);
  MethodId intern_method(std::string_view name);
  SendResult send_on_link(Startpoint::Link& link, HandlerId h,
                          const util::SharedBytes& payload,
                          telemetry::SpanId span, std::uint64_t trace);
  /// The failover loop around one link's send: feed outcomes to the health
  /// tracker, retry transient failures, evict + re-select dead methods.
  /// Returns Ok on delivery.  When the attempt bound is exhausted: with a
  /// dead-letter budget configured (robust.retry_budget > 0) returns Dead so
  /// the caller can deadletter the RSR; otherwise throws MethodError (the
  /// pre-robustness contract every existing caller relies on).
  DeliveryStatus send_with_failover(Startpoint& sp, Startpoint::Link& link,
                                    HandlerId h,
                                    const util::SharedBytes& payload,
                                    telemetry::SpanId span,
                                    std::uint64_t trace);
  /// Drop a link's cached connection (and every cache entry sharing it) so
  /// the next attempt re-runs selection.
  void evict_connection(Startpoint::Link& link);
  /// When everything applicable is quarantined, probe the entry whose
  /// backoff expires soonest instead of failing the RSR.
  std::optional<std::size_t> quarantined_fallback(const DescriptorTable& table);
  /// Recompute Link::degraded/reprobe_at after a selection won at `winner`.
  void refresh_link_degradation(Startpoint::Link& link, std::size_t winner);
  /// Health-tracker bookkeeping shared by the rsr and forwarding send paths.
  /// Returns the action to take; updates telemetry counters and traces.
  HealthTracker::FailAction note_send_failure(MethodId mid, ContextId target,
                                              std::uint16_t trace_label,
                                              DeliveryStatus status,
                                              telemetry::SpanId span = 0,
                                              std::uint64_t trace = 0);
  void note_send_success(MethodId mid, ContextId target,
                         std::uint16_t trace_label,
                         telemetry::SpanId span = 0, std::uint64_t trace = 0);

  // --- robustness internals (docs/ARCHITECTURE.md §14) ---
  /// Out-of-line body of maybe_crash(): evaluates the crash rules against
  /// the current clock and models the outage + restart.
  void crash_check();
  /// Discard every piece of in-memory communication state and purge mailbox
  /// traffic arriving before `cutoff` (the restart instant).
  void wipe_comm_state(Time cutoff);
  /// One RSR parked for a dead peer, waiting for its rebirth.
  struct DeadLetter {
    ContextId target = kNoContext;
    EndpointId endpoint = 0;
    HandlerId handler = 0;
    util::SharedBytes payload;
    std::uint32_t budget = 0;  ///< redelivery attempts left
  };
  /// Park one RSR in the bounded dead-letter queue (oldest dropped on
  /// overflow).
  void deadletter(const Startpoint::Link& link, HandlerId h,
                  const util::SharedBytes& payload, telemetry::SpanId span,
                  std::uint64_t trace);
  /// Single bounded send attempt toward a declared-dead peer (the rebirth
  /// probe).  Success runs the normal restore path, which un-declares the
  /// peer and drains its dead letters; returns whether the send succeeded.
  bool try_send_once(Startpoint& sp, Startpoint::Link& link, HandlerId h,
                     const util::SharedBytes& payload, telemetry::SpanId span,
                     std::uint64_t trace);
  /// After a Failover verdict: if every applicable method to `target` has
  /// been raw-Dead past the grace period, declare the peer down and evict
  /// everything cached about it.
  void maybe_declare_peer_dead(ContextId target);
  /// After a rebirth: resend `target`'s parked dead letters (budget
  /// permitting; re-parked on failure, dropped at budget exhaustion).
  void redeliver_deadletters(ContextId target);

  Runtime* runtime_;
  ContextId id_;
  std::unique_ptr<ContextClock> clock_;
  SimCostParams costs_;

  std::vector<std::unique_ptr<CommModule>> modules_;
  std::unique_ptr<PollingEngine> engine_;
  HandlerTable handlers_;
  std::map<EndpointId, std::unique_ptr<Endpoint>> endpoints_;
  Endpoint* root_ = nullptr;
  EndpointId next_endpoint_id_ = 1;

  std::unique_ptr<MethodSelector> selector_;
  /// Method names interned to dense ids so connection-cache keys carry no
  /// string construction or comparison on the hot path.
  std::map<std::string, MethodId, std::less<>> method_ids_;
  std::map<std::pair<MethodId, ContextId>, std::shared_ptr<CommObject>>
      connections_;
  /// Steady-state forwarding route per final destination: selection and
  /// connection lookup run once per destination, not once per packet.
  /// Invalidated when the selection policy or poll configuration changes.
  std::map<ContextId, std::shared_ptr<CommObject>> forward_routes_;
  HealthTracker health_;
  std::vector<SelectionRecord> selection_log_;
  DescriptorTable local_table_;

  // Adaptive transport engine state (docs/ARCHITECTURE.md §11).
  std::unique_ptr<adapt::CostModel> cost_model_;
  bool adapt_enabled_ = false;
  Time adapt_rerank_interval_ = 0;       ///< 0 disables the periodic rerank
  std::uint64_t adapt_rerank_bytes_ = 1024;  ///< rerank reference payload

  // Robustness state (crash/restart fault domain, docs §14).
  /// The simulated fabric's fault plan, cached at finalize_modules() so the
  /// crash check costs one pointer test when no plan exists (null on the
  /// realtime fabric).  The plan object's address is stable across
  /// set_faults() calls.
  const simnet::FaultPlan* fault_plan_ = nullptr;
  int my_partition_ = -1;
  std::uint32_t incarnation_ = 1;
  /// Peers declared down by peer-death detection.
  std::set<ContextId> dead_peers_;
  std::deque<DeadLetter> deadletters_;
  std::uint32_t retry_budget_ = 0;     ///< robust.retry_budget (0 = DLQ off)
  std::size_t deadletter_cap_ = 64;    ///< robust.deadletter_cap
  Time peer_grace_ = 0;                ///< robust.peer_grace_ms
  bool draining_ = false;
  ContextId drain_sibling_ = kNoContext;

  /// Packet under dispatch (deliver() sets/restores it around the handler
  /// body; nested loopback dispatch restores the outer packet correctly).
  const Packet* inbound_pkt_ = nullptr;
  /// Last RPC call's selected method per peer (enquiry only; see
  /// note_rpc_method / explain_selection).
  std::map<ContextId, std::string> rpc_last_method_;

  std::uint64_t rsrs_sent_ = 0;
  std::uint64_t rsrs_delivered_ = 0;
  std::uint64_t span_seq_ = 0;   ///< low bits of next_span() (single-writer)
  std::uint64_t trace_seq_ = 0;  ///< low bits of next_trace()

  // Runtime-owned observability bundle (never null after construction).
  telemetry::Telemetry* tele_ = nullptr;
  telemetry::ContextMetrics* cmetrics_ = nullptr;
  /// This context's always-on flight recorder (may be null when the
  /// runtime disabled flights).
  telemetry::FlightRecorder* flight_ = nullptr;

  // Realtime blocking pollers: one thread per method handed off.
  struct BlockingPoller;
  std::vector<std::unique_ptr<BlockingPoller>> rt_pollers_;
  std::unique_ptr<std::recursive_mutex> rt_mutex_;  // guards comm state in rt fabric
};

}  // namespace nexus
