// Simulated cost parameters, calibrated to the paper's reported constants.
//
// Paper sources for defaults (§3.3, §4):
//   * MPL and TCP over the SP2 switch reach ~36 and ~8 MB/s.
//   * An mpc_status probe costs 15 us; a select costs "over 100" us.
//   * TCP small-message latency over the switch is ~2 ms.
//   * A zero-byte Nexus/MPL one-way is 83 us (vs a faster native MPL), and
//     156 us once TCP polling is enabled.
//   * TCP polling degrades MPL bandwidth even for large messages
//     (hypothesis: repeated kernel calls slow the device-to-user drain);
//     modelled here as a bandwidth drag proportional to TCP poll frequency.
//
// All times are virtual nanoseconds (simnet::Time).
#pragma once

#include "simnet/time.hpp"

namespace nexus {

struct SimCostParams {
  using Time = simnet::Time;
  static constexpr Time us = simnet::kUs;

  // --- Nexus software layer ---
  Time poll_iteration_overhead = 500;      ///< unified poll loop bookkeeping
  Time rsr_send_overhead = 12 * us;        ///< selection + pack + fn table call
  Time dispatch_overhead = 10 * us;        ///< endpoint/handler lookup + invoke
  Time threaded_handler_switch = 25 * us;  ///< thread hand-off for threaded handlers
  Time blocking_check_cost = 500;          ///< flag check when a blocking poller services a method
  Time blocking_wake_penalty = 20 * us;    ///< wake + hand-off from blocking poller thread
  Time pack_cost_per_byte = 3;             ///< serialization cost (startpoints, args)

  // --- local (intra-context) ---
  Time local_latency = 1 * us;
  Time local_poll_cost = 1 * us;
  Time local_send_cpu = 1 * us;
  double local_mb_s = 400.0;

  // --- shm (inter-context, same node) ---
  Time shm_latency = 4 * us;
  Time shm_poll_cost = 2 * us;
  Time shm_send_cpu = 2 * us;
  double shm_mb_s = 200.0;

  // --- myrinet-like SAN ---
  Time myrinet_latency = 20 * us;
  Time myrinet_poll_cost = 5 * us;
  Time myrinet_send_cpu = 4 * us;
  double myrinet_mb_s = 60.0;

  // --- MPL-like (intra-partition switch) ---
  Time mpl_latency = 40 * us;
  Time mpl_poll_cost = 15 * us;
  Time mpl_send_cpu = 5 * us;
  double mpl_mb_s = 36.0;

  // --- TCP-like (works everywhere; expensive select) ---
  Time tcp_latency = 2 * simnet::kMs;
  Time tcp_poll_cost = 110 * us;
  Time tcp_send_cpu = 30 * us;
  double tcp_mb_s = 8.0;
  /// Per-TCP-poll drag on MPL transfers into the polling context (the
  /// kernel-call interference of §3.3); see Context::update_interference().
  Time tcp_interference = 15 * us;
  /// Incast congestion collapse: when a receiver already has more than
  /// `tcp_incast_threshold` transfers AND more than `tcp_incast_bytes`
  /// in flight, each further send stalls quadratically in the excess count
  /// (retransmit-timeout behaviour of mid-90s stacks under synchronized
  /// many-to-one bursts).  This is what makes running a parallel model's
  /// internal alltoall traffic over TCP catastrophically slow (paper §4:
  /// an order of magnitude), while coupling exchanges and small control
  /// bursts (startup allgathers) are unaffected.
  std::uint64_t tcp_incast_threshold = 4;
  std::uint64_t tcp_incast_bytes = 64 * 1024;
  Time tcp_incast_stall = 1700 * us * 1000;  // 1.7 s per excess transfer step

  // --- UDP-like (unreliable datagrams over the routed network) ---
  Time udp_latency = 1500 * us;
  Time udp_poll_cost = 60 * us;
  Time udp_send_cpu = 15 * us;
  double udp_mb_s = 10.0;
  double udp_drop_prob = 0.01;
  std::uint64_t udp_mtu = 8192;  ///< larger payloads are rejected

  // --- AAL5 / ATM-like (metropolitan links, between partitions) ---
  Time aal5_latency = 900 * us;
  Time aal5_poll_cost = 40 * us;
  Time aal5_send_cpu = 12 * us;
  double aal5_mb_s = 17.0;  ///< OC3-ish payload rate

  // --- wrapper methods ---
  Time secure_cpu_per_byte = 12;    ///< toy stream cipher + MAC, both ends
  Time compress_cpu_per_byte = 6;   ///< RLE encode/decode cost per input byte

  /// Realtime fabric variant: all virtual costs zeroed (realtime code pays
  /// its costs for real); non-temporal knobs (drop probability, MTU,
  /// thresholds) are preserved from `c`.
  static SimCostParams realtime(SimCostParams c) {
    c.poll_iteration_overhead = 0;
    c.rsr_send_overhead = 0;
    c.dispatch_overhead = 0;
    c.threaded_handler_switch = 0;
    c.blocking_check_cost = 0;
    c.blocking_wake_penalty = 0;
    c.pack_cost_per_byte = 0;
    c.local_latency = c.shm_latency = c.myrinet_latency = c.mpl_latency = 0;
    c.tcp_latency = c.udp_latency = c.aal5_latency = 0;
    c.local_poll_cost = c.shm_poll_cost = c.myrinet_poll_cost = 0;
    c.mpl_poll_cost = c.tcp_poll_cost = c.udp_poll_cost = c.aal5_poll_cost = 0;
    c.local_send_cpu = c.shm_send_cpu = c.myrinet_send_cpu = 0;
    c.mpl_send_cpu = c.tcp_send_cpu = c.udp_send_cpu = c.aal5_send_cpu = 0;
    c.tcp_interference = 0;
    c.tcp_incast_stall = 0;
    c.secure_cpu_per_byte = 0;
    c.compress_cpu_per_byte = 0;
    return c;
  }
};

}  // namespace nexus
