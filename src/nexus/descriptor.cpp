#include "nexus/descriptor.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/error.hpp"

namespace nexus {

void CommDescriptor::pack(util::PackBuffer& pb) const {
  pb.put_string(method);
  pb.put_u32(context);
  pb.put_bytes(data);
}

CommDescriptor CommDescriptor::unpack(util::UnpackBuffer& ub) {
  CommDescriptor d;
  d.method = ub.get_string();
  d.context = ub.get_u32();
  d.data = ub.get_bytes();
  return d;
}

void DescriptorTable::insert(std::size_t pos, CommDescriptor d) {
  if (pos > entries_.size()) pos = entries_.size();
  entries_.insert(entries_.begin() + static_cast<std::ptrdiff_t>(pos),
                  std::move(d));
}

std::size_t DescriptorTable::remove(std::string_view method) {
  const auto before = entries_.size();
  std::erase_if(entries_,
                [&](const CommDescriptor& d) { return d.method == method; });
  return before - entries_.size();
}

bool DescriptorTable::prioritize(std::string_view method) {
  auto mid = std::stable_partition(
      entries_.begin(), entries_.end(),
      [&](const CommDescriptor& d) { return d.method == method; });
  return mid != entries_.begin();
}

void DescriptorTable::reorder(const std::vector<std::size_t>& perm) {
  if (perm.size() != entries_.size()) {
    throw std::invalid_argument("reorder: permutation size mismatch");
  }
  std::vector<bool> seen(entries_.size(), false);
  for (const std::size_t from : perm) {
    if (from >= entries_.size() || seen[from]) {
      throw std::invalid_argument("reorder: not a permutation");
    }
    seen[from] = true;
  }
  // Validated: safe to move entries out without risking a half-built table.
  std::vector<CommDescriptor> next;
  next.reserve(entries_.size());
  for (const std::size_t from : perm) {
    next.push_back(std::move(entries_[from]));
  }
  entries_ = std::move(next);
}

std::optional<std::size_t> DescriptorTable::find(
    std::string_view method) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].method == method) return i;
  }
  return std::nullopt;
}

void DescriptorTable::pack(util::PackBuffer& pb) const {
  pb.put_u32(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& d : entries_) d.pack(pb);
}

DescriptorTable DescriptorTable::unpack(util::UnpackBuffer& ub) {
  const std::uint32_t n = ub.get_u32();
  std::vector<CommDescriptor> entries;
  entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    entries.push_back(CommDescriptor::unpack(ub));
  }
  return DescriptorTable(std::move(entries));
}

std::size_t DescriptorTable::packed_size() const {
  util::PackBuffer pb;
  pack(pb);
  return pb.size();
}

}  // namespace nexus
