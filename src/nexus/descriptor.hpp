// Communication descriptors and descriptor tables (paper §3.1).
//
// A CommDescriptor holds everything a communication module needs to reach a
// specific context: the method name, the target context, and opaque
// module-specific data (e.g. partition id for MPL, host/port analog for
// TCP).  Descriptors are grouped into a DescriptorTable -- "a concise and
// easily communicated representation of information about communication
// methods" -- which travels with every startpoint.  Table order encodes the
// selection preference: the automatic selector scans in order and picks the
// first applicable entry ("fastest first" when ordered by speed).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "nexus/types.hpp"
#include "util/bytes.hpp"
#include "util/pack.hpp"

namespace nexus {

struct CommDescriptor {
  std::string method;      ///< module name, e.g. "mpl", "tcp"
  ContextId context = 0;   ///< context this descriptor reaches
  util::Bytes data;        ///< module-specific addressing information

  void pack(util::PackBuffer& pb) const;
  static CommDescriptor unpack(util::UnpackBuffer& ub);

  bool operator==(const CommDescriptor& o) const = default;
};

class DescriptorTable {
 public:
  DescriptorTable() = default;
  explicit DescriptorTable(std::vector<CommDescriptor> entries)
      : entries_(std::move(entries)) {}

  const std::vector<CommDescriptor>& entries() const noexcept {
    return entries_;
  }
  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }
  const CommDescriptor& at(std::size_t i) const { return entries_.at(i); }

  /// Append a descriptor at the end (lowest priority).
  void add(CommDescriptor d) { entries_.push_back(std::move(d)); }

  /// Insert a descriptor at a given priority position.
  void insert(std::size_t pos, CommDescriptor d);

  /// Remove every descriptor for `method`; returns how many were removed.
  /// This is one of the paper's manual-selection controls.
  std::size_t remove(std::string_view method);

  /// Move all descriptors for `method` to the front, preserving relative
  /// order otherwise (manual "prefer this method" control).
  bool prioritize(std::string_view method);

  /// First descriptor using `method`, if any.
  std::optional<std::size_t> find(std::string_view method) const;

  /// Replace the priority order with a permutation of the current entries
  /// (bulk form of the manual reorder controls; the adaptive reranker's
  /// edit).  `perm[i]` is the old position of the entry that moves to
  /// position i.  Throws std::invalid_argument unless `perm` is a
  /// permutation of [0, size()).
  void reorder(const std::vector<std::size_t>& perm);

  /// All contexts referenced (normally a table describes one context).
  ContextId context() const { return entries_.empty() ? kNoContext : entries_.front().context; }

  void pack(util::PackBuffer& pb) const;
  static DescriptorTable unpack(util::UnpackBuffer& ub);

  /// Serialized size in bytes -- the "few tens of bytes" the paper says a
  /// table costs to ship; exposed so benchmarks can report it.
  std::size_t packed_size() const;

  bool operator==(const DescriptorTable& o) const = default;

 private:
  std::vector<CommDescriptor> entries_;
};

}  // namespace nexus
