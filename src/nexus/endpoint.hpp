// Communication endpoints (the receive side of a communication link).
//
// Endpoints are created by and owned by a context, cannot be copied, and
// cannot migrate (paper §2.2: "Startpoints can be copied between
// processors, but endpoints cannot").  An endpoint may carry a *local
// address* -- an application pointer -- in which case startpoints linked to
// it act as global pointers to that datum.
#pragma once

#include <any>

#include "nexus/types.hpp"

namespace nexus {

class Context;

class Endpoint {
 public:
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  EndpointId id() const noexcept { return id_; }
  ContextId context_id() const noexcept { return context_; }

  /// Application datum this endpoint stands for, if any ("global pointer"
  /// semantics).  Stored as std::any so unrelated handler libraries can
  /// attach their own state without casts through void*.
  const std::any& local_address() const noexcept { return local_address_; }
  std::any& local_address() noexcept { return local_address_; }
  void set_local_address(std::any value) { local_address_ = std::move(value); }

  template <typename T>
  T* local_as() {
    return std::any_cast<T>(&local_address_);
  }

  /// Number of RSRs delivered through this endpoint.
  std::uint64_t deliveries() const noexcept { return deliveries_; }

 private:
  friend class Context;
  Endpoint(ContextId ctx, EndpointId id) : context_(ctx), id_(id) {}

  ContextId context_;
  EndpointId id_;
  std::any local_address_;
  std::uint64_t deliveries_ = 0;
};

}  // namespace nexus
