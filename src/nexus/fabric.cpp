#include "nexus/fabric.hpp"

#include <utility>

namespace nexus {

namespace {
// Pre-sharding fault-rng construction, preserved exactly for shard 0 so
// threads=1 runs draw the identical stream the single-threaded runtime did.
constexpr std::uint64_t kFaultRngSalt = 0xfa171fab71c5ull;
// Weyl constant decorrelating the additional shard streams.
constexpr std::uint64_t kShardStride = 0x9e3779b97f4a7c15ull;
}  // namespace

/// Bridges a shard's scheduler to the fabric's cross-shard router: drains
/// the shard's inbound MPSC queue into local mailboxes at the top of every
/// scheduler iteration, and parks on the ShardGroup when the shard is
/// locally idle.
class SimFabric::ShardSource : public simnet::ExternalSource {
 public:
  ShardSource(SimFabric& fabric, std::size_t shard)
      : fabric_(fabric), shard_(shard) {}

  bool drain() override {
    auto& inbound = fabric_.shards_[shard_]->inbound;
    std::size_t n = 0;
    while (auto post = inbound.try_pop()) {
      post->box->post(post->arrival, std::move(post->pkt));
      ++n;
    }
    if (n != 0) fabric_.group_->note_drained(n);
    return n != 0;
  }

  simnet::ExternalIdle idle(bool /*locally_done*/) override {
    return fabric_.group_->park(shard_, [this] {
      return !fabric_.shards_[shard_]->inbound.empty();
    });
  }

 private:
  SimFabric& fabric_;
  const std::size_t shard_;
};

SimFabric::SimFabric(simnet::Topology topology)
    : topology_(std::move(topology)) {
  shards_.push_back(std::make_unique<Shard>());
  auto snapshot = std::make_unique<McastMap>();
  mcast_snapshot_.store(snapshot.get(), std::memory_order_release);
  mcast_retired_.push_back(std::move(snapshot));
  seed_fault_rngs();
}

SimFabric::~SimFabric() = default;

void SimFabric::init_shards(std::size_t n) {
  if (n == 0) n = 1;
  if (n == shards_.size()) return;
  if (!procs_by_ctx_.empty() || shards_[0]->scheduler.process_count() != 0) {
    throw util::Error("SimFabric::init_shards: processes already spawned");
  }
  shards_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_[i]->scheduler.set_shard_index(i);
  }
  if (n > 1) {
    group_ = std::make_unique<simnet::ShardGroup>(n);
    for (std::size_t i = 0; i < n; ++i) {
      shards_[i]->source = std::make_unique<ShardSource>(*this, i);
      shards_[i]->scheduler.set_external_source(shards_[i]->source.get());
    }
  } else {
    group_.reset();
  }
  seed_fault_rngs();
}

void SimFabric::register_process(ContextId id, simnet::SimProcess* proc) {
  if (procs_by_ctx_.size() <= id) procs_by_ctx_.resize(id + 1, nullptr);
  procs_by_ctx_[id] = proc;
}

simnet::SimProcess& SimFabric::process_of(ContextId id) {
  if (id >= procs_by_ctx_.size() || procs_by_ctx_[id] == nullptr) {
    throw util::Error("SimFabric: no process registered for context " +
                      std::to_string(id));
  }
  return *procs_by_ctx_[id];
}

void SimFabric::post_cross_shard(ContextId dst, simnet::Mailbox<Packet>& box,
                                 simnet::Time arrival, Packet pkt) {
  const std::size_t target = shard_of(dst);
  // Inflight accounting BEFORE the enqueue (termination-protocol contract:
  // the counter must cover the post for the whole window in which the
  // producing shard is provably unparked).
  group_->note_enqueue();
  shards_[target]->inbound.push(
      CrossShardPost{&box, arrival, std::move(pkt)});
  group_->wake(target);
}

void SimFabric::multicast_join(std::uint32_t group, ContextId ctx,
                               EndpointId ep) {
  std::lock_guard<std::mutex> lock(mcast_write_mutex_);
  auto next = std::make_unique<McastMap>(
      *mcast_snapshot_.load(std::memory_order_relaxed));
  (*next)[group].emplace_back(ctx, ep);
  mcast_snapshot_.store(next.get(), std::memory_order_release);
  mcast_retired_.push_back(std::move(next));
}

void SimFabric::set_faults(simnet::FaultPlan plan, std::uint64_t seed) {
  faults_ = std::move(plan);
  fault_seed_ = seed;
  seed_fault_rngs();
}

void SimFabric::seed_fault_rngs() {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->fault_rng =
        util::Rng(fault_seed_ ^ kFaultRngSalt ^ (kShardStride * i));
  }
}

}  // namespace nexus
