// Fabric state shared by the per-context communication modules.
//
// The simulated fabric owns one conservative scheduler per *shard* (threads=1
// collapses to the classic single-scheduler layout, bit-identical to the
// pre-sharding runtime) and, per context, a SimHost with one arrival-ordered
// mailbox per method.  Contexts are assigned to shards round-robin
// (shard = ctx % shards); a context's process, mailboxes, and handlers live
// on its home shard and are touched by that shard's thread only.
// Cross-shard traffic is routed through a per-shard lock-free MPSC queue
// (SimFabric::post) and drained by the receiving shard's scheduler loop; the
// ShardGroup parked-mask protocol decides global termination.
//
// The realtime fabric owns, per context, a RtHost with one lock-free MPSC
// packet queue per method (single consumer = the context's polling engine or
// its blocking-poller thread, never both -- the handoff is serialized by
// thread create/join) and an activity channel for idle waits.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "nexus/clock.hpp"
#include "nexus/types.hpp"
#include "simnet/fault.hpp"
#include "simnet/mailbox.hpp"
#include "simnet/scheduler.hpp"
#include "simnet/shard.hpp"
#include "simnet/topology.hpp"
#include "util/error.hpp"
#include "util/mpsc_queue.hpp"
#include "util/queues.hpp"
#include "util/rng.hpp"

namespace nexus {

/// Per-context endpoint of the simulated fabric.
struct SimHost {
  simnet::SimProcess* proc = nullptr;
  std::map<std::string, simnet::Mailbox<Packet>, std::less<>> boxes;
  /// Interference drag on inbound MPL-class transfers caused by this host's
  /// expensive polls (1.0 = none); see Context::update_interference().
  /// Atomic: written by the owning context, read by senders on any shard.
  /// Relaxed suffices -- it is a scalar performance-model knob, not a
  /// synchronization edge.
  std::atomic<double> inbound_drag{1.0};
  /// Bytes currently in flight toward this host over the TCP-class method;
  /// maintained by TcpSimModule for the incast-collapse model.  Atomic for
  /// the same reason: senders on every shard add, the receiver subtracts.
  std::atomic<std::uint64_t> tcp_inflight_bytes{0};

  simnet::Mailbox<Packet>& box(std::string_view method) {
    auto it = boxes.find(method);
    if (it == boxes.end()) {
      throw util::MethodError("context has no mailbox for method '" +
                              std::string(method) + "'");
    }
    return it->second;
  }
};

class SimFabric {
 public:
  using McastMembers = std::vector<std::pair<ContextId, EndpointId>>;
  using McastMap = std::map<std::uint32_t, McastMembers>;

  explicit SimFabric(simnet::Topology topology);
  ~SimFabric();

  SimFabric(const SimFabric&) = delete;
  SimFabric& operator=(const SimFabric&) = delete;

  // ---- sharding ----------------------------------------------------------

  /// Partition the fabric into `n` scheduler shards (1..ShardGroup::
  /// kMaxShards).  Must be called before any process is spawned or mailbox
  /// created; constructing the fabric leaves it at one shard.
  void init_shards(std::size_t n);

  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::size_t shard_of(ContextId id) const noexcept {
    return static_cast<std::size_t>(id) % shards_.size();
  }
  bool same_shard(ContextId a, ContextId b) const noexcept {
    return shard_of(a) == shard_of(b);
  }

  /// The scheduler owning context `id`'s process and mailboxes.
  simnet::Scheduler& scheduler_for(ContextId id) {
    return shards_[shard_of(id)]->scheduler;
  }
  /// A specific shard's scheduler (shard 0 by default -- the whole fabric
  /// under threads=1).
  simnet::Scheduler& scheduler(std::size_t shard = 0) {
    return shards_.at(shard)->scheduler;
  }

  /// Context -> SimProcess registry.  Under sharding, a process's index
  /// within its shard's scheduler is unrelated to the context id, so the
  /// runtime registers each spawned process here.
  void register_process(ContextId id, simnet::SimProcess* proc);
  simnet::SimProcess& process_of(ContextId id);

  /// Deliver `pkt` into `box` (a mailbox of context `dst`) at virtual time
  /// `arrival`.  Same-shard: a direct mailbox post (the unchanged 1-alloc
  /// hot path).  Cross-shard: one MPSC enqueue (+1 node alloc) plus a
  /// conditional wakeup; the receiving shard's scheduler drains it into the
  /// mailbox on its own thread.  `src` names the posting context (the
  /// caller must be running on src's home shard).
  /// Deliver `pkt` into `box` (owned by `dst`).  Same-shard posts -- the
  /// entire workload at threads=1 -- stay on the classic direct-mailbox
  /// hot path, inlined; cross-shard posts take the out-of-line MPSC route.
  void post(ContextId src, ContextId dst, simnet::Mailbox<Packet>& box,
            simnet::Time arrival, Packet pkt) {
    if (group_ == nullptr || same_shard(src, dst)) {
      box.post(arrival, std::move(pkt));
      return;
    }
    post_cross_shard(dst, box, arrival, std::move(pkt));
  }

  const simnet::Topology& topology() const noexcept { return topology_; }

  SimHost& host(ContextId id) { return *hosts_.at(id); }
  void add_host(std::unique_ptr<SimHost> h) { hosts_.push_back(std::move(h)); }
  std::size_t host_count() const noexcept { return hosts_.size(); }

  // ---- multicast ---------------------------------------------------------

  /// Join `ctx`/`ep` to `group`.  Copy-on-write: the writer builds a fresh
  /// snapshot under a mutex and publishes it with one atomic store; retired
  /// snapshots stay alive until the fabric dies, so a concurrent sender's
  /// snapshot pointer never dangles.
  void multicast_join(std::uint32_t group, ContextId ctx, EndpointId ep);

  /// Wait-free read of the current membership map.  The returned reference
  /// is to an immutable snapshot: valid for the fabric's lifetime, possibly
  /// stale by one join (exactly the semantics of a real network's
  /// propagation delay).
  const McastMap& multicast_snapshot() const {
    return *mcast_snapshot_.load(std::memory_order_acquire);
  }

  // ---- fault injection ---------------------------------------------------

  /// Deterministic fault-injection plan every simulated module consults at
  /// send time.  Mutable between runs and, under threads=1, mid-run (the
  /// scheduler serializes sim processes); threaded runs must install the
  /// plan before run().
  void set_faults(simnet::FaultPlan plan, std::uint64_t seed);
  simnet::FaultPlan& faults() noexcept { return faults_; }
  const simnet::FaultPlan& faults() const noexcept { return faults_; }

  /// The rng behind probabilistic fault rules, sharded: each scheduler
  /// thread draws from its own stream (shard 0 keeps the pre-sharding
  /// stream, so threads=1 fault sequences are bit-identical to the
  /// single-threaded runtime).
  util::Rng& fault_rng_for(ContextId ctx) {
    return shards_[shard_of(ctx)]->fault_rng;
  }

  /// The termination/wakeup group coordinating the shards' scheduler loops;
  /// nullptr at one shard (plain DeadlockError semantics apply).
  simnet::ShardGroup* shard_group() noexcept { return group_.get(); }

 private:
  struct CrossShardPost {
    simnet::Mailbox<Packet>* box = nullptr;
    simnet::Time arrival = 0;
    Packet pkt;
  };

  /// Slow path of post(): route through the destination shard's MPSC
  /// queue with termination-protocol inflight accounting.
  void post_cross_shard(ContextId dst, simnet::Mailbox<Packet>& box,
                        simnet::Time arrival, Packet pkt);

  /// ExternalSource a sharded fabric installs on each shard's scheduler.
  class ShardSource;

  struct Shard {
    simnet::Scheduler scheduler;
    util::MpscQueue<CrossShardPost> inbound;
    util::Rng fault_rng;
    std::unique_ptr<ShardSource> source;
  };

  void seed_fault_rngs();

  simnet::Topology topology_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<simnet::ShardGroup> group_;
  std::vector<std::unique_ptr<SimHost>> hosts_;
  std::vector<simnet::SimProcess*> procs_by_ctx_;

  std::mutex mcast_write_mutex_;
  std::atomic<const McastMap*> mcast_snapshot_;
  std::vector<std::unique_ptr<McastMap>> mcast_retired_;

  simnet::FaultPlan faults_;
  std::uint64_t fault_seed_ = 0;
};

/// Per-context endpoint of the realtime fabric.  Each method queue has many
/// producers (sender threads) and exactly one consumer at a time: the
/// context's polling engine, or the method's dedicated blocking-poller
/// thread while one is installed (Context::set_blocking_poller disables the
/// engine entry before starting the thread and re-enables it after joining,
/// so the consumer role moves across a happens-before edge).
struct RtHost {
  std::shared_ptr<RtActivity> activity = std::make_shared<RtActivity>();
  std::map<std::string, util::MpscQueue<Packet>, std::less<>> queues;

  util::MpscQueue<Packet>& queue(std::string_view method) {
    auto it = queues.find(method);
    if (it == queues.end()) {
      throw util::MethodError("context has no queue for method '" +
                              std::string(method) + "'");
    }
    return it->second;
  }
};

class RtFabric {
 public:
  explicit RtFabric(simnet::Topology topology)
      : topology_(std::move(topology)) {}

  const simnet::Topology& topology() const noexcept { return topology_; }
  RtHost& host(ContextId id) { return *hosts_.at(id); }
  void add_host(std::unique_ptr<RtHost> h) { hosts_.push_back(std::move(h)); }
  std::size_t host_count() const noexcept { return hosts_.size(); }

  /// Thread-safe multicast group membership (contexts join from their own
  /// threads).
  void multicast_join(std::uint32_t group, ContextId ctx, EndpointId ep) {
    std::lock_guard<std::mutex> lock(mcast_mutex_);
    multicast_groups_[group].emplace_back(ctx, ep);
  }
  std::vector<std::pair<ContextId, EndpointId>> multicast_members(
      std::uint32_t group) const {
    std::lock_guard<std::mutex> lock(mcast_mutex_);
    auto it = multicast_groups_.find(group);
    return it == multicast_groups_.end()
               ? std::vector<std::pair<ContextId, EndpointId>>{}
               : it->second;
  }

  /// Fault-injection hook for the realtime fabric: called by every rt
  /// module before enqueueing a packet.  Must be installed before run()
  /// (sends happen on context threads) and must itself be thread-safe.
  /// extra_delay verdicts are ignored -- real time cannot be scripted.
  using FaultHook = std::function<simnet::FaultVerdict(
      std::string_view method, ContextId src, ContextId dst)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }
  const FaultHook& fault_hook() const noexcept { return fault_hook_; }

 private:
  simnet::Topology topology_;
  std::vector<std::unique_ptr<RtHost>> hosts_;
  mutable std::mutex mcast_mutex_;
  std::map<std::uint32_t, std::vector<std::pair<ContextId, EndpointId>>>
      multicast_groups_;
  FaultHook fault_hook_;
};

}  // namespace nexus
