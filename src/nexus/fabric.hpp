// Fabric state shared by the per-context communication modules.
//
// The simulated fabric owns the discrete-event scheduler and, per context,
// a SimHost with one arrival-ordered mailbox per method.  The realtime
// fabric owns, per context, a RtHost with one thread-safe queue per method
// and an activity channel for idle waits.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "nexus/clock.hpp"
#include "nexus/types.hpp"
#include "simnet/fault.hpp"
#include "simnet/mailbox.hpp"
#include "simnet/scheduler.hpp"
#include "simnet/topology.hpp"
#include "util/error.hpp"
#include "util/queues.hpp"

namespace nexus {

/// Per-context endpoint of the simulated fabric.
struct SimHost {
  simnet::SimProcess* proc = nullptr;
  std::map<std::string, simnet::Mailbox<Packet>, std::less<>> boxes;
  /// Interference drag on inbound MPL-class transfers caused by this host's
  /// expensive polls (1.0 = none); see Context::update_interference().
  double inbound_drag = 1.0;
  /// Bytes currently in flight toward this host over the TCP-class method;
  /// maintained by TcpSimModule for the incast-collapse model.
  std::uint64_t tcp_inflight_bytes = 0;

  simnet::Mailbox<Packet>& box(std::string_view method) {
    auto it = boxes.find(method);
    if (it == boxes.end()) {
      throw util::MethodError("context has no mailbox for method '" +
                              std::string(method) + "'");
    }
    return it->second;
  }
};

class SimFabric {
 public:
  explicit SimFabric(simnet::Topology topology)
      : topology_(std::move(topology)) {}

  simnet::Scheduler& scheduler() noexcept { return scheduler_; }
  const simnet::Topology& topology() const noexcept { return topology_; }

  SimHost& host(ContextId id) { return *hosts_.at(id); }
  void add_host(std::unique_ptr<SimHost> h) { hosts_.push_back(std::move(h)); }
  std::size_t host_count() const noexcept { return hosts_.size(); }

  /// Multicast group membership (group id -> receiving endpoints), used by
  /// the "mcast" module's one-send-many-deliveries path.
  std::map<std::uint32_t, std::vector<std::pair<ContextId, EndpointId>>>&
  multicast_groups() noexcept {
    return multicast_groups_;
  }

  /// Deterministic fault-injection plan every simulated module consults at
  /// send time.  Mutable mid-run (the scheduler serializes sim processes),
  /// so tests can script partition/heal sequences.
  void set_faults(simnet::FaultPlan plan, std::uint64_t seed) {
    faults_ = std::move(plan);
    fault_rng_ = util::Rng(seed ^ 0xfa171fab71c5ull);
  }
  simnet::FaultPlan& faults() noexcept { return faults_; }
  const simnet::FaultPlan& faults() const noexcept { return faults_; }
  /// The single rng behind every probabilistic fault rule: one consumer
  /// stream, deterministic under the scheduler's total event order.
  util::Rng& fault_rng() noexcept { return fault_rng_; }

 private:
  simnet::Scheduler scheduler_;
  simnet::Topology topology_;
  std::vector<std::unique_ptr<SimHost>> hosts_;
  std::map<std::uint32_t, std::vector<std::pair<ContextId, EndpointId>>>
      multicast_groups_;
  simnet::FaultPlan faults_;
  util::Rng fault_rng_;
};

/// Per-context endpoint of the realtime fabric.
struct RtHost {
  std::shared_ptr<RtActivity> activity = std::make_shared<RtActivity>();
  std::map<std::string, util::ConcurrentQueue<Packet>, std::less<>> queues;

  util::ConcurrentQueue<Packet>& queue(std::string_view method) {
    auto it = queues.find(method);
    if (it == queues.end()) {
      throw util::MethodError("context has no queue for method '" +
                              std::string(method) + "'");
    }
    return it->second;
  }
};

class RtFabric {
 public:
  explicit RtFabric(simnet::Topology topology)
      : topology_(std::move(topology)) {}

  const simnet::Topology& topology() const noexcept { return topology_; }
  RtHost& host(ContextId id) { return *hosts_.at(id); }
  void add_host(std::unique_ptr<RtHost> h) { hosts_.push_back(std::move(h)); }
  std::size_t host_count() const noexcept { return hosts_.size(); }

  /// Thread-safe multicast group membership (contexts join from their own
  /// threads).
  void multicast_join(std::uint32_t group, ContextId ctx, EndpointId ep) {
    std::lock_guard<std::mutex> lock(mcast_mutex_);
    multicast_groups_[group].emplace_back(ctx, ep);
  }
  std::vector<std::pair<ContextId, EndpointId>> multicast_members(
      std::uint32_t group) const {
    std::lock_guard<std::mutex> lock(mcast_mutex_);
    auto it = multicast_groups_.find(group);
    return it == multicast_groups_.end()
               ? std::vector<std::pair<ContextId, EndpointId>>{}
               : it->second;
  }

  /// Fault-injection hook for the realtime fabric: called by every rt
  /// module before enqueueing a packet.  Must be installed before run()
  /// (sends happen on context threads) and must itself be thread-safe.
  /// extra_delay verdicts are ignored -- real time cannot be scripted.
  using FaultHook = std::function<simnet::FaultVerdict(
      std::string_view method, ContextId src, ContextId dst)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }
  const FaultHook& fault_hook() const noexcept { return fault_hook_; }

 private:
  simnet::Topology topology_;
  std::vector<std::unique_ptr<RtHost>> hosts_;
  mutable std::mutex mcast_mutex_;
  std::map<std::uint32_t, std::vector<std::pair<ContextId, EndpointId>>>
      multicast_groups_;
  FaultHook fault_hook_;
};

}  // namespace nexus
