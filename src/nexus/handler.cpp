#include "nexus/handler.hpp"

namespace nexus {

HandlerId HandlerTable::add(std::string_view name, Handler fn,
                            HandlerKind kind) {
  const HandlerId id = id_of(name);
  auto [it, inserted] = handlers_.try_emplace(
      id, Entry{std::string(name), std::move(fn), kind});
  if (!inserted) {
    if (it->second.name == name) {
      throw util::UsageError("handler '" + std::string(name) +
                             "' registered twice");
    }
    throw util::UsageError("handler name hash collision: '" +
                           std::string(name) + "' vs '" + it->second.name +
                           "'");
  }
  return id;
}

const HandlerTable::Entry& HandlerTable::lookup(HandlerId id) const {
  auto it = handlers_.find(id);
  if (it == handlers_.end()) {
    throw util::HandlerError("RSR names an unregistered handler (id " +
                             std::to_string(id) + ")");
  }
  return it->second;
}

}  // namespace nexus
