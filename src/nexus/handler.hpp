// Handler tables: mapping RSR handler names to local procedures.
//
// An RSR names its remote procedure; on the wire the name travels as a
// 64-bit FNV-1a hash.  Each context owns a HandlerTable; registration
// detects hash collisions eagerly so dispatch can trust the id.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "nexus/types.hpp"
#include "util/error.hpp"
#include "util/pack.hpp"

namespace nexus {

class Context;
class Endpoint;

/// Remote service request handler: invoked with the owning context, the
/// endpoint the link targets, and the (unpackable) data buffer.
using Handler =
    std::function<void(Context&, Endpoint&, util::UnpackBuffer&)>;

/// How a handler is executed on arrival.  Nexus distinguishes non-threaded
/// handlers (run inline in the polling loop, must not block) from threaded
/// handlers (run on their own thread; may perform blocking operations).  In
/// the simulated fabric a threaded handler runs inline but charges a thread
/// switch cost.
enum class HandlerKind { NonThreaded, Threaded };

class HandlerTable {
 public:
  /// Register `fn` under `name`.  Throws UsageError on duplicate names or
  /// (unlikely) hash collisions.
  HandlerId add(std::string_view name, Handler fn,
                HandlerKind kind = HandlerKind::NonThreaded);

  bool contains(HandlerId id) const { return handlers_.contains(id); }

  struct Entry {
    std::string name;
    Handler fn;
    HandlerKind kind;
    /// Interned telemetry label, cached at registration so the dispatch
    /// path never touches the tracer's label table.
    std::uint16_t trace_label = 0;
  };

  /// Lookup by wire id; throws HandlerError for unknown ids.
  const Entry& lookup(HandlerId id) const;
  /// Mutable lookup for registration-time wiring (telemetry labels).
  Entry* find(HandlerId id) {
    auto it = handlers_.find(id);
    return it == handlers_.end() ? nullptr : &it->second;
  }

  static HandlerId id_of(std::string_view name) {
    return util::fnv1a(name);
  }

  std::size_t size() const { return handlers_.size(); }

 private:
  std::map<HandlerId, Entry> handlers_;
};

}  // namespace nexus
