#include "nexus/health.hpp"

namespace nexus {

const char* delivery_status_name(DeliveryStatus s) noexcept {
  switch (s) {
    case DeliveryStatus::Ok: return "ok";
    case DeliveryStatus::Transient: return "transient";
    case DeliveryStatus::Dead: return "dead";
  }
  return "?";
}

const char* method_health_name(MethodHealth s) noexcept {
  switch (s) {
    case MethodHealth::Healthy: return "healthy";
    case MethodHealth::Suspect: return "suspect";
    case MethodHealth::Dead: return "dead";
    case MethodHealth::Probation: return "probation";
  }
  return "?";
}

}  // namespace nexus
