// Per-(method, target context) health tracking for automatic failover.
//
// The paper's §1 motivating scenario has an instrument stream "switch among
// alternative communication substrates in the event of error or high load";
// the HealthTracker is the runtime's memory of which substrates are
// currently failing.  Every send outcome feeds it:
//
//                   threshold transient failures
//     Healthy ── or one dead verdict ──────────▶ Dead (backoff running)
//        ▲  ╲                                      │
//        │   ╲ transient failure                   │ backoff expires
//        │    ▼                                    ▼
//        │   Suspect ── success ──▶ Healthy     Probation (selectable again)
//        │                                         │
//        └───────── probe success ─────────────────┘   probe failure:
//                                                      backoff doubles
//
// A Dead entry is skipped by method selection until its backoff expires;
// the first send after expiry is the restore probe.  A failed probe doubles
// the backoff (capped, jittered from a seeded rng so simultaneous probers
// de-synchronize deterministically); a successful one restores the method.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "nexus/types.hpp"
#include "util/rng.hpp"

namespace nexus {

/// Failure-handling policy knobs (RuntimeOptions::health).
struct HealthParams {
  /// Consecutive transient failures before a method is declared dead for a
  /// target.  Dead verdicts (blackhole, connection refused) skip the count.
  std::uint32_t fail_threshold = 3;
  /// First quarantine interval after a method is declared dead.
  Time backoff_initial = 20 * simnet::kMs;
  /// Growth factor applied on every failed restore probe.
  double backoff_multiplier = 2.0;
  /// Quarantine interval ceiling.
  Time backoff_max = 500 * simnet::kMs;
  /// Fraction of the interval randomized (+/-) to de-synchronize probers.
  double backoff_jitter = 0.1;
};

enum class MethodHealth : std::uint8_t {
  Healthy,    ///< no recent failures
  Suspect,    ///< failing but below the threshold; still selectable
  Dead,       ///< quarantined; unselectable until the backoff expires
  Probation,  ///< backoff expired; the next send is the restore probe
};

const char* method_health_name(MethodHealth s) noexcept;

class HealthTracker {
 public:
  /// Keys are (interned method id, target context id) -- the same pair the
  /// connection cache uses.
  using Key = std::pair<std::uint32_t, std::uint32_t>;

  /// What the caller should do after a failed send.
  enum class FailAction : std::uint8_t {
    Retry,     ///< below threshold: resend on the same method
    Failover,  ///< method quarantined: re-select and evict the connection
  };

  struct Status {
    MethodHealth state = MethodHealth::Healthy;
    std::uint32_t consecutive_failures = 0;
    Time retry_at = 0;  ///< quarantine end (meaningful when Dead/Probation)
    Time backoff = 0;   ///< current quarantine interval
    std::uint64_t failures = 0;   ///< total failed sends ever
    std::uint64_t failovers = 0;  ///< Healthy/Suspect -> Dead transitions
    std::uint64_t restores = 0;   ///< Dead/Probation -> Healthy transitions
    /// When this entry first entered Dead (0 = never / since restored).
    /// Failed restore probes do not refresh it, so peer-death detection can
    /// measure how long a method has been continuously down.
    Time died_at = 0;
  };

  explicit HealthTracker(HealthParams params = {}, std::uint64_t seed = 1)
      : params_(params), rng_(seed) {}

  const HealthParams& params() const noexcept { return params_; }

  /// True while no failure has ever been recorded -- the hot-path guard
  /// that keeps fault-free runs at one branch per send.
  bool empty() const noexcept { return entries_.empty(); }

  /// Selection gate: false only while quarantined with an unexpired
  /// backoff.  A Probation entry is selectable -- that send is the probe.
  bool usable(std::uint32_t method, std::uint32_t target,
              Time now) const noexcept {
    auto it = entries_.find(Key{method, target});
    if (it == entries_.end()) return true;
    const Entry& e = it->second;
    return e.state != MethodHealth::Dead || now >= e.retry_at;
  }

  /// Enquiry view (Probation is derived from Dead + expired backoff).
  Status status(std::uint32_t method, std::uint32_t target,
                Time now) const noexcept {
    auto it = entries_.find(Key{method, target});
    if (it == entries_.end()) return Status{};
    Status s = it->second;
    if (s.state == MethodHealth::Dead && now >= s.retry_at) {
      s.state = MethodHealth::Probation;
    }
    return s;
  }

  bool tracked(std::uint32_t method, std::uint32_t target) const noexcept {
    return entries_.find(Key{method, target}) != entries_.end();
  }

  /// Raw entry view WITHOUT the Probation derivation: peer-death detection
  /// needs "still Dead and first died at T" even after the backoff expired
  /// (an expired backoff only means the next send will probe, not that the
  /// method recovered).
  Status raw_status(std::uint32_t method, std::uint32_t target) const noexcept {
    auto it = entries_.find(Key{method, target});
    return it == entries_.end() ? Status{} : Status{it->second};
  }

  /// Enumerate every tracked (method, target) entry -- the metrics export
  /// path uses this to snapshot health states; `fn` receives (key, status)
  /// with Probation derived exactly like status().
  template <typename Fn>
  void for_each(Time now, Fn&& fn) const {
    for (const auto& [key, entry] : entries_) {
      Status s = entry;
      if (s.state == MethodHealth::Dead && now >= s.retry_at) {
        s.state = MethodHealth::Probation;
      }
      fn(key, s);
    }
  }

  std::size_t tracked_count() const noexcept { return entries_.size(); }

  /// Record a failed send.  `hard` marks a dead verdict (quarantine
  /// immediately); transient failures count toward the threshold first.
  FailAction on_failure(std::uint32_t method, std::uint32_t target, Time now,
                        bool hard) {
    Entry& e = entries_[Key{method, target}];
    ++e.failures;
    ++e.consecutive_failures;
    if (e.state == MethodHealth::Dead) {
      // A failed restore probe: stay dead, grow the backoff.
      e.backoff = next_backoff(e.backoff);
      e.retry_at = now + jittered(e.backoff);
      return FailAction::Failover;
    }
    if (!hard && e.consecutive_failures < params_.fail_threshold) {
      e.state = MethodHealth::Suspect;
      return FailAction::Retry;
    }
    e.state = MethodHealth::Dead;
    ++e.failovers;
    if (e.died_at == 0) e.died_at = now;
    e.backoff = params_.backoff_initial;
    e.retry_at = now + jittered(e.backoff);
    return FailAction::Failover;
  }

  /// Record a successful send; returns true when it restored a method that
  /// was Suspect/Dead/Probation (telemetry records those transitions).
  bool on_success(std::uint32_t method, std::uint32_t target) {
    auto it = entries_.find(Key{method, target});
    if (it == entries_.end()) return false;
    Entry& e = it->second;
    const bool restored = e.state != MethodHealth::Healthy;
    if (e.state == MethodHealth::Dead) ++e.restores;
    e.state = MethodHealth::Healthy;
    e.consecutive_failures = 0;
    e.backoff = 0;
    e.retry_at = 0;
    e.died_at = 0;
    return restored;
  }

 private:
  struct Entry : Status {};

  Time next_backoff(Time current) const noexcept {
    const double grown =
        static_cast<double>(current) * params_.backoff_multiplier;
    const auto capped = static_cast<Time>(grown);
    return capped > params_.backoff_max || capped < current
               ? params_.backoff_max
               : capped;
  }

  Time jittered(Time interval) noexcept {
    if (params_.backoff_jitter <= 0.0) return interval;
    const double f =
        1.0 + params_.backoff_jitter * (2.0 * rng_.next_double() - 1.0);
    const auto t = static_cast<Time>(static_cast<double>(interval) * f);
    return t > 0 ? t : 1;
  }

  HealthParams params_;
  util::Rng rng_;
  std::map<Key, Entry> entries_;
};

}  // namespace nexus
