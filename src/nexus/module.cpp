#include "nexus/module.hpp"

#include "nexus/telemetry/metrics.hpp"
#include "util/error.hpp"

namespace nexus {

void CommModule::bind_metrics(telemetry::MethodMetrics& mm) noexcept {
  mm.counters.merge(*counters_);
  own_counters_ = util::MethodCounters{};
  counters_ = &mm.counters;
  metrics_ = &mm;
}

ModuleRegistry& ModuleRegistry::global() {
  static ModuleRegistry instance;
  return instance;
}

void ModuleRegistry::register_factory(std::string name, Factory factory) {
  factories_[std::move(name)] = std::move(factory);
}

bool ModuleRegistry::has(std::string_view name) const {
  return factories_.find(name) != factories_.end();
}

std::unique_ptr<CommModule> ModuleRegistry::create(std::string_view name,
                                                   Context& ctx) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw util::MethodError("no communication module registered under '" +
                            std::string(name) + "'");
  }
  return it->second(ctx);
}

std::vector<std::string> ModuleRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [k, v] : factories_) out.push_back(k);
  return out;
}

}  // namespace nexus
