// Communication modules, communication objects, and the module registry.
//
// A CommModule implements one communication method for one context.  The
// abstract interface is the C++ rendering of the paper's per-module
// *function table* (§3.1): communication-oriented functions (send/poll), an
// initialization hook, and functions for constructing communication
// descriptors and communication objects.  The ModuleRegistry plays the role
// of the paper's loadable-module mechanism: modules are registered under a
// name and instantiated per context from the resource database, command
// line, or API calls.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "nexus/descriptor.hpp"
#include "nexus/types.hpp"
#include "util/stats.hpp"

namespace nexus {

namespace telemetry {
struct MethodMetrics;
}

class Context;
class CommModule;

/// An active connection: the information of one communication descriptor, a
/// pointer back to its module (the function table), plus module-specific
/// live state added by subclasses (e.g. the simulated socket / mailbox
/// binding).  Communication objects are cached by the context and shared
/// among startpoints referencing the same (context, method) pair.
class CommObject {
 public:
  CommObject(CommModule& module, CommDescriptor descriptor)
      : module_(&module), descriptor_(std::move(descriptor)) {}
  virtual ~CommObject() = default;

  CommObject(const CommObject&) = delete;
  CommObject& operator=(const CommObject&) = delete;

  CommModule& module() const noexcept { return *module_; }
  const CommDescriptor& descriptor() const noexcept { return descriptor_; }

 private:
  CommModule* module_;
  CommDescriptor descriptor_;
};

/// Result of polling a module once.
struct PollOutcome {
  std::optional<Packet> packet;
};

/// One communication method, instantiated per context.
class CommModule {
 public:
  virtual ~CommModule() = default;

  /// Method name as it appears in descriptors ("local", "mpl", "tcp", ...).
  virtual std::string_view name() const = 0;

  /// Called once after the owning context is fully constructed.
  virtual void initialize(Context& ctx) { (void)ctx; }

  /// Called when the owning context crash-restarts under a FaultPlan crash
  /// rule: discard all in-memory protocol state (sequence windows, reorder
  /// buffers, partial handshakes).  State a module models as living on
  /// stable storage -- e.g. the reliable wrapper's committed-delivery log --
  /// may survive; counters are cumulative and are never reset.
  virtual void on_crash_restart() {}

  /// Descriptor telling remote contexts how to reach *this* context via
  /// this method.
  virtual CommDescriptor local_descriptor() const = 0;

  /// Whether this module, running in the local context, can use `remote` to
  /// reach its target (the paper's applicability test -- e.g. MPL requires
  /// both contexts in the same partition).
  virtual bool applicable(const CommDescriptor& remote) const = 0;

  /// Construct a communication object for a remote descriptor.  Only called
  /// when applicable(remote) is true.
  virtual std::unique_ptr<CommObject> connect(const CommDescriptor& remote) = 0;

  /// Transmit one RSR packet over an established connection.  Charges the
  /// sender's per-message software overhead to the caller's clock and
  /// returns the delivery verdict plus the number of bytes that crossed (or
  /// would have crossed) the wire -- which may differ from the packet's
  /// size for compressing/encrypting methods.  A non-Ok status means the
  /// packet was NOT delivered and the caller owns recovery (retry or
  /// failover); silent loss remains the province of unreliable methods,
  /// which return Ok for packets the network may still lose.
  virtual SendResult send(CommObject& conn, Packet packet) = 0;

  /// Check for one incoming packet.  Does NOT charge poll cost -- the
  /// polling engine does that, so skip_poll accounting stays in one place.
  virtual std::optional<Packet> poll() = 0;

  /// Virtual cost of one poll of this method (e.g. 15 us for an MPL probe,
  /// 100+ us for a TCP select).  Realtime modules report 0 and pay the cost
  /// for real.
  virtual Time poll_cost() const = 0;

  /// Earliest arrival time of any queued-but-future message, if the module
  /// can know it (simulated modules can; realtime ones return nullopt).
  /// Lets the polling engine fast-forward idle waits in virtual time.
  virtual std::optional<Time> earliest_arrival() const = 0;

  /// True if this method could instead be serviced by a dedicated blocking
  /// thread (paper §3.3, AIX 4.1 discussion): the polling engine may then
  /// remove it from the poll loop entirely.
  virtual bool supports_blocking() const { return false; }

  /// Realtime fabric only: block until a packet arrives; returns nullopt
  /// after shutdown_blocking().  Only meaningful when supports_blocking().
  virtual std::optional<Packet> blocking_poll() { return std::nullopt; }
  virtual void shutdown_blocking() {}

  /// Rough speed rank used to order descriptor tables fastest-first; lower
  /// is faster (local=0, shm=1, myrinet=2, mpl=3, tcp=6, ...).
  virtual int speed_rank() const = 0;

  /// Whether the method delivers every message (RSR semantics).  Automatic
  /// selection prefers reliable methods and only falls back to unreliable
  /// ones (udp, mcast) when nothing reliable applies; applications opt in
  /// explicitly via Startpoint::force_method for loss-tolerant data.
  virtual bool reliable() const { return true; }

  /// For protocol wrappers (rel+udp): the name of the inner transport this
  /// method layers over.  Plain transports return nullopt.  The enquiry
  /// interface uses this to render the wrapper stack so quarantine/restore
  /// events attribute to the right layer.
  virtual std::optional<std::string> wraps() const { return std::nullopt; }

  /// The context a packet sent with `remote` lands on first.  Differs from
  /// remote.context when the target's partition has a forwarding node
  /// (paper §3.3); the selection-explanation enquiry uses this to report
  /// the relay.
  virtual ContextId landing_context(const CommDescriptor& remote) const {
    return remote.context;
  }

  /// Traffic/poll counters for the enquiry interface.  Module-local by
  /// default; the owning context rebinds them into the runtime's
  /// MetricsRegistry (bind_metrics) so one registry holds every context's
  /// counters and histograms.
  util::MethodCounters& counters() noexcept { return *counters_; }
  const util::MethodCounters& counters() const noexcept { return *counters_; }

  /// Rebind this module's counters into registry-owned storage and attach
  /// the per-method histograms.  Any counts accumulated before the rebind
  /// are merged into the new storage.
  void bind_metrics(telemetry::MethodMetrics& mm) noexcept;
  telemetry::MethodMetrics* metrics() const noexcept { return metrics_; }

  /// Interned tracer label for this module's name (assigned by the owning
  /// context so trace records avoid string lookups).
  std::uint16_t trace_label() const noexcept { return trace_label_; }
  void set_trace_label(std::uint16_t label) noexcept { trace_label_ = label; }

  /// method_hash(name()), computed once and cached.  Stable across
  /// contexts (unlike interned ids / trace labels), which is what lets the
  /// adaptive timing echo name a method without shipping the string.
  std::uint64_t name_hash() const noexcept {
    if (name_hash_ == 0) name_hash_ = method_hash(name());
    return name_hash_;
  }

 private:
  util::MethodCounters own_counters_;
  util::MethodCounters* counters_ = &own_counters_;
  telemetry::MethodMetrics* metrics_ = nullptr;
  std::uint16_t trace_label_ = 0;
  mutable std::uint64_t name_hash_ = 0;
};

/// Factory registry, keyed by method name.  Standing in for the paper's
/// dynamically loadable modules: a module compiled anywhere in the program
/// registers a factory, and contexts instantiate by name at startup or
/// later ("loaded dynamically" via load()).
class ModuleRegistry {
 public:
  using Factory = std::function<std::unique_ptr<CommModule>(Context&)>;

  /// Process-global registry.
  static ModuleRegistry& global();

  void register_factory(std::string name, Factory factory);
  bool has(std::string_view name) const;
  std::unique_ptr<CommModule> create(std::string_view name, Context& ctx) const;
  std::vector<std::string> names() const;

 private:
  std::map<std::string, Factory, std::less<>> factories_;
};

}  // namespace nexus
