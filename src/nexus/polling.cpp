#include "nexus/polling.hpp"

#include <algorithm>
#include <cassert>

#include "nexus/telemetry/export.hpp"
#include "nexus/telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace nexus {

void PollingEngine::attach_telemetry(telemetry::Telemetry& tele,
                                     std::uint32_t context_id) {
  tracer_ = &tele.tracer();
  flight_ = tele.flight(context_id);
  metrics_ = &tele.metrics();
  cmetrics_ = &tele.metrics().context(context_id);
  context_id_ = context_id;
}

void PollingEngine::add_module(CommModule& module, std::uint64_t skip) {
  Entry e;
  e.module = &module;
  e.cost = module.poll_cost();
  e.skip = std::max<std::uint64_t>(1, skip);
  entries_.push_back(e);
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.module->speed_rank() < b.module->speed_rank();
                   });
}

PollingEngine::Entry* PollingEngine::find(std::string_view method) {
  for (auto& e : entries_) {
    if (e.module->name() == method) return &e;
  }
  return nullptr;
}

const PollingEngine::Entry* PollingEngine::find(std::string_view method) const {
  for (const auto& e : entries_) {
    if (e.module->name() == method) return &e;
  }
  return nullptr;
}

void PollingEngine::set_skip(std::string_view method, std::uint64_t skip) {
  Entry* e = find(method);
  if (e == nullptr) {
    throw util::MethodError("set_skip: no module '" + std::string(method) +
                            "' in the polling set");
  }
  e->skip = std::max<std::uint64_t>(1, skip);
}

std::uint64_t PollingEngine::skip(std::string_view method) const {
  const Entry* e = find(method);
  if (e == nullptr) {
    throw util::MethodError("skip: no module '" + std::string(method) +
                            "' in the polling set");
  }
  return e->skip;
}

void PollingEngine::set_enabled(std::string_view method, bool enabled) {
  Entry* e = find(method);
  if (e == nullptr) {
    throw util::MethodError("set_enabled: no module '" + std::string(method) +
                            "' in the polling set");
  }
  e->enabled = enabled;
}

bool PollingEngine::enabled(std::string_view method) const {
  const Entry* e = find(method);
  return e != nullptr && e->enabled;
}

void PollingEngine::set_blocking(std::string_view method, bool on) {
  Entry* e = find(method);
  if (e == nullptr) {
    throw util::MethodError("set_blocking: no module '" + std::string(method) +
                            "' in the polling set");
  }
  if (on && !e->module->supports_blocking()) {
    throw util::MethodError("method '" + std::string(method) +
                            "' does not support a blocking poller");
  }
  e->blocking = on;
  if (on) e->skip = 1;
}

bool PollingEngine::blocking(std::string_view method) const {
  const Entry* e = find(method);
  return e != nullptr && e->blocking;
}

void PollingEngine::set_adaptive(std::string_view method, bool on,
                                 std::uint64_t miss_threshold,
                                 std::uint64_t max_skip) {
  Entry* e = find(method);
  if (e == nullptr) {
    throw util::MethodError("set_adaptive: no module '" + std::string(method) +
                            "' in the polling set");
  }
  e->adaptive = on;
  e->adaptive_threshold = std::max<std::uint64_t>(1, miss_threshold);
  e->adaptive_max = std::max<std::uint64_t>(1, max_skip);
  if (on) e->consecutive_misses = 0;
}

bool PollingEngine::poll_once() {
  // Handlers may perform RSRs, which re-enter poll_once; snapshot this
  // call's iteration number so nested calls cannot corrupt the skip checks
  // for the entries still to be visited.
  const std::uint64_t iter = ++iteration_;
  clock_->advance(per_iteration_overhead_);
  if (exporter_ != nullptr) exporter_->maybe_sample(clock_->now());
  const bool metrics_on = cmetrics_ != nullptr && metrics_->enabled();
  if (metrics_on) {
    // Sampled poll cadence: one clock read per kPollSampleEvery iterations,
    // recording the windowed mean interval.
    if (poll_sample_countdown_ == 0) {
      const Time tnow = clock_->now();
      if (last_sample_time_ > 0 && tnow > last_sample_time_) {
        cmetrics_->poll_interval_ns.add(
            static_cast<std::uint64_t>(tnow - last_sample_time_) /
            telemetry::kPollSampleEvery);
      }
      last_sample_time_ = tnow;
      poll_sample_countdown_ = telemetry::kPollSampleEvery;
    }
    --poll_sample_countdown_;
  }
  bool delivered = false;
  for (Entry& e : entries_) {
    if (!e.enabled) continue;
    if (iter % e.skip != 0) continue;
    clock_->advance(poll_cost_of(e));
    e.module->counters().polls += 1;
    bool hit = false;
    std::uint64_t drained = 0;
    while (auto pkt = e.module->poll()) {
      hit = true;
      if (pkt->corrupted) {
        // Receiver-side quarantine: a fault rule damaged this packet in
        // flight.  It counts as a poll hit (the wire delivered bytes) but
        // is never dispatched.
        e.module->counters().poll_hits += 1;
        e.module->counters().recv_corrupt += 1;
        continue;
      }
      delivered = true;
      ++drained;
      e.module->counters().poll_hits += 1;
      e.module->counters().recvs += 1;
      e.module->counters().bytes_received += pkt->wire_size();
      // PollHit is transport detail, sampled only when span tracing is on
      // (the always-on flight path keeps to the causal/failure events).
      if (drained == 1 && tracer_ != nullptr && tracer_->enabled()) {
        const telemetry::Event ev{clock_->now(), pkt->span, context_id_,
                                  telemetry::Phase::PollHit,
                                  e.module->trace_label(), pkt->wire_size(),
                                  0, 0, pkt->trace};
        if (flight_ != nullptr && flight_->enabled()) flight_->record(ev);
        tracer_->record(ev);
      }
      if (metrics_on && e.module->metrics() != nullptr) {
        e.module->metrics()->recv_bytes.add(pkt->wire_size());
      }
      sink_(std::move(*pkt), e.module);
    }
    if (drained > 0 && metrics_on) {
      cmetrics_->poll_batch.add(drained);
    }
    if (e.adaptive) {
      if (hit) {
        e.skip = 1;
        e.consecutive_misses = 0;
      } else if (++e.consecutive_misses >= e.adaptive_threshold) {
        e.consecutive_misses = 0;
        e.skip = std::min(e.skip * 2, e.adaptive_max);
      }
    }
  }
  return delivered;
}

Time PollingEngine::full_iteration_cost() const {
  Time t = per_iteration_overhead_;
  for (const Entry& e : entries_) {
    if (e.enabled) t += poll_cost_of(e);
  }
  return t;
}

Time PollingEngine::cost_of_next(std::uint64_t n) const {
  Time t = static_cast<Time>(n) * per_iteration_overhead_;
  for (const Entry& e : entries_) {
    if (!e.enabled) continue;
    const std::uint64_t polls =
        (iteration_ + n) / e.skip - iteration_ / e.skip;
    t += static_cast<Time>(polls) * poll_cost_of(e);
  }
  return t;
}

std::uint64_t PollingEngine::detection_steps(const Entry& target,
                                             Time arrival) const {
  const Time now = clock_->now();
  const Time need = arrival > now ? arrival - now : 0;

  // Fast path: with every enabled method at skip 1 (the common case) each
  // iteration costs the same, so the detecting slot is a division instead
  // of a binary search over cost_of_next.
  bool uniform = true;
  for (const Entry& e : entries_) {
    if (e.enabled && e.skip != 1) {
      uniform = false;
      break;
    }
  }
  if (uniform) {
    Time head = per_iteration_overhead_;
    for (const Entry& e : entries_) {
      if (!e.enabled) continue;
      head += poll_cost_of(e);
      if (&e == &target) break;
    }
    if (head >= need) return 1;
    const Time full = full_iteration_cost();
    if (full <= 0) {
      throw util::UsageError(
          "polling engine cannot make progress: zero-cost iterations while "
          "waiting for a future arrival");
    }
    return 1 + static_cast<std::uint64_t>((need - head + full - 1) / full);
  }

  // Cost from the start of iteration (iteration_ + n) up to and including
  // the poll of `target` within that iteration; n must be a poll slot of
  // `target`.
  auto cost_at_slot = [&](std::uint64_t n) -> Time {
    Time t = cost_of_next(n - 1) + per_iteration_overhead_;
    for (const Entry& e : entries_) {
      if (!e.enabled) continue;
      if ((iteration_ + n) % e.skip != 0) continue;
      t += poll_cost_of(e);
      if (&e == &target) break;
    }
    return t;
  };

  // Slots of `target` are at absolute iterations j * skip for j >= j0.
  const std::uint64_t skip = target.skip;
  const std::uint64_t j0 = iteration_ / skip + 1;
  auto n_of = [&](std::uint64_t j) { return j * skip - iteration_; };

  if (cost_at_slot(n_of(j0)) >= need) return n_of(j0);

  // Exponential search for an upper bound, then binary search.
  std::uint64_t lo = j0, hi = j0;
  std::uint64_t span = 1;
  while (cost_at_slot(n_of(hi)) < need) {
    lo = hi;
    hi += span;
    span *= 2;
    if (span > (1ull << 40)) {
      throw util::UsageError(
          "polling engine cannot make progress: zero-cost iterations while "
          "waiting for a future arrival");
    }
  }
  while (lo + 1 < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (cost_at_slot(n_of(mid)) >= need) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return n_of(hi);
}

void PollingEngine::bulk_advance(std::uint64_t n) {
  if (n == 0) return;
  const Time dt = cost_of_next(n);
  for (Entry& e : entries_) {
    if (!e.enabled) continue;
    const std::uint64_t polls =
        (iteration_ + n) / e.skip - iteration_ / e.skip;
    e.module->counters().polls += polls;
  }
  iteration_ += n;
  clock_->advance(dt);
}

bool PollingEngine::fast_forward() {
  std::uint64_t best_n = 0;
  bool found = false;
  for (const Entry& e : entries_) {
    if (!e.enabled) continue;
    const auto arrival = e.module->earliest_arrival();
    if (!arrival) continue;
    const std::uint64_t n = detection_steps(e, *arrival);
    if (!found || n < best_n) {
      best_n = n;
      found = true;
    }
  }
  if (!found) return false;
  // Advance through the iterations before the detecting one; the caller's
  // next poll_once() performs the detection itself.
  bulk_advance(best_n - 1);
  return true;
}

void PollingEngine::account_idle(Time dt) {
  if (dt <= 0 || cost_of_next(1) <= 0 || cost_of_next(1) > dt) return;
  bool uniform = true;
  for (const Entry& e : entries_) {
    if (e.enabled && e.skip != 1) {
      uniform = false;
      break;
    }
  }
  std::uint64_t lo = 1, hi = 2;
  if (uniform) {
    // Constant per-iteration cost: the iteration count is a division.
    lo = static_cast<std::uint64_t>(dt / full_iteration_cost());
  } else {
    while (cost_of_next(hi) <= dt && hi < (1ull << 40)) {
      lo = hi;
      hi *= 2;
    }
    while (lo + 1 < hi) {
      const std::uint64_t mid = lo + (hi - lo) / 2;
      if (cost_of_next(mid) <= dt) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
  }
  for (Entry& e : entries_) {
    if (!e.enabled) continue;
    e.module->counters().polls +=
        (iteration_ + lo) / e.skip - iteration_ / e.skip;
  }
  iteration_ += lo;
}

void PollingEngine::wait(const std::function<bool()>& done) {
  for (;;) {
    const bool delivered = poll_once();
    if (done()) return;
    if (delivered) continue;
    if (clock_->simulated()) {
      if (!fast_forward()) {
        // Nothing in flight toward this context: park until a post, then
        // credit the iterations a spinning engine would have performed.
        const Time t0 = clock_->now();
        clock_->idle_wait();
        account_idle(clock_->now() - t0);
      }
    } else {
      clock_->idle_wait();
    }
  }
}

}  // namespace nexus
