// The unified polling engine (paper §3.3).
//
// One polling function iterates over every registered communication
// method.  Because poll costs differ wildly between methods (an MPL probe
// is ~15 us, a TCP select is 100+ us), the engine supports a per-method
// *skip_poll* parameter: a method with skip s is polled only on every s-th
// iteration.  Methods can also be disabled entirely (the paper's "selective
// TCP" best case, and the forwarding configuration where only the
// forwarding node polls TCP), or handed to a dedicated blocking poller
// thread where supported.
//
// Under the simulated fabric, idle waits are fast-forwarded analytically:
// the engine computes the exact iteration at which the next pending message
// would be *detected* -- respecting each method's skip schedule -- and
// advances the virtual clock there in one step instead of spinning.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "nexus/clock.hpp"
#include "nexus/module.hpp"
#include "nexus/types.hpp"

namespace nexus {

namespace telemetry {
class Telemetry;
class Tracer;
class FlightRecorder;
class MetricsRegistry;
class MetricsExporter;
struct ContextMetrics;
}

class PollingEngine {
 public:
  /// `sink` receives every packet the engine pulls off a module, along
  /// with the module it arrived through (the adaptive cost model uses the
  /// module to attribute one-way timing samples).
  PollingEngine(ContextClock& clock,
                std::function<void(Packet, CommModule*)> sink,
                Time per_iteration_overhead = 0, Time blocking_check_cost = 0)
      : clock_(&clock),
        sink_(std::move(sink)),
        per_iteration_overhead_(per_iteration_overhead),
        blocking_check_cost_(blocking_check_cost) {}

  /// Register a module; entries are kept sorted fastest-first (by
  /// speed_rank) so cheap methods are polled at the front of the loop.
  void add_module(CommModule& module, std::uint64_t skip = 1);

  /// Attach the runtime's observability bundle (called by the owning
  /// context at construction).  When attached, poll_once samples the poll
  /// cadence into the context's metrics and records poll-hit trace events.
  void attach_telemetry(telemetry::Telemetry& tele, std::uint32_t context_id);

  /// Attach a metrics exporter: poll_once gives it a chance to take a
  /// periodic snapshot (one relaxed atomic load when no sample is due).
  void set_exporter(telemetry::MetricsExporter* exporter) {
    exporter_ = exporter;
  }

  /// Per-method skip_poll control.
  void set_skip(std::string_view method, std::uint64_t skip);
  std::uint64_t skip(std::string_view method) const;

  /// Enable/disable polling a method altogether.
  void set_enabled(std::string_view method, bool enabled);
  bool enabled(std::string_view method) const;

  /// Hand a method to a (modelled) blocking poller thread: it stays in the
  /// loop but costs only a cheap readiness check per iteration instead of
  /// its full poll cost, approximating a dedicated thread that has already
  /// performed the expensive blocking call.  Forces skip back to 1.
  void set_blocking(std::string_view method, bool on);
  bool blocking(std::string_view method) const;

  /// Adaptive skip_poll (paper future work §6): when enabled for a method,
  /// its skip is doubled after each run of `miss_threshold` consecutive
  /// empty polls (up to `max_skip`) and reset to 1 on any hit.
  void set_adaptive(std::string_view method, bool on,
                    std::uint64_t miss_threshold = 8,
                    std::uint64_t max_skip = 4096);

  /// One iteration of the unified polling function.  Returns true if any
  /// packet was delivered to the sink.
  bool poll_once();

  /// Poll until `done()` returns true.  Fast-forwards idle periods under
  /// the simulated fabric; parks on the activity channel otherwise.
  void wait(const std::function<bool()>& done);

  /// Total iterations of the unified polling function so far.
  std::uint64_t iterations() const noexcept { return iteration_; }

  /// Cost of one full iteration with every enabled module polled (used by
  /// benchmark reporting).
  Time full_iteration_cost() const;

 private:
  struct Entry {
    CommModule* module = nullptr;
    /// module->poll_cost(), cached at registration: the cost is a fixed
    /// parameter of the method, and the fast-forward binary search calls
    /// poll_cost_of millions of times per run.
    Time cost = 0;
    std::uint64_t skip = 1;
    bool enabled = true;
    bool blocking = false;
    bool adaptive = false;
    std::uint64_t adaptive_threshold = 8;
    std::uint64_t adaptive_max = 4096;
    std::uint64_t consecutive_misses = 0;
  };

  Entry* find(std::string_view method);
  const Entry* find(std::string_view method) const;

  /// Per-poll cost of an entry (cheap check when blocking-serviced).
  Time poll_cost_of(const Entry& e) const {
    return e.blocking ? blocking_check_cost_ : e.cost;
  }

  /// Virtual time consumed by iterations (iteration_, iteration_ + n].
  Time cost_of_next(std::uint64_t n) const;

  /// Smallest n >= 1 such that iteration_ + n polls `e` and lands at or
  /// after absolute time `arrival`.  Returns n.
  std::uint64_t detection_steps(const Entry& e, Time arrival) const;

  /// Advance clock and counters through n iterations without touching the
  /// modules' queues (they are known to be empty until then); notifies
  /// modules of skipped polls so side effects (interference penalties)
  /// still apply.
  void bulk_advance(std::uint64_t n);

  /// Returns false when no module knows a pending arrival.
  bool fast_forward();

  /// After an idle block of `dt` virtual time, credit the iterations the
  /// engine would have spun through, so the skip schedule's phase and the
  /// poll counters match a continuously-spinning engine.
  void account_idle(Time dt);

  ContextClock* clock_;
  std::function<void(Packet, CommModule*)> sink_;
  Time per_iteration_overhead_;
  Time blocking_check_cost_;
  std::vector<Entry> entries_;
  std::uint64_t iteration_ = 0;

  // Observability (see attach_telemetry).  Poll intervals are sampled as
  // the windowed mean over kPollSampleEvery iterations so the per-poll
  // overhead stays at one counter increment when metrics are on.
  telemetry::Tracer* tracer_ = nullptr;
  telemetry::FlightRecorder* flight_ = nullptr;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  telemetry::ContextMetrics* cmetrics_ = nullptr;
  telemetry::MetricsExporter* exporter_ = nullptr;
  std::uint32_t context_id_ = 0;
  std::uint64_t poll_sample_countdown_ = 0;
  Time last_sample_time_ = 0;
};

}  // namespace nexus
