#include "nexus/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <thread>

#include "nexus/telemetry/export.hpp"
#include "nexus/telemetry/stitch.hpp"
#include "proto/register.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace nexus {

namespace {
/// Boolean-ish environment switch (NEXUS_TRACE); nullopt when unrecognized.
std::optional<bool> parse_env_switch(std::string_view v) {
  if (v == "1" || v == "on" || v == "true" || v == "yes") return true;
  if (v == "0" || v == "off" || v == "false" || v == "no") return false;
  return std::nullopt;
}
}  // namespace

Runtime::Runtime(RuntimeOptions opts) : opts_(std::move(opts)) {
  if (opts_.topology.size() == 0) {
    throw util::UsageError("runtime requires a non-empty topology");
  }
  for (const auto& [partition, fwd] : opts_.forwarders) {
    if (fwd >= opts_.topology.size()) {
      throw util::UsageError("forwarder context id out of range");
    }
    if (opts_.topology.partition_of(fwd) != partition) {
      throw util::UsageError(
          "a partition's forwarder must live in that partition");
    }
  }
  if (opts_.fabric == RuntimeOptions::Fabric::Simulated) {
    sim_ = std::make_unique<SimFabric>(opts_.topology);
    sim_->set_faults(opts_.faults, opts_.seed);
  } else {
    rt_ = std::make_unique<RtFabric>(opts_.topology);
    opts_.costs = SimCostParams::realtime(opts_.costs);
  }
  // Environment overrides, mirroring NEXUS_LOG in util/log.cpp: NEXUS_TRACE
  // toggles span tracing, NEXUS_FLIGHT_DIR arms flight dumping.  Options
  // set explicitly in code win for the flight dir (the env var only fills
  // an empty field); NEXUS_TRACE deliberately overrides options so a failing
  // run can be re-executed with tracing without a rebuild.
  if (const char* env = std::getenv("NEXUS_TRACE")) {
    if (auto on = parse_env_switch(env)) {
      opts_.tracing = *on;
    } else {
      std::fprintf(stderr,
                   "[WARN ] nexus: unrecognized NEXUS_TRACE value '%s' "
                   "(expected 1/0/on/off/true/false/yes/no)\n",
                   env);
    }
  }
  if (opts_.flight_dir.empty()) {
    if (const char* env = std::getenv("NEXUS_FLIGHT_DIR")) {
      opts_.flight_dir = env;
    }
  }
  // Scheduler-shard count.  Explicit opts.threads >= 1 wins (tests pin
  // themselves single-shard that way); 0 = auto: NEXUS_THREADS env, then
  // the runtime.threads database key, then 1.
  unsigned threads = opts_.threads;
  if (threads == 0) {
    if (const char* env = std::getenv("NEXUS_THREADS")) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(env, &end, 10);
      if (end != env && *end == '\0' && v >= 1) {
        threads = static_cast<unsigned>(v);
      } else {
        std::fprintf(stderr,
                     "[WARN ] nexus: unrecognized NEXUS_THREADS value '%s' "
                     "(expected a positive integer)\n",
                     env);
      }
    }
  }
  if (threads == 0) {
    if (auto v = opts_.db.get("runtime.threads")) {
      threads = static_cast<unsigned>(std::strtoul(v->c_str(), nullptr, 10));
    }
  }
  if (threads == 0) threads = 1;
  // More shards than contexts would only park idle scheduler threads; the
  // parked-mask protocol also caps the group at 64 shards.
  threads_ = static_cast<unsigned>(std::min<std::size_t>(
      {threads, world_size(), simnet::ShardGroup::kMaxShards}));
  if (sim_) {
    sim_->init_shards(threads_);
  } else {
    threads_ = 1;  // the realtime fabric is already thread-per-context
  }
  telemetry_.tracer().set_capacity(opts_.trace_capacity);
  telemetry_.tracer().enable(opts_.tracing);
  telemetry_.metrics().enable(opts_.metrics);
  telemetry_.init_flights(static_cast<std::uint32_t>(world_size()),
                          opts_.flight_capacity, opts_.flight);
  telemetry_.set_flight_dir(opts_.flight_dir);

  telemetry::MetricsExporter::Options eopts;
  eopts.jsonl_path = opts_.export_jsonl;
  eopts.prom_path = opts_.export_prom;
  eopts.interval = opts_.export_interval;
  if (auto v = opts_.db.get("export.jsonl")) eopts.jsonl_path = *v;
  if (auto v = opts_.db.get("export.prom")) eopts.prom_path = *v;
  if (auto v = opts_.db.get("export.interval_ms")) {
    eopts.interval =
        static_cast<Time>(std::strtoull(v->c_str(), nullptr, 10)) *
        simnet::kMs;
  }
  if (!eopts.jsonl_path.empty() || !eopts.prom_path.empty()) {
    exporter_ =
        std::make_unique<telemetry::MetricsExporter>(&telemetry_, eopts);
    // Providers snapshot live per-context state; on the realtime fabric
    // these reads are unsynchronized best-effort views, same as describe().
    exporter_->add_provider("health", [this] {
      std::string out = "[";
      bool first = true;
      for (const auto& c : contexts_) {
        if (!c) continue;
        if (!first) out += ",";
        first = false;
        out += c->health_json();
      }
      return out += "]";
    });
    exporter_->add_provider("cost_model", [this] {
      std::string out = "[";
      bool first = true;
      for (const auto& c : contexts_) {
        if (!c) continue;
        if (!first) out += ",";
        first = false;
        out += c->cost_model_json();
      }
      return out += "]";
    });
  }
  rt_epoch_ = std::chrono::steady_clock::now();
  proto::register_builtin_modules(registry_);
}

Runtime::~Runtime() = default;

const DescriptorTable& Runtime::table_of(ContextId id) const {
  if (id >= tables_.size()) {
    throw util::UsageError("table_of: unknown context " + std::to_string(id));
  }
  return tables_[id];
}

std::optional<ContextId> Runtime::forwarder_of(ContextId target) const {
  const int partition = opts_.topology.partition_of(target);
  auto it = opts_.forwarders.find(partition);
  if (it == opts_.forwarders.end()) return std::nullopt;
  return it->second;
}

bool Runtime::is_forwarder(ContextId id) const {
  for (const auto& [partition, fwd] : opts_.forwarders) {
    if (fwd == id) return true;
  }
  return false;
}

Context& Runtime::context(ContextId id) {
  if (id >= contexts_.size() || !contexts_[id]) {
    throw util::UsageError("context " + std::to_string(id) +
                           " is not constructed (call run() first)");
  }
  return *contexts_[id];
}

void Runtime::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw util::UsageError("write_chrome_trace: cannot open '" + path + "'");
  }
  out << telemetry_.tracer().chrome_json();
}

void Runtime::write_stitched_trace(const std::string& path) const {
  telemetry::TraceStitcher stitcher;
  stitcher.add_tracer(telemetry_.tracer());
  if (!stitcher.write(path)) {
    throw util::UsageError("write_stitched_trace: cannot open '" + path +
                           "'");
  }
}

std::string Runtime::describe() const {
  // Counters come from a registry snapshot: modules bind their counters
  // into the registry, so this is the same data the enquiry dumps
  // (telemetry().metrics().to_text/to_json) report.
  const telemetry::MetricsRegistry::Snapshot snap =
      telemetry_.metrics().snapshot();
  std::string out;
  out += "runtime: " + std::to_string(world_size()) + " contexts, " +
         std::to_string(opts_.topology.partition_count()) + " partitions, " +
         (sim_ ? "simulated" : "realtime") + " fabric\n";
  for (const auto& [partition, fwd] : opts_.forwarders) {
    out += "  forwarder for partition " + std::to_string(partition) +
           ": context " + std::to_string(fwd) + "\n";
  }
  for (ContextId id = 0; id < contexts_.size(); ++id) {
    if (!contexts_[id]) continue;
    const Context& ctx = *contexts_[id];
    out += "context " + std::to_string(id) + " (partition " +
           std::to_string(opts_.topology.partition_of(id)) + "):\n";
    for (const std::string& m : ctx.methods()) {
      const telemetry::MethodMetrics* mm = snap.find_method(id, m);
      const util::MethodCounters c =
          mm != nullptr ? mm->counters : util::MethodCounters{};
      const PollingEngine& engine = ctx.polling_engine();
      out += "  " + m;
      if (!engine.enabled(m)) {
        out += " [not polled]";
      } else {
        const auto skip = engine.skip(m);
        if (skip > 1) out += " [skip " + std::to_string(skip) + "]";
        if (engine.blocking(m)) out += " [blocking poller]";
      }
      out += ": sent " + std::to_string(c.sends) + " msg/" +
             std::to_string(c.bytes_sent) + " B, recv " +
             std::to_string(c.recvs) + " msg/" +
             std::to_string(c.bytes_received) + " B, polls " +
             std::to_string(c.polls) + " (hits " +
             std::to_string(c.poll_hits) + ")\n";
    }
  }
  return out;
}

std::vector<std::string> Runtime::module_names_for(ContextId id) const {
  if (auto scoped = opts_.db.get_scoped(id, "nexus.modules")) {
    return util::split_list(*scoped);
  }
  return opts_.modules;
}

std::unique_ptr<Context> Runtime::make_context(ContextId id) {
  std::unique_ptr<ContextClock> clock;
  if (sim_) {
    clock = std::make_unique<SimClock>(sim_->process_of(id));
  } else {
    // All realtime clocks share the runtime's epoch so cross-context
    // timestamp differences (RSR one-way times) are meaningful.
    clock = std::make_unique<RtClock>(rt_epoch_, rt_->host(id).activity);
  }
  auto ctx = std::make_unique<Context>(*this, id, std::move(clock),
                                       opts_.costs);
  for (const std::string& name : module_names_for(id)) {
    ctx->add_module(registry_.create(name, *ctx));
  }
  return ctx;
}

void Runtime::build_contexts() {
  contexts_.resize(world_size());
  tables_.resize(world_size());
  for (ContextId id = 0; id < world_size(); ++id) {
    contexts_[id] = make_context(id);
  }
  // finalize after all contexts exist, so modules that need to inspect the
  // whole fabric (e.g. to resolve forwarders) can do so.
  for (ContextId id = 0; id < world_size(); ++id) {
    contexts_[id]->finalize_modules();
    tables_[id] = contexts_[id]->local_table();
  }
  // Forwarding: only the forwarder keeps polling TCP in a forwarded
  // partition; everyone else drops the expensive poll entirely.
  for (ContextId id = 0; id < world_size(); ++id) {
    Context& ctx = *contexts_[id];
    if (ctx.module("tcp") == nullptr) continue;
    if (forwarder_of(id).has_value() && !is_forwarder(id)) {
      ctx.set_poll_enabled("tcp", false);
    }
  }
  if (exporter_ != nullptr && exporter_->active()) {
    // Every polling loop offers to sample; the exporter's CAS elects one.
    for (auto& c : contexts_) {
      c->polling_engine().set_exporter(exporter_.get());
    }
  }
}

void Runtime::run(std::function<void(Context&)> fn) {
  std::vector<std::function<void(Context&)>> fns(world_size(), fn);
  run(std::move(fns));
}

void Runtime::run(std::vector<std::function<void(Context&)>> fns) {
  if (ran_) {
    throw util::UsageError("Runtime::run may only be called once");
  }
  if (fns.size() != world_size()) {
    throw util::UsageError("run: got " + std::to_string(fns.size()) +
                           " functions for a world of " +
                           std::to_string(world_size()));
  }
  ran_ = true;
  fns_ = std::move(fns);

  if (sim_) {
    for (ContextId id = 0; id < world_size(); ++id) {
      auto& proc = sim_->scheduler_for(id).spawn(
          "ctx" + std::to_string(id), [this, id] { fns_[id](*contexts_[id]); });
      proc.set_horizon_slack(opts_.sim_slack);
      sim_->register_process(id, &proc);
    }
    for (ContextId id = 0; id < world_size(); ++id) {
      auto host = std::make_unique<SimHost>();
      host->proc = &sim_->process_of(id);
      sim_->add_host(std::move(host));
    }
    build_contexts();
    if (threads_ <= 1) {
      try {
        sim_->scheduler().run();
      } catch (...) {
        // Preserve the last moments of every context before unwinding: the
        // flight dump is the post-mortem for whatever threw.
        telemetry_.dump_flight("unhandled-fault");
        throw;
      }
    } else {
      // One scheduler shard per worker thread; shard 0 runs on the calling
      // thread.  A failing shard aborts the group so the others' idle
      // parks unwind instead of waiting for traffic that never comes, and
      // the lowest failing shard's exception is the one rethrown.
      std::vector<std::exception_ptr> shard_errors(threads_);
      auto run_shard = [this, &shard_errors](std::size_t s) {
        try {
          sim_->scheduler(s).run();
        } catch (...) {
          shard_errors[s] = std::current_exception();
          sim_->shard_group()->abort();
        }
      };
      std::vector<std::thread> workers;
      workers.reserve(threads_ - 1);
      for (std::size_t s = 1; s < threads_; ++s) {
        workers.emplace_back(run_shard, s);
      }
      run_shard(0);
      for (auto& t : workers) t.join();
      for (const auto& e : shard_errors) {
        if (e) {
          telemetry_.dump_flight("unhandled-fault");
          std::rethrow_exception(e);
        }
      }
    }
    if (exporter_ != nullptr && exporter_->active()) {
      // Final snapshot so short runs export at least one sample.
      exporter_->sample(contexts_[0]->now());
    }
    return;
  }

  for (ContextId id = 0; id < world_size(); ++id) {
    rt_->add_host(std::make_unique<RtHost>());
  }
  build_contexts();

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(world_size());
  threads.reserve(world_size());
  for (ContextId id = 0; id < world_size(); ++id) {
    threads.emplace_back([this, id, &errors] {
      try {
        fns_[id](*contexts_[id]);
      } catch (...) {
        errors[id] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) {
      telemetry_.dump_flight("unhandled-fault");
      std::rethrow_exception(e);
    }
  }
  if (exporter_ != nullptr && exporter_->active()) {
    exporter_->sample(contexts_[0]->now());
  }
}

}  // namespace nexus
