#include "nexus/runtime.hpp"

#include <chrono>
#include <fstream>
#include <thread>

#include "proto/register.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace nexus {

Runtime::Runtime(RuntimeOptions opts) : opts_(std::move(opts)) {
  if (opts_.topology.size() == 0) {
    throw util::UsageError("runtime requires a non-empty topology");
  }
  for (const auto& [partition, fwd] : opts_.forwarders) {
    if (fwd >= opts_.topology.size()) {
      throw util::UsageError("forwarder context id out of range");
    }
    if (opts_.topology.partition_of(fwd) != partition) {
      throw util::UsageError(
          "a partition's forwarder must live in that partition");
    }
  }
  if (opts_.fabric == RuntimeOptions::Fabric::Simulated) {
    sim_ = std::make_unique<SimFabric>(opts_.topology);
    sim_->set_faults(opts_.faults, opts_.seed);
  } else {
    rt_ = std::make_unique<RtFabric>(opts_.topology);
    opts_.costs = SimCostParams::realtime(opts_.costs);
  }
  telemetry_.tracer().set_capacity(opts_.trace_capacity);
  telemetry_.tracer().enable(opts_.tracing);
  telemetry_.metrics().enable(opts_.metrics);
  rt_epoch_ = std::chrono::steady_clock::now();
  proto::register_builtin_modules(registry_);
}

Runtime::~Runtime() = default;

const DescriptorTable& Runtime::table_of(ContextId id) const {
  if (id >= tables_.size()) {
    throw util::UsageError("table_of: unknown context " + std::to_string(id));
  }
  return tables_[id];
}

std::optional<ContextId> Runtime::forwarder_of(ContextId target) const {
  const int partition = opts_.topology.partition_of(target);
  auto it = opts_.forwarders.find(partition);
  if (it == opts_.forwarders.end()) return std::nullopt;
  return it->second;
}

bool Runtime::is_forwarder(ContextId id) const {
  for (const auto& [partition, fwd] : opts_.forwarders) {
    if (fwd == id) return true;
  }
  return false;
}

Context& Runtime::context(ContextId id) {
  if (id >= contexts_.size() || !contexts_[id]) {
    throw util::UsageError("context " + std::to_string(id) +
                           " is not constructed (call run() first)");
  }
  return *contexts_[id];
}

void Runtime::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw util::UsageError("write_chrome_trace: cannot open '" + path + "'");
  }
  out << telemetry_.tracer().chrome_json();
}

std::string Runtime::describe() const {
  // Counters come from a registry snapshot: modules bind their counters
  // into the registry, so this is the same data the enquiry dumps
  // (telemetry().metrics().to_text/to_json) report.
  const telemetry::MetricsRegistry::Snapshot snap =
      telemetry_.metrics().snapshot();
  std::string out;
  out += "runtime: " + std::to_string(world_size()) + " contexts, " +
         std::to_string(opts_.topology.partition_count()) + " partitions, " +
         (sim_ ? "simulated" : "realtime") + " fabric\n";
  for (const auto& [partition, fwd] : opts_.forwarders) {
    out += "  forwarder for partition " + std::to_string(partition) +
           ": context " + std::to_string(fwd) + "\n";
  }
  for (ContextId id = 0; id < contexts_.size(); ++id) {
    if (!contexts_[id]) continue;
    const Context& ctx = *contexts_[id];
    out += "context " + std::to_string(id) + " (partition " +
           std::to_string(opts_.topology.partition_of(id)) + "):\n";
    for (const std::string& m : ctx.methods()) {
      const telemetry::MethodMetrics* mm = snap.find_method(id, m);
      const util::MethodCounters c =
          mm != nullptr ? mm->counters : util::MethodCounters{};
      const PollingEngine& engine = ctx.polling_engine();
      out += "  " + m;
      if (!engine.enabled(m)) {
        out += " [not polled]";
      } else {
        const auto skip = engine.skip(m);
        if (skip > 1) out += " [skip " + std::to_string(skip) + "]";
        if (engine.blocking(m)) out += " [blocking poller]";
      }
      out += ": sent " + std::to_string(c.sends) + " msg/" +
             std::to_string(c.bytes_sent) + " B, recv " +
             std::to_string(c.recvs) + " msg/" +
             std::to_string(c.bytes_received) + " B, polls " +
             std::to_string(c.polls) + " (hits " +
             std::to_string(c.poll_hits) + ")\n";
    }
  }
  return out;
}

std::vector<std::string> Runtime::module_names_for(ContextId id) const {
  if (auto scoped = opts_.db.get_scoped(id, "nexus.modules")) {
    return util::split_list(*scoped);
  }
  return opts_.modules;
}

std::unique_ptr<Context> Runtime::make_context(ContextId id) {
  std::unique_ptr<ContextClock> clock;
  if (sim_) {
    clock = std::make_unique<SimClock>(sim_->scheduler().process(id));
  } else {
    // All realtime clocks share the runtime's epoch so cross-context
    // timestamp differences (RSR one-way times) are meaningful.
    clock = std::make_unique<RtClock>(rt_epoch_, rt_->host(id).activity);
  }
  auto ctx = std::make_unique<Context>(*this, id, std::move(clock),
                                       opts_.costs);
  for (const std::string& name : module_names_for(id)) {
    ctx->add_module(registry_.create(name, *ctx));
  }
  return ctx;
}

void Runtime::build_contexts() {
  contexts_.resize(world_size());
  tables_.resize(world_size());
  for (ContextId id = 0; id < world_size(); ++id) {
    contexts_[id] = make_context(id);
  }
  // finalize after all contexts exist, so modules that need to inspect the
  // whole fabric (e.g. to resolve forwarders) can do so.
  for (ContextId id = 0; id < world_size(); ++id) {
    contexts_[id]->finalize_modules();
    tables_[id] = contexts_[id]->local_table();
  }
  // Forwarding: only the forwarder keeps polling TCP in a forwarded
  // partition; everyone else drops the expensive poll entirely.
  for (ContextId id = 0; id < world_size(); ++id) {
    Context& ctx = *contexts_[id];
    if (ctx.module("tcp") == nullptr) continue;
    if (forwarder_of(id).has_value() && !is_forwarder(id)) {
      ctx.set_poll_enabled("tcp", false);
    }
  }
}

void Runtime::run(std::function<void(Context&)> fn) {
  std::vector<std::function<void(Context&)>> fns(world_size(), fn);
  run(std::move(fns));
}

void Runtime::run(std::vector<std::function<void(Context&)>> fns) {
  if (ran_) {
    throw util::UsageError("Runtime::run may only be called once");
  }
  if (fns.size() != world_size()) {
    throw util::UsageError("run: got " + std::to_string(fns.size()) +
                           " functions for a world of " +
                           std::to_string(world_size()));
  }
  ran_ = true;
  fns_ = std::move(fns);

  if (sim_) {
    for (ContextId id = 0; id < world_size(); ++id) {
      auto& proc = sim_->scheduler().spawn(
          "ctx" + std::to_string(id), [this, id] { fns_[id](*contexts_[id]); });
      proc.set_horizon_slack(opts_.sim_slack);
    }
    for (ContextId id = 0; id < world_size(); ++id) {
      auto host = std::make_unique<SimHost>();
      host->proc = &sim_->scheduler().process(id);
      sim_->add_host(std::move(host));
    }
    build_contexts();
    sim_->scheduler().run();
    return;
  }

  for (ContextId id = 0; id < world_size(); ++id) {
    rt_->add_host(std::make_unique<RtHost>());
  }
  build_contexts();

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(world_size());
  threads.reserve(world_size());
  for (ContextId id = 0; id < world_size(); ++id) {
    threads.emplace_back([this, id, &errors] {
      try {
        fns_[id](*contexts_[id]);
      } catch (...) {
        errors[id] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace nexus
