// Runtime: owns contexts, the fabric, module factories, and configuration.
//
// The runtime is the process-level entry point.  It instantiates one
// Context per slot of the topology, wires the chosen fabric (simulated
// virtual-time or realtime threads), distributes the bootstrap descriptor
// tables (so contexts can build world startpoints), applies the forwarding
// configuration, and runs user functions to completion -- SPMD (one
// function everywhere) or MPMD (one per context).
#pragma once

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nexus/context.hpp"
#include "nexus/telemetry/telemetry.hpp"
#include "nexus/costs.hpp"
#include "nexus/descriptor.hpp"
#include "nexus/fabric.hpp"
#include "nexus/health.hpp"
#include "nexus/module.hpp"
#include "nexus/types.hpp"
#include "simnet/fault.hpp"
#include "simnet/topology.hpp"
#include "simnet/trace.hpp"
#include "util/resource_db.hpp"

namespace nexus {

namespace telemetry {
class MetricsExporter;
}

struct RuntimeOptions {
  enum class Fabric { Simulated, Realtime };

  Fabric fabric = Fabric::Simulated;
  /// Defines the world size and partition structure.
  simnet::Topology topology = simnet::Topology::single_partition(2);
  /// Default communication module set, fastest-first preference implied by
  /// each module's speed_rank, not by this order.  Overridable via the
  /// resource database ("nexus.modules", "context.<id>.modules").
  std::vector<std::string> modules{"local", "mpl", "tcp"};
  util::ResourceDb db;
  SimCostParams costs;
  /// Forwarding configuration (paper §3.3): partition id -> context that
  /// receives all inter-partition TCP traffic for that partition.  When a
  /// partition has a forwarder, its other members stop polling TCP.
  std::map<int, ContextId> forwarders;
  /// Seed for stochastic models (UDP drops, fault rules, backoff jitter).
  std::uint64_t seed = 1;
  /// Simulated fabric only: number of scheduler shards / worker threads
  /// (docs/ARCHITECTURE.md §13).  Contexts are assigned round-robin
  /// (shard = ctx % threads); each shard runs its own conservative
  /// scheduler on its own OS thread with lock-free MPSC hand-off between
  /// shards.  0 = auto: take NEXUS_THREADS from the environment, then the
  /// "runtime.threads" database key, then 1.  A value set explicitly in
  /// code (>= 1) wins over the environment -- the escape hatch for tests
  /// whose assertions depend on single-shard determinism.  threads=1 is
  /// bit-identical to the pre-sharding runtime; the realtime fabric
  /// ignores this knob (it is already thread-per-context).
  unsigned threads = 0;
  /// Simulated fabric only: deterministic fault-injection plan (drop /
  /// delay / corrupt / blackhole schedules) installed on the SimFabric
  /// before run(); see simnet/fault.hpp.  Realtime fabrics inject faults
  /// through RtFabric::set_fault_hook instead.
  simnet::FaultPlan faults;
  /// Failure-handling policy of the automatic failover layer (consecutive
  /// -failure threshold, quarantine backoff); see nexus/health.hpp.
  HealthParams health;
  /// Simulated fabric only: bounded conservatism relaxation (see
  /// simnet::SimProcess::set_horizon_slack).  0 = exact microsecond-level
  /// causality; tens of milliseconds are appropriate for the seconds-scale
  /// climate runs.
  simnet::Time sim_slack = 0;
  /// Span tracing of the RSR lifecycle (docs/ARCHITECTURE.md §7).  Off by
  /// default; when off, every instrumented site costs one branch.
  bool tracing = false;
  /// Ring capacity of the tracer (events; oldest overwritten on wrap).
  std::size_t trace_capacity = telemetry::Tracer::kDefaultCapacity;
  /// Histogram metrics (one-way times, handler times, poll cadence, sizes).
  /// The plain per-method counters always run regardless.
  bool metrics = true;
  /// Adaptive transport engine (docs/ARCHITECTURE.md §11): feed the online
  /// per-(peer, method) cost model from passive timings and periodically
  /// rerank link descriptor tables by modeled cost.  Also enabled by the
  /// `adapt.enabled` database key or by installing a payload-aware
  /// selector (adapt::AdaptiveSelector).
  bool adaptive = false;
  /// Always-on flight recorder (docs/ARCHITECTURE.md §12): a small
  /// lock-free ring of recent trace events per context, dumped for
  /// post-mortem when a reliability dead latch, a quarantine, or an
  /// unhandled fault fires.
  bool flight = true;
  /// Per-context flight ring capacity (events; oldest overwritten).
  std::size_t flight_capacity = telemetry::FlightRecorder::kDefaultCapacity;
  /// Directory flight dumps are written to (NEXUS_FLIGHT_DIR fills this
  /// when unset).  Empty disables dumping; recording still runs.
  std::string flight_dir;
  /// Metrics export sinks (docs/ARCHITECTURE.md §12.3): a JSON-lines time
  /// series and/or a Prometheus text file, sampled from the polling loops
  /// every export_interval ns of context time.  Also settable via the
  /// database keys export.jsonl / export.prom / export.interval_ms.  Both
  /// empty = no exporter and zero data-path cost.
  std::string export_jsonl;
  std::string export_prom;
  Time export_interval = 100 * simnet::kMs;
};

class Runtime {
 public:
  explicit Runtime(RuntimeOptions opts);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Register additional module factories before run().
  ModuleRegistry& module_registry() noexcept { return registry_; }

  /// SPMD: run `fn` in every context.
  void run(std::function<void(Context&)> fn);
  /// MPMD: one function per context (size must equal world size).
  void run(std::vector<std::function<void(Context&)>> fns);

  std::size_t world_size() const { return opts_.topology.size(); }
  /// Resolved scheduler-shard count (after env/db/auto resolution and
  /// clamping to the world size); 1 on the realtime fabric.
  unsigned threads() const noexcept { return threads_; }
  const RuntimeOptions& options() const noexcept { return opts_; }
  const util::ResourceDb& db() const noexcept { return opts_.db; }
  const simnet::Topology& topology() const noexcept { return opts_.topology; }

  /// Default descriptor table of a context (available after run() started;
  /// used for bootstrap startpoints and the lightweight-startpoint check).
  const DescriptorTable& table_of(ContextId id) const;

  /// The forwarder for `target`'s partition, if forwarding is configured.
  std::optional<ContextId> forwarder_of(ContextId target) const;
  bool is_forwarder(ContextId id) const;

  SimFabric* sim() noexcept { return sim_.get(); }
  RtFabric* rt() noexcept { return rt_.get(); }
  simnet::TraceRecorder& trace() noexcept { return trace_; }

  /// The observability bundle: span tracer + metrics registry, shared by
  /// every context of this runtime.
  telemetry::Telemetry& telemetry() noexcept { return telemetry_; }
  const telemetry::Telemetry& telemetry() const noexcept { return telemetry_; }
  /// Write the tracer's Chrome about://tracing JSON to `path`.
  void write_chrome_trace(const std::string& path) const;
  /// Write the causally-stitched Chrome trace: tracer events run through
  /// the TraceStitcher so parent/child span links are resolved per trace.
  void write_stitched_trace(const std::string& path) const;
  /// The metrics exporter, when export sinks are configured (else null).
  telemetry::MetricsExporter* exporter() noexcept { return exporter_.get(); }

  /// Access to a context (valid during and after run(), until destruction).
  Context& context(ContextId id);

  /// Enquiry: a human-readable dump of the multimethod configuration --
  /// per-context module sets, poll schedules (skip/enabled/blocking),
  /// forwarders, and traffic counters.  Valid once run() has built the
  /// contexts.
  std::string describe() const;

 private:
  void build_contexts();
  std::unique_ptr<Context> make_context(ContextId id);
  std::vector<std::string> module_names_for(ContextId id) const;

  RuntimeOptions opts_;
  ModuleRegistry registry_;
  std::unique_ptr<SimFabric> sim_;
  std::unique_ptr<RtFabric> rt_;
  // Declared before contexts_: modules keep pointers into the registry, so
  // the bundle must outlive every context.
  telemetry::Telemetry telemetry_;
  std::unique_ptr<telemetry::MetricsExporter> exporter_;
  // Realtime fabric: one shared epoch for all context clocks, so timestamps
  // (and hence cross-context one-way latencies) are comparable.
  std::chrono::steady_clock::time_point rt_epoch_;
  std::vector<std::unique_ptr<Context>> contexts_;
  std::vector<DescriptorTable> tables_;
  std::vector<std::function<void(Context&)>> fns_;
  simnet::TraceRecorder trace_;
  unsigned threads_ = 1;
  bool ran_ = false;
};

}  // namespace nexus
