#include "nexus/selector.hpp"

#include <limits>

#include "nexus/context.hpp"
#include "nexus/telemetry/selection_report.hpp"

namespace nexus {

namespace {
/// A descriptor is usable when the local context has the module loaded, the
/// module's applicability test passes (paper §3.2), and the health tracker
/// has not quarantined the (method, target) pair after repeated delivery
/// failures -- every policy consults the same gate, so failover works under
/// any selector.
bool usable(const CommDescriptor& d, Context& local) {
  return local.method_usable(d);
}

bool is_reliable(const CommDescriptor& d, Context& local) {
  CommModule* m = local.module(d.method);
  return m != nullptr && m->reliable();
}
}  // namespace

void MethodSelector::explain(const DescriptorTable& table, Context& local,
                             telemetry::LinkReport& out) {
  std::string reason;
  const auto win = peek(table, local, reason);
  out.reason = std::move(reason);
  if (win) out.winner = table.at(*win).method;
  for (std::size_t i = 0; i < table.size(); ++i) {
    const CommDescriptor& d = table.at(i);
    telemetry::Candidate c;
    c.position = i;
    c.method = d.method;
    CommModule* m = local.module(d.method);
    if (m != nullptr) {
      if (auto inner = m->wraps()) c.wraps = *inner;
    }
    if (win && i == *win) {
      c.status = telemetry::CandidateStatus::Won;
      c.detail = out.reason;
    } else if (m == nullptr) {
      c.status = telemetry::CandidateStatus::NotLoaded;
      c.detail = "module '" + d.method + "' is not loaded in this context";
    } else if (!m->applicable(d)) {
      c.status = telemetry::CandidateStatus::NotApplicable;
      c.detail = "module reports the descriptor unreachable from here";
    } else if (!local.health_usable(d)) {
      const HealthTracker::Status st = local.method_health(d.method, d.context);
      c.status = telemetry::CandidateStatus::Quarantined;
      c.detail = "quarantined after " + std::to_string(st.failures) +
                 " delivery failures; restore probe at t=" +
                 std::to_string(st.retry_at) + "ns";
    } else if (!m->reliable()) {
      c.status = telemetry::CandidateStatus::UnreliableFallback;
      c.detail =
          "usable but unreliable; only wins when nothing reliable applies";
    } else {
      c.status = telemetry::CandidateStatus::RankedBehind;
      c.detail = "applicable (speed rank " + std::to_string(m->speed_rank()) +
                 ") but '" + out.winner + "' was preferred by the '" +
                 std::string(name()) + "' policy";
    }
    out.candidates.push_back(std::move(c));
  }
}

std::optional<std::size_t> FirstApplicableSelector::select(
    const DescriptorTable& table, Context& local, std::string& reason) {
  // RSRs promise delivery, so the ordered scan first considers reliable
  // methods only; unreliable ones (udp, mcast) are a fallback when nothing
  // reliable applies -- loss-tolerant applications opt in explicitly with
  // force_method.
  std::optional<std::size_t> fallback;
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (!usable(table.at(i), local)) continue;
    if (is_reliable(table.at(i), local)) {
      reason = "first applicable entry (table position " + std::to_string(i) +
               ")";
      return i;
    }
    if (!fallback) fallback = i;
  }
  if (fallback) {
    reason = "no reliable method applies; falling back to unreliable entry "
             "(table position " + std::to_string(*fallback) + ")";
    return fallback;
  }
  reason = "no applicable entry";
  return std::nullopt;
}

std::optional<std::size_t> QosSelector::select(const DescriptorTable& table,
                                               Context& local,
                                               std::string& reason) {
  std::optional<std::size_t> best;
  double best_score = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < table.size(); ++i) {
    const CommDescriptor& d = table.at(i);
    if (!usable(d, local)) continue;
    CommModule* m = local.module(d.method);
    // Same reliability rule as first-applicable: unreliable entries score
    // behind every reliable one.
    double score = m->speed_rank() + (m->reliable() ? 0.0 : 1.0e6);
    if (load_penalty_bytes_ > 0) {
      const auto& c = m->counters();
      const std::uint64_t outstanding =
          c.bytes_sent > c.bytes_received ? c.bytes_sent - c.bytes_received
                                          : 0;
      score += static_cast<double>(outstanding) /
               static_cast<double>(load_penalty_bytes_);
    }
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }
  if (best) {
    reason = "qos: best speed/load score " + std::to_string(best_score);
  } else {
    reason = "no applicable entry";
  }
  return best;
}

std::optional<std::size_t> RandomSelector::select(const DescriptorTable& table,
                                                  Context& local,
                                                  std::string& reason) {
  return choose(table, local, reason, rng_);
}

std::optional<std::size_t> RandomSelector::peek(const DescriptorTable& table,
                                                Context& local,
                                                std::string& reason) {
  util::Rng preview = rng_;  // same next draw, state untouched
  return choose(table, local, reason, preview);
}

std::optional<std::size_t> RandomSelector::choose(const DescriptorTable& table,
                                                  Context& local,
                                                  std::string& reason,
                                                  util::Rng& rng) const {
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (usable(table.at(i), local) && is_reliable(table.at(i), local)) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) {
    for (std::size_t i = 0; i < table.size(); ++i) {
      if (usable(table.at(i), local)) candidates.push_back(i);
    }
  }
  if (candidates.empty()) {
    reason = "no applicable entry";
    return std::nullopt;
  }
  const std::size_t pick = candidates[rng.next_below(candidates.size())];
  reason = "random choice among " + std::to_string(candidates.size()) +
           " applicable";
  return pick;
}

}  // namespace nexus
