// Automatic communication method selection (paper §3.2).
//
// On first use of a startpoint link, the context consults its selector to
// pick one descriptor from the link's table.  The paper's rule -- scan the
// table in order, take the first applicable method -- is
// FirstApplicableSelector; ordering the table fastest-first therefore gives
// a fastest-first policy.  Alternative policies are provided for the QoS
// extension the paper sketches (look at speed/load rather than raw table
// order) and for testing.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "nexus/descriptor.hpp"
#include "nexus/types.hpp"
#include "util/rng.hpp"

namespace nexus {

namespace telemetry {
struct LinkReport;
}

class Context;

/// Enquiry record of one selection decision.
struct SelectionRecord {
  ContextId target = kNoContext;
  std::string method;
  std::string reason;
  Time when = 0;
};

class MethodSelector {
 public:
  virtual ~MethodSelector() = default;
  virtual std::string_view name() const = 0;

  /// Return the index of the chosen descriptor, or nullopt if none is
  /// applicable.  Also fills `reason` for the enquiry log.
  virtual std::optional<std::size_t> select(const DescriptorTable& table,
                                            Context& local,
                                            std::string& reason) = 0;

  /// Whether select_sized() actually uses the payload size.  When true, the
  /// context re-consults the selector per RSR (with the payload size)
  /// instead of reusing a link's cached selection unconditionally, and
  /// installing the selector enables the context's adaptive engine.
  virtual bool payload_aware() const { return false; }

  /// Payload-aware selection: like select() but told how many payload
  /// bytes the RSR carries, so policies can route small and large messages
  /// differently (latency/bandwidth crossover).  Size-blind policies
  /// inherit this default, which ignores the size.  May leave `reason`
  /// empty on a cached (unchanged) decision -- the context then skips the
  /// selection log entry.
  virtual std::optional<std::size_t> select_sized(const DescriptorTable& table,
                                                  Context& local,
                                                  std::uint64_t payload_bytes,
                                                  std::string& reason) {
    (void)payload_bytes;
    return select(table, local, reason);
  }

  /// Side-effect-free preview of what select() would return next.  The
  /// default forwards to select(), which is correct for stateless policies
  /// (first-applicable, qos); *stateful* policies must override so that
  /// enquiries (explain / Context::explain_selection) never advance their
  /// decision state -- RandomSelector, for example, peeks with a copy of
  /// its RNG.
  virtual std::optional<std::size_t> peek(const DescriptorTable& table,
                                          Context& local,
                                          std::string& reason) {
    return select(table, local, reason);
  }

  /// Fill `out.winner`, `out.reason`, and one Candidate per table entry
  /// explaining what this policy decides for `table` right now.  The
  /// default implementation peeks the policy once and classifies every
  /// entry (not loaded / not applicable / unreliable fallback / ranked
  /// behind); policies with richer internal scoring may override to add
  /// detail.  Built on peek(), so asking for an explanation never changes
  /// what the policy will decide next.
  virtual void explain(const DescriptorTable& table, Context& local,
                       telemetry::LinkReport& out);
};

/// Paper default: ordered scan, first applicable entry wins.
class FirstApplicableSelector final : public MethodSelector {
 public:
  std::string_view name() const override { return "first-applicable"; }
  std::optional<std::size_t> select(const DescriptorTable& table,
                                    Context& local,
                                    std::string& reason) override;
};

/// QoS-flavoured policy: among applicable entries, choose the one whose
/// module reports the best (lowest) speed rank, falling back to table order
/// for ties.  Models the paper's suggestion of "looking at available
/// network bandwidth rather than raw bandwidth" by penalizing modules with
/// large outstanding byte counts.
class QosSelector final : public MethodSelector {
 public:
  /// `load_penalty_bytes`: outstanding bytes per extra rank point; 0
  /// disables load awareness.
  explicit QosSelector(std::uint64_t load_penalty_bytes = 0)
      : load_penalty_bytes_(load_penalty_bytes) {}
  std::string_view name() const override { return "qos"; }
  std::optional<std::size_t> select(const DescriptorTable& table,
                                    Context& local,
                                    std::string& reason) override;

 private:
  std::uint64_t load_penalty_bytes_;
};

/// Uniform random choice among applicable entries; exists to stress
/// multimethod coexistence in tests.
class RandomSelector final : public MethodSelector {
 public:
  explicit RandomSelector(std::uint64_t seed = 1) : rng_(seed) {}
  std::string_view name() const override { return "random"; }
  std::optional<std::size_t> select(const DescriptorTable& table,
                                    Context& local,
                                    std::string& reason) override;
  /// Previews the next pick with a *copy* of the RNG, so enquiries do not
  /// advance the selection stream.
  std::optional<std::size_t> peek(const DescriptorTable& table, Context& local,
                                  std::string& reason) override;

 private:
  std::optional<std::size_t> choose(const DescriptorTable& table,
                                    Context& local, std::string& reason,
                                    util::Rng& rng) const;
  util::Rng rng_;
};

}  // namespace nexus
