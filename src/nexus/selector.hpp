// Automatic communication method selection (paper §3.2).
//
// On first use of a startpoint link, the context consults its selector to
// pick one descriptor from the link's table.  The paper's rule -- scan the
// table in order, take the first applicable method -- is
// FirstApplicableSelector; ordering the table fastest-first therefore gives
// a fastest-first policy.  Alternative policies are provided for the QoS
// extension the paper sketches (look at speed/load rather than raw table
// order) and for testing.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "nexus/descriptor.hpp"
#include "nexus/types.hpp"
#include "util/rng.hpp"

namespace nexus {

namespace telemetry {
struct LinkReport;
}

class Context;

/// Enquiry record of one selection decision.
struct SelectionRecord {
  ContextId target = kNoContext;
  std::string method;
  std::string reason;
  Time when = 0;
};

class MethodSelector {
 public:
  virtual ~MethodSelector() = default;
  virtual std::string_view name() const = 0;

  /// Return the index of the chosen descriptor, or nullopt if none is
  /// applicable.  Also fills `reason` for the enquiry log.
  virtual std::optional<std::size_t> select(const DescriptorTable& table,
                                            Context& local,
                                            std::string& reason) = 0;

  /// Fill `out.winner`, `out.reason`, and one Candidate per table entry
  /// explaining what this policy decides for `table` right now.  The
  /// default implementation runs select() once and classifies every entry
  /// (not loaded / not applicable / unreliable fallback / ranked behind);
  /// policies with richer internal scoring may override to add detail.
  /// Note this *runs* the policy, so stateful selectors (e.g. random)
  /// advance their state.
  virtual void explain(const DescriptorTable& table, Context& local,
                       telemetry::LinkReport& out);
};

/// Paper default: ordered scan, first applicable entry wins.
class FirstApplicableSelector final : public MethodSelector {
 public:
  std::string_view name() const override { return "first-applicable"; }
  std::optional<std::size_t> select(const DescriptorTable& table,
                                    Context& local,
                                    std::string& reason) override;
};

/// QoS-flavoured policy: among applicable entries, choose the one whose
/// module reports the best (lowest) speed rank, falling back to table order
/// for ties.  Models the paper's suggestion of "looking at available
/// network bandwidth rather than raw bandwidth" by penalizing modules with
/// large outstanding byte counts.
class QosSelector final : public MethodSelector {
 public:
  /// `load_penalty_bytes`: outstanding bytes per extra rank point; 0
  /// disables load awareness.
  explicit QosSelector(std::uint64_t load_penalty_bytes = 0)
      : load_penalty_bytes_(load_penalty_bytes) {}
  std::string_view name() const override { return "qos"; }
  std::optional<std::size_t> select(const DescriptorTable& table,
                                    Context& local,
                                    std::string& reason) override;

 private:
  std::uint64_t load_penalty_bytes_;
};

/// Uniform random choice among applicable entries; exists to stress
/// multimethod coexistence in tests.
class RandomSelector final : public MethodSelector {
 public:
  explicit RandomSelector(std::uint64_t seed = 1) : rng_(seed) {}
  std::string_view name() const override { return "random"; }
  std::optional<std::size_t> select(const DescriptorTable& table,
                                    Context& local,
                                    std::string& reason) override;

 private:
  util::Rng rng_;
};

}  // namespace nexus
