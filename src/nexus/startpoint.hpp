// Communication startpoints (the send side of a communication link).
//
// A startpoint records, for each endpoint it is bound to, the target
// (context, endpoint) pair, the descriptor table describing every method
// usable to reach that context, and -- locally only -- the communication
// object currently selected.  Startpoints are ordinary copyable values;
// moving one to another context is done with Context::pack_startpoint /
// unpack_startpoint, which strips local connection state and (when
// possible) applies the lightweight "default table" optimization of §3.1.
//
// Binding a startpoint to more than one endpoint turns every RSR through it
// into a multicast (§2.2).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nexus/descriptor.hpp"
#include "nexus/module.hpp"
#include "nexus/types.hpp"

namespace nexus {

class Startpoint {
 public:
  /// One communication link: this startpoint to one endpoint.
  struct Link {
    ContextId context = kNoContext;
    EndpointId endpoint = 0;
    DescriptorTable table;

    // --- local (never serialized) selection state ---
    std::shared_ptr<CommObject> conn;
    std::string selected_method;
    // Failover: true when selection passed over an applicable entry that the
    // health tracker had quarantined, i.e. the current winner is not the
    // policy's first choice.  `reprobe_at` is the earliest retry time among
    // the skipped entries; once the clock passes it the next RSR re-runs
    // selection so a restored method can win back the link.
    bool degraded = false;
    Time reprobe_at = 0;
    /// Adaptive engine: next virtual time this link's table is due for a
    /// cost-model rerank (0 = rerank on first use when the engine is on).
    Time rerank_at = 0;
  };

  Startpoint() = default;

  bool bound() const noexcept { return !links_.empty(); }
  std::size_t link_count() const noexcept { return links_.size(); }
  const std::vector<Link>& links() const noexcept { return links_; }
  std::vector<Link>& links() noexcept { return links_; }
  const Link& link(std::size_t i = 0) const { return links_.at(i); }
  Link& link(std::size_t i = 0) { return links_.at(i); }

  /// Manual selection override: subsequent RSRs must use `method` (for every
  /// link); throws at use time if the method is missing or inapplicable.
  void force_method(std::string method) {
    forced_ = std::move(method);
    invalidate_selection();
  }
  void clear_forced_method() {
    forced_.reset();
    invalidate_selection();
  }
  const std::optional<std::string>& forced_method() const noexcept {
    return forced_;
  }

  /// Drop cached connections so the next RSR re-runs method selection
  /// (required after editing a link's descriptor table).
  void invalidate_selection() {
    for (auto& l : links_) {
      l.conn.reset();
      l.selected_method.clear();
      l.degraded = false;
      l.reprobe_at = 0;
    }
  }

  /// Enquiry: the method currently selected for link `i` (empty until the
  /// first RSR or after invalidation).
  const std::string& selected_method(std::size_t i = 0) const {
    return links_.at(i).selected_method;
  }

  /// Descriptor table of link `i`, mutable for manual reordering
  /// (prioritize/remove/insert).  Call invalidate_selection() afterwards.
  DescriptorTable& table(std::size_t i = 0) { return links_.at(i).table; }
  const DescriptorTable& table(std::size_t i = 0) const {
    return links_.at(i).table;
  }

 private:
  friend class Context;
  std::vector<Link> links_;
  std::optional<std::string> forced_;
};

}  // namespace nexus
