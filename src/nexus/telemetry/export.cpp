#include "nexus/telemetry/export.hpp"

#include "nexus/telemetry/json.hpp"
#include "util/log.hpp"

namespace nexus::telemetry {

MetricsExporter::MetricsExporter(Telemetry* tele, Options opts)
    : tele_(tele), opts_(std::move(opts)) {
  if (opts_.interval <= 0) opts_.interval = 1;
  if (!opts_.jsonl_path.empty()) {
    jsonl_ = std::fopen(opts_.jsonl_path.c_str(), "w");
    if (jsonl_ == nullptr) {
      util::log_warn("telemetry", "metrics export: cannot open ",
                     opts_.jsonl_path);
    }
  }
  active_ = jsonl_ != nullptr || !opts_.prom_path.empty();
}

MetricsExporter::~MetricsExporter() {
  if (jsonl_ != nullptr) std::fclose(jsonl_);
}

void MetricsExporter::add_provider(std::string key, Provider p) {
  std::lock_guard<std::mutex> lock(mutex_);
  providers_.emplace_back(std::move(key), std::move(p));
}

void MetricsExporter::sample(Time now) {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.fetch_add(1, std::memory_order_relaxed);

  if (jsonl_ != nullptr) {
    std::string line = "{\"t\":" + std::to_string(now) +
                       ",\"trace_recorded\":" +
                       std::to_string(tele_->tracer().recorded()) +
                       ",\"trace_dropped\":" +
                       std::to_string(tele_->tracer().dropped()) +
                       ",\"metrics\":" + tele_->metrics().to_json();
    for (const auto& [key, provider] : providers_) {
      line += "," + json_quote(key) + ":" + provider();
    }
    line += "}\n";
    std::fwrite(line.data(), 1, line.size(), jsonl_);
    std::fflush(jsonl_);
  }

  if (!opts_.prom_path.empty()) {
    if (std::FILE* f = std::fopen(opts_.prom_path.c_str(), "w")) {
      const std::string doc = tele_->metrics().to_prometheus();
      std::fwrite(doc.data(), 1, doc.size(), f);
      std::fclose(f);
    } else {
      util::log_warn("telemetry", "metrics export: cannot open ",
                     opts_.prom_path);
    }
  }
}

}  // namespace nexus::telemetry
