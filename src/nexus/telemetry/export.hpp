// Periodic metrics export: time-series snapshots of the MetricsRegistry.
//
// Two sinks, both optional: a JSON-lines file that appends one snapshot
// object per sampling interval (the graphable time series), and a
// Prometheus text-exposition file rewritten in place each interval (the
// scrapable current state).  Snapshots also carry tracer ring counters
// (trace_recorded / trace_dropped) and whatever extra providers the
// runtime registers -- health-tracker states and adaptive cost-model
// estimates -- so selection behavior over time is visible without a
// debugger.
//
// The polling engines drive sampling from their poll loop: maybe_sample()
// is one relaxed load and a compare when it is not yet due, and contexts
// race for the sampling duty with a CAS so exactly one of them pays for
// the snapshot.  When no sink is configured the runtime never attaches an
// exporter, so the data path pays nothing at all.
#pragma once

#include <atomic>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "nexus/telemetry/telemetry.hpp"

namespace nexus::telemetry {

class MetricsExporter {
 public:
  struct Options {
    std::string jsonl_path;  ///< JSON-lines time series; empty disables
    std::string prom_path;   ///< Prometheus text file; empty disables
    Time interval = 0;       ///< context-clock ns between samples
  };

  /// Extra per-sample data: returns a complete JSON value (object/array)
  /// embedded into each snapshot line under its key.
  using Provider = std::function<std::string()>;

  MetricsExporter(Telemetry* tele, Options opts);
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  bool active() const noexcept { return active_; }

  void add_provider(std::string key, Provider p);

  /// Hot-path gate: returns immediately unless the interval elapsed, and
  /// elects exactly one caller (CAS) to take the sample.
  void maybe_sample(Time now) {
    if (!active_) return;
    Time due = next_due_.load(std::memory_order_relaxed);
    if (now < due) return;
    if (!next_due_.compare_exchange_strong(due, now + opts_.interval,
                                           std::memory_order_relaxed)) {
      return;
    }
    sample(now);
  }

  /// Take one snapshot unconditionally (also used for the final sample at
  /// shutdown so short runs export at least one line).
  void sample(Time now);

  std::uint64_t samples_taken() const noexcept {
    return samples_.load(std::memory_order_relaxed);
  }

 private:
  Telemetry* tele_;
  Options opts_;
  bool active_ = false;
  std::atomic<Time> next_due_{0};
  std::atomic<std::uint64_t> samples_{0};
  std::mutex mutex_;  // serializes file writes and guards providers_
  std::vector<std::pair<std::string, Provider>> providers_;
  std::FILE* jsonl_ = nullptr;
};

}  // namespace nexus::telemetry
