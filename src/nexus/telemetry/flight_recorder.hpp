// Always-on flight recorder: the last N trace events per context.
//
// The Tracer is an opt-in sampling facility -- off by default because its
// record path takes a mutex.  The flight recorder is the opposite trade:
// it is ON by default, holds only a small bounded window of recent events,
// and its record path is lock-free (one relaxed load, one struct copy, one
// release store).  Its purpose is post-mortem: when a reliability dead
// latch, a health-tracker quarantine, or an unhandled fault fires, the
// runtime dumps every context's ring to NEXUS_FLIGHT_DIR, turning "assert
// failed at seed 137" into a replayable record of the last moments of
// every RSR in flight.
//
// Concurrency contract: each ring has exactly ONE writer -- the owning
// context's execution (simulated contexts are serialized by the scheduler;
// realtime contexts record under their own context lock).  Readers
// (events(), taken at dump time) run either on the owning thread or after
// the run has stopped, so the acquire/release pair on head_ is sufficient.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "nexus/telemetry/tracer.hpp"

namespace nexus::telemetry {

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  /// Capacity is rounded up to a power of two (minimum 8) so the record
  /// path indexes with a mask instead of a 64-bit division.
  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity)
      : ring_(round_up_pow2(capacity < 8 ? 8 : capacity)),
        mask_(ring_.size() - 1) {}

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The one hot-path check; instrumented sites do nothing else when off.
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void enable(bool on = true) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  std::size_t capacity() const noexcept { return ring_.size(); }

  /// Single-writer append: overwrite the oldest slot on wrap.
  void record(const Event& ev) noexcept {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    ring_[h & mask_] = ev;
    head_.store(h + 1, std::memory_order_release);
  }

  /// Total events ever recorded (including overwritten ones).
  std::uint64_t recorded() const noexcept {
    return head_.load(std::memory_order_acquire);
  }
  /// Events lost to ring wrap-around.
  std::uint64_t dropped() const noexcept {
    const std::uint64_t h = recorded();
    return h > ring_.size() ? h - ring_.size() : 0;
  }

  /// Snapshot of retained events, oldest first.
  std::vector<Event> events() const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::size_t cap = ring_.size();
    const std::uint64_t n = h < cap ? h : cap;
    std::vector<Event> out;
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = h - n; i < h; ++i) {
      out.push_back(ring_[i & mask_]);
    }
    return out;
  }

  void clear() noexcept { head_.store(0, std::memory_order_release); }

 private:
  static std::size_t round_up_pow2(std::size_t v) noexcept {
    std::size_t p = 8;
    while (p < v) p <<= 1;
    return p;
  }

  std::vector<Event> ring_;
  std::uint64_t mask_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<bool> enabled_{true};
};

}  // namespace nexus::telemetry
