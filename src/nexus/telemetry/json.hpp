// Tiny JSON emission helpers shared by the telemetry exporters.
//
// The telemetry subsystem writes JSON by hand (no third-party dependency);
// everything that goes inside a quoted string must pass through
// json_escape so exported traces stay machine-parseable no matter what
// handler or method names an application registers.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace nexus::telemetry {

inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  out += json_escape(s);
  out += '"';
  return out;
}

}  // namespace nexus::telemetry
