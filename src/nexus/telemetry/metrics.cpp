#include "nexus/telemetry/metrics.hpp"

#include <algorithm>

#include "nexus/telemetry/json.hpp"

namespace nexus::telemetry {

double Histogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  if (p <= 0.0) return static_cast<double>(min());
  if (p >= 100.0) return static_cast<double>(max());
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t b = buckets_[static_cast<std::size_t>(i)];
    if (b == 0) continue;
    if (static_cast<double>(cum + b) >= target) {
      const double frac = (target - static_cast<double>(cum)) /
                          static_cast<double>(b);
      const double lo =
          std::max<double>(static_cast<double>(bucket_floor(i)),
                           static_cast<double>(min()));
      const double hi =
          std::min<double>(static_cast<double>(bucket_ceil(i)),
                           static_cast<double>(max()));
      return lo + frac * (hi - lo);
    }
    cum += b;
  }
  return static_cast<double>(max());
}

void Histogram::merge(const Histogram& o) noexcept {
  if (o.count_ == 0) return;
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        o.buckets_[static_cast<std::size_t>(i)];
  }
  if (count_ == 0 || o.min_ < min_) min_ = o.min_;
  if (o.max_ > max_) max_ = o.max_;
  count_ += o.count_;
  sum_ += o.sum_;
}

MethodMetrics& MetricsRegistry::method(std::uint32_t context,
                                       std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto key = std::make_pair(context, std::string(name));
  auto it = methods_.find(key);
  if (it == methods_.end()) {
    it = methods_.emplace(std::move(key), std::make_unique<MethodMetrics>())
             .first;
  }
  return *it->second;
}

ContextMetrics& MetricsRegistry::context(std::uint32_t context) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = contexts_.find(context);
  if (it == contexts_.end()) {
    it = contexts_.emplace(context, std::make_unique<ContextMetrics>()).first;
  }
  return *it->second;
}

const MethodMetrics* MetricsRegistry::Snapshot::find_method(
    std::uint32_t context, std::string_view name) const {
  auto it = methods.find(std::make_pair(context, std::string(name)));
  return it == methods.end() ? nullptr : &it->second;
}

const ContextMetrics* MetricsRegistry::Snapshot::find_context(
    std::uint32_t context) const {
  auto it = contexts.find(context);
  return it == contexts.end() ? nullptr : &it->second;
}

namespace {
std::string hist_summary(std::string_view name, const Histogram& h) {
  if (h.count() == 0) return "";
  std::string out("    ");
  out += name;
  out += ": n=" + std::to_string(h.count()) +
         " mean=" + util::fmt_fixed(h.mean(), 1) +
         " p50=" + util::fmt_fixed(h.percentile(50), 1) +
         " p90=" + util::fmt_fixed(h.percentile(90), 1) +
         " p99=" + util::fmt_fixed(h.percentile(99), 1) +
         " p999=" + util::fmt_fixed(h.percentile(99.9), 1) +
         " min=" + std::to_string(h.min()) +
         " max=" + std::to_string(h.max()) + "\n";
  return out;
}

std::string hist_json(const Histogram& h) {
  std::string out = "{\"count\":" + std::to_string(h.count()) +
                    ",\"sum\":" + std::to_string(h.sum()) +
                    ",\"min\":" + std::to_string(h.min()) +
                    ",\"max\":" + std::to_string(h.max()) + ",\"buckets\":[";
  // Emit sparse [index, count] pairs: most of the 65 buckets are empty.
  bool first = true;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    if (h.bucket_count(i) == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "[";
    out += std::to_string(i);
    out += ",";
    out += std::to_string(h.bucket_count(i));
    out += "]";
  }
  out += "]}";
  return out;
}
}  // namespace

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  for (const auto& [key, mm] : methods_) snap.methods[key] = *mm;
  for (const auto& [id, cm] : contexts_) snap.contexts[id] = *cm;
  return snap;
}

std::string MetricsRegistry::to_text() const {
  const Snapshot snap = snapshot();
  std::string out;
  std::uint32_t current = ~std::uint32_t{0};
  for (const auto& [key, mm] : snap.methods) {
    if (key.first != current) {
      current = key.first;
      out += "context " + std::to_string(current) + ":\n";
      if (const ContextMetrics* cm = snap.find_context(current)) {
        out += hist_summary("rsr_oneway_ns", cm->rsr_oneway_ns);
        out += hist_summary("handler_ns", cm->handler_ns);
        out += hist_summary("poll_interval_ns", cm->poll_interval_ns);
        out += hist_summary("poll_batch", cm->poll_batch);
        out += hist_summary("rsr_retries", cm->rsr_retries);
        if (cm->failovers != 0 || cm->suspects != 0 || cm->restores != 0) {
          out += "    failover: triggered " + std::to_string(cm->failovers) +
                 " suspects " + std::to_string(cm->suspects) + " restores " +
                 std::to_string(cm->restores) + "\n";
        }
        if (cm->adapt_switches != 0 || cm->adapt_reranks != 0 ||
            cm->adapt_probes != 0) {
          out += "    adapt: switches " + std::to_string(cm->adapt_switches) +
                 " reranks " + std::to_string(cm->adapt_reranks) +
                 " probes " + std::to_string(cm->adapt_probes) + "\n";
        }
        if (cm->peer_deaths != 0 || cm->peer_reborns != 0 ||
            cm->deadletters != 0 || cm->deadletter_drops != 0 ||
            cm->deadletter_redeliveries != 0 || cm->send_errors != 0) {
          out += "    robust: peer_deaths " + std::to_string(cm->peer_deaths) +
                 " reborns " + std::to_string(cm->peer_reborns) +
                 " deadletters " + std::to_string(cm->deadletters) +
                 " dl_drops " + std::to_string(cm->deadletter_drops) +
                 " dl_redelivered " +
                 std::to_string(cm->deadletter_redeliveries) +
                 " send_errors " + std::to_string(cm->send_errors) + "\n";
        }
        if (cm->rpc_calls != 0 || cm->rpc_rejected != 0 ||
            cm->rpc_bulk_pull_chunks != 0 || cm->rpc_bulk_errors != 0) {
          out += "    rpc: calls " + std::to_string(cm->rpc_calls) +
                 " deadline_exceeded " +
                 std::to_string(cm->rpc_deadline_exceeded) + " cancelled " +
                 std::to_string(cm->rpc_cancelled) + " rejected " +
                 std::to_string(cm->rpc_rejected) + " peer_died " +
                 std::to_string(cm->rpc_peer_died) + " late_replies " +
                 std::to_string(cm->rpc_late_replies) + " bulk_chunks " +
                 std::to_string(cm->rpc_bulk_pull_chunks) + " bulk_errors " +
                 std::to_string(cm->rpc_bulk_errors) + "\n";
        }
        out += hist_summary("rpc_call_ns", cm->rpc_call_ns);
        out += hist_summary("rpc_bulk_mb_s", cm->rpc_bulk_mb_s);
      }
    }
    const util::MethodCounters& c = mm.counters;
    out += "  " + key.second + ": sent " + std::to_string(c.sends) + "/" +
           std::to_string(c.bytes_sent) + "B recv " +
           std::to_string(c.recvs) + "/" + std::to_string(c.bytes_received) +
           "B polls " + std::to_string(c.polls) + " hits " +
           std::to_string(c.poll_hits);
    if (c.send_errors != 0) out += " send_errors " +
                                   std::to_string(c.send_errors);
    if (c.recv_corrupt != 0) out += " recv_corrupt " +
                                    std::to_string(c.recv_corrupt);
    if (c.rel_retransmits != 0) out += " rel_retransmits " +
                                       std::to_string(c.rel_retransmits);
    if (c.rel_dup_drops != 0) out += " rel_dup_drops " +
                                     std::to_string(c.rel_dup_drops);
    if (c.rel_acks_sent != 0) out += " rel_acks_sent " +
                                     std::to_string(c.rel_acks_sent);
    if (c.rel_acks_received != 0) out += " rel_acks_received " +
                                         std::to_string(c.rel_acks_received);
    if (c.rel_epoch_rejects != 0) out += " rel_epoch_rejects " +
                                         std::to_string(c.rel_epoch_rejects);
    out += "\n";
    out += hist_summary("send_bytes", mm.send_bytes);
    out += hist_summary("recv_bytes", mm.recv_bytes);
    out += hist_summary("window_occupancy", mm.window_occupancy);
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  const Snapshot snap = snapshot();
  std::string out = "{\"contexts\":[";
  bool first_ctx = true;
  for (const auto& [id, cm] : snap.contexts) {
    if (!first_ctx) out += ",";
    first_ctx = false;
    out += "{\"context\":" + std::to_string(id) +
           ",\"rsr_oneway_ns\":" + hist_json(cm.rsr_oneway_ns) +
           ",\"handler_ns\":" + hist_json(cm.handler_ns) +
           ",\"poll_interval_ns\":" + hist_json(cm.poll_interval_ns) +
           ",\"poll_batch\":" + hist_json(cm.poll_batch) +
           ",\"rsr_retries\":" + hist_json(cm.rsr_retries) +
           ",\"failovers\":" + std::to_string(cm.failovers) +
           ",\"suspects\":" + std::to_string(cm.suspects) +
           ",\"restores\":" + std::to_string(cm.restores) +
           ",\"adapt_switches\":" + std::to_string(cm.adapt_switches) +
           ",\"adapt_reranks\":" + std::to_string(cm.adapt_reranks) +
           ",\"adapt_probes\":" + std::to_string(cm.adapt_probes) +
           ",\"peer_deaths\":" + std::to_string(cm.peer_deaths) +
           ",\"peer_reborns\":" + std::to_string(cm.peer_reborns) +
           ",\"deadletters\":" + std::to_string(cm.deadletters) +
           ",\"deadletter_drops\":" + std::to_string(cm.deadletter_drops) +
           ",\"deadletter_redeliveries\":" +
           std::to_string(cm.deadletter_redeliveries) +
           ",\"send_errors\":" + std::to_string(cm.send_errors) +
           ",\"rpc_calls\":" + std::to_string(cm.rpc_calls) +
           ",\"rpc_deadline_exceeded\":" +
           std::to_string(cm.rpc_deadline_exceeded) +
           ",\"rpc_cancelled\":" + std::to_string(cm.rpc_cancelled) +
           ",\"rpc_rejected\":" + std::to_string(cm.rpc_rejected) +
           ",\"rpc_peer_died\":" + std::to_string(cm.rpc_peer_died) +
           ",\"rpc_late_replies\":" + std::to_string(cm.rpc_late_replies) +
           ",\"rpc_bulk_pull_chunks\":" +
           std::to_string(cm.rpc_bulk_pull_chunks) +
           ",\"rpc_bulk_errors\":" + std::to_string(cm.rpc_bulk_errors) +
           ",\"rpc_call_ns\":" + hist_json(cm.rpc_call_ns) +
           ",\"rpc_bulk_mb_s\":" + hist_json(cm.rpc_bulk_mb_s) + "}";
  }
  out += "],\"methods\":[";
  bool first_m = true;
  for (const auto& [key, mm] : snap.methods) {
    if (!first_m) out += ",";
    first_m = false;
    const util::MethodCounters& c = mm.counters;
    out += "{\"context\":" + std::to_string(key.first) +
           ",\"method\":" + json_quote(key.second) +
           ",\"sends\":" + std::to_string(c.sends) +
           ",\"recvs\":" + std::to_string(c.recvs) +
           ",\"bytes_sent\":" + std::to_string(c.bytes_sent) +
           ",\"bytes_received\":" + std::to_string(c.bytes_received) +
           ",\"polls\":" + std::to_string(c.polls) +
           ",\"poll_hits\":" + std::to_string(c.poll_hits) +
           ",\"send_errors\":" + std::to_string(c.send_errors) +
           ",\"recv_corrupt\":" + std::to_string(c.recv_corrupt) +
           ",\"rel_retransmits\":" + std::to_string(c.rel_retransmits) +
           ",\"rel_dup_drops\":" + std::to_string(c.rel_dup_drops) +
           ",\"rel_acks_sent\":" + std::to_string(c.rel_acks_sent) +
           ",\"rel_acks_received\":" + std::to_string(c.rel_acks_received) +
           ",\"rel_epoch_rejects\":" + std::to_string(c.rel_epoch_rejects) +
           ",\"send_bytes\":" + hist_json(mm.send_bytes) +
           ",\"recv_bytes\":" + hist_json(mm.recv_bytes) +
           ",\"window_occupancy\":" + hist_json(mm.window_occupancy) + "}";
  }
  out += "]}";
  return out;
}

namespace {

/// One Prometheus histogram family member: cumulative buckets keyed by each
/// occupied log2 bucket's inclusive upper bound, then the mandatory +Inf
/// bucket, _sum, and _count.  `labels` is the rendered label set without
/// braces, e.g. `context="0",method="tcp"`.
void prom_histogram(std::string& out, std::string_view family,
                    const std::string& labels, const Histogram& h) {
  std::uint64_t cum = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    if (h.bucket_count(i) == 0) continue;
    cum += h.bucket_count(i);
    out += std::string(family) + "_bucket{" + labels +
           ",le=\"" + std::to_string(Histogram::bucket_ceil(i)) + "\"} " +
           std::to_string(cum) + "\n";
  }
  out += std::string(family) + "_bucket{" + labels + ",le=\"+Inf\"} " +
         std::to_string(h.count()) + "\n";
  out += std::string(family) + "_sum{" + labels + "} " +
         std::to_string(h.sum()) + "\n";
  out += std::string(family) + "_count{" + labels + "} " +
         std::to_string(h.count()) + "\n";
}

void prom_counter(std::string& out, std::string_view family,
                  const std::string& labels, std::uint64_t v) {
  out += std::string(family) + "{" + labels + "} " + std::to_string(v) + "\n";
}

}  // namespace

std::string MetricsRegistry::to_prometheus() const {
  const Snapshot snap = snapshot();
  std::string out;

  static constexpr const char* kCtxHists[] = {
      "nexus_rsr_oneway_ns", "nexus_handler_ns", "nexus_poll_interval_ns",
      "nexus_poll_batch", "nexus_rsr_retries", "nexus_rpc_call_ns",
      "nexus_rpc_bulk_mb_s"};
  for (const char* f : kCtxHists) {
    out += std::string("# TYPE ") + f + " histogram\n";
  }
  static constexpr const char* kCtxCounters[] = {
      "nexus_failovers_total", "nexus_suspects_total", "nexus_restores_total",
      "nexus_adapt_switches_total", "nexus_adapt_reranks_total",
      "nexus_adapt_probes_total", "nexus_peer_deaths_total",
      "nexus_peer_reborns_total", "nexus_deadletters_total",
      "nexus_deadletter_drops_total", "nexus_deadletter_redeliveries_total",
      "nexus_ctx_send_errors_total", "nexus_rpc_calls_total",
      "nexus_rpc_deadline_exceeded_total", "nexus_rpc_cancelled_total",
      "nexus_rpc_rejected_total", "nexus_rpc_peer_died_total",
      "nexus_rpc_late_replies_total", "nexus_rpc_bulk_pull_chunks_total",
      "nexus_rpc_bulk_errors_total"};
  for (const char* f : kCtxCounters) {
    out += std::string("# TYPE ") + f + " counter\n";
  }
  for (const auto& [id, cm] : snap.contexts) {
    const std::string labels = "context=\"" + std::to_string(id) + "\"";
    prom_histogram(out, "nexus_rsr_oneway_ns", labels, cm.rsr_oneway_ns);
    prom_histogram(out, "nexus_handler_ns", labels, cm.handler_ns);
    prom_histogram(out, "nexus_poll_interval_ns", labels,
                   cm.poll_interval_ns);
    prom_histogram(out, "nexus_poll_batch", labels, cm.poll_batch);
    prom_histogram(out, "nexus_rsr_retries", labels, cm.rsr_retries);
    prom_counter(out, "nexus_failovers_total", labels, cm.failovers);
    prom_counter(out, "nexus_suspects_total", labels, cm.suspects);
    prom_counter(out, "nexus_restores_total", labels, cm.restores);
    prom_counter(out, "nexus_adapt_switches_total", labels,
                 cm.adapt_switches);
    prom_counter(out, "nexus_adapt_reranks_total", labels, cm.adapt_reranks);
    prom_counter(out, "nexus_adapt_probes_total", labels, cm.adapt_probes);
    prom_counter(out, "nexus_peer_deaths_total", labels, cm.peer_deaths);
    prom_counter(out, "nexus_peer_reborns_total", labels, cm.peer_reborns);
    prom_counter(out, "nexus_deadletters_total", labels, cm.deadletters);
    prom_counter(out, "nexus_deadletter_drops_total", labels,
                 cm.deadletter_drops);
    prom_counter(out, "nexus_deadletter_redeliveries_total", labels,
                 cm.deadletter_redeliveries);
    prom_counter(out, "nexus_ctx_send_errors_total", labels, cm.send_errors);
    prom_counter(out, "nexus_rpc_calls_total", labels, cm.rpc_calls);
    prom_counter(out, "nexus_rpc_deadline_exceeded_total", labels,
                 cm.rpc_deadline_exceeded);
    prom_counter(out, "nexus_rpc_cancelled_total", labels, cm.rpc_cancelled);
    prom_counter(out, "nexus_rpc_rejected_total", labels, cm.rpc_rejected);
    prom_counter(out, "nexus_rpc_peer_died_total", labels, cm.rpc_peer_died);
    prom_counter(out, "nexus_rpc_late_replies_total", labels,
                 cm.rpc_late_replies);
    prom_counter(out, "nexus_rpc_bulk_pull_chunks_total", labels,
                 cm.rpc_bulk_pull_chunks);
    prom_counter(out, "nexus_rpc_bulk_errors_total", labels,
                 cm.rpc_bulk_errors);
    prom_histogram(out, "nexus_rpc_call_ns", labels, cm.rpc_call_ns);
    prom_histogram(out, "nexus_rpc_bulk_mb_s", labels, cm.rpc_bulk_mb_s);
  }

  static constexpr const char* kMethodCounters[] = {
      "nexus_sends_total", "nexus_recvs_total", "nexus_bytes_sent_total",
      "nexus_bytes_received_total", "nexus_polls_total",
      "nexus_poll_hits_total", "nexus_send_errors_total",
      "nexus_recv_corrupt_total", "nexus_rel_retransmits_total",
      "nexus_rel_dup_drops_total", "nexus_rel_epoch_rejects_total"};
  for (const char* f : kMethodCounters) {
    out += std::string("# TYPE ") + f + " counter\n";
  }
  out += "# TYPE nexus_send_bytes histogram\n";
  out += "# TYPE nexus_recv_bytes histogram\n";
  out += "# TYPE nexus_window_occupancy histogram\n";
  for (const auto& [key, mm] : snap.methods) {
    const std::string labels = "context=\"" + std::to_string(key.first) +
                               "\",method=\"" + json_escape(key.second) +
                               "\"";
    const util::MethodCounters& c = mm.counters;
    prom_counter(out, "nexus_sends_total", labels, c.sends);
    prom_counter(out, "nexus_recvs_total", labels, c.recvs);
    prom_counter(out, "nexus_bytes_sent_total", labels, c.bytes_sent);
    prom_counter(out, "nexus_bytes_received_total", labels,
                 c.bytes_received);
    prom_counter(out, "nexus_polls_total", labels, c.polls);
    prom_counter(out, "nexus_poll_hits_total", labels, c.poll_hits);
    prom_counter(out, "nexus_send_errors_total", labels, c.send_errors);
    prom_counter(out, "nexus_recv_corrupt_total", labels, c.recv_corrupt);
    prom_counter(out, "nexus_rel_retransmits_total", labels,
                 c.rel_retransmits);
    prom_counter(out, "nexus_rel_dup_drops_total", labels, c.rel_dup_drops);
    prom_counter(out, "nexus_rel_epoch_rejects_total", labels,
                 c.rel_epoch_rejects);
    prom_histogram(out, "nexus_send_bytes", labels, mm.send_bytes);
    prom_histogram(out, "nexus_recv_bytes", labels, mm.recv_bytes);
    prom_histogram(out, "nexus_window_occupancy", labels,
                   mm.window_occupancy);
  }
  return out;
}

}  // namespace nexus::telemetry
