#include "nexus/telemetry/metrics.hpp"

#include <algorithm>

#include "nexus/telemetry/json.hpp"

namespace nexus::telemetry {

double Histogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  if (p <= 0.0) return static_cast<double>(min());
  if (p >= 100.0) return static_cast<double>(max());
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t b = buckets_[static_cast<std::size_t>(i)];
    if (b == 0) continue;
    if (static_cast<double>(cum + b) >= target) {
      const double frac = (target - static_cast<double>(cum)) /
                          static_cast<double>(b);
      const double lo =
          std::max<double>(static_cast<double>(bucket_floor(i)),
                           static_cast<double>(min()));
      const double hi =
          std::min<double>(static_cast<double>(bucket_ceil(i)),
                           static_cast<double>(max()));
      return lo + frac * (hi - lo);
    }
    cum += b;
  }
  return static_cast<double>(max());
}

void Histogram::merge(const Histogram& o) noexcept {
  if (o.count_ == 0) return;
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        o.buckets_[static_cast<std::size_t>(i)];
  }
  if (count_ == 0 || o.min_ < min_) min_ = o.min_;
  if (o.max_ > max_) max_ = o.max_;
  count_ += o.count_;
  sum_ += o.sum_;
}

MethodMetrics& MetricsRegistry::method(std::uint32_t context,
                                       std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto key = std::make_pair(context, std::string(name));
  auto it = methods_.find(key);
  if (it == methods_.end()) {
    it = methods_.emplace(std::move(key), std::make_unique<MethodMetrics>())
             .first;
  }
  return *it->second;
}

ContextMetrics& MetricsRegistry::context(std::uint32_t context) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = contexts_.find(context);
  if (it == contexts_.end()) {
    it = contexts_.emplace(context, std::make_unique<ContextMetrics>()).first;
  }
  return *it->second;
}

const MethodMetrics* MetricsRegistry::Snapshot::find_method(
    std::uint32_t context, std::string_view name) const {
  auto it = methods.find(std::make_pair(context, std::string(name)));
  return it == methods.end() ? nullptr : &it->second;
}

const ContextMetrics* MetricsRegistry::Snapshot::find_context(
    std::uint32_t context) const {
  auto it = contexts.find(context);
  return it == contexts.end() ? nullptr : &it->second;
}

namespace {
std::string hist_summary(std::string_view name, const Histogram& h) {
  if (h.count() == 0) return "";
  std::string out("    ");
  out += name;
  out += ": n=" + std::to_string(h.count()) +
         " mean=" + util::fmt_fixed(h.mean(), 1) +
         " p50=" + util::fmt_fixed(h.percentile(50), 1) +
         " p99=" + util::fmt_fixed(h.percentile(99), 1) +
         " min=" + std::to_string(h.min()) +
         " max=" + std::to_string(h.max()) + "\n";
  return out;
}

std::string hist_json(const Histogram& h) {
  std::string out = "{\"count\":" + std::to_string(h.count()) +
                    ",\"sum\":" + std::to_string(h.sum()) +
                    ",\"min\":" + std::to_string(h.min()) +
                    ",\"max\":" + std::to_string(h.max()) + ",\"buckets\":[";
  // Emit sparse [index, count] pairs: most of the 65 buckets are empty.
  bool first = true;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    if (h.bucket_count(i) == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "[";
    out += std::to_string(i);
    out += ",";
    out += std::to_string(h.bucket_count(i));
    out += "]";
  }
  out += "]}";
  return out;
}
}  // namespace

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  for (const auto& [key, mm] : methods_) snap.methods[key] = *mm;
  for (const auto& [id, cm] : contexts_) snap.contexts[id] = *cm;
  return snap;
}

std::string MetricsRegistry::to_text() const {
  const Snapshot snap = snapshot();
  std::string out;
  std::uint32_t current = ~std::uint32_t{0};
  for (const auto& [key, mm] : snap.methods) {
    if (key.first != current) {
      current = key.first;
      out += "context " + std::to_string(current) + ":\n";
      if (const ContextMetrics* cm = snap.find_context(current)) {
        out += hist_summary("rsr_oneway_ns", cm->rsr_oneway_ns);
        out += hist_summary("handler_ns", cm->handler_ns);
        out += hist_summary("poll_interval_ns", cm->poll_interval_ns);
        out += hist_summary("poll_batch", cm->poll_batch);
        out += hist_summary("rsr_retries", cm->rsr_retries);
        if (cm->failovers != 0 || cm->suspects != 0 || cm->restores != 0) {
          out += "    failover: triggered " + std::to_string(cm->failovers) +
                 " suspects " + std::to_string(cm->suspects) + " restores " +
                 std::to_string(cm->restores) + "\n";
        }
        if (cm->adapt_switches != 0 || cm->adapt_reranks != 0 ||
            cm->adapt_probes != 0) {
          out += "    adapt: switches " + std::to_string(cm->adapt_switches) +
                 " reranks " + std::to_string(cm->adapt_reranks) +
                 " probes " + std::to_string(cm->adapt_probes) + "\n";
        }
      }
    }
    const util::MethodCounters& c = mm.counters;
    out += "  " + key.second + ": sent " + std::to_string(c.sends) + "/" +
           std::to_string(c.bytes_sent) + "B recv " +
           std::to_string(c.recvs) + "/" + std::to_string(c.bytes_received) +
           "B polls " + std::to_string(c.polls) + " hits " +
           std::to_string(c.poll_hits);
    if (c.send_errors != 0) out += " send_errors " +
                                   std::to_string(c.send_errors);
    if (c.recv_corrupt != 0) out += " recv_corrupt " +
                                    std::to_string(c.recv_corrupt);
    if (c.rel_retransmits != 0) out += " rel_retransmits " +
                                       std::to_string(c.rel_retransmits);
    if (c.rel_dup_drops != 0) out += " rel_dup_drops " +
                                     std::to_string(c.rel_dup_drops);
    if (c.rel_acks_sent != 0) out += " rel_acks_sent " +
                                     std::to_string(c.rel_acks_sent);
    if (c.rel_acks_received != 0) out += " rel_acks_received " +
                                         std::to_string(c.rel_acks_received);
    out += "\n";
    out += hist_summary("send_bytes", mm.send_bytes);
    out += hist_summary("recv_bytes", mm.recv_bytes);
    out += hist_summary("window_occupancy", mm.window_occupancy);
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  const Snapshot snap = snapshot();
  std::string out = "{\"contexts\":[";
  bool first_ctx = true;
  for (const auto& [id, cm] : snap.contexts) {
    if (!first_ctx) out += ",";
    first_ctx = false;
    out += "{\"context\":" + std::to_string(id) +
           ",\"rsr_oneway_ns\":" + hist_json(cm.rsr_oneway_ns) +
           ",\"handler_ns\":" + hist_json(cm.handler_ns) +
           ",\"poll_interval_ns\":" + hist_json(cm.poll_interval_ns) +
           ",\"poll_batch\":" + hist_json(cm.poll_batch) +
           ",\"rsr_retries\":" + hist_json(cm.rsr_retries) +
           ",\"failovers\":" + std::to_string(cm.failovers) +
           ",\"suspects\":" + std::to_string(cm.suspects) +
           ",\"restores\":" + std::to_string(cm.restores) +
           ",\"adapt_switches\":" + std::to_string(cm.adapt_switches) +
           ",\"adapt_reranks\":" + std::to_string(cm.adapt_reranks) +
           ",\"adapt_probes\":" + std::to_string(cm.adapt_probes) + "}";
  }
  out += "],\"methods\":[";
  bool first_m = true;
  for (const auto& [key, mm] : snap.methods) {
    if (!first_m) out += ",";
    first_m = false;
    const util::MethodCounters& c = mm.counters;
    out += "{\"context\":" + std::to_string(key.first) +
           ",\"method\":" + json_quote(key.second) +
           ",\"sends\":" + std::to_string(c.sends) +
           ",\"recvs\":" + std::to_string(c.recvs) +
           ",\"bytes_sent\":" + std::to_string(c.bytes_sent) +
           ",\"bytes_received\":" + std::to_string(c.bytes_received) +
           ",\"polls\":" + std::to_string(c.polls) +
           ",\"poll_hits\":" + std::to_string(c.poll_hits) +
           ",\"send_errors\":" + std::to_string(c.send_errors) +
           ",\"recv_corrupt\":" + std::to_string(c.recv_corrupt) +
           ",\"rel_retransmits\":" + std::to_string(c.rel_retransmits) +
           ",\"rel_dup_drops\":" + std::to_string(c.rel_dup_drops) +
           ",\"rel_acks_sent\":" + std::to_string(c.rel_acks_sent) +
           ",\"rel_acks_received\":" + std::to_string(c.rel_acks_received) +
           ",\"send_bytes\":" + hist_json(mm.send_bytes) +
           ",\"recv_bytes\":" + hist_json(mm.recv_bytes) +
           ",\"window_occupancy\":" + hist_json(mm.window_occupancy) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace nexus::telemetry
