// Metrics registry: per-context x per-method counters and log-scale
// histograms for the quantities the paper's figures are built from (RSR
// one-way time, handler run time, poll cadence, message sizes).
//
// The registry is owned by the Runtime; each CommModule's MethodCounters
// are rebound into it at module-registration time, so the registry is the
// single source of truth the enquiry interface (Runtime::describe,
// snapshot(), to_text/to_json) reads.  Histogram updates happen on the
// owning context's thread (sim contexts are serialized by the scheduler;
// realtime contexts update their own entries under the context lock);
// snapshot() may run concurrently and sees monotone, possibly slightly
// stale values.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include "util/stats.hpp"

namespace nexus::telemetry {

/// Log2-bucketed histogram of non-negative integer samples (nanoseconds,
/// bytes, counts).  Bucket 0 holds exactly the value 0; bucket i >= 1 holds
/// [2^(i-1), 2^i - 1].  Constant size, O(1) add, no allocation.
class Histogram {
 public:
  static constexpr int kBuckets = 65;  // value 0 + one per bit of uint64

  static int bucket_index(std::uint64_t v) noexcept {
    return v == 0 ? 0 : std::bit_width(v);
  }
  /// Smallest value belonging to bucket i.
  static std::uint64_t bucket_floor(int i) noexcept {
    return i <= 0 ? 0 : std::uint64_t{1} << (i - 1);
  }
  /// Largest value belonging to bucket i.
  static std::uint64_t bucket_ceil(int i) noexcept {
    if (i <= 0) return 0;
    if (i >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
  }

  void add(std::uint64_t v) noexcept {
    buckets_[static_cast<std::size_t>(bucket_index(v))] += 1;
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  std::uint64_t bucket_count(int i) const noexcept {
    return (i >= 0 && i < kBuckets) ? buckets_[static_cast<std::size_t>(i)]
                                    : 0;
  }

  /// Approximate percentile (p in [0,100]): finds the bucket holding the
  /// target rank and interpolates linearly inside it.  Exact for min/max
  /// (clamped to the observed extremes); 0 for an empty histogram.
  double percentile(double p) const noexcept;

  void merge(const Histogram& o) noexcept;
  void reset() noexcept { *this = Histogram{}; }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Everything tracked for one (context, method) pair.
struct MethodMetrics {
  util::MethodCounters counters;  ///< canonical storage; modules bind here
  Histogram send_bytes;           ///< wire bytes per send
  Histogram recv_bytes;           ///< wire bytes per received packet
  /// Reliability wrappers only: unacked window entries sampled at each
  /// accepted send (occupancy *after* the packet entered the window).
  Histogram window_occupancy;
};

/// Per-context quantities not attributable to a single method.
struct ContextMetrics {
  Histogram rsr_oneway_ns;     ///< send clock -> dispatch clock, per RSR
  Histogram handler_ns;        ///< handler body run time (inclusive)
  Histogram poll_interval_ns;  ///< unified-poll cadence (see kPollSampleEvery)
  Histogram poll_batch;        ///< packets drained per hitting poll
  Histogram rsr_retries;       ///< extra send attempts per RSR that needed any
  // Failover-layer counters (always counted, like MethodCounters): method
  // declared dead + re-selection, first failure on a healthy pair, and
  // successful restore probe after quarantine.
  std::uint64_t failovers = 0;
  std::uint64_t suspects = 0;
  std::uint64_t restores = 0;
  // Adaptive-engine counters: payload-class method switches, descriptor-
  // table reranks, and active timing probes sent.
  std::uint64_t adapt_switches = 0;
  std::uint64_t adapt_reranks = 0;
  std::uint64_t adapt_probes = 0;
  // Robustness-layer counters (crash/restart fault domain, §14): peers
  // declared down / observed back up, RSRs drained into the dead-letter
  // queue, dead letters dropped on cap overflow or budget exhaustion,
  // dead letters successfully redelivered after rebirth, and rsr() calls
  // rejected outright (unknown peer or exhausted budget).
  std::uint64_t peer_deaths = 0;
  std::uint64_t peer_reborns = 0;
  std::uint64_t deadletters = 0;
  std::uint64_t deadletter_drops = 0;
  std::uint64_t deadletter_redeliveries = 0;
  std::uint64_t send_errors = 0;
  // RPC subsystem counters (src/proto/rpc, docs §15): calls issued, and
  // their non-Ok terminal outcomes; late/duplicate replies dropped at the
  // client; bulk chunks pulled by servers; bulk protocol errors (unknown /
  // out-of-range handle).
  std::uint64_t rpc_calls = 0;
  std::uint64_t rpc_deadline_exceeded = 0;
  std::uint64_t rpc_cancelled = 0;
  std::uint64_t rpc_rejected = 0;
  std::uint64_t rpc_peer_died = 0;
  std::uint64_t rpc_late_replies = 0;
  std::uint64_t rpc_bulk_pull_chunks = 0;
  std::uint64_t rpc_bulk_errors = 0;
  Histogram rpc_call_ns;    ///< client-observed call latency (Ok calls)
  Histogram rpc_bulk_mb_s;  ///< bulk pull throughput per transfer, MB/s
};

/// Poll intervals are sampled once per this many poll_once() iterations
/// (as the windowed mean over the stride) to keep the poll loop cheap.
inline constexpr std::uint64_t kPollSampleEvery = 16;

class MetricsRegistry {
 public:
  /// Histograms are skipped when disabled; MethodCounters always count
  /// (they are the seed's enquiry data and cost a few adds per event).
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void enable(bool on = true) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Find-or-create; returned references stay valid for the registry's
  /// lifetime (entries are never removed).
  MethodMetrics& method(std::uint32_t context, std::string_view name);
  ContextMetrics& context(std::uint32_t context);

  struct Snapshot {
    std::map<std::pair<std::uint32_t, std::string>, MethodMetrics> methods;
    std::map<std::uint32_t, ContextMetrics> contexts;

    const MethodMetrics* find_method(std::uint32_t context,
                                     std::string_view name) const;
    const ContextMetrics* find_context(std::uint32_t context) const;
  };
  Snapshot snapshot() const;

  /// Human-readable dump of every metric (counters + histogram summaries
  /// with p50/p90/p99/p999 columns).
  std::string to_text() const;
  /// Machine-readable dump (one JSON object; histograms as bucket arrays).
  std::string to_json() const;
  /// Prometheus text exposition format (0.0.4): counters as *_total with
  /// context/method labels, histograms as cumulative *_bucket/_sum/_count
  /// series built from the log2 buckets.  Empty histograms still emit their
  /// +Inf bucket so scrape targets stay well-formed from the first sample.
  std::string to_prometheus() const;

 private:
  std::atomic<bool> enabled_{true};
  mutable std::mutex mutex_;  // guards the maps, not the entries
  std::map<std::pair<std::uint32_t, std::string>,
           std::unique_ptr<MethodMetrics>>
      methods_;
  std::map<std::uint32_t, std::unique_ptr<ContextMetrics>> contexts_;
};

}  // namespace nexus::telemetry
