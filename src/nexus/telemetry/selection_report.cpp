#include "nexus/telemetry/selection_report.hpp"

#include "nexus/telemetry/json.hpp"
#include "util/stats.hpp"

namespace nexus::telemetry {

const char* candidate_status_name(CandidateStatus s) noexcept {
  switch (s) {
    case CandidateStatus::Won: return "won";
    case CandidateStatus::NotLoaded: return "not_loaded";
    case CandidateStatus::NotApplicable: return "not_applicable";
    case CandidateStatus::UnreliableFallback: return "unreliable_fallback";
    case CandidateStatus::RankedBehind: return "ranked_behind";
    case CandidateStatus::NotForced: return "not_forced";
    case CandidateStatus::Quarantined: return "quarantined";
  }
  return "?";
}

std::string SelectionReport::to_text() const {
  std::string out = "selection report (policy: " + selector + ")\n";
  for (const LinkReport& link : links) {
    out += "  link -> context " + std::to_string(link.target) + " endpoint " +
           std::to_string(link.endpoint) + ":";
    if (link.winner.empty()) {
      out += " NO APPLICABLE METHOD";
    } else {
      out += " " + link.winner;
      for (const Candidate& c : link.candidates) {
        if (c.status == CandidateStatus::Won && !c.wraps.empty()) {
          out += " [wraps " + c.wraps + "]";
          break;
        }
      }
      if (link.forced) out += " (forced)";
      if (link.forward_via) {
        out += " [forwarded via context " + std::to_string(*link.forward_via) +
               "]";
      }
    }
    out += "\n    reason: " + link.reason + "\n";
    for (const Candidate& c : link.candidates) {
      out += "    [" + std::to_string(c.position) + "] " + c.method;
      if (!c.wraps.empty()) out += " [wraps " + c.wraps + "]";
      out += ": ";
      out += candidate_status_name(c.status);
      if (!c.detail.empty()) out += " -- " + c.detail;
      out += "\n";
      if (c.model) {
        out += "        model: ";
        if (c.model->known) {
          out += "latency " + util::fmt_fixed(c.model->latency_us, 1) + "us";
          if (c.model->bandwidth_mb_s > 0.0) {
            out += " bw " + util::fmt_fixed(c.model->bandwidth_mb_s, 1) +
                   "MB/s";
          }
          out += " conf " + util::fmt_fixed(c.model->confidence, 2);
        } else {
          out += "no data";
        }
        if (!c.model->dwell.empty()) out += " [" + c.model->dwell + "]";
        out += "\n";
      }
    }
  }
  for (const RpcRow& r : rpc) {
    out += "  rpc: last call -> context " + std::to_string(r.peer) + " via " +
           r.method + "\n";
  }
  return out;
}

std::string SelectionReport::to_json() const {
  std::string out = "{\"selector\":" + json_quote(selector) + ",\"links\":[";
  bool first_link = true;
  for (const LinkReport& link : links) {
    if (!first_link) out += ",";
    first_link = false;
    out += "{\"target\":" + std::to_string(link.target) +
           ",\"endpoint\":" + std::to_string(link.endpoint) +
           ",\"forced\":" + (link.forced ? "true" : "false") +
           ",\"winner\":" + json_quote(link.winner) +
           ",\"reason\":" + json_quote(link.reason);
    if (link.forward_via) {
      out += ",\"forward_via\":" + std::to_string(*link.forward_via);
    }
    out += ",\"candidates\":[";
    bool first_cand = true;
    for (const Candidate& c : link.candidates) {
      if (!first_cand) out += ",";
      first_cand = false;
      out += "{\"position\":" + std::to_string(c.position) +
             ",\"method\":" + json_quote(c.method) +
             ",\"status\":" + json_quote(candidate_status_name(c.status)) +
             ",\"detail\":" + json_quote(c.detail);
      if (!c.wraps.empty()) out += ",\"wraps\":" + json_quote(c.wraps);
      if (c.model) {
        out += ",\"model\":{\"known\":";
        out += c.model->known ? "true" : "false";
        out += ",\"latency_us\":" + util::fmt_fixed(c.model->latency_us, 3) +
               ",\"bandwidth_mb_s\":" +
               util::fmt_fixed(c.model->bandwidth_mb_s, 3) +
               ",\"confidence\":" + util::fmt_fixed(c.model->confidence, 4) +
               ",\"dwell\":" + json_quote(c.model->dwell) + "}";
      }
      out += "}";
    }
    out += "]}";
  }
  out += "],\"rpc\":[";
  bool first_rpc = true;
  for (const RpcRow& r : rpc) {
    if (!first_rpc) out += ",";
    first_rpc = false;
    out += "{\"peer\":" + std::to_string(r.peer) +
           ",\"method\":" + json_quote(r.method) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace nexus::telemetry
