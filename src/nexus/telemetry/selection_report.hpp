// Structured selection-explanation enquiry (paper §4's "which method and
// why" questions, answered machine-readably).
//
// Context::explain_selection(startpoint) walks each link's descriptor
// table the way the active policy would and reports, per candidate, why it
// was rejected (module not loaded, not applicable from here, held back as
// an unreliable fallback, ranked behind a faster applicable entry, or not
// the application-forced method) and which descriptor wins.  The report is
// a plain value: render it with to_text() for terminals or to_json() for
// tooling.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace nexus::telemetry {

enum class CandidateStatus : std::uint8_t {
  Won,                 ///< this descriptor is the selected one
  NotLoaded,           ///< the method's module is not loaded locally
  NotApplicable,       ///< module loaded, but applicable(descriptor) is false
  UnreliableFallback,  ///< usable, but unreliable methods only win when
                       ///< nothing reliable applies (or via force_method)
  RankedBehind,        ///< usable, but the policy preferred another entry
  NotForced,           ///< a forced method is in effect and this is not it
  Quarantined,         ///< usable, but the health tracker has it in backoff
                       ///< after repeated delivery failures
};

const char* candidate_status_name(CandidateStatus s) noexcept;

/// One descriptor-table entry's fate during selection.
struct Candidate {
  /// The adaptive engine's modeled cost of this candidate (filled only when
  /// adaptation is enabled).  `known` is false while the cost model has no
  /// confident latency estimate for the (peer, method) pair yet.
  struct ModelRow {
    bool known = false;
    double latency_us = 0.0;      ///< modeled per-message latency
    double bandwidth_mb_s = 0.0;  ///< modeled bandwidth (0 = not yet modeled)
    double confidence = 0.0;      ///< latency-estimate confidence in [0, 1]
    std::string dwell;            ///< hysteresis state: held-small/-large/
                                  ///< -both, or candidate
  };

  std::size_t position = 0;  ///< index in the link's descriptor table
  std::string method;
  CandidateStatus status = CandidateStatus::NotApplicable;
  std::string detail;  ///< human-readable elaboration
  /// For wrapper methods (rel+udp): the inner transport the method layers
  /// over, so reports distinguish the wrapper from its carrier.
  std::string wraps;
  std::optional<ModelRow> model;  ///< see ModelRow
};

/// Selection outcome for one link of the startpoint.
struct LinkReport {
  std::uint32_t target = 0;    ///< destination context
  std::uint64_t endpoint = 0;  ///< destination endpoint
  bool forced = false;         ///< a force_method override is in effect
  std::string winner;          ///< selected method; empty if none applies
  std::string reason;          ///< the policy's reason string
  /// Set when the winning method lands the packet on a different context
  /// than the target (the forwarding configuration of paper §3.3).
  std::optional<std::uint32_t> forward_via;
  std::vector<Candidate> candidates;  ///< one per table entry, table order
};

struct SelectionReport {
  /// RPC-layer note: the method the last rpc::Client call toward `peer`
  /// actually rode (startpoint selection at request-send time).
  struct RpcRow {
    std::uint32_t peer = 0;
    std::string method;
  };

  std::string selector;  ///< name of the policy that was consulted
  std::vector<LinkReport> links;
  std::vector<RpcRow> rpc;  ///< last rpc call's method, per peer

  std::string to_text() const;
  std::string to_json() const;
};

}  // namespace nexus::telemetry
