#include "nexus/telemetry/stitch.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "nexus/telemetry/json.hpp"
#include "util/stats.hpp"

namespace nexus::telemetry {

Phase phase_from_name(std::string_view name) noexcept {
  for (int p = 0; p <= static_cast<int>(Phase::Custom); ++p) {
    if (name == phase_name(static_cast<Phase>(p))) {
      return static_cast<Phase>(p);
    }
  }
  return Phase::Custom;
}

void TraceStitcher::add_events(const std::vector<Event>& evs,
                               const std::vector<std::string>& labels) {
  events_.reserve(events_.size() + evs.size());
  names_.reserve(names_.size() + evs.size());
  for (const Event& ev : evs) {
    events_.push_back(ev);
    names_.push_back(ev.label < labels.size() ? labels[ev.label]
                                              : std::string("?"));
  }
}

void TraceStitcher::add_tracer(const Tracer& tracer) {
  for (const Event& ev : tracer.events()) {
    events_.push_back(ev);
    names_.push_back(tracer.label_name(ev.label));
  }
}

namespace {

/// Pull `"key":<unsigned>` out of one JSONL line; `fallback` when absent.
std::uint64_t field_u64(const std::string& line, const char* key,
                        std::uint64_t fallback = 0) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return fallback;
  const char* p = line.c_str() + pos + needle.size();
  char* end = nullptr;
  const unsigned long long v = std::strtoull(p, &end, 10);
  return end == p ? fallback : static_cast<std::uint64_t>(v);
}

/// Pull `"key":"value"` (no escape handling beyond stopping at the quote:
/// phase/label names in dumps are plain identifiers).
std::string field_str(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return "";
  const auto start = pos + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return "";
  return line.substr(start, end - start);
}

}  // namespace

bool TraceStitcher::add_flight_dump(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  std::string line;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    line.assign(buf);
    if (line.find("\"flight\":true") != std::string::npos) continue;  // meta
    if (line.find("\"phase\":") == std::string::npos) continue;
    Event ev;
    ev.when = static_cast<Time>(field_u64(line, "when"));
    ev.context = static_cast<std::uint32_t>(field_u64(line, "ctx"));
    ev.phase = phase_from_name(field_str(line, "phase"));
    ev.span = field_u64(line, "span");
    ev.parent = field_u64(line, "parent");
    ev.trace = field_u64(line, "trace");
    ev.size = field_u64(line, "size");
    ev.aux = field_u64(line, "aux");
    events_.push_back(ev);
    names_.push_back(field_str(line, "label"));
  }
  std::fclose(f);
  return true;
}

std::vector<std::uint64_t> TraceStitcher::traces() const {
  std::vector<std::uint64_t> out;
  for (const Event& ev : events_) {
    if (ev.trace != 0) out.push_back(ev.trace);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<SpanNode> TraceStitcher::spans(std::uint64_t trace) const {
  std::map<SpanId, SpanNode> nodes;
  std::vector<SpanId> order;
  for (const Event& ev : events_) {
    if (ev.trace != trace || ev.span == 0) continue;
    auto [it, fresh] = nodes.try_emplace(ev.span);
    SpanNode& n = it->second;
    if (fresh) {
      n.id = ev.span;
      n.trace = trace;
      n.context = ev.context;
      n.start = ev.when;
      n.end = ev.when;
      order.push_back(ev.span);
    }
    n.start = std::min(n.start, ev.when);
    n.end = std::max(n.end, ev.when);
    ++n.events;
    if (ev.parent != 0 && ev.parent != ev.span) n.parent = ev.parent;
    // The span is *opened* where its Send or Forward fired; later events
    // (dispatch at the destination) must not steal ownership.
    if (ev.phase == Phase::Send || ev.phase == Phase::Forward) {
      n.context = ev.context;
    }
  }
  std::vector<SpanNode> out;
  out.reserve(order.size());
  for (SpanId id : order) out.push_back(nodes[id]);
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanNode& a, const SpanNode& b) {
                     return (a.parent == 0) > (b.parent == 0);
                   });
  return out;
}

namespace {
std::string chrome_ts(Time ns) {
  return util::fmt_fixed(static_cast<double>(ns) / 1000.0, 3);
}
}  // namespace

std::string TraceStitcher::chrome_json() const {
  // Time-sort an index so flow arrows come out in causal order regardless
  // of ingestion order (dumps may arrive per context, not per time).
  std::vector<std::size_t> idx(events_.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return events_[a].when < events_[b].when;
  });

  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& fields) {
    if (!first) out += ",";
    first = false;
    out += "{" + fields + "}";
  };
  for (std::size_t i : idx) {
    const Event& ev = events_[i];
    std::string name = phase_name(ev.phase);
    if (!names_[i].empty()) {
      name += ":";
      name += names_[i];
    }
    const std::string common =
        "\"ts\":" + chrome_ts(ev.when) +
        ",\"pid\":" + std::to_string(ev.context) + ",\"tid\":0";
    const std::string args = ",\"args\":{\"span\":" + std::to_string(ev.span) +
                             ",\"parent\":" + std::to_string(ev.parent) +
                             ",\"trace\":" + std::to_string(ev.trace) +
                             ",\"size\":" + std::to_string(ev.size) +
                             ",\"aux\":" + std::to_string(ev.aux) + "}";
    if (ev.span != 0 && ev.phase == Phase::Send) {
      emit("\"name\":" + json_quote(name) +
           ",\"cat\":\"rsr\",\"ph\":\"b\",\"id\":" + std::to_string(ev.span) +
           "," + common + args);
    } else if (ev.span != 0 && ev.phase == Phase::Dispatch) {
      emit("\"name\":" + json_quote(name) +
           ",\"cat\":\"rsr\",\"ph\":\"e\",\"id\":" + std::to_string(ev.span) +
           "," + common + args);
    } else if (ev.span != 0 && ev.parent != 0 && ev.span != ev.parent &&
               ev.phase == Phase::Forward) {
      emit("\"name\":" + json_quote(name) +
           ",\"cat\":\"rsr\",\"ph\":\"e\",\"id\":" + std::to_string(ev.parent) +
           "," + common + args);
      emit("\"name\":" + json_quote(name) +
           ",\"cat\":\"rsr\",\"ph\":\"b\",\"id\":" + std::to_string(ev.span) +
           "," + common + args);
    }
    if (ev.trace != 0 && ev.phase == Phase::Send) {
      emit("\"name\":\"rsr_flow\",\"cat\":\"rsrflow\",\"ph\":\"s\",\"id\":" +
           std::to_string(ev.trace) + "," + common);
    } else if (ev.trace != 0 && ev.phase == Phase::Forward) {
      emit("\"name\":\"rsr_flow\",\"cat\":\"rsrflow\",\"ph\":\"t\",\"id\":" +
           std::to_string(ev.trace) + "," + common);
    } else if (ev.trace != 0 && ev.phase == Phase::Dispatch) {
      emit("\"name\":\"rsr_flow\",\"cat\":\"rsrflow\",\"ph\":\"f\",\"bp\":\"e\""
           ",\"id\":" + std::to_string(ev.trace) + "," + common);
    }
    emit("\"name\":" + json_quote(name) +
         ",\"cat\":\"nexus\",\"ph\":\"i\",\"s\":\"t\"," + common + args);
  }
  out += "],\"otherData\":{\"stitched\":true,\"events\":" +
         std::to_string(events_.size()) + "}}";
  return out;
}

bool TraceStitcher::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = chrome_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace nexus::telemetry
