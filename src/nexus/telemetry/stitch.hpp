// Trace stitcher: merge per-context / per-process trace dumps into one
// causally-linked Chrome trace.
//
// Inside a single Runtime the Tracer is already shared, but flight-recorder
// dumps are written per incident and a metacomputation may span several
// runtimes (or several chaos-seed processes).  The stitcher ingests events
// from any mix of live tracers and flight-dump JSONL files, reconstructs
// the span tree of every trace id (parent links come from Forward events),
// and emits a single Chrome about://tracing JSON in which each context is a
// process row, each span an async begin/end pair, and flow arrows follow
// each RSR across every hop, retry, and retransmit.
//
// The span-tree introspection API (traces() / spans()) is what the
// propagation tests assert against; chrome_json() / write() produce the
// human-facing artifact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nexus/telemetry/tracer.hpp"

namespace nexus::telemetry {

/// One reconstructed span: a segment of an RSR's journey owned by the
/// context that opened it (the startpoint for the root, a forwarding node
/// for each relay segment).
struct SpanNode {
  SpanId id = 0;
  SpanId parent = 0;        ///< 0 for the root span of its trace
  std::uint64_t trace = 0;
  std::uint32_t context = 0;  ///< context that opened the span
  Time start = 0;
  Time end = 0;
  std::size_t events = 0;   ///< events observed carrying this span
};

/// Reverse of phase_name(); returns Phase::Custom for unknown names.
Phase phase_from_name(std::string_view name) noexcept;

class TraceStitcher {
 public:
  /// Ingest raw events; `labels` maps interned label ids to names (may be
  /// shorter than the largest id -- unknown ids render as "?").
  void add_events(const std::vector<Event>& evs,
                  const std::vector<std::string>& labels);
  /// Ingest a live tracer's retained events.
  void add_tracer(const Tracer& tracer);
  /// Parse one flight-recorder JSONL dump (telemetry.cpp format).  Returns
  /// false when the file cannot be opened; unparseable lines are skipped.
  bool add_flight_dump(const std::string& path);

  std::size_t event_count() const noexcept { return events_.size(); }

  /// Distinct nonzero trace ids seen, ascending.
  std::vector<std::uint64_t> traces() const;
  /// The span tree of one trace: every distinct span id, with parent links
  /// recovered from Forward events.  Root first, then by first appearance.
  std::vector<SpanNode> spans(std::uint64_t trace) const;

  /// Merged Chrome trace over everything ingested, time-sorted.
  std::string chrome_json() const;
  bool write(const std::string& path) const;

 private:
  std::vector<Event> events_;
  std::vector<std::string> names_;  ///< resolved label name per event
};

}  // namespace nexus::telemetry
