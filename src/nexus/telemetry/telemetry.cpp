#include "nexus/telemetry/telemetry.hpp"

#include <atomic>
#include <cstdio>

#include "nexus/telemetry/json.hpp"
#include "util/log.hpp"

namespace nexus::telemetry {

namespace {
/// Process-wide dump counter so two runtimes in one test binary (or two
/// chaos seeds run back to back in one process) never clobber each other's
/// post-mortems.
std::atomic<std::uint64_t> g_dump_serial{0};

std::string sanitize(std::string_view reason) {
  std::string out;
  out.reserve(reason.size());
  for (char c : reason) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    out.push_back(ok ? c : '-');
  }
  return out.empty() ? std::string("unknown") : out;
}
}  // namespace

void Telemetry::init_flights(std::uint32_t world, std::size_t capacity,
                             bool enabled) {
  flights_.clear();
  flights_.reserve(world);
  for (std::uint32_t i = 0; i < world; ++i) {
    auto fr = std::make_unique<FlightRecorder>(capacity);
    fr->enable(enabled);
    flights_.push_back(std::move(fr));
  }
}

std::string Telemetry::dump_flight(std::string_view reason) {
  if (flight_dir_.empty() || flights_.empty()) return "";
  std::lock_guard<std::mutex> lock(dump_mutex_);
  if (!dumped_reasons_.emplace(reason).second) return "";

  const std::uint64_t serial =
      g_dump_serial.fetch_add(1, std::memory_order_relaxed);
  const std::string path = flight_dir_ + "/flight-" + std::to_string(serial) +
                           "-" + sanitize(reason) + ".jsonl";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    util::log_warn("telemetry", "flight dump failed: cannot open ", path);
    return "";
  }

  std::uint64_t total = 0;
  std::uint64_t lost = 0;
  for (const auto& fr : flights_) {
    total += fr->recorded();
    lost += fr->dropped();
  }
  std::string meta = "{\"flight\":true,\"reason\":" + json_quote(reason) +
                     ",\"contexts\":" + std::to_string(flights_.size()) +
                     ",\"recorded\":" + std::to_string(total) +
                     ",\"dropped\":" + std::to_string(lost) + "}\n";
  std::fwrite(meta.data(), 1, meta.size(), f);

  for (std::size_t ctx = 0; ctx < flights_.size(); ++ctx) {
    for (const Event& ev : flights_[ctx]->events()) {
      std::string line =
          "{\"ctx\":" + std::to_string(ev.context) +
          ",\"when\":" + std::to_string(ev.when) +
          ",\"phase\":" + json_quote(phase_name(ev.phase)) +
          ",\"label\":" + json_quote(tracer_.label_name(ev.label)) +
          ",\"span\":" + std::to_string(ev.span) +
          ",\"parent\":" + std::to_string(ev.parent) +
          ",\"trace\":" + std::to_string(ev.trace) +
          ",\"size\":" + std::to_string(ev.size) +
          ",\"aux\":" + std::to_string(ev.aux) + "}\n";
      std::fwrite(line.data(), 1, line.size(), f);
    }
  }
  std::fclose(f);
  util::log_warn("telemetry", "flight recorder dumped to ", path,
                 " (reason: ", std::string(reason), ")");
  return path;
}

}  // namespace nexus::telemetry
