// The observability bundle a Runtime owns: one tracer + one metrics
// registry shared by every context.  See tracer.hpp / metrics.hpp /
// selection_report.hpp for the pieces; docs/ARCHITECTURE.md §7 for the
// design rationale.
#pragma once

#include "nexus/telemetry/metrics.hpp"
#include "nexus/telemetry/selection_report.hpp"
#include "nexus/telemetry/tracer.hpp"

namespace nexus::telemetry {

class Telemetry {
 public:
  Tracer& tracer() noexcept { return tracer_; }
  const Tracer& tracer() const noexcept { return tracer_; }
  MetricsRegistry& metrics() noexcept { return metrics_; }
  const MetricsRegistry& metrics() const noexcept { return metrics_; }

 private:
  Tracer tracer_;
  MetricsRegistry metrics_;
};

}  // namespace nexus::telemetry
