// The observability bundle a Runtime owns: one tracer + one metrics
// registry shared by every context, plus one flight recorder per context.
// See tracer.hpp / metrics.hpp / flight_recorder.hpp /
// selection_report.hpp for the pieces; docs/ARCHITECTURE.md §7 and §12 for
// the design rationale.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "nexus/telemetry/flight_recorder.hpp"
#include "nexus/telemetry/metrics.hpp"
#include "nexus/telemetry/selection_report.hpp"
#include "nexus/telemetry/tracer.hpp"

namespace nexus::telemetry {

class Telemetry {
 public:
  Tracer& tracer() noexcept { return tracer_; }
  const Tracer& tracer() const noexcept { return tracer_; }
  MetricsRegistry& metrics() noexcept { return metrics_; }
  const MetricsRegistry& metrics() const noexcept { return metrics_; }

  /// Create one flight recorder per context (called once at runtime
  /// construction, before any context runs).
  void init_flights(std::uint32_t world, std::size_t capacity, bool enabled);
  /// The recorder for one context; nullptr when flights were never
  /// initialized or the id is out of range.
  FlightRecorder* flight(std::uint32_t context) noexcept {
    return context < flights_.size() ? flights_[context].get() : nullptr;
  }
  std::size_t flight_count() const noexcept { return flights_.size(); }

  /// Directory flight dumps are written to; empty disables dumping.
  void set_flight_dir(std::string dir) { flight_dir_ = std::move(dir); }
  const std::string& flight_dir() const noexcept { return flight_dir_; }

  /// Dump every context's flight ring to one JSONL file in flight_dir().
  /// Fires at most once per distinct reason per bundle (a dead latch that
  /// cascades should not write a thousand identical dumps).  Returns the
  /// path written, or "" when dumping is disabled / already done.
  std::string dump_flight(std::string_view reason);

 private:
  Tracer tracer_;
  MetricsRegistry metrics_;
  std::vector<std::unique_ptr<FlightRecorder>> flights_;
  std::string flight_dir_;
  std::mutex dump_mutex_;  // guards dumped_reasons_ and file writes
  std::set<std::string, std::less<>> dumped_reasons_;
};

}  // namespace nexus::telemetry
