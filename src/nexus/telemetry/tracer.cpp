#include "nexus/telemetry/tracer.hpp"

#include <algorithm>

#include "nexus/telemetry/json.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace nexus::telemetry {

const char* phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::Send: return "send";
    case Phase::Select: return "select";
    case Phase::Enqueue: return "enqueue";
    case Phase::PollHit: return "poll_hit";
    case Phase::Dispatch: return "dispatch";
    case Phase::HandlerDone: return "handler_done";
    case Phase::Forward: return "forward";
    case Phase::Drop: return "drop";
    case Phase::Failover: return "failover";
    case Phase::Suspect: return "suspect";
    case Phase::Restore: return "restore";
    case Phase::Retransmit: return "retransmit";
    case Phase::Ack: return "ack";
    case Phase::DupDrop: return "dup_drop";
    case Phase::AdaptRerank: return "adapt.rerank";
    case Phase::AdaptSwitch: return "adapt.switch";
    case Phase::AdaptProbe: return "adapt.probe";
    case Phase::PeerDead: return "peer.dead";
    case Phase::PeerReborn: return "peer.reborn";
    case Phase::Deadletter: return "rsr.deadletter";
    case Phase::RpcCall: return "rpc.call";
    case Phase::RpcReply: return "rpc.reply";
    case Phase::RpcExpire: return "rpc.expire";
    case Phase::RpcCancel: return "rpc.cancel";
    case Phase::RpcReject: return "rpc.reject";
    case Phase::RpcPull: return "rpc.pull";
    case Phase::RpcChunk: return "rpc.chunk";
    case Phase::Custom: return "custom";
  }
  return "?";
}

Tracer::Tracer(std::size_t capacity) {
  cap_.store(std::max<std::size_t>(8, capacity), std::memory_order_relaxed);
  labels_.emplace_back("");  // id 0 = unnamed
}

void Tracer::set_capacity(std::size_t capacity) {
  cap_.store(std::max<std::size_t>(8, capacity), std::memory_order_relaxed);
  for (Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.ring.clear();
    s.seqs.clear();
    s.head = 0;
    s.warned_wrap = false;
  }
}

std::size_t Tracer::capacity() const {
  return cap_.load(std::memory_order_relaxed);
}

std::uint16_t Tracer::intern(std::string_view label) {
  std::lock_guard<std::mutex> lock(label_mutex_);
  auto it = label_ids_.find(label);
  if (it != label_ids_.end()) return it->second;
  const auto id = static_cast<std::uint16_t>(labels_.size());
  labels_.emplace_back(label);
  label_ids_.emplace(std::string(label), id);
  return id;
}

std::string Tracer::label_name(std::uint16_t id) const {
  std::lock_guard<std::mutex> lock(label_mutex_);
  return id < labels_.size() ? labels_[id] : std::string("?");
}

void Tracer::record(const Event& ev) {
  Stripe& s = stripes_[ev.context % kStripes];
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.ring.empty()) {
    // First event of this stripe: allocate the full per-stripe ring (idle
    // stripes never pay).
    const std::size_t cap = cap_.load(std::memory_order_relaxed);
    s.ring.resize(cap);
    s.seqs.resize(cap);
  }
  const std::size_t slot =
      static_cast<std::size_t>(s.head % s.ring.size());
  s.ring[slot] = ev;
  s.seqs[slot] = seq;
  ++s.head;
  if (s.head == s.ring.size() + 1 && !s.warned_wrap) {
    s.warned_wrap = true;
    util::log_warn("telemetry", "trace ring wrapped after ", s.ring.size(),
                   " events; oldest events are being overwritten");
  }
}

void Tracer::record_custom(Time when, std::uint32_t context,
                           std::string_view what) {
  if (!enabled()) return;
  Event ev;
  ev.when = when;
  ev.context = context;
  ev.phase = Phase::Custom;
  ev.label = intern(what);
  record(ev);
}

std::vector<std::string> Tracer::labels_snapshot() const {
  std::lock_guard<std::mutex> lock(label_mutex_);
  return labels_;
}

std::vector<Event> Tracer::events() const {
  // Gather every stripe's retained (event, seq) pairs, then merge by the
  // global sequence: exact record order, and under threads=1 bit-identical
  // to the old single-ring snapshot.
  std::vector<std::pair<std::uint64_t, Event>> tagged;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.ring.empty()) continue;
    const std::size_t cap = s.ring.size();
    const auto n =
        static_cast<std::uint64_t>(std::min<std::uint64_t>(s.head, cap));
    for (std::uint64_t i = s.head - n; i < s.head; ++i) {
      tagged.emplace_back(s.seqs[i % cap], s.ring[i % cap]);
    }
  }
  std::sort(tagged.begin(), tagged.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Event> out;
  out.reserve(tagged.size());
  for (auto& [seq, ev] : tagged) out.push_back(ev);
  return out;
}

std::uint64_t Tracer::recorded() const {
  std::uint64_t total = 0;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    total += s.head;
  }
  return total;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t lost = 0;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.ring.empty() && s.head > s.ring.size()) {
      lost += s.head - s.ring.size();
    }
  }
  return lost;
}

void Tracer::clear() {
  for (Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.head = 0;
    s.warned_wrap = false;
  }
}

namespace {
/// Chrome trace timestamps are microseconds; ours are nanoseconds.
std::string chrome_ts(Time ns) {
  return util::fmt_fixed(static_cast<double>(ns) / 1000.0, 3);
}
}  // namespace

std::string Tracer::chrome_json() const {
  const std::vector<Event> evs = events();
  const std::vector<std::string> labels = labels_snapshot();
  const std::uint64_t total = recorded();
  const std::uint64_t lost = dropped();
  auto name_of = [&](const Event& ev) {
    std::string n = phase_name(ev.phase);
    if (ev.label != 0 && ev.label < labels.size()) {
      n += ":";
      n += labels[ev.label];
    }
    return n;
  };

  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& fields) {
    if (!first) out += ",";
    first = false;
    out += "{" + fields + "}";
  };
  for (const Event& ev : evs) {
    const std::string common =
        "\"ts\":" + chrome_ts(ev.when) +
        ",\"pid\":" + std::to_string(ev.context) + ",\"tid\":0";
    const std::string args = ",\"args\":{\"span\":" + std::to_string(ev.span) +
                             ",\"parent\":" + std::to_string(ev.parent) +
                             ",\"trace\":" + std::to_string(ev.trace) +
                             ",\"size\":" + std::to_string(ev.size) +
                             ",\"aux\":" + std::to_string(ev.aux) + "}";
    // Span-linked lifecycle: an async begin at the send, an end at each
    // dispatch.  Chrome matches begin/end by (cat, id) across processes,
    // which is exactly the cross-context linkage a span provides.  A
    // Forward event both ends the span it relays (parent) and begins the
    // child span stamped on the outgoing packet, so relayed RSRs render as
    // chained slices rather than one dangling begin.
    if (ev.span != 0 && ev.phase == Phase::Send) {
      emit("\"name\":" + json_quote(name_of(ev)) +
           ",\"cat\":\"rsr\",\"ph\":\"b\",\"id\":" + std::to_string(ev.span) +
           "," + common + args);
    } else if (ev.span != 0 && ev.phase == Phase::Dispatch) {
      emit("\"name\":" + json_quote(name_of(ev)) +
           ",\"cat\":\"rsr\",\"ph\":\"e\",\"id\":" + std::to_string(ev.span) +
           "," + common + args);
    } else if (ev.span != 0 && ev.parent != 0 && ev.span != ev.parent &&
               ev.phase == Phase::Forward) {
      emit("\"name\":" + json_quote(name_of(ev)) +
           ",\"cat\":\"rsr\",\"ph\":\"e\",\"id\":" + std::to_string(ev.parent) +
           "," + common + args);
      emit("\"name\":" + json_quote(name_of(ev)) +
           ",\"cat\":\"rsr\",\"ph\":\"b\",\"id\":" + std::to_string(ev.span) +
           "," + common + args);
    }
    // Flow arrows stitch the hops of one causal chain: start at the origin
    // send, step at each relay, finish at the dispatch.
    if (ev.trace != 0 && ev.phase == Phase::Send) {
      emit("\"name\":\"rsr_flow\",\"cat\":\"rsrflow\",\"ph\":\"s\",\"id\":" +
           std::to_string(ev.trace) + "," + common);
    } else if (ev.trace != 0 && ev.phase == Phase::Forward) {
      emit("\"name\":\"rsr_flow\",\"cat\":\"rsrflow\",\"ph\":\"t\",\"id\":" +
           std::to_string(ev.trace) + "," + common);
    } else if (ev.trace != 0 && ev.phase == Phase::Dispatch) {
      emit("\"name\":\"rsr_flow\",\"cat\":\"rsrflow\",\"ph\":\"f\",\"bp\":\"e\""
           ",\"id\":" + std::to_string(ev.trace) + "," + common);
    }
    emit("\"name\":" + json_quote(name_of(ev)) +
         ",\"cat\":\"nexus\",\"ph\":\"i\",\"s\":\"t\"," + common + args);
  }
  out += "],\"otherData\":{\"trace_recorded\":" + std::to_string(total) +
         ",\"trace_dropped\":" + std::to_string(lost) + "}}";
  return out;
}

std::string Tracer::text_timeline() const {
  std::vector<Event> evs = events();
  const std::vector<std::string> labels = labels_snapshot();
  std::stable_sort(evs.begin(), evs.end(),
                   [](const Event& a, const Event& b) { return a.when < b.when; });
  std::string out;
  for (const Event& ev : evs) {
    out += "t=" + util::fmt_fixed(static_cast<double>(ev.when) / 1000.0, 3) +
           "us ctx" + std::to_string(ev.context) + " " + phase_name(ev.phase);
    if (ev.label != 0 && ev.label < labels.size()) {
      out += " " + labels[ev.label];
    }
    if (ev.span != 0) out += " span=" + std::to_string(ev.span);
    if (ev.parent != 0) out += " parent=" + std::to_string(ev.parent);
    if (ev.trace != 0) out += " trace=" + std::to_string(ev.trace);
    if (ev.size != 0) out += " size=" + std::to_string(ev.size);
    if (ev.aux != 0) out += " aux=" + std::to_string(ev.aux);
    out += "\n";
  }
  return out;
}

}  // namespace nexus::telemetry
