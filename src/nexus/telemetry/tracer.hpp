// Bounded ring-buffer event tracer for the RSR lifecycle.
//
// One (trace, span) pair is allocated per RSR at send time and travels with
// the packet (Packet::trace / Packet::span): the trace id names the whole
// causal chain and never changes, while each forwarding hop opens a child
// span whose `parent` field points at the span it continues.  The send in
// one context and the dispatch in another are therefore linked even across
// relays, retries, and retransmits.  The tracer is
// runtime-off by default: every instrumented site pays exactly one relaxed
// atomic load (enabled()) on the hot path.  When enabled, record() claims a
// slot in a per-context-stripe ring (stripe = context % 16, each stripe its
// own mutex + ring) so contexts on different scheduler shards or realtime
// threads never contend on one tracer lock; a global sequence counter
// stamped per event lets events() merge the stripes back into exact record
// order (bit-identical to the old single ring under threads=1).  Stripe
// rings are allocated lazily at full capacity on a stripe's first event --
// an idle stripe costs nothing.  When a ring wraps, the oldest events of
// that stripe are overwritten and dropped() counts what was lost (no
// allocation after the first event, no unbounded growth).
//
// Exports: Chrome about://tracing JSON (spans become async begin/end pairs
// matched by id across contexts) and a compact text timeline for terminals.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "simnet/time.hpp"

namespace nexus::telemetry {

using Time = simnet::Time;
using SpanId = std::uint64_t;

/// Lifecycle stages of an RSR as seen by the instrumentation points.
enum class Phase : std::uint8_t {
  Send,         ///< context handed the packet to a method's send()
  Select,       ///< method selection ran for a link (first use)
  Enqueue,      ///< module posted the packet into the destination queue
  PollHit,      ///< a poll of a method found at least one packet
  Dispatch,     ///< handler invocation begins at the destination
  HandlerDone,  ///< handler invocation returned
  Forward,      ///< a forwarding node re-sent a packet toward its dst
  Drop,         ///< an unreliable method lost the packet
  Failover,     ///< health tracker declared a method dead; re-selecting
  Suspect,      ///< first failure observed on a healthy method/target pair
  Restore,      ///< a probe succeeded on a quarantined method; back in use
  Retransmit,   ///< a reliability wrapper resent a timed-out window entry
  Ack,          ///< a reliability wrapper emitted a standalone ack frame
  DupDrop,      ///< a reliability wrapper suppressed a duplicate data frame
  AdaptRerank,  ///< adaptive engine reordered a link's descriptor table
  AdaptSwitch,  ///< adaptive selector changed a payload class's method
  AdaptProbe,   ///< adaptive engine sent an active timing probe
  PeerDead,     ///< every method to a peer dead past grace; peer declared down
  PeerReborn,   ///< a send to a declared-dead peer succeeded (or the local
                ///< context itself reincarnated; aux = new epoch)
  Deadletter,   ///< an RSR drained into the dead-letter queue
  RpcCall,      ///< rpc client sent a request (aux = call id)
  RpcReply,     ///< rpc server sent (or client received) a reply
  RpcExpire,    ///< rpc call completed DeadlineExceeded locally
  RpcCancel,    ///< rpc call cancelled (client side or cancel frame seen)
  RpcReject,    ///< rpc admission control shed a request
  RpcPull,      ///< rpc server issued a bulk chunk pull
  RpcChunk,     ///< rpc bulk chunk arrived at the puller
  Custom,       ///< application-recorded marker
};

const char* phase_name(Phase p) noexcept;

/// One trace record.  Fixed-size (labels are interned to small ids) so the
/// ring is a flat array and recording never allocates.
struct Event {
  Time when = 0;             ///< context-local clock (virtual or wall), ns
  SpanId span = 0;           ///< RSR correlation id; 0 = not span-scoped
  std::uint32_t context = 0; ///< context that recorded the event
  Phase phase = Phase::Custom;
  std::uint16_t label = 0;   ///< interned name (method, handler, marker)
  std::uint64_t size = 0;    ///< wire or payload bytes, if meaningful
  std::uint64_t aux = 0;     ///< phase-specific: target/source context,
                             ///< scheduled arrival time, ...
  // Appended after the positional fields above so existing aggregate
  // initializers keep compiling; default 0 = "not causally scoped".
  SpanId parent = 0;         ///< span this event's span continues (forwarding)
  std::uint64_t trace = 0;   ///< causal chain id; constant across all hops
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  /// The one hot-path check: instrumented sites do nothing else when off.
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void enable(bool on = true) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Resize the rings (drops recorded events).  Capacity is per stripe and
  /// clamped to >= 8: a single-context workload retains exactly `capacity`
  /// newest events, same as the pre-striping tracer.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  /// Allocate a fresh span id (never returns 0).
  SpanId next_span() noexcept {
    return next_span_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Allocate a fresh trace id (never returns 0).  One per RSR; every hop,
  /// retry, and retransmit of that RSR carries the same trace id.
  std::uint64_t next_trace() noexcept {
    return next_trace_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Intern a label string, returning a stable small id.  Cold path: call
  /// once per distinct method/handler name, not per event.
  std::uint16_t intern(std::string_view label);
  /// Name for an interned id ("?" for unknown ids).
  std::string label_name(std::uint16_t id) const;

  void record(const Event& ev);
  /// Application-facing marker, e.g. phase boundaries of an experiment.
  void record_custom(Time when, std::uint32_t context, std::string_view what);

  /// Snapshot of retained events, oldest first.
  std::vector<Event> events() const;
  /// Total events ever recorded (including overwritten ones).
  std::uint64_t recorded() const;
  /// Events lost to ring wrap-around.
  std::uint64_t dropped() const;
  void clear();

  /// Chrome about://tracing JSON ({"traceEvents": [...]}).  Each event is an
  /// instant; span-carrying Send/Dispatch pairs additionally emit async
  /// begin/end records matched by span id across contexts (pids), Forward
  /// events close the parent span and open the child, and flow arrows
  /// (ph s/t/f, id = trace) connect the hops.  Top-level `otherData` carries
  /// `trace_recorded` / `trace_dropped` so ring overflow is visible in the
  /// artifact itself.
  std::string chrome_json() const;
  /// Compact human-readable timeline, time-ordered.
  std::string text_timeline() const;

 private:
  /// Contexts map to stripes round-robin; 16 stripes bound the worst-case
  /// lock contention regardless of world size.
  static constexpr std::size_t kStripes = 16;

  struct Stripe {
    mutable std::mutex mutex;
    std::vector<Event> ring;          ///< empty until the first event
    std::vector<std::uint64_t> seqs;  ///< global sequence per ring slot
    std::uint64_t head = 0;  ///< stripe total; next slot = head % ring.size()
    bool warned_wrap = false;
  };

  std::vector<std::string> labels_snapshot() const;

  std::atomic<bool> enabled_{false};
  std::atomic<SpanId> next_span_{1};
  std::atomic<std::uint64_t> next_trace_{1};
  std::atomic<std::uint64_t> seq_{0};  ///< global record order
  std::atomic<std::size_t> cap_{kDefaultCapacity};  ///< per-stripe slots
  mutable Stripe stripes_[kStripes];
  mutable std::mutex label_mutex_;  // guards labels_, label_ids_
  std::vector<std::string> labels_;
  std::map<std::string, std::uint16_t, std::less<>> label_ids_;
};

}  // namespace nexus::telemetry
