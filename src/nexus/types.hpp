// Core identifier types and the wire packet for remote service requests.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

#include "simnet/time.hpp"
#include "util/bytes.hpp"
#include "util/pack.hpp"
#include "util/shared_bytes.hpp"

namespace nexus {

using ContextId = std::uint32_t;
using EndpointId = std::uint64_t;
/// Handlers are addressed on the wire by the FNV-1a hash of their registered
/// name; registration rejects hash collisions within a context.
using HandlerId = std::uint64_t;
using Time = simnet::Time;

inline constexpr ContextId kNoContext =
    std::numeric_limits<ContextId>::max();

/// Pseudo-context ids at or above this base address groups (multicast)
/// rather than real contexts; ids in [world_size, kGroupContextBase) name
/// nothing and an RSR toward one fails with DeliveryStatus::Dead.  The
/// proto modules alias this as kMulticastBase.
inline constexpr ContextId kGroupContextBase = 0x8000'0000u;

/// Outcome of handing one packet to a communication method, as observed by
/// the sender (docs/ARCHITECTURE.md §9).  Ordered as a severity lattice:
/// Ok < Transient < Dead.
enum class DeliveryStatus : std::uint8_t {
  Ok,         ///< the method accepted the packet for delivery
  Transient,  ///< the packet was lost but a retry may succeed (detected
              ///< drop, momentary congestion)
  Dead,       ///< the method cannot currently reach the target at all
              ///< (link down / connection refused); fail over
};

const char* delivery_status_name(DeliveryStatus s) noexcept;

/// FNV-1a hash of a communication method name (same construction as
/// HandlerId).  The adaptive cost model and the timing echo identify
/// methods by this value because it is stable across contexts, unlike
/// locally-interned method ids.
inline std::uint64_t method_hash(std::string_view name) noexcept {
  std::uint64_t h = 14695981039346656037ull;
  for (const char ch : name) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;
  }
  return h;
}

/// Role of a packet within the reliability wrapper protocol (rel+<method>,
/// docs/ARCHITECTURE.md §10).  None marks ordinary traffic of the inner
/// transport; Data carries an application RSR under a sequence number;
/// Ack is a standalone acknowledgement frame with an empty payload.
enum class RelKind : std::uint8_t {
  None,  ///< not reliability-wrapped
  Data,  ///< sequenced application payload
  Ack,   ///< standalone cumulative + selective acknowledgement
};

/// What a CommModule::send returns: the verdict plus the bytes that would
/// have crossed (or crossed) the wire.  `wire` stays meaningful on failure
/// so retry accounting can reason about attempted traffic.
struct SendResult {
  DeliveryStatus status = DeliveryStatus::Ok;
  std::uint64_t wire = 0;

  bool ok() const noexcept { return status == DeliveryStatus::Ok; }
};

/// Serialized remote service request as it travels between contexts.
///
/// The payload is always canonically-encoded bytes (produced by PackBuffer)
/// held in an immutable shared buffer: multicast links, forwarding hops,
/// and mailbox entries all alias the single buffer the sender produced
/// instead of copying it.  Contexts stay logically isolated because the
/// shared bytes are read-only -- a receiver can only observe or copy them,
/// never mutate another recipient's view (docs/ARCHITECTURE.md §8).
struct Packet {
  ContextId src = kNoContext;
  ContextId dst = kNoContext;
  EndpointId endpoint = 0;
  HandlerId handler = 0;
  /// Nonzero when this packet is being routed via a forwarding node: the
  /// ultimate destination differs from the context that receives it.
  /// (dst is then the final destination; the forwarder compares dst with
  /// its own id.)
  std::uint8_t hops = 0;
  /// Set by the fault plane when a Corrupt rule fires: models an integrity
  /// failure the receiver's checksum detects.  The payload bytes are left
  /// intact (transform methods still decode them); the receiving polling
  /// engine quarantines the packet instead of dispatching it.
  bool corrupted = false;
  util::SharedBytes payload;

  // --- reliability-wrapper header (rel+<method>, §10) ---
  /// None for ordinary traffic; Data/Ack only between two rel+<method>
  /// endpoints.  The receiving wrapper strips these fields before the
  /// packet is dispatched or forwarded onward.
  RelKind rel_kind = RelKind::None;
  /// Hop-local sender of this rel frame (the ack return address);
  /// restamped by each forwarding hop's wrapper, unlike src.
  ContextId rel_from = kNoContext;
  std::uint64_t rel_seq = 0;   ///< sequence number of a Data frame
  std::uint64_t rel_ack = 0;   ///< cumulative ack: next expected sequence
  /// Selective-ack bitmap: bit i set means sequence rel_ack + 1 + i was
  /// received out of order.
  std::uint64_t rel_sack = 0;

  // --- incarnation epochs (crash/restart fault domain, §14) ---
  /// Sender's incarnation epoch at send time (1 = first life; bumped on
  /// every crash/restart).  A receiver rejects Data frames stamped with an
  /// epoch older than the one it has locked onto for that peer.  Epochs fit
  /// in the modelled fixed header alongside hops, so wire_size() is
  /// unchanged.
  std::uint32_t incarnation = 1;
  /// Epoch of the *receiver-side* stream that this frame's rel_ack/rel_sack
  /// fields describe (0 = no ack state carried).  A restarted sender uses it
  /// to reject ghost acks addressed to its previous incarnation's window.
  std::uint32_t rel_peer_inc = 0;

  // --- observability metadata (not modelled as wire bytes) ---
  /// Trace span id linking this RSR's send to its dispatch across contexts;
  /// 0 when observability is disabled.  A forwarding hop restamps it with a
  /// child span (recording the old value as the child's parent); multicast
  /// replication shares it.
  std::uint64_t span = 0;
  /// Causal-chain id assigned once at the originating rsr() and never
  /// changed by relays, retries, or retransmits: every event of one RSR's
  /// journey carries the same trace id.
  std::uint64_t trace = 0;
  /// Sender's clock at send time, for the one-way latency histogram.
  Time sent_at = 0;

  // --- adaptive-timing echo (docs/ARCHITECTURE.md §11) ---
  // A receiver that measured the one-way time of an incoming packet echoes
  // the measurement back on its next packet to that sender, closing the
  // timing loop for raw (non-rel) methods whose acks carry no timestamps.
  // Like span/sent_at these piggybacked fields are a few bytes that hide
  // inside the modelled fixed header, so wire_size() excludes them.
  std::uint64_t adapt_method = 0;  ///< method_hash() the echo is about; 0 =
                                   ///< no echo on this packet
  std::uint64_t adapt_bytes = 0;   ///< wire bytes of the sampled packet
  Time adapt_oneway = 0;           ///< its observed one-way time (ns)

  /// Bytes this packet occupies on a wire: header plus payload.  The
  /// span/sent_at telemetry fields are deliberately excluded -- they are
  /// debugging metadata, not part of the modelled protocol.
  std::uint64_t wire_size() const noexcept {
    return kHeaderBytes + payload.size() +
           (rel_kind == RelKind::None ? 0 : kRelHeaderBytes);
  }

  /// Fixed header size modelled for all methods (src, dst, endpoint,
  /// handler, hops, length).
  static constexpr std::uint64_t kHeaderBytes = 29;
  /// Extra header modelled for reliability-wrapped frames (kind, rel_from,
  /// rel_seq, rel_ack, rel_sack).
  static constexpr std::uint64_t kRelHeaderBytes = 29;
};

}  // namespace nexus
