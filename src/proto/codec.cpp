#include "proto/codec.hpp"

#include "util/error.hpp"
#include "util/pack.hpp"
#include "util/rng.hpp"

namespace nexus::proto {

util::Bytes rle_encode(util::ByteSpan in) {
  util::Bytes out;
  out.reserve(in.size() / 2 + 8);
  std::size_t i = 0;
  while (i < in.size()) {
    const util::Byte b = in[i];
    std::size_t run = 1;
    while (i + run < in.size() && in[i + run] == b && run < 255) ++run;
    out.push_back(static_cast<util::Byte>(run));
    out.push_back(b);
    i += run;
  }
  return out;
}

util::Bytes rle_decode(util::ByteSpan in) {
  if (in.size() % 2 != 0) {
    throw util::UnpackError("RLE stream has odd length");
  }
  util::Bytes out;
  for (std::size_t i = 0; i < in.size(); i += 2) {
    const std::size_t run = in[i];
    if (run == 0) throw util::UnpackError("RLE run of length zero");
    out.insert(out.end(), run, in[i + 1]);
  }
  return out;
}

void keystream_xor(util::Bytes& data, std::uint64_t key) {
  util::Rng rng(key);
  std::size_t i = 0;
  while (i < data.size()) {
    std::uint64_t word = rng.next();
    for (int b = 0; b < 8 && i < data.size(); ++b, ++i) {
      data[i] ^= static_cast<util::Byte>(word & 0xff);
      word >>= 8;
    }
  }
}

std::uint64_t integrity_tag(util::ByteSpan data) {
  std::uint64_t h = 14695981039346656037ull;
  for (util::Byte b : data) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

util::Bytes seal(util::ByteSpan plaintext, std::uint64_t key) {
  const std::uint64_t tag = integrity_tag(plaintext);
  util::Bytes out(plaintext.begin(), plaintext.end());
  keystream_xor(out, key);
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<util::Byte>((tag >> shift) & 0xff));
  }
  return out;
}

util::Bytes open(util::ByteSpan sealed, std::uint64_t key) {
  if (sealed.size() < 8) {
    throw util::MethodError("sealed payload shorter than its tag");
  }
  std::uint64_t tag = 0;
  const std::size_t body = sealed.size() - 8;
  for (std::size_t i = 0; i < 8; ++i) {
    tag = (tag << 8) | sealed[body + i];
  }
  util::Bytes out(sealed.begin(), sealed.begin() + static_cast<std::ptrdiff_t>(body));
  keystream_xor(out, key);
  if (integrity_tag(out) != tag) {
    throw util::MethodError("secure method: integrity tag mismatch");
  }
  return out;
}

}  // namespace nexus::proto
