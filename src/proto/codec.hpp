// Payload codecs used by the wrapper methods.
//
// * RLE: the compression method ("zrle") shrinks runs of repeated bytes --
//   enough to demonstrate selecting a method by *what* is communicated.
// * Keystream + MAC: the security method ("secure") applies a toy stream
//   cipher (xoshiro keystream XOR) and a 64-bit FNV-1a integrity tag.  It
//   is NOT cryptography; it exists to exercise the architecture's
//   per-startpoint security selection (paper §2, Security bullet) and to
//   charge realistic per-byte CPU costs.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace nexus::proto {

/// Run-length encode: pairs (count, byte); count in [1, 255].
util::Bytes rle_encode(util::ByteSpan in);
/// Inverse of rle_encode; throws util::UnpackError on malformed input.
util::Bytes rle_decode(util::ByteSpan in);

/// XOR `data` in place with a keystream derived from `key`.
/// Involution: applying twice restores the input.
void keystream_xor(util::Bytes& data, std::uint64_t key);

/// 64-bit integrity tag over `data`.
std::uint64_t integrity_tag(util::ByteSpan data);

/// Seal: encrypt in place and append the 8-byte tag of the plaintext.
util::Bytes seal(util::ByteSpan plaintext, std::uint64_t key);
/// Open: verify tag and decrypt; throws util::MethodError on tag mismatch.
util::Bytes open(util::ByteSpan sealed, std::uint64_t key);

}  // namespace nexus::proto
