#include "proto/register.hpp"

#include "nexus/context.hpp"
#include "proto/reliable.hpp"
#include "proto/rt_modules.hpp"
#include "proto/sim_modules.hpp"
#include "proto/stream.hpp"
#include "util/error.hpp"

namespace nexus::proto {

namespace {
bool simulated(Context& ctx) { return ctx.clock().simulated(); }

template <typename SimT>
ModuleRegistry::Factory sim_only(const char* name) {
  return [name](Context& ctx) -> std::unique_ptr<CommModule> {
    if (!simulated(ctx)) {
      throw util::MethodError(std::string("method '") + name +
                              "' is only available on the simulated fabric");
    }
    return std::make_unique<SimT>(ctx);
  };
}
}  // namespace

void register_builtin_modules(ModuleRegistry& registry) {
  registry.register_factory("local", [](Context& ctx)
                                         -> std::unique_ptr<CommModule> {
    if (simulated(ctx)) return std::make_unique<LocalSimModule>(ctx);
    return std::make_unique<RtQueueModule>(ctx, "local",
                                           RtQueueModule::Scope::Self, 0,
                                           /*blocking_capable=*/false);
  });
  registry.register_factory("shm", [](Context& ctx)
                                       -> std::unique_ptr<CommModule> {
    if (simulated(ctx)) return std::make_unique<ShmSimModule>(ctx);
    return std::make_unique<RtQueueModule>(ctx, "shm",
                                           RtQueueModule::Scope::Anywhere, 1,
                                           /*blocking_capable=*/false);
  });
  registry.register_factory("mpl", [](Context& ctx)
                                       -> std::unique_ptr<CommModule> {
    if (simulated(ctx)) return std::make_unique<MplSimModule>(ctx);
    return std::make_unique<RtQueueModule>(
        ctx, "mpl", RtQueueModule::Scope::SamePartition, 3,
        /*blocking_capable=*/false);
  });
  registry.register_factory("tcp", [](Context& ctx)
                                       -> std::unique_ptr<CommModule> {
    if (simulated(ctx)) return std::make_unique<TcpSimModule>(ctx);
    return std::make_unique<RtQueueModule>(ctx, "tcp",
                                           RtQueueModule::Scope::Anywhere, 6,
                                           /*blocking_capable=*/true);
  });
  registry.register_factory("udp", [](Context& ctx)
                                       -> std::unique_ptr<CommModule> {
    if (simulated(ctx)) return std::make_unique<UdpSimModule>(ctx);
    return std::make_unique<RtUdpModule>(ctx);
  });
  registry.register_factory("secure", [](Context& ctx)
                                          -> std::unique_ptr<CommModule> {
    if (simulated(ctx)) return std::make_unique<SecureSimModule>(ctx);
    return std::make_unique<RtSecureModule>(ctx);
  });
  registry.register_factory("zrle", [](Context& ctx)
                                        -> std::unique_ptr<CommModule> {
    if (simulated(ctx)) return std::make_unique<CompressSimModule>(ctx);
    return std::make_unique<RtZrleModule>(ctx);
  });
  registry.register_factory("mcast", [](Context& ctx)
                                         -> std::unique_ptr<CommModule> {
    if (simulated(ctx)) return std::make_unique<McastSimModule>(ctx);
    return std::make_unique<RtMcastModule>(ctx);
  });
  registry.register_factory("myrinet", sim_only<MyrinetSimModule>("myrinet"));
  registry.register_factory("aal5", sim_only<Aal5SimModule>("aal5"));
  registry.register_factory("stream", sim_only<StreamSimModule>("stream"));
  // Reliability wrapper over the unreliable datagram transport: exactly-
  // once, in-order delivery at udp's speed rank (docs/ARCHITECTURE.md §10).
  register_reliable_wrapper(registry, "udp");
}

}  // namespace nexus::proto
