// Registration of the built-in communication modules.
#pragma once

#include "nexus/module.hpp"

namespace nexus::proto {

/// Install factories for every built-in method name into `registry`.  Each
/// factory inspects the requesting context's fabric and constructs the
/// simulated or realtime variant accordingly.  This is the analog of the
/// paper's "default set of modules defined when the Nexus library is
/// built"; additional modules can be registered on the same registry at any
/// time before Runtime::run() ("loaded dynamically").
void register_builtin_modules(ModuleRegistry& registry);

}  // namespace nexus::proto
