#include "proto/reliable.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "proto/rt_modules.hpp"
#include "proto/sim_modules.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace nexus::proto {

namespace {

/// Clear the protocol header so nothing downstream (dispatch, forwarding
/// hops, tracing) observes rel state that has already been consumed.
void strip_rel_header(Packet& pkt) {
  pkt.rel_kind = RelKind::None;
  pkt.rel_from = kNoContext;
  pkt.rel_seq = 0;
  pkt.rel_ack = 0;
  pkt.rel_sack = 0;
  pkt.rel_peer_inc = 0;
}

}  // namespace

ReliableModule::ReliableModule(Context& ctx, std::unique_ptr<CommModule> inner)
    : ctx_(&ctx), inner_(std::move(inner)) {
  if (inner_ == nullptr) {
    throw util::UsageError("reliability wrapper requires an inner transport");
  }
  inner_name_ = std::string(inner_->name());
  name_ = "rel+" + inner_name_;
}

void ReliableModule::initialize(Context& ctx) {
  ctx_ = &ctx;
  const util::ResourceDb& db = ctx.config();
  const std::uint32_t cid = ctx.id();
  window_ = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, db.get_scoped_int(cid, "rel.window", 32)));
  max_retries_ = static_cast<int>(
      std::max<std::int64_t>(0, db.get_scoped_int(cid, "rel.max_retries", 12)));
  ack_every_ = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, db.get_scoped_int(cid, "rel.ack_every", 8)));
  ack_delay_ = db.get_scoped_int(cid, "rel.ack_delay_us", 2000) * simnet::kUs;
  rto_initial_ =
      db.get_scoped_int(cid, "rel.rto_initial_us", 10000) * simnet::kUs;
  rto_min_ = db.get_scoped_int(cid, "rel.rto_min_us", 2000) * simnet::kUs;
  rto_max_ = db.get_scoped_int(cid, "rel.rto_max_us", 400000) * simnet::kUs;
  const std::string policy =
      db.get_scoped(cid, "rel.backpressure").value_or("block");
  if (policy == "block") {
    policy_ = RelBackpressure::Block;
  } else if (policy == "shed") {
    policy_ = RelBackpressure::Shed;
  } else {
    throw util::ConfigError("rel.backpressure must be 'block' or 'shed', got '" +
                            policy + "'");
  }

  inner_->initialize(ctx);
  // Rebind the inner transport into a layered registry row and trace label
  // ("rel+udp/udp") so enquiry output distinguishes wrapper-level RSR
  // traffic from the raw frames (data + retransmits + acks) underneath.
  telemetry::Telemetry& tele = ctx.runtime().telemetry();
  const std::string layered = name_ + "/" + inner_name_;
  inner_->bind_metrics(tele.metrics().method(cid, layered));
  inner_->set_trace_label(tele.tracer().intern(layered));

  // The wrapper owns its own inbox, keyed by the wrapper name: rel frames
  // never mix with plain inner traffic, and inner_->poll() is never called.
  if (ctx.clock().simulated()) {
    SimFabric& f = *ctx.runtime().sim();
    SimHost& host = f.host(cid);
    auto [it, inserted] = host.boxes.try_emplace(
        name_, simnet::Mailbox<Packet>(f.scheduler_for(cid), *host.proc));
    sim_inbox_ = &it->second;
  } else {
    RtHost& host = ctx.runtime().rt()->host(cid);
    rt_inbox_ = &host.queues[name_];
  }
}

CommDescriptor ReliableModule::local_descriptor() const {
  util::PackBuffer pb;
  inner_->local_descriptor().pack(pb);
  return CommDescriptor{name_, ctx_->id(), pb.take()};
}

CommDescriptor ReliableModule::unwrap(const CommDescriptor& remote) const {
  util::UnpackBuffer ub(remote.data);
  return CommDescriptor::unpack(ub);
}

bool ReliableModule::applicable(const CommDescriptor& remote) const {
  return remote.method == name_ && inner_->applicable(unwrap(remote));
}

std::unique_ptr<CommObject> ReliableModule::connect(
    const CommDescriptor& remote) {
  return std::make_unique<RelConn>(*this, remote, remote.context);
}

void ReliableModule::point_at_rel_inbox(CommObject& conn) const {
  if (ctx_->clock().simulated()) {
    SimConn& c = static_cast<SimConn&>(conn);
    SimHost& host = ctx_->runtime().sim()->host(c.landing());
    c.host_ = &host;
    c.box_ = &host.box(name_);
  } else {
    RtConn& c = static_cast<RtConn&>(conn);
    RtHost& host = ctx_->runtime().rt()->host(c.landing());
    c.host_ = &host;
    c.queue_ = &host.queue(name_);
  }
}

ReliableModule::SendState& ReliableModule::send_state(
    ContextId peer, const CommDescriptor& inner_desc) {
  auto it = send_states_.find(peer);
  if (it != send_states_.end()) return it->second;
  SendState st;
  st.conn = inner_->connect(inner_desc);
  point_at_rel_inbox(*st.conn);
  st.ring.resize(static_cast<std::size_t>(window_));
  st.rto = rto_initial_;
  return send_states_.emplace(peer, std::move(st)).first->second;
}

ReliableModule::RecvState& ReliableModule::recv_state(ContextId peer) {
  return recv_states_[peer];
}

std::uint64_t ReliableModule::in_flight(ContextId peer) const {
  auto it = send_states_.find(peer);
  return it == send_states_.end() ? 0
                                  : it->second.next_seq - it->second.base;
}

SendResult ReliableModule::inner_send(CommObject& conn, Packet pkt) {
  // The wrapper drives the inner module directly, bypassing the context
  // send path that normally maintains these counters.
  util::MethodCounters& c = inner_->counters();
  const SendResult r = inner_->send(conn, std::move(pkt));
  c.sends += 1;
  if (r.ok()) {
    c.bytes_sent += r.wire;
    if (ctx_->runtime().telemetry().metrics().enabled() &&
        inner_->metrics() != nullptr) {
      inner_->metrics()->send_bytes.add(r.wire);
    }
  } else {
    c.send_errors += 1;
  }
  return r;
}

std::uint64_t ReliableModule::sack_bits(const RecvState& rs) const {
  std::uint64_t bits = 0;
  for (const auto& [seq, pkt] : rs.reorder) {
    const std::uint64_t off = seq - rs.next_expected;  // always >= 1
    if (off >= 1 && off <= 64) bits |= std::uint64_t{1} << (off - 1);
  }
  return bits;
}

void ReliableModule::stamp_piggyback(ContextId peer, Packet& pkt) {
  pkt.rel_ack = 0;
  pkt.rel_sack = 0;
  pkt.rel_peer_inc = 0;  // no ack state carried unless a stream exists
  auto it = recv_states_.find(peer);
  if (it == recv_states_.end()) return;
  RecvState& rs = it->second;
  pkt.rel_ack = rs.next_expected;
  pkt.rel_sack = sack_bits(rs);
  // Which incarnation of the peer these ack fields describe: a restarted
  // peer rejects them as ghost acks instead of crediting its new window.
  pkt.rel_peer_inc = rs.epoch;
  // The reverse-traffic ack settles any delayed-ack debt toward this peer.
  rs.acks_owed = 0;
  rs.ack_deadline = 0;
}

void ReliableModule::rtt_sample(SendState& st, Time sample) {
  // Jacobson/Karels: srtt += err/8, rttvar += (|err| - rttvar)/4,
  // rto = srtt + 4*rttvar clamped to [rto_min, rto_max].
  const double s = static_cast<double>(sample);
  if (!st.have_rtt) {
    st.srtt_ns = s;
    st.rttvar_ns = s / 2.0;
    st.have_rtt = true;
  } else {
    const double err = s - st.srtt_ns;
    st.srtt_ns += err / 8.0;
    st.rttvar_ns += (std::abs(err) - st.rttvar_ns) / 4.0;
  }
  st.rto = std::clamp(static_cast<Time>(st.srtt_ns + 4.0 * st.rttvar_ns),
                      rto_min_, rto_max_);
}

void ReliableModule::process_ack_fields(ContextId peer, const Packet& pkt) {
  // Ghost-ack rejection (docs §14): ack fields describing a previous
  // incarnation of *this* context must not credit the new incarnation's
  // window -- sequence numbers restarted at zero, so the numeric ranges
  // collide.  rel_peer_inc == 0 means the frame carries no ack state.
  if (pkt.rel_peer_inc != 0 && pkt.rel_peer_inc != ctx_->incarnation()) {
    counters().rel_epoch_rejects += 1;
    return;
  }
  auto it = send_states_.find(peer);
  if (it == send_states_.end()) return;
  SendState& st = it->second;
  bool progress = false;
  const Time t = now();
  // Receiver-reincarnation handling (docs §14): a selective ack only proves
  // the frame reached the *reorder buffer* of the life that sent it, and
  // that buffer dies with the incarnation.  When the receiver's incarnation
  // bumps, un-sack everything still outstanding so it is retransmitted into
  // the new life (the stable floor dup-drops anything the old life had
  // actually committed).  Cumulative acks advance only past committed
  // frames, so they stay valid across lives: a stale-life ack may still
  // move the base, but its sack bits are ignored.
  bool sack_valid = true;
  if (pkt.incarnation != 0) {
    if (pkt.incarnation > st.peer_inc) {
      if (st.peer_inc != 0) {
        for (std::uint64_t seq = st.base; seq < st.next_seq; ++seq) {
          SendEntry& e = slot(st, seq);
          if (e.live && e.acked) {
            e.acked = false;
            e.deadline = t;  // retransmit on the next timer pass
          }
        }
        st.next_timer = t;
      }
      st.peer_inc = pkt.incarnation;
    } else if (pkt.incarnation < st.peer_inc) {
      sack_valid = false;
    }
  }
  // Cumulative: everything below rel_ack is delivered.
  while (st.base < pkt.rel_ack && st.base < st.next_seq) {
    SendEntry& e = slot(st, st.base);
    if (e.live) {
      // Karn's rule: only never-retransmitted entries yield RTT samples.
      if (!e.acked && e.retries == 0) {
        rtt_sample(st, t - e.first_sent);
        if (ctx_->adaptation_enabled()) {
          ctx_->cost_model().observe_rtt(name_hash(), peer, e.pkt.wire_size(),
                                         t - e.first_sent, t);
        }
      }
      e.live = false;
      e.acked = false;
      e.pkt = Packet{};
      progress = true;
    }
    ++st.base;
  }
  // Selective: bit i acknowledges sequence rel_ack + 1 + i.
  if (pkt.rel_sack != 0 && sack_valid) {
    for (int i = 0; i < 64; ++i) {
      if (((pkt.rel_sack >> i) & 1u) == 0) continue;
      const std::uint64_t seq = pkt.rel_ack + 1 + static_cast<std::uint64_t>(i);
      if (seq < st.base || seq >= st.next_seq) continue;
      SendEntry& e = slot(st, seq);
      if (e.live && !e.acked) {
        if (e.retries == 0) {
          rtt_sample(st, t - e.first_sent);
          if (ctx_->adaptation_enabled()) {
            ctx_->cost_model().observe_rtt(name_hash(), peer,
                                           e.pkt.wire_size(), t - e.first_sent,
                                           t);
          }
        }
        // The payload is retained: if the receiver reincarnates before the
        // base passes this entry, the sack is voided and the frame must be
        // retransmitted into the new life.
        e.acked = true;
        progress = true;
      }
    }
  }
  if (progress) {
    // Any acknowledged progress proves the peer reachable: clear the
    // escalation latch and shed the exponential backoff.
    st.dead = false;
    if (!st.have_rtt) st.rto = rto_initial_;
  }
}

void ReliableModule::flush_ack(ContextId peer, RecvState& rs) {
  if (rs.ack_conn == nullptr) {
    // Build the return path from the peer's default table.  A udp-only
    // table carries no raw inner descriptor, so unwrap the peer's own
    // rel+<method> entry first and fall back to a plain inner entry.
    const DescriptorTable& table = ctx_->runtime().table_of(peer);
    CommDescriptor inner_desc;
    if (auto idx = table.find(name_)) {
      inner_desc = unwrap(table.at(*idx));
    } else if (auto raw = table.find(inner_name_)) {
      inner_desc = table.at(*raw);
    } else {
      // No route back: cancel the debt so this does not retry per frame;
      // the sender's retransmission timers still guarantee delivery.
      util::log_debug(name_, "context " + std::to_string(ctx_->id()) +
                                 " has no ack route to context " +
                                 std::to_string(peer));
      rs.acks_owed = 0;
      rs.ack_deadline = 0;
      return;
    }
    rs.ack_conn = inner_->connect(inner_desc);
    point_at_rel_inbox(*rs.ack_conn);
  }
  Packet ack;
  ack.src = ctx_->id();
  ack.dst = peer;
  ack.rel_kind = RelKind::Ack;
  ack.rel_from = ctx_->id();
  ack.rel_ack = rs.next_expected;
  ack.rel_sack = sack_bits(rs);
  ack.incarnation = ctx_->incarnation();
  ack.rel_peer_inc = rs.epoch;  // which life of the peer this ack credits
  ack.sent_at = now();
  rs.acks_owed = 0;
  rs.ack_deadline = 0;
  counters().rel_acks_sent += 1;
  if (ctx_->observing()) {
    // Acks carry no span/trace: they are protocol chatter, not part of any
    // RSR's causal chain.
    ctx_->observe({now(), 0, ctx_->id(), telemetry::Phase::Ack, trace_label(),
                   ack.wire_size(), peer});
  }
  // Acks are fire-and-forget: a lost ack is repaired by the sender's
  // retransmission, which triggers a duplicate-driven re-ack here.
  inner_send(*rs.ack_conn, std::move(ack));
}

void ReliableModule::handle_data(Packet pkt) {
  const ContextId peer = pkt.rel_from;
  RecvState& rs = recv_state(peer);
  // Epoch handshake (docs §14).  Lock onto the sender's incarnation on
  // first contact; reject Data from an older incarnation outright (its
  // sequence numbers belong to a finished stream -- acking them would
  // corrupt the new window); a newer incarnation resets the stream at that
  // epoch's stable floor, discarding reorder buffers of the old life.
  const std::uint32_t inc = pkt.incarnation;
  if (rs.epoch == 0) {
    rs.epoch = inc;
    rs.next_expected = stable_floor_[{peer, inc}];
  } else if (inc < rs.epoch) {
    counters().rel_epoch_rejects += 1;
    if (ctx_->observing()) {
      ctx_->observe({now(), pkt.span, ctx_->id(), telemetry::Phase::DupDrop,
                     trace_label(), pkt.wire_size(), peer, 0, pkt.trace});
    }
    return;  // no ack: never credit a stale incarnation's window
  } else if (inc > rs.epoch) {
    rs.epoch = inc;
    rs.reorder.clear();
    rs.next_expected = stable_floor_[{peer, inc}];
  }
  process_ack_fields(peer, pkt);  // piggybacked ack state
  const std::uint64_t seq = pkt.rel_seq;
  if (seq < rs.next_expected || rs.reorder.count(seq) != 0) {
    // Duplicate (a retransmission raced the ack): suppress and immediately
    // re-ack so the sender resynchronizes without waiting out another RTO.
    counters().rel_dup_drops += 1;
    if (ctx_->observing()) {
      ctx_->observe({now(), pkt.span, ctx_->id(), telemetry::Phase::DupDrop,
                     trace_label(), pkt.wire_size(), peer, 0, pkt.trace});
    }
    flush_ack(peer, rs);
    return;
  }
  if (seq == rs.next_expected) {
    strip_rel_header(pkt);
    ready_.push_back(std::move(pkt));
    ++rs.next_expected;
    ++rs.acks_owed;
    // Drain the reordering buffer while it continues the run.
    auto it = rs.reorder.begin();
    while (it != rs.reorder.end() && it->first == rs.next_expected) {
      Packet buffered = std::move(it->second);
      strip_rel_header(buffered);
      ready_.push_back(std::move(buffered));
      ++rs.next_expected;
      ++rs.acks_owed;
      it = rs.reorder.erase(it);
    }
    // WAL commit point: the floor advances the instant frames land in
    // ready_, strictly before any ack can mention them.  A crash after the
    // ack therefore never loses a frame the sender has already freed.
    stable_floor_[{peer, rs.epoch}] = rs.next_expected;
    if (rs.acks_owed >= ack_every_) {
      flush_ack(peer, rs);
    } else if (rs.ack_deadline == 0) {
      rs.ack_deadline = now() + ack_delay_;
    }
    return;
  }
  // Gap: buffer out-of-order data (bounded by the window; anything beyond
  // is dropped and repaired by retransmission) and ack immediately so the
  // selective bits tell the sender exactly what is missing.
  if (rs.reorder.size() < window_) rs.reorder.emplace(seq, std::move(pkt));
  flush_ack(peer, rs);
}

std::optional<Packet> ReliableModule::inbox_pop() {
  if (sim_inbox_ != nullptr) return sim_inbox_->poll(now());
  if (rt_inbox_ != nullptr) return rt_inbox_->try_pop();
  return std::nullopt;
}

void ReliableModule::drain_inbox() {
  while (auto pkt = inbox_pop()) {
    // Inner-layer receive accounting: the frame crossed the inner wire.
    util::MethodCounters& ic = inner_->counters();
    ic.recvs += 1;
    ic.bytes_received += pkt->wire_size();
    if (pkt->corrupted) {
      // An integrity failure means no header field can be trusted; treat
      // the whole frame as loss and let retransmission repair it.
      counters().recv_corrupt += 1;
      continue;
    }
    switch (pkt->rel_kind) {
      case RelKind::Ack:
        counters().rel_acks_received += 1;
        process_ack_fields(pkt->rel_from, *pkt);
        break;
      case RelKind::Data:
        handle_data(std::move(*pkt));
        break;
      case RelKind::None:
        // Only rel frames are addressed to this inbox, but deliver rather
        // than drop if one ever appears.
        ready_.push_back(std::move(*pkt));
        break;
    }
  }
}

void ReliableModule::service_timers() {
  const Time t = now();
  for (auto& [peer, st] : send_states_) {
    // The watermark makes the fault-free fast path O(1): no live entry can
    // be due before it, so the window scan is skipped until the clock gets
    // there (micro_reliable measures this as the per-send wrapper tax).
    if (t < st.next_timer) continue;
    Time next = kNever;
    bool backed_off = false;
    for (std::uint64_t seq = st.base; seq < st.next_seq; ++seq) {
      SendEntry& e = slot(st, seq);
      if (!e.live || e.acked) continue;
      if (e.deadline > t) {
        if (e.deadline < next) next = e.deadline;
        continue;
      }
      if (!backed_off) {
        // One exponential backoff step per timeout event (not per entry),
        // capped; acked progress resets it via rtt_sample.
        st.rto = std::min(std::max<Time>(st.rto, rto_min_) * 2, rto_max_);
        backed_off = true;
      }
      if (e.retries >= max_retries_) {
        if (!st.dead) {
          st.dead = true;
          util::log_debug(
              name_, "context " + std::to_string(ctx_->id()) + " seq " +
                         std::to_string(seq) + " to context " +
                         std::to_string(peer) + " exceeded " +
                         std::to_string(max_retries_) +
                         " retries; escalating to failover");
          // First latch for this peer: preserve the flight rings before the
          // failover machinery churns them (no-op without NEXUS_FLIGHT_DIR).
          ctx_->dump_flight("rel-dead-latch");
        }
        // Keep probing at the capped cadence: accepted packets are never
        // abandoned, and a late ack clears the latch.
      }
      Packet copy = e.pkt;
      stamp_piggyback(peer, copy);  // refresh the piggybacked ack fields
      counters().rel_retransmits += 1;
      if (ctx_->observing()) {
        // A retransmit re-sends the SAME span under the same trace: the
        // receiver dedups by sequence number, so re-using the span keeps
        // the stitched trace free of duplicate dispatch spans.
        ctx_->observe({t, copy.span, ctx_->id(), telemetry::Phase::Retransmit,
                       trace_label(), copy.wire_size(), peer, 0, copy.trace});
      }
      const SendResult r = inner_send(*st.conn, std::move(copy));
      if (r.status == DeliveryStatus::Dead) st.dead = true;
      e.retries += 1;
      e.deadline = t + st.rto;
      if (e.deadline < next) next = e.deadline;
    }
    st.next_timer = next;
  }
  for (auto& [peer, rs] : recv_states_) {
    if (rs.ack_deadline != 0 && rs.ack_deadline <= t) flush_ack(peer, rs);
  }
}

SendResult ReliableModule::send(CommObject& conn, Packet packet) {
  RelConn& rc = static_cast<RelConn&>(conn);
  const ContextId peer = rc.peer();
  auto it = send_states_.find(peer);
  SendState& st = it != send_states_.end()
                      ? it->second
                      : send_state(peer, unwrap(rc.descriptor()));

  packet.rel_kind = RelKind::Data;  // header bytes count from here on
  const std::uint64_t wire = packet.wire_size();

  // Collect acks (and run retransmission/ack timers) before deciding on
  // window space -- reverse traffic may have freed credits already.
  drain_inbox();
  service_timers();

  if (st.dead) {
    // Escalated after max_retries: refuse new work with a Dead verdict so
    // the health tracker quarantines this method and fails over, while the
    // existing window keeps probing in service_timers().
    return {DeliveryStatus::Dead, wire};
  }

  if (window_full(st)) {
    if (policy_ == RelBackpressure::Shed) {
      // Credit-based shedding: surface a Transient verdict; the caller
      // (failover loop or application) owns the retry.
      return {DeliveryStatus::Transient, wire};
    }
    // Block: poll until an ack frees a credit (or the peer is declared
    // dead).  earliest_arrival() exposes the retransmit deadlines, so the
    // simulated engine can fast-forward instead of spinning.
    ctx_->wait([&] { return !window_full(st) || st.dead; });
    if (st.dead) return {DeliveryStatus::Dead, wire};
  }

  const std::uint64_t seq = st.next_seq++;
  SendEntry& e = slot(st, seq);
  packet.rel_from = ctx_->id();
  packet.rel_seq = seq;
  stamp_piggyback(peer, packet);
  e.pkt = packet;  // retained copy: SharedBytes refcount bump, no byte copy
  e.first_sent = now();
  e.deadline = now() + st.rto;
  e.retries = 0;
  e.acked = false;
  e.live = true;
  if (e.deadline < st.next_timer) st.next_timer = e.deadline;

  const SendResult r = inner_send(*st.conn, std::move(packet));
  if (r.status == DeliveryStatus::Dead) {
    // The inner transport rejected the initial transmit outright (MTU
    // overflow, blackholed link).  Roll the sequence back so no gap forms
    // and report Dead: recovery belongs to the failover layer.
    e.live = false;
    e.pkt = Packet{};
    --st.next_seq;
    return {DeliveryStatus::Dead, r.wire};
  }
  // Ok or Transient: the packet sits in the window and retransmission
  // repairs any loss -- the wrapper has accepted responsibility.
  if (ctx_->runtime().telemetry().metrics().enabled() && metrics() != nullptr) {
    metrics()->window_occupancy.add(st.next_seq - st.base);
  }
  return {DeliveryStatus::Ok, wire};
}

std::optional<Packet> ReliableModule::poll() {
  if (ready_.empty()) {
    drain_inbox();
    service_timers();
  }
  if (ready_.empty()) return std::nullopt;
  Packet pkt = std::move(ready_.front());
  ready_.pop_front();
  return pkt;
}

std::optional<Time> ReliableModule::earliest_arrival() const {
  // Realtime fabric: timers are revisited by the engine's idle timeout.
  if (sim_inbox_ == nullptr) return std::nullopt;
  std::optional<Time> t;
  const auto consider = [&t](Time v) {
    if (!t || v < *t) t = v;
  };
  if (!ready_.empty()) consider(now());
  if (auto a = sim_inbox_->earliest()) consider(*a);
  for (const auto& [peer, st] : send_states_) {
    // next_timer is a lower bound on the true earliest deadline, which is
    // the safe direction here: waking early is a no-op poll, waking late
    // could stall a retransmission behind the fast-forward.
    if (st.base != st.next_seq && st.next_timer != kNever) {
      consider(st.next_timer);
    }
  }
  for (const auto& [peer, rs] : recv_states_) {
    if (rs.ack_deadline != 0) consider(rs.ack_deadline);
  }
  return t;
}

void register_reliable_wrapper(ModuleRegistry& registry, std::string inner) {
  registry.register_factory(
      "rel+" + inner,
      [inner](Context& ctx) -> std::unique_ptr<CommModule> {
        return std::make_unique<ReliableModule>(
            ctx, ctx.runtime().module_registry().create(inner, ctx));
      });
}

}  // namespace nexus::proto
