// Reliability wrapper method: rel+<method> (paper §2.2/§5 -- "protocols
// and quality-of-service guarantees are just more methods").
//
// A ReliableModule layers exactly-once, in-order delivery over any
// unreliable CommModule (udp today; the registration helper is generic) and
// registers as a first-class method: it publishes its own descriptor
// (wrapping the inner one), passes the selector's reliable() gate, and
// ranks at the inner transport's speed -- so automatic selection picks
// rel+udp *ahead of* tcp wherever the cost model says datagrams are faster.
//
// Protocol (docs/ARCHITECTURE.md §10):
//   - per-(peer, direction) 64-bit sequence numbers on Data frames;
//   - a sliding send window (rel.window entries) retaining each un-acked
//     packet for retransmission;
//   - cumulative + selective acks piggybacked on reverse Data traffic,
//     with standalone Ack frames after rel.ack_every deliveries or a
//     rel.ack_delay_us idle timeout (and immediately on gaps/duplicates);
//   - RTT-estimated retransmission timeouts (Jacobson/Karels, Karn's rule)
//     with exponential backoff between rel.rto_min_us and rel.rto_max_us;
//   - retries past rel.max_retries latch the peer Dead: new sends return a
//     Dead verdict that drives the HealthTracker/failover machinery, while
//     the window keeps probing at the capped cadence so nothing already
//     accepted is ever abandoned (an ack clears the latch);
//   - receiver-side duplicate suppression and a bounded (rel.window)
//     reordering buffer;
//   - credit-based backpressure: a full window blocks the sender inside
//     the polling loop (rel.backpressure = block, default) or sheds with a
//     Transient verdict surfaced to the caller (rel.backpressure = shed).
//
// Wire format: Data/Ack frames ride the inner transport with the Packet's
// rel_* header fields (Packet::kRelHeaderBytes of modelled wire overhead);
// the receiving wrapper strips them before dispatch, so nothing downstream
// ever observes the protocol.
//
// Resource database keys (context-scopable): rel.window (32),
// rel.max_retries (12), rel.ack_every (8), rel.ack_delay_us (2000),
// rel.rto_initial_us (10000), rel.rto_min_us (2000), rel.rto_max_us
// (400000), rel.backpressure ("block" | "shed").
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nexus/context.hpp"
#include "nexus/fabric.hpp"
#include "nexus/module.hpp"
#include "nexus/runtime.hpp"

namespace nexus::proto {

/// Policy when the sliding send window is full.
enum class RelBackpressure : std::uint8_t {
  Block,  ///< poll inside send() until an ack frees a credit
  Shed,   ///< fail the send with a Transient verdict (caller owns recovery)
};

/// Thin connection object: protocol state lives in the module (keyed by
/// peer context), so failover eviction of cached connections never resets
/// sequence numbers or the in-flight window.
class RelConn final : public CommObject {
 public:
  RelConn(CommModule& m, CommDescriptor d, ContextId peer)
      : CommObject(m, std::move(d)), peer_(peer) {}
  ContextId peer() const noexcept { return peer_; }

 private:
  ContextId peer_;
};

class ReliableModule final : public CommModule {
 public:
  /// Wrap `inner` (an unreliable transport owned by this wrapper).  The
  /// method name becomes "rel+<inner name>".
  ReliableModule(Context& ctx, std::unique_ptr<CommModule> inner);

  std::string_view name() const override { return name_; }
  void initialize(Context& ctx) override;
  CommDescriptor local_descriptor() const override;
  bool applicable(const CommDescriptor& remote) const override;
  std::unique_ptr<CommObject> connect(const CommDescriptor& remote) override;
  SendResult send(CommObject& conn, Packet packet) override;
  std::optional<Packet> poll() override;
  Time poll_cost() const override { return inner_->poll_cost(); }
  std::optional<Time> earliest_arrival() const override;
  int speed_rank() const override { return inner_->speed_rank(); }
  bool reliable() const override { return true; }
  std::optional<std::string> wraps() const override { return inner_name_; }
  /// Crash/restart (docs §14): the in-flight window and per-peer stream
  /// state die with the process; the stable floors (the write-ahead-logged
  /// "acked only after commit" record) and the committed ready_ queue
  /// survive, which is what extends exactly-once across reincarnations.
  void on_crash_restart() override {
    send_states_.clear();
    recv_states_.clear();
    inner_->on_crash_restart();
  }

  // --- enquiry / test accessors ---
  CommModule& inner() noexcept { return *inner_; }
  std::uint64_t window_capacity() const noexcept { return window_; }
  RelBackpressure backpressure() const noexcept { return policy_; }
  /// Un-acked sequence count currently in flight toward `peer`.
  std::uint64_t in_flight(ContextId peer) const;
  /// Free window credits toward `peer` (chunk-pull hook: the RPC bulk
  /// plane clamps its outstanding pulls to this so it never drives the
  /// reliable window into backpressure).
  std::uint64_t free_credits(ContextId peer) const {
    const std::uint64_t used = in_flight(peer);
    return window_ > used ? window_ - used : 0;
  }

 private:
  static constexpr Time kNever = std::numeric_limits<Time>::max();

  /// One retained window entry (slot = seq % rel.window).
  struct SendEntry {
    Packet pkt;            ///< retained for retransmission (aliases payload)
    Time first_sent = 0;   ///< for Karn-filtered RTT samples
    Time deadline = 0;     ///< next retransmission time
    int retries = 0;
    bool acked = false;    ///< sacked out of order; slot frees when base passes
    bool live = false;
  };
  /// Sender-side protocol state toward one peer.
  struct SendState {
    std::unique_ptr<CommObject> conn;  ///< inner connection (wrapper-owned)
    std::vector<SendEntry> ring;       ///< fixed capacity: rel.window
    std::uint64_t base = 0;            ///< lowest un-acked sequence
    std::uint64_t next_seq = 0;
    double srtt_ns = 0.0;
    double rttvar_ns = 0.0;
    Time rto = 0;
    /// Lower bound on the earliest retransmission deadline of any live
    /// entry; timer passes skip the window scan until the clock reaches
    /// it.  Acks can leave it stale-low (the next scan re-tightens), which
    /// is safe for both service_timers() and earliest_arrival().
    Time next_timer = kNever;
    bool have_rtt = false;
    /// Max-retries escalation latch: new sends fail Dead (feeding
    /// failover) until any ack proves the peer reachable again.
    bool dead = false;
    /// Latest incarnation of the *receiver* observed on frames from it
    /// (0 = none yet).  Selective acks only prove a frame reached the
    /// reorder buffer of the life that sent them; when this bumps, every
    /// sacked-but-not-cumulatively-acked entry is un-sacked so it is
    /// retransmitted into the new life (docs §14).
    std::uint32_t peer_inc = 0;
  };
  /// Receiver-side protocol state from one peer.
  struct RecvState {
    std::uint64_t next_expected = 0;
    std::map<std::uint64_t, Packet> reorder;  ///< seq > next_expected only
    std::unique_ptr<CommObject> ack_conn;     ///< for standalone Ack frames
    std::uint64_t acks_owed = 0;
    Time ack_deadline = 0;  ///< 0 = delayed-ack timer not armed
    /// Sender incarnation this stream is locked onto (0 = not yet locked).
    /// Data stamped with an older epoch is rejected (rel_epoch_rejects);
    /// a newer epoch resets the stream at that epoch's stable floor.
    std::uint32_t epoch = 0;
  };

  CommDescriptor unwrap(const CommDescriptor& remote) const;
  SendState& send_state(ContextId peer, const CommDescriptor& inner_desc);
  RecvState& recv_state(ContextId peer);
  /// Point an inner connection's cached route at the *wrapper's* inbox on
  /// the landing host, so rel frames never mix with plain inner traffic.
  void point_at_rel_inbox(CommObject& conn) const;
  SendEntry& slot(SendState& st, std::uint64_t seq) {
    return st.ring[static_cast<std::size_t>(seq % window_)];
  }
  bool window_full(const SendState& st) const noexcept {
    return st.next_seq - st.base >= window_;
  }
  std::uint64_t sack_bits(const RecvState& rs) const;
  /// Fill rel_ack/rel_sack from the receive state toward `peer` (piggyback)
  /// and clear the delayed-ack debt it settles.
  void stamp_piggyback(ContextId peer, Packet& pkt);
  /// Apply the cumulative + selective ack fields of a frame from `peer`.
  void process_ack_fields(ContextId peer, const Packet& pkt);
  void rtt_sample(SendState& st, Time sample);
  /// Sequence/duplicate/reordering handling for one incoming Data frame.
  void handle_data(Packet pkt);
  /// Retransmit timed-out window entries and flush expired delayed acks.
  void service_timers();
  /// Emit a standalone Ack frame toward `peer` (builds the ack connection
  /// lazily from the peer's default table).
  void flush_ack(ContextId peer, RecvState& rs);
  /// Drain the wrapper inbox completely: acks are consumed, in-order data
  /// lands in ready_.
  void drain_inbox();
  std::optional<Packet> inbox_pop();
  /// inner_->send plus inner-layer counter upkeep (the wrapper drives the
  /// inner module directly, bypassing the context send path that normally
  /// does this accounting).
  SendResult inner_send(CommObject& conn, Packet pkt);
  Time now() const { return ctx_->now(); }

  Context* ctx_;
  std::string name_;
  std::string inner_name_;
  std::unique_ptr<CommModule> inner_;

  /// Protocol state keyed by peer context id; deliberately *not* stored on
  /// connection objects (Context::evict_connection destroys those on
  /// failover, and exactly-once needs the window to survive that).
  std::map<ContextId, SendState> send_states_;
  std::map<ContextId, RecvState> recv_states_;
  /// Write-ahead-logged delivery floor per (peer, sender incarnation):
  /// the next sequence this context has NOT yet committed from that
  /// stream.  Advanced at the instant a frame is committed into ready_
  /// (before any ack can mention it), and deliberately NOT cleared by
  /// on_crash_restart -- it is the stable-storage record that lets a
  /// reincarnated receiver dup-drop retransmissions of frames it already
  /// delivered in its previous life.
  std::map<std::pair<ContextId, std::uint32_t>, std::uint64_t> stable_floor_;
  /// In-order Data packets (rel header already stripped) awaiting dispatch.
  std::deque<Packet> ready_;

  // The wrapper's own inbox on this context's host (exactly one is set,
  // by fabric kind).
  simnet::Mailbox<Packet>* sim_inbox_ = nullptr;
  util::MpscQueue<Packet>* rt_inbox_ = nullptr;

  std::uint64_t window_ = 32;
  int max_retries_ = 12;
  std::uint64_t ack_every_ = 8;
  Time ack_delay_ = 0;
  Time rto_initial_ = 0;
  Time rto_min_ = 0;
  Time rto_max_ = 0;
  RelBackpressure policy_ = RelBackpressure::Block;
};

/// Register the "rel+<inner>" factory wrapping the registered transport
/// `inner` (created through the runtime's module registry, so overrides of
/// the inner factory are honoured).
void register_reliable_wrapper(ModuleRegistry& registry, std::string inner);

}  // namespace nexus::proto
