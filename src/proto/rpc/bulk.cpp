#include "proto/rpc/bulk.hpp"

#include <algorithm>
#include <cstring>

#include "nexus/runtime.hpp"
#include "proto/reliable.hpp"
#include "proto/rpc/rpc.hpp"

namespace nexus::proto::rpc {

namespace {

telemetry::ContextMetrics& cmetrics(Context& ctx) {
  return ctx.runtime().telemetry().metrics().context(ctx.id());
}

Startpoint& route_to(Context& ctx, std::map<ContextId, Startpoint>& routes,
                     ContextId peer) {
  auto it = routes.find(peer);
  if (it == routes.end()) {
    it = routes.emplace(peer, ctx.world_startpoint(peer)).first;
  }
  return it->second;
}

}  // namespace

// --- BulkProvider ---

BulkHandle BulkProvider::register_region(util::SharedBytes data) {
  // Ids are context-unique (folded like span ids) so a descriptor observed
  // by the wrong provider can never alias someone else's region.
  const std::uint64_t id =
      (static_cast<std::uint64_t>(ctx_.id()) + 1) << 40 | ++next_id_;
  const std::uint64_t size = data.size();
  regions_.emplace(id, std::move(data));
  return BulkHandle{id, size};
}

void BulkProvider::serve_pull(util::UnpackBuffer& ub) {
  const ContextId puller = ub.get_u32();
  const std::uint64_t bulk_id = ub.get_u64();
  const std::uint64_t key = ub.get_u64();
  const std::uint64_t offset = ub.get_u64();
  const std::uint32_t len = ub.get_u32();
  const Packet* pkt = ctx_.inbound_packet();
  const std::uint64_t trace = pkt != nullptr ? pkt->trace : 0;

  Startpoint& sp = route_to(ctx_, routes_, puller);
  auto it = regions_.find(bulk_id);
  const bool unknown = it == regions_.end();
  if (unknown || offset + len > it->second.size()) {
    // Typed protocol error frame instead of faulting: the puller aborts the
    // transfer with a BulkError verdict it can act on.
    ++cmetrics(ctx_).rpc_bulk_errors;
    util::PackBuffer pb(32);
    pb.put_u64(key);
    pb.put_u8(static_cast<std::uint8_t>(unknown ? BulkErr::UnknownHandle
                                                : BulkErr::OutOfRange));
    pb.put_string(unknown ? "bulk handle not registered (or released)"
                          : "pull window exceeds registered region");
    try {
      ctx_.rsr_traced(sp, Context::resolve_handler(kBulkErrHandler), pb,
                      trace);
    } catch (const util::MethodError&) {
      // Best effort: the puller's own deadline bounds the transfer.
    }
    return;
  }
  util::PackBuffer pb(24 + len);
  pb.put_u64(key);
  pb.put_u64(offset);
  pb.put_bytes(it->second.view(offset, len).span());
  try {
    ctx_.rsr_traced(sp, Context::resolve_handler(kBulkChunkHandler), pb,
                    trace);
  } catch (const util::MethodError&) {
    // Dropped chunk: the puller's retry cadence re-requests it.
  }
}

// --- BulkPuller ---

BulkPuller::BulkPuller(Context& ctx, Done done)
    : ctx_(ctx), done_(std::move(done)) {
  const util::ResourceDb& db = ctx_.config();
  chunk_bytes_ = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, db.get_scoped_int(ctx_.id(), "rpc.bulk_chunk",
                                                  8192)));
  window_ = static_cast<std::uint64_t>(std::max<std::int64_t>(
      1, db.get_scoped_int(ctx_.id(), "rpc.bulk_window", 4)));
}

std::uint64_t BulkPuller::credit_clamp(ContextId owner) const {
  // When the route toward the owner rides a reliability wrapper, never ask
  // for more chunks than the rel window has free credits: the bulk plane
  // must not drive the reliable layer into its own backpressure.
  for (const std::string& name : ctx_.methods()) {
    if (name.rfind("rel+", 0) != 0) continue;
    if (const auto* rel =
            dynamic_cast<const ReliableModule*>(ctx_.module(name))) {
      return rel->free_credits(owner);
    }
  }
  return window_;
}

void BulkPuller::start(std::uint64_t key, ContextId owner, BulkHandle handle,
                       Time deadline, std::uint64_t trace) {
  Pull p;
  p.owner = owner;
  p.bulk_id = handle.id;
  p.total = handle.size;
  p.deadline = deadline;
  p.started_at = ctx_.now();
  p.trace = trace;
  p.last_progress = ctx_.now();
  if (p.total > 0) {
    // The one receive-side allocation of the whole transfer: every chunk
    // memcpys into this buffer, and completion adopts it as a SharedBytes
    // without copying.
    p.buffer.resize(static_cast<std::size_t>(p.total));
    ++reassembly_allocs_;
  }
  pulls_.emplace(key, std::move(p));
  if (handle.size == 0) {
    finish(key, true, "");
    return;
  }
  pump(key);
}

void BulkPuller::pump(std::uint64_t key) {
  // rsr_traced() polls, which can deliver chunk/error frames reentrantly
  // and mutate pulls_ -- re-find the entry on every iteration and never
  // hold a reference across a send.
  while (true) {
    auto it = pulls_.find(key);
    if (it == pulls_.end()) return;
    Pull& p = it->second;
    const std::uint64_t budget =
        std::max<std::uint64_t>(1, std::min(window_, credit_clamp(p.owner)));
    if (p.inflight.size() >= budget || p.next_offset >= p.total) return;
    const std::uint64_t offset = p.next_offset;
    const std::uint32_t len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(chunk_bytes_, p.total - offset));
    const ContextId owner = p.owner;
    const std::uint64_t bulk_id = p.bulk_id;
    const std::uint64_t trace = p.trace;
      p.inflight.emplace(offset, len);
    p.next_offset = offset + len;
    if (!request_chunk(owner, bulk_id, key, offset, len, trace)) {
      finish(key, false, "bulk pull: no route to data owner");
      return;
    }
  }
}

bool BulkPuller::request_chunk(ContextId owner, std::uint64_t bulk_id,
                               std::uint64_t key, std::uint64_t offset,
                               std::uint32_t len, std::uint64_t trace) {
  util::PackBuffer pb(40);
  pb.put_u32(ctx_.id());
  pb.put_u64(bulk_id);
  pb.put_u64(key);
  pb.put_u64(offset);
  pb.put_u32(len);
  try {
    const DeliveryStatus st = ctx_.rsr_traced(
        sp_to(owner), Context::resolve_handler(kBulkPullHandler), pb, trace);
    if (st == DeliveryStatus::Dead) return false;
  } catch (const util::MethodError&) {
    return false;
  }
  if (ctx_.observing()) {
    ctx_.observe({ctx_.now(), 0, ctx_.id(), telemetry::Phase::RpcPull, 0, len,
                  offset, 0, trace});
  }
  return true;
}

Startpoint& BulkPuller::sp_to(ContextId owner) {
  return route_to(ctx_, routes_, owner);
}

void BulkPuller::on_chunk(util::UnpackBuffer& ub) {
  const std::uint64_t key = ub.get_u64();
  const std::uint64_t offset = ub.get_u64();
  const util::ByteSpan data = ub.get_bytes_view();
  auto it = pulls_.find(key);
  if (it == pulls_.end()) return;  // transfer already finished/aborted
  Pull& p = it->second;
  auto fl = p.inflight.find(offset);
  if (fl == p.inflight.end() || fl->second != data.size()) {
    return;  // duplicate (retry raced the original) -- already counted
  }
  std::memcpy(p.buffer.data() + offset, data.data(), data.size());
  p.received += data.size();
  p.inflight.erase(fl);
  p.last_progress = ctx_.now();
  p.retry_lag = kRetryLagInitial;  // real progress resets the backoff
  ++cmetrics(ctx_).rpc_bulk_pull_chunks;
  if (ctx_.observing()) {
    ctx_.observe({ctx_.now(), 0, ctx_.id(), telemetry::Phase::RpcChunk, 0,
                  data.size(), offset, 0, p.trace});
  }
  if (p.received >= p.total) {
    finish(key, true, "");
    return;
  }
  pump(key);
}

void BulkPuller::on_error(util::UnpackBuffer& ub) {
  const std::uint64_t key = ub.get_u64();
  const std::uint8_t reason = ub.get_u8();
  const std::string detail = ub.get_string();
  if (pulls_.find(key) == pulls_.end()) return;
  ++cmetrics(ctx_).rpc_bulk_errors;
  finish(key, false,
         "bulk pull rejected (" +
             std::string(reason == static_cast<std::uint8_t>(
                                       BulkErr::UnknownHandle)
                             ? "unknown handle"
                             : "out of range") +
             "): " + detail);
}

void BulkPuller::service() {
  // Collect keys first: finish()/pump() mutate the map.
  std::vector<std::uint64_t> keys;
  keys.reserve(pulls_.size());
  for (const auto& [key, p] : pulls_) keys.push_back(key);
  for (const std::uint64_t key : keys) {
    auto it = pulls_.find(key);
    if (it == pulls_.end()) continue;
    Pull& p = it->second;
    if (p.deadline != 0 && ctx_.now() >= p.deadline) {
      finish(key, false, "bulk pull deadline exceeded");
      continue;
    }
    if (ctx_.is_peer_dead(p.owner)) {
      finish(key, false, "bulk pull: data owner died");
      continue;
    }
    // Re-request chunks whose reply has been silent past the retry lag
    // (the pull or its chunk rode an unreliable hop and was dropped).  The
    // lag doubles per barren round so a merely-slow window is never
    // re-duplicated into receiver-queue congestion (see kRetryLagInitial).
    if (!p.inflight.empty() &&
        ctx_.now() - p.last_progress >= p.retry_lag) {
      p.last_progress = ctx_.now();
      p.retry_lag = std::min<Time>(p.retry_lag * 2, kRetryLagMax);
      const auto inflight = p.inflight;  // frames may arrive reentrantly
      for (const auto& [offset, len] : inflight) {
        auto again = pulls_.find(key);
        if (again == pulls_.end()) break;
        if (again->second.inflight.find(offset) ==
            again->second.inflight.end()) {
          continue;  // answered while we were resending others
        }
        if (!request_chunk(again->second.owner, again->second.bulk_id, key,
                           offset, len, again->second.trace)) {
          finish(key, false, "bulk pull: no route to data owner");
          break;
        }
      }
    }
    pump(key);
  }
}

void BulkPuller::finish(std::uint64_t key, bool ok, std::string err) {
  auto it = pulls_.find(key);
  if (it == pulls_.end()) return;
  Pull p = std::move(it->second);
  pulls_.erase(it);  // erase before the callback: it may start a new pull
  util::SharedBytes data;
  if (ok) {
    if (ctx_.runtime().telemetry().metrics().enabled()) {
      const Time elapsed = ctx_.now() - p.started_at;
      if (elapsed > 0 && p.total > 0) {
        const double mb_s = static_cast<double>(p.total) * 1e9 /
                            (static_cast<double>(elapsed) * 1024.0 * 1024.0);
        cmetrics(ctx_).rpc_bulk_mb_s.add(
            static_cast<std::uint64_t>(mb_s));
      }
    }
    data = util::SharedBytes(std::move(p.buffer));  // adopt, no copy
  }
  done_(key, std::move(data), ok, std::move(err));
}

}  // namespace nexus::proto::rpc
