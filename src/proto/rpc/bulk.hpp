// Bulk-data plane of the RPC subsystem (docs/ARCHITECTURE.md §15.3).
//
// Mercury's insight (PAPERS.md, Soumagne et al.): RPC metadata travels
// eagerly in the request, while large payloads are exposed as *handles*
// and pulled by the target in flow-controlled chunks.  Two halves:
//
//   * BulkProvider (caller side): interns SharedBytes regions under small
//     ids and serves "rpc.bulk.pull" requests by answering each with one
//     "rpc.bulk.chunk" frame aliasing the registered buffer (zero-copy on
//     the provider side).  Pulls naming an unregistered/expired handle or
//     an out-of-range window are answered with a typed "rpc.bulk.err"
//     protocol frame instead of faulting.
//
//   * BulkPuller (target side): given a descriptor {id, size} from request
//     metadata, pulls the region in rpc.bulk_chunk-sized pieces with at
//     most rpc.bulk_window outstanding (additionally clamped to the
//     reliable layer's free window credits when the route rides rel+udp),
//     reassembling into ONE preallocated buffer -- exactly one receive-side
//     allocation per transfer -- handed off as a zero-copy SharedBytes.
//
// Every pull/chunk/error frame rides rsr_traced() with the owning call's
// trace id, so a stitched trace shows request -> pulls -> reply end to end.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "nexus/context.hpp"
#include "util/shared_bytes.hpp"

namespace nexus::proto::rpc {

/// Descriptor for a registered bulk region; travels in request metadata.
struct BulkHandle {
  std::uint64_t id = 0;  ///< 0 = invalid / no bulk
  std::uint64_t size = 0;
  bool valid() const noexcept { return id != 0; }
};

/// Reason codes carried by "rpc.bulk.err" frames.
enum class BulkErr : std::uint8_t {
  UnknownHandle = 1,  ///< pull names an unregistered or released handle
  OutOfRange = 2,     ///< pull window exceeds the registered region
};

/// Caller-side half: registered regions + the pull server.
class BulkProvider {
 public:
  explicit BulkProvider(Context& ctx) : ctx_(ctx) {}

  BulkHandle register_region(util::SharedBytes data);
  /// Drop a registration; later pulls against it get a typed error frame.
  void release(BulkHandle h) { regions_.erase(h.id); }
  std::size_t registered() const noexcept { return regions_.size(); }

  /// Serve one "rpc.bulk.pull" frame (wired up by rpc::Client).
  void serve_pull(util::UnpackBuffer& ub);
  /// Drop every registration (crash/restart of the owning context).
  void clear() { regions_.clear(); }

 private:
  Context& ctx_;
  std::uint64_t next_id_ = 0;
  std::map<std::uint64_t, util::SharedBytes> regions_;
  std::map<ContextId, Startpoint> routes_;
};

/// Target-side half: the flow-controlled chunk puller.
class BulkPuller {
 public:
  /// Completion callback: (key, data, ok, error).  `data` is the single
  /// reassembled zero-copy buffer when ok.
  using Done =
      std::function<void(std::uint64_t, util::SharedBytes, bool, std::string)>;

  BulkPuller(Context& ctx, Done done);

  /// Begin pulling `handle` from `owner`; progress/completion is reported
  /// through the Done callback under `key`.  `deadline` (absolute, 0 =
  /// none) bounds the transfer; `trace` stitches the frames into the
  /// owning call's trace.
  void start(std::uint64_t key, ContextId owner, BulkHandle handle,
             Time deadline, std::uint64_t trace);
  /// Handle one "rpc.bulk.chunk" frame.
  void on_chunk(util::UnpackBuffer& ub);
  /// Handle one "rpc.bulk.err" frame.
  void on_error(util::UnpackBuffer& ub);
  /// Re-pump stalled transfers and abort expired / dead-peer ones.
  void service();
  /// Abort everything (crash/restart of the owning context).
  void clear() { pulls_.clear(); }

  std::size_t active() const noexcept { return pulls_.size(); }
  /// Receive-side reassembly buffers allocated so far (exactly one per
  /// transfer; the zero-copy acceptance gate asserts on this).
  std::uint64_t reassembly_allocs() const noexcept {
    return reassembly_allocs_;
  }

 private:
  /// Chunk requests with no reply past the current lag are re-issued (the
  /// pull or its chunk rode an unreliable hop and was dropped).  The lag
  /// starts well above a tcp-class RTT and doubles on every barren retry:
  /// re-requesting a window that is merely slow duplicates every chunk on
  /// the destination's receive queue and tips the tcp incast model into
  /// its quadratic stall -- the retry cadence must back off faster than it
  /// can congest.
  static constexpr Time kRetryLagInitial = 10'000'000;  // 10 ms
  static constexpr Time kRetryLagMax = 160'000'000;     // 160 ms

  struct Pull {
    ContextId owner = kNoContext;
    std::uint64_t bulk_id = 0;
    std::uint64_t total = 0;
    std::uint64_t next_offset = 0;  ///< first byte not yet requested
    std::uint64_t received = 0;
    /// Outstanding chunk requests: offset -> length (window_-bounded).
    std::map<std::uint64_t, std::uint32_t> inflight;
    util::Bytes buffer;             ///< the one receive-side allocation
    Time deadline = 0;
    Time started_at = 0;
    Time last_progress = 0;
    Time retry_lag = kRetryLagInitial;  ///< doubles per barren retry
    std::uint64_t trace = 0;
  };

  /// Issue chunk requests up to the window (and the reliable layer's free
  /// credits toward the owner, when the route rides a rel+ wrapper).
  void pump(std::uint64_t key);
  bool request_chunk(ContextId owner, std::uint64_t bulk_id,
                     std::uint64_t key, std::uint64_t offset,
                     std::uint32_t len, std::uint64_t trace);
  Startpoint& sp_to(ContextId owner);
  void finish(std::uint64_t key, bool ok, std::string err);
  std::uint64_t credit_clamp(ContextId owner) const;

  Context& ctx_;
  Done done_;
  std::map<std::uint64_t, Pull> pulls_;
  std::map<ContextId, Startpoint> routes_;
  std::uint64_t chunk_bytes_;   ///< rpc.bulk_chunk
  std::uint64_t window_;        ///< rpc.bulk_window
  std::uint64_t reassembly_allocs_ = 0;
};

}  // namespace nexus::proto::rpc
