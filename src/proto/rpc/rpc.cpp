#include "proto/rpc/rpc.hpp"

#include <algorithm>
#include <utility>

#include "nexus/runtime.hpp"

namespace nexus::proto::rpc {

namespace {

constexpr Time kWaitTick = 50'000;  // 50 us of polling-interleaved compute

telemetry::ContextMetrics& cmetrics(Context& ctx) {
  return ctx.runtime().telemetry().metrics().context(ctx.id());
}

/// Wire -> enum with range clamp: a corrupt status byte degrades to a
/// typed HandlerError rather than UB on the enum.
CallStatus decode_status(std::uint8_t v) noexcept {
  if (v == 0 || v > static_cast<std::uint8_t>(CallStatus::BulkError)) {
    return CallStatus::HandlerError;
  }
  return static_cast<CallStatus>(v);
}

}  // namespace

const char* call_status_name(CallStatus s) noexcept {
  switch (s) {
    case CallStatus::Pending: return "pending";
    case CallStatus::Ok: return "ok";
    case CallStatus::DeadlineExceeded: return "deadline_exceeded";
    case CallStatus::Cancelled: return "cancelled";
    case CallStatus::PeerDied: return "peer_died";
    case CallStatus::Rejected: return "rejected";
    case CallStatus::HandlerError: return "handler_error";
    case CallStatus::BulkError: return "bulk_error";
  }
  return "?";
}

// --- Client ---

Client::Client(Context& ctx)
    : ctx_(ctx), bulk_(ctx), incarnation_(ctx.incarnation()) {
  default_deadline_ =
      static_cast<Time>(std::max<std::int64_t>(
          0, ctx_.config().get_scoped_int(ctx_.id(), "rpc.deadline_ms", 0))) *
      1'000'000;
  ctx_.register_handler(kRepHandler,
                        [this](Context&, Endpoint&, util::UnpackBuffer& ub) {
                          on_reply(ub);
                        });
  ctx_.register_handler(kBulkPullHandler,
                        [this](Context&, Endpoint&, util::UnpackBuffer& ub) {
                          bulk_.serve_pull(ub);
                        });
}

Startpoint& Client::route(ContextId server) {
  auto it = routes_.find(server);
  if (it == routes_.end()) {
    it = routes_.emplace(server, ctx_.world_startpoint(server)).first;
  }
  return it->second;
}

CallId Client::call(ContextId server, std::string_view service,
                    const util::PackBuffer& args, CallOptions opts) {
  return issue(server, service, args, BulkHandle{}, opts);
}

CallId Client::call_bulk(ContextId server, std::string_view service,
                         const util::PackBuffer& args, BulkHandle bulk,
                         CallOptions opts) {
  return issue(server, service, args, bulk, opts);
}

CallId Client::issue(ContextId server, std::string_view service,
                     const util::PackBuffer& args, BulkHandle bulk,
                     CallOptions opts) {
  this->service();  // expire/abort housekeeping rides every issue
  const CallId id =
      (static_cast<std::uint64_t>(ctx_.id()) + 1) << 40 | ++next_call_;
  const std::uint64_t trace = ctx_.observing() ? ctx_.next_trace() : 0;
  const Time budget = opts.timeout != 0 ? opts.timeout : default_deadline_;

  Call c;
  c.server = server;
  c.service = std::string(service);
  c.issued_at = ctx_.now();
  c.deadline = budget != 0 ? ctx_.now() + budget : 0;
  c.trace = trace;
  // Registered before the send: the reply can land during rsr's own poll
  // (loopback or a fast simulated path) and must find the pending entry.
  calls_.emplace(id, std::move(c));
  ++cmetrics(ctx_).rpc_calls;

  util::PackBuffer pb(64 + args.size());
  pb.put_u64(id);
  pb.put_u32(ctx_.id());
  pb.put_string(service);
  pb.put_u64(static_cast<std::uint64_t>(budget));
  pb.put_u8(bulk.valid() ? 1 : 0);
  if (bulk.valid()) {
    pb.put_u64(bulk.id);
    pb.put_u64(bulk.size);
  }
  pb.put_raw(args.bytes());  // last field: the server views it zero-copy

  Startpoint& sp = route(server);
  DeliveryStatus st;
  try {
    st = ctx_.rsr_traced(sp, Context::resolve_handler(kReqHandler), pb,
                         trace);
  } catch (const util::MethodError& e) {
    complete(id, CallStatus::PeerDied, {}, e.what());
    return id;
  }
  if (!sp.links().empty() && !sp.selected_method(0).empty()) {
    ctx_.note_rpc_method(server, sp.selected_method(0));
  }
  if (ctx_.observing()) {
    ctx_.observe({ctx_.now(), 0, ctx_.id(), telemetry::Phase::RpcCall, 0,
                  pb.size(), id, 0, trace});
  }
  if (st == DeliveryStatus::Dead) {
    // Unknown context or a dead verdict with no dead-letter budget: the
    // call can never be answered; fail it fast.
    complete(id, CallStatus::PeerDied, {},
             "request not deliverable (dead verdict)");
  }
  return id;
}

void Client::on_reply(util::UnpackBuffer& ub) {
  const Packet* pkt = ctx_.inbound_packet();
  const CallId id = ub.get_u64();
  const CallStatus status = decode_status(ub.get_u8());
  const std::string error = ub.get_string();
  util::SharedBytes payload;
  if (ub.remaining() > 0 && pkt != nullptr) {
    const std::size_t offset = pkt->payload.size() - ub.remaining();
    payload = pkt->payload.view(offset, ub.remaining());  // zero-copy
  }
  auto it = calls_.find(id);
  if (it == calls_.end() || it->second.status != CallStatus::Pending) {
    // Late (past-deadline / post-cancel) or duplicate reply: dropped and
    // counted, never delivered twice.
    ++cmetrics(ctx_).rpc_late_replies;
    return;
  }
  complete(id, status, std::move(payload), error);
}

bool Client::complete(CallId id, CallStatus status, util::SharedBytes payload,
                      std::string error) {
  auto it = calls_.find(id);
  if (it == calls_.end() || it->second.status != CallStatus::Pending ||
      status == CallStatus::Pending) {
    return false;
  }
  Call& c = it->second;
  c.status = status;
  c.reply = std::move(payload);
  c.error = std::move(error);
  telemetry::ContextMetrics& cm = cmetrics(ctx_);
  telemetry::Phase phase = telemetry::Phase::RpcReply;
  switch (status) {
    case CallStatus::Ok:
      if (ctx_.runtime().telemetry().metrics().enabled()) {
        cm.rpc_call_ns.add(
            static_cast<std::uint64_t>(ctx_.now() - c.issued_at));
      }
      break;
    case CallStatus::DeadlineExceeded:
      ++cm.rpc_deadline_exceeded;
      phase = telemetry::Phase::RpcExpire;
      break;
    case CallStatus::Cancelled:
      ++cm.rpc_cancelled;
      phase = telemetry::Phase::RpcCancel;
      break;
    case CallStatus::PeerDied:
      ++cm.rpc_peer_died;
      break;
    case CallStatus::Rejected:
      ++cm.rpc_rejected;
      phase = telemetry::Phase::RpcReject;
      break;
    case CallStatus::Pending:
    case CallStatus::HandlerError:
    case CallStatus::BulkError:
      break;
  }
  if (ctx_.observing()) {
    ctx_.observe({ctx_.now(), 0, ctx_.id(), phase, 0, c.reply.size(), id, 0,
                  c.trace});
  }
  return true;
}

void Client::service() {
  if (ctx_.incarnation() != incarnation_) {
    // Our own process reincarnated: in-flight calls died with the old life.
    incarnation_ = ctx_.incarnation();
    bulk_.clear();
    for (auto& [id, c] : calls_) {
      if (c.status == CallStatus::Pending) {
        complete(id, CallStatus::PeerDied, {},
                 "local context reincarnated mid-call");
      }
    }
  }
  for (auto& [id, c] : calls_) {
    if (c.status != CallStatus::Pending) continue;
    if (ctx_.is_peer_dead(c.server)) {
      complete(id, CallStatus::PeerDied, {}, "server declared dead");
      continue;
    }
    if (c.deadline != 0 && ctx_.now() >= c.deadline) {
      complete(id, CallStatus::DeadlineExceeded, {}, "deadline exceeded");
    }
  }
}

bool Client::done(CallId id) const {
  auto it = calls_.find(id);
  return it == calls_.end() || it->second.status != CallStatus::Pending;
}

CallResult Client::take(CallId id) {
  auto it = calls_.find(id);
  if (it == calls_.end()) {
    throw util::UsageError("rpc call id unknown (or already taken)");
  }
  if (it->second.status == CallStatus::Pending) {
    throw util::UsageError("rpc call still pending; use wait()");
  }
  CallResult res;
  res.status = it->second.status;
  res.payload = std::move(it->second.reply);
  res.error = std::move(it->second.error);
  calls_.erase(it);
  return res;
}

CallResult Client::wait(CallId id) {
  while (true) {
    service();
    auto it = calls_.find(id);
    if (it == calls_.end()) {
      throw util::UsageError("rpc wait on unknown (or taken) call id");
    }
    if (it->second.status != CallStatus::Pending) break;
    // Progress when there is traffic; otherwise advance (virtual) time so
    // deadlines fire during silence instead of deadlocking the scheduler.
    if (!ctx_.progress()) ctx_.compute_with_polling(kWaitTick, kWaitTick);
  }
  return take(id);
}

void Client::wait_all() {
  while (true) {
    service();
    bool any = false;
    for (const auto& [id, c] : calls_) {
      if (c.status == CallStatus::Pending) {
        any = true;
        break;
      }
    }
    if (!any) return;
    if (!ctx_.progress()) ctx_.compute_with_polling(kWaitTick, kWaitTick);
  }
}

void Client::cancel(CallId id) {
  auto it = calls_.find(id);
  if (it == calls_.end() || it->second.status != CallStatus::Pending) return;
  const ContextId server = it->second.server;
  const std::uint64_t trace = it->second.trace;
  complete(id, CallStatus::Cancelled, {}, "cancelled by caller");
  // Best-effort cancel frame: the server stops work it has not started and
  // lets running handlers observe CallContext::cancelled().  Loss is fine;
  // the eventual reply is dropped as late.
  util::PackBuffer pb(8);
  pb.put_u64(id);
  try {
    ctx_.rsr_traced(route(server), Context::resolve_handler(kCancelHandler),
                    pb, trace);
  } catch (const util::MethodError&) {
  }
}

std::size_t Client::outstanding() const {
  std::size_t n = 0;
  for (const auto& [id, c] : calls_) {
    if (c.status == CallStatus::Pending) ++n;
  }
  return n;
}

// --- CallContext ---

bool CallContext::cancelled() const {
  return srv_.is_cancelled(client_, call_id_) ||
         (deadline_ != 0 && ctx_.now() >= deadline_);
}

void CallContext::respond(const util::PackBuffer& payload) {
  respond(util::SharedBytes::copy_of(payload.bytes()));
}

void CallContext::respond(util::SharedBytes payload) {
  if (replied_) {
    throw util::UsageError("rpc handler responded twice");
  }
  replied_ = true;
  response_ = std::move(payload);
}

// --- Server ---

Server::Server(Context& ctx)
    : ctx_(ctx),
      puller_(ctx,
              [this](std::uint64_t key, util::SharedBytes data, bool ok,
                     std::string err) {
                on_pull_done(key, std::move(data), ok, std::move(err));
              }),
      incarnation_(ctx.incarnation()) {
  const util::ResourceDb& db = ctx_.config();
  max_inflight_ = static_cast<std::size_t>(std::max<std::int64_t>(
      1, db.get_scoped_int(ctx_.id(), "rpc.max_inflight", 8)));
  queue_cap_ = static_cast<std::size_t>(std::max<std::int64_t>(
      0, db.get_scoped_int(ctx_.id(), "rpc.queue_cap", 16)));
  // The reliable layer's backpressure vocabulary: "queue" (alias "block")
  // parks excess calls in the bounded pending queue; "shed" rejects the
  // moment the concurrency limit is hit.
  const std::string policy =
      db.get_scoped(ctx_.id(), "rpc.admission").value_or("queue");
  if (policy == "shed") {
    shed_ = true;
  } else if (policy != "queue" && policy != "block") {
    throw util::ConfigError("rpc.admission must be queue|block|shed, got '" +
                            policy + "'");
  }
  ctx_.register_handler(kReqHandler,
                        [this](Context&, Endpoint&, util::UnpackBuffer& ub) {
                          on_request(ub);
                        });
  ctx_.register_handler(kCancelHandler,
                        [this](Context&, Endpoint&, util::UnpackBuffer& ub) {
                          on_cancel(ub);
                        });
  ctx_.register_handler(kBulkChunkHandler,
                        [this](Context&, Endpoint&, util::UnpackBuffer& ub) {
                          puller_.on_chunk(ub);
                        });
  ctx_.register_handler(kBulkErrHandler,
                        [this](Context&, Endpoint&, util::UnpackBuffer& ub) {
                          puller_.on_error(ub);
                        });
}

void Server::serve(std::string_view service, HandlerFn fn) {
  auto [it, inserted] = services_.emplace(std::string(service), std::move(fn));
  if (!inserted) {
    throw util::UsageError("rpc service '" + std::string(service) +
                           "' registered twice");
  }
}

void Server::reincarnation_check() {
  if (ctx_.incarnation() == incarnation_) return;
  // Crash restart: the admission queue, running slots, and half-finished
  // pulls belonged to the previous life.  Clients resolve their calls via
  // peer-death detection or deadlines; we just must not leak slots.
  incarnation_ = ctx_.incarnation();
  queue_.clear();
  pulling_.clear();
  inflight_.clear();
  cancelled_.clear();
  puller_.clear();
}

void Server::on_request(util::UnpackBuffer& ub) {
  reincarnation_check();
  const Packet* pkt = ctx_.inbound_packet();
  Req r;
  r.call_id = ub.get_u64();
  r.client = ub.get_u32();
  r.service = ub.get_string();
  const std::uint64_t budget = ub.get_u64();
  const std::uint8_t flags = ub.get_u8();
  if ((flags & 1) != 0) {
    r.bulk.id = ub.get_u64();
    r.bulk.size = ub.get_u64();
  }
  if (pkt != nullptr && ub.remaining() > 0) {
    const std::size_t offset = pkt->payload.size() - ub.remaining();
    r.args = pkt->payload.view(offset, ub.remaining());  // zero-copy
  }
  r.deadline = budget != 0 ? ctx_.now() + static_cast<Time>(budget) : 0;
  r.trace = pkt != nullptr ? pkt->trace : 0;
  if (is_cancelled(r.client, r.call_id)) {
    // The cancel frame overtook its request (reordering across methods).
    cancelled_.erase({r.client, r.call_id});
    ++stats_.cancelled;
    return;
  }
  admit(std::move(r));
}

void Server::on_cancel(util::UnpackBuffer& ub) {
  const CallId id = ub.get_u64();
  const Packet* pkt = ctx_.inbound_packet();
  const ContextId client = pkt != nullptr ? pkt->src : kNoContext;
  if (ctx_.observing()) {
    ctx_.observe({ctx_.now(), 0, ctx_.id(), telemetry::Phase::RpcCancel, 0, 0,
                  id, 0, pkt != nullptr ? pkt->trace : 0});
  }
  // Bounded: entries are consumed when the matching call completes; cancels
  // for already-replied calls would otherwise pile up forever.
  if (cancelled_.size() >= 4096) cancelled_.clear();
  cancelled_.insert({client, id});
}

void Server::admit(Req r) {
  std::size_t& running = inflight_[r.service];
  if (running < max_inflight_) {
    ++running;
    ++stats_.accepted;
    begin(std::move(r));
    return;
  }
  if (!shed_ && queue_.size() < queue_cap_) {
    ++stats_.queued;
    queue_.push_back(std::move(r));
    return;
  }
  // Overload: typed Rejected reply instead of unbounded mailbox growth.
  ++stats_.rejected;
  ++cmetrics(ctx_).rpc_rejected;
  if (ctx_.observing()) {
    ctx_.observe({ctx_.now(), 0, ctx_.id(), telemetry::Phase::RpcReject, 0, 0,
                  r.call_id, 0, r.trace});
  }
  reply(r, CallStatus::Rejected,
        {}, shed_ ? "admission control shed the call (policy: shed)"
                  : "admission control shed the call (queue full)");
}

void Server::begin(Req r) {
  if (r.bulk.valid()) {
    ++stats_.bulk_transfers;
    const std::uint64_t key = ++next_pull_;
    const ContextId owner = r.client;
    const BulkHandle handle = r.bulk;
    const Time deadline = r.deadline;
    const std::uint64_t trace = r.trace;
    // Registered before start(): a zero-size transfer (or reentrant error
    // frame) completes synchronously through on_pull_done.
    pulling_.emplace(key, std::move(r));
    puller_.start(key, owner, handle, deadline, trace);
    return;
  }
  run_handler(std::move(r), {});
}

void Server::on_pull_done(std::uint64_t key, util::SharedBytes data, bool ok,
                          std::string err) {
  auto it = pulling_.find(key);
  if (it == pulling_.end()) return;
  Req r = std::move(it->second);
  pulling_.erase(it);
  if (!ok) {
    ++stats_.bulk_failures;
    reply(r, CallStatus::BulkError, {}, err);
    release_slot(r.service);
    return;
  }
  run_handler(std::move(r), std::move(data));
}

void Server::run_handler(Req r, util::SharedBytes bulk) {
  auto it = services_.find(r.service);
  if (it == services_.end()) {
    reply(r, CallStatus::HandlerError, {},
          "no such service: " + r.service);
    release_slot(r.service);
    return;
  }
  CallContext cc(ctx_, *this, r.client, r.call_id, r.service, r.args,
                 std::move(bulk), r.bulk.size, r.deadline);
  it->second(cc);
  ++stats_.completed;
  if (cc.replied()) {
    reply(r, CallStatus::Ok, cc.response_, "");
  } else if (is_cancelled(r.client, r.call_id)) {
    ++stats_.cancelled;
    reply(r, CallStatus::Cancelled, {}, "cancelled mid-handler");
  } else {
    reply(r, CallStatus::Ok, {}, "");  // void-returning handler
  }
  cancelled_.erase({r.client, r.call_id});
  release_slot(r.service);
}

void Server::release_slot(const std::string& service) {
  auto it = inflight_.find(service);
  if (it != inflight_.end() && it->second > 0) --it->second;
  pump_queue();
}

void Server::pump_queue() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto qit = queue_.begin(); qit != queue_.end(); ++qit) {
      if (qit->deadline != 0 && ctx_.now() >= qit->deadline) {
        // The client resolved this call locally already; a reply would
        // only count as late there.
        ++stats_.expired;
        queue_.erase(qit);
        progressed = true;
        break;
      }
      if (is_cancelled(qit->client, qit->call_id)) {
        ++stats_.cancelled;
        cancelled_.erase({qit->client, qit->call_id});
        queue_.erase(qit);
        progressed = true;
        break;
      }
      std::size_t& running = inflight_[qit->service];
      if (running < max_inflight_) {
        Req r = std::move(*qit);
        queue_.erase(qit);
        ++running;
        ++stats_.accepted;
        begin(std::move(r));
        progressed = true;
        break;
      }
    }
  }
}

void Server::service() {
  reincarnation_check();
  puller_.service();
  pump_queue();
}

void Server::reply(const Req& r, CallStatus status,
                   const util::SharedBytes& payload, std::string_view error) {
  util::PackBuffer pb(24 + payload.size());
  pb.put_u64(r.call_id);
  pb.put_u8(static_cast<std::uint8_t>(status));
  pb.put_string(error);
  pb.put_raw(payload.span());  // last field: the client views it zero-copy
  auto it = routes_.find(r.client);
  if (it == routes_.end()) {
    it = routes_.emplace(r.client, ctx_.world_startpoint(r.client)).first;
  }
  try {
    ctx_.rsr_traced(it->second, Context::resolve_handler(kRepHandler), pb,
                    r.trace);
  } catch (const util::MethodError&) {
    // Undeliverable reply: the client's deadline/peer-death detection
    // resolves the call; nothing to do here.
  }
  if (ctx_.observing()) {
    ctx_.observe({ctx_.now(), 0, ctx_.id(), telemetry::Phase::RpcReply, 0,
                  payload.size(), r.call_id, 0, r.trace});
  }
}

}  // namespace nexus::proto::rpc
