// Mercury-style RPC over the one-sided RSR (docs/ARCHITECTURE.md §15).
//
// The paper's RSR is fire-and-forget; this subsystem layers the service
// shape Soumagne et al. describe for extreme-scale RPC on top of it:
//
//   * request/response correlation -- Client::call() allocates a call id,
//     ships the request as an ordinary RSR (riding method selection,
//     failover, adaptation, and the crash/restart fault domain unchanged),
//     and completes when the reply RSR lands;
//   * per-call deadlines -- expired calls complete DeadlineExceeded and
//     late replies are dropped and counted (rpc_late_replies);
//   * cancellation -- Client::cancel() completes the call locally and
//     sends a best-effort cancel frame; server handlers poll
//     CallContext::cancelled();
//   * bulk data -- requests carry a BulkHandle descriptor; the server
//     *pulls* the region in flow-controlled chunks (see bulk.hpp) before
//     the handler runs, receiving it as one zero-copy SharedBytes;
//   * admission control -- per-service concurrency limits plus a bounded
//     pending queue; overload degrades to typed Rejected replies
//     (rpc.admission reuses the reliable layer's block/shed vocabulary:
//     "queue"/"block" park excess calls, "shed" rejects immediately).
//
// Exactly-once completion: every call reaches exactly one terminal status
// in {Ok, DeadlineExceeded, Cancelled, PeerDied, Rejected, HandlerError,
// BulkError} -- never zero (no hangs: deadlines, peer-death detection, and
// Dead send verdicts each bound a silent server) and never two (the state
// machine drops late/duplicate replies).
//
// Resource-database keys (context-scopable): rpc.deadline_ms (default
// deadline when CallOptions leaves it 0; 0 = none), rpc.max_inflight (8),
// rpc.queue_cap (16), rpc.admission ("queue" | "block" | "shed"),
// rpc.bulk_chunk (8192), rpc.bulk_window (4).
//
// One Client and/or one Server per context (they own the rpc.* handler
// registrations); construct them before the context starts serving and
// keep them alive for the run.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>

#include "nexus/context.hpp"
#include "proto/rpc/bulk.hpp"
#include "util/pack.hpp"
#include "util/shared_bytes.hpp"

namespace nexus::proto::rpc {

// Wire handler names (FNV-hashed like every RSR handler).
inline constexpr std::string_view kReqHandler = "rpc.req";
inline constexpr std::string_view kRepHandler = "rpc.rep";
inline constexpr std::string_view kCancelHandler = "rpc.cancel";
inline constexpr std::string_view kBulkPullHandler = "rpc.bulk.pull";
inline constexpr std::string_view kBulkChunkHandler = "rpc.bulk.chunk";
inline constexpr std::string_view kBulkErrHandler = "rpc.bulk.err";

using CallId = std::uint64_t;

enum class CallStatus : std::uint8_t {
  Pending = 0,
  Ok,                ///< reply received
  DeadlineExceeded,  ///< the per-call deadline passed first
  Cancelled,         ///< cancelled locally (best-effort frame to the server)
  PeerDied,          ///< server declared dead / send verdict Dead
  Rejected,          ///< server admission control shed the call
  HandlerError,      ///< server has no such service registered
  BulkError,         ///< the server could not pull the request's bulk region
};

const char* call_status_name(CallStatus s) noexcept;

struct CallOptions {
  /// Relative deadline in ns; 0 = use rpc.deadline_ms (whose 0 = none).
  Time timeout = 0;
};

struct CallResult {
  CallStatus status = CallStatus::Pending;
  util::SharedBytes payload;  ///< reply payload (zero-copy view)
  std::string error;          ///< detail for non-Ok terminals
};

/// Client half: issue calls, drive completion.
class Client {
 public:
  explicit Client(Context& ctx);

  /// Intern a bulk region for pulling by servers.
  BulkHandle register_bulk(util::SharedBytes data) {
    return bulk_.register_region(std::move(data));
  }
  void release_bulk(BulkHandle h) { bulk_.release(h); }

  CallId call(ContextId server, std::string_view service,
              const util::PackBuffer& args, CallOptions opts = {});
  CallId call_bulk(ContextId server, std::string_view service,
                   const util::PackBuffer& args, BulkHandle bulk,
                   CallOptions opts = {});

  /// Has `id` reached a terminal status?
  bool done(CallId id) const;
  /// Remove and return a completed call's result (UsageError when the id
  /// is unknown or still pending -- use wait()).
  CallResult take(CallId id);
  /// Drive progress (polling + virtual time) until `id` completes.
  CallResult wait(CallId id);
  /// Drive progress until every outstanding call completes.
  void wait_all();
  /// Complete `id` as Cancelled locally and tell the server (best effort).
  void cancel(CallId id);
  /// Housekeeping: expire deadlines, abort calls to dead peers.  wait()
  /// calls this; call it from custom polling loops.
  void service();

  std::size_t outstanding() const;

 private:
  struct Call {
    ContextId server = kNoContext;
    std::string service;
    Time issued_at = 0;
    Time deadline = 0;  ///< absolute; 0 = none
    std::uint64_t trace = 0;
    CallStatus status = CallStatus::Pending;
    util::SharedBytes reply;
    std::string error;
  };

  CallId issue(ContextId server, std::string_view service,
               const util::PackBuffer& args, BulkHandle bulk,
               CallOptions opts);
  /// Move a pending call to a terminal status (exactly-once: a call
  /// already terminal is left untouched and the transition reported false).
  bool complete(CallId id, CallStatus status, util::SharedBytes payload,
                std::string error);
  void on_reply(util::UnpackBuffer& ub);
  Startpoint& route(ContextId server);

  Context& ctx_;
  BulkProvider bulk_;
  std::map<CallId, Call> calls_;
  std::map<ContextId, Startpoint> routes_;
  std::uint64_t next_call_ = 0;
  Time default_deadline_ = 0;  ///< rpc.deadline_ms, ns (0 = none)
  std::uint32_t incarnation_ = 0;
};

/// Per-call view handed to server handlers.
class CallContext {
 public:
  ContextId client() const noexcept { return client_; }
  CallId call_id() const noexcept { return call_id_; }
  const std::string& service() const noexcept { return service_; }
  /// Unpack view over the request args (zero-copy into the request RSR).
  util::UnpackBuffer args() const { return util::UnpackBuffer(args_.span()); }
  bool has_bulk() const noexcept { return !bulk_.empty() || bulk_size_ != 0; }
  /// The pulled bulk region (empty unless the request carried a handle).
  const util::SharedBytes& bulk() const noexcept { return bulk_; }
  /// Poll for cancellation: true once a cancel frame for this call has
  /// been seen or the call's deadline budget is exhausted.  Handlers doing
  /// long work should poll (Context::progress()) and check this.
  bool cancelled() const;
  /// Send the reply payload (at most once; later respond() calls throw).
  void respond(const util::PackBuffer& payload);
  void respond(util::SharedBytes payload);
  bool replied() const noexcept { return replied_; }
  Context& context() noexcept { return ctx_; }

 private:
  friend class Server;
  CallContext(Context& ctx, class Server& srv, ContextId client,
              CallId call_id, std::string service, util::SharedBytes args,
              util::SharedBytes bulk, std::uint64_t bulk_size, Time deadline)
      : ctx_(ctx), srv_(srv), client_(client), call_id_(call_id),
        service_(std::move(service)), args_(std::move(args)),
        bulk_(std::move(bulk)), bulk_size_(bulk_size), deadline_(deadline) {}

  Context& ctx_;
  Server& srv_;
  ContextId client_;
  CallId call_id_;
  std::string service_;
  util::SharedBytes args_;
  util::SharedBytes bulk_;
  std::uint64_t bulk_size_ = 0;
  Time deadline_ = 0;
  bool replied_ = false;
  util::SharedBytes response_;
};

/// Server half: service registry, admission control, bulk pulls, replies.
class Server {
 public:
  using HandlerFn = std::function<void(CallContext&)>;

  explicit Server(Context& ctx);

  /// Register the handler for `service` (UsageError on duplicates).
  void serve(std::string_view service, HandlerFn fn);

  /// Housekeeping: pump/abort bulk pulls, reset state after a crash
  /// restart, expire queued calls.  Call it from the server's poll loop.
  void service();

  struct Stats {
    std::uint64_t accepted = 0;   ///< admitted (ran or started a pull)
    std::uint64_t queued = 0;     ///< parked in the pending queue
    std::uint64_t rejected = 0;   ///< shed by admission control
    std::uint64_t completed = 0;  ///< handler ran to completion
    std::uint64_t expired = 0;    ///< queued entries dropped past deadline
    std::uint64_t cancelled = 0;  ///< cancelled before/while running
    std::uint64_t bulk_transfers = 0;
    std::uint64_t bulk_failures = 0;
  };
  const Stats& stats() const noexcept { return stats_; }
  /// Receive-side reassembly allocations (one per bulk transfer).
  std::uint64_t reassembly_allocs() const noexcept {
    return puller_.reassembly_allocs();
  }
  std::size_t queue_depth() const noexcept { return queue_.size(); }

 private:
  struct Req {
    CallId call_id = 0;
    ContextId client = kNoContext;
    std::string service;
    util::SharedBytes args;
    BulkHandle bulk;
    Time deadline = 0;  ///< absolute server-side budget; 0 = none
    std::uint64_t trace = 0;
  };

  void on_request(util::UnpackBuffer& ub);
  void on_cancel(util::UnpackBuffer& ub);
  void on_pull_done(std::uint64_t key, util::SharedBytes data, bool ok,
                    std::string err);
  /// Admission control: run, queue, or shed.
  void admit(Req r);
  /// Begin an admitted request: pull bulk first when present.
  void begin(Req r);
  void run_handler(Req r, util::SharedBytes bulk);
  /// Release one admission slot and start queued work that now fits.
  void release_slot(const std::string& service);
  /// Drop expired/cancelled queue entries; start whatever fits now.
  void pump_queue();
  void reply(const Req& r, CallStatus status,
             const util::SharedBytes& payload, std::string_view error);
  bool is_cancelled(ContextId client, CallId id) const {
    return cancelled_.count({client, id}) != 0;
  }
  /// Drop state from a previous incarnation after a crash restart.
  void reincarnation_check();

  friend class CallContext;

  Context& ctx_;
  BulkPuller puller_;
  std::map<std::string, HandlerFn, std::less<>> services_;
  std::map<std::string, std::size_t> inflight_;  ///< running, per service
  std::deque<Req> queue_;
  /// Bulk pulls in progress, keyed by pull key.
  std::map<std::uint64_t, Req> pulling_;
  std::set<std::pair<ContextId, CallId>> cancelled_;
  std::map<ContextId, Startpoint> routes_;
  std::uint64_t next_pull_ = 0;
  std::size_t max_inflight_ = 8;  ///< rpc.max_inflight
  std::size_t queue_cap_ = 16;    ///< rpc.queue_cap
  bool shed_ = false;             ///< rpc.admission == "shed"
  std::uint32_t incarnation_ = 0;
  Stats stats_;
};

}  // namespace nexus::proto::rpc
