#include "proto/rt_modules.hpp"

#include "util/error.hpp"
#include "util/log.hpp"

#include "proto/codec.hpp"
#include "proto/sim_modules.hpp"  // pair_key, kMulticastBase

namespace nexus::proto {

util::Bytes RtDescData::pack() const {
  util::PackBuffer pb;
  pb.put_u32(landing);
  pb.put_i32(partition);
  return pb.take();
}

RtDescData RtDescData::unpack(const util::Bytes& data) {
  util::UnpackBuffer ub(data);
  RtDescData d{};
  d.landing = ub.get_u32();
  d.partition = ub.get_i32();
  return d;
}

RtQueueModule::RtQueueModule(Context& ctx, std::string name, Scope scope,
                             int rank, bool blocking_capable)
    : ctx_(&ctx),
      name_(std::move(name)),
      scope_(scope),
      rank_(rank),
      blocking_capable_(blocking_capable) {
  if (ctx.runtime().rt() == nullptr) {
    throw util::UsageError("realtime module '" + name_ +
                           "' requires the realtime fabric");
  }
}

RtFabric& RtQueueModule::fabric() const { return *ctx_->runtime().rt(); }

void RtQueueModule::initialize(Context& ctx) {
  RtHost& host = fabric().host(ctx.id());
  inbox_ = &host.queues[name_];
}

CommDescriptor RtQueueModule::local_descriptor() const {
  ContextId landing = ctx_->id();
  if (blocking_capable_) {  // tcp-class: honour forwarding configuration
    if (auto fwd = ctx_->runtime().forwarder_of(ctx_->id())) landing = *fwd;
  }
  RtDescData d{landing, fabric().topology().partition_of(ctx_->id())};
  return CommDescriptor{name_, ctx_->id(), d.pack()};
}

bool RtQueueModule::applicable(const CommDescriptor& remote) const {
  if (remote.method != name_) return false;
  switch (scope_) {
    case Scope::Self:
      return remote.context == ctx_->id();
    case Scope::Anywhere:
      return true;
    case Scope::SamePartition:
      return RtDescData::unpack(remote.data).partition ==
             fabric().topology().partition_of(ctx_->id());
  }
  return false;
}

std::unique_ptr<CommObject> RtQueueModule::connect(
    const CommDescriptor& remote) {
  return std::make_unique<RtConn>(*this, remote,
                                  RtDescData::unpack(remote.data).landing);
}

ContextId RtQueueModule::landing_context(const CommDescriptor& remote) const {
  return RtDescData::unpack(remote.data).landing;
}

SendResult RtQueueModule::consult_hook(ContextId dst, Packet& packet,
                                       std::uint64_t wire) const {
  const RtFabric::FaultHook& hook = fabric().fault_hook();
  if (!hook) return {DeliveryStatus::Ok, wire};
  const simnet::FaultVerdict v = hook(name_, ctx_->id(), dst);
  if (v.failed()) {
    if (ctx_->observing()) {
      ctx_->observe({ctx_->now(), packet.span, ctx_->id(),
                     telemetry::Phase::Drop, trace_label(), wire, dst, 0,
                     packet.trace});
    }
    return {v.dead ? DeliveryStatus::Dead : DeliveryStatus::Transient, wire};
  }
  if (v.corrupt) packet.corrupted = true;
  return {DeliveryStatus::Ok, wire};
}

SendResult RtQueueModule::enqueue(ContextId landing, Packet packet) {
  const std::uint64_t wire = packet.wire_size();
  const SendResult verdict = consult_hook(landing, packet, wire);
  if (!verdict.ok()) return verdict;
  RtHost& host = fabric().host(landing);
  if (ctx_->observing()) {
    ctx_->observe({ctx_->now(), packet.span, ctx_->id(),
                   telemetry::Phase::Enqueue, trace_label(), wire, landing, 0,
                   packet.trace});
  }
  host.queue(name()).push(std::move(packet));
  host.activity->notify();
  return verdict;
}

SendResult RtQueueModule::send(CommObject& conn, Packet packet) {
  RtConn& c = static_cast<RtConn&>(conn);
  const std::uint64_t wire = packet.wire_size();
  const SendResult verdict = consult_hook(c.landing(), packet, wire);
  if (!verdict.ok()) return verdict;
  RtHost& host = route_host(c);
  if (ctx_->observing()) {
    ctx_->observe({ctx_->now(), packet.span, ctx_->id(),
                   telemetry::Phase::Enqueue, trace_label(), wire,
                   c.landing(), 0, packet.trace});
  }
  route(c).push(std::move(packet));
  host.activity->notify();
  return verdict;
}

std::optional<Packet> RtQueueModule::poll() { return inbox_->try_pop(); }

std::optional<Packet> RtQueueModule::blocking_poll() {
  return inbox_->pop_wait();
}

void RtQueueModule::shutdown_blocking() { inbox_->close(); }

// ------------------------------------------------------------ rt wrappers ---

RtUdpModule::RtUdpModule(Context& ctx)
    : RtQueueModule(ctx, "udp", Scope::Anywhere, 5, /*blocking_capable=*/false),
      rng_(ctx.runtime().options().seed ^ (0x517cull * (ctx.id() + 1))),
      drop_prob_(ctx.runtime().options().costs.udp_drop_prob),
      mtu_(ctx.runtime().options().costs.udp_mtu) {}

SendResult RtUdpModule::send(CommObject& conn, Packet packet) {
  if (packet.payload.size() > mtu_) {
    // Same contract as the simulated udp module: oversized datagrams fail
    // with a deterministic Dead verdict instead of throwing, so failover
    // (or a rel wrapper) owns the recovery.
    util::log_debug("udp", "context " + std::to_string(context().id()) +
                               " rejected a " +
                               std::to_string(packet.payload.size()) +
                               "-byte payload over the " +
                               std::to_string(mtu_) + "-byte MTU");
    const std::uint64_t oversized_wire = packet.wire_size();
    if (context().observing()) {
      context().observe({context().now(), packet.span, context().id(),
                         telemetry::Phase::Drop, trace_label(),
                         oversized_wire, packet.dst, 0, packet.trace});
    }
    return {DeliveryStatus::Dead, oversized_wire};
  }
  const std::uint64_t wire = packet.wire_size();
  if (rng_.chance(drop_prob_)) {
    ++dropped_;
    util::log_debug("udp", "context " + std::to_string(context().id()) +
                               " dropped a " + std::to_string(wire) +
                               "-byte datagram to context " +
                               std::to_string(packet.dst));
    if (context().observing()) {
      context().observe({context().now(), packet.span, context().id(),
                         telemetry::Phase::Drop, trace_label(), wire,
                         packet.dst, 0, packet.trace});
    }
    // Undetectable loss: the sender sees Ok (udp is unreliable by
    // contract); detected failures come from the fault hook underneath.
    return {DeliveryStatus::Ok, wire};
  }
  return RtQueueModule::send(conn, std::move(packet));
}

RtSecureModule::RtSecureModule(Context& ctx)
    : RtQueueModule(ctx, "secure", Scope::Anywhere, 7,
                    /*blocking_capable=*/false) {}

SendResult RtSecureModule::send(CommObject& conn, Packet packet) {
  packet.payload = seal(packet.payload.span(),
                        SecureSimModule::pair_key(packet.src, packet.dst));
  return RtQueueModule::send(conn, std::move(packet));
}

std::optional<Packet> RtSecureModule::poll() {
  auto pkt = RtQueueModule::poll();
  if (pkt) {
    pkt->payload = open(pkt->payload.span(),
                        SecureSimModule::pair_key(pkt->src, pkt->dst));
  }
  return pkt;
}

RtZrleModule::RtZrleModule(Context& ctx)
    : RtQueueModule(ctx, "zrle", Scope::Anywhere, 8,
                    /*blocking_capable=*/false) {}

SendResult RtZrleModule::send(CommObject& conn, Packet packet) {
  packet.payload = rle_encode(packet.payload.span());
  return RtQueueModule::send(conn, std::move(packet));
}

std::optional<Packet> RtZrleModule::poll() {
  auto pkt = RtQueueModule::poll();
  if (pkt) pkt->payload = rle_decode(pkt->payload.span());
  return pkt;
}

RtMcastModule::RtMcastModule(Context& ctx)
    : RtQueueModule(ctx, "mcast", Scope::Anywhere, 9,
                    /*blocking_capable=*/false) {}

std::unique_ptr<CommObject> RtMcastModule::connect(
    const CommDescriptor& remote) {
  // Group-addressed descriptors carry the group id as a single u32.
  util::UnpackBuffer ub(remote.data);
  return std::make_unique<RtConn>(*this, remote, ub.get_u32());
}

SendResult RtMcastModule::send(CommObject& conn, Packet packet) {
  const std::uint32_t group = static_cast<RtConn&>(conn).landing();
  auto members = fabric().multicast_members(group);
  if (members.empty()) {
    throw util::MethodError("multicast group " + std::to_string(group) +
                            " has no members");
  }
  const std::uint64_t wire = packet.wire_size();
  for (const auto& [member, endpoint] : members) {
    Packet copy = packet;
    copy.dst = member;
    copy.endpoint = endpoint;
    // Faulted members are silently skipped: multicast is unreliable, so
    // per-member failures never surface to the sender.
    enqueue(member, std::move(copy));
  }
  return {DeliveryStatus::Ok, wire};
}

}  // namespace nexus::proto
