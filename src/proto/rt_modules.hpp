// Realtime communication modules: contexts are threads of one process and
// every transport is a thread-safe queue, but applicability rules mirror
// the simulated transports so the same selection logic runs for real:
//   local  -- intra-context only
//   shm    -- any context (it *is* shared memory)
//   mpl    -- same partition only
//   tcp    -- any context; supports forwarding landings and a genuine
//             blocking poller thread
// Costs are paid in real time (thread wakeups, queue contention), so all
// virtual cost fields are zero.
#pragma once

#include <string>

#include "nexus/context.hpp"
#include "nexus/fabric.hpp"
#include "nexus/module.hpp"
#include "nexus/runtime.hpp"
#include "util/rng.hpp"

namespace nexus::proto {

/// Realtime descriptor data: the landing context (for tcp forwarding) and
/// the partition id, packed canonically like everything else on the wire.
struct RtDescData {
  ContextId landing = 0;
  std::int32_t partition = 0;

  util::Bytes pack() const;
  static RtDescData unpack(const util::Bytes& data);
};

/// Connection state for realtime transports: where packets land (or, for
/// multicast, the group id).
class RtConn final : public CommObject {
 public:
  RtConn(CommModule& m, CommDescriptor d, ContextId landing)
      : CommObject(m, std::move(d)), landing_(landing) {}
  ContextId landing() const noexcept { return landing_; }

 private:
  friend class RtQueueModule;
  friend class ReliableModule;  // pre-points queue_ at the wrapper's inbox
  ContextId landing_;
  // Destination host and queue, resolved on first send and cached (fabric
  // map nodes are stable).  Never set for group-addressed (mcast)
  // connections, where landing_ is a group id.
  RtHost* host_ = nullptr;
  util::MpscQueue<Packet>* queue_ = nullptr;
};

class RtQueueModule : public CommModule {
 public:
  enum class Scope { Self, Anywhere, SamePartition };

  RtQueueModule(Context& ctx, std::string name, Scope scope, int rank,
                bool blocking_capable);

 protected:
  Context& context() const noexcept { return *ctx_; }
  RtFabric& fabric() const;
  /// Deliver a packet into `landing`'s queue for this method, via the
  /// fabric's fault hook when one is installed.
  SendResult enqueue(ContextId landing, Packet packet);
  /// Consult the fabric's fault hook for a send to `dst`; applies the
  /// corrupt flag in place.  Realtime delays are not injectable (real time
  /// cannot be scripted), so extra_delay verdicts are ignored.
  SendResult consult_hook(ContextId dst, Packet& packet,
                          std::uint64_t wire) const;
  /// Destination host of a direct (context-addressed) connection, resolved
  /// once per connection instead of once per packet.
  RtHost& route_host(RtConn& conn) {
    if (conn.host_ == nullptr) conn.host_ = &fabric().host(conn.landing());
    return *conn.host_;
  }
  /// Destination queue for this method on the connection's landing host.
  util::MpscQueue<Packet>& route(RtConn& conn) {
    if (conn.queue_ == nullptr) conn.queue_ = &route_host(conn).queue(name_);
    return *conn.queue_;
  }

 public:

  std::string_view name() const override { return name_; }
  void initialize(Context& ctx) override;
  CommDescriptor local_descriptor() const override;
  bool applicable(const CommDescriptor& remote) const override;
  std::unique_ptr<CommObject> connect(const CommDescriptor& remote) override;
  /// The landing context packed into the descriptor (the forwarder for
  /// tcp-class methods in a forwarded partition).
  ContextId landing_context(const CommDescriptor& remote) const override;
  SendResult send(CommObject& conn, Packet packet) override;
  std::optional<Packet> poll() override;
  Time poll_cost() const override { return 0; }
  std::optional<Time> earliest_arrival() const override {
    return std::nullopt;
  }
  int speed_rank() const override { return rank_; }
  bool supports_blocking() const override { return blocking_capable_; }
  std::optional<Packet> blocking_poll() override;
  void shutdown_blocking() override;

 private:
  Context* ctx_;
  std::string name_;
  Scope scope_;
  int rank_;
  bool blocking_capable_;
  util::MpscQueue<Packet>* inbox_ = nullptr;
};

/// Unreliable datagrams on the realtime fabric: same drop/MTU model as the
/// simulated udp module, real queues underneath.
class RtUdpModule final : public RtQueueModule {
 public:
  explicit RtUdpModule(Context& ctx);
  SendResult send(CommObject& conn, Packet packet) override;
  bool reliable() const override { return false; }
  std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  util::Rng rng_;
  double drop_prob_;
  std::uint64_t mtu_;
  std::uint64_t dropped_ = 0;
};

/// Sealed (toy-encrypted + integrity-tagged) payloads on real queues.
class RtSecureModule final : public RtQueueModule {
 public:
  explicit RtSecureModule(Context& ctx);
  SendResult send(CommObject& conn, Packet packet) override;
  std::optional<Packet> poll() override;
};

/// RLE-compressed payloads on real queues.
class RtZrleModule final : public RtQueueModule {
 public:
  explicit RtZrleModule(Context& ctx);
  SendResult send(CommObject& conn, Packet packet) override;
  std::optional<Packet> poll() override;
};

/// True multicast on the realtime fabric: one send fans out to the group
/// registered on the RtFabric.
class RtMcastModule final : public RtQueueModule {
 public:
  explicit RtMcastModule(Context& ctx);
  std::unique_ptr<CommObject> connect(const CommDescriptor& remote) override;
  /// Group descriptors carry a group id, not RtDescData; there is no single
  /// landing context.
  ContextId landing_context(const CommDescriptor& remote) const override {
    return remote.context;
  }
  SendResult send(CommObject& conn, Packet packet) override;
  bool reliable() const override { return false; }
};

}  // namespace nexus::proto
