#include "proto/sim_modules.hpp"

#include <algorithm>

#include "proto/codec.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace nexus::proto {

namespace {
util::Bytes pack_u32(std::uint32_t v) {
  util::PackBuffer pb;
  pb.put_u32(v);
  return pb.take();
}

std::uint32_t unpack_u32(const util::Bytes& data) {
  util::UnpackBuffer ub(data);
  return ub.get_u32();
}

/// Trace the hand-off of a packet into `landing`'s inbox (aux = scheduled
/// arrival).  Call before the packet is moved into the mailbox.
void trace_enqueue(Context& ctx, const CommModule& m, const Packet& pkt,
                   std::uint64_t wire, Time arrival) {
  // Enqueue is transport detail, not causal structure: it is sampled only
  // when span tracing is on, keeping the always-on flight path lean.
  if (!ctx.telemetry().tracer().enabled()) return;
  ctx.observe({ctx.now(), pkt.span, ctx.id(), telemetry::Phase::Enqueue,
               m.trace_label(), wire, static_cast<std::uint64_t>(arrival), 0,
               pkt.trace});
}
}  // namespace

SimModuleBase::SimModuleBase(Context& ctx, std::string name, LinkCosts costs,
                             int rank)
    : ctx_(&ctx), name_(std::move(name)), costs_(costs), rank_(rank) {
  if (ctx.runtime().sim() == nullptr) {
    throw util::UsageError("simulated module '" + name_ +
                           "' requires the simulated fabric");
  }
}

SimFabric& SimModuleBase::fabric() const { return *ctx_->runtime().sim(); }

int SimModuleBase::my_partition() const {
  return fabric().topology().partition_of(ctx_->id());
}

void SimModuleBase::initialize(Context& ctx) {
  SimHost& host = fabric().host(ctx.id());
  auto [it, inserted] = host.boxes.try_emplace(
      name_,
      simnet::Mailbox<Packet>(fabric().scheduler_for(ctx.id()), *host.proc));
  inbox_ = &it->second;
}

std::optional<Packet> SimModuleBase::poll() { return inbox_->poll(now()); }

std::optional<Time> SimModuleBase::earliest_arrival() const {
  return inbox_->earliest();
}

std::unique_ptr<CommObject> SimModuleBase::connect(
    const CommDescriptor& remote) {
  return std::make_unique<SimConn>(*this, remote, remote.context);
}

SendResult SimModuleBase::send(CommObject& conn, Packet packet) {
  SimConn& c = static_cast<SimConn&>(conn);
  return transmit_into(c.landing(), route(c), std::move(packet));
}

SendResult SimModuleBase::transmit_into(ContextId dst,
                                        simnet::Mailbox<Packet>& box,
                                        Packet packet, double bw_divisor) {
  ctx_->clock().advance(costs_.send_cpu);
  const std::uint64_t wire = packet.wire_size();
  const Time arrival =
      now() + costs_.latency +
      simnet::transfer_time(wire, costs_.mb_s / bw_divisor);
  return post_faulted(dst, box, std::move(packet), arrival, wire);
}

SendResult SimModuleBase::post_faulted(ContextId dst,
                                       simnet::Mailbox<Packet>& box,
                                       Packet packet, Time arrival,
                                       std::uint64_t wire) {
  SimFabric& f = fabric();
  // Crash rules (docs §14): a send toward a context inside its crash window
  // is the connection-refused analog -- a hard Dead verdict, independent of
  // the link-fault rules.  Crash predicates are pure functions of
  // (ctx, partition, time), so any shard can evaluate them race-free.
  if (f.faults().has_crashes() && dst < kGroupContextBase &&
      f.faults().crashed(dst, f.topology().partition_of(dst), now())) {
    if (ctx_->observing()) {
      ctx_->observe({now(), packet.span, ctx_->id(), telemetry::Phase::Drop,
                     trace_label(), wire, dst, 0, packet.trace});
    }
    return {DeliveryStatus::Dead, wire};
  }
  if (!f.faults().empty()) {
    const simnet::FaultVerdict v = f.faults().consult(
        name_, my_partition(), f.topology().partition_of(dst), now(),
        f.fault_rng_for(ctx_->id()));
    if (v.failed()) {
      if (ctx_->observing()) {
        ctx_->observe({now(), packet.span, ctx_->id(), telemetry::Phase::Drop,
                       trace_label(), wire, dst, 0, packet.trace});
      }
      return {v.dead ? DeliveryStatus::Dead : DeliveryStatus::Transient,
              wire};
    }
    if (v.corrupt) packet.corrupted = true;
    arrival += v.extra_delay;
  }
  trace_enqueue(*ctx_, *this, packet, wire, arrival);
  // Same-shard: a direct mailbox post (the 1-alloc hot path).  Cross-shard:
  // the fabric routes through the destination shard's MPSC queue.
  f.post(ctx_->id(), dst, box, arrival, std::move(packet));
  return {DeliveryStatus::Ok, wire};
}

// ---------------------------------------------------------------- local ---

LocalSimModule::LocalSimModule(Context& ctx)
    : SimModuleBase(ctx, "local",
                    LinkCosts{ctx.costs().local_latency,
                              ctx.costs().local_poll_cost,
                              ctx.costs().local_send_cpu,
                              ctx.costs().local_mb_s},
                    0) {}

CommDescriptor LocalSimModule::local_descriptor() const {
  return CommDescriptor{std::string(name()), ctx_->id(), {}};
}

bool LocalSimModule::applicable(const CommDescriptor& remote) const {
  return remote.method == name() && remote.context == ctx_->id();
}

// ------------------------------------------------------------------ shm ---

ShmSimModule::ShmSimModule(Context& ctx)
    : SimModuleBase(ctx, "shm",
                    LinkCosts{ctx.costs().shm_latency,
                              ctx.costs().shm_poll_cost,
                              ctx.costs().shm_send_cpu, ctx.costs().shm_mb_s},
                    1),
      node_size_(static_cast<std::uint32_t>(
          std::max<std::int64_t>(1, ctx.config().get_int("shm.node_size", 1)))) {}

std::uint32_t ShmSimModule::node_of(ContextId ctx) const {
  return ctx / node_size_;
}

CommDescriptor ShmSimModule::local_descriptor() const {
  return CommDescriptor{std::string(name()), ctx_->id(),
                        pack_u32(node_of(ctx_->id()))};
}

bool ShmSimModule::applicable(const CommDescriptor& remote) const {
  return remote.method == name() &&
         unpack_u32(remote.data) == node_of(ctx_->id());
}

// -------------------------------------------------------------- myrinet ---

MyrinetSimModule::MyrinetSimModule(Context& ctx)
    : SimModuleBase(ctx, "myrinet",
                    LinkCosts{ctx.costs().myrinet_latency,
                              ctx.costs().myrinet_poll_cost,
                              ctx.costs().myrinet_send_cpu,
                              ctx.costs().myrinet_mb_s},
                    2) {}

CommDescriptor MyrinetSimModule::local_descriptor() const {
  return CommDescriptor{
      std::string(name()), ctx_->id(),
      pack_u32(static_cast<std::uint32_t>(my_partition()))};
}

bool MyrinetSimModule::applicable(const CommDescriptor& remote) const {
  return remote.method == name() &&
         static_cast<int>(unpack_u32(remote.data)) == my_partition();
}

// ------------------------------------------------------------------ mpl ---

MplSimModule::MplSimModule(Context& ctx)
    : SimModuleBase(ctx, "mpl",
                    LinkCosts{ctx.costs().mpl_latency,
                              ctx.costs().mpl_poll_cost,
                              ctx.costs().mpl_send_cpu, ctx.costs().mpl_mb_s},
                    3) {}

CommDescriptor MplSimModule::local_descriptor() const {
  // Paper §3.1: an MPL descriptor holds a node number and a session id
  // distinguishing SP partitions; the partition id plays both roles here.
  return CommDescriptor{
      std::string(name()), ctx_->id(),
      pack_u32(static_cast<std::uint32_t>(my_partition()))};
}

bool MplSimModule::applicable(const CommDescriptor& remote) const {
  return remote.method == name() &&
         static_cast<int>(unpack_u32(remote.data)) == my_partition();
}

SendResult MplSimModule::send(CommObject& conn, Packet packet) {
  SimConn& c = static_cast<SimConn&>(conn);
  // Kernel-call interference (paper §3.3): the receiver's TCP polling slows
  // the drain of this transfer; modelled as a bandwidth divisor.
  const double drag =
      route_host(c).inbound_drag.load(std::memory_order_relaxed);
  return transmit_into(c.landing(), route(c), std::move(packet), drag);
}

// ------------------------------------------------------------------ tcp ---

TcpSimModule::TcpSimModule(Context& ctx)
    : SimModuleBase(ctx, "tcp",
                    LinkCosts{ctx.costs().tcp_latency,
                              ctx.costs().tcp_poll_cost,
                              ctx.costs().tcp_send_cpu, ctx.costs().tcp_mb_s},
                    6),
      incast_threshold_(ctx.costs().tcp_incast_threshold),
      incast_bytes_(ctx.costs().tcp_incast_bytes),
      incast_stall_(ctx.costs().tcp_incast_stall) {}

SendResult TcpSimModule::send(CommObject& conn, Packet packet) {
  SimConn& c = static_cast<SimConn&>(conn);
  SimHost& dest = route_host(c);
  simnet::Mailbox<Packet>& box = route(c);
  ctx_->clock().advance(costs_.send_cpu);
  const std::uint64_t wire = packet.wire_size();
  Time arrival =
      now() + costs_.latency + simnet::transfer_time(wire, costs_.mb_s);
  // Incast model: box.pending() is owned by the destination's home shard,
  // so the stall term applies only to same-shard senders (the per-shard
  // congestion view; cross-shard senders still feed the atomic inflight
  // counter the receiver's poll drains).
  if (incast_stall_ > 0 &&
      fabric().same_shard(ctx_->id(), c.landing())) {
    const std::uint64_t pending = box.pending();
    if (pending > incast_threshold_ &&
        dest.tcp_inflight_bytes.load(std::memory_order_relaxed) >
            incast_bytes_) {
      const auto excess = static_cast<Time>(pending - incast_threshold_);
      arrival += excess * excess * incast_stall_;
    }
  }
  const SendResult r =
      post_faulted(c.landing(), box, std::move(packet), arrival, wire);
  // A failed send never reached the destination's receive window, so it
  // must not contribute to the incast inflight accounting.
  if (r.ok()) {
    dest.tcp_inflight_bytes.fetch_add(wire, std::memory_order_relaxed);
  }
  return r;
}

std::optional<Packet> TcpSimModule::poll() {
  auto pkt = SimModuleBase::poll();
  if (pkt) {
    SimHost& self = fabric().host(ctx_->id());
    const std::uint64_t wire = pkt->wire_size();
    // Clamped subtract via CAS: concurrent senders may be adding, and the
    // counter must never wrap below zero.
    std::uint64_t cur =
        self.tcp_inflight_bytes.load(std::memory_order_relaxed);
    while (!self.tcp_inflight_bytes.compare_exchange_weak(
        cur, cur > wire ? cur - wire : 0, std::memory_order_relaxed)) {
    }
  }
  return pkt;
}

CommDescriptor TcpSimModule::local_descriptor() const {
  // The landing context differs from this context when the partition has a
  // forwarding node: external senders address the forwarder, which re-sends
  // over MPL (paper §3.3).
  ContextId landing = ctx_->id();
  if (auto fwd = ctx_->runtime().forwarder_of(ctx_->id())) landing = *fwd;
  return CommDescriptor{std::string(name()), ctx_->id(), pack_u32(landing)};
}

bool TcpSimModule::applicable(const CommDescriptor& remote) const {
  return remote.method == name();  // IP reaches everything
}

std::unique_ptr<CommObject> TcpSimModule::connect(
    const CommDescriptor& remote) {
  return std::make_unique<SimConn>(*this, remote, unpack_u32(remote.data));
}

ContextId TcpSimModule::landing_context(const CommDescriptor& remote) const {
  return unpack_u32(remote.data);
}

// ------------------------------------------------------------------ udp ---

UdpSimModule::UdpSimModule(Context& ctx)
    : SimModuleBase(ctx, "udp",
                    LinkCosts{ctx.costs().udp_latency,
                              ctx.costs().udp_poll_cost,
                              ctx.costs().udp_send_cpu, ctx.costs().udp_mb_s},
                    5),
      rng_(ctx.runtime().options().seed ^ (0x9e37ull * (ctx.id() + 1))),
      drop_prob_(ctx.costs().udp_drop_prob),
      mtu_(ctx.costs().udp_mtu) {}

CommDescriptor UdpSimModule::local_descriptor() const {
  return CommDescriptor{std::string(name()), ctx_->id(), {}};
}

bool UdpSimModule::applicable(const CommDescriptor& remote) const {
  return remote.method == name();
}

SendResult UdpSimModule::send(CommObject& conn, Packet packet) {
  if (packet.payload.size() > mtu_) {
    // Deterministic rejection, not an exception: oversized datagrams can
    // never cross this link, so the sender gets a Dead verdict it can feed
    // into the health/failover machinery (and a rel wrapper can escalate).
    util::log_debug("udp", "context " + std::to_string(ctx_->id()) +
                               " rejected a " +
                               std::to_string(packet.payload.size()) +
                               "-byte payload over the " +
                               std::to_string(mtu_) + "-byte MTU");
    const std::uint64_t wire = packet.wire_size();
    if (ctx_->observing()) {
      ctx_->observe({now(), packet.span, ctx_->id(), telemetry::Phase::Drop,
                     trace_label(), wire, packet.dst, 0, packet.trace});
    }
    return {DeliveryStatus::Dead, wire};
  }
  ctx_->clock().advance(costs_.send_cpu);
  const std::uint64_t wire = packet.wire_size();
  if (rng_.chance(drop_prob_)) {
    ++dropped_;
    util::log_debug("udp", "context " + std::to_string(ctx_->id()) +
                               " dropped a " + std::to_string(wire) +
                               "-byte datagram to context " +
                               std::to_string(packet.dst));
    if (ctx_->observing()) {
      ctx_->observe({now(), packet.span, ctx_->id(), telemetry::Phase::Drop,
                     trace_label(), wire, packet.dst, 0, packet.trace});
    }
    // Undetectable loss: it left the host and the network ate it.  The
    // sender sees Ok -- this is exactly why udp reports reliable()==false.
    return {DeliveryStatus::Ok, wire};
  }
  const Time arrival =
      now() + costs_.latency + simnet::transfer_time(wire, costs_.mb_s);
  SimConn& c = static_cast<SimConn&>(conn);
  return post_faulted(c.landing(), route(c), std::move(packet), arrival,
                      wire);
}

// ----------------------------------------------------------------- aal5 ---

Aal5SimModule::Aal5SimModule(Context& ctx)
    : SimModuleBase(ctx, "aal5",
                    LinkCosts{ctx.costs().aal5_latency,
                              ctx.costs().aal5_poll_cost,
                              ctx.costs().aal5_send_cpu,
                              ctx.costs().aal5_mb_s},
                    4) {}

CommDescriptor Aal5SimModule::local_descriptor() const {
  return CommDescriptor{std::string(name()), ctx_->id(), {}};
}

bool Aal5SimModule::applicable(const CommDescriptor& remote) const {
  return remote.method == name();
}

// --------------------------------------------------------------- secure ---

SecureSimModule::SecureSimModule(Context& ctx)
    : SimModuleBase(ctx, "secure",
                    LinkCosts{ctx.costs().tcp_latency,
                              ctx.costs().tcp_poll_cost,
                              ctx.costs().tcp_send_cpu, ctx.costs().tcp_mb_s},
                    7),
      cpu_per_byte_(ctx.costs().secure_cpu_per_byte) {}

std::uint64_t SecureSimModule::pair_key(ContextId a, ContextId b) {
  const std::uint64_t lo = std::min(a, b), hi = std::max(a, b);
  return (hi << 32 | lo) * 0x9e3779b97f4a7c15ull + 0x7f4a7c15ull;
}

CommDescriptor SecureSimModule::local_descriptor() const {
  return CommDescriptor{std::string(name()), ctx_->id(), {}};
}

bool SecureSimModule::applicable(const CommDescriptor& remote) const {
  return remote.method == name();
}

SendResult SecureSimModule::send(CommObject& conn, Packet packet) {
  ctx_->clock().advance(static_cast<Time>(packet.payload.size()) *
                        cpu_per_byte_);
  // Transform methods replace the shared buffer rather than mutating it:
  // other aliases of the plaintext payload are unaffected.
  packet.payload = seal(packet.payload.span(), pair_key(packet.src, packet.dst));
  return SimModuleBase::send(conn, std::move(packet));
}

std::optional<Packet> SecureSimModule::poll() {
  auto pkt = SimModuleBase::poll();
  if (pkt) {
    pkt->payload = open(pkt->payload.span(), pair_key(pkt->src, pkt->dst));
    ctx_->clock().advance(static_cast<Time>(pkt->payload.size()) *
                          cpu_per_byte_);
  }
  return pkt;
}

// ----------------------------------------------------------------- zrle ---

CompressSimModule::CompressSimModule(Context& ctx)
    : SimModuleBase(ctx, "zrle",
                    LinkCosts{ctx.costs().tcp_latency,
                              ctx.costs().tcp_poll_cost,
                              ctx.costs().tcp_send_cpu, ctx.costs().tcp_mb_s},
                    8),
      cpu_per_byte_(ctx.costs().compress_cpu_per_byte) {}

CommDescriptor CompressSimModule::local_descriptor() const {
  return CommDescriptor{std::string(name()), ctx_->id(), {}};
}

bool CompressSimModule::applicable(const CommDescriptor& remote) const {
  return remote.method == name();
}

SendResult CompressSimModule::send(CommObject& conn, Packet packet) {
  ctx_->clock().advance(static_cast<Time>(packet.payload.size()) *
                        cpu_per_byte_);
  packet.payload = rle_encode(packet.payload.span());
  return SimModuleBase::send(conn, std::move(packet));
}

std::optional<Packet> CompressSimModule::poll() {
  auto pkt = SimModuleBase::poll();
  if (pkt) {
    pkt->payload = rle_decode(pkt->payload.span());
    ctx_->clock().advance(static_cast<Time>(pkt->payload.size()) *
                          cpu_per_byte_);
  }
  return pkt;
}

// ---------------------------------------------------------------- mcast ---

McastSimModule::McastSimModule(Context& ctx)
    : SimModuleBase(ctx, "mcast",
                    LinkCosts{ctx.costs().udp_latency,
                              ctx.costs().udp_poll_cost,
                              ctx.costs().udp_send_cpu, ctx.costs().udp_mb_s},
                    9) {}

CommDescriptor McastSimModule::local_descriptor() const {
  // mcast descriptors are group-addressed and constructed via
  // multicast_startpoint(); the per-context descriptor only advertises that
  // the module is present.
  return CommDescriptor{std::string(name()), ctx_->id(), pack_u32(0)};
}

bool McastSimModule::applicable(const CommDescriptor& remote) const {
  return remote.method == name();
}

std::unique_ptr<CommObject> McastSimModule::connect(
    const CommDescriptor& remote) {
  return std::make_unique<SimConn>(*this, remote, unpack_u32(remote.data));
}

SendResult McastSimModule::send(CommObject& conn, Packet packet) {
  const std::uint32_t group = static_cast<SimConn&>(conn).landing();
  // Wait-free membership read: an immutable COW snapshot (possibly one
  // join stale, like a real network's propagation delay).
  const SimFabric::McastMap& groups = fabric().multicast_snapshot();
  auto it = groups.find(group);
  if (it == groups.end() || it->second.empty()) {
    throw util::MethodError("multicast group " + std::to_string(group) +
                            " has no members");
  }
  // One send cost regardless of fan-out: the "network" replicates.
  ctx_->clock().advance(costs_.send_cpu);
  const std::uint64_t wire = packet.wire_size();
  const Time arrival =
      now() + costs_.latency + simnet::transfer_time(wire, costs_.mb_s);
  for (const auto& [member, endpoint] : it->second) {
    Packet copy = packet;
    copy.dst = member;
    copy.endpoint = endpoint;
    // Per-member fault consultation; faulted members are silently skipped
    // (multicast is unreliable, so the sender never sees member failures).
    post_faulted(member, fabric().host(member).box(name()), std::move(copy),
                 arrival, wire);
  }
  return {DeliveryStatus::Ok, wire};
}

void multicast_join(Context& ctx, std::uint32_t group, const Endpoint& ep) {
  if (ep.context_id() != ctx.id()) {
    throw util::UsageError("multicast_join: endpoint must be local");
  }
  if (SimFabric* fabric = ctx.runtime().sim()) {
    fabric->multicast_join(group, ctx.id(), ep.id());
  } else {
    ctx.runtime().rt()->multicast_join(group, ctx.id(), ep.id());
  }
}

Startpoint multicast_startpoint(Context& ctx, std::uint32_t group) {
  if (ctx.module("mcast") == nullptr) {
    throw util::MethodError("context has no 'mcast' module loaded");
  }
  Startpoint sp;
  Startpoint::Link link;
  link.context = kMulticastBase + group;
  link.endpoint = 0;  // rewritten per member at send time
  util::PackBuffer data;
  data.put_u32(group);
  link.table = DescriptorTable(
      {CommDescriptor{"mcast", kMulticastBase + group, data.take()}});
  sp.links().push_back(std::move(link));
  return sp;
}

}  // namespace nexus::proto
