// Simulated communication modules.
//
// Each module charges the virtual costs of one transport class to the
// discrete-event fabric.  The cost constants live in SimCostParams and are
// calibrated to the paper's SP2 numbers (see nexus/costs.hpp).
//
// Modules provided here:
//   local    intra-context delivery (message-driven even to self)
//   shm      shared memory between contexts on the same "node"
//            (node = context id / shm.node_size, resource db key)
//   myrinet  SAN within a partition (alternative to mpl)
//   mpl      IBM MPL analog: intra-partition only; subject to the
//            receiver's TCP-poll interference drag
//   tcp      works everywhere; supports forwarding via a landing context
//            and (modelled) blocking pollers
//   udp      unreliable datagrams: drop probability + MTU limit
//   aal5     ATM AAL5 analog: metropolitan link, cheaper than tcp
//   secure   tcp-class wire + toy stream cipher/MAC, per-byte CPU both ends
//   zrle     tcp-class wire + RLE compression, per-byte CPU both ends
//   mcast    true multicast: one send fans out to a registered group
#pragma once

#include <string>

#include "nexus/context.hpp"
#include "nexus/costs.hpp"
#include "nexus/fabric.hpp"
#include "nexus/module.hpp"
#include "nexus/runtime.hpp"
#include "util/rng.hpp"

namespace nexus::proto {

/// Wire/CPU cost profile of one transport class.
struct LinkCosts {
  Time latency = 0;
  Time poll = 0;
  Time send_cpu = 0;
  double mb_s = 1.0;
};

/// Connection state for simulated transports: where packets land.  For
/// direct methods the landing context is the destination itself; for
/// forwarded TCP it is the partition's forwarding node; for multicast it is
/// the group id.
class SimConn final : public CommObject {
 public:
  SimConn(CommModule& m, CommDescriptor d, ContextId landing)
      : CommObject(m, std::move(d)), landing_(landing) {}
  ContextId landing() const noexcept { return landing_; }

 private:
  friend class SimModuleBase;
  friend class ReliableModule;  // pre-points box_ at the wrapper's inbox
  ContextId landing_;
  // Destination host and inbox, resolved on first send and cached for the
  // connection's lifetime (fabric map nodes are stable).  Never set for
  // group-addressed (mcast) connections, where landing_ is a group id.
  SimHost* host_ = nullptr;
  simnet::Mailbox<Packet>* box_ = nullptr;
};

class SimModuleBase : public CommModule {
 public:
  SimModuleBase(Context& ctx, std::string name, LinkCosts costs, int rank);

  std::string_view name() const override { return name_; }
  void initialize(Context& ctx) override;
  std::optional<Packet> poll() override;
  Time poll_cost() const override { return costs_.poll; }
  std::optional<Time> earliest_arrival() const override;
  int speed_rank() const override { return rank_; }

  /// Default connect: land directly at the descriptor's context.
  std::unique_ptr<CommObject> connect(const CommDescriptor& remote) override;
  /// Default send: one copy to the connection's landing context.
  SendResult send(CommObject& conn, Packet packet) override;

 protected:
  SimFabric& fabric() const;
  Time now() const { return ctx_->now(); }
  int my_partition() const;
  /// Destination host of a direct (context-addressed) connection, resolved
  /// once per connection instead of once per packet.
  SimHost& route_host(SimConn& conn) {
    if (conn.host_ == nullptr) conn.host_ = &fabric().host(conn.landing());
    return *conn.host_;
  }
  /// Destination inbox for this method on the connection's landing host.
  simnet::Mailbox<Packet>& route(SimConn& conn) {
    if (conn.box_ == nullptr) conn.box_ = &route_host(conn).box(name_);
    return *conn.box_;
  }
  /// Charge sender CPU, compute the arrival time, and post into `box`
  /// through the fault plane.  `bw_divisor` > 1 slows the transfer (used by
  /// the interference drag); `dst` is the landing context (partition-pair
  /// fault matching).
  SendResult transmit_into(ContextId dst, simnet::Mailbox<Packet>& box,
                           Packet packet, double bw_divisor = 1.0);
  /// Consult the fabric's fault plan, then post (unless a fault eats the
  /// packet).  Every simulated send funnels through here so drop / delay /
  /// corrupt / blackhole rules apply uniformly.
  SendResult post_faulted(ContextId dst, simnet::Mailbox<Packet>& box,
                          Packet packet, Time arrival, std::uint64_t wire);

  Context* ctx_;
  std::string name_;
  LinkCosts costs_;
  int rank_;
  simnet::Mailbox<Packet>* inbox_ = nullptr;
};

class LocalSimModule final : public SimModuleBase {
 public:
  explicit LocalSimModule(Context& ctx);
  CommDescriptor local_descriptor() const override;
  bool applicable(const CommDescriptor& remote) const override;
};

class ShmSimModule final : public SimModuleBase {
 public:
  explicit ShmSimModule(Context& ctx);
  CommDescriptor local_descriptor() const override;
  bool applicable(const CommDescriptor& remote) const override;
  std::uint32_t node_of(ContextId ctx) const;

 private:
  std::uint32_t node_size_;
};

class MyrinetSimModule final : public SimModuleBase {
 public:
  explicit MyrinetSimModule(Context& ctx);
  CommDescriptor local_descriptor() const override;
  bool applicable(const CommDescriptor& remote) const override;
};

class MplSimModule final : public SimModuleBase {
 public:
  explicit MplSimModule(Context& ctx);
  CommDescriptor local_descriptor() const override;
  bool applicable(const CommDescriptor& remote) const override;
  /// Applies the destination's inbound interference drag.
  SendResult send(CommObject& conn, Packet packet) override;
};

class TcpSimModule final : public SimModuleBase {
 public:
  explicit TcpSimModule(Context& ctx);
  CommDescriptor local_descriptor() const override;
  bool applicable(const CommDescriptor& remote) const override;
  std::unique_ptr<CommObject> connect(const CommDescriptor& remote) override;
  /// TCP descriptors carry an explicit landing context (the partition's
  /// forwarder when one is configured); expose it for the enquiry layer.
  ContextId landing_context(const CommDescriptor& remote) const override;
  /// Adds the incast-collapse stall when the receiver is overloaded.
  SendResult send(CommObject& conn, Packet packet) override;
  std::optional<Packet> poll() override;
  bool supports_blocking() const override { return true; }

 private:
  std::uint64_t incast_threshold_;
  std::uint64_t incast_bytes_;
  Time incast_stall_;
};

class UdpSimModule final : public SimModuleBase {
 public:
  explicit UdpSimModule(Context& ctx);
  CommDescriptor local_descriptor() const override;
  bool applicable(const CommDescriptor& remote) const override;
  SendResult send(CommObject& conn, Packet packet) override;
  bool reliable() const override { return false; }
  std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  util::Rng rng_;
  double drop_prob_;
  std::uint64_t mtu_;
  std::uint64_t dropped_ = 0;
};

class Aal5SimModule final : public SimModuleBase {
 public:
  explicit Aal5SimModule(Context& ctx);
  CommDescriptor local_descriptor() const override;
  bool applicable(const CommDescriptor& remote) const override;
};

class SecureSimModule final : public SimModuleBase {
 public:
  explicit SecureSimModule(Context& ctx);
  CommDescriptor local_descriptor() const override;
  bool applicable(const CommDescriptor& remote) const override;
  SendResult send(CommObject& conn, Packet packet) override;
  std::optional<Packet> poll() override;

  /// Symmetric per-pair key (both ends derive the same value).
  static std::uint64_t pair_key(ContextId a, ContextId b);

 private:
  Time cpu_per_byte_;
};

class CompressSimModule final : public SimModuleBase {
 public:
  explicit CompressSimModule(Context& ctx);
  CommDescriptor local_descriptor() const override;
  bool applicable(const CommDescriptor& remote) const override;
  SendResult send(CommObject& conn, Packet packet) override;
  std::optional<Packet> poll() override;

 private:
  Time cpu_per_byte_;
};

/// Multicast group addressing: group g is represented in startpoint links
/// as the pseudo-context kMulticastBase + g.
inline constexpr ContextId kMulticastBase = kGroupContextBase;

class McastSimModule final : public SimModuleBase {
 public:
  explicit McastSimModule(Context& ctx);
  CommDescriptor local_descriptor() const override;
  bool applicable(const CommDescriptor& remote) const override;
  std::unique_ptr<CommObject> connect(const CommDescriptor& remote) override;
  SendResult send(CommObject& conn, Packet packet) override;
  bool reliable() const override { return false; }  // rides the udp model
};

/// Register `ep` as a member of multicast group `group`.
void multicast_join(Context& ctx, std::uint32_t group, const Endpoint& ep);

/// A startpoint whose single link addresses multicast group `group`.
Startpoint multicast_startpoint(Context& ctx, std::uint32_t group);

}  // namespace nexus::proto
