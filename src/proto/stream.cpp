#include "proto/stream.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace nexus::proto {

namespace {
// Fragment payload layout: [u64 stream][u32 index][u32 total][bytes chunk]
constexpr std::size_t kFragHeader = 8 + 4 + 4 + 4;  // incl. chunk length
}  // namespace

StreamSimModule::StreamSimModule(Context& ctx)
    : SimModuleBase(ctx, "stream",
                    LinkCosts{ctx.costs().tcp_latency,
                              ctx.costs().tcp_poll_cost,
                              ctx.costs().tcp_send_cpu, ctx.costs().tcp_mb_s},
                    10),
      mtu_(static_cast<std::uint64_t>(
          std::max<std::int64_t>(64, ctx.config().get_int("stream.mtu",
                                                          8192)))) {}

CommDescriptor StreamSimModule::local_descriptor() const {
  return CommDescriptor{std::string(name()), ctx_->id(), {}};
}

bool StreamSimModule::applicable(const CommDescriptor& remote) const {
  return remote.method == name();
}

SendResult StreamSimModule::send(CommObject& conn, Packet packet) {
  SimConn& c = static_cast<SimConn&>(conn);
  simnet::Mailbox<Packet>& box = route(c);
  const std::uint64_t stream = next_stream_id_++;
  const std::uint64_t size = packet.payload.size();
  const auto total = static_cast<std::uint32_t>(
      size == 0 ? 1 : (size + mtu_ - 1) / mtu_);

  std::uint64_t wire_total = 0;
  Time arrival = now();
  for (std::uint32_t index = 0; index < total; ++index) {
    const std::uint64_t off = static_cast<std::uint64_t>(index) * mtu_;
    const std::uint64_t len = std::min(mtu_, size - off);
    util::PackBuffer frag(static_cast<std::size_t>(len) + kFragHeader);
    frag.put_u64(stream);
    frag.put_u32(index);
    frag.put_u32(total);
    frag.put_bytes(packet.payload.span().subspan(
        static_cast<std::size_t>(off), static_cast<std::size_t>(len)));

    Packet piece;
    piece.src = packet.src;
    piece.dst = packet.dst;
    piece.endpoint = packet.endpoint;
    piece.handler = packet.handler;
    piece.hops = packet.hops;
    piece.payload = frag.release();

    // Fragments pipeline: the sender pays CPU per fragment, and each
    // fragment's transfer follows the previous one on the wire.
    ctx_->clock().advance(costs_.send_cpu);
    const std::uint64_t wire = piece.wire_size();
    wire_total += wire;
    const Time depart = std::max(arrival, now());
    arrival = depart + simnet::transfer_time(wire, costs_.mb_s);
    const SendResult r =
        post_faulted(c.landing(), box, std::move(piece),
                     arrival + costs_.latency, wire);
    if (!r.ok()) {
      // A fault ate this fragment: the stream cannot complete, so surface
      // the failure (the receiver's partial assembly is abandoned; a retry
      // uses a fresh stream id and cannot be confused with it).
      return {r.status, wire_total};
    }
    ++fragments_sent_;
  }
  return {DeliveryStatus::Ok, wire_total};
}

std::optional<Packet> StreamSimModule::poll() {
  while (auto piece = SimModuleBase::poll()) {
    ++fragments_received_;
    util::UnpackBuffer ub(piece->payload.span());
    const std::uint64_t stream = ub.get_u64();
    const std::uint32_t index = ub.get_u32();
    const std::uint32_t total = ub.get_u32();
    util::ByteSpan chunk = ub.get_bytes_view();

    Assembly& as = assemblies_[{piece->src, stream}];
    if (as.total == 0) {
      as.total = total;
      as.header = *piece;
    }
    // One corrupt fragment poisons the whole message: the reassembled
    // packet keeps the flag so the receiving engine quarantines it.
    if (piece->corrupted) as.header.corrupted = true;
    if (as.total != total) {
      throw util::MethodError("stream: inconsistent fragment count");
    }
    // Same-pipe fragments arrive in order; guard anyway.
    if (index != as.received) {
      throw util::MethodError("stream: fragment out of order");
    }
    as.data.insert(as.data.end(), chunk.begin(), chunk.end());
    ++as.received;
    if (as.received == as.total) {
      Packet whole = std::move(as.header);
      whole.payload = std::move(as.data);
      assemblies_.erase({piece->src, stream});
      return whole;
    }
    // Partial stream: keep pulling fragments that are already here.
  }
  return std::nullopt;
}

}  // namespace nexus::proto
