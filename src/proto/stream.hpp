// Streaming method (paper §6: "Streaming protocols ... are currently being
// investigated; preliminary design work suggests that they fit the
// framework well").
//
// The "stream" module carries arbitrarily large RSR payloads over an
// MTU-limited channel by fragmenting at the sender and reassembling inside
// the module at the receiver -- the delivered RSR is indistinguishable
// from a single-message method, demonstrating that a stream-oriented
// transport slots under the standard module interface without touching the
// core.  Fragments of one message travel a fixed-latency pipe, so they
// arrive in order; interleaved streams from different senders are
// reassembled independently.
//
// Resource database keys: stream.mtu (bytes per fragment, default 8192).
#pragma once

#include <map>

#include "proto/sim_modules.hpp"

namespace nexus::proto {

class StreamSimModule final : public SimModuleBase {
 public:
  explicit StreamSimModule(Context& ctx);

  CommDescriptor local_descriptor() const override;
  bool applicable(const CommDescriptor& remote) const override;
  SendResult send(CommObject& conn, Packet packet) override;
  std::optional<Packet> poll() override;

  std::uint64_t fragments_sent() const noexcept { return fragments_sent_; }
  std::uint64_t fragments_received() const noexcept {
    return fragments_received_;
  }

 private:
  struct Assembly {
    std::uint32_t total = 0;
    std::uint32_t received = 0;
    util::Bytes data;
    Packet header;  ///< src/dst/endpoint/handler of the original message
  };

  std::uint64_t mtu_;
  std::uint64_t next_stream_id_ = 1;
  std::uint64_t fragments_sent_ = 0;
  std::uint64_t fragments_received_ = 0;
  /// In-progress reassemblies keyed by (source context, stream id).
  std::map<std::pair<ContextId, std::uint64_t>, Assembly> assemblies_;
};

}  // namespace nexus::proto
