// Deterministic fault-injection plans for the communication fabric.
//
// A FaultPlan is a list of rules, each scoping one fault kind (drop, delay,
// corrupt, blackhole) to a method name, a (source partition, destination
// partition) pair, and a virtual-time window.  Modules consult the plan at
// send time with the scheduler clock and a seeded util::Rng, so a given
// (plan, seed, workload) triple always produces the same fault sequence --
// the chaos tests replay failures exactly.
//
// Fault semantics (documented in docs/ARCHITECTURE.md §9):
//   Blackhole  the link is hard-down: the send fails with a *dead* verdict
//              (the transport analog of ECONNREFUSED / link down).
//   Drop       the packet is lost but the failure is detected at the
//              sender (a *transient* verdict), so retry is safe.
//   Delay      delivery succeeds; the arrival time is pushed back.
//   Corrupt    delivery succeeds but the packet is flagged corrupted; the
//              receiver's integrity check quarantines it before dispatch.
// Undetectable loss stays the business of the unreliable modules (udp's own
// drop model), which is exactly why they report reliable() == false.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "simnet/time.hpp"
#include "util/rng.hpp"

namespace nexus::simnet {

enum class FaultKind : std::uint8_t { Drop, Delay, Corrupt, Blackhole };

/// Whole-context failure schedule: the target context is *down* for the
/// half-open window [from, until) -- it stops polling, its mailboxes are
/// dropped, and every in-memory protocol state is lost.  At `until` the
/// context restarts with its incarnation epoch bumped by one.  Unlike link
/// rules, crash rules are pure functions of (context, partition, time): any
/// shard can evaluate them against the immutable plan without drawing from
/// an rng, which is what makes a crash on shard A observable from shard B
/// without shared mutable state.  A permanent death is a window whose
/// `until` lies beyond the workload's horizon.
struct CrashRule {
  /// Target context id; any context when < 0 (then `partition` scopes it).
  std::int64_t context = -1;
  /// Target partition; -1 = any (only consulted when context < 0).
  int partition = -1;
  Time from = 0;
  Time until = kInfinity;

  bool matches(std::uint32_t ctx, int part) const noexcept {
    if (context >= 0) return static_cast<std::uint32_t>(context) == ctx;
    return partition < 0 || partition == part;
  }
};

/// One scoped fault schedule.  Empty method / -1 partitions mean "any";
/// the window is half-open [from, until).
struct FaultRule {
  FaultKind kind = FaultKind::Drop;
  std::string method;
  int src_partition = -1;
  int dst_partition = -1;
  Time from = 0;
  Time until = kInfinity;
  /// Per-send probability for Drop/Corrupt; Blackhole and Delay always
  /// apply inside their window.
  double probability = 1.0;
  /// Extra latency for Delay rules.
  Time delay = 0;

  bool matches(std::string_view m, int src, int dst, Time now) const {
    return now >= from && now < until &&
           (method.empty() || method == m) &&
           (src_partition < 0 || src_partition == src) &&
           (dst_partition < 0 || dst_partition == dst);
  }
};

/// Combined outcome of every matching rule for one send attempt.  Dead
/// dominates transient; delays accumulate; corruption is sticky.
struct FaultVerdict {
  bool dead = false;
  bool transient = false;
  bool corrupt = false;
  Time extra_delay = 0;

  bool failed() const noexcept { return dead || transient; }
};

class FaultPlan {
 public:
  /// True when no *link* rules exist.  Crash rules live in a separate list
  /// (see has_crashes()) so the link-fault fast paths keep their guard.
  bool empty() const noexcept { return rules_.empty(); }
  std::size_t size() const noexcept { return rules_.size(); }
  const std::vector<FaultRule>& rules() const noexcept { return rules_; }

  bool has_crashes() const noexcept { return !crash_rules_.empty(); }
  const std::vector<CrashRule>& crash_rules() const noexcept {
    return crash_rules_;
  }

  FaultPlan& add(CrashRule rule) {
    crash_rules_.push_back(rule);
    return *this;
  }

  /// Kill context `ctx` for [from, until); it restarts at `until` with a
  /// bumped incarnation.  Leave `until` at kInfinity for a permanent death.
  FaultPlan& crash(std::uint32_t ctx, Time from, Time until = kInfinity) {
    CrashRule r;
    r.context = static_cast<std::int64_t>(ctx);
    r.from = from;
    r.until = until;
    return add(r);
  }

  /// Kill every context of `partition` for [from, until).
  FaultPlan& crash_partition(int partition, Time from,
                             Time until = kInfinity) {
    CrashRule r;
    r.partition = partition;
    r.from = from;
    r.until = until;
    return add(r);
  }

  /// Is (ctx, partition) inside any crash window at `now`?  Pure: no rng,
  /// so any shard may ask about any context.
  bool crashed(std::uint32_t ctx, int partition, Time now) const noexcept {
    for (const CrashRule& r : crash_rules_) {
      if (r.matches(ctx, partition) && now >= r.from && now < r.until)
        return true;
    }
    return false;
  }

  /// Latest `until` among the crash windows covering `now` -- the instant
  /// the context restarts (kInfinity when it never does).
  Time crash_end(std::uint32_t ctx, int partition, Time now) const noexcept {
    Time end = now;
    for (const CrashRule& r : crash_rules_) {
      if (r.matches(ctx, partition) && now >= r.from && now < r.until &&
          r.until > end) {
        end = r.until;
      }
    }
    return end;
  }

  /// Incarnation epoch of (ctx, partition) at `now`: 1 (first life) plus
  /// one per crash window already fully behind it.  Deterministic, so the
  /// wire protocol can stamp it without coordination.
  std::uint32_t incarnation(std::uint32_t ctx, int partition,
                            Time now) const noexcept {
    std::uint32_t inc = 1;
    for (const CrashRule& r : crash_rules_) {
      if (r.matches(ctx, partition) && r.until != kInfinity && now >= r.until)
        ++inc;
    }
    return inc;
  }

  FaultPlan& add(FaultRule rule) {
    rules_.push_back(std::move(rule));
    return *this;
  }

  /// Hard-down window for `method` (all partition pairs unless narrowed via
  /// the returned rule): every send fails dead.
  FaultPlan& blackhole(std::string method, Time from, Time until = kInfinity) {
    FaultRule r;
    r.kind = FaultKind::Blackhole;
    r.method = std::move(method);
    r.from = from;
    r.until = until;
    return add(std::move(r));
  }

  /// Detected loss: each send fails transiently with probability `p`.
  FaultPlan& drop(std::string method, double p, Time from = 0,
                  Time until = kInfinity) {
    FaultRule r;
    r.kind = FaultKind::Drop;
    r.method = std::move(method);
    r.probability = p;
    r.from = from;
    r.until = until;
    return add(std::move(r));
  }

  /// Extra one-way latency inside the window.
  FaultPlan& delay(std::string method, Time extra, Time from = 0,
                   Time until = kInfinity) {
    FaultRule r;
    r.kind = FaultKind::Delay;
    r.method = std::move(method);
    r.delay = extra;
    r.from = from;
    r.until = until;
    return add(std::move(r));
  }

  /// Payload corruption (flagged, quarantined at the receiver) with
  /// probability `p`.
  FaultPlan& corrupt(std::string method, double p, Time from = 0,
                     Time until = kInfinity) {
    FaultRule r;
    r.kind = FaultKind::Corrupt;
    r.method = std::move(method);
    r.probability = p;
    r.from = from;
    r.until = until;
    return add(std::move(r));
  }

  /// Evaluate every rule against one send attempt.  Probabilistic rules
  /// draw from `rng` only while their window matches, keeping the stream
  /// of random numbers -- and therefore the whole simulation -- stable
  /// when windows move.
  FaultVerdict consult(std::string_view method, int src_partition,
                       int dst_partition, Time now, util::Rng& rng) const {
    FaultVerdict v;
    for (const FaultRule& r : rules_) {
      if (!r.matches(method, src_partition, dst_partition, now)) continue;
      switch (r.kind) {
        case FaultKind::Blackhole:
          v.dead = true;
          break;
        case FaultKind::Drop:
          if (rng.chance(r.probability)) v.transient = true;
          break;
        case FaultKind::Corrupt:
          if (rng.chance(r.probability)) v.corrupt = true;
          break;
        case FaultKind::Delay:
          v.extra_delay += r.delay;
          break;
      }
    }
    return v;
  }

 private:
  std::vector<FaultRule> rules_;
  std::vector<CrashRule> crash_rules_;
};

}  // namespace nexus::simnet
