// Arrival-ordered mailboxes connecting simulated devices.
//
// A sender inserts an item with a *future* arrival timestamp computed from
// its own clock plus link costs; the owning process only observes the item
// once its clock reaches the arrival time (via poll()).  Posting also arms a
// scheduler wake timer so a blocked owner is resumed when traffic lands.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "simnet/process.hpp"
#include "simnet/scheduler.hpp"
#include "simnet/time.hpp"

namespace nexus::simnet {

/// The common traffic pattern -- one steady sender, or senders whose
/// arrival stamps happen to be monotone -- keeps a mailbox in FIFO mode:
/// a plain vector with a consumed-prefix index, so post is an append and
/// poll is a move-out (no heap sift of whole entries).  The first
/// out-of-order post converts the live suffix into a (arrival, seq)
/// min-heap; the mailbox drops back to FIFO mode once it drains.
template <typename T>
class Mailbox {
 public:
  Mailbox(Scheduler& sched, SimProcess& owner)
      : sched_(&sched), owner_(&owner) {}

  /// Deliver `item` at virtual time `arrival`.
  void post(Time arrival, T item) {
    if (!heap_) {
      if (entries_.size() == head_ || arrival >= entries_.back().arrival) {
        entries_.push_back(Entry{arrival, seq_++, std::move(item)});
      } else {
        // Out-of-order arrival: shed the consumed prefix and heapify the
        // live entries.
        entries_.erase(entries_.begin(),
                       entries_.begin() + static_cast<std::ptrdiff_t>(head_));
        head_ = 0;
        entries_.push_back(Entry{arrival, seq_++, std::move(item)});
        std::make_heap(entries_.begin(), entries_.end(), Later{});
        heap_ = true;
      }
    } else {
      entries_.push_back(Entry{arrival, seq_++, std::move(item)});
      std::push_heap(entries_.begin(), entries_.end(), Later{});
    }
    // One live wake timer at <= the earliest pending arrival suffices to
    // resume a blocked owner; burst senders would otherwise push one timer
    // per item through the scheduler's heap.  A timer that fires while the
    // owner is runnable is dropped by the scheduler -- poll() re-arms when
    // it notices the cover is gone (fired_until has passed it).
    if (!timer_covers(arrival)) arm(arrival);
  }

  /// Pop the earliest item whose arrival time has been reached.
  std::optional<T> poll(Time now) {
    if (head_ == entries_.size()) return std::nullopt;
    if (entries_[heap_ ? 0 : head_].arrival > now) {
      // Future traffic only: make sure an unfired wake still covers it (the
      // posting-time timer may have fired and been dropped while the owner
      // was runnable), so the owner can safely block after this miss.
      ensure_cover(now);
      return std::nullopt;
    }
    T item;
    if (heap_) {
      std::pop_heap(entries_.begin(), entries_.end(), Later{});
      item = std::move(entries_.back().item);
      entries_.pop_back();
      if (entries_.empty()) heap_ = false;
    } else {
      item = std::move(entries_[head_].item);
      ++head_;
      if (head_ == entries_.size()) {
        entries_.clear();  // capacity retained for the next burst
        head_ = 0;
      } else if (head_ >= 64 && head_ * 2 >= entries_.size()) {
        entries_.erase(entries_.begin(),
                       entries_.begin() + static_cast<std::ptrdiff_t>(head_));
        head_ = 0;
      }
    }
    if (head_ != entries_.size()) ensure_cover(now);
    return item;
  }

  /// Earliest arrival time among all queued items (even future ones).
  std::optional<Time> earliest() const {
    if (head_ == entries_.size()) return std::nullopt;
    return entries_[heap_ ? 0 : head_].arrival;
  }

  bool has_ready(Time now) const {
    return head_ != entries_.size() &&
           entries_[heap_ ? 0 : head_].arrival <= now;
  }

  std::size_t pending() const noexcept { return entries_.size() - head_; }

  /// Push back the arrival of every still-in-flight item by `delta`.
  /// Models interference with transfers in progress (paper §3.3: repeated
  /// select calls slow the drain of the SP2 communication device).  Adding a
  /// uniform delta to all arrivals > now preserves both heap order and the
  /// FIFO mode's sortedness (entries already landed keep their stamps and
  /// sort before every shifted future one).
  void penalize_pending(Time now, Time delta) {
    for (std::size_t i = head_; i < entries_.size(); ++i) {
      if (entries_[i].arrival > now) entries_[i].arrival += delta;
    }
  }

  /// Drop every queued item arriving before `cutoff`; returns the count.
  /// Models a crashed owner losing its queue: traffic already in flight
  /// *past* the restart instant survives (it arrives at the reborn
  /// context), everything earlier evaporates with the old incarnation.
  /// A stable erase preserves both FIFO sortedness and relative seq order;
  /// heap mode just re-heapifies the survivors.
  std::size_t purge_before(Time cutoff) {
    if (head_ != 0) {
      entries_.erase(entries_.begin(),
                     entries_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
    const std::size_t before = entries_.size();
    std::erase_if(entries_,
                  [cutoff](const Entry& e) { return e.arrival < cutoff; });
    if (entries_.empty()) {
      heap_ = false;
    } else if (heap_) {
      std::make_heap(entries_.begin(), entries_.end(), Later{});
    }
    return before - entries_.size();
  }

  SimProcess& owner() noexcept { return *owner_; }

 private:
  struct Entry {
    Time arrival;
    std::uint64_t seq;
    T item;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.arrival != b.arrival ? a.arrival > b.arrival : a.seq > b.seq;
    }
  };

  /// True if a wake timer armed at <= `needed` is still pending in the
  /// scheduler.  Early wakes are harmless (the owner polls, misses, and
  /// blocks again behind a fresh cover); a missing cover would deadlock a
  /// blocked owner, so post/poll re-arm whenever this turns false.
  bool timer_covers(Time needed) const {
    return armed_valid_ && armed_ <= needed && armed_ > sched_->fired_until();
  }

  void arm(Time t) {
    sched_->wake_at(*owner_, t);
    armed_ = t;
    armed_valid_ = true;
  }

  /// Re-arm for the earliest still-future entry if no live timer covers it.
  void ensure_cover(Time now) {
    const Time front = entries_[heap_ ? 0 : head_].arrival;
    if (front > now && !timer_covers(front)) arm(front);
  }

  Scheduler* sched_;
  SimProcess* owner_;
  /// FIFO mode (heap_ == false): entries_[head_..) sorted by (arrival, seq),
  /// head_ counts consumed slots.  Heap mode: head_ == 0 and the whole
  /// vector is a min-heap under Later.
  std::vector<Entry> entries_;
  std::size_t head_ = 0;
  bool heap_ = false;
  std::uint64_t seq_ = 0;
  /// Latest-armed wake timer; live iff armed_ > sched_->fired_until().
  Time armed_ = 0;
  bool armed_valid_ = false;
};

}  // namespace nexus::simnet
