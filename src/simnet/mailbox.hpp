// Arrival-ordered mailboxes connecting simulated devices.
//
// A sender inserts an item with a *future* arrival timestamp computed from
// its own clock plus link costs; the owning process only observes the item
// once its clock reaches the arrival time (via poll()).  Posting also arms a
// scheduler wake timer so a blocked owner is resumed when traffic lands.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "simnet/process.hpp"
#include "simnet/scheduler.hpp"
#include "simnet/time.hpp"

namespace nexus::simnet {

template <typename T>
class Mailbox {
 public:
  Mailbox(Scheduler& sched, SimProcess& owner)
      : sched_(&sched), owner_(&owner) {}

  /// Deliver `item` at virtual time `arrival`.
  void post(Time arrival, T item) {
    entries_.push_back(Entry{arrival, seq_++, std::move(item)});
    std::push_heap(entries_.begin(), entries_.end(), Later{});
    sched_->wake_at(*owner_, arrival);
  }

  /// Pop the earliest item whose arrival time has been reached.
  std::optional<T> poll(Time now) {
    if (entries_.empty() || entries_.front().arrival > now) return std::nullopt;
    std::pop_heap(entries_.begin(), entries_.end(), Later{});
    T item = std::move(entries_.back().item);
    entries_.pop_back();
    return item;
  }

  /// Earliest arrival time among all queued items (even future ones).
  std::optional<Time> earliest() const {
    if (entries_.empty()) return std::nullopt;
    return entries_.front().arrival;
  }

  bool has_ready(Time now) const {
    return !entries_.empty() && entries_.front().arrival <= now;
  }

  std::size_t pending() const noexcept { return entries_.size(); }

  /// Push back the arrival of every still-in-flight item by `delta`.
  /// Models interference with transfers in progress (paper §3.3: repeated
  /// select calls slow the drain of the SP2 communication device).  Adding a
  /// uniform delta to all arrivals > now preserves heap order.
  void penalize_pending(Time now, Time delta) {
    for (Entry& e : entries_) {
      if (e.arrival > now) e.arrival += delta;
    }
  }

  SimProcess& owner() noexcept { return *owner_; }

 private:
  struct Entry {
    Time arrival;
    std::uint64_t seq;
    T item;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.arrival != b.arrival ? a.arrival > b.arrival : a.seq > b.seq;
    }
  };

  Scheduler* sched_;
  SimProcess* owner_;
  std::vector<Entry> entries_;  // min-heap by (arrival, seq)
  std::uint64_t seq_ = 0;
};

}  // namespace nexus::simnet
