#include "simnet/process.hpp"

#include <algorithm>
#include <cassert>

#include "simnet/scheduler.hpp"

namespace nexus::simnet {

namespace {
thread_local SimProcess* t_current = nullptr;
}

SimProcess* SimProcess::current() noexcept { return t_current; }

SimProcess::SimProcess(Scheduler& sched, std::uint32_t id, std::string name,
                       std::function<void()> fn)
    : sched_(sched),
      id_(id),
      name_(std::move(name)),
      fn_(std::move(fn)),
      thread_([this] { thread_main(); }) {}

SimProcess::~SimProcess() {
  if (thread_.joinable()) {
    abort_and_join();
  }
}

void SimProcess::thread_main() {
  t_current = this;
  {
    // Park until the scheduler dispatches us for the first time.
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return baton_; });
  }
  if (!abort_) {
    try {
      fn_();
    } catch (const SimAborted&) {
      // Scheduler-initiated unwind; not an error.
    } catch (...) {
      error_ = std::current_exception();
    }
  }
  std::unique_lock<std::mutex> lock(mutex_);
  state_ = State::Finished;
  baton_ = false;
  cv_.notify_all();
}

void SimProcess::resume(Time horizon) {
  std::unique_lock<std::mutex> lock(mutex_);
  assert(state_ == State::Runnable);
  horizon_ = horizon;
  state_ = State::Running;
  baton_ = true;
  cv_.notify_all();
  cv_.wait(lock, [&] { return !baton_; });
}

void SimProcess::switch_out(State next) {
  std::unique_lock<std::mutex> lock(mutex_);
  state_ = next;
  baton_ = false;
  cv_.notify_all();
  cv_.wait(lock, [&] { return baton_; });
  if (abort_) throw SimAborted{};
  // state_ was set to Running by resume().
}

void SimProcess::wake(Time t) {
  // Called from the scheduler thread while this process is parked.
  std::lock_guard<std::mutex> lock(mutex_);
  assert(state_ == State::Blocked);
  clock_ = std::max(clock_, t);
  state_ = State::Runnable;
}

void SimProcess::abort_and_join() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    abort_ = true;
    baton_ = true;
    cv_.notify_all();
  }
  thread_.join();
}

void SimProcess::advance(Time dt) {
  assert(t_current == this && "advance() must run on the process thread");
  assert(dt >= 0);
  const Time target = clock_ + dt;
  while (clock_ < target) {
    const Time limit = horizon_ + slack_;
    if (target <= limit) {
      clock_ = target;
      return;
    }
    clock_ = std::max(clock_, limit);
    switch_out(State::Runnable);
  }
}

void SimProcess::advance_to(Time t) {
  if (t > clock_) advance(t - clock_);
}

void SimProcess::yield() {
  assert(t_current == this);
  switch_out(State::Runnable);
}

void SimProcess::block() {
  assert(t_current == this);
  switch_out(State::Blocked);
}

void SimProcess::sleep_until(Time t) {
  assert(t_current == this);
  if (t <= clock_) return;
  sched_.wake_at(*this, t);
  block();
}

}  // namespace nexus::simnet
