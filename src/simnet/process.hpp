// Simulated processes: thread-backed coroutines under a virtual clock.
//
// Each simulated context runs ordinary blocking-style C++ code on its own
// std::thread, but only one process executes at a time; the Scheduler hands
// the baton to the runnable process with the smallest virtual clock.  A
// process advances its own clock with advance()/advance_to() and must never
// run past its *horizon* -- the earliest point at which some other process
// or timer could influence it -- so causality is preserved (a conservative
// discrete-event simulation).
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "simnet/time.hpp"

namespace nexus::simnet {

class Scheduler;

class SimProcess {
 public:
  enum class State {
    Runnable,  ///< has work, waiting for the baton
    Running,   ///< currently holds the baton
    Blocked,   ///< waiting for a wake timer
    Finished,  ///< user function returned (or threw)
  };

  SimProcess(Scheduler& sched, std::uint32_t id, std::string name,
             std::function<void()> fn);
  ~SimProcess();

  SimProcess(const SimProcess&) = delete;
  SimProcess& operator=(const SimProcess&) = delete;

  std::uint32_t id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  Time now() const noexcept { return clock_; }
  State state() const noexcept { return state_; }
  Scheduler& scheduler() noexcept { return sched_; }

  /// Advance the local clock by dt, yielding to the scheduler whenever the
  /// horizon is crossed.  Must be called from this process's own thread.
  void advance(Time dt);

  /// Advance the local clock to absolute time t (no-op if already past).
  void advance_to(Time t);

  /// Give the scheduler a dispatch opportunity without consuming time.
  void yield();

  /// Block until a wake timer fires (see Scheduler::wake_at).  On return the
  /// clock is max(previous clock, wake time).
  void block();

  /// Block until time t or an earlier wake; the clock lands on the wake time.
  void sleep_until(Time t);

  /// Current horizon (exclusive upper bound on free clock advancement).
  Time horizon() const noexcept { return horizon_; }

  /// Bounded conservatism relaxation: the process may advance up to `slack`
  /// past its horizon before yielding.  Detection of concurrent events may
  /// then be late by at most `slack` -- acceptable for coarse-grained
  /// workloads (seconds-scale climate runs), and it cuts scheduler handoffs
  /// dramatically.  Leave at 0 (default) for microsecond-accurate runs.
  void set_horizon_slack(Time slack) noexcept { slack_ = slack; }
  Time horizon_slack() const noexcept { return slack_; }

  /// The process currently holding the baton on this thread (nullptr when
  /// called from outside any simulated process).
  static SimProcess* current() noexcept;

 private:
  friend class Scheduler;

  // --- scheduler side (called while the process thread is parked) ---
  /// Hand the baton to this process and wait for it to come back.
  void resume(Time horizon);
  /// Timer fired for a Blocked process: make it runnable at time >= t.
  void wake(Time t);
  /// Resume the parked thread with the abort flag set, so it unwinds.
  void abort_and_join();

  // --- process side ---
  void thread_main();
  /// Return the baton to the scheduler; wait until resumed.
  void switch_out(State next);

  Scheduler& sched_;
  const std::uint32_t id_;
  const std::string name_;
  std::function<void()> fn_;

  std::mutex mutex_;
  std::condition_variable cv_;
  State state_ = State::Runnable;
  bool baton_ = false;  ///< true while the process side should run
  bool abort_ = false;

  Time clock_ = 0;
  Time horizon_ = 0;
  Time slack_ = 0;
  std::exception_ptr error_;
  std::thread thread_;  // last member: starts in the constructor body
};

}  // namespace nexus::simnet
