#include "simnet/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace nexus::simnet {

Scheduler::~Scheduler() { shutdown(); }

SimProcess& Scheduler::spawn(std::string name, std::function<void()> fn) {
  assert(!running_ && "spawn() is only valid before run()");
  const auto id = static_cast<std::uint32_t>(procs_.size());
  procs_.push_back(
      std::make_unique<SimProcess>(*this, id, std::move(name), std::move(fn)));
  last_dispatch_.push_back(0);
  return *procs_.back();
}

void Scheduler::wake_at(SimProcess& proc, Time t) {
  timers_.push(Timer{t, timer_seq_++, &proc});
  // If a running process schedules a wake for another process, clamp its own
  // horizon: the woken process may act (and send) from time t onward.
  if (SimProcess* cur = SimProcess::current(); cur != nullptr && cur != &proc) {
    cur->horizon_ = std::min(cur->horizon_, t);
  }
}

Time Scheduler::next_timer() const {
  return timers_.empty() ? kInfinity : timers_.top().when;
}

void Scheduler::fire_timers_until(Time t) {
  while (!timers_.empty() && timers_.top().when <= t) {
    Timer timer = timers_.top();
    timers_.pop();
    if (timer.proc->state() == SimProcess::State::Blocked) {
      timer.proc->wake(timer.when);
    }
    // Timers for runnable/running/finished processes are stale; drop them.
  }
  if (t > fired_until_) fired_until_ = t;
}

Time Scheduler::horizon_for(const SimProcess& p) const {
  Time h = next_timer();
  for (const auto& other : procs_) {
    if (other.get() == &p) continue;
    if (other->state() != SimProcess::State::Runnable) continue;
    if (other->clock_ > p.clock_) {
      h = std::min(h, other->clock_);
    } else {
      // Equal-clock peer: allow a bounded overrun so the dispatched process
      // makes progress but cannot starve the peer (see header).
      h = std::min(h, other->clock_ + tie_window_);
    }
  }
  return h;
}

void Scheduler::run() {
  running_ = true;
  while (true) {
    // Sharded runs: ingest cross-shard traffic before every dispatch so
    // arrivals become timers/wakes visible to the pick below.
    if (external_ != nullptr) external_->drain();

    // Pick the runnable process with the smallest clock (LRU on ties).
    SimProcess* next = nullptr;
    for (const auto& p : procs_) {
      if (p->state() != SimProcess::State::Runnable) continue;
      if (next == nullptr || p->clock_ < next->clock_ ||
          (p->clock_ == next->clock_ &&
           last_dispatch_[p->id()] < last_dispatch_[next->id()])) {
        next = p.get();
      }
    }
    const Time tmin = next != nullptr ? next->clock_ : kInfinity;

    // Timers due at or before the dispatch time may wake blocked processes
    // with smaller clocks; fire them and re-evaluate.
    if (!timers_.empty() && timers_.top().when <= tmin) {
      fire_timers_until(timers_.top().when);
      continue;
    }

    if (next == nullptr) {
      bool any_blocked = false;
      std::ostringstream blocked_names;
      for (const auto& p : procs_) {
        if (p->state() == SimProcess::State::Blocked) {
          if (any_blocked) blocked_names << ", ";
          blocked_names << p->name();
          any_blocked = true;
        }
      }
      if (external_ != nullptr) {
        // Locally idle is not globally idle: park on the external source.
        // Woken -> loop back (drain() at the top delivers the traffic);
        // Terminated -> the whole group is done, so local Blocked procs
        // really are deadlocked; Aborted -> another shard failed, unwind
        // quietly (the failing shard rethrows its own exception).
        const ExternalIdle verdict = external_->idle(!any_blocked);
        if (verdict == ExternalIdle::Woken) continue;
        if (verdict == ExternalIdle::Aborted) {
          running_ = false;
          shutdown();
          return;
        }
      }
      if (any_blocked) {
        running_ = false;
        shutdown();
        throw DeadlockError(
            "all live processes blocked with no pending timers on shard " +
            std::to_string(shard_index_) + ": " + blocked_names.str());
      }
      break;  // all processes finished
    }

    last_dispatch_[next->id()] = ++dispatch_seq_;
    next->resume(horizon_for(*next));

    if (next->error_) {
      std::exception_ptr err = next->error_;
      running_ = false;
      shutdown();
      std::rethrow_exception(err);
    }
  }
  running_ = false;
}

void Scheduler::shutdown() {
  if (shutdown_) return;
  shutdown_ = true;
  for (const auto& p : procs_) {
    if (p->state() != SimProcess::State::Finished) {
      p->abort_and_join();
    }
  }
}

}  // namespace nexus::simnet
