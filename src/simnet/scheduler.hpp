// Conservative discrete-event scheduler for SimProcesses.
//
// Dispatch rule: fire all wake timers that are due, then hand the baton to
// the runnable process with the smallest virtual clock (least-recently
// dispatched among ties).  A dispatched process receives a *horizon* --
// min(clocks of other runnable processes that are strictly ahead, earliest
// pending timer) -- and may advance its clock freely below it without any
// scheduler interaction, which makes tight poll loops nearly free.
//
// Tie handling: processes whose clocks are exactly equal are unordered; the
// dispatched one may run ahead of an equal-clock peer by at most the
// scheduler's *tie window* before yielding, which guarantees both progress
// (no zero-advance livelock) and fairness (a spinning process cannot starve
// a runnable peer).  Events a process would have observed inside that
// window may be detected up to one window late -- bounded error mirroring
// the nondeterminism of real concurrent hardware.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "simnet/process.hpp"
#include "simnet/time.hpp"
#include "util/error.hpp"

namespace nexus::simnet {

/// Thrown when every live process is blocked and no timers are pending.
class DeadlockError : public util::Error {
 public:
  explicit DeadlockError(const std::string& what)
      : util::Error("simnet deadlock: " + what) {}
};

/// Thrown inside process threads when the scheduler shuts down early (e.g.
/// another process raised an exception); unwinds the user stack cleanly.
struct SimAborted {};

/// Verdict an ExternalSource returns when a scheduler shard goes idle.
enum class ExternalIdle {
  Woken,       ///< new external traffic may have landed; re-enter the loop
  Terminated,  ///< the whole shard group is provably done
  Aborted,     ///< another shard failed; unwind without raising locally
};

/// Hook a sharded fabric installs on each shard's scheduler so the run loop
/// can (a) ingest cross-shard traffic and (b) distinguish "this shard is
/// idle" from "the whole simulation is done".  All methods are invoked on
/// the scheduler's own thread only.
class ExternalSource {
 public:
  virtual ~ExternalSource() = default;

  /// Deliver pending external traffic into local mailboxes/timers.  Called
  /// at the top of every scheduler iteration.  Returns true if anything was
  /// delivered.
  virtual bool drain() = 0;

  /// Called when the shard has no runnable process and no pending timer.
  /// `locally_done` is true when every local process Finished (as opposed
  /// to some still Blocked).  Expected to block until traffic arrives or
  /// the group terminates.
  virtual ExternalIdle idle(bool locally_done) = 0;
};

class Scheduler {
 public:
  Scheduler() = default;
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Create a process.  Its thread starts immediately but the user function
  /// does not run until run() dispatches it.
  SimProcess& spawn(std::string name, std::function<void()> fn);

  /// Run to completion of all processes.  Rethrows the first process
  /// exception; throws DeadlockError if everything blocks.
  void run();

  /// Schedule a wake for `proc` at virtual time `t`.  If the target is
  /// blocked when the timer fires, it becomes runnable with clock >= t.
  /// Callable from process threads (e.g. on message post) or from outside.
  void wake_at(SimProcess& proc, Time t);

  /// Earliest pending timer, or kInfinity.
  Time next_timer() const;

  /// Monotone fire frontier: every timer with when <= fired_until() has been
  /// popped (fired or dropped).  A caller that armed a timer at t can test
  /// `t > fired_until()` to learn whether it is still pending, which lets
  /// mailboxes skip arming duplicate wakes for traffic already covered by an
  /// earlier unfired timer.
  Time fired_until() const noexcept { return fired_until_; }

  std::size_t process_count() const noexcept { return procs_.size(); }
  SimProcess& process(std::size_t i) { return *procs_.at(i); }

  /// True once run() has finished or shutdown began.
  bool shutting_down() const noexcept { return shutdown_; }

  /// Maximum overrun past an equal-clock peer (must be > 0).
  void set_tie_window(Time w) { tie_window_ = w > 0 ? w : 1; }
  Time tie_window() const noexcept { return tie_window_; }

  /// Which shard this scheduler drives (0 in single-shard runs).  Only used
  /// to label diagnostics -- a DeadlockError names the blocked contexts
  /// *and* the shard they were stranded on.
  void set_shard_index(std::size_t i) noexcept { shard_index_ = i; }
  std::size_t shard_index() const noexcept { return shard_index_; }

  /// Install a cross-shard traffic source (sharded runs only; see
  /// ExternalSource).  With a source installed, run() consults it instead
  /// of raising DeadlockError / returning when the shard goes locally idle.
  /// Must be called before run(); the source must outlive the scheduler's
  /// run() call.
  void set_external_source(ExternalSource* src) { external_ = src; }

 private:
  friend class SimProcess;

  struct Timer {
    Time when;
    std::uint64_t seq;
    SimProcess* proc;
    bool operator>(const Timer& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };

  /// Fire all timers with when <= t (wakes blocked targets).
  void fire_timers_until(Time t);

  /// Horizon for a process about to be dispatched.
  Time horizon_for(const SimProcess& p) const;

  /// Resume all parked threads with the abort flag so they unwind.
  void shutdown();

  std::vector<std::unique_ptr<SimProcess>> procs_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  std::uint64_t timer_seq_ = 0;
  Time fired_until_ = -kInfinity;
  std::uint64_t dispatch_seq_ = 0;
  Time tie_window_ = 50 * kUs;
  std::vector<std::uint64_t> last_dispatch_;  ///< per-process, for LRU ties
  ExternalSource* external_ = nullptr;
  std::size_t shard_index_ = 0;
  bool shutdown_ = false;
  bool running_ = false;
};

}  // namespace nexus::simnet
