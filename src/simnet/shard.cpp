#include "simnet/shard.hpp"

#include "util/error.hpp"

namespace nexus::simnet {

ShardGroup::ShardGroup(std::size_t shards)
    : shards_(shards),
      all_mask_(shards >= kMaxShards ? ~std::uint64_t{0}
                                     : (std::uint64_t{1} << shards) - 1) {
  if (shards == 0 || shards > kMaxShards) {
    throw util::Error("ShardGroup: shard count must be in [1, 64]");
  }
}

ExternalIdle ShardGroup::park(std::size_t shard,
                              const std::function<bool()>& has_inbound) {
  // Publish the parked bit FIRST, then re-check the inbound queue under the
  // mutex: a producer either observes the bit (and notifies under the same
  // mutex) or its seq_cst push precedes our seq_cst re-check, which then
  // reports the item.  Either way no wakeup is lost.
  parked_.fetch_or(bit(shard), std::memory_order_seq_cst);
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (aborted_) {
      parked_.fetch_and(~bit(shard), std::memory_order_seq_cst);
      return ExternalIdle::Aborted;
    }
    if (terminated_) return ExternalIdle::Terminated;
    if (has_inbound()) {
      parked_.fetch_and(~bit(shard), std::memory_order_seq_cst);
      return ExternalIdle::Woken;
    }
    if (parked_.load(std::memory_order_seq_cst) == all_mask_ &&
        inflight_.load(std::memory_order_seq_cst) == 0) {
      // Every shard is parked and no post is in flight.  A producer is a
      // running process, so its own shard could not have parked during the
      // (inflight > 0) window -- no further traffic can materialize.
      terminated_ = true;
      cv_.notify_all();
      return ExternalIdle::Terminated;
    }
    cv_.wait(lock);
  }
}

void ShardGroup::abort() {
  std::lock_guard<std::mutex> lock(mutex_);
  aborted_ = true;
  cv_.notify_all();
}

}  // namespace nexus::simnet
