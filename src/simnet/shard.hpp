// Termination and wakeup protocol for a group of scheduler shards.
//
// A sharded simulation runs N conservative schedulers on N OS threads; the
// fabric routes cross-shard traffic through per-shard MPSC queues.  The one
// global question -- "is the whole simulation finished, or merely this
// shard?" -- is answered here with a parked-mask + inflight-counter
// handshake:
//
//   producer (a process on shard A posting toward shard B):
//     note_enqueue()            inflight++, BEFORE pushing to B's queue
//     <push to B's queue>
//     wake(B)                   notify only if B's parked bit is set
//
//   consumer (shard B's scheduler loop, out of local work):
//     park(B, has_inbound)      set parked bit, re-check the queue, then
//                               either return Woken, sleep, or -- when every
//                               bit is set and inflight == 0 -- declare the
//                               group Terminated
//
// Soundness of the termination test: a producer is a *running* process, so
// its own shard cannot be parked while the (inflight > 0) window is open --
// "all parked" therefore implies no post is in flight anywhere.  The
// parked-bit store and the queue push are both seq_cst, so a producer that
// misses the bit is ordered before the consumer's queue re-check (which
// then sees the item), and one that sees it notifies under the mutex.
//
// Virtual clocks are NOT coordinated across shards: a cross-shard packet
// may land in its receiver's past and is delivered on the next poll (the
// mailbox heap handles out-of-order arrivals).  Determinism is guaranteed
// only at one shard; see docs/ARCHITECTURE.md §13.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

#include "simnet/scheduler.hpp"

namespace nexus::simnet {

class ShardGroup {
 public:
  /// At most 64 shards (one bit each in the parked mask).
  static constexpr std::size_t kMaxShards = 64;

  explicit ShardGroup(std::size_t shards);

  std::size_t size() const noexcept { return shards_; }

  /// Producer side: account one cross-shard post.  Must be called BEFORE
  /// the item is pushed into the target shard's queue.
  void note_enqueue() noexcept {
    inflight_.fetch_add(1, std::memory_order_seq_cst);
  }

  /// Consumer side: account `n` drained posts.
  void note_drained(std::size_t n) noexcept {
    inflight_.fetch_sub(static_cast<std::uint64_t>(n),
                        std::memory_order_seq_cst);
  }

  /// Producer side: wake `shard` if it is parked.  Call AFTER the push.
  void wake(std::size_t shard) {
    if ((parked_.load(std::memory_order_seq_cst) & bit(shard)) != 0) {
      std::lock_guard<std::mutex> lock(mutex_);
      cv_.notify_all();
    }
  }

  /// Consumer side: this shard has no runnable process and no timer.
  /// `has_inbound` must report whether the shard's inbound queue holds
  /// undrained posts (consumer-exact).  Returns Woken when new traffic may
  /// have landed (re-enter the scheduler loop), Terminated when the whole
  /// group is provably done, Aborted after abort().
  ExternalIdle park(std::size_t shard,
                    const std::function<bool()>& has_inbound);

  /// Wake every parked shard and make all future park() calls return
  /// Aborted.  Called when any shard's run() throws, so the others unwind
  /// instead of waiting for traffic that will never come.
  void abort();

  bool aborted() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return aborted_;
  }

 private:
  static std::uint64_t bit(std::size_t shard) noexcept {
    return std::uint64_t{1} << shard;
  }

  const std::size_t shards_;
  const std::uint64_t all_mask_;
  /// Padded: every cross-shard post RMWs this from its producer thread.
  alignas(64) std::atomic<std::uint64_t> inflight_{0};
  alignas(64) std::atomic<std::uint64_t> parked_{0};
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool terminated_ = false;
  bool aborted_ = false;
};

}  // namespace nexus::simnet
