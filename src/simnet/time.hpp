// Virtual time base for the network simulator.
//
// All simulated costs are integer nanoseconds.  The paper quotes costs in
// microseconds (15 us MPL probe, 100+ us select, 2 ms TCP latency) and
// bandwidths in MB/s; nanoseconds give enough headroom to express both
// without rounding artifacts.
#pragma once

#include <cstdint>

namespace nexus::simnet {

using Time = std::int64_t;  ///< virtual nanoseconds

inline constexpr Time kNs = 1;
inline constexpr Time kUs = 1000;
inline constexpr Time kMs = 1000 * kUs;
inline constexpr Time kSec = 1000 * kMs;
inline constexpr Time kInfinity = INT64_MAX / 4;

/// Transfer time of `bytes` at `mb_per_s` MB/s (1 MB = 1e6 bytes), rounded up.
constexpr Time transfer_time(std::uint64_t bytes, double mb_per_s) {
  if (bytes == 0 || mb_per_s <= 0.0) return 0;
  const double ns = static_cast<double>(bytes) * 1000.0 / mb_per_s;
  const Time t = static_cast<Time>(ns);
  return (static_cast<double>(t) < ns) ? t + 1 : t;
}

inline double to_us(Time t) { return static_cast<double>(t) / 1000.0; }
inline double to_ms(Time t) { return static_cast<double>(t) / 1.0e6; }
inline double to_sec(Time t) { return static_cast<double>(t) / 1.0e9; }

}  // namespace nexus::simnet
