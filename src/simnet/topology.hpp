// Machine topology: which contexts share a partition.
//
// Mirrors the SP2 partition abstraction from the paper: the MPL-like method
// is applicable only between contexts in the same partition, while TCP-like
// methods work everywhere.  Partition ids are small non-negative integers.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace nexus::simnet {

class Topology {
 public:
  Topology() = default;
  explicit Topology(std::vector<int> partition_of)
      : partition_of_(std::move(partition_of)) {}

  /// All n contexts in one partition.
  static Topology single_partition(std::size_t n) {
    return Topology(std::vector<int>(n, 0));
  }

  /// Contexts [0, n_a) in partition 0, [n_a, n_a + n_b) in partition 1.
  static Topology two_partitions(std::size_t n_a, std::size_t n_b) {
    std::vector<int> p(n_a + n_b, 0);
    for (std::size_t i = n_a; i < n_a + n_b; ++i) p[i] = 1;
    return Topology(std::move(p));
  }

  /// Arbitrary partition sizes, assigned contiguously.
  static Topology partitions(const std::vector<std::size_t>& sizes) {
    std::vector<int> p;
    for (std::size_t k = 0; k < sizes.size(); ++k) {
      p.insert(p.end(), sizes[k], static_cast<int>(k));
    }
    return Topology(std::move(p));
  }

  int partition_of(std::uint32_t ctx) const {
    if (ctx >= partition_of_.size()) {
      throw util::UsageError("context id out of topology range");
    }
    return partition_of_[ctx];
  }

  bool same_partition(std::uint32_t a, std::uint32_t b) const {
    return partition_of(a) == partition_of(b);
  }

  std::size_t size() const noexcept { return partition_of_.size(); }

  int partition_count() const {
    int mx = -1;
    for (int p : partition_of_) mx = p > mx ? p : mx;
    return mx + 1;
  }

 private:
  std::vector<int> partition_of_;
};

}  // namespace nexus::simnet
