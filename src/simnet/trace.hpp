// Event trace recorder for debugging and test assertions.
//
// Disabled by default (zero overhead beyond a branch); when enabled it
// records sends, deliveries, polls, and handler dispatches with virtual
// timestamps so tests can assert on ordering and latency.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "simnet/time.hpp"

namespace nexus::simnet {

enum class TraceKind : std::uint8_t {
  Send,
  Deliver,
  Poll,
  PollHit,
  Dispatch,
  Forward,
  Custom,
};

struct TraceEvent {
  Time when = 0;
  std::uint32_t context = 0;
  TraceKind kind = TraceKind::Custom;
  std::string method;  ///< communication method name, if applicable
  std::uint64_t size = 0;
  std::string note;
};

/// The legacy whole-runtime recorder.  Thread-safe: contexts on different
/// scheduler shards (or realtime threads) may record concurrently, so the
/// enabled flag is a relaxed atomic branch and the event vector is guarded
/// by a mutex on the (off-by-default) enabled path.  Reading events() /
/// count() while a run is in flight is inherently racy and remains a
/// test-time (post-run) operation.
class TraceRecorder {
 public:
  void enable(bool on = true) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  void record(TraceEvent ev) {
    if (enabled()) {
      std::lock_guard<std::mutex> lock(mutex_);
      events_.push_back(std::move(ev));
    }
  }

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
  }

  /// Count events matching a kind (and optionally a method name).
  std::size_t count(TraceKind kind, std::string_view method = {}) const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto& e : events_) {
      if (e.kind == kind && (method.empty() || e.method == method)) ++n;
    }
    return n;
  }

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

}  // namespace nexus::simnet
