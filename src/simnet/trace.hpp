// Event trace recorder for debugging and test assertions.
//
// Disabled by default (zero overhead beyond a branch); when enabled it
// records sends, deliveries, polls, and handler dispatches with virtual
// timestamps so tests can assert on ordering and latency.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/time.hpp"

namespace nexus::simnet {

enum class TraceKind : std::uint8_t {
  Send,
  Deliver,
  Poll,
  PollHit,
  Dispatch,
  Forward,
  Custom,
};

struct TraceEvent {
  Time when = 0;
  std::uint32_t context = 0;
  TraceKind kind = TraceKind::Custom;
  std::string method;  ///< communication method name, if applicable
  std::uint64_t size = 0;
  std::string note;
};

class TraceRecorder {
 public:
  void enable(bool on = true) noexcept { enabled_ = on; }
  bool enabled() const noexcept { return enabled_; }

  void record(TraceEvent ev) {
    if (enabled_) events_.push_back(std::move(ev));
  }

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  void clear() { events_.clear(); }

  /// Count events matching a kind (and optionally a method name).
  std::size_t count(TraceKind kind, std::string_view method = {}) const {
    std::size_t n = 0;
    for (const auto& e : events_) {
      if (e.kind == kind && (method.empty() || e.method == method)) ++n;
    }
    return n;
  }

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace nexus::simnet
