// Basic byte-container aliases used throughout the library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace nexus::util {

using Byte = std::uint8_t;
using Bytes = std::vector<Byte>;
using ByteSpan = std::span<const Byte>;

/// View arbitrary trivially-copyable data as a byte span.
template <typename T>
ByteSpan as_bytes(const T* data, std::size_t count) {
  return ByteSpan(reinterpret_cast<const Byte*>(data), count * sizeof(T));
}

inline Bytes to_bytes(ByteSpan s) { return Bytes(s.begin(), s.end()); }

}  // namespace nexus::util
