// Error types shared across the library.
#pragma once

#include <stdexcept>
#include <string>

namespace nexus::util {

/// Base class for all errors raised by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when unpacking a buffer that is malformed or truncated.
class UnpackError : public Error {
 public:
  explicit UnpackError(const std::string& what) : Error("unpack: " + what) {}
};

/// Raised when a requested communication method/module is unavailable or
/// inapplicable (e.g. forcing MPL across partitions).
class MethodError : public Error {
 public:
  explicit MethodError(const std::string& what) : Error("method: " + what) {}
};

/// Raised on misuse of the public API (unbound startpoint, duplicate handler
/// registration, unknown handler name, ...).
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error("usage: " + what) {}
};

/// Raised when a resource-database entry cannot be parsed.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config: " + what) {}
};

/// Raised when an RSR names a handler id the destination never registered.
/// Distinct from UsageError so dispatch paths can degrade gracefully (count
/// and drop) while registration-time misuse still faults loudly.
class HandlerError : public Error {
 public:
  explicit HandlerError(const std::string& what) : Error("handler: " + what) {}
};

}  // namespace nexus::util
