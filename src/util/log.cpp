#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace nexus::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mutex;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, std::string_view component, std::string_view msg) {
  if (level < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace nexus::util
