#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace nexus::util {

namespace {

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

/// NEXUS_LOG=<level> overrides the default threshold for the process.  An
/// unrecognized value keeps the default and says so once on stderr.
LogLevel initial_level() {
  const char* env = std::getenv("NEXUS_LOG");
  if (env == nullptr || *env == '\0') return LogLevel::Warn;
  if (auto l = parse_log_level(env)) return *l;
  std::fprintf(stderr,
               "[WARN ] log: unrecognized NEXUS_LOG value '%s' "
               "(expected trace|debug|info|warn|error|off)\n",
               env);
  return LogLevel::Warn;
}

std::atomic<LogLevel> g_level{initial_level()};
std::mutex g_mutex;

/// Process-start reference for the timestamp column.
const std::chrono::steady_clock::time_point g_epoch =
    std::chrono::steady_clock::now();

}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view name) noexcept {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "trace") return LogLevel::Trace;
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  return std::nullopt;
}

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, std::string_view component, std::string_view msg) {
  if (level < g_level.load()) return;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - g_epoch)
          .count();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%12.6f] [%-5s] %.*s: %.*s\n", elapsed,
               level_name(level), static_cast<int>(component.size()),
               component.data(), static_cast<int>(msg.size()), msg.data());
}

}  // namespace nexus::util
