// Minimal leveled logger.
//
// The runtime is used from benchmarks where output volume matters, so the
// default level is Warn; tests raise it when diagnosing failures.  The
// logger is process-global and thread-safe.  Lines carry a seconds-since-
// process-start timestamp and a level tag:
//   [   12.345678] [WARN ] component: message
// The NEXUS_LOG environment variable (trace|debug|info|warn|error|off)
// overrides the initial threshold.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace nexus::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Set/get the global logging threshold.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Parse a level name (case-insensitive: trace, debug, info, warn/warning,
/// error, off/none); nullopt for anything else.
std::optional<LogLevel> parse_log_level(std::string_view name) noexcept;

/// Emit one log line (already formatted) if `level` passes the threshold.
void log_line(LogLevel level, std::string_view component, std::string_view msg);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_trace(std::string_view component, Args&&... args) {
  if (log_level() <= LogLevel::Trace)
    log_line(LogLevel::Trace, component, detail::concat(args...));
}
template <typename... Args>
void log_debug(std::string_view component, Args&&... args) {
  if (log_level() <= LogLevel::Debug)
    log_line(LogLevel::Debug, component, detail::concat(args...));
}
template <typename... Args>
void log_info(std::string_view component, Args&&... args) {
  if (log_level() <= LogLevel::Info)
    log_line(LogLevel::Info, component, detail::concat(args...));
}
template <typename... Args>
void log_warn(std::string_view component, Args&&... args) {
  if (log_level() <= LogLevel::Warn)
    log_line(LogLevel::Warn, component, detail::concat(args...));
}
template <typename... Args>
void log_error(std::string_view component, Args&&... args) {
  if (log_level() <= LogLevel::Error)
    log_line(LogLevel::Error, component, detail::concat(args...));
}

}  // namespace nexus::util
