// Lock-free multi-producer single-consumer queue (Vyukov's algorithm).
//
// Producers enqueue with one atomic exchange on the head pointer plus one
// store to link the previous node -- wait-free, no CAS loop, no contention
// window beyond the exchange itself.  The single consumer pops by following
// the stub node's next pointer; it never touches the producers' head except
// to detect emptiness.  This backs the cross-shard mailbox router of the
// sharded simulated fabric and every realtime per-method packet queue,
// replacing the mutex MPMC ConcurrentQueue on paths with exactly one
// consumer at a time.
//
// Consumer exclusivity is a *protocol* obligation, not an enforced one: the
// realtime fabric hands a queue from the polling engine to a blocking-poller
// thread only across a disable/enable + thread create/join boundary, and a
// sim shard's inbound queue is drained only by that shard's scheduler
// thread.
//
// Blocking: pop_wait() parks on a mutex/condvar only after publishing a
// sleeper flag and re-checking emptiness.  The producer's head exchange and
// the consumer's sleeper store are both seq_cst, so the classic Dekker
// argument rules out a lost wakeup: either the producer observes the
// sleeper flag (and notifies under the mutex), or the consumer's re-check
// observes the freshly exchanged head (and does not sleep).  No
// atomic_thread_fence is used anywhere -- ThreadSanitizer models seq_cst
// atomics exactly but historically ignores fences.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <utility>

namespace nexus::util {

template <typename T>
class MpscQueue {
 public:
  MpscQueue() {
    Node* stub = new Node();
    head_.store(stub, std::memory_order_relaxed);
    tail_ = stub;
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  ~MpscQueue() {
    Node* n = tail_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  /// Multi-producer enqueue: one allocation, one exchange, one store.
  void push(T item) {
    Node* node = new Node(std::move(item));
    // seq_cst exchange: publishes the node into the producers' total order
    // and anchors the Dekker pairing with the consumer's sleeper flag (see
    // header comment).  On x86 the RMW is a full barrier anyway.
    Node* prev = head_.exchange(node, std::memory_order_seq_cst);
    prev->next.store(node, std::memory_order_release);
    if (sleeping_.load(std::memory_order_seq_cst)) {
      // Rare path: the consumer is parked (or committing to park while
      // holding the mutex, in which case this lock waits it out).
      std::lock_guard<std::mutex> lock(mutex_);
      cv_.notify_one();
    }
  }

  /// Single-consumer non-blocking pop.
  std::optional<T> try_pop() {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) return std::nullopt;
    std::optional<T> item(std::move(next->value));
    tail_ = next;
    delete tail;
    return item;
  }

  /// Single-consumer blocking pop; returns nullopt once closed and drained.
  std::optional<T> pop_wait() {
    for (;;) {
      if (auto item = try_pop()) return item;
      std::unique_lock<std::mutex> lock(mutex_);
      sleeping_.store(true, std::memory_order_seq_cst);
      // Dekker re-check: a push whose exchange predates our flag store is
      // now visible through head_ (seq_cst on both sides); a later push
      // sees the flag and will notify under the mutex we hold.
      if (!empty() || closed_.load(std::memory_order_seq_cst)) {
        sleeping_.store(false, std::memory_order_seq_cst);
        if (empty() && closed_.load(std::memory_order_seq_cst)) {
          return std::nullopt;
        }
        continue;
      }
      cv_.wait(lock, [&] {
        return !empty() || closed_.load(std::memory_order_seq_cst);
      });
      sleeping_.store(false, std::memory_order_seq_cst);
    }
  }

  /// Consumer-side emptiness: exact for the single consumer.  head_ != tail_
  /// also covers a producer that has exchanged head_ but not yet linked
  /// next (the link lands momentarily; try_pop would transiently miss it).
  bool empty() const {
    return head_.load(std::memory_order_seq_cst) == tail_;
  }

  /// Wake the blocked consumer; subsequent pop_wait on an empty queue
  /// returns nullopt.  Items pushed after close are still delivered to
  /// try_pop/pop_wait until the queue drains.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_.store(true, std::memory_order_seq_cst);
    }
    cv_.notify_all();
  }

  bool closed() const { return closed_.load(std::memory_order_seq_cst); }

 private:
  struct Node {
    Node() = default;
    explicit Node(T v) : value(std::move(v)) {}
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  // Producers exchange head_; only the consumer reads tail_.  Separate
  // cache lines so the producers' RMW traffic does not bounce the
  // consumer's line.
  alignas(64) std::atomic<Node*> head_;
  alignas(64) Node* tail_;
  std::atomic<bool> sleeping_{false};
  std::atomic<bool> closed_{false};
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace nexus::util
