#include "util/pack.hpp"

namespace nexus::util {

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 14695981039346656037ull;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace nexus::util
