// XDR-like canonical (big-endian) pack/unpack buffers.
//
// Nexus must ship data between heterogeneous address spaces, so all
// descriptor tables, startpoints, and RSR payloads are serialized through a
// canonical encoding rather than memcpy'd.  The encoding is deliberately
// simple: fixed-width big-endian integers, IEEE-754 bit patterns for
// floating point, and length-prefixed strings/vectors.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/shared_bytes.hpp"

namespace nexus::util {

namespace detail {
inline std::uint64_t bswap64(std::uint64_t v) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_bswap64(v);
#else
  v = ((v & 0x00ff00ff00ff00ffull) << 8) | ((v >> 8) & 0x00ff00ff00ff00ffull);
  v = ((v & 0x0000ffff0000ffffull) << 16) |
      ((v >> 16) & 0x0000ffff0000ffffull);
  return (v << 32) | (v >> 32);
#endif
}

inline std::uint32_t bswap32(std::uint32_t v) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_bswap32(v);
#else
  v = ((v & 0x00ff00ffu) << 8) | ((v >> 8) & 0x00ff00ffu);
  return (v << 16) | (v >> 16);
#endif
}

/// Host value -> canonical big-endian bit pattern (and back: involution).
inline std::uint64_t to_be64(std::uint64_t v) noexcept {
  if constexpr (std::endian::native == std::endian::little) {
    return bswap64(v);
  } else {
    return v;
  }
}

inline std::uint32_t to_be32(std::uint32_t v) noexcept {
  if constexpr (std::endian::native == std::endian::little) {
    return bswap32(v);
  } else {
    return v;
  }
}
}  // namespace detail

/// Append-only serialization buffer.
class PackBuffer {
 public:
  PackBuffer() = default;
  explicit PackBuffer(std::size_t reserve) { data_.reserve(reserve); }

  void put_u8(std::uint8_t v) { data_.push_back(v); }
  void put_u16(std::uint16_t v) { put_be(v); }
  void put_u32(std::uint32_t v) { put_be(v); }
  void put_u64(std::uint64_t v) { put_be(v); }
  void put_i8(std::int8_t v) { put_u8(static_cast<std::uint8_t>(v)); }
  void put_i16(std::int16_t v) { put_u16(static_cast<std::uint16_t>(v)); }
  void put_i32(std::int32_t v) { put_u32(static_cast<std::uint32_t>(v)); }
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_f32(float v) { put_u32(std::bit_cast<std::uint32_t>(v)); }
  void put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

  void put_string(std::string_view s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    const auto* p = reinterpret_cast<const Byte*>(s.data());
    data_.insert(data_.end(), p, p + s.size());
  }

  void put_bytes(ByteSpan s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    data_.insert(data_.end(), s.begin(), s.end());
  }

  /// Raw append with no length prefix (caller knows the size).
  void put_raw(ByteSpan s) { data_.insert(data_.end(), s.begin(), s.end()); }

  /// Bulk variant of put_u32 + n * put_f64: one resize, then in-place
  /// big-endian encode.  Wire format is byte-identical to the per-element
  /// loop.
  template <typename T>
  void put_f64_vector(std::span<const T> v) {
    static_assert(std::is_floating_point_v<T>);
    put_u32(static_cast<std::uint32_t>(v.size()));
    const std::size_t base = data_.size();
    data_.resize(base + v.size() * sizeof(std::uint64_t));
    Byte* out = data_.data() + base;
    for (T x : v) {
      const std::uint64_t be = detail::to_be64(
          std::bit_cast<std::uint64_t>(static_cast<double>(x)));
      std::memcpy(out, &be, sizeof(be));
      out += sizeof(be);
    }
  }

  template <typename T>
  void put_f64_vector(const std::vector<T>& v) {
    put_f64_vector(std::span<const T>(v));
  }

  /// Bulk variant of put_u32 + n * put_u32, same wire format.
  void put_u32_vector(const std::vector<std::uint32_t>& v) {
    put_u32(static_cast<std::uint32_t>(v.size()));
    const std::size_t base = data_.size();
    data_.resize(base + v.size() * sizeof(std::uint32_t));
    Byte* out = data_.data() + base;
    for (std::uint32_t x : v) {
      const std::uint32_t be = detail::to_be32(x);
      std::memcpy(out, &be, sizeof(be));
      out += sizeof(be);
    }
  }

  const Bytes& bytes() const { return data_; }
  Bytes take() { return std::move(data_); }
  /// Move the accumulated bytes into an immutable shared buffer without
  /// copying them; the PackBuffer is left empty and reusable.
  SharedBytes release() { return SharedBytes(std::move(data_)); }
  std::size_t size() const { return data_.size(); }

 private:
  template <typename T>
  void put_be(T v) {
    for (int shift = (sizeof(T) - 1) * 8; shift >= 0; shift -= 8) {
      data_.push_back(static_cast<Byte>((v >> shift) & 0xff));
    }
  }

  Bytes data_;
};

/// Sequential deserialization view over a byte span.  Throws UnpackError on
/// truncation; never reads past the underlying span.
class UnpackBuffer {
 public:
  explicit UnpackBuffer(ByteSpan data) : data_(data) {}
  /// Constructing from a temporary Bytes would leave the buffer dangling as
  /// soon as the declaration ends; store the Bytes in a named variable.
  explicit UnpackBuffer(Bytes&&) = delete;

  std::uint8_t get_u8() { return take(1)[0]; }
  std::uint16_t get_u16() { return get_be<std::uint16_t>(); }
  std::uint32_t get_u32() { return get_be<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_be<std::uint64_t>(); }
  std::int8_t get_i8() { return static_cast<std::int8_t>(get_u8()); }
  std::int16_t get_i16() { return static_cast<std::int16_t>(get_u16()); }
  std::int32_t get_i32() { return static_cast<std::int32_t>(get_u32()); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  bool get_bool() { return get_u8() != 0; }
  float get_f32() { return std::bit_cast<float>(get_u32()); }
  double get_f64() { return std::bit_cast<double>(get_u64()); }

  std::string get_string() {
    std::uint32_t n = get_u32();
    ByteSpan s = take(n);
    return std::string(reinterpret_cast<const char*>(s.data()), s.size());
  }

  Bytes get_bytes() {
    std::uint32_t n = get_u32();
    ByteSpan s = take(n);
    return Bytes(s.begin(), s.end());
  }

  /// Zero-copy view of a length-prefixed byte field.
  ByteSpan get_bytes_view() {
    std::uint32_t n = get_u32();
    return take(n);
  }

  /// Bulk variant of get_u32 + n * get_f64: one bounds check and one
  /// allocation, then in-place big-endian decode.
  std::vector<double> get_f64_vector() {
    const std::uint32_t n = get_u32();
    ByteSpan s = take(static_cast<std::size_t>(n) * sizeof(std::uint64_t));
    std::vector<double> v(n);
    const Byte* in = s.data();
    for (std::uint32_t i = 0; i < n; ++i) {
      std::uint64_t be;
      std::memcpy(&be, in, sizeof(be));
      v[i] = std::bit_cast<double>(detail::to_be64(be));
      in += sizeof(be);
    }
    return v;
  }

  /// Decode a counted f64 field into caller-owned storage (no allocation);
  /// throws UnpackError if the wire count does not match out.size().
  void get_f64_vector_into(std::span<double> out) {
    const std::uint32_t n = get_u32();
    if (n != out.size()) {
      throw UnpackError("f64 vector count " + std::to_string(n) +
                        " does not match expected " +
                        std::to_string(out.size()));
    }
    ByteSpan s = take(static_cast<std::size_t>(n) * sizeof(std::uint64_t));
    const Byte* in = s.data();
    for (std::uint32_t i = 0; i < n; ++i) {
      std::uint64_t be;
      std::memcpy(&be, in, sizeof(be));
      out[i] = std::bit_cast<double>(detail::to_be64(be));
      in += sizeof(be);
    }
  }

  /// Bulk variant of get_u32 + n * get_u32.
  std::vector<std::uint32_t> get_u32_vector() {
    const std::uint32_t n = get_u32();
    ByteSpan s = take(static_cast<std::size_t>(n) * sizeof(std::uint32_t));
    std::vector<std::uint32_t> v(n);
    const Byte* in = s.data();
    for (std::uint32_t i = 0; i < n; ++i) {
      std::uint32_t be;
      std::memcpy(&be, in, sizeof(be));
      v[i] = detail::to_be32(be);
      in += sizeof(be);
    }
    return v;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool empty() const { return remaining() == 0; }

 private:
  ByteSpan take(std::size_t n) {
    if (pos_ + n > data_.size()) {
      throw UnpackError("truncated buffer (want " + std::to_string(n) +
                        " bytes, have " + std::to_string(remaining()) + ")");
    }
    ByteSpan s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  template <typename T>
  T get_be() {
    ByteSpan s = take(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>((v << 8) | s[i]);
    }
    return v;
  }

  ByteSpan data_;
  std::size_t pos_ = 0;
};

/// Stable 64-bit FNV-1a hash, used to turn handler names into wire ids.
std::uint64_t fnv1a(std::string_view s) noexcept;

}  // namespace nexus::util
