// XDR-like canonical (big-endian) pack/unpack buffers.
//
// Nexus must ship data between heterogeneous address spaces, so all
// descriptor tables, startpoints, and RSR payloads are serialized through a
// canonical encoding rather than memcpy'd.  The encoding is deliberately
// simple: fixed-width big-endian integers, IEEE-754 bit patterns for
// floating point, and length-prefixed strings/vectors.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace nexus::util {

/// Append-only serialization buffer.
class PackBuffer {
 public:
  PackBuffer() = default;
  explicit PackBuffer(std::size_t reserve) { data_.reserve(reserve); }

  void put_u8(std::uint8_t v) { data_.push_back(v); }
  void put_u16(std::uint16_t v) { put_be(v); }
  void put_u32(std::uint32_t v) { put_be(v); }
  void put_u64(std::uint64_t v) { put_be(v); }
  void put_i8(std::int8_t v) { put_u8(static_cast<std::uint8_t>(v)); }
  void put_i16(std::int16_t v) { put_u16(static_cast<std::uint16_t>(v)); }
  void put_i32(std::int32_t v) { put_u32(static_cast<std::uint32_t>(v)); }
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_f32(float v) { put_u32(std::bit_cast<std::uint32_t>(v)); }
  void put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

  void put_string(std::string_view s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    const auto* p = reinterpret_cast<const Byte*>(s.data());
    data_.insert(data_.end(), p, p + s.size());
  }

  void put_bytes(ByteSpan s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    data_.insert(data_.end(), s.begin(), s.end());
  }

  /// Raw append with no length prefix (caller knows the size).
  void put_raw(ByteSpan s) { data_.insert(data_.end(), s.begin(), s.end()); }

  template <typename T>
  void put_f64_vector(const std::vector<T>& v) {
    static_assert(std::is_floating_point_v<T>);
    put_u32(static_cast<std::uint32_t>(v.size()));
    for (T x : v) put_f64(static_cast<double>(x));
  }

  const Bytes& bytes() const { return data_; }
  Bytes take() { return std::move(data_); }
  std::size_t size() const { return data_.size(); }

 private:
  template <typename T>
  void put_be(T v) {
    for (int shift = (sizeof(T) - 1) * 8; shift >= 0; shift -= 8) {
      data_.push_back(static_cast<Byte>((v >> shift) & 0xff));
    }
  }

  Bytes data_;
};

/// Sequential deserialization view over a byte span.  Throws UnpackError on
/// truncation; never reads past the underlying span.
class UnpackBuffer {
 public:
  explicit UnpackBuffer(ByteSpan data) : data_(data) {}
  /// Constructing from a temporary Bytes would leave the buffer dangling as
  /// soon as the declaration ends; store the Bytes in a named variable.
  explicit UnpackBuffer(Bytes&&) = delete;

  std::uint8_t get_u8() { return take(1)[0]; }
  std::uint16_t get_u16() { return get_be<std::uint16_t>(); }
  std::uint32_t get_u32() { return get_be<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_be<std::uint64_t>(); }
  std::int8_t get_i8() { return static_cast<std::int8_t>(get_u8()); }
  std::int16_t get_i16() { return static_cast<std::int16_t>(get_u16()); }
  std::int32_t get_i32() { return static_cast<std::int32_t>(get_u32()); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  bool get_bool() { return get_u8() != 0; }
  float get_f32() { return std::bit_cast<float>(get_u32()); }
  double get_f64() { return std::bit_cast<double>(get_u64()); }

  std::string get_string() {
    std::uint32_t n = get_u32();
    ByteSpan s = take(n);
    return std::string(reinterpret_cast<const char*>(s.data()), s.size());
  }

  Bytes get_bytes() {
    std::uint32_t n = get_u32();
    ByteSpan s = take(n);
    return Bytes(s.begin(), s.end());
  }

  /// Zero-copy view of a length-prefixed byte field.
  ByteSpan get_bytes_view() {
    std::uint32_t n = get_u32();
    return take(n);
  }

  std::vector<double> get_f64_vector() {
    std::uint32_t n = get_u32();
    std::vector<double> v;
    v.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) v.push_back(get_f64());
    return v;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool empty() const { return remaining() == 0; }

 private:
  ByteSpan take(std::size_t n) {
    if (pos_ + n > data_.size()) {
      throw UnpackError("truncated buffer (want " + std::to_string(n) +
                        " bytes, have " + std::to_string(remaining()) + ")");
    }
    ByteSpan s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  template <typename T>
  T get_be() {
    ByteSpan s = take(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>((v << 8) | s[i]);
    }
    return v;
  }

  ByteSpan data_;
  std::size_t pos_ = 0;
};

/// Stable 64-bit FNV-1a hash, used to turn handler names into wire ids.
std::uint64_t fnv1a(std::string_view s) noexcept;

}  // namespace nexus::util
