// Thread-safe queues used by the realtime fabric.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace nexus::util {

/// Unbounded MPMC queue with optional blocking pop.  This backs the
/// realtime devices (shared-memory style mailboxes between context threads)
/// and the blocking-poller wakeup channel.
template <typename T>
class ConcurrentQueue {
 public:
  void push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Blocking pop; returns nullopt if the queue is closed and drained.
  std::optional<T> pop_wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  bool empty() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.empty();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  /// Wake all blocked poppers; subsequent pop_wait on an empty queue
  /// returns nullopt immediately.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace nexus::util
