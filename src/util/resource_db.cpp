#include "util/resource_db.hpp"

#include <cctype>
#include <charconv>

#include "util/error.hpp"

namespace nexus::util {

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

std::vector<std::string> split_list(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t end = s.find(delim, start);
    if (end == std::string_view::npos) end = s.size();
    std::string_view item = trim(s.substr(start, end - start));
    if (!item.empty()) out.emplace_back(item);
    start = end + 1;
  }
  return out;
}

void ResourceDb::set(std::string_view key, std::string_view value) {
  entries_[std::string(trim(key))] = std::string(trim(value));
}

bool ResourceDb::erase(std::string_view key) {
  auto it = entries_.find(trim(key));
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

bool ResourceDb::contains(std::string_view key) const {
  return entries_.find(trim(key)) != entries_.end();
}

std::optional<std::string> ResourceDb::get(std::string_view key) const {
  auto it = entries_.find(trim(key));
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string ResourceDb::get_string(std::string_view key,
                                   std::string_view dflt) const {
  auto v = get(key);
  return v ? *v : std::string(dflt);
}

std::int64_t ResourceDb::get_int(std::string_view key,
                                 std::int64_t dflt) const {
  auto v = get(key);
  if (!v) return dflt;
  std::int64_t out = 0;
  auto [p, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
  if (ec != std::errc{} || p != v->data() + v->size()) {
    throw ConfigError("key '" + std::string(key) + "' is not an integer: '" +
                      *v + "'");
  }
  return out;
}

double ResourceDb::get_double(std::string_view key, double dflt) const {
  auto v = get(key);
  if (!v) return dflt;
  try {
    std::size_t pos = 0;
    double out = std::stod(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing junk");
    return out;
  } catch (const std::exception&) {
    throw ConfigError("key '" + std::string(key) + "' is not a number: '" +
                      *v + "'");
  }
}

bool ResourceDb::get_bool(std::string_view key, bool dflt) const {
  auto v = get(key);
  if (!v) return dflt;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  throw ConfigError("key '" + std::string(key) + "' is not a boolean: '" +
                    *v + "'");
}

std::vector<std::string> ResourceDb::get_list(std::string_view key) const {
  auto v = get(key);
  if (!v) return {};
  return split_list(*v);
}

std::optional<std::string> ResourceDb::get_scoped(
    std::uint32_t context_id, std::string_view key) const {
  std::string scoped =
      "context." + std::to_string(context_id) + "." + std::string(key);
  if (auto v = get(scoped)) return v;
  return get(key);
}

std::int64_t ResourceDb::get_scoped_int(std::uint32_t context_id,
                                        std::string_view key,
                                        std::int64_t dflt) const {
  auto v = get_scoped(context_id, key);
  if (!v) return dflt;
  std::int64_t out = 0;
  auto [p, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
  if (ec != std::errc{} || p != v->data() + v->size()) {
    throw ConfigError("key '" + std::string(key) + "' is not an integer: '" +
                      *v + "'");
  }
  return out;
}

void ResourceDb::load_text(std::string_view text) {
  std::size_t start = 0;
  int lineno = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = trim(text.substr(start, end - start));
    ++lineno;
    start = end + 1;
    if (line.empty() || line.front() == '#') continue;
    std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      throw ConfigError("line " + std::to_string(lineno) +
                        ": expected 'key: value', got '" + std::string(line) +
                        "'");
    }
    set(line.substr(0, colon), line.substr(colon + 1));
  }
}

void ResourceDb::load_args(std::vector<std::string>& args) {
  std::vector<std::string> rest;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-nx" && i + 1 < args.size()) {
      const std::string& kv = args[i + 1];
      std::size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        throw ConfigError("-nx expects key=value, got '" + kv + "'");
      }
      set(std::string_view(kv).substr(0, eq),
          std::string_view(kv).substr(eq + 1));
      ++i;
    } else {
      rest.push_back(args[i]);
    }
  }
  args = std::move(rest);
}

std::vector<std::pair<std::string, std::string>> ResourceDb::entries() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(entries_.size());
  for (const auto& [k, v] : entries_) out.emplace_back(k, v);
  return out;
}

}  // namespace nexus::util
