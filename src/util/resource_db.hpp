// Resource database.
//
// The paper (§3.1) specifies that the set of communication modules and
// their parameters can be configured through "entries in a resource
// database, by command line arguments, or by function calls".  This class
// provides that database: a hierarchical string key/value store with typed
// accessors, populated from text (one `key: value` per line), from argv
// entries of the form `-nx key=value`, or programmatically.
//
// Keys are dotted paths, optionally scoped to a context id, e.g.:
//   nexus.modules:        local,mpl,tcp
//   tcp.skip_poll:        20
//   context.3.tcp.skip_poll: 100     (overrides for context 3 only)
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace nexus::util {

class ResourceDb {
 public:
  ResourceDb() = default;

  /// Set or overwrite an entry.
  void set(std::string_view key, std::string_view value);

  /// Remove an entry; returns true if it existed.
  bool erase(std::string_view key);

  bool contains(std::string_view key) const;

  /// Raw lookup.
  std::optional<std::string> get(std::string_view key) const;

  /// Typed lookups with defaults.  Throw ConfigError on unparsable values.
  std::string get_string(std::string_view key, std::string_view dflt) const;
  std::int64_t get_int(std::string_view key, std::int64_t dflt) const;
  double get_double(std::string_view key, double dflt) const;
  bool get_bool(std::string_view key, bool dflt) const;

  /// Comma-separated list lookup ("a,b,c" -> {"a","b","c"}); whitespace
  /// around items is trimmed; empty items are dropped.
  std::vector<std::string> get_list(std::string_view key) const;

  /// Context-scoped lookup: tries `context.<id>.<key>` first, then `<key>`.
  std::optional<std::string> get_scoped(std::uint32_t context_id,
                                        std::string_view key) const;
  std::int64_t get_scoped_int(std::uint32_t context_id, std::string_view key,
                              std::int64_t dflt) const;

  /// Parse `key: value` lines.  `#`-prefixed lines and blanks are ignored.
  /// Throws ConfigError on malformed lines.
  void load_text(std::string_view text);

  /// Consume argv-style options.  Recognizes `-nx key=value` pairs and
  /// removes them from `args`; everything else is left untouched.
  void load_args(std::vector<std::string>& args);

  /// Number of entries.
  std::size_t size() const { return entries_.size(); }

  /// Snapshot of all entries (sorted by key) for enquiry/debug output.
  std::vector<std::pair<std::string, std::string>> entries() const;

 private:
  std::map<std::string, std::string, std::less<>> entries_;
};

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view s) noexcept;

/// Split on a delimiter, trimming items and dropping empties.
std::vector<std::string> split_list(std::string_view s, char delim = ',');

}  // namespace nexus::util
