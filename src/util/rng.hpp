// Small deterministic PRNGs for workload generation and drop models.
//
// Benchmarks and tests need bit-reproducible randomness independent of the
// standard library implementation, so we carry our own splitmix64 /
// xoshiro256** pair.
#pragma once

#include <cstdint>

namespace nexus::util {

/// splitmix64: used for seeding and quick hashes.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality 64-bit generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x6e657875736d6d63ull) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n).
  std::uint64_t next_below(std::uint64_t n) noexcept {
    return n == 0 ? 0 : next() % n;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace nexus::util
