// Immutable, reference-counted payload buffers.
//
// A SharedBytes is a read-only view (pointer + length) into a heap buffer
// kept alive by a shared_ptr control block.  Copying one is two atomic ops;
// the bytes themselves are never duplicated.  This is what makes the RSR
// data path zero-copy: every link of a multicast, every forwarding hop, and
// every mailbox entry aliases the single buffer the sender produced.
//
// Immutability is the contract that keeps contexts logically isolated while
// sharing storage: no API hands out a mutable pointer, so a receiver can
// only "modify" a payload by copying it first (UnpackBuffer::get_bytes), and
// transform modules (secure/zrle) replace the whole buffer rather than
// editing in place.  See docs/ARCHITECTURE.md §8.
//
// Memory-order contract (docs/ARCHITECTURE.md §13): the refcount lives in
// the shared_ptr control block, whose standard-library implementation gives
// exactly the ordering a cross-thread payload handoff needs --
//
//   * increments (copying a SharedBytes) are relaxed: creating a new
//     reference needs no ordering of its own because the copier already
//     holds a live reference, so the count cannot hit zero concurrently;
//   * decrements (dropping one) are acq_rel: every release makes the
//     dropping thread's reads of the buffer visible-before the count can
//     reach zero, and the final decrement acquires all of them before the
//     destructor frees the block.  No thread can observe the buffer after
//     free, and no write to the control block is lost.
//
// Consequently a Packet whose payload crosses a shard boundary through the
// MPSC router can be released by sender and receiver in any interleaving:
// the last owner -- whichever thread that is -- frees the buffer exactly
// once.  tests/test_shared_bytes.cpp (SharedBytesMt suite) stress-verifies
// this under ThreadSanitizer: concurrent copy/view/drop storms across
// threads, with the payload bytes re-verified on every side.  The class
// itself stays free of explicit atomics by design; if data_ is ever
// replaced with a hand-rolled refcount, it must reproduce the
// relaxed-increment / acq_rel-decrement discipline above.
#pragma once

#include <cstring>
#include <memory>
#include <utility>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace nexus::util {

class SharedBytes {
 public:
  SharedBytes() = default;

  /// Adopt a Bytes buffer without copying its contents (the vector's heap
  /// block is reused; one control-block allocation keeps it alive).
  /// Implicit so legacy `packet.payload = some_bytes` assignments keep
  /// working.
  SharedBytes(Bytes b) {  // NOLINT(google-explicit-constructor)
    if (b.empty()) return;
    auto owner = std::make_shared<Bytes>(std::move(b));
    const Byte* p = owner->data();
    size_ = owner->size();
    data_ = std::shared_ptr<const Byte>(std::move(owner), p);
  }

  /// Copy `src` into a fresh immutable buffer: exactly one allocation.
  static SharedBytes copy_of(ByteSpan src) {
    SharedBytes out;
    if (src.empty()) return out;
#if defined(__cpp_lib_smart_ptr_for_overwrite)
    std::shared_ptr<Byte[]> buf =
        std::make_shared_for_overwrite<Byte[]>(src.size());
#else
    std::shared_ptr<Byte[]> buf = std::make_shared<Byte[]>(src.size());
#endif
    std::memcpy(buf.get(), src.data(), src.size());
    const Byte* p = buf.get();
    out.size_ = src.size();
    out.data_ = std::shared_ptr<const Byte>(std::move(buf), p);
    return out;
  }

  const Byte* data() const noexcept { return data_.get(); }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  const Byte& operator[](std::size_t i) const { return data_.get()[i]; }

  /// Read-only span over the bytes.  Deliberately not an implicit
  /// conversion: a span must not outlive the SharedBytes it came from, and
  /// explicit call sites keep that lifetime visible.
  ByteSpan span() const noexcept { return ByteSpan(data_.get(), size_); }

  /// Aliasing sub-view [offset, offset + length): shares the same buffer,
  /// no copy.  Throws UsageError if the range is out of bounds.
  SharedBytes view(std::size_t offset, std::size_t length) const {
    if (offset + length > size_) {
      throw UsageError("SharedBytes::view out of range");
    }
    SharedBytes out;
    if (length == 0) return out;
    out.data_ = std::shared_ptr<const Byte>(data_, data_.get() + offset);
    out.size_ = length;
    return out;
  }

  /// Mutable copy of the contents (the only way to get writable bytes).
  Bytes to_bytes() const { return Bytes(data(), data() + size()); }

  /// True when both views alias the same underlying control block (test and
  /// assertion helper; not part of the wire contract).
  bool aliases(const SharedBytes& other) const noexcept {
    return data_ != nullptr && !data_.owner_before(other.data_) &&
           !other.data_.owner_before(data_);
  }

  /// Outstanding references to the underlying buffer (0 when empty).
  long use_count() const noexcept { return data_.use_count(); }

  friend bool operator==(const SharedBytes& a, const SharedBytes& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data(), b.data(), a.size_) == 0);
  }

 private:
  std::shared_ptr<const Byte> data_;
  std::size_t size_ = 0;
};

}  // namespace nexus::util
