#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace nexus::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& o) noexcept {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double delta = o.mean_ - mean_;
  const auto n = static_cast<double>(n_ + o.n_);
  m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                     static_cast<double>(o.n_) / n;
  mean_ = (mean_ * static_cast<double>(n_) +
           o.mean_ * static_cast<double>(o.n_)) /
          n;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  sum_ += o.sum_;
  n_ += o.n_;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void DecayingEwma::add(double x, double t) noexcept {
  if (n_ == 0) {
    mean_ = x;  // seed exactly: no warm-up bias towards zero
  } else {
    mean_ += alpha_ * (x - mean_);
  }
  weight_ += alpha_ * (1.0 - weight_);
  last_ = t;
  ++n_;
}

void DecayingEwma::reset() noexcept {
  const double a = alpha_;
  const double h = half_life_;
  *this = DecayingEwma(a, h);
}

double DecayingEwma::confidence(double t) const noexcept {
  if (n_ == 0) return 0.0;
  if (half_life_ <= 0.0) return weight_;
  const double dt = t > last_ ? t - last_ : 0.0;
  return weight_ * std::exp2(-dt / half_life_);
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) throw std::out_of_range("percentile of empty set");
  // The negated comparison also rejects NaN.
  if (!(p >= 0.0 && p <= 100.0)) {
    throw std::invalid_argument("percentile: p must be in [0, 100]");
  }
  ensure_sorted();
  // Linear interpolation between closest ranks: the target rank is
  // p/100 * (n-1); p=0 is the minimum, p=100 the maximum, and a
  // single-sample set returns that sample for every p.
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double SampleSet::min() const {
  if (samples_.empty()) throw std::out_of_range("min of empty set");
  ensure_sorted();
  return samples_.front();
}

double SampleSet::max() const {
  if (samples_.empty()) throw std::out_of_range("max of empty set");
  ensure_sorted();
  return samples_.back();
}

std::string fmt_fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace nexus::util
