// Streaming statistics and simple fixed-bin histograms.
//
// Used by the benchmark harnesses to report means/percentiles of one-way
// times and by the runtime's enquiry interface to expose per-method traffic
// counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace nexus::util {

/// Welford-style running mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Retains all samples; exact percentiles.  Fine for benchmark-scale counts.
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  std::size_t count() const noexcept { return samples_.size(); }
  double mean() const noexcept;
  /// Exact percentile with linear interpolation between closest ranks
  /// (target rank = p/100 * (count-1)): percentile(0) is the minimum,
  /// percentile(100) the maximum, and a single-sample set returns that
  /// sample for every p.  Throws std::out_of_range on an empty set and
  /// std::invalid_argument when p is outside [0, 100] (including NaN).
  double percentile(double p) const;
  double min() const;
  double max() const;
  void reset() { samples_.clear(); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Exponentially-weighted moving average with confidence/staleness decay.
///
/// The adaptive cost model (src/nexus/adapt/) uses one of these per
/// estimated quantity: `add(x, t)` folds a sample in with weight `alpha`
/// (the first sample seeds the mean exactly), and `confidence(t)` reports
/// how much the estimate should be trusted *right now* -- it rises towards
/// 1 as samples accumulate (by the same alpha schedule) and halves for
/// every `half_life` of virtual time since the last sample, so estimates
/// go stale instead of lying forever.  Time is whatever unit the caller
/// feeds in (the runtime uses virtual nanoseconds); there is no wall-clock
/// dependence, which keeps every consumer replayable.
class DecayingEwma {
 public:
  /// `alpha` in (0, 1]: weight of each new sample.  `half_life` <= 0
  /// disables staleness decay (confidence then depends on sample count
  /// only).
  explicit DecayingEwma(double alpha = 0.25, double half_life = 0.0) noexcept
      : alpha_(alpha), half_life_(half_life) {}

  void add(double x, double t) noexcept;
  void reset() noexcept;

  bool empty() const noexcept { return n_ == 0; }
  std::size_t count() const noexcept { return n_; }
  /// Current EWMA mean; 0 when no samples have been added.
  double value() const noexcept { return mean_; }
  /// Trust in value() at virtual time `t`, in [0, 1].  Before any sample:
  /// 0.  After n samples: 1-(1-alpha)^n, decayed by 2^-(dt/half_life)
  /// where dt is the time since the last sample (clamped at 0, so an
  /// out-of-order query never *raises* confidence).
  double confidence(double t) const noexcept;
  /// Virtual time of the most recent sample (0 when empty).
  double last_update() const noexcept { return last_; }

 private:
  double alpha_;
  double half_life_;
  double mean_ = 0.0;
  double weight_ = 0.0;  ///< 1-(1-alpha)^n, the undecayed confidence
  double last_ = 0.0;
  std::size_t n_ = 0;
};

/// Monotonically-labelled counter bundle used for enquiry functions.
struct MethodCounters {
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t polls = 0;
  std::uint64_t poll_hits = 0;  ///< polls that found at least one message
  std::uint64_t send_errors = 0;   ///< sends that failed (transient or dead)
  std::uint64_t recv_corrupt = 0;  ///< received packets quarantined for
                                   ///< integrity failure (never dispatched)
  // Reliability-wrapper protocol counters (zero for plain transports).
  std::uint64_t rel_retransmits = 0;    ///< window entries resent on timeout
  std::uint64_t rel_dup_drops = 0;      ///< duplicate Data frames suppressed
  std::uint64_t rel_acks_sent = 0;      ///< standalone Ack frames emitted
  std::uint64_t rel_acks_received = 0;  ///< standalone Ack frames consumed
  std::uint64_t rel_epoch_rejects = 0;  ///< stale-incarnation Data frames and
                                        ///< ghost acks rejected

  void merge(const MethodCounters& o) noexcept {
    sends += o.sends;
    recvs += o.recvs;
    bytes_sent += o.bytes_sent;
    bytes_received += o.bytes_received;
    polls += o.polls;
    poll_hits += o.poll_hits;
    send_errors += o.send_errors;
    recv_corrupt += o.recv_corrupt;
    rel_retransmits += o.rel_retransmits;
    rel_dup_drops += o.rel_dup_drops;
    rel_acks_sent += o.rel_acks_sent;
    rel_acks_received += o.rel_acks_received;
    rel_epoch_rejects += o.rel_epoch_rejects;
  }
};

/// Format a double with fixed precision (helper for table printing).
std::string fmt_fixed(double v, int precision);

}  // namespace nexus::util
