// Shared runtime-construction boilerplate for the Nexus test suites.
//
// Every suite that spins up a Runtime used to re-declare the same three
// helpers (an options builder, an MPMD wrapper, a counting handler); they
// live here now so the chaos/failover suites and the long-standing core
// suites agree on one idiom.  Deterministic randomized suites derive their
// seeds from test_seed(), which the CI chaos job varies via the
// NEXUS_TEST_SEED environment variable.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "nexus/runtime.hpp"

namespace nexus::testing {

/// RuntimeOptions with a module set and topology (simulated fabric).
inline RuntimeOptions opts_with(std::vector<std::string> modules,
                                simnet::Topology topo) {
  RuntimeOptions opts;
  opts.topology = std::move(topo);
  opts.modules = std::move(modules);
  return opts;
}

/// Same, with the paper's default module set and arguments in the order the
/// integration suites historically used.
inline RuntimeOptions sim_opts(simnet::Topology topo,
                               std::vector<std::string> modules = {
                                   "local", "mpl", "tcp"}) {
  RuntimeOptions opts = opts_with(std::move(modules), std::move(topo));
  opts.fabric = RuntimeOptions::Fabric::Simulated;
  return opts;
}

/// MPMD helper: run one function per context.
inline void run_mpmd(Runtime& rt,
                     std::vector<std::function<void(Context&)>> fns) {
  rt.run(std::move(fns));
}

/// Register a handler that does nothing but bump `counter` (the standard
/// wait_count() idiom).  The counter must outlive the run.
inline void register_counter(Context& ctx, std::string_view name,
                             std::uint64_t& counter) {
  ctx.register_handler(name,
                       [&counter](Context&, Endpoint&, util::UnpackBuffer&) {
                         ++counter;
                       });
}

/// Base seed for randomized suites: NEXUS_TEST_SEED when set and non-zero
/// (the CI chaos job runs the fault/failover suites under ten distinct
/// values), 1 otherwise.  Every trial must derive deterministically from it.
inline std::uint64_t test_seed() {
  if (const char* env = std::getenv("NEXUS_TEST_SEED")) {
    const unsigned long long v = std::strtoull(env, nullptr, 10);
    if (v != 0) return static_cast<std::uint64_t>(v);
  }
  return 1;
}

/// Chaos-run options: like opts_with, but seeded from test_seed() so the
/// CI chaos job varies the stochastic models via NEXUS_TEST_SEED.
inline RuntimeOptions chaos_opts(std::vector<std::string> modules,
                                 simnet::Topology topo) {
  RuntimeOptions opts = opts_with(std::move(modules), std::move(topo));
  opts.seed = test_seed();
  return opts;
}

/// Distinct nonzero trace ids among the tracer's retained events, in first
/// -appearance order (the causal-propagation suites assert on these).
inline std::vector<std::uint64_t> trace_ids(Runtime& rt) {
  std::vector<std::uint64_t> out;
  for (const auto& ev : rt.telemetry().tracer().events()) {
    if (ev.trace != 0 &&
        std::find(out.begin(), out.end(), ev.trace) == out.end()) {
      out.push_back(ev.trace);
    }
  }
  return out;
}

/// Retained tracer events carrying `trace`, in recording order.
inline std::vector<telemetry::Event> events_of_trace(Runtime& rt,
                                                     std::uint64_t trace) {
  std::vector<telemetry::Event> out;
  for (const auto& ev : rt.telemetry().tracer().events()) {
    if (ev.trace == trace) out.push_back(ev);
  }
  return out;
}

}  // namespace nexus::testing
