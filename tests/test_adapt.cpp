// Adaptive transport engine (docs/ARCHITECTURE.md §11): online cost model,
// payload-aware crossover selection, live table reranking, and the enquiry
// integration.  Unit tests feed the model synthetically; the integration
// tests drive a two-method ping-pong workload and check the acceptance
// criteria of the subsystem (>=90% of small RSRs on the latency-optimal
// method and >=90% of large RSRs on the bandwidth-optimal one after
// warm-up, bounded method switches under injected delay noise, and model
// rows in explain_selection).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "fixture_runtime.hpp"
#include "nexus/adapt/adaptive_selector.hpp"
#include "nexus/adapt/cost_model.hpp"
#include "nexus/runtime.hpp"
#include "nexus/telemetry/selection_report.hpp"

namespace {

using namespace nexus;
using nexus::testing::sim_opts;
using simnet::kMs;
using simnet::kUs;

// ----------------------------------------------------------------------
// CostModel unit tests (no runtime needed; all times synthetic).

TEST(CostModel, UnknownWithoutSamples) {
  adapt::CostModel m;
  const auto est = m.estimate(method_hash("tcp"), 0, 0);
  EXPECT_FALSE(est.known);
  EXPECT_FALSE(m.predict_ns(method_hash("tcp"), 0, 64, 0).has_value());
  EXPECT_EQ(m.samples(), 0u);
}

TEST(CostModel, SmallPacketsFeedLatency) {
  adapt::CostModel m;
  const std::uint64_t h = method_hash("tcp");
  for (int i = 0; i < 10; ++i) m.observe(h, 0, 64, 150 * kUs, i * kMs);
  const auto est = m.estimate(h, 0, 10 * kMs);
  EXPECT_TRUE(est.known);
  EXPECT_NEAR(est.latency_ns, 150.0e3, 1.0);
  EXPECT_EQ(est.bandwidth_mb_s, 0.0);  // unmeasured
  // Prediction falls back to the default bandwidth for the size term.
  const auto p = m.predict_ns(h, 0, 10000, 10 * kMs);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(*p, 150.0e3 + 10000.0 * 1.0e3 / m.params().default_mb_s, 1.0);
}

TEST(CostModel, LargePacketsFeedBandwidthOnceLatencyIsKnown) {
  adapt::CostModel m;
  const std::uint64_t h = method_hash("mpl");
  // Latency first (small packets), then large transfers at 200 MB/s:
  // oneway = latency + bytes/bw.
  for (int i = 0; i < 10; ++i) m.observe(h, 3, 64, 2500 * kUs, i * kMs);
  const std::uint64_t big = 1 << 16;
  const Time transfer = static_cast<Time>(big * 1.0e3 / 200.0);
  for (int i = 10; i < 20; ++i) {
    m.observe(h, 3, big, 2500 * kUs + transfer, i * kMs);
  }
  const auto est = m.estimate(h, 3, 20 * kMs);
  ASSERT_TRUE(est.known);
  EXPECT_NEAR(est.bandwidth_mb_s, 200.0, 10.0);
  const auto p = m.predict_ns(h, 3, big, 20 * kMs);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(*p, 2500.0e3 + big * 1.0e3 / est.bandwidth_mb_s, 1.0e3);
}

TEST(CostModel, ObserveRttRecordsHalfTheRoundTrip) {
  adapt::CostModel m;
  const std::uint64_t h = method_hash("rel+udp");
  for (int i = 0; i < 5; ++i) m.observe_rtt(h, 1, 100, 3 * kMs, i * kMs);
  const auto est = m.estimate(h, 1, 5 * kMs);
  ASSERT_TRUE(est.known);
  EXPECT_NEAR(est.latency_ns, 1.5e6, 1.0);
}

TEST(CostModel, StalenessDecaysEstimateBackToUnknown) {
  adapt::CostModelParams p;
  p.half_life = 100 * kMs;
  adapt::CostModel m(p);
  const std::uint64_t h = method_hash("tcp");
  for (int i = 0; i < 10; ++i) m.observe(h, 0, 64, 200 * kUs, i * kMs);
  EXPECT_TRUE(m.estimate(h, 0, 10 * kMs).known);
  // ~7 half-lives of silence: confidence < 1%, below min_confidence.
  EXPECT_FALSE(m.estimate(h, 0, 710 * kMs).known);
  EXPECT_FALSE(m.predict_ns(h, 0, 64, 710 * kMs).has_value());
  // One fresh sample revives it.
  m.observe(h, 0, 64, 210 * kUs, 710 * kMs);
  EXPECT_TRUE(m.estimate(h, 0, 710 * kMs).known);
}

TEST(CostModel, EchoSlotParksLatestAndEmptiesOnTake) {
  adapt::CostModel m;
  EXPECT_FALSE(m.take_echo(4).has_value());
  m.note_incoming(method_hash("tcp"), 4, 100, 1 * kMs);
  m.note_incoming(method_hash("mpl"), 4, 200, 2 * kMs);  // overwrites
  const auto e = m.take_echo(4);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->method, method_hash("mpl"));
  EXPECT_EQ(e->bytes, 200u);
  EXPECT_EQ(e->oneway_ns, 2 * kMs);
  EXPECT_FALSE(m.take_echo(4).has_value());  // slot emptied
}

// ----------------------------------------------------------------------
// AdaptiveSelector policy tests: synthetic model feed inside a runtime.

/// Feed `n` latency samples for (method -> peer) into ctx's model, spaced
/// 1 ms apart ending at ctx.now().
void feed_latency(Context& ctx, const char* method, ContextId peer,
                  Time latency, int n = 12) {
  const std::uint64_t h = method_hash(method);
  for (int i = 0; i < n; ++i) {
    const Time t = ctx.now() - (n - 1 - i) * kMs;
    ctx.cost_model().observe(h, peer, 64, latency, t);
  }
}

/// Feed bandwidth samples (large packets at `mb_s`, on top of an existing
/// latency estimate).
void feed_bandwidth(Context& ctx, const char* method, ContextId peer,
                    double mb_s, int n = 12) {
  const std::uint64_t h = method_hash(method);
  const auto est = ctx.cost_model().estimate(h, peer, ctx.now());
  ASSERT_TRUE(est.known) << "feed latency before bandwidth";
  const std::uint64_t big = 1 << 16;
  const Time oneway = static_cast<Time>(est.latency_ns + big * 1.0e3 / mb_s);
  for (int i = 0; i < n; ++i) {
    const Time t = ctx.now() - (n - 1 - i) * kMs;
    ctx.cost_model().observe(h, peer, big, oneway, t);
  }
}

TEST(AdaptiveSelector, StaticTableOrderFallbackUntilModeled) {
  Runtime rt(sim_opts(simnet::Topology::single_partition(2)));
  rt.run([&](Context& ctx) {
    if (ctx.id() != 1) return;
    adapt::AdaptiveParams p;
    p.probe_interval = 0;  // no prober: pure policy test
    adapt::AdaptiveSelector sel(p);
    FirstApplicableSelector first;
    const DescriptorTable& table = ctx.runtime().table_of(0);
    std::string ra, rb;
    const auto a = sel.select(table, ctx, ra);
    const auto b = first.select(table, ctx, rb);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a, b);  // mirrors the paper's ordered scan until data exists
    EXPECT_NE(ra.find("static table-order fallback"), std::string::npos)
        << ra;
  });
}

TEST(AdaptiveSelector, CrossoverRoutesSmallAndLargePayloadsDifferently) {
  Runtime rt(sim_opts(simnet::Topology::single_partition(2)));
  rt.run([&](Context& ctx) {
    if (ctx.id() != 1) return;
    ctx.compute(100 * kMs);  // nonzero clock for sample timestamps
    // tcp: 150 us / 8 MB/s.  mpl: 2.5 ms / 200 MB/s.  Crossover ~20 KB.
    feed_latency(ctx, "tcp", 0, 150 * kUs);
    feed_bandwidth(ctx, "tcp", 0, 8.0);
    feed_latency(ctx, "mpl", 0, 2500 * kUs);
    feed_bandwidth(ctx, "mpl", 0, 200.0);

    adapt::AdaptiveParams p;
    p.probe_interval = 0;
    adapt::AdaptiveSelector sel(p);
    const DescriptorTable& table = ctx.runtime().table_of(0);
    std::string reason;
    const auto small = sel.select_sized(table, ctx, 64, reason);
    ASSERT_TRUE(small.has_value());
    EXPECT_EQ(table.at(*small).method, "tcp");
    EXPECT_NE(reason.find("crossover at"), std::string::npos) << reason;
    EXPECT_NE(reason.find("'tcp'"), std::string::npos) << reason;
    EXPECT_NE(reason.find("'mpl'"), std::string::npos) << reason;

    const auto large = sel.select_sized(table, ctx, 1 << 16, reason);
    ASSERT_TRUE(large.has_value());
    EXPECT_EQ(table.at(*large).method, "mpl");

    EXPECT_EQ(sel.dwell_state(0, "tcp"), "held-small");
    EXPECT_EQ(sel.dwell_state(0, "mpl"), "held-large");
  });
}

TEST(AdaptiveSelector, PeekIsSideEffectFree) {
  Runtime rt(sim_opts(simnet::Topology::single_partition(2)));
  rt.run([&](Context& ctx) {
    if (ctx.id() != 1) return;
    ctx.compute(100 * kMs);
    feed_latency(ctx, "tcp", 0, 150 * kUs);
    feed_latency(ctx, "mpl", 0, 2500 * kUs);
    adapt::AdaptiveSelector sel;  // default params: prober enabled
    const DescriptorTable& table = ctx.runtime().table_of(0);
    std::string reason;
    const auto p1 = sel.peek(table, ctx, reason);
    EXPECT_FALSE(reason.empty());  // peek always explains itself
    const auto p2 = sel.peek(table, ctx, reason);
    EXPECT_EQ(p1, p2);
    // No dwell state created, no probes fired, no switches counted.
    EXPECT_EQ(sel.dwell_state(0, "tcp"), "candidate");
    EXPECT_EQ(sel.probes(), 0u);
    EXPECT_EQ(sel.switches(), 0u);
    // And peek previews exactly what select() then decides.
    const auto s = sel.select(table, ctx, reason);
    EXPECT_EQ(p1, s);
  });
}

TEST(AdaptiveSelector, HysteresisHoldsIncumbentAgainstSmallImprovements) {
  Runtime rt(sim_opts(simnet::Topology::single_partition(2)));
  rt.run([&](Context& ctx) {
    if (ctx.id() != 1) return;
    ctx.compute(100 * kMs);
    adapt::AdaptiveParams p;
    p.probe_interval = 0;
    p.min_dwell = 1 * kMs;  // short dwell so the test drives re-evaluations
    adapt::AdaptiveSelector sel(p);
    const DescriptorTable& table = ctx.runtime().table_of(0);
    std::string reason;

    feed_latency(ctx, "mpl", 0, 1000 * kUs);
    auto idx = sel.select_sized(table, ctx, 64, reason);
    ASSERT_TRUE(idx.has_value());
    ASSERT_EQ(table.at(*idx).method, "mpl");

    // A 10% better challenger (< improve_frac 15%): the incumbent holds.
    feed_latency(ctx, "tcp", 0, 900 * kUs);
    ctx.compute(2 * kMs);  // past the dwell -> re-evaluates
    idx = sel.select_sized(table, ctx, 64, reason);
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(table.at(*idx).method, "mpl");
    EXPECT_EQ(sel.switches(), 0u);

    // A 60% better challenger unseats it.
    feed_latency(ctx, "tcp", 0, 400 * kUs, 30);
    ctx.compute(2 * kMs);
    idx = sel.select_sized(table, ctx, 64, reason);
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(table.at(*idx).method, "tcp");
    EXPECT_EQ(sel.switches(), 1u);
  });
}

// ----------------------------------------------------------------------
// Live table reranking.

TEST(AdaptEngine, RerankReordersLiveTableByModeledCost) {
  Runtime rt(sim_opts(simnet::Topology::single_partition(2)));
  rt.run([&](Context& ctx) {
    std::uint64_t done = 0;
    nexus::testing::register_counter(ctx, "noop", done);
    if (ctx.id() != 1) {
      ctx.wait_count(done, 1);
      return;
    }
    ctx.compute(100 * kMs);
    // Model says tcp beats mpl at the rerank reference size.
    feed_latency(ctx, "tcp", 0, 100 * kUs);
    feed_latency(ctx, "mpl", 0, 2000 * kUs);

    Startpoint sp = ctx.world_startpoint(0);
    ASSERT_EQ(sp.table().at(0).method, "local");  // static fastest-first
    EXPECT_TRUE(ctx.rerank(sp));
    // Modeled entries lead, measured-fastest first; unmodeled (local) sinks
    // to the back preserving relative order.
    EXPECT_EQ(sp.table().at(0).method, "tcp");
    EXPECT_EQ(sp.table().at(1).method, "mpl");
    EXPECT_EQ(sp.table().at(2).method, "local");
    // Idempotent: already in modeled order.
    EXPECT_FALSE(ctx.rerank(sp));
    // The default first-applicable policy now benefits from the new order.
    ctx.rsr(sp, "noop");
    EXPECT_EQ(sp.selected_method(), "tcp");
    // The rerank left an enquiry trail.
    bool logged = false;
    for (const auto& rec : ctx.selection_log()) {
      if (rec.reason.find("adapt.rerank") != std::string::npos) logged = true;
    }
    EXPECT_TRUE(logged);
  });
}

TEST(AdaptEngine, RerankIsANoOpWithoutModelData) {
  Runtime rt(sim_opts(simnet::Topology::single_partition(2)));
  rt.run([&](Context& ctx) {
    if (ctx.id() != 1) return;
    Startpoint sp = ctx.world_startpoint(0);
    const DescriptorTable before = sp.table();
    EXPECT_FALSE(ctx.rerank(sp));  // nothing modeled: tables untouched
    EXPECT_EQ(sp.table(), before);
  });
}

// ----------------------------------------------------------------------
// Passive measurement feeds.

TEST(AdaptEngine, ReliableLayerRttFeedsTheCostModel) {
  RuntimeOptions opts = sim_opts(simnet::Topology::single_partition(2),
                                 {"local", "rel+udp", "tcp"});
  opts.adaptive = true;
  opts.costs.udp_drop_prob = 0.0;
  // Ack-RTT samples compare timestamps from both contexts' clocks, which
  // only agree single-shard (docs/ARCHITECTURE.md §13).
  opts.threads = 1;
  Runtime rt(opts);
  rt.run([&](Context& ctx) {
    std::uint64_t done = 0;
    nexus::testing::register_counter(ctx, "noop", done);
    if (ctx.id() != 1) {
      ctx.wait_count(done, 5);
      return;
    }
    Startpoint sp = ctx.world_startpoint(0);
    for (int i = 0; i < 5; ++i) {
      ctx.rsr(sp, "noop");
      ctx.compute_with_polling(5 * kMs, 100 * kUs);  // let acks flow back
    }
    ASSERT_EQ(sp.selected_method(), "rel+udp");
    const auto est =
        ctx.cost_model().estimate(method_hash("rel+udp"), 0, ctx.now());
    EXPECT_TRUE(est.known) << "ack RTTs should have fed the model";
    EXPECT_GT(est.latency_ns, 0.0);
  });
}

TEST(AdaptEngine, TimingEchoFeedsSenderModelForRawMethods) {
  RuntimeOptions opts = sim_opts(simnet::Topology::single_partition(2));
  opts.adaptive = true;
  // A timing-echo latency sample is recv-time minus send-time taken from the
  // two contexts' clocks; the bound below holds only when both share one
  // virtual clock (docs/ARCHITECTURE.md section 13.4).
  opts.threads = 1;
  Runtime rt(opts);
  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {  // responder: pong each ping so echoes ride back
        std::uint64_t pings = 0;
        Startpoint back = ctx.world_startpoint(1);
        ctx.register_handler("ping",
                             [&](Context& c, Endpoint&, util::UnpackBuffer&) {
                               ++pings;
                               c.rsr(back, "pong");
                             });
        ctx.wait_count(pings, 5);
      },
      [&](Context& ctx) {  // driver
        std::uint64_t pongs = 0;
        nexus::testing::register_counter(ctx, "pong", pongs);
        Startpoint sp = ctx.world_startpoint(0);
        for (std::uint64_t i = 1; i <= 5; ++i) {
          ctx.rsr(sp, "ping");
          ctx.wait_count(pongs, i);
        }
        ASSERT_EQ(sp.selected_method(), "mpl");
        const auto est =
            ctx.cost_model().estimate(method_hash("mpl"), 0, ctx.now());
        EXPECT_TRUE(est.known)
            << "echoes on the pong traffic should have fed the model";
        // The sample is a real one-way time: at least the configured wire
        // latency, far below a round trip.
        EXPECT_GE(est.latency_ns,
                  static_cast<double>(ctx.costs().mpl_latency));
      }});
}

// ----------------------------------------------------------------------
// End-to-end two-method scenario (the subsystem's acceptance criteria).

struct ScenarioOutcome {
  int small_total = 0, small_on_tcp = 0;
  int large_total = 0, large_on_mpl = 0;
  std::uint64_t switches = 0;
  telemetry::SelectionReport report;
};

/// tcp = low latency / low bandwidth; mpl = high setup / high bandwidth.
RuntimeOptions two_method_opts() {
  RuntimeOptions opts = sim_opts(simnet::Topology::single_partition(2));
  opts.adaptive = true;
  // The crossover/hysteresis/switch-count assertions below depend on the
  // cost model learning the *configured* constants from timing echoes, and
  // an echo's one-way latency subtracts timestamps drawn from both
  // contexts' clocks -- only meaningful on the shared single-shard clock
  // (docs/ARCHITECTURE.md section 13.4).
  opts.threads = 1;
  opts.costs.tcp_latency = 150 * kUs;
  opts.costs.tcp_poll_cost = 20 * kUs;
  opts.costs.tcp_mb_s = 8.0;
  opts.costs.tcp_interference = 0;
  opts.costs.mpl_latency = 2500 * kUs;
  opts.costs.mpl_mb_s = 200.0;
  return opts;
}

/// Ping-pong workload alternating 64 B and 64 KB payloads; the pong reply
/// is what carries timing echoes back to the driver's cost model.
ScenarioOutcome run_two_method_scenario(RuntimeOptions opts, int warmup,
                                        int measure) {
  ScenarioOutcome out;
  const std::uint64_t total =
      static_cast<std::uint64_t>(warmup) + 2 * measure;
  Runtime rt(std::move(opts));
  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {  // responder
        std::uint64_t pings = 0;
        Startpoint back = ctx.world_startpoint(1);
        ctx.register_handler("ping",
                             [&](Context& c, Endpoint&, util::UnpackBuffer&) {
                               ++pings;
                               c.rsr(back, "pong");
                             });
        ctx.wait_count(pings, total);
      },
      [&](Context& ctx) {  // driver
        std::uint64_t pongs = 0;
        nexus::testing::register_counter(ctx, "pong", pongs);
        auto owned = std::make_unique<adapt::AdaptiveSelector>();
        adapt::AdaptiveSelector* sel = owned.get();
        ctx.set_selector(std::move(owned));
        Startpoint sp = ctx.world_startpoint(0);
        const util::Bytes small_b(64, 0x11);
        const util::Bytes large_b(1 << 16, 0x22);
        std::uint64_t sent = 0;
        auto ping = [&](bool large) {
          ctx.rsr(sp, "ping",
                  util::SharedBytes::copy_of(large ? large_b : small_b));
          ++sent;
          const std::string& m = sp.selected_method();
          if (sent > static_cast<std::uint64_t>(warmup)) {
            if (large) {
              ++out.large_total;
              out.large_on_mpl += (m == "mpl");
            } else {
              ++out.small_total;
              out.small_on_tcp += (m == "tcp");
            }
          }
          ctx.wait_count(pongs, sent);
        };
        for (std::uint64_t i = 0; i < total; ++i) ping(i % 2 == 1);
        out.switches = sel->switches();
        out.report = ctx.explain_selection(sp);
      }});
  return out;
}

TEST(AdaptEngine, RoutesSmallToLatencyWinnerAndLargeToBandwidthWinner) {
  const ScenarioOutcome out =
      run_two_method_scenario(two_method_opts(), /*warmup=*/40,
                              /*measure=*/50);
  ASSERT_EQ(out.small_total, 50);
  ASSERT_EQ(out.large_total, 50);
  // Acceptance: >=90% of each class on its modeled-optimal method.
  EXPECT_GE(out.small_on_tcp, 45)
      << "small RSRs on the latency-optimal method: " << out.small_on_tcp
      << "/50";
  EXPECT_GE(out.large_on_mpl, 45)
      << "large RSRs on the bandwidth-optimal method: " << out.large_on_mpl
      << "/50";
}

TEST(AdaptEngine, ExplainSelectionShowsModelRowsAndNamesTheCrossover) {
  const ScenarioOutcome out =
      run_two_method_scenario(two_method_opts(), /*warmup=*/40,
                              /*measure=*/20);
  ASSERT_EQ(out.report.selector, "adaptive");
  ASSERT_EQ(out.report.links.size(), 1u);
  const telemetry::LinkReport& lr = out.report.links[0];
  // The reason names the crossover decision and both class winners.
  EXPECT_NE(lr.reason.find("crossover at"), std::string::npos) << lr.reason;
  EXPECT_NE(lr.reason.find("'tcp'"), std::string::npos) << lr.reason;
  EXPECT_NE(lr.reason.find("'mpl'"), std::string::npos) << lr.reason;
  // Every candidate carries a modeled-cost row; the two live methods are
  // known with their dwell states, the inapplicable one reports no data.
  ASSERT_GE(lr.candidates.size(), 3u);
  for (const auto& c : lr.candidates) {
    ASSERT_TRUE(c.model.has_value()) << c.method;
    if (c.method == "tcp") {
      EXPECT_TRUE(c.model->known);
      EXPECT_GT(c.model->confidence, 0.5);
      // Measured one-way: wire latency plus software overheads and polling
      // delay -- anywhere near the configured 150 us, far below mpl's 2.5 ms.
      EXPECT_GT(c.model->latency_us, 50.0);
      EXPECT_LT(c.model->latency_us, 1500.0);
      EXPECT_EQ(c.model->dwell, "held-small");
    } else if (c.method == "mpl") {
      EXPECT_TRUE(c.model->known);
      EXPECT_EQ(c.model->dwell, "held-large");
    } else if (c.method == "local") {
      EXPECT_FALSE(c.model->known);
      EXPECT_EQ(c.model->dwell, "candidate");
    }
  }
  // The rendered report includes the model rows.
  const std::string text = out.report.to_text();
  EXPECT_NE(text.find("model:"), std::string::npos) << text;
  const std::string json = out.report.to_json();
  EXPECT_NE(json.find("\"model\""), std::string::npos);
}

TEST(AdaptEngine, SwitchesStayBoundedUnderInjectedDelayNoise) {
  // Noisy fabric: tcp latency jitters by injected delay windows.  With the
  // modeled gap between the methods far wider than the noise, hysteresis
  // must keep the per-class decisions stable (a handful of warm-up
  // switches, no flapping).
  RuntimeOptions opts = two_method_opts();
  opts.seed = nexus::testing::test_seed();
  for (int i = 0; i < 10; ++i) {
    const Time from = (30 + 60 * i) * kMs;
    opts.faults.delay("tcp", (i % 2 ? 300 : 80) * kUs, from, from + 30 * kMs);
  }
  const ScenarioOutcome out =
      run_two_method_scenario(std::move(opts), /*warmup=*/40, /*measure=*/60);
  // One warm-up switch per class is expected (static fallback -> modeled
  // winner); noise must not push the count past a small constant.
  EXPECT_LE(out.switches, 6u) << "selector flapped under delay noise";
  EXPECT_GE(out.small_on_tcp, 54);  // decisions stayed latency/bandwidth-
  EXPECT_GE(out.large_on_mpl, 54);  // optimal despite the jitter
}

}  // namespace
