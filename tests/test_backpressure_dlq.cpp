// Reliable-layer backpressure x dead-letter queue interaction
// (docs/ARCHITECTURE.md §10.3 and §14.3).
//
// Both features are tested independently elsewhere; these cases pin the
// seam between them under robust.retry_budget > 0.  The outage is a
// detected-loss window (FaultPlan::drop with p=1), not a blackhole: a
// blackhole yields hard Dead verdicts that the wrapper surfaces
// immediately (recovery belongs to the failover layer), so the rel window
// never engages.  Detected transient loss is the regime where the wrapper
// accepts packets into its window and the overflow meets the DLQ:
//
//   * shed policy: window residents ride the wrapper's own probing
//     retransmits through the outage; the overflow sheds Transient, walks
//     the robust layer's bounded retry ladder, and parks in the bounded
//     dead-letter queue (cap eviction included).  Rebirth after the outage
//     redelivers exactly the retained letters.  No payload is ever
//     delivered twice across the two recovery paths.
//
//   * block policy: a sender blocked on a full window toward an
//     unreachable peer must NOT hang -- the wrapper's max-retries dead
//     latch terminates the wait well inside the outage, and with a
//     dead-letter budget the failed sends park instead of throwing.  After
//     the outage every parked and windowed payload arrives exactly once
//     (redelivery itself blocks on window credits instead of shedding).
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <map>

#include "fixture_runtime.hpp"
#include "nexus/runtime.hpp"
#include "proto/reliable.hpp"

namespace {

using namespace nexus;
using nexus::testing::opts_with;
using nexus::testing::run_mpmd;
using simnet::kMs;
using simnet::kUs;

RuntimeOptions dlq_opts(const char* policy, const char* window,
                        const char* cap) {
  RuntimeOptions opts =
      opts_with({"local", "rel+udp"}, simnet::Topology::single_partition(2));
  // Latch timing and the block-mode wait ride the shared virtual clock;
  // pin threads=1 so the NEXUS_THREADS=4 TSan leg runs the suite unsharded.
  opts.threads = 1;
  // Detected loss (Transient verdicts) for the first 5 ms, then clean:
  // every data frame and ack is lost, but the wrapper keeps ownership of
  // accepted packets and repairs them by retransmission after the window.
  opts.faults.drop("udp", 1.0, 0, 5 * kMs);
  opts.costs.udp_drop_prob = 0.0;  // no silent loss outside the fault rule
  opts.db.set("rel.window", window);
  opts.db.set("rel.backpressure", policy);
  opts.db.set("rel.max_retries", "2");  // fast dead latch inside the outage
  opts.db.set("rel.rto_initial_us", "500");
  opts.db.set("rel.rto_min_us", "500");
  opts.db.set("rel.rto_max_us", "2000");
  opts.db.set("rel.ack_delay_us", "200");
  opts.db.set("robust.retry_budget", "2");
  opts.db.set("robust.deadletter_cap", cap);
  opts.db.set("robust.peer_grace_ms", "0");  // declare death on first strike
  return opts;
}

util::PackBuffer seq_payload(std::uint64_t i) {
  util::PackBuffer pb(16);
  pb.put_u64(i);
  return pb;
}

TEST(ReliableBackpressureDlq, ShedOverflowParksAndRedeliversExactlyOnce) {
  // cap 3 < window 4: the retained letters must fit the window next to the
  // unacked rebirth probe, or redelivery itself would shed and re-park.
  Runtime rt(dlq_opts("shed", "4", "3"));

  std::map<std::uint64_t, int> delivered;
  std::atomic<bool> done{false};
  bool dead_mid_window = false;
  std::size_t letters_at_peak = 0;

  run_mpmd(
      rt,
      {[&](Context& ctx) {  // sender
         Startpoint sp = ctx.world_startpoint(1);
         auto* rel = dynamic_cast<proto::ReliableModule*>(ctx.module("rel+udp"));
         ASSERT_NE(rel, nullptr);
         // Payloads 0-3 are accepted into the rel window (they recover via
         // the wrapper's probing retransmits once the loss window lifts);
         // 4-9 hit the full window, shed Transient, exhaust the robust
         // retry ladder, and park in the DLQ -- whose cap of 3 evicts the
         // three oldest letters (payloads 4-6).  The first exhausted
         // ladder also quarantines the only applicable method, which with
         // a zero grace period declares the peer dead.
         for (std::uint64_t i = 0; i < 10; ++i) {
           const DeliveryStatus st = ctx.rsr(sp, "pay", seq_payload(i));
           if (i < 4) {
             EXPECT_EQ(st, DeliveryStatus::Ok) << "payload " << i;
           } else {
             EXPECT_EQ(st, DeliveryStatus::Transient) << "payload " << i;
           }
         }
         dead_mid_window = ctx.is_peer_dead(1);
         letters_at_peak = ctx.deadletter_count();
         // Ride out the outage until the wrapper's probes drain the window
         // (acked progress also clears its max-retries dead latch).
         while (rel->in_flight(1) > 0 && ctx.now() < 200 * kMs) {
           ctx.compute_with_polling(1 * kMs, 250 * kUs);
         }
         ASSERT_EQ(rel->in_flight(1), 0u);
         // The peer stays declared dead until a Context-level send
         // succeeds: wrapper-internal probe progress is invisible to the
         // robust layer.  The first post-outage RSR is the rebirth probe;
         // its success flushes the three retained letters back through the
         // wrapper (they fit the window beside the probe's unacked slot).
         EXPECT_TRUE(ctx.is_peer_dead(1));
         EXPECT_EQ(ctx.rsr(sp, "pay", seq_payload(10)), DeliveryStatus::Ok);
         EXPECT_FALSE(ctx.is_peer_dead(1));
         EXPECT_EQ(ctx.deadletter_count(), 0u);
         while (rel->in_flight(1) > 0 && ctx.now() < 400 * kMs) {
           ctx.compute_with_polling(1 * kMs, 250 * kUs);
         }
         while (!done.load(std::memory_order_acquire) && ctx.now() < 600 * kMs) {
           ctx.compute_with_polling(1 * kMs, 250 * kUs);
         }
       },
       [&](Context& ctx) {  // receiver
         std::uint64_t got = 0;
         ctx.register_handler("pay",
                              [&](Context&, Endpoint&, util::UnpackBuffer& ub) {
                                ++delivered[ub.get_u64()];
                                ++got;
                              });
         while (got < 8 && ctx.now() < 600 * kMs) {
           ctx.compute_with_polling(1 * kMs, 250 * kUs);
         }
         done.store(true, std::memory_order_release);
       }});

  EXPECT_TRUE(dead_mid_window);
  EXPECT_EQ(letters_at_peak, 3u);  // capped
  // Window path (0-3), retained letters (7-9), rebirth probe (10): exactly
  // once each.  The evicted letters (4-6) are gone by contract.
  for (const std::uint64_t v :
       {0ull, 1ull, 2ull, 3ull, 7ull, 8ull, 9ull, 10ull}) {
    EXPECT_EQ(delivered[v], 1) << "payload " << v;
  }
  for (const std::uint64_t v : {4ull, 5ull, 6ull}) {
    EXPECT_EQ(delivered[v], 0) << "payload " << v;
  }
  const auto& m = rt.telemetry().metrics().context(0);
  EXPECT_EQ(m.peer_deaths, 1u);
  EXPECT_EQ(m.peer_reborns, 1u);
  EXPECT_EQ(m.deadletters, 6u);
  EXPECT_EQ(m.deadletter_drops, 3u);
  EXPECT_EQ(m.deadletter_redeliveries, 3u);
  // The shed path (not loss) produced the parked letters: the wrapper must
  // still have retransmitted the windowed frames through the outage.
  const auto snap = rt.telemetry().metrics().snapshot();
  const auto* wrapper = snap.find_method(0, "rel+udp");
  ASSERT_NE(wrapper, nullptr);
  EXPECT_GT(wrapper->counters.rel_retransmits, 0u);
}

TEST(ReliableBackpressureDlq, BlockedSenderUnblocksViaDeadLatchIntoDlq) {
  Runtime rt(dlq_opts("block", "2", "8"));

  std::map<std::uint64_t, int> delivered;
  std::atomic<bool> done{false};

  run_mpmd(
      rt,
      {[&](Context& ctx) {  // sender
         Startpoint sp = ctx.world_startpoint(1);
         auto* rel = dynamic_cast<proto::ReliableModule*>(ctx.module("rel+udp"));
         ASSERT_NE(rel, nullptr);
         // Payloads 0-1 fill the window; payload 2's send blocks on the
         // full window until the max-retries dead latch terminates the
         // wait (this is the no-hang property under test).  The latch
         // quarantines the method, declares the peer dead, and 2-5 park in
         // the DLQ instead of throwing.
         for (std::uint64_t i = 0; i < 6; ++i) {
           const DeliveryStatus st = ctx.rsr(sp, "pay", seq_payload(i));
           if (i < 2) {
             EXPECT_EQ(st, DeliveryStatus::Ok) << "payload " << i;
           } else {
             EXPECT_EQ(st, DeliveryStatus::Transient) << "payload " << i;
           }
           // The latch must fire well inside the outage: a blocked send
           // that waited for the loss window to lift would sit here to
           // 5 ms (retry schedule: 0.5 + 1 + 2 ms < 5 ms).
           EXPECT_LT(ctx.now(), 5 * kMs) << "payload " << i;
         }
         EXPECT_TRUE(ctx.is_peer_dead(1));
         EXPECT_EQ(ctx.deadletter_count(), 4u);
         while (rel->in_flight(1) > 0 && ctx.now() < 200 * kMs) {
           ctx.compute_with_polling(1 * kMs, 250 * kUs);
         }
         ASSERT_EQ(rel->in_flight(1), 0u);
         // Rebirth probe.  Redelivering four letters through a window of
         // two works under block policy: each overflow send waits for ack
         // credits instead of shedding.
         EXPECT_EQ(ctx.rsr(sp, "pay", seq_payload(6)), DeliveryStatus::Ok);
         EXPECT_FALSE(ctx.is_peer_dead(1));
         EXPECT_EQ(ctx.deadletter_count(), 0u);
         while (rel->in_flight(1) > 0 && ctx.now() < 400 * kMs) {
           ctx.compute_with_polling(1 * kMs, 250 * kUs);
         }
         while (!done.load(std::memory_order_acquire) && ctx.now() < 600 * kMs) {
           ctx.compute_with_polling(1 * kMs, 250 * kUs);
         }
       },
       [&](Context& ctx) {  // receiver
         std::uint64_t got = 0;
         ctx.register_handler("pay",
                              [&](Context&, Endpoint&, util::UnpackBuffer& ub) {
                                ++delivered[ub.get_u64()];
                                ++got;
                              });
         while (got < 7 && ctx.now() < 600 * kMs) {
           ctx.compute_with_polling(1 * kMs, 250 * kUs);
         }
         done.store(true, std::memory_order_release);
       }});

  // Every payload -- windowed, parked, and the rebirth probe -- exactly
  // once.
  for (std::uint64_t v = 0; v < 7; ++v) {
    EXPECT_EQ(delivered[v], 1) << "payload " << v;
  }
  const auto& m = rt.telemetry().metrics().context(0);
  // Redelivery through the tiny window can spuriously re-latch (a fresh
  // probe's RTO races the receiver's polling cadence) and cycle the peer
  // through another death+rebirth; the invariant is that every death is
  // matched by a rebirth and the letters still land exactly once.
  EXPECT_GE(m.peer_deaths, 1u);
  EXPECT_EQ(m.peer_deaths, m.peer_reborns);
  EXPECT_EQ(m.deadletters, 4u);
  EXPECT_EQ(m.deadletter_drops, 0u);
  EXPECT_EQ(m.deadletter_redeliveries, 4u);
}

}  // namespace
