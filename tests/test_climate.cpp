// Unit tests for the climate substrate: grids, regridding, and the banded
// model numerics (conservation, serial-vs-parallel equivalence).
#include <gtest/gtest.h>

#include <cmath>

#include "climate/coupled.hpp"
#include "climate/grid.hpp"
#include "climate/model.hpp"
#include "nexus/runtime.hpp"

namespace {

using namespace climate;
using nexus::Context;
using nexus::Runtime;
using nexus::RuntimeOptions;

TEST(Grid, RowDistributionCoversExactly) {
  for (int ny : {7, 16, 64}) {
    for (int p : {1, 3, 8, 16}) {
      if (p > ny) continue;
      int total = 0;
      int next_row = 0;
      for (int r = 0; r < p; ++r) {
        EXPECT_EQ(row0_of(ny, p, r), next_row);
        const int rows = rows_of(ny, p, r);
        EXPECT_GE(rows, ny / p);
        total += rows;
        next_row += rows;
      }
      EXPECT_EQ(total, ny);
    }
  }
}

TEST(Grid, BandFieldAccessAndWrap) {
  BandField f(8, 4, 3);
  f.at(0, 0) = 1.0;
  f.at(2, 7) = 2.0;
  f.at(-1, 3) = 3.0;  // halo
  f.at(3, 3) = 4.0;   // halo
  EXPECT_EQ(f.wrap(0, 8), 1.0);   // periodic wrap to column 0
  EXPECT_EQ(f.wrap(0, -8), 1.0);
  EXPECT_EQ(f.at(-1, 3), 3.0);
  EXPECT_EQ(f.interior_sum(), 3.0);  // halos excluded
}

TEST(Grid, ZonalMeans) {
  BandField f(4, 0, 2);
  for (int j = 0; j < 4; ++j) {
    f.at(0, j) = j;       // mean 1.5
    f.at(1, j) = 2.0 * j; // mean 3.0
  }
  auto m = f.zonal_means();
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m[0], 1.5);
  EXPECT_DOUBLE_EQ(m[1], 3.0);
}

TEST(Grid, RegridProfileEndpoints) {
  std::vector<double> src{0.0, 1.0, 2.0, 3.0};
  auto up = regrid_profile(src, 8);
  ASSERT_EQ(up.size(), 8u);
  // Monotone input stays monotone under linear interpolation.
  for (std::size_t i = 1; i < up.size(); ++i) EXPECT_GE(up[i], up[i - 1]);
  EXPECT_NEAR(up.front(), 0.0, 0.5);
  EXPECT_NEAR(up.back(), 3.0, 0.5);

  auto same = regrid_profile(src, 4);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(same[i], src[i], 1e-12);

  auto constant = regrid_profile(std::vector<double>{5.0}, 6);
  for (double v : constant) EXPECT_DOUBLE_EQ(v, 5.0);
}

TEST(Grid, RegridPreservesMeanApproximately) {
  std::vector<double> src(16);
  for (int i = 0; i < 16; ++i) src[i] = std::sin(0.3 * i);
  double src_mean = 0;
  for (double v : src) src_mean += v;
  src_mean /= 16;
  auto dst = regrid_profile(src, 40);
  double dst_mean = 0;
  for (double v : dst) dst_mean += v;
  dst_mean /= 40;
  EXPECT_NEAR(dst_mean, src_mean, 0.05);
}

/// Run a BandModel world (no coupling) and return the global field sums
/// before and after `steps` steps plus a checksum of the final field.
struct ModelRun {
  double sum0 = 0, sum1 = 0;
  std::vector<double> final_profile;
};

ModelRun run_model(int ranks, int steps, ModelConfig mc) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(
      static_cast<std::size_t>(ranks));
  opts.modules = {"local", "mpl", "tcp"};
  Runtime rt(opts);
  ModelRun result;
  rt.run([&](Context& ctx) {
    minimpi::World mpi(ctx);
    BandModel m(ctx, mpi.comm().dup(), mc, /*zonal_jet=*/true);
    const double s0 = m.global_sum();
    for (int s = 0; s < steps; ++s) m.step();
    const double s1 = m.global_sum();
    auto profile = m.global_zonal_profile();
    if (mpi.rank() == 0) {
      result.sum0 = s0;
      result.sum1 = s1;
      result.final_profile = profile;
    }
  });
  return result;
}

ModelConfig fast_config() {
  ModelConfig mc;
  mc.nx = 32;
  mc.ny = 16;
  mc.relax = 0.0;            // no external forcing: conservation holds
  mc.step_compute = 0;       // pure numerics for these tests
  mc.polls_per_step = 1;
  mc.transpose_phases = 1;
  mc.transpose_bytes = 512;
  return mc;
}

TEST(BandModel, ConservesHeatWithoutForcing) {
  ModelRun r = run_model(4, 20, fast_config());
  // Upwind advection (periodic x) + symmetric diffusion (closed y) keep the
  // global sum exactly constant up to floating-point roundoff.
  EXPECT_NEAR(r.sum1, r.sum0, std::abs(r.sum0) * 1e-12);
}

TEST(BandModel, SerialAndParallelAgree) {
  ModelConfig mc = fast_config();
  ModelRun serial = run_model(1, 10, mc);
  ModelRun par4 = run_model(4, 10, mc);
  ModelRun par8 = run_model(8, 10, mc);
  ASSERT_EQ(serial.final_profile.size(), par4.final_profile.size());
  for (std::size_t i = 0; i < serial.final_profile.size(); ++i) {
    EXPECT_NEAR(par4.final_profile[i], serial.final_profile[i], 1e-9);
    EXPECT_NEAR(par8.final_profile[i], serial.final_profile[i], 1e-9);
  }
}

TEST(BandModel, DiffusionSmoothsZonalVariance) {
  ModelConfig mc = fast_config();
  mc.u0 = 0.0;  // pure diffusion
  ModelRun r = run_model(2, 30, mc);
  // The initial zonal perturbation must decay: profile ends smoother than a
  // 30 K equator-pole contrast with a 2 K sine ripple.
  double max_jump = 0;
  for (std::size_t i = 1; i < r.final_profile.size(); ++i) {
    max_jump = std::max(max_jump,
                        std::abs(r.final_profile[i] - r.final_profile[i - 1]));
  }
  EXPECT_LT(max_jump, 4.0);
}

TEST(BandModel, RelaxationPullsTowardCoupledProfile) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(2);
  opts.modules = {"local", "mpl", "tcp"};
  Runtime rt(opts);
  rt.run([&](Context& ctx) {
    minimpi::World mpi(ctx);
    ModelConfig mc = fast_config();
    mc.relax = 0.5;
    mc.u0 = 0.0;
    BandModel m(ctx, mpi.comm().dup(), mc, true);
    std::vector<double> target(static_cast<std::size_t>(mc.ny), 300.0);
    m.set_coupled_profile(target);
    for (int s = 0; s < 60; ++s) m.step();
    auto profile = m.global_zonal_profile();
    for (double v : profile) EXPECT_NEAR(v, 300.0, 1.0);
  });
}

TEST(Coupled, SmallRunCompletesAndCouples) {
  CoupledConfig cfg;
  cfg.atmo_ranks = 4;
  cfg.ocean_ranks = 2;
  cfg.timesteps = 4;
  cfg.couple_every = 2;
  cfg.atmosphere = fast_config();
  cfg.atmosphere.step_compute = 2 * simnet::kSec;
  cfg.atmosphere.polls_per_step = 100;
  cfg.ocean = fast_config();
  cfg.ocean.nx = 16;
  cfg.ocean.ny = 8;
  cfg.ocean.step_compute = 1 * simnet::kSec;
  cfg.ocean.polls_per_step = 100;

  auto res = run_coupled(cfg, Policy::SkipPoll, 10);
  EXPECT_EQ(res.couplings, 2);
  EXPECT_EQ(res.step_seconds.size(), 4u);
  EXPECT_GT(res.seconds_per_step, 2.0);   // at least the compute charge
  EXPECT_LT(res.seconds_per_step, 10.0);  // but not runaway
  EXPECT_GT(res.tcp_sends, 0u);           // coupling crossed partitions
  EXPECT_GT(res.mpl_sends, 0u);           // internal traffic stayed on mpl
  // Models exchange energy through coupling; heat should stay bounded.
  EXPECT_NEAR(res.atmo_heat_end, res.atmo_heat_start,
              std::abs(res.atmo_heat_start) * 0.2);
}

TEST(Coupled, PoliciesProduceSameCouplingCount) {
  CoupledConfig cfg;
  cfg.atmo_ranks = 4;
  cfg.ocean_ranks = 2;
  cfg.timesteps = 2;
  cfg.couple_every = 2;
  cfg.atmosphere = fast_config();
  cfg.atmosphere.step_compute = simnet::kSec;
  cfg.atmosphere.polls_per_step = 50;
  cfg.ocean = cfg.atmosphere;
  cfg.ocean.nx = 16;
  cfg.ocean.ny = 8;

  for (Policy p : {Policy::SelectiveTcp, Policy::Forwarding,
                   Policy::SkipPoll, Policy::AllTcp}) {
    auto res = run_coupled(cfg, p, 5);
    EXPECT_EQ(res.couplings, 1) << policy_name(p);
    EXPECT_GT(res.seconds_per_step, 0.0) << policy_name(p);
  }
}

}  // namespace
