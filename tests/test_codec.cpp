// Unit and property tests for the wrapper-method codecs.
#include <gtest/gtest.h>

#include "proto/codec.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace nexus::proto;
using nexus::util::Bytes;
using nexus::util::Rng;

TEST(Rle, EmptyInput) {
  EXPECT_TRUE(rle_encode({}).empty());
  EXPECT_TRUE(rle_decode({}).empty());
}

TEST(Rle, SingleRun) {
  Bytes in(100, 0x42);
  Bytes enc = rle_encode(in);
  EXPECT_EQ(enc.size(), 2u);
  EXPECT_EQ(enc[0], 100);
  EXPECT_EQ(enc[1], 0x42);
  EXPECT_EQ(rle_decode(enc), in);
}

TEST(Rle, RunLongerThan255Splits) {
  Bytes in(600, 0x07);
  Bytes enc = rle_encode(in);
  EXPECT_EQ(enc.size(), 6u);  // 255 + 255 + 90
  EXPECT_EQ(rle_decode(enc), in);
}

TEST(Rle, IncompressibleDataGrows) {
  Bytes in;
  for (int i = 0; i < 128; ++i) in.push_back(static_cast<std::uint8_t>(i));
  Bytes enc = rle_encode(in);
  EXPECT_EQ(enc.size(), 256u);  // 2 bytes per distinct input byte
  EXPECT_EQ(rle_decode(enc), in);
}

TEST(Rle, MalformedStreamsThrow) {
  EXPECT_THROW(rle_decode(Bytes{5}), nexus::util::UnpackError);      // odd
  EXPECT_THROW(rle_decode(Bytes{0, 9}), nexus::util::UnpackError);   // 0-run
}

class RleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RleProperty, RoundtripRandomData) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    Bytes in;
    const std::size_t len = rng.next_below(2000);
    // Mix runs and noise so both encoder paths are hit.
    while (in.size() < len) {
      if (rng.chance(0.5)) {
        in.insert(in.end(), rng.next_below(300) + 1,
                  static_cast<std::uint8_t>(rng.next()));
      } else {
        in.push_back(static_cast<std::uint8_t>(rng.next()));
      }
    }
    EXPECT_EQ(rle_decode(rle_encode(in)), in);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RleProperty, ::testing::Values(1u, 7u, 42u));

TEST(Keystream, IsInvolution) {
  Bytes data{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  Bytes original = data;
  keystream_xor(data, 0xdeadbeef);
  EXPECT_NE(data, original);
  keystream_xor(data, 0xdeadbeef);
  EXPECT_EQ(data, original);
}

TEST(Keystream, DifferentKeysDiffer) {
  Bytes a{0, 0, 0, 0, 0, 0, 0, 0};
  Bytes b = a;
  keystream_xor(a, 1);
  keystream_xor(b, 2);
  EXPECT_NE(a, b);
}

TEST(Seal, RoundtripAndLength) {
  Bytes plain{10, 20, 30};
  Bytes sealed = seal(plain, 99);
  EXPECT_EQ(sealed.size(), plain.size() + 8);  // payload + tag
  EXPECT_EQ(open(sealed, 99), plain);
}

TEST(Seal, EmptyPayload) {
  Bytes sealed = seal({}, 5);
  EXPECT_EQ(sealed.size(), 8u);
  EXPECT_TRUE(open(sealed, 5).empty());
}

TEST(Seal, WrongKeyDetected) {
  Bytes sealed = seal(Bytes{1, 2, 3, 4}, 111);
  EXPECT_THROW(open(sealed, 112), nexus::util::MethodError);
}

TEST(Seal, TamperDetected) {
  Bytes sealed = seal(Bytes(64, 0x33), 7);
  sealed[10] ^= 0x01;  // flip one ciphertext bit
  EXPECT_THROW(open(sealed, 7), nexus::util::MethodError);
  Bytes sealed2 = seal(Bytes(64, 0x33), 7);
  sealed2[sealed2.size() - 1] ^= 0x80;  // flip a tag bit
  EXPECT_THROW(open(sealed2, 7), nexus::util::MethodError);
}

TEST(Seal, TruncatedInputThrows) {
  EXPECT_THROW(open(Bytes{1, 2, 3}, 7), nexus::util::MethodError);
}

TEST(IntegrityTag, MatchesFnvSemantics) {
  EXPECT_EQ(integrity_tag({}), 14695981039346656037ull);
  Bytes a{1}, b{2};
  EXPECT_NE(integrity_tag(a), integrity_tag(b));
}

}  // namespace
