// Configuration-driven behaviour (paper §3.1: modules and parameters set
// via resource database, command line, or function calls).
#include <gtest/gtest.h>

#include "nexus/runtime.hpp"

namespace {

using namespace nexus;

TEST(Config, ModuleSetFromResourceDatabase) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(1);
  opts.modules = {"local"};  // overridden below
  opts.db.set("nexus.modules", "local, mpl, tcp, udp");
  Runtime rt(opts);
  rt.run([&](Context& ctx) {
    auto methods = ctx.methods();
    EXPECT_EQ(methods.size(), 4u);
    EXPECT_NE(ctx.module("udp"), nullptr);
  });
}

TEST(Config, PerContextModuleOverride) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(2);
  opts.modules = {"local", "mpl", "tcp"};
  opts.db.set("context.1.nexus.modules", "local, tcp");
  Runtime rt(opts);
  rt.run([&](Context& ctx) {
    if (ctx.id() == 0) {
      EXPECT_NE(ctx.module("mpl"), nullptr);
    } else {
      EXPECT_EQ(ctx.module("mpl"), nullptr);
      EXPECT_NE(ctx.module("tcp"), nullptr);
    }
  });
}

TEST(Config, SkipPollFromResourceDatabase) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(2);
  opts.modules = {"local", "mpl", "tcp"};
  opts.db.set("tcp.skip_poll", "25");
  opts.db.set("context.1.tcp.skip_poll", "50");
  Runtime rt(opts);
  rt.run([&](Context& ctx) {
    EXPECT_EQ(ctx.skip_poll("tcp"), ctx.id() == 1 ? 50u : 25u);
  });
}

TEST(Config, PollEnabledFromResourceDatabase) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(1);
  opts.modules = {"local", "mpl", "tcp"};
  opts.db.set("tcp.poll_enabled", "false");
  Runtime rt(opts);
  rt.run([&](Context& ctx) {
    EXPECT_FALSE(ctx.poll_enabled("tcp"));
    EXPECT_TRUE(ctx.poll_enabled("mpl"));
  });
}

TEST(Config, CommandLineStyleArgsFeedTheDatabase) {
  util::ResourceDb db;
  std::vector<std::string> args{"app", "-nx", "tcp.skip_poll=77", "-nx",
                                "nexus.modules=local,tcp", "input.dat"};
  db.load_args(args);
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(1);
  opts.db = db;
  Runtime rt(opts);
  rt.run([&](Context& ctx) {
    EXPECT_EQ(ctx.methods().size(), 2u);
    EXPECT_EQ(ctx.skip_poll("tcp"), 77u);
  });
  EXPECT_EQ(args, (std::vector<std::string>{"app", "input.dat"}));
}

TEST(Config, MinimpiLayerOverheadConfigurable) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(1);
  opts.modules = {"local", "mpl", "tcp"};
  opts.db.set("minimpi.layer_overhead_ns", "12345");
  Runtime rt(opts);
  rt.run([&](Context& ctx) {
    EXPECT_EQ(ctx.config().get_int("minimpi.layer_overhead_ns", 0), 12345);
  });
}

TEST(Config, InvalidRuntimeOptionsRejected) {
  {
    RuntimeOptions opts;
    opts.topology = simnet::Topology(std::vector<int>{});
    EXPECT_THROW(Runtime rt(opts), util::UsageError);
  }
  {
    RuntimeOptions opts;
    opts.topology = simnet::Topology::two_partitions(1, 1);
    opts.forwarders[0] = 5;  // out of range
    EXPECT_THROW(Runtime rt(opts), util::UsageError);
  }
}

TEST(Config, RunIsSingleShotAndSizeChecked) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(2);
  Runtime rt(opts);
  EXPECT_THROW(rt.run(std::vector<std::function<void(Context&)>>{
                   [](Context&) {}}),  // one fn for two contexts
               util::UsageError);
  rt.run([](Context&) {});  // size check did not consume the single shot
  EXPECT_THROW(rt.run([](Context&) {}), util::UsageError);  // second run
}

TEST(Config, ContextAccessBeforeRunThrows) {
  RuntimeOptions opts;
  opts.topology = simnet::Topology::single_partition(2);
  Runtime rt(opts);
  EXPECT_THROW(rt.context(0), util::UsageError);
  EXPECT_THROW(rt.table_of(0), util::UsageError);
}

}  // namespace
