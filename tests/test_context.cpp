// Integration tests for the Nexus core on the simulated fabric: RSRs,
// method selection, startpoint transfer, multicast, forwarding.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fixture_runtime.hpp"
#include "nexus/runtime.hpp"
#include "proto/sim_modules.hpp"
#include "util/pack.hpp"

namespace {

using namespace nexus;
using simnet::kMs;
using simnet::kUs;
using nexus::testing::run_mpmd;
using nexus::testing::sim_opts;

TEST(ContextRsr, BasicRequestReply) {
  Runtime rt(sim_opts(simnet::Topology::single_partition(2)));
  std::string received;
  Time recv_time = -1;

  run_mpmd(rt, {// context 0: serve one request
                [&](Context& ctx) {
                  std::uint64_t served = 0;
                  ctx.register_handler(
                      "greet", [&](Context&, Endpoint&,
                                   util::UnpackBuffer& ub) {
                        received = ub.get_string();
                        recv_time = ctx.now();
                        ++served;
                      });
                  ctx.wait_count(served, 1);
                },
                // context 1: send one RSR to context 0's root endpoint
                [&](Context& ctx) {
                  Startpoint sp = ctx.world_startpoint(0);
                  util::PackBuffer args;
                  args.put_string("hello from 1");
                  ctx.rsr(sp, "greet", args);
                  EXPECT_EQ(sp.selected_method(), "mpl");  // same partition
                }});

  EXPECT_EQ(received, "hello from 1");
  EXPECT_GT(recv_time, 0);
  // One-way cost must include at least the MPL latency.
  EXPECT_GE(recv_time, rt.options().costs.mpl_latency);
}

TEST(ContextRsr, CrossPartitionSelectsTcp) {
  Runtime rt(sim_opts(simnet::Topology::two_partitions(1, 1)));
  std::string method_used;
  run_mpmd(rt, {[&](Context& ctx) {
                  std::uint64_t served = 0;
                  ctx.register_handler("noop", [&](Context&, Endpoint&,
                                                   util::UnpackBuffer&) {
                    ++served;
                  });
                  ctx.wait_count(served, 1);
                },
                [&](Context& ctx) {
                  Startpoint sp = ctx.world_startpoint(0);
                  ctx.rsr(sp, "noop");
                  method_used = sp.selected_method();
                }});
  EXPECT_EQ(method_used, "tcp");
}

TEST(ContextRsr, SelfRsrUsesLocalMethod) {
  Runtime rt(sim_opts(simnet::Topology::single_partition(1)));
  rt.run([&](Context& ctx) {
    std::uint64_t count = 0;
    ctx.register_handler("self",
                         [&](Context&, Endpoint&, util::UnpackBuffer&) {
                           ++count;
                         });
    Startpoint sp = ctx.startpoint_to(ctx.root_endpoint());
    ctx.rsr(sp, "self");
    EXPECT_EQ(sp.selected_method(), "local");
    ctx.wait_count(count, 1);
  });
}

TEST(ContextRsr, UnboundStartpointThrows) {
  Runtime rt(sim_opts(simnet::Topology::single_partition(1)));
  rt.run([&](Context& ctx) {
    Startpoint sp;
    EXPECT_THROW(ctx.rsr(sp, "x"), util::UsageError);
  });
}

TEST(ContextRsr, UnknownHandlerDropsAndCountsAtReceiver) {
  // A sender naming a handler the receiver never registered is the
  // sender's protocol error, not a reason to fault the receiver: the RSR
  // is dropped and counted in send_errors (docs/ARCHITECTURE.md §15).
  Runtime rt(sim_opts(simnet::Topology::single_partition(1)));
  rt.run([&](Context& ctx) {
    Startpoint sp = ctx.startpoint_to(ctx.root_endpoint());
    EXPECT_EQ(ctx.rsr(sp, "never-registered"), DeliveryStatus::Ok);
    ctx.compute_with_polling(1 * kMs, 100 * kUs);  // let delivery happen
  });
  EXPECT_EQ(rt.telemetry().metrics().context(0).send_errors, 1u);
}

TEST(ContextRsr, MultiBindIsMulticast) {
  // One startpoint bound to two endpoints: each RSR reaches both (§2.2).
  Runtime rt(sim_opts(simnet::Topology::single_partition(3)));
  int hits0 = 0, hits1 = 0;
  util::PackBuffer sp_wire;

  run_mpmd(
      rt,
      {[&](Context& ctx) {
         std::uint64_t done = 0;
         ctx.register_handler("hit", [&](Context&, Endpoint&,
                                         util::UnpackBuffer&) {
           ++hits0;
           ++done;
         });
         ctx.wait_count(done, 1);
       },
       [&](Context& ctx) {
         std::uint64_t done = 0;
         ctx.register_handler("hit", [&](Context&, Endpoint&,
                                         util::UnpackBuffer&) {
           ++hits1;
           ++done;
         });
         ctx.wait_count(done, 1);
       },
       [&](Context& ctx) {
         // Build a two-link startpoint from two world startpoints' links.
         Startpoint a = ctx.world_startpoint(0);
         Startpoint b = ctx.world_startpoint(1);
         Startpoint both;
         both.links().push_back(a.link(0));
         both.links().push_back(b.link(0));
         ctx.rsr(both, "hit");
         EXPECT_EQ(both.link_count(), 2u);
       }});

  EXPECT_EQ(hits0, 1);
  EXPECT_EQ(hits1, 1);
}

TEST(ContextRsr, StartpointTransferAndUse) {
  // Figure 1/3 flow: context 0 creates an endpoint + startpoint, ships the
  // startpoint to context 1 inside an RSR payload; context 1 unpacks it and
  // uses it to reach the new endpoint (not the root).
  Runtime rt(sim_opts(simnet::Topology::single_partition(2)));
  std::string got;

  run_mpmd(
      rt,
      {[&](Context& ctx) {
         std::uint64_t done = 0;
         Endpoint& data_ep = ctx.create_endpoint();
         data_ep.set_local_address(std::string("the-object"));
         ctx.register_handler(
             "on-data", [&](Context&, Endpoint& ep, util::UnpackBuffer& ub) {
               got = *ep.local_as<std::string>() + "/" + ub.get_string();
               ++done;
             });
         // Hand the startpoint to context 1 via its root endpoint.
         std::uint64_t unused = 0;
         (void)unused;
         Startpoint to_peer = ctx.world_startpoint(1);
         Startpoint mine = ctx.startpoint_to(data_ep);
         util::PackBuffer pb;
         ctx.pack_startpoint(pb, mine);
         ctx.rsr(to_peer, "take-startpoint", pb);
         ctx.wait_count(done, 1);
       },
       [&](Context& ctx) {
         std::uint64_t done = 0;
         ctx.register_handler(
             "take-startpoint",
             [&](Context& c, Endpoint&, util::UnpackBuffer& ub) {
               Startpoint sp = c.unpack_startpoint(ub);
               EXPECT_EQ(sp.link(0).context, 0u);
               EXPECT_NE(sp.link(0).endpoint, 1u);  // not the root
               util::PackBuffer pb;
               pb.put_string("payload");
               c.rsr(sp, "on-data", pb);
               ++done;
             });
         ctx.wait_count(done, 1);
       }});

  EXPECT_EQ(got, "the-object/payload");
}

TEST(ContextRsr, LightweightStartpointIsSmaller) {
  Runtime rt(sim_opts(simnet::Topology::single_partition(2)));
  rt.run([&](Context& ctx) {
    if (ctx.id() != 0) return;
    // Default-table startpoint: packs without the table.
    Startpoint light = ctx.world_startpoint(1);
    util::PackBuffer pb_light;
    ctx.pack_startpoint(pb_light, light);

    // Edited table forces the full representation.
    Startpoint heavy = ctx.world_startpoint(1);
    heavy.table().prioritize("tcp");
    heavy.invalidate_selection();
    util::PackBuffer pb_heavy;
    ctx.pack_startpoint(pb_heavy, heavy);

    EXPECT_LT(pb_light.size(), pb_heavy.size());
    // The lightweight form must still unpack to the full default table.
    util::UnpackBuffer ub(pb_light.bytes());
    Startpoint again = ctx.unpack_startpoint(ub);
    EXPECT_EQ(again.table(), ctx.runtime().table_of(1));
  });
}

TEST(ContextRsr, ForcedMethodOverridesSelection) {
  Runtime rt(sim_opts(simnet::Topology::single_partition(2)));
  run_mpmd(rt, {[&](Context& ctx) {
                  std::uint64_t done = 0;
                  ctx.register_handler("noop", [&](Context&, Endpoint&,
                                                   util::UnpackBuffer&) {
                    ++done;
                  });
                  ctx.wait_count(done, 1);
                },
                [&](Context& ctx) {
                  Startpoint sp = ctx.world_startpoint(0);
                  sp.force_method("tcp");  // slower but legal anywhere
                  ctx.rsr(sp, "noop");
                  EXPECT_EQ(sp.selected_method(), "tcp");
                  // Switching back re-runs selection.
                  sp.clear_forced_method();
                  EXPECT_TRUE(sp.selected_method().empty());
                }});
}

TEST(ContextRsr, ForcedInapplicableMethodThrows) {
  Runtime rt(sim_opts(simnet::Topology::two_partitions(1, 1)));
  run_mpmd(rt, {[&](Context&) {},
                [&](Context& ctx) {
                  Startpoint sp = ctx.world_startpoint(0);
                  sp.force_method("mpl");  // different partition
                  EXPECT_THROW(ctx.rsr(sp, "x"), util::MethodError);
                  sp.force_method("nonexistent");
                  EXPECT_THROW(ctx.rsr(sp, "x"), util::MethodError);
                }});
}

TEST(ContextRsr, RemovingDescriptorChangesSelection) {
  // Manual control per §3.2: deleting the fast entry falls through to tcp.
  Runtime rt(sim_opts(simnet::Topology::single_partition(2)));
  run_mpmd(rt, {[&](Context& ctx) {
                  std::uint64_t done = 0;
                  ctx.register_handler("noop", [&](Context&, Endpoint&,
                                                   util::UnpackBuffer&) {
                    ++done;
                  });
                  ctx.wait_count(done, 1);
                },
                [&](Context& ctx) {
                  Startpoint sp = ctx.world_startpoint(0);
                  sp.table().remove("mpl");
                  sp.invalidate_selection();
                  ctx.rsr(sp, "noop");
                  EXPECT_EQ(sp.selected_method(), "tcp");
                }});
}

TEST(ContextRsr, SelectionLogRecordsDecisions) {
  Runtime rt(sim_opts(simnet::Topology::two_partitions(1, 1)));
  run_mpmd(rt, {[&](Context& ctx) {
                  std::uint64_t done = 0;
                  ctx.register_handler("noop", [&](Context&, Endpoint&,
                                                   util::UnpackBuffer&) {
                    ++done;
                  });
                  ctx.wait_count(done, 1);
                },
                [&](Context& ctx) {
                  Startpoint sp = ctx.world_startpoint(0);
                  ctx.rsr(sp, "noop");
                  ASSERT_EQ(ctx.selection_log().size(), 1u);
                  const auto& rec = ctx.selection_log()[0];
                  EXPECT_EQ(rec.target, 0u);
                  EXPECT_EQ(rec.method, "tcp");
                  EXPECT_FALSE(rec.reason.empty());
                }});
}

TEST(ContextRsr, CommObjectsSharedAcrossStartpoints) {
  // Paper §3.1: communication objects are shared among startpoints that
  // reference the same context with the same method.
  Runtime rt(sim_opts(simnet::Topology::single_partition(2)));
  run_mpmd(rt, {[&](Context& ctx) {
                  std::uint64_t done = 0;
                  ctx.register_handler("noop", [&](Context&, Endpoint&,
                                                   util::UnpackBuffer&) {
                    ++done;
                  });
                  ctx.wait_count(done, 2);
                },
                [&](Context& ctx) {
                  Startpoint a = ctx.world_startpoint(0);
                  Startpoint b = ctx.world_startpoint(0);
                  ctx.rsr(a, "noop");
                  ctx.rsr(b, "noop");
                  EXPECT_EQ(a.link(0).conn.get(), b.link(0).conn.get());
                }});
}

TEST(ContextEndpoints, CreateDestroyLookup) {
  Runtime rt(sim_opts(simnet::Topology::single_partition(1)));
  rt.run([&](Context& ctx) {
    Endpoint& ep = ctx.create_endpoint();
    EXPECT_TRUE(ctx.has_endpoint(ep.id()));
    EXPECT_EQ(&ctx.endpoint(ep.id()), &ep);
    const EndpointId id = ep.id();
    ctx.destroy_endpoint(id);
    EXPECT_FALSE(ctx.has_endpoint(id));
    EXPECT_THROW(ctx.destroy_endpoint(id), util::UsageError);
    EXPECT_THROW(ctx.destroy_endpoint(1), util::UsageError);  // root
  });
}

TEST(ContextEnquiry, MethodsAndCounters) {
  Runtime rt(sim_opts(simnet::Topology::single_partition(2)));
  run_mpmd(rt, {[&](Context& ctx) {
                  std::uint64_t done = 0;
                  ctx.register_handler("noop", [&](Context&, Endpoint&,
                                                   util::UnpackBuffer&) {
                    ++done;
                  });
                  ctx.wait_count(done, 1);
                  EXPECT_GE(ctx.method_counters("mpl").recvs, 1u);
                  EXPECT_GE(ctx.method_counters("mpl").polls, 1u);
                },
                [&](Context& ctx) {
                  auto methods = ctx.methods();
                  EXPECT_EQ(methods.size(), 3u);
                  Startpoint sp = ctx.world_startpoint(0);
                  ctx.rsr(sp, "noop");
                  EXPECT_EQ(ctx.method_counters("mpl").sends, 1u);
                  EXPECT_GT(ctx.method_counters("mpl").bytes_sent, 0u);
                  EXPECT_THROW(ctx.method_counters("nope"),
                               util::MethodError);
                }});
}

TEST(Forwarding, RoutesViaForwarderAndDisablesTcpPolls) {
  // Two partitions of two; context 2 forwards for partition 1.  A TCP send
  // from partition 0 to context 3 must land at context 2 first and be
  // re-sent over MPL; context 3 never polls TCP.
  RuntimeOptions opts = sim_opts(simnet::Topology::two_partitions(2, 2));
  opts.forwarders[1] = 2;
  Runtime rt(opts);
  rt.trace().enable();

  run_mpmd(rt,
           {[&](Context& ctx) {
              Startpoint sp = ctx.world_startpoint(3);
              ctx.rsr(sp, "sink");
              EXPECT_EQ(sp.selected_method(), "tcp");
            },
            [&](Context&) {},
            [&](Context& ctx) {
              // The forwarder has no app work; it just polls.  Give it a
              // bounded servicing loop.
              for (int i = 0; i < 20000 && ctx.rsrs_delivered() == 0; ++i) {
                ctx.progress();
                if (ctx.now() > 10 * simnet::kSec) break;
              }
            },
            [&](Context& ctx) {
              EXPECT_FALSE(ctx.poll_enabled("tcp"));
              std::uint64_t done = 0;
              ctx.register_handler("sink", [&](Context&, Endpoint&,
                                               util::UnpackBuffer&) {
                ++done;
              });
              ctx.wait_count(done, 1);
              // Delivery came over MPL, not TCP.
              EXPECT_EQ(ctx.method_counters("tcp").recvs, 0u);
              EXPECT_GE(ctx.method_counters("mpl").recvs, 1u);
            }});

  EXPECT_GE(rt.trace().count(simnet::TraceKind::Forward, "mpl"), 1u);
}

TEST(Forwarding, MisconfiguredForwarderRejected) {
  RuntimeOptions opts = sim_opts(simnet::Topology::two_partitions(2, 2));
  opts.forwarders[1] = 0;  // context 0 is in partition 0
  EXPECT_THROW(Runtime rt(opts), util::UsageError);
}

TEST(Multicast, OneSendReachesAllGroupMembers) {
  RuntimeOptions opts = sim_opts(simnet::Topology::single_partition(4),
                                 {"local", "mpl", "tcp", "mcast"});
  Runtime rt(opts);
  std::array<int, 4> hits{0, 0, 0, 0};

  rt.run([&](Context& ctx) {
    if (ctx.id() == 0) {
      // Members join before the sender transmits; give them a head start.
      ctx.compute(100 * kUs);
      Startpoint group = nexus::proto::multicast_startpoint(ctx, 7);
      util::PackBuffer pb;
      pb.put_string("state-update");
      ctx.rsr(group, "update", pb);
      return;
    }
    std::uint64_t done = 0;
    Endpoint& ep = ctx.create_endpoint();
    ctx.register_handler("update",
                         [&](Context& c, Endpoint&, util::UnpackBuffer& ub) {
                           EXPECT_EQ(ub.get_string(), "state-update");
                           hits[c.id()]++;
                           ++done;
                         });
    nexus::proto::multicast_join(ctx, 7, ep);
    ctx.wait_count(done, 1);
  });

  EXPECT_EQ(hits[1], 1);
  EXPECT_EQ(hits[2], 1);
  EXPECT_EQ(hits[3], 1);
  // One logical send on the sender side.
  EXPECT_EQ(rt.context(0).method_counters("mcast").sends, 1u);
}

TEST(Udp, DropsAreLossyButBounded) {
  RuntimeOptions opts = sim_opts(simnet::Topology::single_partition(2),
                                 {"local", "udp"});
  opts.costs.udp_drop_prob = 0.3;
  opts.seed = 99;
  Runtime rt(opts);
  constexpr int kSends = 400;
  std::uint64_t received = 0;

  run_mpmd(rt, {[&](Context& ctx) {
                  ctx.register_handler("datagram",
                                       [&](Context&, Endpoint&,
                                           util::UnpackBuffer&) {
                                         ++received;
                                       });
                  // Drain for a bounded virtual interval.
                  const Time deadline = 5 * simnet::kSec;
                  while (ctx.now() < deadline && received < kSends) {
                    ctx.compute(1 * kMs);
                    ctx.progress();
                  }
                },
                [&](Context& ctx) {
                  Startpoint sp = ctx.world_startpoint(0);
                  for (int i = 0; i < kSends; ++i) ctx.rsr(sp, "datagram");
                }});

  // ~30% drop rate: expect between 50% and 90% delivered.
  EXPECT_GT(received, kSends / 2u);
  EXPECT_LT(received, static_cast<std::uint64_t>(kSends) * 9 / 10);
}

TEST(Udp, OversizedDatagramRejected) {
  RuntimeOptions opts = sim_opts(simnet::Topology::single_partition(2),
                                 {"local", "udp"});
  Runtime rt(opts);
  run_mpmd(rt, {[&](Context&) {},
                [&](Context& ctx) {
                  Startpoint sp = ctx.world_startpoint(0);
                  util::Bytes big(opts.costs.udp_mtu + 1, 0xff);
                  EXPECT_THROW(ctx.rsr(sp, "x", big), util::MethodError);
                }});
}

TEST(WrapperMethods, SecureRoundtripAndSharing) {
  RuntimeOptions opts = sim_opts(simnet::Topology::two_partitions(1, 1),
                                 {"local", "mpl", "secure", "tcp"});
  Runtime rt(opts);
  std::string got;
  run_mpmd(rt, {[&](Context& ctx) {
                  std::uint64_t done = 0;
                  ctx.register_handler("secret",
                                       [&](Context&, Endpoint&,
                                           util::UnpackBuffer& ub) {
                                         got = ub.get_string();
                                         ++done;
                                       });
                  ctx.wait_count(done, 1);
                },
                [&](Context& ctx) {
                  Startpoint sp = ctx.world_startpoint(0);
                  sp.force_method("secure");
                  util::PackBuffer pb;
                  pb.put_string("classified payload");
                  ctx.rsr(sp, "secret", pb);
                }});
  EXPECT_EQ(got, "classified payload");
}

TEST(WrapperMethods, CompressedRoundtrip) {
  RuntimeOptions opts = sim_opts(simnet::Topology::two_partitions(1, 1),
                                 {"local", "zrle", "tcp"});
  Runtime rt(opts);
  util::Bytes got;
  const util::Bytes original(4096, 0x42);  // highly compressible

  run_mpmd(rt, {[&](Context& ctx) {
                  std::uint64_t done = 0;
                  ctx.register_handler("blob",
                                       [&](Context&, Endpoint&,
                                           util::UnpackBuffer& ub) {
                                         got = ub.get_bytes();
                                         ++done;
                                       });
                  ctx.wait_count(done, 1);
                },
                [&](Context& ctx) {
                  Startpoint sp = ctx.world_startpoint(0);
                  sp.force_method("zrle");
                  util::PackBuffer pb;
                  pb.put_bytes(original);
                  ctx.rsr(sp, "blob", pb);
                  // Fewer bytes crossed the wire than the payload holds.
                  EXPECT_LT(ctx.method_counters("zrle").bytes_sent,
                            original.size());
                }});
  EXPECT_EQ(got, original);
}

}  // namespace
