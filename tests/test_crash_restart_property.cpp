// Crash/restart fault-domain tests (docs/ARCHITECTURE.md §14).
//
// Property: across many seeded random plans that kill and restart random
// non-root contexts -- stacked with udp drop storms and delay windows --
// every RSR the sender commits is delivered exactly once, even when the
// receiver reincarnates mid-window.  The root context (the sender) is never
// crashed, and every crash window is finite, so at least one survivor path
// eventually exists and the workload converges.
//
// Deterministic cases pin the epoch machinery the property relies on:
//   - ghost acks (acks describing a previous incarnation of the sender)
//     are rejected, with the rel_epoch_rejects counter asserted;
//   - stale Data frames from a dead incarnation are rejected at the
//     receiver instead of corrupting the new stream;
//   - a receiver that crashes mid-window comes back with a bumped epoch
//     and the write-ahead floor dup-drops retransmits of frames it already
//     delivered in its previous life.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <map>
#include <vector>

#include "fixture_runtime.hpp"
#include "nexus/runtime.hpp"
#include "proto/reliable.hpp"
#include "util/rng.hpp"

namespace {

using namespace nexus;
using nexus::testing::opts_with;
using nexus::testing::run_mpmd;
using simnet::kMs;
using simnet::kUs;

constexpr int kTrials = 200;
constexpr int kMsgs = 10;                ///< per receiver
constexpr Time kDeadline = 8000 * kMs;   ///< virtual-time give-up guard

simnet::FaultPlan random_crash_plan(util::Rng& rng, ContextId world) {
  simnet::FaultPlan plan;
  // Crash schedules: each non-root context gets up to two finite windows.
  for (ContextId c = 1; c < world; ++c) {
    if (!rng.chance(0.8)) continue;
    const Time from = rng.uniform(0, 80 * kMs);
    const Time until = from + rng.uniform(10 * kMs, 200 * kMs);
    plan.crash(c, from, until);
    if (rng.chance(0.3)) {
      const Time from2 = until + rng.uniform(5 * kMs, 80 * kMs);
      plan.crash(c, from2, from2 + rng.uniform(10 * kMs, 120 * kMs));
    }
  }
  // Link-level trouble on top, so crashes interleave with ordinary loss.
  if (rng.chance(0.5)) plan.drop("udp", 0.4 * rng.next_double());
  if (rng.chance(0.5)) {
    const Time from = rng.uniform(0, 200 * kMs);
    const Time until = from + rng.uniform(20 * kMs, 300 * kMs);
    if (rng.chance(0.5)) {
      plan.drop("udp", 0.6 * rng.next_double(), from, until);
    } else {
      plan.delay("udp", rng.uniform(0, 6 * kMs), from, until);
    }
  }
  // And sometimes a hard outage overlapping the crash schedule: a windowed
  // udp blackhole is the nastiest combination -- the wrapper's probes all
  // vanish while its peer may be mid-reincarnation.
  if (rng.chance(0.3)) {
    const Time from = rng.uniform(0, 150 * kMs);
    plan.blackhole("udp", from, from + rng.uniform(10 * kMs, 150 * kMs));
  }
  return plan;
}

void run_crash_trial(std::uint64_t seed) {
  util::Rng rng(seed);
  constexpr ContextId kWorld = 3;  // root sender + two crashing receivers

  // Half the trials carry a tcp survivor path next to rel+udp; the others
  // leave the wrapper alone in charge (delivery then rides retransmission
  // across the receiver's reincarnations).
  std::vector<std::string> modules = {"local", "rel+udp"};
  const bool with_tcp = rng.chance(0.5);
  if (with_tcp) modules.push_back("tcp");
  RuntimeOptions opts =
      opts_with(std::move(modules), simnet::Topology::single_partition(kWorld));
  opts.faults = random_crash_plan(rng, kWorld);
  opts.seed = seed;
  // Crash windows and the drain deadlines below are virtual-time idioms
  // that assume the shared single-shard clock (docs §13.4); pin threads=1
  // so the NEXUS_THREADS=4 TSan leg runs the suite unsharded.
  opts.threads = 1;
  opts.costs.udp_drop_prob = 0.3 * rng.next_double();  // silent loss
  opts.db.set("rel.max_retries", "40");
  opts.db.set("rel.rto_initial_us", "5000");
  opts.db.set("rel.rto_min_us", "1000");
  opts.db.set("rel.rto_max_us", "100000");
  opts.db.set("rel.ack_delay_us", "500");
  Runtime rt(opts);

  // Per receiver: payload value -> delivery count.
  std::map<std::uint64_t, int> delivered[kWorld];
  bool sender_gave_up = false;
  // Receivers must outlive the sender's window drain: lost acks are only
  // repaired by retransmits while the receiving side still answers.
  std::atomic<bool> sender_drained{false};

  std::vector<std::function<void(Context&)>> fns;
  fns.push_back([&](Context& ctx) {  // root sender, never crashed
    std::vector<Startpoint> sps;
    for (ContextId r = 1; r < kWorld; ++r) {
      sps.push_back(ctx.world_startpoint(r));
    }
    for (int i = 0; i < kMsgs; ++i) {
      for (ContextId r = 1; r < kWorld; ++r) {
        util::PackBuffer pb(16);
        pb.put_u64((static_cast<std::uint64_t>(r) << 32) |
                   static_cast<std::uint64_t>(i));
        // A send into a crash window exhausts failover and throws (the
        // default robust.retry_budget = 0 contract); the message was never
        // accepted by any method, so retrying it cannot duplicate.  The
        // retry budget is an absolute virtual-time horizon, not a count:
        // after a crash ends, the wrapper's dead-latch only clears once a
        // probing retransmit's ack crosses the (possibly drop-stormed)
        // channel, which can take over a second of simulated time.
        bool sent = false;
        while (!sent && ctx.now() < kDeadline / 2) {
          try {
            ctx.rsr(sps[r - 1], "seq", pb);
            sent = true;
          } catch (const util::MethodError&) {
            ctx.compute_with_polling(60 * kMs, 1 * kMs);
          }
        }
        if (!sent) sender_gave_up = true;
      }
      ctx.compute_with_polling(2 * kMs, 500 * kUs);
    }
    // Service retransmission timers until every accepted packet is acked.
    auto* rel = dynamic_cast<proto::ReliableModule*>(ctx.module("rel+udp"));
    ASSERT_NE(rel, nullptr);
    auto in_flight_total = [&] {
      std::uint64_t n = 0;
      for (ContextId r = 1; r < kWorld; ++r) n += rel->in_flight(r);
      return n;
    };
    while (in_flight_total() > 0 && ctx.now() < kDeadline) {
      ctx.compute_with_polling(10 * kMs, 1 * kMs);
    }
    EXPECT_EQ(in_flight_total(), 0u) << "seed " << seed;
    sender_drained.store(true, std::memory_order_release);
  });
  for (ContextId r = 1; r < kWorld; ++r) {
    fns.push_back([&, r](Context& ctx) {  // crashing receiver
      std::uint64_t got = 0;
      ctx.register_handler("seq",
                           [&](Context&, Endpoint&, util::UnpackBuffer& ub) {
                             ++delivered[r][ub.get_u64()];
                             ++got;
                           });
      while (!sender_drained.load(std::memory_order_acquire) &&
             ctx.now() < kDeadline) {
        ctx.compute_with_polling(10 * kMs, 1 * kMs);
      }
      EXPECT_EQ(got, static_cast<std::uint64_t>(kMsgs))
          << "seed " << seed << " receiver " << r;
    });
  }
  rt.run(std::move(fns));

  ASSERT_FALSE(sender_gave_up)
      << "seed " << seed << ": sender exhausted its retry budget";
  for (ContextId r = 1; r < kWorld; ++r) {
    for (int i = 0; i < kMsgs; ++i) {
      const std::uint64_t key = (static_cast<std::uint64_t>(r) << 32) |
                                static_cast<std::uint64_t>(i);
      ASSERT_EQ(delivered[r][key], 1)
          << "seed " << seed << ": receiver " << r << " message " << i
          << " delivered " << delivered[r][key] << " times"
          << (with_tcp ? " (tcp survivor path)" : "");
    }
  }
}

TEST(CrashRestartProperty, RandomCrashPlansDeliverExactlyOnce) {
  const std::uint64_t base = nexus::testing::test_seed();
  for (int t = 0; t < kTrials; ++t) {
    std::uint64_t state = base ^ (0x51ed2701b8f6c34dull * (t + 1));
    const std::uint64_t seed = util::splitmix64(state);
    run_crash_trial(seed);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "trial " << t << " (seed " << seed << ") failed";
    }
  }
}

// A delayed ack armed before the sender's crash flushes after its restart:
// it describes incarnation 1's window and must be rejected as a ghost ack
// (counter asserted), while the new incarnation's window starts clean and
// its own traffic is delivered exactly once.
TEST(CrashRestart, GhostAcksFromPreviousIncarnationRejected) {
  RuntimeOptions opts =
      opts_with({"local", "rel+udp"}, simnet::Topology::single_partition(2));
  opts.threads = 1;  // crash windows are single-shard clock idioms (§13.4)
  opts.faults.crash(1, 5 * kMs, 12 * kMs);
  // No count-triggered acks; one delayed ack 15 ms after the first commit,
  // i.e. after the sender has already restarted.
  opts.db.set("rel.ack_every", "1000");
  opts.db.set("rel.ack_delay_us", "15000");
  opts.db.set("rel.rto_initial_us", "200000");  // no retransmits in-window
  Runtime rt(opts);

  std::map<std::uint64_t, int> delivered;
  std::uint64_t ghost_rejects = 0;
  std::atomic<bool> sender_drained{false};

  run_mpmd(rt, {[&](Context& ctx) {  // receiver
                  std::uint64_t got = 0;
                  ctx.register_handler(
                      "seq", [&](Context&, Endpoint&, util::UnpackBuffer& ub) {
                        ++delivered[ub.get_u64()];
                        ++got;
                      });
                  // Outlive the sender's drain: the phase-2 delayed ack has
                  // to flush before this side stops polling.
                  while (!sender_drained.load(std::memory_order_acquire) &&
                         ctx.now() < 500 * kMs) {
                    ctx.compute_with_polling(2 * kMs, 500 * kUs);
                  }
                  EXPECT_EQ(got, 6u);
                },
                [&](Context& ctx) {  // sender, crashed at 5 ms
                  Startpoint sp = ctx.world_startpoint(0);
                  for (std::uint64_t i = 0; i < 3; ++i) {
                    util::PackBuffer pb(16);
                    pb.put_u64(i);
                    ctx.rsr(sp, "seq", pb);
                  }
                  EXPECT_EQ(ctx.incarnation(), 1u);
                  // Poll through the crash window; restart bumps the epoch.
                  while (ctx.now() < 20 * kMs) {
                    ctx.compute_with_polling(1 * kMs, 250 * kUs);
                  }
                  EXPECT_EQ(ctx.incarnation(), 2u);
                  // Second life: a fresh window (sequences restart at 0).
                  for (std::uint64_t i = 100; i < 103; ++i) {
                    util::PackBuffer pb(16);
                    pb.put_u64(i);
                    ctx.rsr(sp, "seq", pb);
                  }
                  auto* rel = dynamic_cast<proto::ReliableModule*>(
                      ctx.module("rel+udp"));
                  ASSERT_NE(rel, nullptr);
                  while (rel->in_flight(0) > 0 && ctx.now() < 500 * kMs) {
                    ctx.compute_with_polling(2 * kMs, 500 * kUs);
                  }
                  EXPECT_EQ(rel->in_flight(0), 0u);
                  ghost_rejects =
                      ctx.method_counters("rel+udp").rel_epoch_rejects;
                  sender_drained.store(true, std::memory_order_release);
                }});

  // The 15 ms delayed ack (rel_ack = 3 for incarnation 1) arrived after the
  // restart and was provably rejected instead of crediting the new window.
  EXPECT_GE(ghost_rejects, 1u);
  for (const std::uint64_t v : {0ull, 1ull, 2ull, 100ull, 101ull, 102ull}) {
    EXPECT_EQ(delivered[v], 1) << "payload " << v;
  }
}

// A Data frame still in flight when its sender dies arrives after the
// receiver has locked onto the sender's next incarnation: it is rejected
// (counter asserted) and never delivered -- in-memory state of a dead
// incarnation is lost, not resurrected into the new stream.
TEST(CrashRestart, StaleDataFromDeadIncarnationRejected) {
  RuntimeOptions opts =
      opts_with({"local", "rel+udp"}, simnet::Topology::single_partition(2));
  opts.threads = 1;  // crash windows are single-shard clock idioms (§13.4)
  // Frames sent in the first 2 ms take an extra 25 ms; the sender dies at
  // 3 ms and is back at 8 ms, so the delayed frame outlives its incarnation.
  opts.faults.delay("udp", 25 * kMs, 0, 2 * kMs);
  opts.faults.crash(1, 3 * kMs, 8 * kMs);
  opts.db.set("rel.rto_initial_us", "200000");  // the RTO never fires first
  Runtime rt(opts);

  std::map<std::uint64_t, int> delivered;
  std::uint64_t stale_rejects = 0;

  run_mpmd(rt, {[&](Context& ctx) {  // receiver
                  std::uint64_t got = 0;
                  ctx.register_handler(
                      "seq", [&](Context&, Endpoint&, util::UnpackBuffer& ub) {
                        ++delivered[ub.get_u64()];
                        ++got;
                      });
                  // Poll well past the stale frame's 25 ms arrival.
                  while (ctx.now() < 60 * kMs) {
                    ctx.compute_with_polling(2 * kMs, 500 * kUs);
                  }
                  EXPECT_EQ(got, 1u);
                  stale_rejects =
                      ctx.method_counters("rel+udp").rel_epoch_rejects;
                },
                [&](Context& ctx) {  // sender
                  Startpoint sp = ctx.world_startpoint(0);
                  util::PackBuffer pa(16);
                  pa.put_u64(7);  // delayed, then orphaned by the crash
                  ctx.rsr(sp, "seq", pa);
                  while (ctx.now() < 10 * kMs) {
                    ctx.compute_with_polling(1 * kMs, 250 * kUs);
                  }
                  EXPECT_EQ(ctx.incarnation(), 2u);
                  util::PackBuffer pb(16);
                  pb.put_u64(8);  // second life locks the receiver's epoch
                  ctx.rsr(sp, "seq", pb);
                  while (ctx.now() < 60 * kMs) {
                    ctx.compute_with_polling(2 * kMs, 500 * kUs);
                  }
                }});

  EXPECT_GE(stale_rejects, 1u);
  EXPECT_EQ(delivered[8], 1);
  EXPECT_EQ(delivered[7], 0)
      << "a dead incarnation's uncommitted frame must not be delivered";
}

// Receiver reincarnation mid-window: the sender keeps a full window in
// flight across the receiver's crash.  The write-ahead floor survives the
// restart, so retransmits of frames committed in the previous life are
// dup-dropped, frames purged with the old mailbox are retransmitted into
// the new life, and every sequence is delivered exactly once.
TEST(CrashRestart, ReceiverReincarnationMidWindowStaysExactlyOnce) {
  RuntimeOptions opts =
      opts_with({"local", "rel+udp"}, simnet::Topology::single_partition(2));
  opts.threads = 1;  // crash windows are single-shard clock idioms (§13.4)
  opts.faults.crash(1, 4 * kMs, 9 * kMs);
  opts.faults.drop("udp", 0.4, 0, 6 * kMs);  // lose acks + data pre-crash
  opts.db.set("rel.max_retries", "40");
  opts.db.set("rel.rto_initial_us", "3000");
  opts.db.set("rel.rto_min_us", "1000");
  opts.db.set("rel.rto_max_us", "50000");
  opts.db.set("rel.ack_delay_us", "500");
  Runtime rt(opts);

  constexpr int kN = 10;
  std::map<std::uint64_t, int> delivered;
  std::uint32_t receiver_incarnation = 0;
  std::atomic<bool> sender_drained{false};

  run_mpmd(rt, {[&](Context& ctx) {  // root sender, never crashed
                  Startpoint sp = ctx.world_startpoint(1);
                  for (std::uint64_t i = 0; i < kN; ++i) {
                    util::PackBuffer pb(16);
                    pb.put_u64(i);
                    bool sent = false;
                    for (int a = 0; a < 10 && !sent; ++a) {
                      try {
                        ctx.rsr(sp, "seq", pb);
                        sent = true;
                      } catch (const util::MethodError&) {
                        ctx.compute_with_polling(10 * kMs, 1 * kMs);
                      }
                    }
                    ASSERT_TRUE(sent) << "message " << i;
                    ctx.compute_with_polling(1 * kMs, 250 * kUs);
                  }
                  auto* rel = dynamic_cast<proto::ReliableModule*>(
                      ctx.module("rel+udp"));
                  ASSERT_NE(rel, nullptr);
                  while (rel->in_flight(1) > 0 && ctx.now() < 2000 * kMs) {
                    ctx.compute_with_polling(5 * kMs, 1 * kMs);
                  }
                  EXPECT_EQ(rel->in_flight(1), 0u);
                  sender_drained.store(true, std::memory_order_release);
                },
                [&](Context& ctx) {  // receiver, crashed at 4 ms
                  std::uint64_t got = 0;
                  ctx.register_handler(
                      "seq", [&](Context&, Endpoint&, util::UnpackBuffer& ub) {
                        ++delivered[ub.get_u64()];
                        ++got;
                      });
                  while (!sender_drained.load(std::memory_order_acquire) &&
                         ctx.now() < 2000 * kMs) {
                    ctx.compute_with_polling(2 * kMs, 500 * kUs);
                  }
                  EXPECT_EQ(got, static_cast<std::uint64_t>(kN));
                  receiver_incarnation = ctx.incarnation();
                }});

  EXPECT_EQ(receiver_incarnation, 2u);
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(delivered[i], 1)
        << "sequence " << i << " delivered " << delivered[i] << " times";
  }
}

}  // namespace
