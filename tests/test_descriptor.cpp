// Unit tests for communication descriptors and descriptor tables.
#include <gtest/gtest.h>

#include "nexus/descriptor.hpp"

namespace {

using nexus::CommDescriptor;
using nexus::DescriptorTable;
using nexus::util::PackBuffer;
using nexus::util::UnpackBuffer;

CommDescriptor desc(const char* method, nexus::ContextId ctx,
                    std::initializer_list<std::uint8_t> data = {}) {
  return CommDescriptor{method, ctx, nexus::util::Bytes(data)};
}

TEST(Descriptor, PackUnpackRoundtrip) {
  CommDescriptor d = desc("mpl", 7, {1, 2, 3});
  PackBuffer pb;
  d.pack(pb);
  UnpackBuffer ub(pb.bytes());
  EXPECT_EQ(CommDescriptor::unpack(ub), d);
  EXPECT_TRUE(ub.empty());
}

TEST(DescriptorTable, PackUnpackRoundtrip) {
  DescriptorTable t({desc("mpl", 3, {0}), desc("tcp", 3, {9, 9})});
  PackBuffer pb;
  t.pack(pb);
  UnpackBuffer ub(pb.bytes());
  EXPECT_EQ(DescriptorTable::unpack(ub), t);
}

TEST(DescriptorTable, PackedSizeIsTensOfBytes) {
  // Paper §3.1: "the cost of communicating a few tens of bytes of
  // descriptor table is insignificant" in the wide area -- check our tables
  // are in that regime.
  DescriptorTable t({desc("local", 3), desc("mpl", 3, {0, 0, 0, 1}),
                     desc("tcp", 3, {0, 0, 0, 3})});
  EXPECT_GT(t.packed_size(), 10u);
  EXPECT_LT(t.packed_size(), 100u);
}

TEST(DescriptorTable, OrderEncodesPreference) {
  DescriptorTable t({desc("mpl", 1), desc("tcp", 1)});
  EXPECT_EQ(t.at(0).method, "mpl");
  ASSERT_TRUE(t.find("tcp").has_value());
  EXPECT_EQ(*t.find("tcp"), 1u);
  EXPECT_FALSE(t.find("udp").has_value());
}

TEST(DescriptorTable, PrioritizeMovesToFront) {
  DescriptorTable t({desc("mpl", 1), desc("udp", 1), desc("tcp", 1)});
  EXPECT_TRUE(t.prioritize("tcp"));
  EXPECT_EQ(t.at(0).method, "tcp");
  EXPECT_EQ(t.at(1).method, "mpl");
  EXPECT_EQ(t.at(2).method, "udp");
  EXPECT_FALSE(t.prioritize("absent"));
}

TEST(DescriptorTable, RemoveDeletesAllMatching) {
  DescriptorTable t({desc("tcp", 1), desc("mpl", 1), desc("tcp", 1)});
  EXPECT_EQ(t.remove("tcp"), 2u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.remove("tcp"), 0u);
}

TEST(DescriptorTable, InsertAtPosition) {
  DescriptorTable t({desc("mpl", 1)});
  t.insert(0, desc("shm", 1));
  t.insert(99, desc("tcp", 1));  // clamped to end
  EXPECT_EQ(t.at(0).method, "shm");
  EXPECT_EQ(t.at(1).method, "mpl");
  EXPECT_EQ(t.at(2).method, "tcp");
}

TEST(DescriptorTable, ReorderAppliesPermutation) {
  DescriptorTable t({desc("mpl", 1), desc("udp", 1), desc("tcp", 1)});
  t.reorder({2, 0, 1});  // perm[i] = old position moving to position i
  EXPECT_EQ(t.at(0).method, "tcp");
  EXPECT_EQ(t.at(1).method, "mpl");
  EXPECT_EQ(t.at(2).method, "udp");
  t.reorder({0, 1, 2});  // identity is a no-op
  EXPECT_EQ(t.at(0).method, "tcp");
}

TEST(DescriptorTable, ReorderRejectsNonPermutations) {
  DescriptorTable t({desc("mpl", 1), desc("tcp", 1)});
  EXPECT_THROW(t.reorder({0}), std::invalid_argument);         // wrong size
  EXPECT_THROW(t.reorder({0, 0}), std::invalid_argument);      // duplicate
  EXPECT_THROW(t.reorder({0, 2}), std::invalid_argument);      // out of range
  EXPECT_THROW(t.reorder({0, 1, 2}), std::invalid_argument);   // too long
  EXPECT_EQ(t.at(0).method, "mpl");  // failed reorders leave order intact
}

TEST(DescriptorTable, EmptyTableBehaviour) {
  DescriptorTable t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.context(), nexus::kNoContext);
  PackBuffer pb;
  t.pack(pb);
  UnpackBuffer ub(pb.bytes());
  EXPECT_TRUE(DescriptorTable::unpack(ub).empty());
}

}  // namespace
