// Automatic method failover under injected faults: the health tracker's
// state machine, mid-stream failover with exactly-once delivery, backoff
// capping on a flapping link, restore after a partition heals, and the
// enquiry surfaces (selection log, explain_selection, health status).
#include <gtest/gtest.h>

#include <map>

#include "fixture_runtime.hpp"
#include "nexus/health.hpp"
#include "nexus/runtime.hpp"

namespace {

using namespace nexus;
using nexus::testing::opts_with;
using simnet::kMs;
using simnet::kUs;

/// Sender side of the canonical chaos stream: `count` sequence-numbered
/// RSRs, one every `interval`.
void send_stream(Context& ctx, Startpoint& sp, int count, Time interval) {
  for (int i = 0; i < count; ++i) {
    util::PackBuffer pb(16);
    pb.put_u64(static_cast<std::uint64_t>(i));
    ctx.rsr(sp, "seq", pb);
    ctx.compute_with_polling(interval, 100 * kUs);
  }
}

/// Receiver side: count deliveries per sequence number.
void recv_stream(Context& ctx, std::map<std::uint64_t, int>& per_seq,
                 std::uint64_t& total, int count) {
  ctx.register_handler("seq",
                       [&](Context&, Endpoint&, util::UnpackBuffer& ub) {
                         ++per_seq[ub.get_u64()];
                         ++total;
                       });
  ctx.wait_count(total, static_cast<std::uint64_t>(count));
  // Drain past the last delivery: a duplicate would land here and break
  // the per-sequence exactly-once assertions.
  ctx.compute_with_polling(5 * kMs, 100 * kUs);
}

TEST(HealthTrackerUnit, StateMachineTransitions) {
  HealthParams hp;
  hp.fail_threshold = 3;
  hp.backoff_initial = 10 * kMs;
  hp.backoff_multiplier = 2.0;
  hp.backoff_max = 40 * kMs;
  hp.backoff_jitter = 0.0;  // exact arithmetic below
  HealthTracker t(hp, /*seed=*/7);
  const std::uint32_t m = 1, dst = 9;

  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.usable(m, dst, 0));
  EXPECT_EQ(t.status(m, dst, 0).state, MethodHealth::Healthy);

  // Two transient failures: Suspect, still selectable, action Retry.
  EXPECT_EQ(t.on_failure(m, dst, 0, /*hard=*/false),
            HealthTracker::FailAction::Retry);
  EXPECT_EQ(t.on_failure(m, dst, 0, false), HealthTracker::FailAction::Retry);
  EXPECT_EQ(t.status(m, dst, 0).state, MethodHealth::Suspect);
  EXPECT_TRUE(t.usable(m, dst, 0));
  EXPECT_FALSE(t.empty());

  // Third consecutive failure crosses the threshold: Dead, quarantined.
  EXPECT_EQ(t.on_failure(m, dst, 0, false),
            HealthTracker::FailAction::Failover);
  EXPECT_EQ(t.status(m, dst, 0).state, MethodHealth::Dead);
  EXPECT_FALSE(t.usable(m, dst, 5 * kMs));
  EXPECT_EQ(t.status(m, dst, 0).failovers, 1u);

  // Backoff expires: Probation, selectable again (the probe).
  EXPECT_TRUE(t.usable(m, dst, 10 * kMs));
  EXPECT_EQ(t.status(m, dst, 10 * kMs).state, MethodHealth::Probation);

  // Failed probe doubles the backoff from the probe time.
  t.on_failure(m, dst, 10 * kMs, false);
  EXPECT_FALSE(t.usable(m, dst, 10 * kMs + 19 * kMs));
  EXPECT_TRUE(t.usable(m, dst, 10 * kMs + 20 * kMs));

  // Two more failed probes pin the backoff at the cap (40ms, not 80ms).
  t.on_failure(m, dst, 30 * kMs, false);
  t.on_failure(m, dst, 70 * kMs, false);
  EXPECT_EQ(t.status(m, dst, 70 * kMs).backoff, 40 * kMs);

  // Successful probe restores.
  EXPECT_TRUE(t.on_success(m, dst));
  EXPECT_EQ(t.status(m, dst, 200 * kMs).state, MethodHealth::Healthy);
  EXPECT_EQ(t.status(m, dst, 200 * kMs).restores, 1u);

  // A hard (dead-verdict) failure quarantines immediately, no threshold.
  EXPECT_EQ(t.on_failure(m, dst, 200 * kMs, /*hard=*/true),
            HealthTracker::FailAction::Failover);
  EXPECT_EQ(t.status(m, dst, 200 * kMs).state, MethodHealth::Dead);
}

TEST(Failover, KillFastMethodMidStreamDeliversExactlyOnce) {
  // The ISSUE's headline scenario: aal5 (fast, preferred) dies mid-stream;
  // every message still arrives exactly once because the runtime fails the
  // link over to tcp automatically.
  RuntimeOptions opts = opts_with({"local", "aal5", "tcp"},
                                  simnet::Topology::two_partitions(1, 1));
  opts.faults.blackhole("aal5", /*from=*/500 * kMs);
  opts.seed = nexus::testing::test_seed();
  Runtime rt(opts);
  constexpr int kMsgs = 30;
  std::map<std::uint64_t, int> per_seq;
  std::uint64_t total = 0;
  rt.run([&](Context& ctx) {
    if (ctx.id() == 0) {
      recv_stream(ctx, per_seq, total, kMsgs);
      return;
    }
    Startpoint sp = ctx.world_startpoint(0);
    send_stream(ctx, sp, kMsgs, 50 * kMs);
    // Both substrates carried traffic: aal5 before the kill, tcp after.
    EXPECT_GT(ctx.method_counters("aal5").sends, 0u);
    EXPECT_GT(ctx.method_counters("tcp").sends, 0u);
    EXPECT_GT(ctx.method_counters("aal5").send_errors, 0u);
    EXPECT_EQ(sp.selected_method(), "tcp");
    EXPECT_GE(ctx.method_health("aal5", 0).failovers, 1u);
    // The failover is explained in the selection log.
    bool logged = false;
    for (const auto& rec : ctx.selection_log()) {
      if (rec.reason.find("failover") != std::string::npos) logged = true;
    }
    EXPECT_TRUE(logged);
  });
  ASSERT_EQ(total, static_cast<std::uint64_t>(kMsgs));
  for (int i = 0; i < kMsgs; ++i) {
    EXPECT_EQ(per_seq[static_cast<std::uint64_t>(i)], 1)
        << "sequence " << i << " not delivered exactly once";
  }
}

TEST(Failover, FlappingLinkBackoffCapsReprobeRate) {
  // aal5 is down for the whole run.  The exponential backoff must cap the
  // rate of restore probes: over ~5 simulated seconds the dead method sees
  // a bounded number of attempts, not one per message.
  RuntimeOptions opts = opts_with({"local", "aal5", "tcp"},
                                  simnet::Topology::two_partitions(1, 1));
  opts.faults.blackhole("aal5", 0);
  opts.seed = nexus::testing::test_seed();
  Runtime rt(opts);
  constexpr int kMsgs = 100;
  std::map<std::uint64_t, int> per_seq;
  std::uint64_t total = 0;
  rt.run([&](Context& ctx) {
    if (ctx.id() == 0) {
      recv_stream(ctx, per_seq, total, kMsgs);
      return;
    }
    Startpoint sp = ctx.world_startpoint(0);
    send_stream(ctx, sp, kMsgs, 50 * kMs);
    const std::uint64_t probes = ctx.method_counters("aal5").send_errors;
    // 100 sends over ~5s.  Backoff 20ms doubling to a 500ms cap admits the
    // initial failure plus a handful of doubling probes plus ~9 capped
    // probes; leave headroom for jitter but stay far below one probe per
    // message.
    EXPECT_GE(probes, 2u);
    EXPECT_LE(probes, 40u);
    EXPECT_EQ(sp.selected_method(), "tcp");
  });
  ASSERT_EQ(total, static_cast<std::uint64_t>(kMsgs));
  for (int i = 0; i < kMsgs; ++i) {
    EXPECT_EQ(per_seq[static_cast<std::uint64_t>(i)], 1);
  }
}

TEST(Failover, PartitionHealRestoresPreferredMethod) {
  // aal5 is blackholed for [200ms, 600ms) then heals.  Once the backoff
  // expires after the heal, the restore probe succeeds and selection moves
  // the link back to the faster method.
  RuntimeOptions opts = opts_with({"local", "aal5", "tcp"},
                                  simnet::Topology::two_partitions(1, 1));
  opts.faults.blackhole("aal5", 200 * kMs, 600 * kMs);
  opts.seed = nexus::testing::test_seed();
  Runtime rt(opts);
  constexpr int kMsgs = 30;
  std::map<std::uint64_t, int> per_seq;
  std::uint64_t total = 0;
  rt.run([&](Context& ctx) {
    if (ctx.id() == 0) {
      recv_stream(ctx, per_seq, total, kMsgs);
      return;
    }
    Startpoint sp = ctx.world_startpoint(0);
    send_stream(ctx, sp, kMsgs, 50 * kMs);  // stream runs to ~1.5s
    EXPECT_EQ(sp.selected_method(), "aal5");  // won back after the heal
    EXPECT_GE(ctx.method_health("aal5", 0).failovers, 1u);
    EXPECT_GE(ctx.method_health("aal5", 0).restores, 1u);
    EXPECT_EQ(ctx.method_health("aal5", 0).state, MethodHealth::Healthy);
  });
  ASSERT_EQ(total, static_cast<std::uint64_t>(kMsgs));
  for (int i = 0; i < kMsgs; ++i) {
    EXPECT_EQ(per_seq[static_cast<std::uint64_t>(i)], 1);
  }
}

TEST(Failover, ForcedMethodNeverFailsOverItThrows) {
  // force_method is an application contract: the runtime retries transient
  // failures but must not silently reroute.  When the forced method is
  // declared dead, the RSR throws instead.
  RuntimeOptions opts = opts_with({"local", "aal5", "tcp"},
                                  simnet::Topology::two_partitions(1, 1));
  opts.faults.drop("tcp", 1.0);
  Runtime rt(opts);
  rt.run([&](Context& ctx) {
    if (ctx.id() != 1) return;
    Startpoint sp = ctx.world_startpoint(0);
    sp.force_method("tcp");
    EXPECT_THROW(ctx.rsr(sp, "noop"), util::MethodError);
    // The threshold's worth of retries happened on the forced method; the
    // healthy alternative was never touched.
    EXPECT_GE(ctx.method_counters("tcp").send_errors,
              static_cast<std::uint64_t>(
                  ctx.runtime().options().health.fail_threshold));
    EXPECT_EQ(ctx.method_counters("aal5").sends, 0u);
  });
}

TEST(Failover, ExplainSelectionReportsQuarantine) {
  RuntimeOptions opts = opts_with({"local", "aal5", "tcp"},
                                  simnet::Topology::two_partitions(1, 1));
  opts.faults.blackhole("aal5", 0);
  Runtime rt(opts);
  std::uint64_t done = 0;
  rt.run([&](Context& ctx) {
    nexus::testing::register_counter(ctx, "noop", done);
    if (ctx.id() != 1) {
      ctx.wait_count(done, 1);
      return;
    }
    Startpoint sp = ctx.world_startpoint(0);
    ctx.rsr(sp, "noop");  // aal5 dies, link fails over to tcp
    telemetry::SelectionReport rep = ctx.explain_selection(sp);
    ASSERT_EQ(rep.links.size(), 1u);
    EXPECT_EQ(rep.links[0].winner, "tcp");
    bool quarantined_row = false;
    for (const auto& c : rep.links[0].candidates) {
      if (c.method == "aal5") {
        EXPECT_EQ(c.status, telemetry::CandidateStatus::Quarantined);
        EXPECT_NE(c.detail.find("quarantined"), std::string::npos);
        quarantined_row = true;
      }
    }
    EXPECT_TRUE(quarantined_row);
  });
  EXPECT_EQ(done, 1u);
}

TEST(Failover, AllMethodsQuarantinedProbesAndRecovers) {
  // Only tcp applies across the partitions and it drops everything for the
  // first 100ms.  The first RSR exhausts its retry budget and throws; after
  // the window and the backoff, the next RSR's probe succeeds and the
  // method is restored.
  RuntimeOptions opts = opts_with({"local", "tcp"},
                                  simnet::Topology::two_partitions(1, 1));
  opts.faults.drop("tcp", 1.0, /*from=*/0, /*until=*/100 * kMs);
  // Time-windowed fault plans + backoff windows assume one virtual clock
  // across contexts: single-shard only (docs/ARCHITECTURE.md §13).
  opts.threads = 1;
  Runtime rt(opts);
  std::uint64_t done = 0;
  rt.run([&](Context& ctx) {
    nexus::testing::register_counter(ctx, "noop", done);
    if (ctx.id() != 1) {
      ctx.compute_with_polling(900 * kMs, 1 * kMs);
      return;
    }
    Startpoint sp = ctx.world_startpoint(0);
    EXPECT_THROW(ctx.rsr(sp, "noop"), util::MethodError);
    EXPECT_EQ(ctx.method_health("tcp", 0).state, MethodHealth::Dead);
    // Ride past the fault window and the (capped, jittered) backoff.
    ctx.compute_with_polling(700 * kMs, 1 * kMs);
    ctx.rsr(sp, "noop");  // the restore probe
    EXPECT_GE(ctx.method_health("tcp", 0).restores, 1u);
    EXPECT_EQ(ctx.method_health("tcp", 0).state, MethodHealth::Healthy);
  });
  EXPECT_EQ(done, 1u);
}

}  // namespace
