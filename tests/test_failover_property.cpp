// Property test for the fault plane + failover policy: across many seeded
// random fault plans, as long as at least one applicable method stays
// alive, (1) every RSR is delivered exactly once, and (2) selection never
// settles on a blackholed method for two consecutive sends.
//
// Plan shape per trial: tcp is the designated survivor (it only ever gets
// benign faults -- extra delay, or detectable drop with p <= 0.3); aal5
// gets arbitrary blackhole windows, drop rates up to 1.0, and delays.
// Corrupt faults are deliberately excluded here: corruption is detected at
// the *receiver*, after the send reported success, so a corrupt-faulted
// message is lost by design (quarantined) and would falsify the
// exactly-once property.  Corruption semantics are pinned separately in
// test_fault_injection.cpp.
//
// The base seed comes from NEXUS_TEST_SEED (the CI chaos job runs ten);
// every trial derives deterministically from it, so any failure reproduces
// by exporting the seed the log names.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fixture_runtime.hpp"
#include "nexus/adapt/adaptive_selector.hpp"
#include "nexus/runtime.hpp"
#include "util/rng.hpp"

namespace {

using namespace nexus;
using nexus::testing::opts_with;
using simnet::kMs;
using simnet::kUs;

constexpr int kTrials = 200;
constexpr int kMsgs = 30;
constexpr Time kInterval = 20 * kMs;
constexpr Time kDeadline = 5000 * kMs;  ///< receiver gives up (sim time)

struct BlackholeWindow {
  Time from = 0;
  Time until = 0;
  bool covers(Time t0, Time t1) const { return t0 >= from && t1 < until; }
};

struct TrialPlan {
  simnet::FaultPlan faults;
  std::vector<BlackholeWindow> aal5_blackholes;
};

/// One send as the sender observed it: which method the link settled on
/// and the clock interval the RSR (including its internal retries) spanned.
struct SendRecord {
  std::string method;
  Time t0 = 0;
  Time t1 = 0;
};

TrialPlan random_plan(util::Rng& rng) {
  TrialPlan plan;
  // Survivor faults on tcp: benign, delivery-preserving.
  if (rng.chance(0.5)) {
    plan.faults.delay("tcp", rng.uniform(0, 5 * kMs));
  } else if (rng.chance(0.6)) {
    plan.faults.drop("tcp", 0.3 * rng.next_double());
  }
  // Hostile faults on aal5.
  const int n = 1 + static_cast<int>(rng.next_below(3));
  for (int i = 0; i < n; ++i) {
    switch (rng.next_below(3)) {
      case 0: {  // blackhole window somewhere inside the stream's lifetime
        const Time from = rng.uniform(0, 600 * kMs);
        const Time until = from + rng.uniform(50 * kMs, 900 * kMs);
        plan.faults.blackhole("aal5", from, until);
        plan.aal5_blackholes.push_back({from, until});
        break;
      }
      case 1:
        plan.faults.drop("aal5", rng.next_double());
        break;
      default:
        plan.faults.delay("aal5", rng.uniform(0, 8 * kMs));
        break;
    }
  }
  return plan;
}

void run_trial(std::uint64_t seed) {
  util::Rng rng(seed);
  TrialPlan plan = random_plan(rng);

  RuntimeOptions opts = opts_with({"local", "aal5", "tcp"},
                                  simnet::Topology::two_partitions(1, 1));
  opts.faults = plan.faults;
  opts.seed = seed;
  // Time-windowed fault plans and the deadline drain loops below assume
  // the shared single-shard virtual clock (docs §13.4), so pin threads=1
  // even when the sharded CI leg exports NEXUS_THREADS.
  opts.threads = 1;
  Runtime rt(opts);

  std::map<std::uint64_t, int> per_seq;
  std::uint64_t total = 0;
  std::vector<SendRecord> sends;
  bool sender_gave_up = false;

  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {  // receiver, deadline-guarded (never hangs)
        ctx.register_handler("seq",
                             [&](Context&, Endpoint&, util::UnpackBuffer& ub) {
                               ++per_seq[ub.get_u64()];
                               ++total;
                             });
        while (total < static_cast<std::uint64_t>(kMsgs) &&
               ctx.now() < kDeadline) {
          ctx.compute_with_polling(20 * kMs, 1 * kMs);
        }
        // Duplicate sweep: anything still in flight lands now.
        ctx.compute_with_polling(20 * kMs, 1 * kMs);
      },
      [&](Context& ctx) {  // sender
        Startpoint sp = ctx.world_startpoint(0);
        for (int i = 0; i < kMsgs; ++i) {
          util::PackBuffer pb(16);
          pb.put_u64(static_cast<std::uint64_t>(i));
          // A single RSR may exhaust its retry budget while both methods
          // are quarantined by an unlucky drop streak; backing off and
          // re-issuing cannot duplicate (a failed send never delivered),
          // so the exactly-once property is preserved.
          bool sent = false;
          for (int attempt = 0; attempt < 6 && !sent; ++attempt) {
            const Time t0 = ctx.now();
            try {
              ctx.rsr(sp, "seq", pb);
              sent = true;
              sends.push_back({sp.selected_method(), t0, ctx.now()});
            } catch (const util::MethodError&) {
              ctx.compute_with_polling(100 * kMs, 1 * kMs);
            }
          }
          if (!sent) sender_gave_up = true;
          ctx.compute_with_polling(kInterval, 1 * kMs);
        }
      }});

  // Property 1: nothing lost, nothing duplicated.
  ASSERT_FALSE(sender_gave_up) << "seed " << seed
                               << ": sender exhausted its retry budget";
  ASSERT_EQ(total, static_cast<std::uint64_t>(kMsgs)) << "seed " << seed;
  for (int i = 0; i < kMsgs; ++i) {
    ASSERT_EQ(per_seq[static_cast<std::uint64_t>(i)], 1)
        << "seed " << seed << ": sequence " << i
        << " not delivered exactly once";
  }

  // Property 2: the link never settles on a blackholed method for two
  // consecutive sends.  (A send whose interval straddles a window edge is
  // exempt: it may legitimately have gone out before the fault started.)
  auto fully_blackholed = [&](const SendRecord& s) {
    if (s.method != "aal5") return false;
    for (const auto& w : plan.aal5_blackholes) {
      if (w.covers(s.t0, s.t1)) return true;
    }
    return false;
  };
  for (std::size_t i = 1; i < sends.size(); ++i) {
    ASSERT_FALSE(fully_blackholed(sends[i - 1]) && fully_blackholed(sends[i]))
        << "seed " << seed << ": sends " << (i - 1) << " and " << i
        << " both settled on a blackholed method";
  }
}

TEST(FailoverProperty, RandomFaultPlansNeverLoseRsrs) {
  const std::uint64_t base = nexus::testing::test_seed();
  for (int t = 0; t < kTrials; ++t) {
    std::uint64_t state = base ^ (0x9e3779b97f4a7c15ull * (t + 1));
    const std::uint64_t seed = util::splitmix64(state);
    run_trial(seed);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "trial " << t << " (seed " << seed << ") failed";
    }
  }
}

// Chaos regression for the adaptive engine: a blackhole outage on the
// modeled-best method must (a) fail the traffic over to the surviving
// method for the outage's duration and (b) NOT demote the victim forever --
// once the quarantine probation passes, the still-confident cost estimate
// (half-life 500 ms > the 200 ms outage) wins the route back.
TEST(FailoverProperty, AdaptiveSelectorFailsOverAndWinsTheRouteBack) {
  constexpr Time kOutageFrom = 200 * kMs;
  constexpr Time kOutageUntil = 400 * kMs;
  constexpr Time kHorizon = 1000 * kMs;
  // Detection slack: the first send after the outage starts may still
  // settle on mpl while the failure is being detected and quarantined.
  constexpr Time kSlack = 60 * kMs;

  util::Rng rng(nexus::testing::test_seed());
  RuntimeOptions opts =
      nexus::testing::sim_opts(simnet::Topology::single_partition(2));
  opts.adaptive = true;
  opts.seed = nexus::testing::test_seed();
  opts.faults.blackhole("mpl", kOutageFrom, kOutageUntil);
  // Window-timed outage + deadline loops: single-shard clock only (§13.4).
  opts.threads = 1;
  Runtime rt(opts);

  std::uint64_t delivered = 0;
  std::vector<SendRecord> sends;
  bool sender_gave_up = false;

  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {  // receiver, deadline-guarded
        ctx.register_handler("seq",
                             [&](Context&, Endpoint&, util::UnpackBuffer&) {
                               ++delivered;
                             });
        while (ctx.now() < kHorizon + 100 * kMs) {
          ctx.compute_with_polling(20 * kMs, 1 * kMs);
        }
      },
      [&](Context& ctx) {  // sender on the adaptive policy
        ctx.set_selector(std::make_unique<adapt::AdaptiveSelector>());
        Startpoint sp = ctx.world_startpoint(0);
        while (ctx.now() < kHorizon) {
          bool sent = false;
          for (int attempt = 0; attempt < 6 && !sent; ++attempt) {
            const Time t0 = ctx.now();
            try {
              ctx.rsr(sp, "seq");
              sent = true;
              sends.push_back({sp.selected_method(), t0, ctx.now()});
            } catch (const util::MethodError&) {
              ctx.compute_with_polling(50 * kMs, 1 * kMs);
            }
          }
          if (!sent) sender_gave_up = true;
          // ~10 ms cadence with seeded jitter so evaluation edges are not
          // phase-locked to the send times.
          ctx.compute_with_polling(10 * kMs + rng.uniform(0, 5 * kMs),
                                   1 * kMs);
        }
      }});

  ASSERT_FALSE(sender_gave_up) << "sender exhausted its retry budget";
  ASSERT_GE(sends.size(), 40u);
  EXPECT_EQ(delivered, sends.size()) << "failover lost or duplicated RSRs";

  // (a) Converged on the fast method before the outage...
  std::vector<std::string> pre, post;
  for (const auto& s : sends) {
    if (s.t1 < kOutageFrom) pre.push_back(s.method);
    if (s.t0 >= kHorizon - 50 * kMs) post.push_back(s.method);
  }
  ASSERT_GE(pre.size(), 3u);
  for (std::size_t i = pre.size() - 3; i < pre.size(); ++i) {
    EXPECT_EQ(pre[i], "mpl") << "send " << i << " before the outage";
  }
  // ...and every send inside the outage (past detection slack) avoided it.
  for (const auto& s : sends) {
    if (s.t0 >= kOutageFrom + kSlack && s.t1 < kOutageUntil) {
      EXPECT_EQ(s.method, "tcp")
          << "send at t=" << s.t0 / kMs << "ms settled on the dead method";
    }
  }
  // (b) Won the route back well before the horizon.
  ASSERT_GE(post.size(), 1u);
  for (const auto& m : post) {
    EXPECT_EQ(m, "mpl") << "route never recovered after the outage";
  }
}

}  // namespace
