// Fault-plane mechanics: deterministic drop / delay / corrupt / blackhole
// schedules consulted by every simulated send, plus the realtime fault
// hook.  The failover policy on top is pinned by test_failover.cpp; this
// suite checks the faults themselves surface with the right DeliveryStatus,
// counters, and timing.
#include <gtest/gtest.h>

#include "fixture_runtime.hpp"
#include "nexus/runtime.hpp"

namespace {

using namespace nexus;
using nexus::testing::opts_with;
using nexus::testing::register_counter;
using simnet::kMs;
using simnet::kUs;

TEST(FaultInjection, BlackholeFailsForcedMethodDead) {
  // A blackholed method is hard-down: a *forced* send over it must throw
  // (failover is disabled while a method is forced) and the failure must be
  // visible in send_errors.
  RuntimeOptions opts = opts_with({"local", "tcp"},
                                  simnet::Topology::two_partitions(1, 1));
  opts.faults.blackhole("tcp", 0);
  Runtime rt(opts);
  std::uint64_t done = 0;
  rt.run([&](Context& ctx) {
    register_counter(ctx, "noop", done);
    if (ctx.id() != 1) return;  // nothing will ever arrive
    Startpoint sp = ctx.world_startpoint(0);
    sp.force_method("tcp");
    EXPECT_THROW(ctx.rsr(sp, "noop"), util::MethodError);
    EXPECT_GT(ctx.method_counters("tcp").send_errors, 0u);
  });
  EXPECT_EQ(done, 0u);
}

TEST(FaultInjection, ProbabilisticDropIsTransientAndRetriedToDelivery) {
  // Detected loss (drop) earns a transient verdict: the failover loop
  // retries on the same method until a send gets through, so the RSR is
  // delivered exactly once despite the lossy window.
  RuntimeOptions opts = opts_with({"local", "tcp"},
                                  simnet::Topology::two_partitions(1, 1));
  opts.faults.drop("tcp", 0.5);
  opts.seed = nexus::testing::test_seed();
  Runtime rt(opts);
  std::uint64_t done = 0;
  std::uint64_t errors = 0;
  rt.run([&](Context& ctx) {
    register_counter(ctx, "noop", done);
    if (ctx.id() != 1) {
      ctx.wait_count(done, 8);
      ctx.compute_with_polling(2 * kMs, 100 * kUs);
      return;
    }
    Startpoint sp = ctx.world_startpoint(0);
    for (int i = 0; i < 8; ++i) {
      ctx.rsr(sp, "noop");
      ctx.compute_with_polling(1 * kMs, 100 * kUs);
    }
    errors = ctx.method_counters("tcp").send_errors;
  });
  EXPECT_EQ(done, 8u);  // exactly once each: retries never duplicate
  EXPECT_GT(errors, 0u);  // and the lossy window really did bite
}

TEST(FaultInjection, DelayPushesArrivalBack) {
  constexpr Time kExtra = 5 * kMs;
  RuntimeOptions opts = opts_with({"local", "tcp"},
                                  simnet::Topology::two_partitions(1, 1));
  opts.faults.delay("tcp", kExtra, 0);
  Runtime rt(opts);
  Time sent_at = -1;
  Time arrived_at = -1;
  rt.run([&](Context& ctx) {
    std::uint64_t done = 0;
    ctx.register_handler("stamp",
                         [&](Context& c, Endpoint&, util::UnpackBuffer&) {
                           arrived_at = c.now();
                           ++done;
                         });
    if (ctx.id() != 1) {
      ctx.wait_count(done, 1);
      return;
    }
    Startpoint sp = ctx.world_startpoint(0);
    sent_at = ctx.now();
    ctx.rsr(sp, "stamp");
  });
  ASSERT_GE(arrived_at, 0);
  EXPECT_GE(arrived_at - sent_at, kExtra);
}

TEST(FaultInjection, CorruptPacketIsQuarantinedNotDispatched) {
  // Corruption is receiver-detected: the send succeeds, the packet arrives,
  // the integrity check quarantines it before dispatch.  recv_corrupt
  // counts it; the handler never runs.
  RuntimeOptions opts = opts_with({"local", "tcp"},
                                  simnet::Topology::two_partitions(1, 1));
  opts.faults.corrupt("tcp", 1.0);
  // The receiver's bounded drain window assumes the sender shares its
  // virtual clock: single-shard only (docs/ARCHITECTURE.md §13).
  opts.threads = 1;
  Runtime rt(opts);
  std::uint64_t done = 0;
  std::uint64_t quarantined = 0;
  rt.run([&](Context& ctx) {
    register_counter(ctx, "noop", done);
    if (ctx.id() != 1) {
      ctx.compute_with_polling(20 * kMs, 100 * kUs);
      quarantined = ctx.method_counters("tcp").recv_corrupt;
      return;
    }
    Startpoint sp = ctx.world_startpoint(0);
    ctx.rsr(sp, "noop");
    EXPECT_EQ(ctx.method_counters("tcp").send_errors, 0u);  // send saw Ok
    ctx.compute_with_polling(20 * kMs, 100 * kUs);
  });
  EXPECT_EQ(done, 0u);
  EXPECT_EQ(quarantined, 1u);
}

TEST(FaultInjection, SameSeedSameFaultSequence) {
  // The whole point of the fault plane: a (plan, seed, workload) triple
  // replays exactly.
  auto run_once = [](std::uint64_t seed) {
    RuntimeOptions opts = opts_with({"local", "tcp"},
                                    simnet::Topology::two_partitions(1, 1));
    opts.faults.drop("tcp", 0.4);
    opts.seed = seed;
    Runtime rt(opts);
    std::uint64_t done = 0;
    std::uint64_t errors = 0;
    rt.run([&](Context& ctx) {
      register_counter(ctx, "noop", done);
      if (ctx.id() != 1) {
        ctx.wait_count(done, 10);
        return;
      }
      Startpoint sp = ctx.world_startpoint(0);
      for (int i = 0; i < 10; ++i) {
        ctx.rsr(sp, "noop");
        ctx.compute_with_polling(1 * kMs, 100 * kUs);
      }
      errors = ctx.method_counters("tcp").send_errors;
    });
    return errors;
  };
  const std::uint64_t a = run_once(42);
  const std::uint64_t b = run_once(42);
  EXPECT_EQ(a, b);
}

TEST(FaultInjection, PartitionScopedRuleOnlyHitsMatchingPair) {
  // A drop rule scoped to (partition 1 -> partition 0) must not touch the
  // reverse direction.
  RuntimeOptions opts = opts_with({"local", "tcp"},
                                  simnet::Topology::two_partitions(1, 1));
  simnet::FaultRule r;
  r.kind = simnet::FaultKind::Blackhole;
  r.method = "tcp";
  r.src_partition = 1;
  r.dst_partition = 0;
  opts.faults.add(r);
  Runtime rt(opts);
  std::uint64_t at0 = 0;
  std::uint64_t at1 = 0;
  rt.run([&](Context& ctx) {
    if (ctx.id() == 0) {
      register_counter(ctx, "noop", at0);
      // 0 -> 1 is unaffected by the (1 -> 0)-scoped rule.
      Startpoint sp = ctx.world_startpoint(1);
      ctx.rsr(sp, "noop");
      ctx.compute_with_polling(20 * kMs, 100 * kUs);
    } else {
      register_counter(ctx, "noop", at1);
      ctx.wait_count(at1, 1);
      Startpoint sp = ctx.world_startpoint(0);
      sp.force_method("tcp");
      EXPECT_THROW(ctx.rsr(sp, "noop"), util::MethodError);
    }
  });
  EXPECT_EQ(at1, 1u);
  EXPECT_EQ(at0, 0u);
}

TEST(FaultInjection, RealtimeFaultHookTriggersFailover) {
  // The realtime fabric injects through a hook instead of a plan: kill shm
  // outright and the stream must fail over to tcp with nothing lost.
  RuntimeOptions opts = opts_with({"local", "shm", "tcp"},
                                  simnet::Topology::two_partitions(1, 1));
  opts.fabric = RuntimeOptions::Fabric::Realtime;
  Runtime rt(opts);
  rt.rt()->set_fault_hook(
      [](std::string_view method, ContextId, ContextId) {
        simnet::FaultVerdict v;
        if (method == "shm") v.dead = true;
        return v;
      });
  std::uint64_t done = 0;
  std::string used;
  rt.run([&](Context& ctx) {
    register_counter(ctx, "noop", done);
    if (ctx.id() != 1) {
      ctx.wait_count(done, 4);
      return;
    }
    Startpoint sp = ctx.world_startpoint(0);
    for (int i = 0; i < 4; ++i) ctx.rsr(sp, "noop");
    used = sp.selected_method();
    EXPECT_GT(ctx.method_counters("shm").send_errors, 0u);
  });
  EXPECT_EQ(done, 4u);
  EXPECT_EQ(used, "tcp");
}

}  // namespace
