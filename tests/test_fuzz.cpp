// Model-based randomized tests: the DescriptorTable against a reference
// model, and serialization under random mutation sequences.
#include <gtest/gtest.h>

#include <vector>

#include "climate/grid.hpp"
#include "nexus/descriptor.hpp"
#include "util/rng.hpp"

namespace {

using namespace nexus;
using util::Rng;

CommDescriptor make_desc(Rng& rng) {
  static const char* kMethods[] = {"local", "shm", "mpl", "tcp", "udp"};
  CommDescriptor d;
  d.method = kMethods[rng.next_below(5)];
  d.context = static_cast<ContextId>(rng.next_below(16));
  d.data.resize(rng.next_below(12));
  for (auto& b : d.data) b = static_cast<std::uint8_t>(rng.next());
  return d;
}

/// Reference model: a plain vector with the documented semantics.
struct TableModel {
  std::vector<CommDescriptor> v;

  void add(CommDescriptor d) { v.push_back(std::move(d)); }
  void insert(std::size_t pos, CommDescriptor d) {
    if (pos > v.size()) pos = v.size();
    v.insert(v.begin() + static_cast<std::ptrdiff_t>(pos), std::move(d));
  }
  void remove(const std::string& m) {
    std::erase_if(v, [&](const CommDescriptor& d) { return d.method == m; });
  }
  void prioritize(const std::string& m) {
    std::vector<CommDescriptor> front, back;
    for (auto& d : v) (d.method == m ? front : back).push_back(d);
    front.insert(front.end(), back.begin(), back.end());
    v = std::move(front);
  }
};

class DescriptorTableFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DescriptorTableFuzz, MatchesReferenceModelUnderRandomOps) {
  Rng rng(GetParam());
  DescriptorTable table;
  TableModel model;
  static const char* kMethods[] = {"local", "shm", "mpl", "tcp", "udp"};

  for (int op = 0; op < 400; ++op) {
    switch (rng.next_below(5)) {
      case 0: {
        CommDescriptor d = make_desc(rng);
        table.add(d);
        model.add(d);
        break;
      }
      case 1: {
        CommDescriptor d = make_desc(rng);
        const auto pos = static_cast<std::size_t>(rng.next_below(10));
        table.insert(pos, d);
        model.insert(pos, d);
        break;
      }
      case 2: {
        const std::string m = kMethods[rng.next_below(5)];
        table.remove(m);
        model.remove(m);
        break;
      }
      case 3: {
        const std::string m = kMethods[rng.next_below(5)];
        table.prioritize(m);
        model.prioritize(m);
        break;
      }
      case 4: {
        // Serialization roundtrip must be the identity at any point.
        util::PackBuffer pb;
        table.pack(pb);
        util::UnpackBuffer ub(pb.bytes());
        DescriptorTable again = DescriptorTable::unpack(ub);
        ASSERT_EQ(again, table);
        break;
      }
    }
    ASSERT_EQ(table.entries(), model.v) << "diverged after op " << op;
    // find() agrees with a linear scan of the model.
    const std::string probe = kMethods[rng.next_below(5)];
    auto idx = table.find(probe);
    std::optional<std::size_t> want;
    for (std::size_t i = 0; i < model.v.size(); ++i) {
      if (model.v[i].method == probe) {
        want = i;
        break;
      }
    }
    ASSERT_EQ(idx, want);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DescriptorTableFuzz,
                         ::testing::Values(11u, 12u, 13u, 99u));

class RegridFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegridFuzz, StaysWithinSourceBoundsAndNearMean) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    const int n_src = 2 + static_cast<int>(rng.next_below(60));
    const int n_dst = 1 + static_cast<int>(rng.next_below(90));
    std::vector<double> src(static_cast<std::size_t>(n_src));
    double lo = 1e300, hi = -1e300, mean = 0;
    for (auto& x : src) {
      x = rng.uniform(-50.0, 50.0);
      lo = std::min(lo, x);
      hi = std::max(hi, x);
      mean += x;
    }
    mean /= n_src;

    auto dst = climate::regrid_profile(src, n_dst);
    ASSERT_EQ(dst.size(), static_cast<std::size_t>(n_dst));
    double dmean = 0;
    for (double x : dst) {
      // Linear interpolation cannot overshoot the source range.
      ASSERT_GE(x, lo - 1e-9);
      ASSERT_LE(x, hi + 1e-9);
      dmean += x;
    }
    dmean /= n_dst;
    // Mean agreement is only meaningful when the destination actually
    // samples the source densely; a 1-point "profile" may legitimately
    // land anywhere in the range.
    if (n_dst >= n_src && n_dst >= 8) {
      EXPECT_NEAR(dmean, mean, 0.35 * (hi - lo) + 1e-9)
          << "n_src=" << n_src << " n_dst=" << n_dst;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegridFuzz, ::testing::Values(5u, 6u, 7u));

}  // namespace
