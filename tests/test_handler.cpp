// Unit tests for handler tables.
#include <gtest/gtest.h>

#include "nexus/handler.hpp"

namespace {

using nexus::Handler;
using nexus::HandlerTable;

Handler noop() {
  return [](nexus::Context&, nexus::Endpoint&, nexus::util::UnpackBuffer&) {};
}

TEST(HandlerTable, RegisterAndLookup) {
  HandlerTable t;
  auto id = t.add("ping", noop());
  EXPECT_EQ(id, HandlerTable::id_of("ping"));
  EXPECT_TRUE(t.contains(id));
  EXPECT_EQ(t.lookup(id).name, "ping");
  EXPECT_EQ(t.lookup(id).kind, nexus::HandlerKind::NonThreaded);
}

TEST(HandlerTable, ThreadedKindPreserved) {
  HandlerTable t;
  auto id = t.add("worker", noop(), nexus::HandlerKind::Threaded);
  EXPECT_EQ(t.lookup(id).kind, nexus::HandlerKind::Threaded);
}

TEST(HandlerTable, DuplicateNameThrows) {
  HandlerTable t;
  t.add("ping", noop());
  EXPECT_THROW(t.add("ping", noop()), nexus::util::UsageError);
}

TEST(HandlerTable, UnknownIdThrowsTypedHandlerError) {
  // The delivery path drops unknown ids without faulting (see
  // ContextRsr.UnknownHandlerDropsAndCountsAtReceiver); lookup() keeps a
  // typed exception for callers that want the hard contract.
  HandlerTable t;
  EXPECT_THROW(t.lookup(12345), nexus::util::HandlerError);
}

TEST(HandlerTable, WireIdIsStableHash) {
  // The id must be derivable on the sending side without coordination.
  EXPECT_EQ(HandlerTable::id_of("exchange"),
            nexus::util::fnv1a("exchange"));
}

}  // namespace
