// End-to-end integration: a metacomputing application shaped like the
// paper's I-WAY scenarios.  A 4-rank compute cluster (partition 0) runs an
// iterative minimpi solve; an instrument (partition 1) streams samples to
// the cluster over UDP with a reliable TCP control channel; a
// visualization station (partition 2) receives secured frame digests.
// Multiple methods coexist in one program, chosen per link.
#include <gtest/gtest.h>

#include <numeric>

#include "fixture_runtime.hpp"
#include "minimpi/mpi.hpp"
#include "nexus/runtime.hpp"

namespace {

using namespace nexus;
using nexus::testing::opts_with;

TEST(Integration, MetacomputingPipeline) {
  RuntimeOptions opts = opts_with({"local", "mpl", "tcp", "udp", "secure"},
                                  simnet::Topology::partitions({4, 1, 1}));
  opts.costs.udp_drop_prob = 0.0;  // determinism for the assertion below
  Runtime rt(opts);

  constexpr int kSamples = 12;
  constexpr ContextId kInstrument = 4;
  constexpr ContextId kStation = 5;
  int frames_at_station = 0;
  double final_energy = 0.0;

  rt.run([&](Context& ctx) {
    if (ctx.id() < 4) {
      // --- compute cluster rank ---
      minimpi::World mpi(ctx);
      minimpi::Comm cluster = mpi.comm().split(0, static_cast<int>(ctx.id()));
      // (the two service contexts call split with other colors below)
      double accumulated = 0.0;
      std::uint64_t samples = 0;
      bool shutdown = false;
      ctx.register_handler("sample",
                           [&](Context&, Endpoint&, util::UnpackBuffer& ub) {
                             accumulated += ub.get_f64();
                             ++samples;
                           });
      ctx.register_handler("shutdown",
                           [&](Context&, Endpoint&, util::UnpackBuffer&) {
                             shutdown = true;
                           });

      if (cluster.rank() == 0) {
        // Leader: wait for the instrument's samples, reduce across the
        // cluster each round, push a secured digest to the station.
        Startpoint station = ctx.world_startpoint(kStation);
        station.force_method("secure");
        for (int round = 0; round < 3; ++round) {
          ctx.wait_count(samples, static_cast<std::uint64_t>(kSamples) *
                                      (round + 1) / 3);
          auto totals = cluster.allreduce(std::vector<double>{accumulated},
                                          minimpi::ReduceOp::Sum);
          util::PackBuffer frame;
          frame.put_i32(round);
          frame.put_f64(totals[0]);
          ctx.rsr(station, "frame", frame);
        }
        auto final_totals = cluster.allreduce(
            std::vector<double>{accumulated}, minimpi::ReduceOp::Sum);
        final_energy = final_totals[0];
        // Reliable control: tell the instrument to stop (TCP, forced).
        Startpoint instr = ctx.world_startpoint(kInstrument);
        instr.force_method("tcp");
        ctx.rsr(instr, "shutdown");
      } else {
        for (int round = 0; round < 4; ++round) {
          cluster.allreduce(std::vector<double>{accumulated},
                            minimpi::ReduceOp::Sum);
        }
      }
      (void)shutdown;
      return;
    }

    minimpi::World mpi(ctx);
    mpi.comm().split(ctx.id() == kInstrument ? 1 : 2,
                     static_cast<int>(ctx.id()));

    if (ctx.id() == kInstrument) {
      // --- instrument: lossy bulk samples + reliable stop control ---
      bool stopped = false;
      ctx.register_handler("shutdown",
                           [&](Context&, Endpoint&, util::UnpackBuffer&) {
                             stopped = true;
                           });
      Startpoint cluster0 = ctx.world_startpoint(0);
      cluster0.force_method("udp");  // bulk data: loss-tolerant
      for (int s = 0; s < kSamples; ++s) {
        util::PackBuffer pb;
        pb.put_f64(1.0 + 0.5 * s);
        ctx.rsr(cluster0, "sample", pb);
        ctx.compute(5 * simnet::kMs);
      }
      ctx.wait([&] { return stopped; });
      EXPECT_EQ(ctx.method_counters("udp").sends,
                static_cast<std::uint64_t>(kSamples));
      return;
    }

    // --- visualization station: consumes secured digests ---
    std::uint64_t frames = 0;
    double last_total = 0.0;
    ctx.register_handler("frame",
                         [&](Context&, Endpoint&, util::UnpackBuffer& ub) {
                           ub.get_i32();
                           last_total = ub.get_f64();
                           ++frames;
                         });
    ctx.wait_count(frames, 3);
    frames_at_station = static_cast<int>(frames);
    EXPECT_GT(last_total, 0.0);
    EXPECT_EQ(ctx.method_counters("secure").recvs, 3u);
  });

  EXPECT_EQ(frames_at_station, 3);
  // Sum of samples: 12 samples of (1.0 + 0.5 s) = 12 + 0.5 * 66 = 45.
  EXPECT_DOUBLE_EQ(final_energy, 45.0);

  // Enquiry dump covers every context and shows the method mix.
  const std::string report = rt.describe();
  EXPECT_NE(report.find("6 contexts"), std::string::npos);
  EXPECT_NE(report.find("udp"), std::string::npos);
  EXPECT_NE(report.find("secure"), std::string::npos);
}

TEST(Integration, ThreadedHandlersChargeSwitchCost) {
  RuntimeOptions opts =
      opts_with({"local", "mpl", "tcp"}, simnet::Topology::single_partition(2));
  Runtime rt(opts);
  Time inline_done = -1, threaded_done = -1;
  rt.run(std::vector<std::function<void(Context&)>>{
      [&](Context& ctx) {
        std::uint64_t done = 0;
        ctx.register_handler("inline",
                             [&](Context& c, Endpoint&, util::UnpackBuffer&) {
                               inline_done = c.now();
                               ++done;
                             });
        ctx.register_handler(
            "threaded",
            [&](Context& c, Endpoint&, util::UnpackBuffer&) {
              threaded_done = c.now();
              ++done;
            },
            HandlerKind::Threaded);
        ctx.wait_count(done, 2);
      },
      [&](Context& ctx) {
        Startpoint sp = ctx.world_startpoint(0);
        ctx.rsr(sp, "inline");
        ctx.rsr(sp, "threaded");
      }});
  // Both executed; the threaded one carried the extra hand-off cost.
  RuntimeOptions ref;
  EXPECT_GT(inline_done, 0);
  EXPECT_GT(threaded_done, inline_done);
  EXPECT_GE(threaded_done - inline_done, ref.costs.threaded_handler_switch);
}

TEST(Integration, HandlersCanChainRsrsAcrossManyContexts) {
  // A token circulates around a ring entirely inside handlers; the main
  // loops only pump progress.  Exercises handler re-entrancy across the
  // whole world.
  constexpr int kRing = 5;
  constexpr int kLaps = 10;
  RuntimeOptions opts = opts_with({"local", "mpl", "tcp"},
                                  simnet::Topology::single_partition(kRing));
  Runtime rt(opts);
  int final_hops = 0;
  rt.run([&](Context& ctx) {
    std::uint64_t finished = 0;
    ctx.register_handler(
        "token", [&](Context& c, Endpoint&, util::UnpackBuffer& ub) {
          const int hops = ub.get_i32();
          if (hops >= kRing * kLaps) {
            final_hops = hops;
            ++finished;
            return;
          }
          Startpoint next =
              c.world_startpoint((c.id() + 1) % kRing);
          util::PackBuffer pb;
          pb.put_i32(hops + 1);
          c.rsr(next, "token", pb);
          ++finished;
        });
    if (ctx.id() == 0) {
      Startpoint first = ctx.world_startpoint(1);
      util::PackBuffer pb;
      pb.put_i32(1);
      ctx.rsr(first, "token", pb);
      ctx.wait_count(finished, kLaps);  // token passes ctx0 once per lap
    } else {
      ctx.wait_count(finished, kLaps);
    }
  });
  EXPECT_EQ(final_hops, kRing * kLaps);
}

}  // namespace
