// Tests for arrival-ordered mailboxes, including the in-flight penalty used
// by the TCP-interference model.
#include <gtest/gtest.h>

#include <string>

#include "simnet/mailbox.hpp"
#include "simnet/scheduler.hpp"

namespace {

using namespace nexus::simnet;

TEST(Mailbox, DeliversInArrivalOrder) {
  Scheduler sched;
  std::vector<int> got;
  sched.spawn("owner", [&] {
    auto* self = SimProcess::current();
    Mailbox<int> box(self->scheduler(), *self);
    box.post(30 * kUs, 3);
    box.post(10 * kUs, 1);
    box.post(20 * kUs, 2);
    self->advance(100 * kUs);
    while (auto m = box.poll(self->now())) got.push_back(*m);
  });
  sched.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Mailbox, FutureArrivalsInvisibleToPoll) {
  Scheduler sched;
  sched.spawn("owner", [&] {
    auto* self = SimProcess::current();
    Mailbox<int> box(self->scheduler(), *self);
    box.post(50 * kUs, 7);
    EXPECT_FALSE(box.poll(self->now()).has_value());
    EXPECT_FALSE(box.has_ready(self->now()));
    ASSERT_TRUE(box.earliest().has_value());
    EXPECT_EQ(*box.earliest(), 50 * kUs);
    self->advance_to(50 * kUs);
    EXPECT_TRUE(box.has_ready(self->now()));
    EXPECT_EQ(*box.poll(self->now()), 7);
  });
  sched.run();
}

TEST(Mailbox, FifoAmongEqualArrivals) {
  Scheduler sched;
  std::vector<int> got;
  sched.spawn("owner", [&] {
    auto* self = SimProcess::current();
    Mailbox<int> box(self->scheduler(), *self);
    for (int i = 0; i < 5; ++i) box.post(10 * kUs, i);
    self->advance(20 * kUs);
    while (auto m = box.poll(self->now())) got.push_back(*m);
  });
  sched.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Mailbox, PostWakesBlockedOwner) {
  Scheduler sched;
  Time woke = -1;
  Mailbox<std::string>* box_ptr = nullptr;
  SimProcess* owner_ptr = nullptr;
  sched.spawn("owner", [&] {
    auto* self = SimProcess::current();
    owner_ptr = self;
    Mailbox<std::string> box(self->scheduler(), *self);
    box_ptr = &box;
    self->block();  // wait for the post's wake timer
    woke = self->now();
    EXPECT_EQ(*box.poll(self->now()), "hello");
  });
  sched.spawn("sender", [&] {
    auto* self = SimProcess::current();
    self->advance(5 * kUs);
    box_ptr->post(self->now() + 2 * kMs, "hello");
  });
  sched.run();
  EXPECT_EQ(woke, 5 * kUs + 2 * kMs);
}

TEST(Mailbox, PenalizePendingPushesOnlyInFlight) {
  Scheduler sched;
  sched.spawn("owner", [&] {
    auto* self = SimProcess::current();
    Mailbox<int> box(self->scheduler(), *self);
    box.post(10 * kUs, 1);   // will be "already arrived" at penalty time
    box.post(100 * kUs, 2);  // in flight
    self->advance(50 * kUs);
    box.penalize_pending(self->now(), 30 * kUs);
    // Item 1 arrived before the penalty; unchanged and pollable.
    EXPECT_EQ(*box.poll(self->now()), 1);
    // Item 2 was pushed from 100us to 130us.
    EXPECT_EQ(*box.earliest(), 130 * kUs);
    self->advance_to(129 * kUs);
    EXPECT_FALSE(box.poll(self->now()).has_value());
    self->advance_to(130 * kUs);
    EXPECT_EQ(*box.poll(self->now()), 2);
  });
  sched.run();
}

TEST(Mailbox, PurgeBeforeDropsPreCutoffArrivals) {
  // Crash modeling (docs/ARCHITECTURE.md §14): a restarting context purges
  // everything that arrived (or was consumed) before the outage ended --
  // traffic addressed to the dead incarnation is lost, not replayed.
  Scheduler sched;
  sched.spawn("owner", [&] {
    auto* self = SimProcess::current();
    Mailbox<int> box(self->scheduler(), *self);
    box.post(10 * kUs, 1);
    box.post(20 * kUs, 2);
    box.post(50 * kUs, 3);
    EXPECT_EQ(box.purge_before(30 * kUs), 2u);
    EXPECT_EQ(box.pending(), 1u);
    self->advance(100 * kUs);
    EXPECT_EQ(*box.poll(self->now()), 3);  // only the post-cutoff arrival
    EXPECT_FALSE(box.poll(self->now()).has_value());
    // Purging everything leaves a clean, reusable mailbox.
    box.post(200 * kUs, 4);
    EXPECT_EQ(box.purge_before(kInfinity), 1u);
    EXPECT_EQ(box.pending(), 0u);
  });
  sched.run();
}

TEST(Mailbox, PendingCount) {
  Scheduler sched;
  sched.spawn("owner", [&] {
    auto* self = SimProcess::current();
    Mailbox<int> box(self->scheduler(), *self);
    EXPECT_EQ(box.pending(), 0u);
    box.post(kUs, 1);
    box.post(kUs, 2);
    EXPECT_EQ(box.pending(), 2u);
    self->advance(2 * kUs);
    box.poll(self->now());
    EXPECT_EQ(box.pending(), 1u);
  });
  sched.run();
}

}  // namespace
